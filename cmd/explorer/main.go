// Command explorer is an interactive SQL shell over a scientific file
// repository with two-stage query execution and ALi — the "data
// management tool that makes these file repositories accessible" the
// paper's introduction calls for.
//
// Usage:
//
//	explorer -repo /tmp/repo [-db /tmp/db] [-mode ali|ei] [-cache file|tuple|off]
//	         [-resultcache MB] [-subsume] [-session name] [-nostats]
//	         [-spilldir DIR] [-spillthreshold MB]
//
// -subsume turns on semantic result caching: a query whose predicate is
// provably narrower than a cached one is answered by re-filtering the
// frozen entry in memory, mounting nothing. It requires -resultcache.
//
// -spilldir turns on out-of-core execution: flight replay buffers
// larger than -spillthreshold MiB spill to temp files under DIR, and
// (with -resultcache) the result cache persists under DIR across
// restarts — reopening the same -db and -spilldir serves repeat queries
// without executing anything. -spillthreshold requires -spilldir.
//
// -nostats disables statistics-free Stage-2 planning (file pruning from
// the frozen Qf result, join ordering, honest admission sizing) — the
// A/B switch for demonstrating what the planner saves.
//
// Shell commands:
//
//	\plan <sql>   show the optimized two-stage plan without executing
//	\stage <sql>  run only the first stage and show the breakpoint
//	\multi <sql>  multi-stage execution: ingest file-by-file, show partials
//	\tables       list catalog tables
//	\stats        session statistics plus the engine's mount-service
//	              (admission gate, per-session, spilling), ingestion-cache,
//	              result-cache (including its disk tier) and
//	              statistics-free-planner counters
//	\quit         exit
//
// Any other input is executed as SQL.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/unit"
)

// sessionName identifies this shell to the engine's admission gate and
// result cache: with several explorers sharing one engine (or one
// database server embedding it), quotas and \stats break down per name.
var sessionName string

func main() {
	var (
		repoDir  = flag.String("repo", "", "repository directory (required)")
		dbDir    = flag.String("db", "", "database directory (default: temp)")
		mode     = flag.String("mode", "ali", "ingestion mode: ali or ei")
		cacheCfg = flag.String("cache", "off", "ingestion cache: off, file or tuple")
		budget   = flag.Duration("budget", 0, "abort queries whose estimated cost exceeds this (0 = off)")
		rcacheMB = flag.Int64("resultcache", 0, "result-cache budget in MiB (0 = off, -1 = unlimited)")
		subsume  = flag.Bool("subsume", false, "answer narrower queries by re-filtering wider cached results (requires -resultcache)")
		sessFlag = flag.String("session", "explorer", "session identity for admission quotas and per-session stats")
		nostats  = flag.Bool("nostats", false, "disable statistics-free Stage-2 planning (pruning, join ordering, honest admission)")
		spillDir = flag.String("spilldir", "", "directory for out-of-core spill files and the persistent result cache")
		spillMB  = flag.Int64("spillthreshold", 0, "spill a flight's replay buffer past this many MiB (requires -spilldir)")
	)
	flag.Parse()
	sessionName = *sessFlag
	if *repoDir == "" {
		fmt.Fprintln(os.Stderr, "explorer: -repo is required")
		os.Exit(2)
	}
	if *dbDir == "" {
		d, err := os.MkdirTemp("", "explorer-db-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "explorer:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
		*dbDir = d
	}
	opts := core.Options{RepoDir: *repoDir, DBDir: *dbDir}
	switch *mode {
	case "ali":
		opts.Mode = core.ModeALi
	case "ei":
		opts.Mode = core.ModeEi
	default:
		fmt.Fprintln(os.Stderr, "explorer: -mode must be ali or ei")
		os.Exit(2)
	}
	switch *cacheCfg {
	case "file":
		opts.Cache = cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	case "tuple":
		opts.Cache = cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular}
	case "off":
	default:
		fmt.Fprintln(os.Stderr, "explorer: -cache must be off, file or tuple")
		os.Exit(2)
	}
	switch {
	case *rcacheMB > 0:
		opts.ResultCacheBytes = *rcacheMB << 20
	case *rcacheMB < 0:
		opts.ResultCacheBytes = -1
	}
	if *subsume {
		if opts.ResultCacheBytes == 0 {
			fmt.Fprintln(os.Stderr, "explorer: -subsume requires -resultcache")
			os.Exit(2)
		}
		opts.ResultCacheSubsumption = true
	}
	if *nostats {
		opts.StatsPlanning = core.StatsPlanningOff
	}
	if *spillMB != 0 && *spillDir == "" {
		fmt.Fprintln(os.Stderr, "explorer: -spillthreshold requires -spilldir")
		os.Exit(2)
	}
	if *spillDir != "" {
		opts.SpillDir = *spillDir
		opts.SpillThresholdBytes = *spillMB << 20
	}

	fmt.Printf("opening %s repository (%s mode)...\n", *repoDir, opts.Mode)
	eng, err := core.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explorer:", err)
		os.Exit(1)
	}
	defer eng.Close()
	rep := eng.Report()
	fmt.Printf("ready in %v (wall) + %v (modeled I/O): %d files, %d records of metadata\n",
		rep.Wall.Round(time.Millisecond), rep.ModeledIO.Round(time.Millisecond),
		rep.Metadata.Files, rep.Metadata.Records)

	var policy explore.BudgetPolicy
	if *budget > 0 {
		policy = explore.MaxCost(*budget)
		fmt.Printf("budget policy: abort when estimated cost exceeds %v\n", *budget)
	}
	session := explore.NewSession(policy)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	fmt.Print("explorer> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, name := range eng.Catalog().Tables() {
				def, _ := eng.Catalog().Table(name)
				cols := make([]string, len(def.Columns))
				for i, c := range def.Columns {
					cols[i] = c.Name + " " + c.Kind.String()
				}
				fmt.Printf("  %s (%s): %s\n", name, def.Kind, strings.Join(cols, ", "))
			}
		case line == `\stats`:
			fmt.Print(session.Summary())
			printEngineStats(eng)
		case strings.HasPrefix(line, `\plan `):
			showPlan(eng, strings.TrimPrefix(line, `\plan `))
		case strings.HasPrefix(line, `\stage `):
			showStage(eng, strings.TrimPrefix(line, `\stage `))
		case strings.HasPrefix(line, `\multi `):
			runMulti(eng, strings.TrimPrefix(line, `\multi `))
		default:
			runSQL(eng, session, line)
		}
		fmt.Print("explorer> ")
	}
}

// printEngineStats renders the engine-wide counters: the shared mount
// service (single-flight extraction, the FIFO admission gate with its
// per-session breakdown), the ingestion cache, and the result cache.
func printEngineStats(eng *core.Engine) {
	ms := eng.MountService().Stats()
	fmt.Printf("mount service: %d flights started, %d single-flight joins, %d cache serves, %d cancelled; in-flight %s (peak %s), replay %s (peak %s)\n",
		ms.FlightsStarted, ms.SingleFlightHits, ms.CacheServes, ms.FlightsCancelled,
		unit.FormatBytes(ms.InFlightBytes), unit.FormatBytes(ms.PeakInFlightBytes),
		unit.FormatBytes(ms.ReplayBytes), unit.FormatBytes(ms.PeakReplayBytes))
	fmt.Printf("spilling: %d flights spilled %s to disk, %d replay reads served from spill files\n",
		ms.SpilledFlights, unit.FormatBytes(ms.SpilledBytes), ms.SpillReplayReads)
	fmt.Printf("admission gate: queue depth %d, %d waits, %d cancelled, %d starvation-avoided\n",
		ms.QueueDepth, ms.BudgetWaits, ms.BudgetCancelled, ms.StarvationAvoided)
	printPerSession("  session", ms.PerSession)
	cs := eng.Cache().Stats()
	fmt.Printf("ingestion cache: %d entries (%s), %d hits, %d misses, %d evictions\n",
		cs.Entries, unit.FormatBytes(cs.BytesResident), cs.Hits, cs.Misses, cs.Evictions)
	if rc := eng.ResultCache(); rc != nil {
		rs := rc.Stats()
		fmt.Printf("result cache: %d entries (%s), %d hits, %d riders, %d misses; %d stores, %d rejected, %d evictions (%d self); epoch %d (%d invalidated)\n",
			rs.Entries, unit.FormatBytes(rs.BytesResident), rs.Hits, rs.Riders, rs.Misses,
			rs.Stores, rs.RejectedStores, rs.Evictions, rs.SelfEvictions, rs.Epoch, rs.Invalidations)
		fmt.Printf("  subsumption: %d probes, %d hits, %s re-execution avoided, %v re-filtering\n",
			rs.SubsumptionProbes, rs.SubsumptionHits,
			unit.FormatBytes(rs.SubsumptionBytesSaved), rs.RefilterWall.Round(time.Microsecond))
		fmt.Printf("  disk tier: %d entries (%s) on disk, %d demotions, %d promotions, %d disk evictions, %d warmed from a previous run\n",
			rs.DiskEntries, unit.FormatBytes(rs.BytesOnDisk),
			rs.Demotions, rs.Promotions, rs.DiskEvictions, rs.WarmedFromDisk)
	} else {
		fmt.Println("result cache: disabled (run with -resultcache to enable)")
	}
	ps := eng.PlannerStats()
	fmt.Printf("stats planning: %d files (%d records, %s) pruned before mounting; %d join reorders, %d build-side flips; admission charged %s under worst case\n",
		ps.PrunedFiles, ps.PrunedRecords, unit.FormatBytes(ps.BytesNotMounted),
		ps.JoinOrderFlips, ps.JoinBuildFlips, unit.FormatBytes(ps.AdmissionBytesSaved))
}

// printPerSession renders a per-session admission breakdown, sorted by
// session name for stable output.
func printPerSession(label string, per map[string]admission.SessionStats) {
	names := make([]string, 0, len(per))
	for name := range per {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := per[name]
		display := name
		if display == "" {
			display = "(anonymous)"
		}
		fmt.Printf("%s %s: held %s (peak %s), %d acquires, %d waits (total %v, max %v), %d cancelled, %d quota-blocked\n",
			label, display, unit.FormatBytes(s.HeldBytes), unit.FormatBytes(s.PeakHeldBytes),
			s.Acquires, s.Waits, s.WaitTotal.Round(time.Microsecond), s.WaitMax.Round(time.Microsecond),
			s.Cancelled, s.QuotaBlocked)
	}
}

func showPlan(eng *core.Engine, sql string) {
	p, err := eng.PrepareAs(context.Background(), sessionName, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(p.PlanString())
}

func showStage(eng *core.Engine, sql string) {
	p, err := eng.PrepareAs(context.Background(), sessionName, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bp, err := p.Stage1()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if bp.Done() {
		fmt.Println("answered entirely in the first stage:")
		fmt.Print(bp.Result().Format(10))
		return
	}
	fmt.Println("breakpoint reached; files of interest:")
	for _, f := range bp.FilesOfInterest() {
		mark := ""
		if f.Cached {
			mark = " (cached)"
		}
		fmt.Printf("  %s%s\n", f.URI, mark)
	}
	fmt.Println("estimate:", bp.Est.String())
	fmt.Println("(not proceeding; run the query without \\stage to execute both stages)")
}

func runSQL(eng *core.Engine, session *explore.Session, sql string) {
	rec := explore.Record{SQL: sql, At: time.Now()}
	p, err := eng.PrepareAs(context.Background(), sessionName, sql)
	if err != nil {
		fmt.Println("error:", err)
		rec.Err = err
		session.Log(rec)
		return
	}
	start := time.Now()
	bp, err := p.Stage1()
	if err != nil {
		fmt.Println("error:", err)
		rec.Err = err
		session.Log(rec)
		return
	}
	var res *core.Result
	if bp.Done() {
		res = bp.Result()
	} else {
		rec.Estimate = bp.Est
		if session.Decide(bp.Est) == explore.Abort {
			rec.Decision = explore.Abort
			session.Log(rec)
			fmt.Println("aborted at breakpoint:", bp.Est.String())
			return
		}
		res, err = bp.Proceed()
		if err != nil {
			fmt.Println("error:", err)
			rec.Err = err
			session.Log(rec)
			return
		}
	}
	rec.Rows = res.Rows()
	rec.Wall = time.Since(start)
	session.Log(rec)
	fmt.Print(res.Format(20))
	st := res.Stats
	if st.ServedFromResultCache {
		how := "fingerprint hit"
		switch {
		case st.CoalescedRider:
			how = "rode a concurrent identical query"
		case st.ServedBySubsumption:
			how = "served by subsumption of " + st.SubsumedFrom.Short()
		}
		fmt.Printf("%d rows; served from the result cache (%s, %s shared) in %v\n",
			res.Rows(), how, unit.FormatBytes(st.Mounts.ResultCacheBytes),
			st.Stage1Wall.Round(time.Microsecond))
	} else {
		fmt.Printf("%d rows; stage1 %v, stage2 %v (modeled %v); %d files of interest, %d mounted, %d cache hits\n",
			res.Rows(), st.Stage1Wall.Round(time.Microsecond), st.Stage2Wall.Round(time.Microsecond),
			st.Modeled().Round(time.Microsecond),
			st.FilesOfInterest, st.Mounts.FilesMounted, st.Mounts.CacheHits)
	}
}

// runMulti executes a query with multi-stage ingestion, printing the
// partial answer after every ingestion round.
func runMulti(eng *core.Engine, sql string) {
	p, err := eng.PrepareAs(context.Background(), sessionName, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bp, err := p.Stage1()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if bp.Done() {
		fmt.Println("answered in the first stage:")
		fmt.Print(bp.Result().Format(10))
		return
	}
	res, err := bp.ProceedIncremental(1, func(pt core.Partial) bool {
		vals := make([]string, len(pt.Values))
		for i, v := range pt.Values {
			vals[i] = v.String()
		}
		fmt.Printf("  after %d/%d files: %s  [%v]\n",
			pt.FilesProcessed, pt.FilesTotal, strings.Join(vals, ", "),
			pt.Elapsed.Round(time.Millisecond))
		return true
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.Format(10))
}
