// Command bench runs the paper's full evaluation and prints every table
// and figure: Table 1 (dataset and sizes), Figure 3 (Query 1/2 cold/hot
// under Ei and ALi), the up-front ingestion comparison, and the
// ablations (selectivity sweep, cache granularity, merge strategy,
// derived metadata). EXPERIMENTS.md records its output.
//
// Usage:
//
//	bench [-scale tiny|small|medium]
//	      [-exp all|table1|figure3|ingest|sweep|cache|strategy|derived|parallel|concurrent|cow|resultcache|fairness|subsume|prune|spill]
//	      [-runs 3] [-parallelism N] [-clients 8] [-sessions 3] [-quota 0.5]
//	      [-zoom 4] [-json DIR]
//
// -json DIR appends one record per experiment — name, scale, wall time,
// file mounts, full executions, and any experiment-specific counters
// (result-cache hits, subsumption hits, mounts saved) — to
// DIR/BENCH_<exp>.json, each file a growing JSON array: the repository's
// performance trajectory across runs (CI uploads them as artifacts).
//
// -parallelism sets the engine's ingestion/mount worker count for every
// experiment (0 = one worker per CPU); the "parallel" experiment sweeps
// worker counts 1, 4 and 8 regardless of the flag. The "concurrent"
// experiment issues -clients identical cold queries at once against one
// engine, demonstrating the mount service's single-flight coalescing.
// The "cow" experiment measures bytes allocated on the shared-Qf-replay
// and K-concurrent-cold-clients paths under the old deep-clone
// discipline versus copy-on-write shares. The "resultcache" experiment
// issues -clients identical queries at once against an engine with the
// result cache enabled: one full execution, riders served as O(1) CoW
// shares, and repeats (including equivalently spelled variants) hitting
// the stored entry. The "fairness" experiment runs one greedy bulk
// session against -sessions interactive sessions over a small mount
// budget with a per-session share of -quota, and errors unless the
// interactive p95 admission wait stays bounded (the FIFO + quota gate's
// no-starvation contract). The "subsume" experiment drives a -zoom step
// zooming explore session against the semantic result cache and errors
// unless every query after the first is answered by re-filtering a wider
// cached entry — zero file mounts — byte-identical to cold execution.
// The "prune" experiment runs a selective workload against the
// statistics-free planner (the frozen Qf result as a cardinality
// oracle) and errors unless files are pruned before mounting, mounts
// drop strictly below the planning-off baseline, and every answer stays
// byte-identical to the unpruned execution. The "spill" experiment runs
// a full sweep under a mount budget far smaller than one decoded file
// and errors unless the over-budget mounts complete by spilling their
// replay buffers to disk (resident peak strictly below one flight's
// decoded bytes), answers stay byte-identical to an unlimited in-memory
// baseline at serial and parallel scheduling, and a simulated restart
// over the same spill directory serves the repeat query from the
// disk-persisted result cache with zero executions.
//
// An unrecognized -exp name is an error listing the valid experiments;
// -sessions below 1, -quota outside (0, 1] and -zoom below 2 are
// likewise errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

import "repro/internal/benchutil"

// experiment is one registered benchmark; keeping the registry as a
// slice preserves the canonical run order for -exp all.
type experiment struct {
	name string
	run  func() (fmt.Stringer, error)
}

func main() {
	var (
		scaleName   = flag.String("scale", "small", "dataset scale: tiny, small or medium")
		exp         = flag.String("exp", "all", "experiment to run, or all")
		runs        = flag.Int("runs", 3, "identical runs averaged per measurement (paper uses 3)")
		keep        = flag.String("workdir", "", "working directory (default: temp, removed on exit)")
		parallelism = flag.Int("parallelism", 0, "ingestion/mount workers per engine (0 = one per CPU)")
		clients     = flag.Int("clients", 8, "concurrent clients for the concurrent/cow/resultcache experiments")
		sessions    = flag.Int("sessions", 3, "interactive sessions for the fairness experiment (>= 1)")
		quota       = flag.Float64("quota", 0.5, "per-session mount-budget share for the fairness experiment, in (0, 1]")
		zoom        = flag.Int("zoom", 4, "zoom steps for the subsume experiment (>= 2)")
		jsonDir     = flag.String("json", "", "directory to append per-experiment trajectory records to (BENCH_<exp>.json)")
	)
	flag.Parse()
	sc := benchutil.ScaleByName(*scaleName)
	// Like -exp, bad fairness parameters must be an error up front, not
	// a late surprise (or a silent misconfiguration) inside -exp all.
	if *sessions < 1 {
		fatal(fmt.Errorf("-sessions must be >= 1, got %d", *sessions))
	}
	if *quota <= 0 || *quota > 1 {
		fatal(fmt.Errorf("-quota must be in (0, 1], got %v", *quota))
	}
	// A one-step "zoom" has no nested query to subsume: reject up front.
	if *zoom < 2 {
		fatal(fmt.Errorf("-zoom must be >= 2, got %d", *zoom))
	}
	if *parallelism != 0 { // 0 keeps REPRO_PARALLELISM (or per-CPU default)
		benchutil.DefaultParallelism = *parallelism
	}
	if *runs < 1 {
		*runs = 1
	}

	base := *keep
	if base == "" {
		dir, err := os.MkdirTemp("", "repro-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		base = dir
	}

	experiments := []experiment{
		{"table1", func() (fmt.Stringer, error) { return benchutil.ExperimentTable1(base, sc) }},
		{"ingest", func() (fmt.Stringer, error) { return benchutil.ExperimentIngestion(base, sc) }},
		{"figure3", func() (fmt.Stringer, error) { return benchutil.ExperimentFigure3(base, sc, *runs) }},
		{"sweep", func() (fmt.Stringer, error) {
			steps := []int{1, 2, 4, 7, sc.Days}
			return benchutil.ExperimentSweep(base, sc, steps)
		}},
		{"cache", func() (fmt.Stringer, error) { return benchutil.ExperimentCacheGranularity(base, sc) }},
		{"strategy", func() (fmt.Stringer, error) { return benchutil.ExperimentMergeStrategy(base, sc) }},
		{"derived", func() (fmt.Stringer, error) { return benchutil.ExperimentDerived(base, sc) }},
		{"parallel", func() (fmt.Stringer, error) {
			return benchutil.ExperimentParallelism(base, sc, []int{1, 4, 8}, *runs)
		}},
		{"concurrent", func() (fmt.Stringer, error) {
			return benchutil.ExperimentConcurrency(base, sc, *clients)
		}},
		{"cow", func() (fmt.Stringer, error) { return benchutil.ExperimentCoW(base, sc, *clients) }},
		{"resultcache", func() (fmt.Stringer, error) {
			return benchutil.ExperimentResultCache(base, sc, *clients)
		}},
		{"fairness", func() (fmt.Stringer, error) {
			return benchutil.ExperimentFairness(base, sc, *sessions, *quota)
		}},
		{"subsume", func() (fmt.Stringer, error) {
			return benchutil.ExperimentSubsume(base, sc, *zoom)
		}},
		{"prune", func() (fmt.Stringer, error) { return benchutil.ExperimentPrune(base, sc) }},
		{"spill", func() (fmt.Stringer, error) { return benchutil.ExperimentSpill(base, sc) }},
	}

	// An unrecognized experiment name must be an error, not a silent
	// zero-experiment success.
	if *exp != "all" {
		known := false
		for _, e := range experiments {
			if e.name == *exp {
				known = true
				break
			}
		}
		if !known {
			names := make([]string, len(experiments))
			for i, e := range experiments {
				names[i] = e.name
			}
			fatal(fmt.Errorf("unknown experiment %q; valid experiments: all, %s",
				*exp, strings.Join(names, ", ")))
		}
	}

	fmt.Printf("== reproduction benchmarks: scale %s (%d files, %d samples) ==\n\n",
		sc.Name, sc.Files(), sc.Samples())
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		wall := time.Since(start)
		fmt.Print(out.String())
		fmt.Printf("  [experiment wall time: %v]\n\n", wall.Round(time.Millisecond))
		if *jsonDir != "" {
			if err := appendRecord(*jsonDir, e.name, sc.Name, wall, out); err != nil {
				fatal(fmt.Errorf("%s: recording trajectory: %w", e.name, err))
			}
		}
	}
}

// benchRecord is one point of an experiment's performance trajectory:
// the BENCH_<exp>.json files accumulate one record per bench run, so
// regressions show up as a step in the series rather than a shrug.
type benchRecord struct {
	Experiment string           `json:"experiment"`
	Scale      string           `json:"scale"`
	WallMS     float64          `json:"wall_ms"`
	Mounts     int              `json:"mounts"`
	Executions int              `json:"executions"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Timestamp  string           `json:"timestamp"`
}

// appendRecord appends one record to dir/BENCH_<name>.json, keeping the
// file a well-formed JSON array across runs. A corrupt existing file is
// an error, not a silent restart of the series.
func appendRecord(dir, name, scale string, wall time.Duration, out fmt.Stringer) error {
	rec := benchRecord{
		Experiment: name,
		Scale:      scale,
		WallMS:     float64(wall.Microseconds()) / 1e3,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if c, ok := out.(benchutil.Counters); ok {
		rec.Mounts, rec.Executions = c.BenchCounters()
	}
	if x, ok := out.(benchutil.ExtraCounters); ok {
		rec.Counters = x.BenchExtra()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	var recs []benchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &recs); err != nil {
			return fmt.Errorf("%s holds something other than a record array: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	recs = append(recs, rec)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
