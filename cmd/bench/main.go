// Command bench runs the paper's full evaluation and prints every table
// and figure: Table 1 (dataset and sizes), Figure 3 (Query 1/2 cold/hot
// under Ei and ALi), the up-front ingestion comparison, and the
// ablations (selectivity sweep, cache granularity, merge strategy,
// derived metadata). EXPERIMENTS.md records its output.
//
// Usage:
//
//	bench [-scale tiny|small|medium] [-exp all|table1|figure3|ingest|sweep|cache|strategy|derived|parallel|concurrent|cow]
//	      [-runs 3] [-parallelism N] [-clients 8]
//
// -parallelism sets the engine's ingestion/mount worker count for every
// experiment (0 = one worker per CPU); the "parallel" experiment sweeps
// worker counts 1, 4 and 8 regardless of the flag. The "concurrent"
// experiment issues -clients identical cold queries at once against one
// engine, demonstrating the mount service's single-flight coalescing.
// The "cow" experiment measures bytes allocated on the shared-Qf-replay
// and K-concurrent-cold-clients paths under the old deep-clone
// discipline versus copy-on-write shares.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

import "repro/internal/benchutil"

func main() {
	var (
		scaleName   = flag.String("scale", "small", "dataset scale: tiny, small or medium")
		exp         = flag.String("exp", "all", "experiment: all, table1, figure3, ingest, sweep, cache, strategy, derived, parallel, concurrent, cow")
		runs        = flag.Int("runs", 3, "identical runs averaged per measurement (paper uses 3)")
		keep        = flag.String("workdir", "", "working directory (default: temp, removed on exit)")
		parallelism = flag.Int("parallelism", 0, "ingestion/mount workers per engine (0 = one per CPU)")
		clients     = flag.Int("clients", 8, "concurrent clients for the concurrent experiment")
	)
	flag.Parse()
	sc := benchutil.ScaleByName(*scaleName)
	if *parallelism != 0 { // 0 keeps REPRO_PARALLELISM (or per-CPU default)
		benchutil.DefaultParallelism = *parallelism
	}
	if *runs < 1 {
		*runs = 1
	}

	base := *keep
	if base == "" {
		dir, err := os.MkdirTemp("", "repro-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		base = dir
	}
	fmt.Printf("== reproduction benchmarks: scale %s (%d files, %d samples) ==\n\n",
		sc.Name, sc.Files(), sc.Samples())

	run := func(name string, f func() (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Print(out.String())
		fmt.Printf("  [experiment wall time: %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (fmt.Stringer, error) { return benchutil.ExperimentTable1(base, sc) })
	run("ingest", func() (fmt.Stringer, error) { return benchutil.ExperimentIngestion(base, sc) })
	run("figure3", func() (fmt.Stringer, error) { return benchutil.ExperimentFigure3(base, sc, *runs) })
	run("sweep", func() (fmt.Stringer, error) {
		steps := []int{1, 2, 4, 7, sc.Days}
		return benchutil.ExperimentSweep(base, sc, steps)
	})
	run("cache", func() (fmt.Stringer, error) { return benchutil.ExperimentCacheGranularity(base, sc) })
	run("strategy", func() (fmt.Stringer, error) { return benchutil.ExperimentMergeStrategy(base, sc) })
	run("derived", func() (fmt.Stringer, error) { return benchutil.ExperimentDerived(base, sc) })
	run("parallel", func() (fmt.Stringer, error) {
		return benchutil.ExperimentParallelism(base, sc, []int{1, 4, 8}, *runs)
	})
	run("concurrent", func() (fmt.Stringer, error) {
		return benchutil.ExperimentConcurrency(base, sc, *clients)
	})
	run("cow", func() (fmt.Stringer, error) {
		return benchutil.ExperimentCoW(base, sc, *clients)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
