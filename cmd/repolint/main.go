// Command repolint runs the engine's static-analysis suite
// (internal/lint: cowcheck, releasecheck, ctxcheck) over the
// repository, in the spirit of a go/analysis multichecker. It is a CI
// gate: any diagnostic fails the build.
//
// Usage:
//
//	repolint [-list] [packages]
//
// Packages default to ./... resolved against the current directory,
// which must be inside the module. Diagnostics print one per line as
//
//	path/file.go:line:col: [analyzer] message
//
// and are silenced only by fixing the violation or annotating the line
// (or the line above) with `//lint:allow <analyzer> <reason>` — the
// reason is required.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, az := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", az.Name, az.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	u, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	diags := lint.Run(u, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
