// Command repolint runs the engine's static-analysis suite
// (internal/lint: cowcheck, releasecheck, ctxcheck, lockcheck,
// statcheck) over the repository, in the spirit of a go/analysis
// multichecker. It is a CI gate: any diagnostic fails the build.
//
// Usage:
//
//	repolint [-list] [-json] [-checkallows] [packages]
//
// Packages default to ./... resolved against the current directory,
// which must be inside the module. Diagnostics print one per line as
//
//	path/file.go:line:col: [analyzer] message
//
// or, with -json, as one JSON object per line:
//
//	{"analyzer":"ctxcheck","file":"path/file.go","line":12,"col":9,"message":"..."}
//
// and are silenced only by fixing the violation or annotating the line
// (or the line above) with `//lint:allow <analyzer> <reason>` — the
// reason is required. -checkallows audits those annotations instead:
// a directive that no longer suppresses anything (the violation was
// fixed, or the analyzer name is wrong) is itself reported, so
// suppressions cannot outlive what they silence.
//
// Exit status: 0 clean, 1 on findings, 2 on a load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// jsonDiagnostic is the -json wire shape, one object per line.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as one JSON object per line")
	checkAllows := flag.Bool("checkallows", false, "report stale //lint:allow directives instead of violations")
	flag.Parse()
	if *list {
		for _, az := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", az.Name, az.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	u, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	var diags []lint.Diagnostic
	if *checkAllows {
		diags = lint.CheckAllows(u, lint.Analyzers())
	} else {
		diags = lint.Run(u, lint.Analyzers())
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			enc.Encode(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
