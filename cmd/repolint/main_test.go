package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildRepolint compiles the command once into a temp dir and returns
// the binary path.
func buildRepolint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "repolint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building repolint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module the binary can lint: the
// violation (and any allow directive) lives in an internal/ package so
// ctxcheck applies.
func writeModule(t *testing.T, demoSrc string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":                 "module tmpmod\n\ngo 1.24\n",
		"internal/demo/demo.go":  demoSrc,
		"internal/demo/clean.go": "package demo\n\nfunc ok() int { return 1 }\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running repolint: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

const violatingSrc = `package demo

import "context"

func Root() context.Context {
	return context.Background()
}
`

// TestJSONOutput pins the -json contract: exit 1 on findings, one
// parseable JSON object per stdout line carrying analyzer, position,
// and message.
func TestJSONOutput(t *testing.T) {
	bin := buildRepolint(t)
	dir := writeModule(t, violatingSrc)
	stdout, _, code := runIn(t, dir, bin, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s", code, stdout)
	}
	var found bool
	sc := bufio.NewScanner(bytes.NewReader([]byte(stdout)))
	for sc.Scan() {
		var d struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %q is not a JSON object: %v", sc.Text(), err)
		}
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Analyzer == "ctxcheck" {
			found = true
		}
	}
	if !found {
		t.Errorf("no ctxcheck diagnostic in output:\n%s", stdout)
	}
}

// TestCheckAllows pins the stale-suppression audit: a directive
// covering a live violation passes, one covering nothing (or naming a
// nonexistent analyzer) fails.
func TestCheckAllows(t *testing.T) {
	bin := buildRepolint(t)

	genuine := writeModule(t, `package demo

import "context"

func Root() context.Context {
	return context.Background() //lint:allow ctxcheck this throwaway module stands in for a process entry point
}
`)
	if stdout, stderr, code := runIn(t, genuine, bin, "-checkallows", "./..."); code != 0 {
		t.Errorf("genuine allow: exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	stale := writeModule(t, `package demo

//lint:allow ctxcheck nothing on this line violates anything
func Fine() int { return 2 }
`)
	if stdout, _, code := runIn(t, stale, bin, "-checkallows", "./..."); code != 1 {
		t.Errorf("stale allow: exit code = %d, want 1\nstdout:\n%s", code, stdout)
	} else if !bytes.Contains([]byte(stdout), []byte("stale //lint:allow ctxcheck")) {
		t.Errorf("stale allow not reported:\n%s", stdout)
	}

	unknown := writeModule(t, `package demo

//lint:allow nosuchcheck the analyzer name is wrong
func Fine() int { return 3 }
`)
	if stdout, _, code := runIn(t, unknown, bin, "-checkallows", "./..."); code != 1 {
		t.Errorf("unknown analyzer: exit code = %d, want 1\nstdout:\n%s", code, stdout)
	} else if !bytes.Contains([]byte(stdout), []byte("unknown analyzer")) {
		t.Errorf("unknown analyzer not reported:\n%s", stdout)
	}
}
