// Command seedgen generates a synthetic mSEED repository: the scientific
// file collection the engine explores. Generation is deterministic, so
// the same flags always produce byte-identical files.
//
// Usage:
//
//	seedgen -dir /tmp/repo -stations 4 -channels 3 -days 14 \
//	        -records 8 -samples 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/repo"
)

func main() {
	var (
		dir      = flag.String("dir", "", "output directory (required)")
		stations = flag.Int("stations", 4, "number of stations (max 8)")
		channels = flag.Int("channels", 3, "number of channels per station (max 3)")
		days     = flag.Int("days", 14, "days of data starting 2010-01-01")
		records  = flag.Int("records", 8, "records per file")
		samples  = flag.Int("samples", 2000, "samples per record")
		rate     = flag.Float64("rate", 40, "sample rate in Hz")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "seedgen: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	spec := repo.DefaultSpec(*dir)
	if *stations < 1 || *stations > len(spec.Stations) {
		fmt.Fprintf(os.Stderr, "seedgen: -stations must be 1..%d\n", len(spec.Stations))
		os.Exit(2)
	}
	if *channels < 1 || *channels > len(spec.Channels) {
		fmt.Fprintf(os.Stderr, "seedgen: -channels must be 1..%d\n", len(spec.Channels))
		os.Exit(2)
	}
	spec.Stations = spec.Stations[:*stations]
	spec.Channels = spec.Channels[:*channels]
	spec.Days = *days
	spec.RecordsPerFile = *records
	spec.SamplesPerRecord = *samples
	spec.SampleRate = *rate

	start := time.Now()
	m, err := repo.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedgen:", err)
		os.Exit(1)
	}
	fmt.Printf("generated %d files / %d records / %d samples (%.2f MiB) in %v\n",
		len(m.Files), m.Records, m.Samples, float64(m.Bytes)/(1<<20),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("repository: %s\n", m.Dir)
}
