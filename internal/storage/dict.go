package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Dict is an order-preserving append-only string dictionary backing one
// VARCHAR column. Codes are assigned densely in first-seen order.
type Dict struct {
	mu   sync.RWMutex
	vals []string
	idx  map[string]int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{idx: make(map[string]int64)}
}

// Code returns the code for s, assigning a new one if unseen.
func (d *Dict) Code(s string) int64 {
	d.mu.RLock()
	if c, ok := d.idx[s]; ok {
		d.mu.RUnlock()
		return c
	}
	d.mu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := int64(len(d.vals))
	d.vals = append(d.vals, s)
	d.idx[s] = c
	return c
}

// CodeIfPresent returns the code for s without assigning, and whether it
// exists. Useful for rewriting equality predicates onto codes.
func (d *Dict) CodeIfPresent(s string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.idx[s]
	return c, ok
}

// Lookup returns the string for a code; it panics on out-of-range codes,
// which indicate storage corruption.
func (d *Dict) Lookup(code int64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code < 0 || code >= int64(len(d.vals)) {
		panic(fmt.Sprintf("storage: dictionary code %d out of range (%d entries)", code, len(d.vals)))
	}
	return d.vals[code]
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// Bytes returns an estimate of the dictionary's in-memory footprint.
func (d *Dict) Bytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := int64(0)
	for _, s := range d.vals {
		n += int64(len(s)) + 16
	}
	return n
}

// Save writes the dictionary to path as JSON.
func (d *Dict) Save(path string) error {
	d.mu.RLock()
	data, err := json.Marshal(d.vals)
	d.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("storage: marshal dict: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDict reads a dictionary previously written by Save.
func LoadDict(path string) (*Dict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load dict: %w", err)
	}
	var vals []string
	if err := json.Unmarshal(data, &vals); err != nil {
		return nil, fmt.Errorf("storage: parse dict %s: %w", path, err)
	}
	d := &Dict{vals: vals, idx: make(map[string]int64, len(vals))}
	for i, s := range vals {
		d.idx[s] = int64(i)
	}
	return d, nil
}
