package storage

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
)

// pageKey identifies a cached page: a file path plus a page index.
type pageKey struct {
	path string
	page int64
}

// PoolStats reports buffer-pool activity since the last Flush or since
// creation.
type PoolStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	PagesRead  int64
	SeeksPayed int64
}

// BufferPool caches fixed-size pages of column and index files in memory
// with LRU replacement. Every miss is charged to the pool's Clock using
// its DiskModel; a "cold" run starts from an empty pool, a "hot" run from
// a pre-warmed one — exactly the cold/hot protocol of the paper's
// Figure 3.
type BufferPool struct {
	mu       sync.Mutex
	model    DiskModel
	clock    *Clock
	capacity int // max pages
	pages    map[pageKey]*list.Element
	lru      *list.List // front = most recent; values are *poolEntry
	lastPage map[string]int64
	stats    PoolStats
}

type poolEntry struct {
	key  pageKey
	data []byte
}

// NewBufferPool returns a pool holding at most capPages pages. The clock
// may be nil, in which case no I/O time is modeled.
func NewBufferPool(capPages int, model DiskModel, clock *Clock) *BufferPool {
	if capPages < 1 {
		capPages = 1
	}
	return &BufferPool{
		model:    model,
		clock:    clock,
		capacity: capPages,
		pages:    make(map[pageKey]*list.Element),
		lru:      list.New(),
		lastPage: make(map[string]int64),
	}
}

// Clock returns the pool's virtual I/O clock (may be nil).
func (p *BufferPool) Clock() *Clock { return p.clock }

// Model returns the pool's disk model.
func (p *BufferPool) Model() DiskModel { return p.model }

// Stats returns a snapshot of pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Flush empties the pool (the "cold" protocol) and resets streak
// tracking. Counters are preserved; use ResetStats to clear them.
func (p *BufferPool) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages = make(map[pageKey]*list.Element)
	p.lru = list.New()
	p.lastPage = make(map[string]int64)
}

// ResetStats zeroes the activity counters.
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = PoolStats{}
}

// CachedPages returns the number of pages currently resident.
func (p *BufferPool) CachedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pages)
}

// ReadAt fills buf with file content at off, going through the page
// cache. f must be an open handle on path. It charges the disk model for
// every page that misses, with seeks charged only on non-sequential
// access patterns per file.
func (p *BufferPool) ReadAt(path string, f *os.File, buf []byte, off int64) error {
	n := int64(len(buf))
	if n == 0 {
		return nil
	}
	for done := int64(0); done < n; {
		pos := off + done
		page := pos / PageSize
		inPage := pos % PageSize
		want := PageSize - inPage
		if rem := n - done; rem < want {
			want = rem
		}
		data, err := p.getPage(path, f, page)
		if err != nil {
			return err
		}
		if int64(len(data)) < inPage {
			return fmt.Errorf("storage: short page %d of %s: have %d bytes, need offset %d",
				page, path, len(data), inPage)
		}
		avail := int64(len(data)) - inPage
		if avail < want {
			want = avail
		}
		if want <= 0 {
			return io.ErrUnexpectedEOF
		}
		copy(buf[done:done+want], data[inPage:inPage+want])
		done += want
	}
	return nil
}

func (p *BufferPool) getPage(path string, f *os.File, page int64) ([]byte, error) {
	key := pageKey{path, page}
	p.mu.Lock()
	if el, ok := p.pages[key]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		data := el.Value.(*poolEntry).data
		p.mu.Unlock()
		return data, nil
	}
	sequential := p.lastPage[path] == page-1
	p.lastPage[path] = page
	p.stats.Misses++
	p.stats.PagesRead++
	if !sequential {
		p.stats.SeeksPayed++
	}
	p.mu.Unlock()

	data := make([]byte, PageSize)
	n, err := f.ReadAt(data, page*PageSize)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("storage: read page %d of %s: %w", page, path, err)
	}
	data = data[:n]
	p.model.ChargeRead(p.clock, 1, sequential)

	p.mu.Lock()
	if el, ok := p.pages[key]; ok { // raced with another reader
		p.lru.MoveToFront(el)
		data = el.Value.(*poolEntry).data
		p.mu.Unlock()
		return data, nil
	}
	el := p.lru.PushFront(&poolEntry{key: key, data: data})
	p.pages[key] = el
	for p.lru.Len() > p.capacity {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.pages, oldest.Value.(*poolEntry).key)
		p.stats.Evictions++
	}
	p.mu.Unlock()
	return data, nil
}

// Touch pulls the first size bytes of the file through the page cache
// without returning data. It models reading an external repository file:
// pages already resident (a "hot" run, where the OS page cache would
// hold the file) cost nothing; missing pages are charged to the disk
// model. Flush evicts these pages like any others, restoring the cold
// cost.
func (p *BufferPool) Touch(path string, f *os.File, size int64) error {
	for page := int64(0); page*PageSize < size; page++ {
		if _, err := p.getPage(path, f, page); err != nil {
			return err
		}
	}
	return nil
}

// Invalidate drops all cached pages of the given file, used when a file
// is rewritten.
func (p *BufferPool) Invalidate(path string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, el := range p.pages {
		if key.path == path {
			p.lru.Remove(el)
			delete(p.pages, key)
		}
	}
	delete(p.lastPage, path)
}
