package storage

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vector"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	pool := NewBufferPool(128, NoCost(), nil)
	s, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func sampleCols() []Column {
	return []Column{
		{Name: "id", Kind: vector.KindInt64},
		{Name: "val", Kind: vector.KindFloat64},
		{Name: "tag", Kind: vector.KindString},
		{Name: "ts", Kind: vector.KindTime},
		{Name: "ok", Kind: vector.KindBool},
	}
}

func fillSample(t *testing.T, tbl *Table, n int) {
	t.Helper()
	a, err := tbl.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, n)
	vals := make([]float64, n)
	tags := make([]string, n)
	tss := make([]int64, n)
	oks := make([]bool, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i) * 0.5
		tags[i] = []string{"alpha", "beta", "gamma"}[i%3]
		tss[i] = int64(i) * 1e9
		oks[i] = i%2 == 0
	}
	b := vector.NewBatch(
		vector.FromInt64(ids), vector.FromFloat64(vals),
		vector.FromString(tags), vector.FromTime(tss), vector.FromBool(oks),
	)
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAppendRead(t *testing.T) {
	s := newTestStore(t)
	tbl, err := s.Create("sample", sampleCols())
	if err != nil {
		t.Fatal(err)
	}
	fillSample(t, tbl, 100)
	if tbl.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", tbl.Rows())
	}
	v, err := tbl.ReadColumn(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 10 || v.Int64s()[0] != 10 {
		t.Errorf("read ids wrong: %v", v.Int64s())
	}
	tags, err := tbl.ReadColumn(2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "gamma"}
	for i, w := range want {
		if tags.Strings()[i] != w {
			t.Errorf("tag[%d] = %q, want %q", i, tags.Strings()[i], w)
		}
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	pool := NewBufferPool(128, NoCost(), nil)
	s, err := Open(dir, pool)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Create("sample", sampleCols())
	if err != nil {
		t.Fatal(err)
	}
	fillSample(t, tbl, 50)
	s.Close()

	s2, err := Open(dir, NewBufferPool(128, NoCost(), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2, ok := s2.Table("sample")
	if !ok {
		t.Fatal("table lost after reopen")
	}
	if tbl2.Rows() != 50 {
		t.Fatalf("rows after reopen = %d, want 50", tbl2.Rows())
	}
	v, err := tbl2.ReadColumn(2, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strings()[0] != "beta" {
		t.Errorf("string after reopen = %q, want beta", v.Strings()[0])
	}
}

func TestReadBatchAndRowsAt(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("sample", sampleCols())
	fillSample(t, tbl, 64)
	b, err := tbl.ReadBatch([]int{0, 1}, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 64 || b.Cols[1].Float64s()[2] != 1.0 {
		t.Error("ReadBatch wrong")
	}
	pb, err := tbl.ReadRowsAt([]int{0, 2}, []int64{5, 60, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pb.Cols[0].Int64s()[1] != 60 {
		t.Errorf("point read = %d, want 60", pb.Cols[0].Int64s()[1])
	}
}

func TestReadOutOfRange(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("sample", sampleCols())
	fillSample(t, tbl, 10)
	if _, err := tbl.ReadColumn(0, 0, 11); err == nil {
		t.Error("expected error for out-of-range read")
	}
	if _, err := tbl.ReadColumn(0, -1, 5); err == nil {
		t.Error("expected error for negative from")
	}
}

func TestTruncate(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("sample", sampleCols())
	fillSample(t, tbl, 10)
	if err := tbl.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 0 {
		t.Fatalf("rows after truncate = %d", tbl.Rows())
	}
	fillSample(t, tbl, 5)
	if tbl.Rows() != 5 {
		t.Fatalf("rows after refill = %d", tbl.Rows())
	}
	v, err := tbl.ReadColumn(0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int64s()[4] != 4 {
		t.Error("data wrong after truncate+refill")
	}
}

func TestDropTable(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("gone", sampleCols()[:1])
	dir := tbl.dir
	if err := s.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Table("gone"); ok {
		t.Error("table still visible after drop")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("table directory still exists after drop")
	}
	if err := s.Drop("gone"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCreateValidation(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Create("", sampleCols()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.Create("x", nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := s.Create("x", []Column{{Name: "a", Kind: vector.KindInt64}, {Name: "a", Kind: vector.KindInt64}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := s.Create("dup", sampleCols()[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("dup", sampleCols()[:1]); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestColdHotAccounting(t *testing.T) {
	var clock Clock
	pool := NewBufferPool(1024, HDD7200(), &clock)
	s, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tbl, _ := s.Create("t", []Column{{Name: "x", Kind: vector.KindInt64}})
	a, _ := tbl.NewAppender()
	xs := make([]int64, 100000)
	for i := range xs {
		xs[i] = int64(i)
	}
	if err := a.Append(vector.NewBatch(vector.FromInt64(xs))); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	pool.Flush()
	clock.Reset()
	if _, err := tbl.ReadColumn(0, 0, 100000); err != nil {
		t.Fatal(err)
	}
	cold := clock.Elapsed()
	if cold == 0 {
		t.Fatal("cold read charged no I/O time")
	}

	clock.Reset()
	if _, err := tbl.ReadColumn(0, 0, 100000); err != nil {
		t.Fatal(err)
	}
	hot := clock.Elapsed()
	if hot != 0 {
		t.Fatalf("hot read charged %v, want 0", hot)
	}
}

func TestPoolEviction(t *testing.T) {
	var clock Clock
	pool := NewBufferPool(2, HDD7200(), &clock) // tiny pool: 2 pages
	s, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tbl, _ := s.Create("t", []Column{{Name: "x", Kind: vector.KindInt64}})
	a, _ := tbl.NewAppender()
	xs := make([]int64, 5*PageSize/8) // 5 pages
	a.Append(vector.NewBatch(vector.FromInt64(xs)))
	a.Close()

	if _, err := tbl.ReadColumn(0, 0, int64(len(xs))); err != nil {
		t.Fatal(err)
	}
	if got := pool.CachedPages(); got > 2 {
		t.Errorf("pool holds %d pages, cap 2", got)
	}
	if pool.Stats().Evictions == 0 {
		t.Error("expected evictions with tiny pool")
	}
}

func TestSequentialVsRandomSeeks(t *testing.T) {
	var clock Clock
	pool := NewBufferPool(1024, HDD7200(), &clock)
	s, _ := Open(t.TempDir(), pool)
	defer s.Close()
	tbl, _ := s.Create("t", []Column{{Name: "x", Kind: vector.KindInt64}})
	a, _ := tbl.NewAppender()
	xs := make([]int64, 10*PageSize/8)
	a.Append(vector.NewBatch(vector.FromInt64(xs)))
	a.Close()

	pool.Flush()
	pool.ResetStats()
	if _, err := tbl.ReadColumn(0, 0, int64(len(xs))); err != nil {
		t.Fatal(err)
	}
	seq := pool.Stats().SeeksPayed
	if seq > 2 {
		t.Errorf("sequential scan payed %d seeks, want ≤2", seq)
	}

	pool.Flush()
	pool.ResetStats()
	rows := int64(len(xs))
	for i := int64(0); i < 5; i++ {
		// jump around: one row from each of the 10 pages, backwards
		if _, err := tbl.ReadRowsAt([]int{0}, []int64{rows - 1 - i*PageSize/8}); err != nil {
			t.Fatal(err)
		}
	}
	if rnd := pool.Stats().SeeksPayed; rnd < 4 {
		t.Errorf("random access payed %d seeks, want ≥4", rnd)
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	if d.Code("a") != 0 || d.Code("b") != 1 || d.Code("a") != 0 {
		t.Fatal("dict code assignment wrong")
	}
	if c, ok := d.CodeIfPresent("b"); !ok || c != 1 {
		t.Error("CodeIfPresent failed for present value")
	}
	if _, ok := d.CodeIfPresent("zzz"); ok {
		t.Error("CodeIfPresent found absent value")
	}
	path := filepath.Join(t.TempDir(), "d.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDict(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 || d2.Lookup(1) != "b" {
		t.Error("dict lost data across save/load")
	}
}

func TestDictRoundTripProperty(t *testing.T) {
	f := func(ss []string) bool {
		d := NewDict()
		codes := make([]int64, len(ss))
		for i, s := range ss {
			codes[i] = d.Code(s)
		}
		for i, s := range ss {
			if d.Lookup(codes[i]) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStorageRoundTripProperty(t *testing.T) {
	s := newTestStore(t)
	tbl, err := s.Create("prop", []Column{
		{Name: "i", Kind: vector.KindInt64},
		{Name: "f", Kind: vector.KindFloat64},
		{Name: "s", Kind: vector.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	f := func(is []int64, fs []float64, ss []string) bool {
		n := len(is)
		if len(fs) < n {
			n = len(fs)
		}
		if len(ss) < n {
			n = len(ss)
		}
		if n == 0 {
			return true
		}
		count++
		start := tbl.Rows()
		a, err := tbl.NewAppender()
		if err != nil {
			return false
		}
		err = a.Append(vector.NewBatch(
			vector.FromInt64(is[:n]), vector.FromFloat64(fs[:n]), vector.FromString(ss[:n])))
		if err != nil {
			return false
		}
		if err := a.Close(); err != nil {
			return false
		}
		got, err := tbl.ReadBatch([]int{0, 1, 2}, start, start+int64(n))
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Cols[0].Int64s()[i] != is[i] || got.Cols[2].Strings()[i] != ss[i] {
				return false
			}
			gf := got.Cols[1].Float64s()[i]
			if gf != fs[i] && !(gf != gf && fs[i] != fs[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	if count == 0 {
		t.Skip("quick generated no non-empty cases")
	}
}

func TestChargeMath(t *testing.T) {
	var c Clock
	m := DiskModel{SeekTime: 10 * time.Millisecond, TransferPerPage: time.Millisecond}
	m.ChargeRead(&c, 3, false)
	if c.Elapsed() != 13*time.Millisecond {
		t.Errorf("charge = %v, want 13ms", c.Elapsed())
	}
	c.Reset()
	m.ChargeRead(&c, 3, true)
	if c.Elapsed() != 3*time.Millisecond {
		t.Errorf("sequential charge = %v, want 3ms", c.Elapsed())
	}
	c.Reset()
	m.ChargeWrite(&c, PageSize+1)
	if c.Elapsed() != 2*time.Millisecond {
		t.Errorf("write charge = %v, want 2ms", c.Elapsed())
	}
	m.ChargeRead(nil, 5, false) // must not panic
	m.ChargeWrite(nil, 100)
}

func TestSizeOnDisk(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("t", []Column{{Name: "x", Kind: vector.KindInt64}})
	if tbl.SizeOnDisk() != 0 {
		t.Errorf("empty table size = %d", tbl.SizeOnDisk())
	}
	fill := make([]int64, 1000)
	a, _ := tbl.NewAppender()
	a.Append(vector.NewBatch(vector.FromInt64(fill)))
	a.Close()
	if got := tbl.SizeOnDisk(); got != 8000 {
		t.Errorf("size = %d, want 8000", got)
	}
	if s.SizeOnDisk() != 8000 {
		t.Errorf("store size = %d, want 8000", s.SizeOnDisk())
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("t", []Column{{Name: "x", Kind: vector.KindInt64}})
	a, _ := tbl.NewAppender()
	defer a.Close()
	if err := a.Append(vector.NewBatch(vector.FromString([]string{"no"}))); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := a.Append(vector.NewBatch(vector.FromInt64([]int64{1}), vector.FromInt64([]int64{2}))); err == nil {
		t.Error("column count mismatch accepted")
	}
}

func TestAppenderClosedRejects(t *testing.T) {
	s := newTestStore(t)
	tbl, _ := s.Create("t", []Column{{Name: "x", Kind: vector.KindInt64}})
	a, _ := tbl.NewAppender()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(vector.NewBatch(vector.FromInt64([]int64{1}))); err == nil {
		t.Error("append after close accepted")
	}
	if err := a.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}
