package storage

// Spill files are the on-disk form of frozen batch streams: the
// out-of-core layer serializes flight replay buffers and demoted
// result-cache entries into them and replays them through streaming,
// record-aligned reads. The format is a frame stream so a reader can
// follow a writer that is still appending (the mount service's late
// joiners replay from disk while the extraction runs):
//
//	header:  magic "RSPILL1\n" | u32 ncols | ncols × u8 kind
//	frame:   u8 tag
//	  batch (tag 1): u32 payloadLen | u32 nNewDict | nNewDict ×
//	                 (u32 len | bytes) | u32 rows | per column
//	                 rows × diskWidth(kind) bytes
//	  end   (tag 2): u32 totalBatches
//
// VARCHAR values are dictionary codes against a per-file dictionary
// built incrementally: each batch frame carries the strings first seen
// in that batch, in code order, so a sequential reader reconstructs the
// dictionary as it goes and never needs a side file. Fixed-width kinds
// use the column-file encoding (little-endian; DOUBLE via Float64bits,
// so NaN payloads and ±Inf survive bit-exactly).
//
// Every frame is written with one Write call, so a frame the writer has
// reported durable is fully visible to concurrent readers of the same
// file. I/O is charged to the engine's modeled disk: one sequential
// ChargeWrite per frame written, one ChargeRead per frame read (the
// first read of a file pays the seek).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/vector"
)

// ErrCorruptSpill marks a spill file that cannot be decoded: bad magic,
// a torn or truncated frame, an out-of-range dictionary code. Callers
// treat it as "the spilled data is gone", never as fatal.
var ErrCorruptSpill = errors.New("storage: corrupt spill file")

var spillMagic = [8]byte{'R', 'S', 'P', 'I', 'L', 'L', '1', '\n'}

const (
	spillFrameBatch = 1
	spillFrameEnd   = 2
)

// SpillFile is an owned temporary file handle with an explicit end of
// life: every CreateSpillFile must be paired with exactly one Remove
// (delete the temp file) or Adopt (keep it, ownership moves to the
// caller's bookkeeping) on every path — the releasecheck analyzer
// enforces the pairing, so a leaked spill temp file is a lint failure.
type SpillFile struct {
	f       *os.File
	path    string
	settled bool
}

// CreateSpillFile creates a uniquely named spill file in dir (pattern
// as in os.CreateTemp).
func CreateSpillFile(dir, pattern string) (*SpillFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, fmt.Errorf("storage: create spill file: %w", err)
	}
	return &SpillFile{f: f, path: f.Name()}, nil
}

// File returns the open write handle.
func (s *SpillFile) File() *os.File { return s.f }

// Path returns the file's path.
func (s *SpillFile) Path() string { return s.path }

// Remove closes the handle and deletes the file (best effort). Calling
// Remove or Adopt twice panics: like a double budget release, it means
// two owners believed they held the file.
func (s *SpillFile) Remove() {
	s.settle()
	s.f.Close()
	os.Remove(s.path)
}

// Adopt closes the write handle and keeps the file on disk, returning
// its path: ownership transfers to the caller (e.g. a cache manifest).
// On a close error the file is removed and the error returned; either
// way the handle is settled.
func (s *SpillFile) Adopt() (string, error) {
	s.settle()
	if err := s.f.Close(); err != nil {
		os.Remove(s.path)
		return "", fmt.Errorf("storage: adopt spill file: %w", err)
	}
	return s.path, nil
}

func (s *SpillFile) settle() {
	if s.settled {
		panic("storage: spill file already removed or adopted")
	}
	s.settled = true
}

// BatchWriter appends batch frames to a spill file. It is not safe for
// concurrent use; the out-of-core call sites write from exactly one
// goroutine per file.
type BatchWriter struct {
	w       io.Writer
	kinds   []vector.Kind
	dictIdx map[string]int64
	dictLen int64
	model   DiskModel
	clock   *Clock
	started bool
	batches int
	written int64
	scratch []byte
}

// NewBatchWriter returns a writer of the given column schema over w.
// The header is written lazily with the first frame.
func NewBatchWriter(w io.Writer, kinds []vector.Kind, model DiskModel, clock *Clock) *BatchWriter {
	ks := make([]vector.Kind, len(kinds))
	copy(ks, kinds)
	return &BatchWriter{w: w, kinds: ks, dictIdx: make(map[string]int64), model: model, clock: clock}
}

// Batches returns how many batch frames have been written.
func (w *BatchWriter) Batches() int { return w.batches }

// BytesWritten returns the total file bytes written so far.
func (w *BatchWriter) BytesWritten() int64 { return w.written }

func appendUint32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

func (w *BatchWriter) flush(frame []byte) error {
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("storage: write spill frame: %w", err)
	}
	w.written += int64(len(frame))
	w.model.ChargeWrite(w.clock, int64(len(frame)))
	return nil
}

// Append writes one batch as a frame. The batch's column kinds must
// match the writer's schema. Empty batches are valid frames.
func (w *BatchWriter) Append(b *vector.Batch) error {
	if b == nil {
		return errors.New("storage: BatchWriter.Append on nil batch")
	}
	if b.NumCols() != len(w.kinds) {
		return fmt.Errorf("storage: spill batch has %d columns, schema has %d", b.NumCols(), len(w.kinds))
	}
	if !w.started {
		w.started = true
		hdr := append([]byte{}, spillMagic[:]...)
		hdr = appendUint32(hdr, uint32(len(w.kinds)))
		for _, k := range w.kinds {
			hdr = append(hdr, byte(k))
		}
		if err := w.flush(hdr); err != nil {
			return err
		}
	}

	// Collect the strings this batch introduces, in code order.
	var newDict []string
	rows := b.Len()
	for i, col := range b.Cols {
		k := col.Kind()
		if k != w.kinds[i] {
			return fmt.Errorf("storage: spill batch column %d is %s, schema says %s", i, k, w.kinds[i])
		}
		if k == vector.KindString {
			for _, s := range col.Strings() {
				if _, ok := w.dictIdx[s]; !ok {
					w.dictIdx[s] = w.dictLen
					w.dictLen++
					newDict = append(newDict, s)
				}
			}
		}
	}
	payload := w.scratch[:0]
	payload = appendUint32(payload, uint32(len(newDict)))
	for _, s := range newDict {
		payload = appendUint32(payload, uint32(len(s)))
		payload = append(payload, s...)
	}
	payload = appendUint32(payload, uint32(rows))
	var codeBuf [8]byte
	for _, col := range b.Cols {
		if col.Kind() == vector.KindString {
			for _, s := range col.Strings() {
				binary.LittleEndian.PutUint64(codeBuf[:], uint64(w.dictIdx[s]))
				payload = append(payload, codeBuf[:]...)
			}
			continue
		}
		payload = encodeVector(payload, col)
	}

	frame := make([]byte, 0, 5+len(payload))
	frame = append(frame, spillFrameBatch)
	frame = appendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	if err := w.flush(frame); err != nil {
		return err
	}
	w.batches++
	w.scratch = payload[:0]
	return nil
}

// Finish writes the end frame. A file without one is either still being
// written or truncated; readers only treat end-framed files as complete.
func (w *BatchWriter) Finish() error {
	if !w.started {
		w.started = true
		hdr := append([]byte{}, spillMagic[:]...)
		hdr = appendUint32(hdr, uint32(len(w.kinds)))
		for _, k := range w.kinds {
			hdr = append(hdr, byte(k))
		}
		if err := w.flush(hdr); err != nil {
			return err
		}
	}
	frame := []byte{spillFrameEnd}
	frame = appendUint32(frame, uint32(w.batches))
	return w.flush(frame)
}

// WriteBatches writes a complete spill file (header, one frame per
// batch, end frame) at path, removing any partial file on error.
func WriteBatches(path string, kinds []vector.Kind, batches []*vector.Batch, model DiskModel, clock *Clock) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create spill %s: %w", path, err)
	}
	w := NewBatchWriter(f, kinds, model, clock)
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	}
	if err := w.Finish(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("storage: close spill %s: %w", path, err)
	}
	return nil
}

// BatchReader streams batches back out of a spill file in write order.
// It maintains its own dictionary state from the frames' deltas, so any
// number of readers can replay one file independently (including while
// a writer is still appending, as long as the caller only asks for
// frames the writer has already written).
type BatchReader struct {
	f       *os.File
	kinds   []vector.Kind
	dict    []string
	model   DiskModel
	clock   *Clock
	read    int // batch frames decoded
	first   bool
	done    bool
}

// OpenBatchReader opens a spill file and validates its header.
func OpenBatchReader(path string, model DiskModel, clock *Clock) (*BatchReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open spill %s: %w", path, err)
	}
	hdr := make([]byte, len(spillMagic)+4)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: short header", ErrCorruptSpill, path)
	}
	if [8]byte(hdr[:8]) != spillMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorruptSpill, path)
	}
	ncols := binary.LittleEndian.Uint32(hdr[8:])
	if ncols > 1<<16 {
		f.Close()
		return nil, fmt.Errorf("%w: %s: implausible column count %d", ErrCorruptSpill, path, ncols)
	}
	kb := make([]byte, ncols)
	if _, err := io.ReadFull(f, kb); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: short schema", ErrCorruptSpill, path)
	}
	kinds := make([]vector.Kind, ncols)
	for i, b := range kb {
		k := vector.Kind(b)
		if k == vector.KindInvalid || k > vector.KindTime {
			f.Close()
			return nil, fmt.Errorf("%w: %s: invalid column kind %d", ErrCorruptSpill, path, b)
		}
		kinds[i] = k
	}
	return &BatchReader{f: f, kinds: kinds, model: model, clock: clock, first: true}, nil
}

// Kinds returns the file's column schema.
func (r *BatchReader) Kinds() []vector.Kind {
	out := make([]vector.Kind, len(r.kinds))
	copy(out, r.kinds)
	return out
}

// Batches returns how many batch frames have been decoded so far.
func (r *BatchReader) Batches() int { return r.read }

// Close releases the file handle.
func (r *BatchReader) Close() error { return r.f.Close() }

func (r *BatchReader) charge(n int) {
	pages := (n + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	r.model.ChargeRead(r.clock, pages, !r.first)
	r.first = false
}

// Next decodes the next batch frame. It returns (nil, nil) at the end
// frame; hitting raw EOF or any undecodable bytes instead returns an
// error wrapping ErrCorruptSpill — a file without its end frame is
// truncated (or still being written, in which case the caller should
// not have read this far).
func (r *BatchReader) Next() (*vector.Batch, error) {
	if r.done {
		return nil, nil
	}
	var tag [1]byte
	if _, err := io.ReadFull(r.f, tag[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated before frame %d", ErrCorruptSpill, r.read)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.f, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: torn frame %d", ErrCorruptSpill, r.read)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	switch tag[0] {
	case spillFrameEnd:
		r.charge(5)
		if int(n) != r.read {
			return nil, fmt.Errorf("%w: end frame says %d batches, read %d", ErrCorruptSpill, n, r.read)
		}
		r.done = true
		return nil, nil
	case spillFrameBatch:
		payload := make([]byte, n)
		if _, err := io.ReadFull(r.f, payload); err != nil {
			return nil, fmt.Errorf("%w: torn frame %d", ErrCorruptSpill, r.read)
		}
		r.charge(5 + int(n))
		b, err := r.decodeFrame(payload)
		if err != nil {
			return nil, err
		}
		r.read++
		return b, nil
	default:
		return nil, fmt.Errorf("%w: unknown frame tag %d", ErrCorruptSpill, tag[0])
	}
}

func (r *BatchReader) decodeFrame(p []byte) (*vector.Batch, error) {
	torn := fmt.Errorf("%w: torn payload in frame %d", ErrCorruptSpill, r.read)
	u32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	nDict, ok := u32()
	if !ok {
		return nil, torn
	}
	for i := uint32(0); i < nDict; i++ {
		sl, ok := u32()
		if !ok || len(p) < int(sl) {
			return nil, torn
		}
		r.dict = append(r.dict, string(p[:sl]))
		p = p[sl:]
	}
	rows32, ok := u32()
	if !ok {
		return nil, torn
	}
	rows := int(rows32)
	cols := make([]*vector.Vector, len(r.kinds))
	for i, k := range r.kinds {
		need := rows * diskWidth(k)
		if len(p) < need {
			return nil, torn
		}
		raw := p[:need]
		p = p[need:]
		if k == vector.KindString {
			out := make([]string, rows)
			for j := 0; j < rows; j++ {
				code := int64(binary.LittleEndian.Uint64(raw[j*8:]))
				if code < 0 || code >= int64(len(r.dict)) {
					return nil, fmt.Errorf("%w: dictionary code %d out of range (%d entries)", ErrCorruptSpill, code, len(r.dict))
				}
				out[j] = r.dict[code]
			}
			cols[i] = vector.FromString(out)
			continue
		}
		cols[i] = decodeVector(k, raw, rows, nil)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in frame %d", ErrCorruptSpill, len(p), r.read)
	}
	return vector.NewBatch(cols...), nil
}
