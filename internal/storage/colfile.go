package storage

import (
	"encoding/binary"
	"math"

	"repro/internal/vector"
)

// Column files store fixed-width values little-endian: 8 bytes for
// BIGINT, DOUBLE and TIMESTAMP, 1 byte for BOOLEAN. VARCHAR columns are
// dictionary-encoded: the column file holds 8-byte dictionary codes and
// the dictionary itself lives beside it (see dict.go). Dictionary
// encoding matches what analytical column stores do for the
// low-cardinality strings that dominate scientific metadata (station
// codes, channel names, file URIs).

// diskWidth returns the on-disk width of one value of kind k.
func diskWidth(k vector.Kind) int {
	if k == vector.KindString {
		return 8 // dictionary code
	}
	return k.Width()
}

// encodeVector appends the binary form of v to dst. String vectors must
// be translated to codes by the caller; this function handles only fixed
// kinds.
func encodeVector(dst []byte, v *vector.Vector) []byte {
	switch v.Kind() {
	case vector.KindBool:
		for _, b := range v.Bools() {
			if b {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	case vector.KindInt64, vector.KindTime:
		var buf [8]byte
		for _, x := range v.Int64s() {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			dst = append(dst, buf[:]...)
		}
	case vector.KindFloat64:
		var buf [8]byte
		for _, x := range v.Float64s() {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			dst = append(dst, buf[:]...)
		}
	default:
		panic("storage: encodeVector on unsupported kind " + v.Kind().String())
	}
	return dst
}

// decodeVector decodes n values of kind k from raw into a fresh vector.
// For VARCHAR, raw holds codes and dict translates them to strings.
func decodeVector(k vector.Kind, raw []byte, n int, dict *Dict) *vector.Vector {
	switch k {
	case vector.KindBool:
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = raw[i] != 0
		}
		return vector.FromBool(out)
	case vector.KindInt64, vector.KindTime:
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			out[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		if k == vector.KindTime {
			return vector.FromTime(out)
		}
		return vector.FromInt64(out)
	case vector.KindFloat64:
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		return vector.FromFloat64(out)
	case vector.KindString:
		out := make([]string, n)
		for i := 0; i < n; i++ {
			code := int64(binary.LittleEndian.Uint64(raw[i*8:]))
			out[i] = dict.Lookup(code)
		}
		return vector.FromString(out)
	default:
		panic("storage: decodeVector on unsupported kind " + k.String())
	}
}
