package storage

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vector"
)

// randomVector builds a vector of kind k with n rows, drawing string
// values from a small pool (so dictionary codes collide across batches
// and columns) and salting doubles with NaN and ±Inf.
func randomVector(rng *rand.Rand, k vector.Kind, n int) *vector.Vector {
	switch k {
	case vector.KindBool:
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = rng.Intn(2) == 0
		}
		return vector.FromBool(vals)
	case vector.KindInt64:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63() - rng.Int63()
		}
		return vector.FromInt64(vals)
	case vector.KindTime:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << 50)
		}
		return vector.FromTime(vals)
	case vector.KindFloat64:
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(8) {
			case 0:
				vals[i] = math.NaN()
			case 1:
				vals[i] = math.Inf(1)
			case 2:
				vals[i] = math.Inf(-1)
			case 3:
				vals[i] = math.Copysign(0, -1) // negative zero
			default:
				vals[i] = rng.NormFloat64() * 1e9
			}
		}
		return vector.FromFloat64(vals)
	case vector.KindString:
		pool := []string{"", "BHZ", "BHN", "GE", "station-θ", "a\x00b", "repeat", "repeat "}
		vals := make([]string, n)
		for i := range vals {
			vals[i] = pool[rng.Intn(len(pool))]
		}
		return vector.FromString(vals)
	}
	panic("unreachable")
}

// sameValue compares one cell bit-exactly (NaN == NaN, -0 != +0 at the
// bit level — exactly what "byte-identical" demands).
func sameValue(t *testing.T, want, got *vector.Vector, row int) bool {
	t.Helper()
	if want.Kind() == vector.KindFloat64 {
		return math.Float64bits(want.Float64s()[row]) == math.Float64bits(got.Float64s()[row])
	}
	return want.Get(row) == got.Get(row)
}

func assertBatchesEqual(t *testing.T, want, got []*vector.Batch) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("round trip returned %d batches, want %d", len(got), len(want))
	}
	for bi := range want {
		w, g := want[bi], got[bi]
		if w.Len() != g.Len() || w.NumCols() != g.NumCols() {
			t.Fatalf("batch %d shape: got %dx%d, want %dx%d", bi, g.Len(), g.NumCols(), w.Len(), w.NumCols())
		}
		for ci := range w.Cols {
			if w.Cols[ci].Kind() != g.Cols[ci].Kind() {
				t.Fatalf("batch %d col %d kind %s, want %s", bi, ci, g.Cols[ci].Kind(), w.Cols[ci].Kind())
			}
			for r := 0; r < w.Len(); r++ {
				if !sameValue(t, w.Cols[ci], g.Cols[ci], r) {
					t.Fatalf("batch %d col %d row %d: got %s, want %s",
						bi, ci, r, g.Cols[ci].Format(r), w.Cols[ci].Format(r))
				}
			}
		}
	}
}

func readAll(t *testing.T, path string, model DiskModel, clock *Clock) []*vector.Batch {
	t.Helper()
	r, err := OpenBatchReader(path, model, clock)
	if err != nil {
		t.Fatalf("OpenBatchReader: %v", err)
	}
	defer r.Close()
	var out []*vector.Batch
	for {
		b, err := r.Next()
		if err != nil {
			t.Fatalf("Next (batch %d): %v", len(out), err)
		}
		if b == nil {
			return out
		}
		out = append(out, b)
	}
}

// TestSpillRoundTripProperty is the satellite-1 property test: random
// batches over every vector kind — shared and frozen handles, sliced
// (selection) windows, NaN/±Inf doubles, empty batches, dictionary
// collisions across batches — survive write→read byte-identically.
func TestSpillRoundTripProperty(t *testing.T) {
	kinds := []vector.Kind{
		vector.KindString, vector.KindInt64, vector.KindTime,
		vector.KindFloat64, vector.KindBool, vector.KindString,
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		nBatches := rng.Intn(8)
		var batches []*vector.Batch
		for i := 0; i < nBatches; i++ {
			n := rng.Intn(200)
			if rng.Intn(5) == 0 {
				n = 0 // empty batches are valid frames
			}
			cols := make([]*vector.Vector, len(kinds))
			for ci, k := range kinds {
				cols[ci] = randomVector(rng, k, n)
			}
			b := vector.NewBatch(cols...)
			switch rng.Intn(3) {
			case 0:
				b.Freeze() // frozen storage serializes like any other
			case 1:
				if n > 1 {
					lo := rng.Intn(n)
					b = b.Slice(lo, lo+rng.Intn(n-lo)) // aliased selection window
				}
			default:
				b = b.Share() // extra handle on shared storage
			}
			batches = append(batches, b)
		}

		path := filepath.Join(t.TempDir(), "trip.spill")
		clock := &Clock{}
		if err := WriteBatches(path, kinds, batches, SSD(), clock); err != nil {
			t.Fatalf("trial %d: WriteBatches: %v", trial, err)
		}
		wrote := clock.Elapsed()
		if wrote <= 0 {
			t.Errorf("trial %d: writes charged no modeled I/O", trial)
		}
		got := readAll(t, path, SSD(), clock)
		if clock.Elapsed() <= wrote {
			t.Errorf("trial %d: reads charged no modeled I/O", trial)
		}
		assertBatchesEqual(t, batches, got)
	}
}

// TestSpillReadWhileWriting pins the streaming contract the mount
// service relies on: frames already appended are fully readable while
// the writer is still open (no end frame yet), by more than one
// independent reader.
func TestSpillReadWhileWriting(t *testing.T) {
	dir := t.TempDir()
	sf, err := CreateSpillFile(dir, "flight-*.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Remove()
	kinds := []vector.Kind{vector.KindString, vector.KindFloat64}
	w := NewBatchWriter(sf.File(), kinds, NoCost(), nil)

	mk := func(seed int64) *vector.Batch {
		rng := rand.New(rand.NewSource(seed))
		return vector.NewBatch(randomVector(rng, kinds[0], 50), randomVector(rng, kinds[1], 50))
	}
	var want []*vector.Batch
	readers := make([]*BatchReader, 2)
	for i := 0; i < 6; i++ {
		b := mk(int64(i))
		if err := w.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, b)
		// Each reader lags the writer by a different amount.
		for ri := range readers {
			if readers[ri] == nil && i >= ri*2 {
				r, err := OpenBatchReader(sf.Path(), NoCost(), nil)
				if err != nil {
					t.Fatalf("reader %d: %v", ri, err)
				}
				defer r.Close()
				readers[ri] = r
			}
		}
		got, err := readers[0].Next()
		if err != nil {
			t.Fatalf("read-behind-write %d: %v", i, err)
		}
		assertBatchesEqual(t, []*vector.Batch{b}, []*vector.Batch{got})
	}
	// The lagging reader catches up over the still-unfinished file.
	for i := 0; i < 6; i++ {
		got, err := readers[1].Next()
		if err != nil {
			t.Fatalf("lagging reader batch %d: %v", i, err)
		}
		assertBatchesEqual(t, []*vector.Batch{want[i]}, []*vector.Batch{got})
	}
}

// TestSpillCorruptionDetected: every mangling of a valid file surfaces
// as ErrCorruptSpill (open or read time), never a panic or a wrong
// decode.
func TestSpillCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	kinds := []vector.Kind{vector.KindString, vector.KindInt64}
	rng := rand.New(rand.NewSource(42))
	batches := []*vector.Batch{
		vector.NewBatch(randomVector(rng, kinds[0], 64), randomVector(rng, kinds[1], 64)),
		vector.NewBatch(randomVector(rng, kinds[0], 64), randomVector(rng, kinds[1], 64)),
	}
	path := filepath.Join(dir, "good.spill")
	if err := WriteBatches(path, kinds, batches, NoCost(), nil); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mangle := func(name string, f func([]byte) []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, f(append([]byte{}, good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenBatchReader(p, NoCost(), nil)
		if err != nil {
			if !errors.Is(err, ErrCorruptSpill) {
				t.Errorf("%s: open error %v, want ErrCorruptSpill", name, err)
			}
			return
		}
		defer r.Close()
		for {
			b, err := r.Next()
			if err != nil {
				if !errors.Is(err, ErrCorruptSpill) {
					t.Errorf("%s: read error %v, want ErrCorruptSpill", name, err)
				}
				return
			}
			if b == nil {
				t.Errorf("%s: mangled file decoded cleanly", name)
				return
			}
		}
	}
	mangle("magic.spill", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mangle("kind.spill", func(b []byte) []byte { b[12] = 99; return b })
	mangle("trunc-frame.spill", func(b []byte) []byte { return b[:len(b)-20] })
	mangle("no-end.spill", func(b []byte) []byte { return b[:len(b)-5] })
	mangle("tag.spill", func(b []byte) []byte { b[len(spillMagic)+4+len(kinds)] = 77; return b })
	mangle("empty.spill", func(b []byte) []byte { return b[:0] })
}

// TestSpillFilePairing pins the SpillFile ownership contract the
// releasecheck analyzer enforces statically: Remove deletes, Adopt
// keeps, and a second settle of either flavor panics.
func TestSpillFilePairing(t *testing.T) {
	dir := t.TempDir()
	sf, err := CreateSpillFile(dir, "t-*.spill")
	if err != nil {
		t.Fatal(err)
	}
	path := sf.Path()
	sf.Remove()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("Remove left %s behind", path)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Remove did not panic")
			}
		}()
		sf.Remove()
	}()

	sf2, err := CreateSpillFile(dir, "t-*.spill")
	if err != nil {
		t.Fatal(err)
	}
	kept, err := sf2.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(kept); err != nil {
		t.Errorf("Adopt did not keep %s: %v", kept, err)
	}
}
