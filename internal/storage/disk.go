// Package storage implements the disk-backed column storage layer of the
// engine: column files, a buffer pool with LRU eviction, and an explicit
// disk cost model.
//
// The cost model exists because the reproduction's experiments (Figure 3
// of the paper) depend on *who pays I/O when*: the eager-ingestion
// baseline pays to page in the full actual-data table and its foreign-key
// indexes on cold runs, while ALi pays only for metadata plus the files
// of interest. Since a sandbox cannot drop the OS page cache, every
// buffer-pool miss charges a modeled seek/transfer cost to a virtual
// clock; benchmarks report wall time plus this modeled I/O time.
package storage

import (
	"sync/atomic"
	"time"
)

// PageSize is the unit of buffer-pool caching and of modeled transfer.
const PageSize = 64 * 1024

// DiskModel describes the modeled storage device. The defaults mirror the
// paper's testbed: a 7200-rpm hard disk (≈9 ms average seek, ≈120 MB/s
// sequential transfer).
type DiskModel struct {
	// SeekTime is charged for each non-sequential page access.
	SeekTime time.Duration
	// TransferPerPage is charged for every page moved (read or write).
	TransferPerPage time.Duration
}

// HDD7200 returns the default model used throughout the benchmarks.
func HDD7200() DiskModel {
	return DiskModel{
		SeekTime:        9 * time.Millisecond,
		TransferPerPage: transferTime(120 * 1024 * 1024),
	}
}

// SSD returns a model of a commodity SATA SSD, used by ablation benches.
func SSD() DiskModel {
	return DiskModel{
		SeekTime:        80 * time.Microsecond,
		TransferPerPage: transferTime(500 * 1024 * 1024),
	}
}

// transferTime returns the time to move one page at the given sequential
// bandwidth in bytes per second.
func transferTime(bytesPerSec float64) time.Duration {
	return time.Duration(float64(PageSize) / bytesPerSec * float64(time.Second))
}

// NoCost returns a free disk, useful in unit tests that assert only on
// data correctness.
func NoCost() DiskModel { return DiskModel{} }

// Clock accumulates modeled I/O time. It is safe for concurrent use.
type Clock struct {
	ns atomic.Int64
}

// Add charges d to the clock.
func (c *Clock) Add(d time.Duration) { c.ns.Add(int64(d)) }

// Elapsed returns the total modeled time charged so far.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.ns.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns.Store(0) }

// ChargeRead charges the cost of reading n pages, the first of which
// requires a seek when sequential is false.
func (m DiskModel) ChargeRead(c *Clock, pages int, sequential bool) {
	if c == nil || pages <= 0 {
		return
	}
	d := time.Duration(pages) * m.TransferPerPage
	if !sequential {
		d += m.SeekTime
	}
	c.Add(d)
}

// ChargeWrite charges the cost of writing n bytes sequentially (appends
// are sequential by construction).
func (m DiskModel) ChargeWrite(c *Clock, bytes int64) {
	if c == nil || bytes <= 0 {
		return
	}
	pages := (bytes + PageSize - 1) / PageSize
	c.Add(time.Duration(pages) * m.TransferPerPage)
}
