package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/vector"
)

// Column describes one column of a stored table.
type Column struct {
	Name string      `json:"name"`
	Kind vector.Kind `json:"kind"`
}

// tableMeta is the persisted form of a table's schema.
type tableMeta struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Rows    int64    `json:"rows"`
}

// Table is a disk-backed column table. All reads go through the owning
// store's buffer pool so cold/hot behaviour is observable.
type Table struct {
	store *Store
	name  string
	dir   string

	mu    sync.RWMutex
	cols  []Column
	rows  int64
	dicts []*Dict // per column; nil unless VARCHAR

	files map[string]*os.File // open read handles by path
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the table's column descriptors.
func (t *Table) Columns() []Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Column, len(t.cols))
	copy(out, t.cols)
	return out
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, c := range t.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Rows returns the current row count.
func (t *Table) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Dict returns the dictionary of a VARCHAR column (nil otherwise).
func (t *Table) Dict(col int) *Dict {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dicts[col]
}

func (t *Table) colPath(i int) string {
	return filepath.Join(t.dir, t.cols[i].Name+".col")
}

func (t *Table) dictPath(i int) string {
	return filepath.Join(t.dir, t.cols[i].Name+".dict.json")
}

func (t *Table) metaPath() string { return filepath.Join(t.dir, "schema.json") }

func (t *Table) saveMeta() error {
	meta := tableMeta{Name: t.name, Columns: t.cols, Rows: t.rows}
	data, err := json.MarshalIndent(meta, "", " ")
	if err != nil {
		return fmt.Errorf("storage: marshal schema: %w", err)
	}
	return os.WriteFile(t.metaPath(), data, 0o644)
}

func (t *Table) handle(path string) (*os.File, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.files[path]; ok {
		return f, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t.files[path] = f
	return f, nil
}

func (t *Table) dropHandle(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.files[path]; ok {
		f.Close()
		delete(t.files, path)
	}
}

// ReadColumn reads rows [from, to) of column col into a vector, going
// through the buffer pool.
func (t *Table) ReadColumn(col int, from, to int64) (*vector.Vector, error) {
	t.mu.RLock()
	kind := t.cols[col].Kind
	rows := t.rows
	dict := t.dicts[col]
	t.mu.RUnlock()
	if from < 0 || to > rows || from > to {
		return nil, fmt.Errorf("storage: read rows [%d,%d) of %s.%s with %d rows",
			from, to, t.name, t.cols[col].Name, rows)
	}
	n := int(to - from)
	if n == 0 {
		return vector.New(kind, 0), nil
	}
	w := diskWidth(kind)
	path := t.colPath(col)
	f, err := t.handle(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n*w)
	if err := t.store.pool.ReadAt(path, f, buf, from*int64(w)); err != nil {
		return nil, fmt.Errorf("storage: read %s.%s: %w", t.name, t.cols[col].Name, err)
	}
	return decodeVector(kind, buf, n, dict), nil
}

// ReadBatch reads rows [from, to) of the given columns. The returned
// batch is freshly decoded, exclusively owned storage: post-ingestion
// tables are frozen on disk, and every reader gets its own copy to
// mutate freely.
func (t *Table) ReadBatch(cols []int, from, to int64) (*vector.Batch, error) {
	out := make([]*vector.Vector, len(cols))
	for i, c := range cols {
		v, err := t.ReadColumn(c, from, to)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return vector.NewBatch(out...), nil
}

// ReadRowsAt gathers the values of the given columns at arbitrary row
// positions (point access, as an index lookup would do). Each distinct
// page touched is paid for via the buffer pool.
func (t *Table) ReadRowsAt(cols []int, rowIDs []int64) (*vector.Batch, error) {
	out := make([]*vector.Vector, len(cols))
	for i, c := range cols {
		t.mu.RLock()
		kind := t.cols[c].Kind
		dict := t.dicts[c]
		t.mu.RUnlock()
		w := diskWidth(kind)
		path := t.colPath(c)
		f, err := t.handle(path)
		if err != nil {
			return nil, err
		}
		raw := make([]byte, len(rowIDs)*w)
		one := make([]byte, w)
		for j, r := range rowIDs {
			if err := t.store.pool.ReadAt(path, f, one, r*int64(w)); err != nil {
				return nil, fmt.Errorf("storage: point read %s.%s row %d: %w", t.name, t.cols[c].Name, r, err)
			}
			copy(raw[j*w:], one)
		}
		out[i] = decodeVector(kind, raw, len(rowIDs), dict)
	}
	return vector.NewBatch(out...), nil
}

// SizeOnDisk returns the total bytes of this table's column files and
// dictionaries.
func (t *Table) SizeOnDisk() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for i := range t.cols {
		if st, err := os.Stat(t.colPath(i)); err == nil {
			total += st.Size()
		}
		if t.dicts[i] != nil {
			if st, err := os.Stat(t.dictPath(i)); err == nil {
				total += st.Size()
			}
		}
	}
	return total
}

// Truncate removes all rows, keeping the schema.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.cols {
		path := t.colPath(i)
		if f, ok := t.files[path]; ok {
			f.Close()
			delete(t.files, path)
		}
		if err := os.Truncate(path, 0); err != nil && !os.IsNotExist(err) {
			return err
		}
		t.store.pool.Invalidate(path)
		if t.dicts[i] != nil {
			t.dicts[i] = NewDict()
		}
	}
	t.rows = 0
	return t.saveMeta()
}

func (t *Table) closeHandles() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p, f := range t.files {
		f.Close()
		delete(t.files, p)
	}
}

// Appender buffers rows and writes them to the table's column files.
// It is not safe for concurrent use. Close must be called to persist the
// row count and dictionaries.
type Appender struct {
	t       *Table
	writers []*bufio.Writer
	files   []*os.File
	scratch []byte
	rows    int64
	closed  bool
}

// NewAppender opens the table's column files for appending.
func (t *Table) NewAppender() (*Appender, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := &Appender{t: t}
	for i := range t.cols {
		path := t.colPath(i)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			for _, prev := range a.files {
				prev.Close()
			}
			return nil, fmt.Errorf("storage: open %s for append: %w", path, err)
		}
		a.files = append(a.files, f)
		a.writers = append(a.writers, bufio.NewWriterSize(f, 1<<20))
	}
	return a, nil
}

// Append writes one batch whose columns must match the table schema in
// order and kind (VARCHAR accepts string vectors; TIMESTAMP accepts
// BIGINT and vice versa). Append only reads the batch and retains no
// reference to it: callers may pass copy-on-write shares and reuse or
// truncate their buffers as soon as Append returns (ingest's row
// buffers do exactly that).
func (a *Appender) Append(b *vector.Batch) error {
	if a.closed {
		return fmt.Errorf("storage: append on closed appender")
	}
	a.t.mu.RLock()
	cols := a.t.cols
	dicts := a.t.dicts
	a.t.mu.RUnlock()
	if b.NumCols() != len(cols) {
		return fmt.Errorf("storage: append %d columns to table %s with %d", b.NumCols(), a.t.name, len(cols))
	}
	for i, v := range b.Cols {
		want := cols[i].Kind
		got := v.Kind()
		timeCompat := (want == vector.KindTime && got == vector.KindInt64) ||
			(want == vector.KindInt64 && got == vector.KindTime)
		if got != want && !timeCompat {
			return fmt.Errorf("storage: column %s kind %s, batch has %s", cols[i].Name, want, got)
		}
		a.scratch = a.scratch[:0]
		if want == vector.KindString {
			var buf [8]byte
			for _, s := range v.Strings() {
				binary.LittleEndian.PutUint64(buf[:], uint64(dicts[i].Code(s)))
				a.scratch = append(a.scratch, buf[:]...)
			}
		} else {
			a.scratch = encodeVector(a.scratch, v)
		}
		if _, err := a.writers[i].Write(a.scratch); err != nil {
			return fmt.Errorf("storage: write column %s: %w", cols[i].Name, err)
		}
	}
	a.rows += int64(b.Len())
	return nil
}

// Close flushes the writers, charges the modeled write cost, persists
// dictionaries and row counts, and invalidates stale cached pages.
func (a *Appender) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	t := a.t
	var written int64
	for i, w := range a.writers {
		if err := w.Flush(); err != nil {
			return fmt.Errorf("storage: flush column %s: %w", t.cols[i].Name, err)
		}
		if st, err := a.files[i].Stat(); err == nil {
			written += st.Size()
		}
		a.files[i].Close()
	}
	t.store.pool.Model().ChargeWrite(t.store.pool.Clock(), written)
	t.mu.Lock()
	t.rows += a.rows
	t.mu.Unlock()
	for i := range t.cols {
		t.store.pool.Invalidate(t.colPath(i))
		t.dropHandle(t.colPath(i))
		if t.dicts[i] != nil {
			if err := t.dicts[i].Save(t.dictPath(i)); err != nil {
				return err
			}
		}
	}
	return t.saveMeta()
}
