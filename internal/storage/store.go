package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store manages the tables of one database directory. All tables share
// one buffer pool (and therefore one disk model and virtual clock).
type Store struct {
	dir  string
	pool *BufferPool

	mu     sync.RWMutex
	tables map[string]*Table
}

// Open opens (or creates) a database directory. Existing tables are
// discovered from their schema.json files.
func Open(dir string, pool *BufferPool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create db dir: %w", err)
	}
	s := &Store{dir: dir, pool: pool, tables: make(map[string]*Table)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		metaPath := filepath.Join(dir, e.Name(), "schema.json")
		data, err := os.ReadFile(metaPath)
		if err != nil {
			continue // not a table directory
		}
		var meta tableMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("storage: corrupt schema %s: %w", metaPath, err)
		}
		t, err := s.attach(meta)
		if err != nil {
			return nil, err
		}
		s.tables[t.name] = t
	}
	return s, nil
}

// Dir returns the database directory.
func (s *Store) Dir() string { return s.dir }

// Pool returns the shared buffer pool.
func (s *Store) Pool() *BufferPool { return s.pool }

func (s *Store) attach(meta tableMeta) (*Table, error) {
	t := &Table{
		store: s,
		name:  meta.Name,
		dir:   filepath.Join(s.dir, meta.Name),
		cols:  meta.Columns,
		rows:  meta.Rows,
		dicts: make([]*Dict, len(meta.Columns)),
		files: make(map[string]*os.File),
	}
	for i, c := range meta.Columns {
		if c.Kind.Width() == 0 && !c.Kind.Fixed() {
			d, err := LoadDict(t.dictPath(i))
			if errors.Is(err, fs.ErrNotExist) {
				d = NewDict()
			} else if err != nil {
				return nil, err
			}
			t.dicts[i] = d
		}
	}
	return t, nil
}

// Create makes a new empty table. It fails if the name is taken.
func (s *Store) Create(name string, cols []Column) (*Table, error) {
	if name == "" || len(cols) == 0 {
		return nil, fmt.Errorf("storage: create table needs a name and columns")
	}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("storage: duplicate column %q in table %s", c.Name, name)
		}
		seen[c.Name] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("storage: table %s already exists", name)
	}
	dir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &Table{
		store: s,
		name:  name,
		dir:   dir,
		cols:  append([]Column(nil), cols...),
		dicts: make([]*Dict, len(cols)),
		files: make(map[string]*os.File),
	}
	for i, c := range cols {
		if c.Kind.Width() == 0 && !c.Kind.Fixed() {
			t.dicts[i] = NewDict()
		}
		// Ensure the column file exists so a freshly created table can be
		// scanned before its first append.
		f, err := os.OpenFile(t.colPath(i), os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		f.Close()
	}
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	s.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// MustTable looks up a table and panics if absent; for internal callers
// whose schema is fixed at engine initialization.
func (s *Store) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: missing table %s", name))
	}
	return t
}

// Tables returns the names of all tables, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a table and its files.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("storage: drop of unknown table %s", name)
	}
	t.closeHandles()
	for i := range t.cols {
		s.pool.Invalidate(t.colPath(i))
	}
	delete(s.tables, name)
	return os.RemoveAll(t.dir)
}

// SizeOnDisk returns the total bytes of all tables.
func (s *Store) SizeOnDisk() int64 {
	s.mu.RLock()
	names := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		names = append(names, t)
	}
	s.mu.RUnlock()
	var total int64
	for _, t := range names {
		total += t.SizeOnDisk()
	}
	return total
}

// Close releases all open file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tables {
		t.closeHandles()
	}
	return nil
}
