package explore

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBudgetExceeded is returned when a query's breakpoint estimate
// exceeds the session budget and the policy is to refuse rather than ask.
var ErrBudgetExceeded = errors.New("explore: estimated cost exceeds session budget")

// Decision is what the explorer (or the budget policy acting for him)
// chooses at the breakpoint: "let him even change the destiny of his
// query, interacting with the system" (paper §5).
type Decision int

// Breakpoint decisions.
const (
	// Proceed continues with the second stage.
	Proceed Decision = iota
	// Abort cancels the query at the breakpoint; no actual data is
	// ingested.
	Abort
)

// BudgetPolicy decides at the breakpoint based on the estimate. The
// paper's "one-minute database kernel" is MaxCost(time.Minute).
type BudgetPolicy func(Estimate) Decision

// MaxCost aborts queries whose estimated second-stage cost exceeds d.
func MaxCost(d time.Duration) BudgetPolicy {
	return func(e Estimate) Decision {
		if e.EstCost > d {
			return Abort
		}
		return Proceed
	}
}

// MaxRows aborts queries whose estimated result exceeds n rows —
// guarding against "a completely incomprehensible answer of millions of
// rows" (paper §5).
func MaxRows(n int64) BudgetPolicy {
	return func(e Estimate) Decision {
		if e.EstRows > n {
			return Abort
		}
		return Proceed
	}
}

// AlwaysProceed is the identity policy.
func AlwaysProceed(Estimate) Decision { return Proceed }

// Record is one executed (or aborted) query in an exploration session.
type Record struct {
	SQL      string
	At       time.Time
	Estimate Estimate
	Decision Decision
	Rows     int
	Wall     time.Duration
	Err      error
}

// Session tracks a sequence of exploration queries — the "lengthy
// sequence of queries" the paper's explorer fires — together with the
// budget policy applied at every breakpoint.
type Session struct {
	mu      sync.Mutex
	policy  BudgetPolicy
	history []Record
}

// NewSession returns a session with the given policy (nil means
// AlwaysProceed).
func NewSession(policy BudgetPolicy) *Session {
	if policy == nil {
		policy = AlwaysProceed
	}
	return &Session{policy: policy}
}

// Decide applies the session policy to a breakpoint estimate.
func (s *Session) Decide(e Estimate) Decision {
	return s.policy(e)
}

// Log appends a record to the session history.
func (s *Session) Log(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = append(s.history, r)
}

// History returns a copy of the session history.
func (s *Session) History() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.history))
	copy(out, s.history)
	return out
}

// Summary renders the session so far: what was asked, what it cost, what
// was refused.
func (s *Session) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ""
	for i, r := range s.history {
		status := fmt.Sprintf("%d rows in %v", r.Rows, r.Wall.Round(time.Millisecond))
		if r.Decision == Abort {
			status = "aborted at breakpoint (" + r.Estimate.String() + ")"
		}
		if r.Err != nil {
			status = "error: " + r.Err.Error()
		}
		out += fmt.Sprintf("%2d. %s\n    %s\n", i+1, r.SQL, status)
	}
	return out
}
