package explore

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

func stageOneResult() ([]plan.ColInfo, []*vector.Batch) {
	schema := []plan.ColInfo{
		{Table: "F", Name: "uri", Kind: vector.KindString},
		{Table: "F", Name: "size_bytes", Kind: vector.KindInt64},
		{Table: "R", Name: "uri", Kind: vector.KindString},
		{Table: "R", Name: "start_time", Kind: vector.KindTime},
		{Table: "R", Name: "end_time", Kind: vector.KindTime},
		{Table: "R", Name: "nsamples", Kind: vector.KindInt64},
	}
	// Two files, two records each; record spans of 100 units.
	b := vector.NewBatch(
		vector.FromString([]string{"a", "a", "b", "b"}),
		vector.FromInt64([]int64{4096, 4096, 8192, 8192}),
		vector.FromString([]string{"a", "a", "b", "b"}),
		vector.FromTime([]int64{0, 100, 0, 100}),
		vector.FromTime([]int64{99, 199, 99, 199}),
		vector.FromInt64([]int64{1000, 1000, 1000, 1000}),
	)
	return schema, []*vector.Batch{b}
}

func baseInput() EstimateInput {
	schema, rows := stageOneResult()
	return EstimateInput{
		Schema: schema, Rows: rows,
		URICol: "R.uri", SizeCol: "size_bytes", NSamplesCol: "nsamples",
		SpanLoCol: "start_time", SpanHiCol: "end_time",
		SpanLo: math.MinInt64, SpanHi: math.MaxInt64,
		Disk: storage.HDD7200(),
	}
}

func TestComputeCounts(t *testing.T) {
	est := Compute(baseInput())
	if est.Files != 2 || est.Records != 4 {
		t.Errorf("files/records = %d/%d, want 2/4", est.Files, est.Records)
	}
	if est.BytesToMount != 4096+8192 {
		t.Errorf("bytes = %d", est.BytesToMount)
	}
	if est.EstRows != 4000 {
		t.Errorf("unbounded est rows = %d, want 4000", est.EstRows)
	}
	if est.EstCost <= 0 {
		t.Error("no cost estimated")
	}
	if est.Empty {
		t.Error("non-empty marked empty")
	}
}

func TestComputeWindowedRows(t *testing.T) {
	in := baseInput()
	in.SpanLo, in.SpanHi = 0, 49 // half of the first record of each file
	est := Compute(in)
	// 2 files x 1 record x ~half of 1000 samples.
	if est.EstRows < 800 || est.EstRows > 1200 {
		t.Errorf("windowed est rows = %d, want ~1000", est.EstRows)
	}
}

func TestComputeCachedFilesExcluded(t *testing.T) {
	in := baseInput()
	in.IsCached = func(uri string) bool { return uri == "b" }
	est := Compute(in)
	if est.BytesToMount != 4096 {
		t.Errorf("cached file still counted: %d bytes", est.BytesToMount)
	}
}

func TestComputeEmpty(t *testing.T) {
	in := baseInput()
	in.Rows = nil
	est := Compute(in)
	if !est.Empty || est.Files != 0 {
		t.Errorf("empty input: %+v", est)
	}
	if !strings.Contains(est.String(), "empty result") {
		t.Errorf("String = %q", est.String())
	}
}

func TestComputeMissingColumnsDegrade(t *testing.T) {
	in := baseInput()
	in.SizeCol, in.NSamplesCol = "", ""
	est := Compute(in)
	if est.Files != 2 {
		t.Error("file count should survive missing hints")
	}
	if est.EstRows != 0 || est.BytesToMount != 0 {
		t.Error("estimates should degrade to zero without hint columns")
	}
	in.URICol = "nope"
	if got := Compute(in); got.Files != 0 {
		t.Error("unknown URI column should yield an empty estimate")
	}
}

func TestExpectedRowsEdgeCases(t *testing.T) {
	if expectedRows(100, 0, 99, 200, 300) != 0 {
		t.Error("disjoint should be 0")
	}
	if expectedRows(100, 0, 99, 0, 99) != 100 {
		t.Error("exact cover should be all")
	}
	if got := expectedRows(100, 0, 99, 98, 200); got < 1 || got > 5 {
		t.Errorf("sliver overlap = %d, want >=1 and small", got)
	}
	if expectedRows(100, 50, 50, 0, 100) != 100 {
		t.Error("zero-width record inside window should count fully")
	}
	if expectedRows(0, 0, 10, 0, 10) != 0 {
		t.Error("empty record contributes rows")
	}
}

func TestEstimateString(t *testing.T) {
	est := Estimate{Files: 3, Records: 12, EstRows: 480, BytesToMount: 2 << 20, EstCost: 123 * time.Millisecond}
	s := est.String()
	for _, want := range []string{"3 files", "12 records", "480", "2.0 MB", "123ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("estimate string %q missing %q", s, want)
		}
	}
}

func TestBudgetPolicies(t *testing.T) {
	cheap := Estimate{EstCost: time.Second, EstRows: 100}
	pricey := Estimate{EstCost: time.Hour, EstRows: 10_000_000}
	if MaxCost(time.Minute)(cheap) != Proceed {
		t.Error("cheap query refused")
	}
	if MaxCost(time.Minute)(pricey) != Abort {
		t.Error("one-minute kernel let an hour-long query through")
	}
	if MaxRows(1000)(cheap) != Proceed || MaxRows(1000)(pricey) != Abort {
		t.Error("MaxRows policy wrong")
	}
	if AlwaysProceed(pricey) != Proceed {
		t.Error("AlwaysProceed aborted")
	}
}

func TestSessionHistory(t *testing.T) {
	s := NewSession(MaxRows(100))
	if s.Decide(Estimate{EstRows: 5}) != Proceed {
		t.Error("decide wrong")
	}
	s.Log(Record{SQL: "SELECT 1", Rows: 1, Wall: time.Millisecond})
	s.Log(Record{SQL: "SELECT big", Decision: Abort, Estimate: Estimate{EstRows: 1e9, Files: 9}})
	h := s.History()
	if len(h) != 2 || h[0].SQL != "SELECT 1" {
		t.Fatalf("history = %+v", h)
	}
	sum := s.Summary()
	if !strings.Contains(sum, "aborted at breakpoint") || !strings.Contains(sum, "SELECT 1") {
		t.Errorf("summary = %q", sum)
	}
}

func TestNilPolicyDefaults(t *testing.T) {
	s := NewSession(nil)
	if s.Decide(Estimate{EstRows: math.MaxInt64}) != Proceed {
		t.Error("nil policy should always proceed")
	}
}
