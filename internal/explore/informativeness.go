// Package explore implements the exploration-support layer sketched in
// the paper's Challenges section: quantifying a query's informativeness
// at the breakpoint between the two execution stages, budget policies
// that realize the "one-minute database kernel" idea, and session
// history for a sequence of exploration queries.
package explore

import (
	"fmt"
	"time"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Estimate is the informativeness model computed at the breakpoint from
// the first stage's result: how much actual data the second stage would
// ingest and touch, what it will cost, and how large the answer will be.
// "We gain insight about explorer's interest and the query's
// informativeness" (paper §1) — this is that insight, quantified.
type Estimate struct {
	// Files and Records of interest identified by Qf.
	Files   int
	Records int64
	// EstRows estimates the rows of actual data satisfying the query's
	// span selection (from record spans and sample counts — metadata only).
	EstRows int64
	// BytesToMount is the compressed repository bytes the second stage
	// must read (cached files excluded).
	BytesToMount int64
	// EstCost is the modeled second-stage time: mount I/O plus per-row
	// CPU.
	EstCost time.Duration
	// Empty marks a provably empty answer: zero files of interest.
	Empty bool
}

// String renders the estimate the way the explorer sees it at the
// breakpoint.
func (e Estimate) String() string {
	if e.Empty {
		return "empty result: no files of interest, second stage skipped"
	}
	return fmt.Sprintf("%d files / %d records of interest; ~%d result rows; %.1f MB to ingest; est. cost %v",
		e.Files, e.Records, e.EstRows, float64(e.BytesToMount)/(1<<20), e.EstCost.Round(time.Millisecond))
}

// PerRowCPU is the modeled per-sample decode+process cost used in
// EstCost (Steim decode plus predicate evaluation).
const PerRowCPU = 60 * time.Nanosecond

// EstimateInput identifies the metadata columns of the stage-one result
// needed by the model. Empty names make the corresponding part of the
// estimate degrade gracefully.
type EstimateInput struct {
	Schema []plan.ColInfo
	Rows   []*vector.Batch
	// Column names (qualified or bare) in the stage-one result:
	URICol      string // file identity (required)
	SizeCol     string // file size in bytes
	NSamplesCol string // per-record sample count
	SpanLoCol   string // record start (time)
	SpanHiCol   string // record end (time)
	// Query restriction on the span column, from σp3 ([lo, hi]; use
	// math.MinInt64/MaxInt64 when unbounded).
	SpanLo, SpanHi int64
	// IsCached reports whether a file is served from cache (no mount I/O).
	IsCached func(uri string) bool
	// Disk is the cost model for mount I/O.
	Disk storage.DiskModel
}

// Compute builds the informativeness estimate from first-stage output.
func Compute(in EstimateInput) Estimate {
	est := Estimate{}
	uriIdx := plan.FindColumn(in.Schema, in.URICol)
	if uriIdx < 0 {
		return est
	}
	sizeIdx := plan.FindColumn(in.Schema, in.SizeCol)
	nsIdx := plan.FindColumn(in.Schema, in.NSamplesCol)
	loIdx := plan.FindColumn(in.Schema, in.SpanLoCol)
	hiIdx := plan.FindColumn(in.Schema, in.SpanHiCol)

	type fileAgg struct {
		size   int64
		cached bool
	}
	files := make(map[string]fileAgg)
	for _, b := range in.Rows {
		n := b.Len()
		uris := b.Cols[uriIdx].Strings()
		for i := 0; i < n; i++ {
			est.Records++
			uri := uris[i]
			if _, ok := files[uri]; !ok {
				fa := fileAgg{}
				if sizeIdx >= 0 {
					fa.size = b.Cols[sizeIdx].Int64s()[i]
				}
				if in.IsCached != nil {
					fa.cached = in.IsCached(uri)
				}
				files[uri] = fa
			}
			// Expected result rows: sample count scaled by the fraction of
			// the record's span inside the query window.
			if nsIdx >= 0 && loIdx >= 0 && hiIdx >= 0 {
				ns := b.Cols[nsIdx].Int64s()[i]
				lo := b.Cols[loIdx].Int64s()[i]
				hi := b.Cols[hiIdx].Int64s()[i]
				est.EstRows += expectedRows(ns, lo, hi, in.SpanLo, in.SpanHi)
			}
		}
	}
	est.Files = len(files)
	est.Empty = est.Files == 0
	var mountPages int64
	var mountedBytes int64
	seeks := 0
	for _, fa := range files {
		if fa.cached {
			continue
		}
		est.BytesToMount += fa.size
		mountPages += (fa.size + storage.PageSize - 1) / storage.PageSize
		mountedBytes += fa.size
		seeks++
	}
	// Cost: per-file seek + sequential transfer + per-sample CPU over the
	// full mounted files (decompression touches whole records).
	cost := time.Duration(seeks) * in.Disk.SeekTime
	cost += time.Duration(mountPages) * in.Disk.TransferPerPage
	cost += time.Duration(est.EstRows) * PerRowCPU
	est.EstCost = cost
	return est
}

// expectedRows scales a record's sample count by span overlap.
func expectedRows(ns, recLo, recHi, qLo, qHi int64) int64 {
	if recHi < qLo || recLo > qHi || ns == 0 {
		return 0
	}
	lo := recLo
	if qLo > lo {
		lo = qLo
	}
	hi := recHi
	if qHi < hi {
		hi = qHi
	}
	if recHi == recLo {
		return ns
	}
	frac := float64(hi-lo) / float64(recHi-recLo)
	rows := int64(frac * float64(ns))
	if rows == 0 {
		rows = 1 // the window intersects the record: at least one sample
	}
	return rows
}
