package repo

import (
	"os"
	"testing"
	"time"

	"repro/internal/mseed"
)

func tinySpec(dir string) Spec {
	s := DefaultSpec(dir)
	s.Stations = s.Stations[:2]
	s.Channels = s.Channels[:2]
	s.Days = 3
	s.RecordsPerFile = 4
	s.SamplesPerRecord = 200
	return s
}

func TestGenerateShape(t *testing.T) {
	spec := tinySpec(t.TempDir())
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := 2 * 2 * 3
	if len(m.Files) != wantFiles {
		t.Fatalf("generated %d files, want %d", len(m.Files), wantFiles)
	}
	if m.Records != int64(wantFiles*4) {
		t.Errorf("records = %d, want %d", m.Records, wantFiles*4)
	}
	if m.Samples != int64(wantFiles*4*200) {
		t.Errorf("samples = %d", m.Samples)
	}
	if m.Bytes == 0 {
		t.Error("zero bytes generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m1, err := Generate(tinySpec(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Generate(tinySpec(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Bytes != m2.Bytes || m1.Samples != m2.Samples {
		t.Error("generation not deterministic across identical specs")
	}
	for i := range m1.Files {
		if m1.Files[i].SizeBytes != m2.Files[i].SizeBytes {
			t.Fatalf("file %s differs in size across runs", m1.Files[i].URI)
		}
	}
}

func TestGeneratedFilesParse(t *testing.T) {
	spec := tinySpec(t.TempDir())
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mseed.ReadFile(m.Path(m.Files[0].URI))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("file has %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if int(r.Seq) != i || r.NSamples != 200 {
			t.Errorf("record %d header wrong: %+v", i, r.Header)
		}
	}
	// Records must be contiguous in time.
	gap := recs[1].StartTime - recs[0].Header.EndTime()
	step := int64(float64(time.Second) / spec.SampleRate)
	if gap != step {
		t.Errorf("inter-record gap = %d ns, want one sample period %d", gap, step)
	}
}

func TestQueryWindowInsideCoverage(t *testing.T) {
	// The paper's Query 1 targets 2010-01-12T22:15:00-22:15:02; the default
	// DayOffset guarantees this window is inside every file's coverage.
	spec := DefaultSpec(t.TempDir())
	spec.Stations = spec.Stations[:1]
	spec.Channels = spec.Channels[:1]
	spec.Days = 12
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	day12 := time.Date(2010, 1, 12, 22, 15, 0, 0, time.UTC).UnixNano()
	day12end := time.Date(2010, 1, 12, 22, 15, 2, 0, time.UTC).UnixNano()
	found := false
	for _, f := range m.Files {
		if f.DayOfYear == 12 && f.StartTime <= day12 && f.EndTime >= day12end {
			found = true
		}
	}
	if !found {
		t.Error("no file covers the paper's Query 1 window")
	}
}

func TestScanMatchesGenerate(t *testing.T) {
	spec := tinySpec(t.TempDir())
	gen, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := Scan(spec.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned.Files) != len(gen.Files) {
		t.Fatalf("scan found %d files, generate reported %d", len(scanned.Files), len(gen.Files))
	}
	if scanned.Records != gen.Records || scanned.Samples != gen.Samples || scanned.Bytes != gen.Bytes {
		t.Errorf("scan totals (%d,%d,%d) != generate totals (%d,%d,%d)",
			scanned.Records, scanned.Samples, scanned.Bytes, gen.Records, gen.Samples, gen.Bytes)
	}
	gf, ok := gen.Lookup(scanned.Files[0].URI)
	if !ok {
		t.Fatal("scanned file missing from generated manifest")
	}
	sf := scanned.Files[0]
	if sf.Station != gf.Station || sf.Channel != gf.Channel ||
		sf.StartTime != gf.StartTime || sf.EndTime != gf.EndTime || sf.Records != gf.Records {
		t.Errorf("scanned metadata %+v != generated %+v", sf, gf)
	}
}

func TestSpecValidate(t *testing.T) {
	good := tinySpec(t.TempDir())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Spec){
		"no dir":      func(s *Spec) { s.Dir = "" },
		"no stations": func(s *Spec) { s.Stations = nil },
		"no channels": func(s *Spec) { s.Channels = nil },
		"zero days":   func(s *Spec) { s.Days = 0 },
		"zero rate":   func(s *Spec) { s.SampleRate = 0 },
		"zero start":  func(s *Spec) { s.StartDate = time.Time{} },
	} {
		bad := good
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad spec", name)
		}
	}
}

func TestFileName(t *testing.T) {
	st := Station{Network: "NT", Code: "ISK", Location: "00"}
	got := FileName(st, "BHE", time.Date(2010, 1, 12, 0, 0, 0, 0, time.UTC))
	want := "NT.ISK.00.BHE.2010.012.mseed"
	if got != want {
		t.Errorf("FileName = %q, want %q", got, want)
	}
}

func TestManifestLookup(t *testing.T) {
	m := &Manifest{Dir: "/x", Files: []FileInfo{{URI: "a.mseed"}}}
	if _, ok := m.Lookup("a.mseed"); !ok {
		t.Error("Lookup missed present file")
	}
	if _, ok := m.Lookup("b.mseed"); ok {
		t.Error("Lookup found absent file")
	}
	if m.Path("a.mseed") != "/x/a.mseed" {
		t.Errorf("Path = %q", m.Path("a.mseed"))
	}
}

func TestScanIgnoresForeignFiles(t *testing.T) {
	spec := tinySpec(t.TempDir())
	if _, err := Generate(spec); err != nil {
		t.Fatal(err)
	}
	if err := writeJunk(spec.Dir + "/README.txt"); err != nil {
		t.Fatal(err)
	}
	m, err := Scan(spec.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Files {
		if f.URI == "README.txt" {
			t.Error("scan picked up a non-mseed file")
		}
	}
}

func writeJunk(path string) error {
	return os.WriteFile(path, []byte("not seismic data"), 0o644)
}
