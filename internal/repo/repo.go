// Package repo generates and scans the scientific file repository the
// engine explores: a directory tree of mSEED files named
// NET.STA.LOC.CHN.YEAR.DAY.mseed, one file per station/channel/day, each
// holding a sequence of waveform records.
//
// The paper's evaluation copies 5000 real files from the ORFEUS
// repository; we synthesize a repository with the same structure
// deterministically (see internal/waveform for why the substitution is
// sound). The generator is scale-parametric so unit tests run on a
// handful of files while benchmarks can approach the paper's shape.
package repo

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/mseed"
	"repro/internal/waveform"
)

// Station identifies one seismograph station.
type Station struct {
	Network  string
	Code     string
	Location string
}

// DefaultStations returns the station pool used by tests and benchmarks.
// ISK is first: the paper's Query 1 and Query 2 select station 'ISK'.
func DefaultStations() []Station {
	return []Station{
		{Network: "NT", Code: "ISK", Location: "00"},
		{Network: "NT", Code: "ANTO", Location: "00"},
		{Network: "OR", Code: "APE", Location: "00"},
		{Network: "OR", Code: "BUD", Location: "00"},
		{Network: "OR", Code: "CSS", Location: "00"},
		{Network: "OR", Code: "DPC", Location: "00"},
		{Network: "OR", Code: "EIL", Location: "00"},
		{Network: "OR", Code: "GNI", Location: "00"},
	}
}

// DefaultChannels returns the broadband channel triplet of the paper's
// queries (BHE appears in Query 1's predicate).
func DefaultChannels() []string { return []string{"BHE", "BHN", "BHZ"} }

// Spec configures repository generation.
type Spec struct {
	Dir      string
	Stations []Station
	Channels []string
	// StartDate is the first day covered; the paper's queries target
	// 2010-01-12, so the default starts 2010-01-01 with Days >= 12.
	StartDate time.Time
	Days      int
	// DayOffset places each day's coverage window inside the day. The
	// default (22h10m) makes the paper's literal Query 1 time window
	// (22:15:00-22:15:02) fall inside coverage at every scale.
	DayOffset time.Duration
	// RecordsPerFile and SamplesPerRecord set file geometry; records are
	// contiguous in time.
	RecordsPerFile   int
	SamplesPerRecord int
	SampleRate       float64
	Wave             waveform.Params
}

// DefaultSpec returns a small but fully-shaped repository specification.
func DefaultSpec(dir string) Spec {
	return Spec{
		Dir:              dir,
		Stations:         DefaultStations(),
		Channels:         DefaultChannels(),
		StartDate:        time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:             14,
		DayOffset:        22*time.Hour + 10*time.Minute,
		RecordsPerFile:   8,
		SamplesPerRecord: 2000,
		SampleRate:       40,
		Wave:             waveform.DefaultParams(),
	}
}

// Validate checks the specification for obvious misconfiguration.
func (s Spec) Validate() error {
	switch {
	case s.Dir == "":
		return fmt.Errorf("repo: spec needs a directory")
	case len(s.Stations) == 0 || len(s.Channels) == 0:
		return fmt.Errorf("repo: spec needs stations and channels")
	case s.Days <= 0 || s.RecordsPerFile <= 0 || s.SamplesPerRecord <= 0:
		return fmt.Errorf("repo: spec needs positive days/records/samples")
	case s.SampleRate <= 0:
		return fmt.Errorf("repo: spec needs a positive sample rate")
	case s.StartDate.IsZero():
		return fmt.Errorf("repo: spec needs a start date")
	}
	return nil
}

// FileInfo is the file-level metadata of one repository file — the rows
// of the metadata table F.
type FileInfo struct {
	URI       string // file name relative to the repository root
	Network   string
	Station   string
	Location  string
	Channel   string
	Year      int
	DayOfYear int
	StartTime int64 // first sample in the file, epoch ns
	EndTime   int64 // last sample in the file, epoch ns
	SizeBytes int64
	Records   int
}

// Manifest summarizes a generated or scanned repository.
type Manifest struct {
	Dir     string
	Files   []FileInfo
	Records int64
	Samples int64
	Bytes   int64
}

// FileName builds the repository-relative name for a stream and day.
func FileName(st Station, channel string, date time.Time) string {
	return fmt.Sprintf("%s.%s.%s.%s.%04d.%03d.mseed",
		st.Network, st.Code, st.Location, channel, date.Year(), date.YearDay())
}

// Generate writes the repository described by spec and returns its
// manifest. Generation is deterministic: the same spec produces
// byte-identical files.
func Generate(spec Spec) (*Manifest, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(spec.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Dir: spec.Dir}
	wave := spec.Wave
	wave.SampleRate = spec.SampleRate
	recDur := float64(spec.SamplesPerRecord) / spec.SampleRate

	for _, st := range spec.Stations {
		for _, ch := range spec.Channels {
			for d := 0; d < spec.Days; d++ {
				date := spec.StartDate.AddDate(0, 0, d)
				uri := FileName(st, ch, date)
				path := filepath.Join(spec.Dir, uri)
				seed := waveform.Seed(st.Network, st.Code, ch, date.Year()*1000+date.YearDay())
				total := spec.RecordsPerFile * spec.SamplesPerRecord
				samples := waveform.Synthesize(seed, total, wave)

				f, err := os.Create(path)
				if err != nil {
					return nil, err
				}
				w := bufio.NewWriterSize(f, 1<<16)
				cover := date.Add(spec.DayOffset).UnixNano()
				var written int64
				for r := 0; r < spec.RecordsPerFile; r++ {
					h := mseed.Header{
						Seq:        uint32(r),
						Network:    st.Network,
						Station:    st.Code,
						Location:   st.Location,
						Channel:    ch,
						StartTime:  cover + int64(float64(r)*recDur*float64(time.Second)),
						SampleRate: spec.SampleRate,
					}
					n, err := mseed.WriteRecord(w, h, samples[r*spec.SamplesPerRecord:(r+1)*spec.SamplesPerRecord])
					if err != nil {
						f.Close()
						return nil, err
					}
					written += int64(n)
				}
				if err := w.Flush(); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Close(); err != nil {
					return nil, err
				}

				last := cover + int64((float64(spec.RecordsPerFile-1)*recDur+
					float64(spec.SamplesPerRecord-1)/spec.SampleRate)*float64(time.Second))
				m.Files = append(m.Files, FileInfo{
					URI: uri, Network: st.Network, Station: st.Code, Location: st.Location,
					Channel: ch, Year: date.Year(), DayOfYear: date.YearDay(),
					StartTime: cover, EndTime: last,
					SizeBytes: written, Records: spec.RecordsPerFile,
				})
				m.Records += int64(spec.RecordsPerFile)
				m.Samples += int64(total)
				m.Bytes += written
			}
		}
	}
	return m, nil
}

// Scan rebuilds a manifest from an existing repository directory by
// reading record headers only (no waveform is decompressed). This is the
// discovery step of metadata-only loading.
func Scan(dir string) (*Manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: scan %s: %w", dir, err)
	}
	m := &Manifest{Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mseed") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		headers, err := mseed.ScanHeaders(path)
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		info := FileInfo{URI: e.Name(), SizeBytes: st.Size(), Records: len(headers)}
		for i, h := range headers {
			if i == 0 {
				info.Network, info.Station = h.Network, h.Station
				info.Location, info.Channel = h.Location, h.Channel
				t := time.Unix(0, h.StartTime).UTC()
				info.Year, info.DayOfYear = t.Year(), t.YearDay()
				info.StartTime = h.StartTime
			}
			if h.StartTime < info.StartTime {
				info.StartTime = h.StartTime
			}
			if end := h.EndTime(); end > info.EndTime {
				info.EndTime = end
			}
			m.Samples += int64(h.NSamples)
		}
		m.Files = append(m.Files, info)
		m.Records += int64(len(headers))
		m.Bytes += st.Size()
	}
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].URI < m.Files[j].URI })
	return m, nil
}

// Lookup returns the manifest entry for a URI.
func (m *Manifest) Lookup(uri string) (FileInfo, bool) {
	for _, f := range m.Files {
		if f.URI == uri {
			return f, true
		}
	}
	return FileInfo{}, false
}

// Path returns the absolute path of a repository-relative URI.
func (m *Manifest) Path(uri string) string { return filepath.Join(m.Dir, uri) }
