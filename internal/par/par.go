// Package par provides the bounded, order-preserving fan-out primitive
// behind the engine's parallel ingestion and mount scheduling. Work
// items are produced concurrently by a fixed pool of workers while a
// single consumer observes the results strictly in item order — so
// table appends, dictionary code assignment and aggregate merging stay
// byte-for-byte deterministic no matter how many workers run.
package par

import "sync"

// ForEachOrdered runs produce(i) for i in [0, n) on at most `workers`
// goroutines and calls consume(i, v) for every produced value in
// ascending i, from the calling goroutine's ordering domain (a single
// internal consumer). The first error — from produce or consume, in
// item order — stops the run and is returned. With workers <= 1 the
// whole loop degenerates to a sequential produce/consume per item.
func ForEachOrdered[T any](n, workers int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		v   T
		err error
	}
	slots := make([]chan result, n)
	for i := range slots {
		slots[i] = make(chan result, 1)
	}
	jobs := make(chan int)
	stop := make(chan struct{})
	// sem bounds run-ahead: at most `workers` results may be in flight
	// or parked unconsumed, so memory stays O(workers) even when the
	// consumer is blocked on a slow early item. A worker acquires a
	// token BEFORE receiving a job — tokens gate dispatch, and since
	// the feeder sends indices in ascending order, the lowest
	// outstanding item is always already being produced (taking the
	// token after the job could starve it behind parked later items).
	// The consumer releases one token per item it takes delivery of.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}:
				case <-stop:
					return
				}
				i, ok := <-jobs
				if !ok {
					return
				}
				v, err := produce(i)
				slots[i] <- result{v, err}
				if err != nil {
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()

	var firstErr error
	for i := 0; i < n; i++ {
		r, ok := <-slots[i]
		if !ok {
			break
		}
		if r.err != nil {
			firstErr = r.err
			break
		}
		<-sem
		if err := consume(i, r.v); err != nil {
			firstErr = err
			break
		}
	}
	close(stop)
	// Unblock and retire the workers; later slots may still be filled
	// but are discarded.
	go func() {
		for range jobs {
		}
	}()
	wg.Wait()
	return firstErr
}
