package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOrderedConsumption(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var got []int
		err := ForEachOrdered(50, workers,
			func(i int) (int, error) {
				// Finish out of order on purpose.
				time.Sleep(time.Duration((50-i)%7) * time.Millisecond)
				return i * i, nil
			},
			func(i, v int) error {
				if v != i*i {
					return fmt.Errorf("item %d: got %d", i, v)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: consumed %d of 50", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out-of-order consumption at %d: %v", workers, i, v)
			}
		}
	}
}

func TestBoundedWorkers(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEachOrdered(40, workers,
		func(i int) (struct{}, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		},
		func(int, struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestProduceErrorStops(t *testing.T) {
	boom := errors.New("boom")
	var consumed []int
	err := ForEachOrdered(20, 4,
		func(i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int) error {
			consumed = append(consumed, i)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Items before the failing one must have been consumed in order;
	// nothing at or after it may be.
	for i, v := range consumed {
		if v != i || v >= 5 {
			t.Fatalf("consumed %v", consumed)
		}
	}
}

func TestConsumeErrorStops(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachOrdered(100, 8,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSequentialFallback(t *testing.T) {
	// workers <= 1 must interleave produce and consume strictly: no
	// goroutines, no lookahead.
	var trace []string
	err := ForEachOrdered(3, 1,
		func(i int) (int, error) {
			trace = append(trace, fmt.Sprintf("p%d", i))
			return i, nil
		},
		func(i, v int) error {
			trace = append(trace, fmt.Sprintf("c%d", i))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := "p0 c0 p1 c1 p2 c2"
	if got := fmt.Sprint(trace); got != "[p0 c0 p1 c1 p2 c2]" {
		t.Fatalf("trace = %v, want %s", trace, want)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if err := ForEachOrdered(0, 8, func(int) (int, error) { return 0, nil }, func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	err := ForEachOrdered(1, 8,
		func(i int) (int, error) { ran = true; return i, nil },
		func(int, int) error { return nil })
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

// TestNoGoroutineLeak drives many error-aborted runs concurrently; with
// the race detector this also exercises the shutdown paths.
func TestNoGoroutineLeak(t *testing.T) {
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for r := 0; r < 20; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ForEachOrdered(64, 4,
				func(i int) (int, error) {
					if i%9 == 8 {
						return 0, boom
					}
					return i, nil
				},
				func(int, int) error { return nil })
		}()
	}
	wg.Wait()
}
