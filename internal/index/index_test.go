package index

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func testPool() *storage.BufferPool {
	return storage.NewBufferPool(256, storage.NoCost(), nil)
}

func buildTest(t *testing.T, entries []Entry) *Index {
	t.Helper()
	ix, err := Build(filepath.Join(t.TempDir(), "t.idx"), testPool(), entries)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestLookupExact(t *testing.T) {
	ix := buildTest(t, []Entry{
		{A: 1, B: 1, RowID: 10},
		{A: 1, B: 2, RowID: 11},
		{A: 2, B: 1, RowID: 20},
		{A: 2, B: 1, RowID: 21}, // duplicate key, two rows
		{A: 3, B: 9, RowID: 30},
	})
	rows, err := ix.Lookup(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != 20 || rows[1] != 21 {
		t.Errorf("Lookup(2,1) = %v, want [20 21]", rows)
	}
	rows, _ = ix.Lookup(1, 2)
	if len(rows) != 1 || rows[0] != 11 {
		t.Errorf("Lookup(1,2) = %v, want [11]", rows)
	}
	rows, _ = ix.Lookup(9, 9)
	if len(rows) != 0 {
		t.Errorf("Lookup(9,9) = %v, want empty", rows)
	}
}

func TestLookupPrefix(t *testing.T) {
	ix := buildTest(t, []Entry{
		{A: 5, B: -3, RowID: 1},
		{A: 5, B: 0, RowID: 2},
		{A: 5, B: 7, RowID: 3},
		{A: 6, B: 0, RowID: 4},
	})
	rows, err := ix.LookupA(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("LookupA(5) = %v, want 3 rows", rows)
	}
	rows, _ = ix.LookupA(7)
	if len(rows) != 0 {
		t.Errorf("LookupA(7) = %v, want empty", rows)
	}
}

func TestRange(t *testing.T) {
	var entries []Entry
	for i := int64(0); i < 100; i++ {
		entries = append(entries, Entry{A: i * 10, RowID: i})
	}
	ix := buildTest(t, entries)
	rows, err := ix.RangeA(95, 250)
	if err != nil {
		t.Fatal(err)
	}
	// keys 100..250 step 10 → 16 entries (100..250)
	if len(rows) != 16 {
		t.Errorf("RangeA(95,250) returned %d rows, want 16", len(rows))
	}
	if rows[0] != 10 {
		t.Errorf("first row = %d, want 10", rows[0])
	}
	rows, _ = ix.RangeA(2000, 3000)
	if len(rows) != 0 {
		t.Error("out-of-range query returned rows")
	}
}

func TestUnique(t *testing.T) {
	ix := buildTest(t, []Entry{{A: 1, B: 1, RowID: 1}, {A: 1, B: 2, RowID: 2}})
	ok, err := ix.Unique()
	if err != nil || !ok {
		t.Errorf("Unique = %v, %v; want true", ok, err)
	}
	dup := buildTest(t, []Entry{{A: 1, B: 1, RowID: 1}, {A: 1, B: 1, RowID: 2}})
	ok, err = dup.Unique()
	if err != nil || ok {
		t.Errorf("Unique with dup = %v, %v; want false", ok, err)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := buildTest(t, nil)
	if ix.Len() != 0 || ix.SizeOnDisk() != 0 {
		t.Error("empty index has entries")
	}
	rows, err := ix.Lookup(1, 1)
	if err != nil || len(rows) != 0 {
		t.Error("lookup on empty index failed")
	}
}

func TestNegativeKeys(t *testing.T) {
	ix := buildTest(t, []Entry{
		{A: -100, RowID: 1}, {A: -1, RowID: 2}, {A: 0, RowID: 3}, {A: 50, RowID: 4},
	})
	rows, err := ix.RangeA(-150, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("negative range got %v, want 2 rows", rows)
	}
}

func TestPersistedReopen(t *testing.T) {
	pool := testPool()
	path := filepath.Join(t.TempDir(), "p.idx")
	ix, err := Build(path, pool, []Entry{{A: 7, B: 7, RowID: 77}})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
	ix2, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	rows, err := ix2.Lookup(7, 7)
	if err != nil || len(rows) != 1 || rows[0] != 77 {
		t.Errorf("reopened lookup = %v, %v", rows, err)
	}
}

func TestLookupAgainstLinearScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{A: int64(r.Intn(20)) - 10, B: int64(r.Intn(5)), RowID: int64(i)}
		}
		ix, err := Build(filepath.Join(t.TempDir(), "q.idx"), testPool(), append([]Entry(nil), entries...))
		if err != nil {
			return false
		}
		defer ix.Close()
		for trial := 0; trial < 10; trial++ {
			a := int64(rng.Intn(22)) - 11
			b := int64(rng.Intn(6))
			got, err := ix.Lookup(a, b)
			if err != nil {
				return false
			}
			var want []int64
			for _, e := range entries {
				if e.A == a && e.B == b {
					want = append(want, e.RowID)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestColdLookupChargesIO(t *testing.T) {
	var clock storage.Clock
	pool := storage.NewBufferPool(1024, storage.HDD7200(), &clock)
	var entries []Entry
	for i := int64(0); i < 50000; i++ {
		entries = append(entries, Entry{A: i, RowID: i})
	}
	ix, err := Build(filepath.Join(t.TempDir(), "c.idx"), pool, entries)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	pool.Flush()
	clock.Reset()
	if _, err := ix.Lookup(25000, 0); err != nil {
		t.Fatal(err)
	}
	if clock.Elapsed() == 0 {
		t.Error("cold index lookup charged no I/O")
	}
	clock.Reset()
	if _, err := ix.Lookup(25000, 0); err != nil {
		t.Fatal(err)
	}
	if clock.Elapsed() != 0 {
		t.Error("hot repeat lookup charged I/O")
	}
}
