// Package index implements disk-resident sorted key indexes used by the
// eager-ingestion (Ei) baseline for primary- and foreign-key lookups.
//
// An index is a file of fixed-width entries (keyA, keyB, rowID), sorted
// by (keyA, keyB). Lookups binary-search the file through the buffer
// pool, so a cold index pays modeled random I/O exactly the way the
// paper describes MonetDB's foreign-key indexes being "brought into main
// memory to compute the joins" — the effect behind Ei's cold-run times
// in Figure 3.
//
// String keys are indexed by their dictionary codes (equality semantics
// only), numeric and timestamp keys by value (equality and range).
package index

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"repro/internal/storage"
)

// EntrySize is the on-disk width of one index entry.
const EntrySize = 24

// Entry is one (composite key, row) pair. Single-column keys set B to 0.
type Entry struct {
	A, B  int64
	RowID int64
}

// Less orders entries by (A, B, RowID).
func (e Entry) Less(o Entry) bool {
	if e.A != o.A {
		return e.A < o.A
	}
	if e.B != o.B {
		return e.B < o.B
	}
	return e.RowID < o.RowID
}

// Build sorts the entries and writes them to path, charging the modeled
// write cost to the pool's clock. It returns the opened index.
func Build(path string, pool *storage.BufferPool, entries []Entry) (*Index, error) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("index: create %s: %w", path, err)
	}
	buf := make([]byte, 0, 1<<20)
	var written int64
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		n, err := f.Write(buf)
		written += int64(n)
		buf = buf[:0]
		return err
	}
	var tmp [EntrySize]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(tmp[0:], uint64(e.A))
		binary.LittleEndian.PutUint64(tmp[8:], uint64(e.B))
		binary.LittleEndian.PutUint64(tmp[16:], uint64(e.RowID))
		buf = append(buf, tmp[:]...)
		if len(buf) >= 1<<20 {
			if err := flush(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	// Model an external sort, which is what building this index over a
	// table exceeding memory costs: run generation writes every entry,
	// the merge pass reads the runs back and writes the final file. (The
	// in-memory sort above is the real CPU cost.)
	pool.Model().ChargeWrite(pool.Clock(), written) // run generation
	pages := int((written + storage.PageSize - 1) / storage.PageSize)
	pool.Model().ChargeRead(pool.Clock(), pages, true) // merge input
	pool.Model().ChargeWrite(pool.Clock(), written)    // final file
	pool.Invalidate(path)
	return Open(path, pool)
}

// Index is an open sorted index file.
type Index struct {
	path string
	f    *os.File
	pool *storage.BufferPool
	n    int64 // entry count
}

// Open opens an index previously written by Build.
func Open(path string, pool *storage.BufferPool) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%EntrySize != 0 {
		f.Close()
		return nil, fmt.Errorf("index: %s has %d bytes, not a multiple of %d", path, st.Size(), EntrySize)
	}
	return &Index{path: path, f: f, pool: pool, n: st.Size() / EntrySize}, nil
}

// Close releases the file handle.
func (ix *Index) Close() error { return ix.f.Close() }

// Len returns the number of entries.
func (ix *Index) Len() int64 { return ix.n }

// SizeOnDisk returns the index file size in bytes.
func (ix *Index) SizeOnDisk() int64 { return ix.n * EntrySize }

// Path returns the index file path.
func (ix *Index) Path() string { return ix.path }

func (ix *Index) entry(i int64) (Entry, error) {
	var buf [EntrySize]byte
	if err := ix.pool.ReadAt(ix.path, ix.f, buf[:], i*EntrySize); err != nil {
		return Entry{}, fmt.Errorf("index: read entry %d of %s: %w", i, ix.path, err)
	}
	return Entry{
		A:     int64(binary.LittleEndian.Uint64(buf[0:])),
		B:     int64(binary.LittleEndian.Uint64(buf[8:])),
		RowID: int64(binary.LittleEndian.Uint64(buf[16:])),
	}, nil
}

// lowerBound returns the first position whose entry is >= (a, b) under
// (A, B) ordering with RowID ignored (pass math.MinInt64 semantics via b).
func (ix *Index) lowerBound(a, b int64) (int64, error) {
	lo, hi := int64(0), ix.n
	var outerErr error
	pos := lo + int64(sort.Search(int(hi-lo), func(i int) bool {
		if outerErr != nil {
			return true
		}
		e, err := ix.entry(lo + int64(i))
		if err != nil {
			outerErr = err
			return true
		}
		if e.A != a {
			return e.A > a
		}
		return e.B >= b
	}))
	return pos, outerErr
}

// Lookup returns the rowIDs of all entries with key exactly (a, b).
func (ix *Index) Lookup(a, b int64) ([]int64, error) {
	pos, err := ix.lowerBound(a, b)
	if err != nil {
		return nil, err
	}
	var out []int64
	for ; pos < ix.n; pos++ {
		e, err := ix.entry(pos)
		if err != nil {
			return nil, err
		}
		if e.A != a || e.B != b {
			break
		}
		out = append(out, e.RowID)
	}
	return out, nil
}

// LookupA returns the rowIDs of all entries whose first key equals a,
// regardless of B (prefix lookup, used for single-column FK joins).
func (ix *Index) LookupA(a int64) ([]int64, error) {
	const minB = -1 << 63
	pos, err := ix.lowerBound(a, minB)
	if err != nil {
		return nil, err
	}
	var out []int64
	for ; pos < ix.n; pos++ {
		e, err := ix.entry(pos)
		if err != nil {
			return nil, err
		}
		if e.A != a {
			break
		}
		out = append(out, e.RowID)
	}
	return out, nil
}

// RangeA returns the rowIDs of all entries with lo <= A <= hi, used for
// range predicates on sorted numeric/time keys.
func (ix *Index) RangeA(lo, hi int64) ([]int64, error) {
	const minB = -1 << 63
	pos, err := ix.lowerBound(lo, minB)
	if err != nil {
		return nil, err
	}
	var out []int64
	for ; pos < ix.n; pos++ {
		e, err := ix.entry(pos)
		if err != nil {
			return nil, err
		}
		if e.A > hi {
			break
		}
		out = append(out, e.RowID)
	}
	return out, nil
}

// Unique reports whether every key (A, B) appears at most once; primary
// key indexes must be unique and ingestion validates this invariant.
func (ix *Index) Unique() (bool, error) {
	var prev Entry
	for i := int64(0); i < ix.n; i++ {
		e, err := ix.entry(i)
		if err != nil {
			return false, err
		}
		if i > 0 && e.A == prev.A && e.B == prev.B {
			return false, nil
		}
		prev = e
	}
	return true, nil
}
