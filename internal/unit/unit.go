// Package unit holds tiny display formatters shared by user-facing
// binaries and the benchmark harness, so neither has to depend on the
// other for a byte formatter.
package unit

import "fmt"

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
