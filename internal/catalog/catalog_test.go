package catalog

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/vector"
)

func def(name string, kind TableKind) TableDef {
	return TableDef{
		Name: name, Kind: kind,
		Columns: []storage.Column{{Name: "uri", Kind: vector.KindString}},
	}
}

func TestDefineAndLookup(t *testing.T) {
	c := New()
	if err := c.Define(def("F", Metadata)); err != nil {
		t.Fatal(err)
	}
	if err := c.Define(def("D", ActualData)); err != nil {
		t.Fatal(err)
	}
	if !c.IsMetadata("F") || c.IsMetadata("D") || c.IsMetadata("ghost") {
		t.Error("IsMetadata wrong")
	}
	got, ok := c.Table("F")
	if !ok || got.Name != "F" {
		t.Error("Table lookup failed")
	}
	if _, ok := c.Table("ghost"); ok {
		t.Error("phantom table found")
	}
}

func TestDefineValidation(t *testing.T) {
	c := New()
	if err := c.Define(TableDef{}); err == nil {
		t.Error("empty def accepted")
	}
	if err := c.Define(def("F", Metadata)); err != nil {
		t.Fatal(err)
	}
	if err := c.Define(def("F", Metadata)); err == nil {
		t.Error("duplicate def accepted")
	}
}

func TestTableLists(t *testing.T) {
	c := New()
	c.Define(def("R", Metadata))
	c.Define(def("D", ActualData))
	c.Define(def("F", Metadata))
	all := c.Tables()
	if len(all) != 3 || all[0] != "D" || all[1] != "F" || all[2] != "R" {
		t.Errorf("Tables = %v", all)
	}
	meta := c.MetadataTables()
	if len(meta) != 2 || meta[0] != "F" || meta[1] != "R" {
		t.Errorf("MetadataTables = %v", meta)
	}
}

func TestColumnIndex(t *testing.T) {
	d := TableDef{Name: "T", Columns: []storage.Column{
		{Name: "a", Kind: vector.KindInt64},
		{Name: "b", Kind: vector.KindString},
	}}
	if d.ColumnIndex("b") != 1 || d.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestKindStrings(t *testing.T) {
	if Metadata.String() != "metadata" || ActualData.String() != "actual-data" {
		t.Error("kind strings wrong")
	}
}

type fakeAdapter struct{ name string }

func (f *fakeAdapter) Name() string                               { return f.name }
func (f *fakeAdapter) Tables() (a, b, c TableDef)                 { return }
func (f *fakeAdapter) URIColumn() string                          { return "uri" }
func (f *fakeAdapter) RecordIDColumn() string                     { return "rid" }
func (f *fakeAdapter) DataSpanColumn() string                     { return "" }
func (f *fakeAdapter) RecordSpan(RecordMeta) (int64, int64, bool) { return 0, 0, false }
func (f *fakeAdapter) ExtractMetadata(path, uri string) (FileMeta, []RecordMeta, error) {
	return FileMeta{}, nil, nil
}
func (f *fakeAdapter) Mount(path, uri string, keep func(RecordMeta) bool) (*vector.Batch, error) {
	return nil, nil
}
func (f *fakeAdapter) MountStream(path, uri string, keep func(RecordMeta) bool, batchRows int, emit func(*vector.Batch) error) error {
	return nil
}

func TestAdapterRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&fakeAdapter{name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&fakeAdapter{name: "x"}); err == nil {
		t.Error("duplicate adapter accepted")
	}
	if err := r.Register(&fakeAdapter{name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("x"); !ok {
		t.Error("Get missed registered adapter")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get found phantom adapter")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "x" {
		t.Errorf("Names = %v", names)
	}
}
