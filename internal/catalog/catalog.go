// Package catalog holds the engine's schema: the set of tables T,
// partitioned into metadata tables M and actual-data tables A (the paper's
// T = M ∪ A), plus the registry of format adapters that map external
// scientific file formats onto that schema.
//
// The adapter interface is the paper's "generalized medium for the
// scientific developer": a domain expert defines format-specific metadata
// extraction and mounting once, and the two-stage machinery works
// unchanged for any format (internal/mseed and internal/csvfmt both plug
// in here).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
	"repro/internal/vector"
)

// TableKind classifies a table as metadata (loaded eagerly) or actual
// data (ingested lazily by ALi, or eagerly by the Ei baseline).
type TableKind int

const (
	// Metadata tables hold self-descriptive measurements about files and
	// records; they are small and always loaded up-front.
	Metadata TableKind = iota
	// ActualData tables hold the big payloads (time series, images,
	// sequences); under ALi they are populated per query.
	ActualData
)

// String names the kind.
func (k TableKind) String() string {
	if k == Metadata {
		return "metadata"
	}
	return "actual-data"
}

// TableDef describes one table of the schema.
type TableDef struct {
	Name    string
	Kind    TableKind
	Columns []storage.Column
}

// ColumnIndex returns the position of the named column, or -1.
func (d TableDef) ColumnIndex(name string) int {
	for i, c := range d.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Catalog is the schema registry. It is safe for concurrent reads after
// setup.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]TableDef
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]TableDef)}
}

// Define registers a table definition.
func (c *Catalog) Define(def TableDef) error {
	if def.Name == "" || len(def.Columns) == 0 {
		return fmt.Errorf("catalog: table definition needs a name and columns")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[def.Name]; ok {
		return fmt.Errorf("catalog: table %s already defined", def.Name)
	}
	c.tables[def.Name] = def
	return nil
}

// Table returns the definition of the named table.
func (c *Catalog) Table(name string) (TableDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.tables[name]
	return def, ok
}

// IsMetadata reports whether the named table is in M.
func (c *Catalog) IsMetadata(name string) bool {
	def, ok := c.Table(name)
	return ok && def.Kind == Metadata
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MetadataTables returns the names of the tables in M, sorted.
func (c *Catalog) MetadataTables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for n, d := range c.tables {
		if d.Kind == Metadata {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// FileMeta is one row of a format's file-level metadata table, paired
// with the values in the order of the table definition.
type FileMeta struct {
	URI    string
	Values []vector.Value
}

// RecordMeta is one row of a format's record-level metadata table.
type RecordMeta struct {
	URI      string
	RecordID int64
	Values   []vector.Value
}

// FormatAdapter maps one external file format onto the relational schema.
// Implementations must be safe for concurrent use.
type FormatAdapter interface {
	// Name identifies the format (e.g. "mseed", "csv").
	Name() string
	// Tables returns the file-level metadata, record-level metadata and
	// actual-data table definitions this format populates.
	Tables() (file, record, data TableDef)
	// URIColumn is the column name (present in all three tables) that
	// carries the file URI; RecordIDColumn (present in record and data
	// tables) carries the record identity.
	URIColumn() string
	RecordIDColumn() string
	// ExtractMetadata reads ONLY metadata from the file at path: its
	// file-level row and one row per record. No actual data may be
	// decoded; this is the cheap first-stage primitive.
	ExtractMetadata(path, uri string) (FileMeta, []RecordMeta, error)
	// Mount extracts, transforms and returns the actual-data rows of the
	// file as a batch matching the data table definition. When keep is
	// non-nil, records whose metadata fails it may be skipped without
	// decoding (the fused σ∘mount access path).
	Mount(path, uri string, keep func(RecordMeta) bool) (*vector.Batch, error)
	// MountStream is the streaming form of Mount: instead of
	// materializing the whole file it yields batches of rows through
	// emit, in file order, as extraction progresses. Batches are
	// record-aligned — a batch never splits one record's rows — and hold
	// at most batchRows rows except when a single record alone exceeds
	// that (record alignment wins). batchRows <= 0 selects
	// vector.DefaultBatchSize. A non-nil error from emit aborts the
	// extraction and is returned unchanged.
	MountStream(path, uri string, keep func(RecordMeta) bool, batchRows int, emit func(*vector.Batch) error) error
	// DataSpanColumn names the data-table column (typically a TIMESTAMP)
	// whose values are bounded by each record's span, enabling record
	// pruning inside σ∘mount. Empty if the format has no such column.
	DataSpanColumn() string
	// RecordSpan returns the [lo, hi] bounds of DataSpanColumn within one
	// record, and whether the bounds are known.
	RecordSpan(rm RecordMeta) (lo, hi int64, ok bool)
}

// CollectMount drains an adapter's MountStream into a single batch: the
// materializing Mount behaviour, shared by adapter implementations so
// the two entry points cannot diverge.
func CollectMount(a FormatAdapter, path, uri string, keep func(RecordMeta) bool) (*vector.Batch, error) {
	var out *vector.Batch
	err := a.MountStream(path, uri, keep, int(^uint(0)>>1), func(b *vector.Batch) error {
		if out == nil {
			out = b
			return nil
		}
		for i, c := range b.Cols {
			out.Cols[i].AppendVector(c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		// No record survived: an empty batch with the data-table schema.
		_, _, data := a.Tables()
		cols := make([]*vector.Vector, len(data.Columns))
		for i, c := range data.Columns {
			cols[i] = vector.New(c.Kind, 0)
		}
		out = vector.NewBatch(cols...)
	}
	return out, nil
}

// AdapterRegistry holds the known format adapters.
type AdapterRegistry struct {
	mu       sync.RWMutex
	adapters map[string]FormatAdapter
}

// NewRegistry returns an empty adapter registry.
func NewRegistry() *AdapterRegistry {
	return &AdapterRegistry{adapters: make(map[string]FormatAdapter)}
}

// Register adds an adapter; duplicate names are an error.
func (r *AdapterRegistry) Register(a FormatAdapter) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.adapters[a.Name()]; ok {
		return fmt.Errorf("catalog: adapter %s already registered", a.Name())
	}
	r.adapters[a.Name()] = a
	return nil
}

// Get returns the named adapter.
func (r *AdapterRegistry) Get(name string) (FormatAdapter, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.adapters[name]
	return a, ok
}

// Names lists registered adapters, sorted.
func (r *AdapterRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.adapters))
	for n := range r.adapters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
