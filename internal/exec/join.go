package exec

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// newJoin selects a join implementation: an index-nested-loop join when
// the left side is a base-table scan with a registered index on exactly
// the join key columns (the Ei baseline's path — the paper's "foreign
// key indexes ... brought into main memory to compute the joins"),
// otherwise a hash join that builds on the right input — unless the
// cardinality oracle proves the left input is smaller, in which case
// the build side flips (order-preserving: see flippedHashJoin).
func newJoin(n *plan.Join, env *Env) (Operator, error) {
	if op, ok, err := tryIndexJoin(n, env); err != nil {
		return nil, err
	} else if ok {
		return op, nil
	}
	left, err := Build(n.Left, env)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Right, env)
	if err != nil {
		return nil, err
	}
	lk, rk, err := resolveKeys(n)
	if err != nil {
		return nil, err
	}
	if env.Card != nil && len(lk) > 0 {
		lrows, lok := env.Card.NodeRows(n.Left)
		rrows, rok := env.Card.NodeRows(n.Right)
		if lok && rok && lrows < rrows {
			env.addMountStats(func(ms *MountStats) { ms.JoinBuildFlips++ })
			return &flippedHashJoin{
				schema: n.Schema(), left: left, right: right,
				leftKeys: lk, rightKeys: rk, batchSize: env.batchSize(),
			}, nil
		}
	}
	return &hashJoin{
		schema: n.Schema(), left: left, right: right,
		leftKeys: lk, rightKeys: rk, batchSize: env.batchSize(),
	}, nil
}

func resolveKeys(n *plan.Join) (lk, rk []int, err error) {
	ls, rs := n.Left.Schema(), n.Right.Schema()
	for i := range n.LeftKeys {
		li := plan.FindColumn(ls, n.LeftKeys[i])
		ri := plan.FindColumn(rs, n.RightKeys[i])
		if li < 0 || ri < 0 {
			return nil, nil, fmt.Errorf("exec: join key %s = %s unresolvable", n.LeftKeys[i], n.RightKeys[i])
		}
		lk = append(lk, li)
		rk = append(rk, ri)
	}
	return lk, rk, nil
}

// hashJoin builds a hash table over the right input and probes with the
// left input's batches. With no keys it degenerates to a cross product.
type hashJoin struct {
	schema    []plan.ColInfo
	left      Operator
	right     Operator
	leftKeys  []int
	rightKeys []int
	batchSize int

	built    bool
	rightAll *vector.Batch
	table    map[uint64][]int32

	pending *vector.Batch
}

// Schema implements Operator.
func (j *hashJoin) Schema() []plan.ColInfo { return j.schema }

func (j *hashJoin) build() error {
	mat := &Materialized{Schema: j.right.Schema()}
	for {
		b, err := j.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Len() > 0 {
			mat.Batches = append(mat.Batches, b)
		}
	}
	j.rightAll = mat.Flatten()
	if len(j.rightKeys) > 0 {
		n := j.rightAll.Len()
		hashes := make([]uint64, n)
		for _, k := range j.rightKeys {
			vector.HashVector(j.rightAll.Cols[k], hashes)
		}
		j.table = make(map[uint64][]int32, n)
		for i := 0; i < n; i++ {
			j.table[hashes[i]] = append(j.table[hashes[i]], int32(i))
		}
	}
	j.built = true
	return nil
}

// Next implements Operator.
func (j *hashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	if j.pending != nil {
		b := j.pending
		j.pending = nil
		return b, nil
	}
	// Inner join with an empty build side is empty: stop without
	// draining (or mounting) the probe side at all.
	if j.rightAll.Len() == 0 {
		return nil, nil
	}
	for {
		lb, err := j.left.Next()
		if err != nil || lb == nil {
			return nil, err
		}
		if lb.Len() == 0 {
			continue
		}
		var out *vector.Batch
		if len(j.leftKeys) == 0 {
			out = j.cross(lb)
		} else {
			out = j.probe(lb)
		}
		if out != nil && out.Len() > 0 {
			return out, nil
		}
	}
}

// probe matches one left batch against the hash table.
func (j *hashJoin) probe(lb *vector.Batch) *vector.Batch {
	n := lb.Len()
	hashes := make([]uint64, n)
	for _, k := range j.leftKeys {
		vector.HashVector(lb.Cols[k], hashes)
	}
	var lsel []int
	var rsel []int
	for i := 0; i < n; i++ {
		for _, rrow := range j.table[hashes[i]] {
			if j.keysEqual(lb, i, int(rrow)) {
				lsel = append(lsel, i)
				rsel = append(rsel, int(rrow))
			}
		}
	}
	if len(lsel) == 0 {
		return nil
	}
	return concatBatches(passThrough(lb, lsel, true), passThrough(j.rightAll, rsel, false))
}

func (j *hashJoin) keysEqual(lb *vector.Batch, lrow, rrow int) bool {
	for i := range j.leftKeys {
		lv := lb.Cols[j.leftKeys[i]].Get(lrow)
		rv := j.rightAll.Cols[j.rightKeys[i]].Get(rrow)
		if !vector.Equal(lv, rv) {
			return false
		}
	}
	return true
}

// cross produces the cartesian product of one left batch with the whole
// right side.
func (j *hashJoin) cross(lb *vector.Batch) *vector.Batch {
	rn := j.rightAll.Len()
	if rn == 0 {
		return nil
	}
	ln := lb.Len()
	lsel := make([]int, 0, ln*rn)
	rsel := make([]int, 0, ln*rn)
	for i := 0; i < ln; i++ {
		for r := 0; r < rn; r++ {
			lsel = append(lsel, i)
			rsel = append(rsel, r)
		}
	}
	return concatBatches(passThrough(lb, lsel, true), passThrough(j.rightAll, rsel, false))
}

// Close implements Operator.
func (j *hashJoin) Close() error {
	lerr := j.left.Close()
	rerr := j.right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

func concatBatches(l, r *vector.Batch) *vector.Batch {
	cols := make([]*vector.Vector, 0, l.NumCols()+r.NumCols())
	cols = append(cols, l.Cols...)
	cols = append(cols, r.Cols...)
	return vector.NewBatch(cols...)
}

// passThrough is Gather minus the copy when the selection is the
// identity over the whole batch. owned says the caller holds the
// batch's single ownership and releases it (a streamed probe batch):
// the batch itself passes through. A retained batch (the materialized
// build side, reused across probes) passes through as a CoW share
// instead, so a downstream mutation copies rather than corrupting the
// copy the join keeps.
func passThrough(b *vector.Batch, sel []int, owned bool) *vector.Batch {
	if len(sel) != b.Len() {
		return b.Gather(sel)
	}
	for i, s := range sel {
		if s != i {
			return b.Gather(sel)
		}
	}
	if owned {
		return b
	}
	return b.Share()
}

// flippedHashJoin is a hash join that builds on the LEFT input — chosen
// when the cardinality oracle proves the left side smaller — while
// emitting exactly the row sequence of the default right-build
// hashJoin: pairs ordered by (left row, right row). It materializes
// both sides, collects the matching row pairs by probing with the right
// input, sorts them into left-major order, and streams fixed-size
// chunks; only batch boundaries differ from the default join, which no
// consumer observes. The payoff is the smaller hash table plus early
// termination without draining (or mounting) the right side when the
// left is empty.
type flippedHashJoin struct {
	schema    []plan.ColInfo
	left      Operator
	right     Operator
	leftKeys  []int
	rightKeys []int
	batchSize int

	built    bool
	leftAll  *vector.Batch
	rightAll *vector.Batch
	pairs    [][2]int32
	pos      int
}

// Schema implements Operator.
func (j *flippedHashJoin) Schema() []plan.ColInfo { return j.schema }

func (j *flippedHashJoin) build() error {
	j.built = true
	lmat := &Materialized{Schema: j.left.Schema()}
	for {
		b, err := j.left.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Len() > 0 {
			lmat.Batches = append(lmat.Batches, b)
		}
	}
	j.leftAll = lmat.Flatten()
	ln := j.leftAll.Len()
	if ln == 0 {
		return nil // empty build side: never touch the right input
	}
	hashes := make([]uint64, ln)
	for _, k := range j.leftKeys {
		vector.HashVector(j.leftAll.Cols[k], hashes)
	}
	table := make(map[uint64][]int32, ln)
	for i := 0; i < ln; i++ {
		table[hashes[i]] = append(table[hashes[i]], int32(i))
	}
	rmat := &Materialized{Schema: j.right.Schema()}
	for {
		b, err := j.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if b.Len() > 0 {
			rmat.Batches = append(rmat.Batches, b)
		}
	}
	j.rightAll = rmat.Flatten()
	rn := j.rightAll.Len()
	rhashes := make([]uint64, rn)
	for _, k := range j.rightKeys {
		vector.HashVector(j.rightAll.Cols[k], rhashes)
	}
	for r := 0; r < rn; r++ {
		for _, lrow := range table[rhashes[r]] {
			if j.keysEqual(int(lrow), r) {
				j.pairs = append(j.pairs, [2]int32{lrow, int32(r)})
			}
		}
	}
	// Left-major order restores the default join's exact row sequence.
	sort.Slice(j.pairs, func(a, b int) bool {
		if j.pairs[a][0] != j.pairs[b][0] {
			return j.pairs[a][0] < j.pairs[b][0]
		}
		return j.pairs[a][1] < j.pairs[b][1]
	})
	return nil
}

func (j *flippedHashJoin) keysEqual(lrow, rrow int) bool {
	for i := range j.leftKeys {
		lv := j.leftAll.Cols[j.leftKeys[i]].Get(lrow)
		rv := j.rightAll.Cols[j.rightKeys[i]].Get(rrow)
		if !vector.Equal(lv, rv) {
			return false
		}
	}
	return true
}

// Next implements Operator.
func (j *flippedHashJoin) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	if j.pos >= len(j.pairs) {
		return nil, nil
	}
	end := j.pos + j.batchSize
	if end > len(j.pairs) {
		end = len(j.pairs)
	}
	lsel := make([]int, 0, end-j.pos)
	rsel := make([]int, 0, end-j.pos)
	for _, p := range j.pairs[j.pos:end] {
		lsel = append(lsel, int(p[0]))
		rsel = append(rsel, int(p[1]))
	}
	j.pos = end
	return concatBatches(passThrough(j.leftAll, lsel, false), passThrough(j.rightAll, rsel, false)), nil
}

// Close implements Operator.
func (j *flippedHashJoin) Close() error {
	lerr := j.left.Close()
	rerr := j.right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// tryIndexJoin recognizes Join(Scan(a)[+σ], right) where table a carries
// an index on exactly the left join keys, and builds an
// index-nested-loop join: for every right row, the index supplies the
// matching rowIDs of a, which are fetched point-wise through the buffer
// pool. Cold runs pay random I/O for both index probes and row fetches —
// the Figure 3 cold-run behaviour of Ei.
func tryIndexJoin(n *plan.Join, env *Env) (Operator, bool, error) {
	type scanWithPred struct {
		scan *plan.Scan
		pred evaler
	}
	var sw scanWithPred
	switch t := n.Left.(type) {
	case *plan.Scan:
		sw.scan = t
	case *plan.Select:
		if inner, ok := t.Child.(*plan.Scan); ok {
			sw.scan = inner
			sw.pred = t.Pred
		}
	}
	if sw.scan == nil || len(n.LeftKeys) == 0 || len(n.LeftKeys) > 2 {
		return nil, false, nil
	}
	bare := make([]string, len(n.LeftKeys))
	ls := sw.scan.Schema()
	for i, qk := range n.LeftKeys {
		idx := plan.FindColumn(ls, qk)
		if idx < 0 {
			return nil, false, nil
		}
		bare[i] = sw.scan.Def.Columns[idx].Name
	}
	info := env.lookupIndex(sw.scan.TableName, bare)
	if info == nil {
		return nil, false, nil
	}
	right, err := Build(n.Right, env)
	if err != nil {
		return nil, false, err
	}
	tbl, ok := env.Store.Table(sw.scan.TableName)
	if !ok {
		right.Close()
		return nil, false, fmt.Errorf("exec: index join over missing table %s", sw.scan.TableName)
	}
	_, rk, err := resolveKeys(n)
	if err != nil {
		right.Close()
		return nil, false, err
	}
	cols := make([]int, len(sw.scan.Def.Columns))
	for i, c := range sw.scan.Def.Columns {
		cols[i] = tbl.ColumnIndex(c.Name)
	}
	keyCols := make([]int, len(bare))
	for i, b := range bare {
		keyCols[i] = tbl.ColumnIndex(b)
	}
	return &indexJoin{
		schema: n.Schema(), info: info, table: tbl, right: right,
		rightKeys: rk, tableCols: cols, keyCols: keyCols,
		pred: sw.pred, batchSize: env.batchSize(),
	}, true, nil
}

type evaler interface {
	Eval(*vector.Batch) (*vector.Vector, error)
}

// indexJoin is the Ei baseline's physical join.
type indexJoin struct {
	schema    []plan.ColInfo
	info      *IndexInfo
	table     *storage.Table
	right     Operator
	rightKeys []int
	tableCols []int // storage positions of the scan's output columns
	keyCols   []int // storage positions of the indexed key columns
	pred      evaler
	batchSize int

	rightAll *vector.Batch
	rpos     int
	done     bool
}

// Schema implements Operator.
func (j *indexJoin) Schema() []plan.ColInfo { return j.schema }

// Next implements Operator.
func (j *indexJoin) Next() (*vector.Batch, error) {
	if j.rightAll == nil {
		mat := &Materialized{Schema: j.right.Schema()}
		for {
			b, err := j.right.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if b.Len() > 0 {
				mat.Batches = append(mat.Batches, b)
			}
		}
		j.rightAll = mat.Flatten()
	}
	for !j.done {
		if j.rpos >= j.rightAll.Len() {
			j.done = true
			return nil, nil
		}
		rrow := j.rpos
		j.rpos++
		rowIDs, err := j.lookupRow(rrow)
		if err != nil {
			return nil, err
		}
		if len(rowIDs) == 0 {
			continue
		}
		lb, err := j.table.ReadRowsAt(j.tableCols, rowIDs)
		if err != nil {
			return nil, err
		}
		if j.pred != nil {
			pv, err := j.pred.Eval(lb)
			if err != nil {
				return nil, err
			}
			sel := vector.SelFromBools(pv)
			if len(sel) == 0 {
				continue
			}
			lb = lb.Gather(sel)
		}
		rsel := make([]int, lb.Len())
		for i := range rsel {
			rsel[i] = rrow
		}
		return concatBatches(lb, j.rightAll.Gather(rsel)), nil
	}
	return nil, nil
}

// lookupRow probes the index with the key values of one right row.
func (j *indexJoin) lookupRow(rrow int) ([]int64, error) {
	keys := make([]int64, 2)
	for i, rk := range j.rightKeys {
		v := j.rightAll.Cols[rk].Get(rrow)
		switch v.Kind {
		case vector.KindString:
			dict := j.table.Dict(j.keyCols[i])
			if dict == nil {
				return nil, fmt.Errorf("exec: index join over non-dictionary string column")
			}
			code, ok := dict.CodeIfPresent(v.S)
			if !ok {
				return nil, nil // value never stored: no matches
			}
			keys[i] = code
		case vector.KindInt64, vector.KindTime:
			keys[i] = v.I
		default:
			return nil, fmt.Errorf("exec: unsupported index key kind %s", v.Kind)
		}
	}
	if len(j.rightKeys) == 1 {
		return j.info.Index.LookupA(keys[0])
	}
	return j.info.Index.Lookup(keys[0], keys[1])
}

// Close implements Operator.
func (j *indexJoin) Close() error { return j.right.Close() }
