package exec

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// testEnv builds a store with a small metadata-ish table and returns the
// environment plus the catalog def.
func testEnv(t *testing.T) (*Env, catalog.TableDef) {
	t.Helper()
	pool := storage.NewBufferPool(256, storage.NoCost(), nil)
	store, err := storage.Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	def := catalog.TableDef{
		Name: "T", Kind: catalog.Metadata,
		Columns: []storage.Column{
			{Name: "id", Kind: vector.KindInt64},
			{Name: "grp", Kind: vector.KindString},
			{Name: "val", Kind: vector.KindFloat64},
		},
	}
	tbl, err := store.Create("T", def.Columns)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := tbl.NewAppender()
	ids := make([]int64, 100)
	grps := make([]string, 100)
	vals := make([]float64, 100)
	for i := range ids {
		ids[i] = int64(i)
		grps[i] = []string{"x", "y"}[i%2]
		vals[i] = float64(i) * 1.5
	}
	app.Append(vector.NewBatch(vector.FromInt64(ids), vector.FromString(grps), vector.FromFloat64(vals)))
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	env := &Env{
		Store:    store,
		Adapters: catalog.NewRegistry(),
		Results:  make(map[string]*Materialized),
		Mounts:   &MountStats{},
	}
	return env, def
}

func scanNode(def catalog.TableDef) *plan.Scan {
	return &plan.Scan{TableName: def.Name, Binding: def.Name, Def: def}
}

func col(schema []plan.ColInfo, name string) *expr.Col {
	idx := plan.FindColumn(schema, name)
	return &expr.Col{Index: idx, Name: name, K: schema[idx].Kind}
}

func TestScanAllRows(t *testing.T) {
	env, def := testEnv(t)
	mat, err := Run(scanNode(def), env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 100 {
		t.Fatalf("rows = %d", mat.Rows())
	}
	flat := mat.Flatten()
	if flat.Cols[0].Int64s()[42] != 42 {
		t.Error("scan data wrong")
	}
}

func TestFilterAndProject(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	schema := scan.Schema()
	sel := &plan.Select{
		Pred:  &expr.Compare{Op: expr.Ge, L: col(schema, "T.id"), R: &expr.Const{Val: vector.Int64(90)}},
		Child: scan,
	}
	proj := &plan.Project{
		Exprs: []expr.Expr{col(schema, "T.val")},
		Names: []string{"v"},
		Child: sel,
	}
	mat, err := Run(proj, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 10 {
		t.Fatalf("rows = %d, want 10", mat.Rows())
	}
	if mat.Flatten().Cols[0].Float64s()[0] != 135 {
		t.Error("projection wrong")
	}
}

func TestHashJoinAgainstSelf(t *testing.T) {
	env, def := testEnv(t)
	left := scanNode(def)
	right := &plan.Scan{TableName: def.Name, Binding: "U", Def: def}
	j := &plan.Join{
		Left: left, Right: right,
		LeftKeys: []string{"T.id"}, RightKeys: []string{"U.id"},
	}
	mat, err := Run(j, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 100 {
		t.Fatalf("self equi-join rows = %d, want 100", mat.Rows())
	}
	if len(mat.Schema) != 6 {
		t.Errorf("join schema width = %d", len(mat.Schema))
	}
}

func TestCrossJoin(t *testing.T) {
	env, def := testEnv(t)
	left := scanNode(def)
	right := &plan.Scan{TableName: def.Name, Binding: "U", Def: def}
	sel := &plan.Select{ // 2 rows on each side
		Pred:  &expr.Compare{Op: expr.Lt, L: col(left.Schema(), "T.id"), R: &expr.Const{Val: vector.Int64(2)}},
		Child: left,
	}
	rsel := &plan.Select{
		Pred:  &expr.Compare{Op: expr.Lt, L: col(right.Schema(), "U.id"), R: &expr.Const{Val: vector.Int64(3)}},
		Child: right,
	}
	j := &plan.Join{Left: sel, Right: rsel}
	mat, err := Run(j, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 6 {
		t.Errorf("cross join rows = %d, want 6", mat.Rows())
	}
}

func TestAggregateGlobal(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	schema := scan.Schema()
	agg := &plan.Aggregate{
		Aggs: []plan.AggSpec{
			{Func: plan.AggCount, Name: "n"},
			{Func: plan.AggAvg, Arg: col(schema, "T.val"), Name: "avg_v"},
			{Func: plan.AggMin, Arg: col(schema, "T.id"), Name: "min_id"},
			{Func: plan.AggMax, Arg: col(schema, "T.id"), Name: "max_id"},
			{Func: plan.AggSum, Arg: col(schema, "T.id"), Name: "sum_id"},
		},
		Child: scan,
	}
	mat, err := Run(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1 {
		t.Fatalf("global agg rows = %d", mat.Rows())
	}
	row := mat.Flatten()
	if row.Cols[0].Int64s()[0] != 100 {
		t.Error("COUNT wrong")
	}
	if math.Abs(row.Cols[1].Float64s()[0]-74.25) > 1e-9 {
		t.Errorf("AVG = %v", row.Cols[1].Float64s()[0])
	}
	if row.Cols[2].Int64s()[0] != 0 || row.Cols[3].Int64s()[0] != 99 {
		t.Error("MIN/MAX wrong")
	}
	if row.Cols[4].Int64s()[0] != 4950 {
		t.Error("SUM wrong")
	}
}

func TestAggregateGrouped(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	schema := scan.Schema()
	agg := &plan.Aggregate{
		GroupBy: []string{"T.grp"},
		Aggs:    []plan.AggSpec{{Func: plan.AggCount, Name: "n"}},
		Child:   scan,
	}
	_ = schema
	mat, err := Run(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 2 {
		t.Fatalf("groups = %d, want 2", mat.Rows())
	}
	flat := mat.Flatten()
	for i := 0; i < 2; i++ {
		if flat.Cols[1].Int64s()[i] != 50 {
			t.Errorf("group %s count = %d", flat.Cols[0].Strings()[i], flat.Cols[1].Int64s()[i])
		}
	}
}

func TestAggregateEmptyInputGlobal(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	schema := scan.Schema()
	sel := &plan.Select{
		Pred:  &expr.Compare{Op: expr.Lt, L: col(schema, "T.id"), R: &expr.Const{Val: vector.Int64(-1)}},
		Child: scan,
	}
	agg := &plan.Aggregate{
		Aggs:  []plan.AggSpec{{Func: plan.AggCount, Name: "n"}, {Func: plan.AggAvg, Arg: col(schema, "T.val"), Name: "a"}},
		Child: sel,
	}
	mat, err := Run(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1 {
		t.Fatal("global aggregate over empty input must yield one row")
	}
	row := mat.Flatten()
	if row.Cols[0].Int64s()[0] != 0 || row.Cols[1].Float64s()[0] != 0 {
		t.Error("empty aggregate defaults wrong")
	}
}

func TestCountDistinct(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	schema := scan.Schema()
	agg := &plan.Aggregate{
		Aggs:  []plan.AggSpec{{Func: plan.AggCount, Arg: col(schema, "T.grp"), Distinct: true, Name: "d"}},
		Child: scan,
	}
	mat, err := Run(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Flatten().Cols[0].Int64s()[0] != 2 {
		t.Error("COUNT(DISTINCT grp) != 2")
	}
}

func TestSortAndLimit(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	sorted := &plan.Sort{Keys: []plan.SortKey{{Index: 0, Desc: true}}, Child: scan}
	lim := &plan.Limit{N: 3, Child: sorted}
	mat, err := Run(lim, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 3 {
		t.Fatalf("rows = %d", mat.Rows())
	}
	ids := mat.Flatten().Cols[0].Int64s()
	if ids[0] != 99 || ids[1] != 98 || ids[2] != 97 {
		t.Errorf("sorted ids = %v", ids)
	}
}

func TestSortStability(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	// Sort by grp: within a group, original id order must be preserved.
	sorted := &plan.Sort{Keys: []plan.SortKey{{Index: 1, Desc: false}}, Child: scan}
	mat, err := Run(sorted, env)
	if err != nil {
		t.Fatal(err)
	}
	flat := mat.Flatten()
	prev := int64(-1)
	for i := 0; i < 50; i++ { // first 50 rows are group "x": ids 0,2,4...
		id := flat.Cols[0].Int64s()[i]
		if id <= prev {
			t.Fatalf("sort not stable at row %d: %d after %d", i, id, prev)
		}
		prev = id
	}
}

func TestUnionAllAndResultScan(t *testing.T) {
	env, def := testEnv(t)
	scan := scanNode(def)
	mat, err := Run(scan, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Results["r1"] = mat
	rs := &plan.ResultScan{Name: "r1", Cols: scan.Schema()}
	union := &plan.UnionAll{Inputs: []plan.Node{rs, &plan.ResultScan{Name: "r1", Cols: scan.Schema()}}}
	// A fresh result-scan operator is needed per use; rebuild via Run.
	out, err := Run(union, env)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 200 {
		t.Errorf("union rows = %d, want 200", out.Rows())
	}
}

func TestEmptyUnion(t *testing.T) {
	env, def := testEnv(t)
	union := &plan.UnionAll{Cols: scanNode(def).Schema()}
	out, err := Run(union, env)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 0 {
		t.Error("empty union produced rows")
	}
	if len(out.Schema) != 3 {
		t.Error("empty union lost its schema")
	}
}

func TestResultScanMissing(t *testing.T) {
	env, def := testEnv(t)
	rs := &plan.ResultScan{Name: "ghost", Cols: scanNode(def).Schema()}
	if _, err := Run(rs, env); err == nil {
		t.Error("missing materialized result accepted")
	}
}

func TestScanMissingTable(t *testing.T) {
	env, _ := testEnv(t)
	bad := &plan.Scan{TableName: "NOPE", Binding: "NOPE",
		Def: catalog.TableDef{Name: "NOPE", Columns: []storage.Column{{Name: "x", Kind: vector.KindInt64}}}}
	if _, err := Run(bad, env); err == nil {
		t.Error("scan of missing table accepted")
	}
}

func TestPredSpanExtraction(t *testing.T) {
	schema := []plan.ColInfo{{Table: "D", Name: "sample_time", Kind: vector.KindTime}}
	c := col(schema, "D.sample_time")
	pred := expr.JoinAnd([]expr.Expr{
		&expr.Compare{Op: expr.Gt, L: c, R: &expr.Const{Val: vector.Time(100)}},
		&expr.Compare{Op: expr.Lt, L: c, R: &expr.Const{Val: vector.Time(200)}},
	})
	lo, hi, ok := PredSpan(pred, "D", "sample_time")
	if !ok || lo != 101 || hi != 199 {
		t.Errorf("span = [%d,%d] ok=%v, want [101,199]", lo, hi, ok)
	}
	// Flipped constant side.
	flipped := &expr.Compare{Op: expr.Ge, L: &expr.Const{Val: vector.Time(500)}, R: c}
	lo, hi, ok = PredSpan(flipped, "D", "sample_time") // 500 >= t  =>  t <= 500
	if !ok || hi != 500 {
		t.Errorf("flipped span hi = %d ok=%v", hi, ok)
	}
	// Equality pins both bounds.
	eq := &expr.Compare{Op: expr.Eq, L: c, R: &expr.Const{Val: vector.Time(42)}}
	lo, hi, ok = PredSpan(eq, "D", "sample_time")
	if !ok || lo != 42 || hi != 42 {
		t.Errorf("eq span = [%d,%d]", lo, hi)
	}
	// Unrelated predicate: not constrained.
	other := &expr.Compare{Op: expr.Gt,
		L: &expr.Col{Index: 0, Name: "D.sample_value", K: vector.KindFloat64},
		R: &expr.Const{Val: vector.Float64(0)}}
	if _, _, ok := PredSpan(other, "D", "sample_time"); ok {
		t.Error("unconstrained span reported as found")
	}
	if _, _, ok := PredSpan(nil, "D", "sample_time"); ok {
		t.Error("nil predicate constrained")
	}
}

func TestMaterializedHelpers(t *testing.T) {
	env, def := testEnv(t)
	mat, err := Run(scanNode(def), env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Column("T.id") != 0 || mat.Column("grp") != 1 || mat.Column("zzz") != -1 {
		t.Error("Column lookup wrong")
	}
	flat := mat.Flatten()
	if flat.Len() != mat.Rows() {
		t.Error("Flatten lost rows")
	}
}

func TestLimitZero(t *testing.T) {
	env, def := testEnv(t)
	lim := &plan.Limit{N: 0, Child: scanNode(def)}
	mat, err := Run(lim, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 0 {
		t.Error("LIMIT 0 returned rows")
	}
}
