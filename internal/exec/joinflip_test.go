package exec

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/vector"
)

// stubCard serves cardinalities for ResultScan leaves by name — the
// same interface core's stats.Oracle implements.
type stubCard map[string]int64

func (s stubCard) NodeRows(n plan.Node) (int64, bool) {
	if rs, ok := n.(*plan.ResultScan); ok {
		c, ok := s[rs.Name]
		return c, ok
	}
	return 0, false
}

func joinFixture() (*Env, *plan.Join) {
	small := &Materialized{
		Schema: []plan.ColInfo{
			{Table: "L", Name: "k", Kind: vector.KindInt64},
			{Table: "L", Name: "tag", Kind: vector.KindString},
		},
		Batches: []*vector.Batch{vector.NewBatch(
			vector.FromInt64([]int64{2, 0, 1}),
			vector.FromString([]string{"b", "z", "a"}),
		)},
	}
	bigKeys := make([]int64, 60)
	bigVals := make([]float64, 60)
	for i := range bigKeys {
		bigKeys[i] = int64(i % 5) // keys 0..4; 0..2 match the small side
		bigVals[i] = float64(i)
	}
	big := &Materialized{
		Schema: []plan.ColInfo{
			{Table: "R", Name: "k", Kind: vector.KindInt64},
			{Table: "R", Name: "v", Kind: vector.KindFloat64},
		},
		Batches: []*vector.Batch{vector.NewBatch(
			vector.FromInt64(bigKeys),
			vector.FromFloat64(bigVals),
		)},
	}
	env := &Env{
		Results: map[string]*Materialized{"small": small, "big": big},
		Mounts:  &MountStats{},
	}
	j := &plan.Join{
		Left:      &plan.ResultScan{Name: "small", Cols: small.Schema},
		Right:     &plan.ResultScan{Name: "big", Cols: big.Schema},
		LeftKeys:  []string{"L.k"},
		RightKeys: []string{"R.k"},
	}
	return env, j
}

// TestJoinBuildSideFlip pins the acceptance criterion: when the
// cardinality oracle proves the left input smaller, the join builds on
// it (JoinBuildFlips increments) and the output row sequence is
// identical to the default right-build join.
func TestJoinBuildSideFlip(t *testing.T) {
	envDefault, jd := joinFixture()
	defaultOut, err := Run(jd, envDefault)
	if err != nil {
		t.Fatal(err)
	}
	if envDefault.MountsSnapshot().JoinBuildFlips != 0 {
		t.Fatal("flip counted without an oracle")
	}

	envFlip, jf := joinFixture()
	envFlip.Card = stubCard{"small": 3, "big": 60}
	flipOut, err := Run(jf, envFlip)
	if err != nil {
		t.Fatal(err)
	}
	if got := envFlip.MountsSnapshot().JoinBuildFlips; got != 1 {
		t.Fatalf("JoinBuildFlips = %d, want 1 (left side 3 rows < right 60)", got)
	}

	a, b := defaultOut.Flatten(), flipOut.Flatten()
	if a.Len() != b.Len() || a.Len() == 0 {
		t.Fatalf("row counts differ or empty: %d vs %d", a.Len(), b.Len())
	}
	for r := 0; r < a.Len(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			if !vector.Equal(a.Cols[c].Get(r), b.Cols[c].Get(r)) {
				t.Fatalf("row %d col %d differs: %v vs %v (flip must preserve exact row order)",
					r, c, a.Cols[c].Get(r), b.Cols[c].Get(r))
			}
		}
	}
}

// TestJoinNoFlipWhenRightSmaller pins the converse: an oracle that
// proves the right side smaller keeps the default build side.
func TestJoinNoFlipWhenRightSmaller(t *testing.T) {
	env, j := joinFixture()
	env.Card = stubCard{"small": 100, "big": 60}
	if _, err := Run(j, env); err != nil {
		t.Fatal(err)
	}
	if got := env.MountsSnapshot().JoinBuildFlips; got != 0 {
		t.Fatalf("JoinBuildFlips = %d, want 0", got)
	}
}

// poisonOp fails the test if the executor ever pulls from it — the
// "don't mount what you won't need" guarantee of early termination.
type poisonOp struct {
	t      *testing.T
	schema []plan.ColInfo
}

func (p *poisonOp) Schema() []plan.ColInfo { return p.schema }
func (p *poisonOp) Next() (*vector.Batch, error) {
	p.t.Error("right input pulled despite empty build side")
	return nil, nil
}
func (p *poisonOp) Close() error { return nil }

type matOp struct {
	mat *Materialized
	i   int
}

func (m *matOp) Schema() []plan.ColInfo { return m.mat.Schema }
func (m *matOp) Next() (*vector.Batch, error) {
	if m.i >= len(m.mat.Batches) {
		return nil, nil
	}
	b := m.mat.Batches[m.i]
	m.i++
	return b, nil
}
func (m *matOp) Close() error { return nil }

// TestFlippedJoinEmptyBuildSkipsProbe pins early termination: an empty
// left (build) side must finish without pulling the right side at all —
// in Stage 2 that is what saves the mounts.
func TestFlippedJoinEmptyBuildSkipsProbe(t *testing.T) {
	schema := []plan.ColInfo{{Table: "L", Name: "k", Kind: vector.KindInt64}}
	empty := &Materialized{Schema: schema}
	j := &flippedHashJoin{
		schema:    append(append([]plan.ColInfo{}, schema...), plan.ColInfo{Table: "R", Name: "k", Kind: vector.KindInt64}),
		left:      &matOp{mat: empty},
		right:     &poisonOp{t: t, schema: []plan.ColInfo{{Table: "R", Name: "k", Kind: vector.KindInt64}}},
		leftKeys:  []int{0},
		rightKeys: []int{0},
		batchSize: 16,
	}
	b, err := j.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatalf("empty join emitted %d rows", b.Len())
	}
}

// TestHashJoinEmptyBuildSkipsProbe is the mirror for the default join:
// an empty right (build) side must not drain the left.
func TestHashJoinEmptyBuildSkipsProbe(t *testing.T) {
	schema := []plan.ColInfo{{Table: "R", Name: "k", Kind: vector.KindInt64}}
	empty := &Materialized{Schema: schema}
	j := &hashJoin{
		schema:    append([]plan.ColInfo{{Table: "L", Name: "k", Kind: vector.KindInt64}}, schema...),
		left:      &poisonOp{t: t, schema: []plan.ColInfo{{Table: "L", Name: "k", Kind: vector.KindInt64}}},
		right:     &matOp{mat: empty},
		leftKeys:  []int{0},
		rightKeys: []int{0},
		batchSize: 16,
	}
	b, err := j.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatalf("empty join emitted %d rows", b.Len())
	}
}

// TestPassThroughCoW pins the copy-on-write contract: an identity
// selection passes the batch through (same pointer when ownership
// transfers, a share when the join retains its copy); a real selection
// gathers.
func TestPassThroughCoW(t *testing.T) {
	b := vector.NewBatch(vector.FromInt64([]int64{1, 2, 3}))
	identity := []int{0, 1, 2}

	if got := passThrough(b, identity, true); got != b {
		t.Error("owned identity pass-through copied the batch")
	}
	shared := passThrough(b, identity, false)
	if shared == b {
		t.Error("retained identity pass-through returned the original, not a share")
	}
	if shared.Len() != 3 || !vector.Equal(shared.Cols[0].Get(1), vector.Int64(2)) {
		t.Error("share does not expose the same rows")
	}
	// Mutating the share must not touch the original (CoW): appending
	// through the share materializes a private copy for the share only.
	shared.Cols[0].AppendInt64(99)
	if b.Cols[0].Len() != 3 || !vector.Equal(b.Cols[0].Get(0), vector.Int64(1)) {
		t.Error("mutation through the share corrupted the retained batch")
	}

	gathered := passThrough(b, []int{2, 0}, false)
	if gathered.Len() != 2 || !vector.Equal(gathered.Cols[0].Get(0), vector.Int64(3)) {
		t.Error("non-identity selection not gathered")
	}
}
