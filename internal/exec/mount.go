package exec

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/vector"
)

// mountOp performs ALi for one file: extract, transform and ingest its
// actual data as a dangling partial table, never touching table storage.
// A fused selection (σ∘mount) both prunes whole records before
// decompression (via the adapter's record span) and filters the decoded
// rows. Depending on the cache policy the mounted data is retained for
// later cache-scans; otherwise it is discarded when the query ends.
type mountOp struct {
	node    *plan.Mount
	env     *Env
	adapter catalog.FormatAdapter
	schema  []plan.ColInfo

	out  *vector.Batch
	pos  int
	done bool
}

func newMount(n *plan.Mount, env *Env) (Operator, error) {
	ad, ok := env.Adapters.Get(n.Adapter)
	if !ok {
		return nil, fmt.Errorf("exec: mount with unknown adapter %s", n.Adapter)
	}
	return &mountOp{node: n, env: env, adapter: ad, schema: n.Schema()}, nil
}

// Schema implements Operator.
func (m *mountOp) Schema() []plan.ColInfo { return m.schema }

// Next implements Operator.
func (m *mountOp) Next() (*vector.Batch, error) {
	if !m.done {
		if err := m.mount(); err != nil {
			return nil, err
		}
		m.done = true
	}
	return emitChunk(m.out, &m.pos, m.env.batchSize()), nil
}

func (m *mountOp) mount() error {
	path := filepath.Join(m.env.RepoDir, m.node.URI)
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("exec: mount %s: %w", m.node.URI, err)
	}
	// Model the cost of reading the external file by pulling its pages
	// through the buffer pool: a cold mount pays seek+transfer, a hot
	// repeat is free (the paper's hot protocol has the file in the OS
	// page cache).
	pool := m.env.Store.Pool()
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("exec: mount %s: %w", m.node.URI, err)
	}
	touchErr := pool.Touch(path, f, st.Size())
	f.Close()
	if touchErr != nil {
		return fmt.Errorf("exec: mount %s: %w", m.node.URI, touchErr)
	}

	// Record pruning from the fused selection: only when the cache policy
	// does not require the whole file to be retained.
	fileGranularCaching := m.env.Cache != nil &&
		m.env.Cache.Config().Policy != cache.NeverCache &&
		m.env.Cache.Config().Granularity == cache.FileGranular
	var keep func(catalog.RecordMeta) bool
	pruned := 0
	if m.node.Pred != nil && !fileGranularCaching {
		if sp, ok := predSpan(m.node.Pred, m.node.Binding, m.adapter.DataSpanColumn()); ok {
			keep = func(rm catalog.RecordMeta) bool {
				lo, hi, known := m.adapter.RecordSpan(rm)
				if !known {
					return true
				}
				if hi < sp.Lo || lo > sp.Hi {
					pruned++
					return false
				}
				return true
			}
		}
	}

	full, err := m.adapter.Mount(path, m.node.URI, keep)
	if err != nil {
		return err
	}
	m.env.addMountStats(func(ms *MountStats) {
		ms.FilesMounted++
		ms.BytesRead += st.Size()
		ms.RecordsPruned += pruned
		ms.RecordsMounted += full.Len()
	})
	if m.env.OnMount != nil {
		m.env.OnMount(m.node.URI, full)
	}

	filtered := full
	if m.node.Pred != nil {
		pv, err := m.node.Pred.Eval(full)
		if err != nil {
			return err
		}
		sel := vector.SelFromBools(pv)
		if len(sel) != full.Len() {
			filtered = full.Gather(sel)
		}
	}

	// Cache retention per policy and granularity.
	if m.env.Cache != nil {
		switch m.env.Cache.Config().Granularity {
		case cache.FileGranular:
			if keep == nil { // full file was mounted
				m.env.Cache.Put(m.node.URI, full, cache.FullSpan())
			}
		case cache.TupleGranular:
			span := cache.FullSpan()
			if m.node.Pred != nil {
				if sp, ok := predSpan(m.node.Pred, m.node.Binding, m.adapter.DataSpanColumn()); ok {
					span = cache.Span{Lo: sp.Lo, Hi: sp.Hi}
				}
			}
			m.env.Cache.Put(m.node.URI, filtered, span)
		}
	}
	m.out = filtered
	return nil
}

// Close implements Operator.
func (m *mountOp) Close() error {
	m.out = nil // unmount: dangling partial tables vanish with the query
	return nil
}

// cacheScanOp serves previously mounted data from the ingestion cache.
// If the entry was evicted between planning and execution it falls back
// to a fresh mount.
type cacheScanOp struct {
	node   *plan.CacheScan
	env    *Env
	schema []plan.ColInfo

	out  *vector.Batch
	pos  int
	done bool
}

func newCacheScan(n *plan.CacheScan, env *Env) (Operator, error) {
	if env.Cache == nil {
		return nil, fmt.Errorf("exec: cache-scan of %s without a cache", n.URI)
	}
	return &cacheScanOp{node: n, env: env, schema: n.Schema()}, nil
}

// Schema implements Operator.
func (c *cacheScanOp) Schema() []plan.ColInfo { return c.schema }

// Next implements Operator.
func (c *cacheScanOp) Next() (*vector.Batch, error) {
	if !c.done {
		if err := c.load(); err != nil {
			return nil, err
		}
		c.done = true
	}
	return emitChunk(c.out, &c.pos, c.env.batchSize()), nil
}

func (c *cacheScanOp) load() error {
	need := cache.FullSpan()
	var spanCol string
	if ad, ok := c.env.Adapters.Get(c.node.Adapter); ok {
		spanCol = ad.DataSpanColumn()
	}
	if c.node.Pred != nil && spanCol != "" {
		if sp, ok := predSpan(c.node.Pred, c.node.Binding, spanCol); ok {
			need = cache.Span{Lo: sp.Lo, Hi: sp.Hi}
		}
	}
	cached, ok := c.env.Cache.Get(c.node.URI, need)
	if !ok {
		// Evicted since rule (1) decided f ∈ C: fall back to mounting.
		mountNode := &plan.Mount{
			URI: c.node.URI, Adapter: c.node.Adapter,
			Binding: c.node.Binding, Def: c.node.Def, Pred: c.node.Pred,
		}
		op, err := newMount(mountNode, c.env)
		if err != nil {
			return err
		}
		defer op.Close()
		mat := &Materialized{Schema: c.schema}
		for {
			b, err := op.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			mat.Batches = append(mat.Batches, b)
		}
		c.out = mat.Flatten()
		return nil
	}
	c.env.addMountStats(func(ms *MountStats) {
		ms.CacheHits++
	})
	filtered := cached
	if c.node.Pred != nil {
		pv, err := c.node.Pred.Eval(cached)
		if err != nil {
			return err
		}
		sel := vector.SelFromBools(pv)
		if len(sel) != cached.Len() {
			filtered = cached.Gather(sel)
		}
	}
	c.out = filtered
	return nil
}

// Close implements Operator.
func (c *cacheScanOp) Close() error { return nil }

// emitChunk slices the materialized batch into batch-sized outputs.
func emitChunk(out *vector.Batch, pos *int, size int) *vector.Batch {
	if out == nil || *pos >= out.Len() {
		return nil
	}
	hi := *pos + size
	if hi > out.Len() {
		hi = out.Len()
	}
	b := out.Slice(*pos, hi)
	*pos = hi
	return b
}

// PredSpan exposes span extraction to the engine layer: it returns the
// inclusive [lo, hi] restriction a conjunctive predicate places on
// binding.spanCol, with ok=false when unconstrained.
func PredSpan(pred expr.Expr, binding, spanCol string) (lo, hi int64, ok bool) {
	if pred == nil {
		return 0, 0, false
	}
	sp, found := predSpan(pred, binding, spanCol)
	return sp.Lo, sp.Hi, found
}

// predBounds is a half-open numeric restriction on one column extracted
// from a conjunction.
type predBounds struct {
	Lo, Hi int64
}

// predSpan extracts the [Lo, Hi] bounds that a conjunctive predicate
// places on the named span column (e.g. D.sample_time). It returns
// ok=false when the predicate does not constrain the column.
func predSpan(pred expr.Expr, binding, spanCol string) (predBounds, bool) {
	if spanCol == "" {
		return predBounds{}, false
	}
	qualified := binding + "." + spanCol
	sp := predBounds{Lo: math.MinInt64, Hi: math.MaxInt64}
	found := false
	for _, conj := range expr.SplitAnd(pred) {
		cmp, ok := conj.(*expr.Compare)
		if !ok {
			continue
		}
		col, colOnLeft := cmp.L.(*expr.Col)
		if !colOnLeft {
			if rc, ok := cmp.R.(*expr.Col); ok {
				col = rc
			} else {
				continue
			}
		}
		if col == nil || (col.Name != qualified && col.Name != spanCol) {
			continue
		}
		var c *expr.Const
		if colOnLeft {
			c, ok = cmp.R.(*expr.Const)
		} else {
			c, ok = cmp.L.(*expr.Const)
		}
		if !ok || !(c.Val.Kind == vector.KindInt64 || c.Val.Kind == vector.KindTime) {
			continue
		}
		op := cmp.Op
		if !colOnLeft {
			op = flipOp(op)
		}
		v := c.Val.I
		switch op {
		case expr.Gt:
			if v+1 > sp.Lo {
				sp.Lo = v + 1
			}
			found = true
		case expr.Ge:
			if v > sp.Lo {
				sp.Lo = v
			}
			found = true
		case expr.Lt:
			if v-1 < sp.Hi {
				sp.Hi = v - 1
			}
			found = true
		case expr.Le:
			if v < sp.Hi {
				sp.Hi = v
			}
			found = true
		case expr.Eq:
			if v > sp.Lo {
				sp.Lo = v
			}
			if v < sp.Hi {
				sp.Hi = v
			}
			found = true
		}
	}
	return sp, found
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	}
	return op
}
