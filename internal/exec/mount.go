package exec

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/mountsvc"
	"repro/internal/plan"
	"repro/internal/vector"
)

// mountOp performs ALi for one file: a thin cursor over the engine's
// shared mount service. The service owns extraction (single-flight
// across queries, streaming, budget-gated); the operator owns what is
// query-specific — evaluating the fused σ∘mount predicate on every
// record batch as it arrives, and tuple-granular cache retention of the
// rows that survived it. Mounted data is a dangling partial table: it
// vanishes with the query unless the cache policy retains it.
type mountOp struct {
	node    *plan.Mount
	env     *Env
	adapter catalog.FormatAdapter
	schema  []plan.ColInfo

	cur      mountsvc.Cursor
	started  bool
	finished bool

	// Tuple-granular retention: the filtered rows and the span they
	// cover, inserted only after the stream fully drains (a partial
	// entry would serve wrong answers to later queries).
	retain     *Materialized
	retainSpan cache.Span
}

func newMount(n *plan.Mount, env *Env) (Operator, error) {
	ad, ok := env.Adapters.Get(n.Adapter)
	if !ok {
		return nil, fmt.Errorf("exec: mount with unknown adapter %s", n.Adapter)
	}
	return &mountOp{node: n, env: env, adapter: ad, schema: n.Schema()}, nil
}

// Schema implements Operator.
func (m *mountOp) Schema() []plan.ColInfo { return m.schema }

// start attaches the cursor to the mount service.
func (m *mountOp) start() error {
	span := cache.FullSpan()
	if m.node.Pred != nil {
		if sp, ok := predSpan(m.node.Pred, m.node.Binding, m.adapter.DataSpanColumn()); ok {
			span = cache.Span{Lo: sp.Lo, Hi: sp.Hi}
		}
	}
	if m.env.Cache != nil &&
		m.env.Cache.Config().Policy != cache.NeverCache &&
		m.env.Cache.Config().Granularity == cache.TupleGranular {
		m.retain = &Materialized{Schema: m.schema}
		m.retainSpan = span
	}
	env := m.env
	cur, err := env.service().Mount(mountsvc.Request{
		URI:       m.node.URI,
		Ctx:       env.Ctx,
		Session:   env.Session,
		Adapter:   m.adapter,
		Span:      span,
		BatchRows: env.batchSize(),
		EstBytes:  m.node.EstBytes,
		Observe: func(d mountsvc.Delta) {
			env.addMountStats(func(ms *MountStats) {
				switch {
				case d.FileMounted:
					ms.FilesMounted++
					ms.BytesRead += d.BytesRead
					ms.RecordsPruned += d.RecordsPruned
					ms.RecordsMounted += d.RecordsMounted
					ms.AdmissionBytesSaved += d.AdmissionSaved
				case d.SingleFlight:
					ms.SingleFlightHits++
				case d.FromCache:
					ms.CacheHits++
				}
			})
		},
	})
	if err != nil {
		return fmt.Errorf("exec: mount %s: %w", m.node.URI, err)
	}
	m.cur = cur
	return nil
}

// Next implements Operator: pull a record batch from the service, apply
// the fused predicate, emit the survivors.
func (m *mountOp) Next() (*vector.Batch, error) {
	if !m.started {
		if err := m.start(); err != nil {
			return nil, err
		}
		m.started = true
	}
	for {
		if m.finished {
			return nil, nil
		}
		b, err := m.cur.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			m.finished = true
			if m.retain != nil {
				// Put takes its own share of the flattened retention
				// batches; no deep copy is needed even when Flatten
				// returned an emitted batch itself.
				m.env.Cache.Put(m.node.URI, m.retain.Flatten(), m.retainSpan)
			}
			return nil, nil
		}
		// b is a copy-on-write share of the flight's replay buffer: it
		// can be emitted downstream as-is. A client mutating this query's
		// result materializes a private copy and can never corrupt
		// another query riding the same extraction.
		filtered := b
		if m.node.Pred != nil {
			pv, err := m.node.Pred.Eval(b)
			if err != nil {
				return nil, err
			}
			sel := vector.SelFromBools(pv)
			if len(sel) != b.Len() {
				filtered = b.Gather(sel)
			}
		}
		if m.retain != nil && filtered.Len() > 0 {
			// The retention buffer is a second owner of these rows: it
			// keeps its own handle so downstream mutations of the emitted
			// batch cannot reach the future cache entry.
			m.retain.Batches = append(m.retain.Batches, filtered.Share())
		}
		if filtered.Len() == 0 {
			continue
		}
		return filtered, nil
	}
}

// Close implements Operator. A stream closed before draining skips
// tuple-granular retention (the entry would be incomplete) and detaches
// from the flight without affecting other queries riding it.
func (m *mountOp) Close() error {
	m.retain = nil
	if m.cur != nil {
		return m.cur.Close()
	}
	return nil
}

// cacheScanOp serves previously mounted data from the ingestion cache.
// If the entry was evicted between planning and execution it records the
// fallback and streams a fresh mount instead.
type cacheScanOp struct {
	node   *plan.CacheScan
	env    *Env
	schema []plan.ColInfo

	started  bool
	fallback Operator

	out *vector.Batch
	pos int
}

func newCacheScan(n *plan.CacheScan, env *Env) (Operator, error) {
	if env.Cache == nil {
		return nil, fmt.Errorf("exec: cache-scan of %s without a cache", n.URI)
	}
	return &cacheScanOp{node: n, env: env, schema: n.Schema()}, nil
}

// Schema implements Operator.
func (c *cacheScanOp) Schema() []plan.ColInfo { return c.schema }

// Next implements Operator.
func (c *cacheScanOp) Next() (*vector.Batch, error) {
	if !c.started {
		if err := c.load(); err != nil {
			return nil, err
		}
		c.started = true
	}
	if c.fallback != nil {
		return c.fallback.Next()
	}
	return emitChunk(c.out, &c.pos, c.env.batchSize()), nil
}

func (c *cacheScanOp) load() error {
	need := cache.FullSpan()
	var spanCol string
	if ad, ok := c.env.Adapters.Get(c.node.Adapter); ok {
		spanCol = ad.DataSpanColumn()
	}
	if c.node.Pred != nil && spanCol != "" {
		if sp, ok := predSpan(c.node.Pred, c.node.Binding, spanCol); ok {
			need = cache.Span{Lo: sp.Lo, Hi: sp.Hi}
		}
	}
	cached, ok := c.env.Cache.Get(c.node.URI, need)
	if !ok {
		// Evicted since rule (1) decided f ∈ C: fall back to a streaming
		// mount, and record the miss so benchmark numbers can't
		// misattribute cache efficacy.
		c.env.addMountStats(func(ms *MountStats) {
			ms.CacheFallbacks++
		})
		mountNode := &plan.Mount{
			URI: c.node.URI, Adapter: c.node.Adapter,
			Binding: c.node.Binding, Def: c.node.Def, Pred: c.node.Pred,
			EstBytes: c.node.EstBytes,
		}
		op, err := newMount(mountNode, c.env)
		if err != nil {
			return err
		}
		c.fallback = op
		return nil
	}
	c.env.addMountStats(func(ms *MountStats) {
		ms.CacheHits++
	})
	// cached is a copy-on-write share of the entry: serving it (chunked
	// by emitChunk below) costs no copy, and a consumer mutating the
	// served rows materializes its own storage without touching the
	// cache.
	filtered := cached
	if c.node.Pred != nil {
		pv, err := c.node.Pred.Eval(cached)
		if err != nil {
			return err
		}
		sel := vector.SelFromBools(pv)
		if len(sel) != cached.Len() {
			filtered = cached.Gather(sel)
		}
	}
	c.out = filtered
	return nil
}

// Close implements Operator.
func (c *cacheScanOp) Close() error {
	if c.fallback != nil {
		return c.fallback.Close()
	}
	return nil
}

// emitChunk slices the materialized batch into batch-sized outputs.
func emitChunk(out *vector.Batch, pos *int, size int) *vector.Batch {
	if out == nil || *pos >= out.Len() {
		return nil
	}
	hi := *pos + size
	if hi > out.Len() {
		hi = out.Len()
	}
	b := out.Slice(*pos, hi)
	*pos = hi
	return b
}

// PredSpan exposes span extraction to the engine layer: it returns the
// inclusive [lo, hi] restriction a conjunctive predicate places on
// binding.spanCol, with ok=false when unconstrained.
func PredSpan(pred expr.Expr, binding, spanCol string) (lo, hi int64, ok bool) {
	if pred == nil {
		return 0, 0, false
	}
	sp, found := predSpan(pred, binding, spanCol)
	return sp.Lo, sp.Hi, found
}

// predBounds is a half-open numeric restriction on one column extracted
// from a conjunction.
type predBounds struct {
	Lo, Hi int64
}

// predSpan extracts the [Lo, Hi] bounds that a conjunctive predicate
// places on the named span column (e.g. D.sample_time). It returns
// ok=false when the predicate does not constrain the column.
func predSpan(pred expr.Expr, binding, spanCol string) (predBounds, bool) {
	if spanCol == "" {
		return predBounds{}, false
	}
	qualified := binding + "." + spanCol
	sp := predBounds{Lo: math.MinInt64, Hi: math.MaxInt64}
	found := false
	for _, conj := range expr.SplitAnd(pred) {
		cmp, ok := conj.(*expr.Compare)
		if !ok {
			continue
		}
		col, colOnLeft := cmp.L.(*expr.Col)
		if !colOnLeft {
			if rc, ok := cmp.R.(*expr.Col); ok {
				col = rc
			} else {
				continue
			}
		}
		if col == nil || (col.Name != qualified && col.Name != spanCol) {
			continue
		}
		var c *expr.Const
		if colOnLeft {
			c, ok = cmp.R.(*expr.Const)
		} else {
			c, ok = cmp.L.(*expr.Const)
		}
		if !ok || !(c.Val.Kind == vector.KindInt64 || c.Val.Kind == vector.KindTime) {
			continue
		}
		op := cmp.Op
		if !colOnLeft {
			op = flipOp(op)
		}
		v := c.Val.I
		switch op {
		case expr.Gt:
			if v+1 > sp.Lo {
				sp.Lo = v + 1
			}
			found = true
		case expr.Ge:
			if v > sp.Lo {
				sp.Lo = v
			}
			found = true
		case expr.Lt:
			if v-1 < sp.Hi {
				sp.Hi = v - 1
			}
			found = true
		case expr.Le:
			if v < sp.Hi {
				sp.Hi = v
			}
			found = true
		case expr.Eq:
			if v > sp.Lo {
				sp.Lo = v
			}
			if v < sp.Hi {
				sp.Hi = v
			}
			found = true
		}
	}
	return sp, found
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	}
	return op
}
