package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// TestOptimizerPreservesSemantics is a differential test of the plan
// optimizer: random queries are executed from the bound plan directly
// and from the optimized plan (predicate pushdown, metadata-first
// reordering, select collapsing); results must be identical as row
// multisets. This guards the paper's requirement that its additional
// rewrite rules, built on join associativity/commutativity, never change
// query semantics.
func TestOptimizerPreservesSemantics(t *testing.T) {
	env, cat := twoTableEnv(t)
	rng := rand.New(rand.NewSource(25))

	for trial := 0; trial < 60; trial++ {
		q := randomJoinQuery(rng)
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, q, err)
		}
		bound, err := plan.Bind(stmt, cat)
		if err != nil {
			t.Fatalf("trial %d: bind %q: %v", trial, q, err)
		}
		naive, err := Run(bound, env)
		if err != nil {
			t.Fatalf("trial %d: naive run %q: %v", trial, q, err)
		}
		optimized, err := plan.Optimize(bound, cat)
		if err != nil {
			t.Fatalf("trial %d: optimize %q: %v", trial, q, err)
		}
		opt, err := Run(optimized, env)
		if err != nil {
			t.Fatalf("trial %d: optimized run %q: %v", trial, q, err)
		}
		if a, b := canonical(naive), canonical(opt); a != b {
			t.Fatalf("trial %d: results diverge for %q\nnaive:\n%s\noptimized:\n%s\nplan:\n%s",
				trial, q, a, b, plan.Format(optimized))
		}
	}
}

// twoTableEnv builds two joinable metadata tables with skew and
// duplicate join keys.
func twoTableEnv(t *testing.T) (*Env, *catalog.Catalog) {
	t.Helper()
	pool := storage.NewBufferPool(256, storage.NoCost(), nil)
	store, err := storage.Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	cat := catalog.New()

	m1 := catalog.TableDef{Name: "M1", Kind: catalog.Metadata, Columns: []storage.Column{
		{Name: "id", Kind: vector.KindInt64},
		{Name: "grp", Kind: vector.KindString},
		{Name: "val", Kind: vector.KindFloat64},
	}}
	m2 := catalog.TableDef{Name: "M2", Kind: catalog.Metadata, Columns: []storage.Column{
		{Name: "id", Kind: vector.KindInt64},
		{Name: "tag", Kind: vector.KindString},
		{Name: "w", Kind: vector.KindInt64},
	}}
	for _, def := range []catalog.TableDef{m1, m2} {
		if _, err := store.Create(def.Name, def.Columns); err != nil {
			t.Fatal(err)
		}
		if err := cat.Define(def); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	{
		tbl, _ := store.Table("M1")
		app, _ := tbl.NewAppender()
		n := 200
		ids := make([]int64, n)
		grps := make([]string, n)
		vals := make([]float64, n)
		for i := range ids {
			ids[i] = int64(rng.Intn(50)) // duplicates on purpose
			grps[i] = []string{"a", "b", "c"}[rng.Intn(3)]
			vals[i] = float64(rng.Intn(2000)) / 10
		}
		app.Append(vector.NewBatch(vector.FromInt64(ids), vector.FromString(grps), vector.FromFloat64(vals)))
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
	}
	{
		tbl, _ := store.Table("M2")
		app, _ := tbl.NewAppender()
		n := 120
		ids := make([]int64, n)
		tags := make([]string, n)
		ws := make([]int64, n)
		for i := range ids {
			ids[i] = int64(rng.Intn(60))
			tags[i] = []string{"x", "y"}[rng.Intn(2)]
			ws[i] = int64(rng.Intn(9))
		}
		app.Append(vector.NewBatch(vector.FromInt64(ids), vector.FromString(tags), vector.FromInt64(ws)))
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Store: store, Adapters: catalog.NewRegistry(), Results: map[string]*Materialized{}}
	return env, cat
}

// randomJoinQuery produces a random two-table query mixing AND/OR
// predicates, aggregates and projections.
func randomJoinQuery(rng *rand.Rand) string {
	preds := []string{
		fmt.Sprintf("M1.val > %d", rng.Intn(200)),
		fmt.Sprintf("M1.grp = '%s'", []string{"a", "b", "c"}[rng.Intn(3)]),
		fmt.Sprintf("M2.w >= %d", rng.Intn(9)),
		fmt.Sprintf("M2.tag = '%s'", []string{"x", "y"}[rng.Intn(2)]),
		fmt.Sprintf("M1.id < %d", rng.Intn(60)),
		fmt.Sprintf("(M1.grp = 'a' OR M2.tag = 'y')"),
		fmt.Sprintf("M1.val + M2.w > %d", rng.Intn(150)),
	}
	rng.Shuffle(len(preds), func(i, j int) { preds[i], preds[j] = preds[j], preds[i] })
	where := strings.Join(preds[:1+rng.Intn(4)], " AND ")

	switch rng.Intn(3) {
	case 0: // global aggregate
		return fmt.Sprintf(`SELECT COUNT(*) AS n, SUM(M2.w) AS s, MIN(M1.val) AS lo
			FROM M1 JOIN M2 ON M1.id = M2.id WHERE %s`, where)
	case 1: // grouped aggregate
		return fmt.Sprintf(`SELECT M1.grp, COUNT(*) AS n, MAX(M1.val) AS hi
			FROM M1 JOIN M2 ON M1.id = M2.id WHERE %s GROUP BY M1.grp ORDER BY M1.grp`, where)
	default: // projection
		return fmt.Sprintf(`SELECT M1.id, M1.val, M2.tag
			FROM M1 JOIN M2 ON M1.id = M2.id WHERE %s`, where)
	}
}

// canonical renders a result as a sorted row multiset.
func canonical(m *Materialized) string {
	var rows []string
	for _, b := range m.Batches {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.FormatRow(i))
		}
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}
