package exec

import (
	"sort"

	"repro/internal/plan"
	"repro/internal/vector"
)

// sortOp materializes its input and emits it ordered by the sort keys,
// chunked to the environment's batch size like every other operator. It
// is the engine's one in-place mutator: the materialized input is
// permuted via Batch.Permute, which reorders exclusively owned storage
// without allocating and transparently materializes a private copy when
// the input batches are copy-on-write shares (cache entries, replayed
// results, flight fan-out).
type sortOp struct {
	child Operator
	keys  []plan.SortKey
	env   *Env
	out   *vector.Batch
	done  bool
	pos   int
}

// Schema implements Operator.
func (s *sortOp) Schema() []plan.ColInfo { return s.child.Schema() }

// Next implements Operator.
func (s *sortOp) Next() (*vector.Batch, error) {
	if !s.done {
		mat := &Materialized{Schema: s.child.Schema()}
		for {
			b, err := s.child.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if b.Len() > 0 {
				mat.Batches = append(mat.Batches, b)
			}
		}
		all := mat.Flatten()
		idx := make([]int, all.Len())
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for _, k := range s.keys {
				c := vector.Compare(all.Cols[k.Index].Get(idx[a]), all.Cols[k.Index].Get(idx[b]))
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		all.Permute(idx)
		s.out = all
		s.done = true
	}
	return emitChunk(s.out, &s.pos, s.env.batchSize()), nil
}

// Close implements Operator.
func (s *sortOp) Close() error { return s.child.Close() }
