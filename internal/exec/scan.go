package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// tableScan reads a stored table in batch-sized chunks through the
// buffer pool.
type tableScan struct {
	schema []plan.ColInfo
	table  *storage.Table
	cols   []int
	pos    int64
	rows   int64
	size   int64
}

func newTableScan(n *plan.Scan, env *Env) (Operator, error) {
	tbl, ok := env.Store.Table(n.TableName)
	if !ok {
		return nil, fmt.Errorf("exec: scan of missing table %s", n.TableName)
	}
	cols := make([]int, len(n.Def.Columns))
	for i, c := range n.Def.Columns {
		idx := tbl.ColumnIndex(c.Name)
		if idx < 0 {
			return nil, fmt.Errorf("exec: table %s lacks column %s", n.TableName, c.Name)
		}
		cols[i] = idx
	}
	return &tableScan{
		schema: n.Schema(),
		table:  tbl,
		cols:   cols,
		rows:   tbl.Rows(),
		size:   int64(env.batchSize()),
	}, nil
}

// Schema implements Operator.
func (s *tableScan) Schema() []plan.ColInfo { return s.schema }

// Next implements Operator.
func (s *tableScan) Next() (*vector.Batch, error) {
	if s.pos >= s.rows {
		return nil, nil
	}
	hi := s.pos + s.size
	if hi > s.rows {
		hi = s.rows
	}
	b, err := s.table.ReadBatch(s.cols, s.pos, hi)
	if err != nil {
		return nil, err
	}
	s.pos = hi
	return b, nil
}

// Close implements Operator.
func (s *tableScan) Close() error { return nil }

// filterOp applies a boolean predicate, emitting only qualifying rows.
type filterOp struct {
	child Operator
	pred  interface {
		Eval(*vector.Batch) (*vector.Vector, error)
	}
}

// Schema implements Operator.
func (f *filterOp) Schema() []plan.ColInfo { return f.child.Schema() }

// Next implements Operator.
func (f *filterOp) Next() (*vector.Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		pred, err := f.pred.Eval(b)
		if err != nil {
			return nil, err
		}
		if pred.Kind() != vector.KindBool {
			return nil, fmt.Errorf("exec: filter predicate evaluated to %s", pred.Kind())
		}
		sel := vector.SelFromBools(pred)
		if len(sel) == 0 {
			continue
		}
		if len(sel) == b.Len() {
			return b, nil
		}
		return b.Gather(sel), nil
	}
}

// Close implements Operator.
func (f *filterOp) Close() error { return f.child.Close() }

// projectOp computes output expressions.
type projectOp struct {
	child Operator
	node  *plan.Project
}

// Schema implements Operator.
func (p *projectOp) Schema() []plan.ColInfo { return p.node.Schema() }

// Next implements Operator.
func (p *projectOp) Next() (*vector.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([]*vector.Vector, len(p.node.Exprs))
	for i, e := range p.node.Exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		cols[i] = v
	}
	return vector.NewBatch(cols...), nil
}

// Close implements Operator.
func (p *projectOp) Close() error { return p.child.Close() }

// limitOp caps output rows.
type limitOp struct {
	child Operator
	n     int64
	seen  int64
}

// Schema implements Operator.
func (l *limitOp) Schema() []plan.ColInfo { return l.child.Schema() }

// Next implements Operator.
func (l *limitOp) Next() (*vector.Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	remain := l.n - l.seen
	if int64(b.Len()) > remain {
		b = b.Slice(0, int(remain))
	}
	l.seen += int64(b.Len())
	return b, nil
}

// Close implements Operator.
func (l *limitOp) Close() error { return l.child.Close() }

// unionOp concatenates its inputs in order.
type unionOp struct {
	schema []plan.ColInfo
	inputs []Operator
	cur    int
}

// Schema implements Operator.
func (u *unionOp) Schema() []plan.ColInfo { return u.schema }

// Next implements Operator.
func (u *unionOp) Next() (*vector.Batch, error) {
	for u.cur < len(u.inputs) {
		b, err := u.inputs[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.cur++
	}
	return nil, nil
}

// Close implements Operator.
func (u *unionOp) Close() error {
	var first error
	for _, in := range u.inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// resultScanOp replays a materialized result. The same result is
// replayed by every per-file subplan and every incremental-ingestion
// round, so emitted batches are copy-on-write shares: replaying a Qf
// result across K files costs K handle bumps, not K deep copies, and a
// downstream mutation materializes a private copy without corrupting
// the shared materialization (which the engine additionally freezes).
type resultScanOp struct {
	schema []plan.ColInfo
	mat    *Materialized
	pos    int
}

// Schema implements Operator.
func (r *resultScanOp) Schema() []plan.ColInfo { return r.schema }

// Next implements Operator.
func (r *resultScanOp) Next() (*vector.Batch, error) {
	if r.pos >= len(r.mat.Batches) {
		return nil, nil
	}
	b := r.mat.Batches[r.pos].Share()
	r.pos++
	return b, nil
}

// Close implements Operator.
func (r *resultScanOp) Close() error { return nil }
