package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/vector"
)

// AggState is the partial state of one aggregate over one group. States
// support merging, which the operate-then-merge execution strategy (the
// paper's strategy (b)) uses to combine per-file partial aggregates.
type AggState interface {
	Add(v vector.Value)
	AddCount() // for COUNT(*)
	Merge(other AggState)
	Result() vector.Value
}

// NewAggState constructs the state for a spec.
func NewAggState(spec plan.AggSpec) AggState {
	var s AggState
	switch spec.Func {
	case plan.AggCount:
		s = &countState{}
	case plan.AggSum:
		s = &sumState{kind: argKind(spec)}
	case plan.AggAvg:
		s = &avgState{}
	case plan.AggMin:
		s = &minMaxState{min: true}
	case plan.AggMax:
		s = &minMaxState{}
	default:
		panic("exec: unknown aggregate " + spec.Func.String())
	}
	if spec.Distinct {
		s = &distinctState{inner: s, seen: make(map[vector.Value]bool)}
	}
	return s
}

func argKind(spec plan.AggSpec) vector.Kind {
	if spec.Arg == nil {
		return vector.KindInt64
	}
	return spec.Arg.Kind()
}

type countState struct{ n int64 }

func (s *countState) Add(vector.Value) { s.n++ }
func (s *countState) AddCount()        { s.n++ }
func (s *countState) Merge(o AggState) { s.n += o.(*countState).n }
func (s *countState) Result() vector.Value {
	return vector.Int64(s.n)
}

type sumState struct {
	kind vector.Kind
	i    int64
	f    float64
	any  bool
}

func (s *sumState) Add(v vector.Value) {
	s.any = true
	if s.kind == vector.KindFloat64 {
		s.f += v.AsFloat()
	} else {
		s.i += v.AsInt()
	}
}
func (s *sumState) AddCount() {}
func (s *sumState) Merge(o AggState) {
	ot := o.(*sumState)
	s.i += ot.i
	s.f += ot.f
	s.any = s.any || ot.any
}
func (s *sumState) Result() vector.Value {
	if s.kind == vector.KindFloat64 {
		return vector.Float64(s.f)
	}
	return vector.Int64(s.i)
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) Add(v vector.Value) { s.sum += v.AsFloat(); s.n++ }
func (s *avgState) AddCount()          {}
func (s *avgState) Merge(o AggState) {
	ot := o.(*avgState)
	s.sum += ot.sum
	s.n += ot.n
}
func (s *avgState) Result() vector.Value {
	if s.n == 0 {
		// The engine has no NULL; an empty average is reported as 0 (see
		// README limitations).
		return vector.Float64(0)
	}
	return vector.Float64(s.sum / float64(s.n))
}

type minMaxState struct {
	min bool
	val vector.Value
	set bool
}

func (s *minMaxState) Add(v vector.Value) {
	if !s.set {
		s.val, s.set = v, true
		return
	}
	c := vector.Compare(v, s.val)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.val = v
	}
}
func (s *minMaxState) AddCount() {}
func (s *minMaxState) Merge(o AggState) {
	ot := o.(*minMaxState)
	if ot.set {
		s.Add(ot.val)
	}
}
func (s *minMaxState) Result() vector.Value {
	if !s.set {
		return vector.Int64(0)
	}
	return s.val
}

type distinctState struct {
	inner AggState
	seen  map[vector.Value]bool
}

func (s *distinctState) Add(v vector.Value) {
	if s.seen[v] {
		return
	}
	s.seen[v] = true
	s.inner.Add(v)
}
func (s *distinctState) AddCount() { s.inner.AddCount() }
func (s *distinctState) Merge(o AggState) {
	ot := o.(*distinctState)
	for v := range ot.seen {
		if !s.seen[v] {
			s.seen[v] = true
			s.inner.Add(v)
		}
	}
}
func (s *distinctState) Result() vector.Value { return s.inner.Result() }

// aggregateOp is a blocking hash aggregation.
type aggregateOp struct {
	node     *plan.Aggregate
	child    Operator
	groupIdx []int
	schema   []plan.ColInfo
	done     bool
}

func newAggregate(n *plan.Aggregate, child Operator) (Operator, error) {
	cs := child.Schema()
	groupIdx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		idx := plan.FindColumn(cs, g)
		if idx < 0 {
			return nil, fmt.Errorf("exec: group-by column %s missing", g)
		}
		groupIdx[i] = idx
	}
	return &aggregateOp{node: n, child: child, groupIdx: groupIdx, schema: n.Schema()}, nil
}

// Schema implements Operator.
func (a *aggregateOp) Schema() []plan.ColInfo { return a.schema }

type aggGroup struct {
	keys   []vector.Value
	states []AggState
}

// Next implements Operator: it drains the child and emits one batch of
// groups.
func (a *aggregateOp) Next() (*vector.Batch, error) {
	if a.done {
		return nil, nil
	}
	a.done = true

	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup
	global := len(a.groupIdx) == 0
	if global {
		g := a.newGroup(nil)
		groups[0] = []*aggGroup{g}
		order = append(order, g)
	}

	for {
		b, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		// Pre-evaluate aggregate arguments over the batch.
		argVecs := make([]*vector.Vector, len(a.node.Aggs))
		for i, spec := range a.node.Aggs {
			if spec.Arg != nil {
				v, err := spec.Arg.Eval(b)
				if err != nil {
					return nil, err
				}
				argVecs[i] = v
			}
		}
		var hashes []uint64
		if !global {
			hashes = make([]uint64, n)
			for _, gi := range a.groupIdx {
				vector.HashVector(b.Cols[gi], hashes)
			}
		}
		for row := 0; row < n; row++ {
			var g *aggGroup
			if global {
				g = order[0]
			} else {
				h := hashes[row]
				for _, cand := range groups[h] {
					if a.groupKeysEqual(cand, b, row) {
						g = cand
						break
					}
				}
				if g == nil {
					keys := make([]vector.Value, len(a.groupIdx))
					for i, gi := range a.groupIdx {
						keys[i] = b.Cols[gi].Get(row)
					}
					g = a.newGroup(keys)
					groups[h] = append(groups[h], g)
					order = append(order, g)
				}
			}
			for i, spec := range a.node.Aggs {
				if spec.Arg == nil {
					g.states[i].AddCount()
				} else {
					g.states[i].Add(argVecs[i].Get(row))
				}
			}
		}
	}

	// Emit groups in first-seen order.
	cols := make([]*vector.Vector, len(a.schema))
	for i, ci := range a.schema {
		cols[i] = vector.New(ci.Kind, len(order))
	}
	for _, g := range order {
		for i := range a.groupIdx {
			cols[i].AppendValue(g.keys[i])
		}
		for i, st := range g.states {
			cols[len(a.groupIdx)+i].AppendValue(coerceValue(st.Result(), a.schema[len(a.groupIdx)+i].Kind))
		}
	}
	return vector.NewBatch(cols...), nil
}

func (a *aggregateOp) newGroup(keys []vector.Value) *aggGroup {
	states := make([]AggState, len(a.node.Aggs))
	for i, spec := range a.node.Aggs {
		states[i] = NewAggState(spec)
	}
	return &aggGroup{keys: keys, states: states}
}

func (a *aggregateOp) groupKeysEqual(g *aggGroup, b *vector.Batch, row int) bool {
	for i, gi := range a.groupIdx {
		if !vector.Equal(g.keys[i], b.Cols[gi].Get(row)) {
			return false
		}
	}
	return true
}

// coerceValue aligns a state result with the declared output kind (e.g.
// MIN over an empty TIMESTAMP column yields Int64(0), stored as TIME).
func coerceValue(v vector.Value, want vector.Kind) vector.Value {
	if v.Kind == want {
		return v
	}
	switch want {
	case vector.KindFloat64:
		if v.IsNumeric() || v.Kind == vector.KindTime {
			return vector.Float64(v.AsFloat())
		}
	case vector.KindInt64:
		if v.IsNumeric() || v.Kind == vector.KindTime {
			return vector.Int64(v.AsInt())
		}
	case vector.KindTime:
		if v.Kind == vector.KindInt64 {
			return vector.Time(v.I)
		}
	}
	return v
}

// Close implements Operator.
func (a *aggregateOp) Close() error { return a.child.Close() }
