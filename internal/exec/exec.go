// Package exec implements the vectorized physical operators that execute
// logical plans: table scans, filters, projections, hash joins,
// index-nested-loop joins (the Ei baseline's join path), aggregation,
// sorting, unions — and the paper's three new access paths: result-scan,
// cache-scan and mount.
package exec

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/mountsvc"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Operator is a pull-based, vectorized physical operator. Next returns
// nil at end of stream. Operators are single-use.
//
// Ownership contract: a batch returned by Next carries exactly one
// handle, and the caller becomes its owner — it may mutate the batch
// through the vector mutation API (Set, Append*, Permute, Mutable*),
// which materializes a private copy whenever the underlying storage is
// still shared with a cache entry, a flight replay buffer or a replayed
// result. An operator that keeps rows beyond the next call (retention
// buffers, materializations) takes its own Share instead of retaining
// the handle it emitted. No operator in this package mutates its input
// in place except sort, whose Permute goes through the copy-on-write
// entry points.
type Operator interface {
	Schema() []plan.ColInfo
	Next() (*vector.Batch, error)
	Close() error
}

// Materialized is a fully evaluated result: the unit that result-scan
// reads and that the engine returns to clients.
type Materialized struct {
	Schema  []plan.ColInfo
	Batches []*vector.Batch
}

// Rows counts the rows across all batches.
func (m *Materialized) Rows() int {
	n := 0
	for _, b := range m.Batches {
		n += b.Len()
	}
	return n
}

// Freeze permanently marks every batch's storage as shared, so any
// later mutation through any handle copies first: the engine freezes
// results it is about to replay across subplans or hand to clients.
func (m *Materialized) Freeze() {
	for _, b := range m.Batches {
		b.Freeze()
	}
}

// Flatten concatenates all batches into one. With a single batch it
// returns that batch's handle itself (callers that need a second owner
// take a Share).
func (m *Materialized) Flatten() *vector.Batch {
	if len(m.Batches) == 1 {
		return m.Batches[0]
	}
	cols := make([]*vector.Vector, len(m.Schema))
	for i, ci := range m.Schema {
		cols[i] = vector.New(ci.Kind, m.Rows())
	}
	for _, b := range m.Batches {
		for i, c := range b.Cols {
			cols[i].AppendVector(c)
		}
	}
	return vector.NewBatch(cols...)
}

// Column returns the position of a (qualified) column name, or -1.
func (m *Materialized) Column(name string) int {
	return plan.FindColumn(m.Schema, name)
}

// IndexInfo registers a disk-resident index over a stored table, used by
// the Ei baseline's index-nested-loop joins. KeyColumns are bare column
// names of the indexed table, in index key order (at most two).
type IndexInfo struct {
	Index      *index.Index
	TableName  string
	KeyColumns []string
}

// MountStats counts ALi activity during one execution. Mount work is
// attributed to the query that led the extraction: a query served by
// another query's in-progress flight records a SingleFlightHit, not a
// FilesMounted.
type MountStats struct {
	FilesMounted   int
	BytesRead      int64
	RecordsPruned  int
	RecordsMounted int
	CacheHits      int
	// SingleFlightHits counts mounts coalesced onto another query's
	// in-progress extraction by the mount service.
	SingleFlightHits int
	// CacheFallbacks counts cache-scans whose entry was evicted between
	// planning and execution, forcing a fresh mount — without this the
	// re-mount would silently inflate apparent cache efficacy.
	CacheFallbacks int
	// ResultCacheHits counts whole-query results served from the engine's
	// result cache (a fingerprint hit, or riding another client's
	// in-flight execution); ResultCacheBytes totals the bytes of those
	// served results. Serves are O(1) copy-on-write shares — the bytes are
	// shared with the cache entry, not copied.
	ResultCacheHits  int
	ResultCacheBytes int64
	// SubsumptionHits counts results served semantically: a wider cached
	// entry re-filtered in memory to answer a narrower query (a subset of
	// ResultCacheHits). SubsumptionBytesSaved totals the resident bytes of
	// the wider entries served that way — the re-execution (and its file
	// mounts) the semantic probe avoided.
	SubsumptionHits       int
	SubsumptionBytesSaved int64
	// Statistics-free planner counters. PrunedFiles/PrunedRecords count
	// mounts the Qf-fed oracle proved pointless and dropped before the
	// mount service saw them (BytesNotMounted totals their on-disk
	// bytes); JoinOrderFlips counts join chains greedily reordered or
	// emptied; JoinBuildFlips counts hash joins that built on the left
	// because the oracle proved it smaller; AdmissionBytesSaved totals
	// budget bytes the honest (summary-derived) mount estimates left
	// free for other flights.
	PrunedFiles         int
	PrunedRecords       int
	BytesNotMounted     int64
	JoinOrderFlips      int
	JoinBuildFlips      int
	AdmissionBytesSaved int64
}

// CardinalityOracle answers exact row counts for plan subtrees; in
// two-stage execution the frozen Qf result provides them for free
// (internal/stats.Oracle implements this).
type CardinalityOracle interface {
	NodeRows(plan.Node) (int64, bool)
}

// Env is everything operators need to run: storage, adapters, the
// repository location, the ingestion cache, materialized results for
// result-scans, registered indexes, and the I/O cost model for charging
// mounts.
type Env struct {
	Store    *storage.Store
	Adapters *catalog.AdapterRegistry
	RepoDir  string
	Cache    *cache.Manager
	Results  map[string]*Materialized
	Indexes  []IndexInfo
	// Ctx, when set, is the query's cancellation context: mounts blocked
	// on the admission budget unblock when it is done.
	Ctx context.Context
	// Session is the query's session identity, attributed to every mount
	// request for per-session admission quotas and statistics.
	Session string
	// BatchSize caps rows per batch (defaults to vector.DefaultBatchSize).
	BatchSize int
	// Parallelism is the mount-scheduler worker count: how many union
	// inputs (mounts, cache-scans) extract and transform concurrently.
	// Values <= 1 keep execution single-threaded.
	Parallelism int
	// Mounts accumulates ALi statistics (optional). Concurrent operators
	// and mount-service flights update it under statsMu via
	// addMountStats; read it through MountsSnapshot.
	Mounts *MountStats
	// OnMount, when set, observes every mounted pre-filter batch
	// (record-aligned, possibly several per file) — the hook used to
	// derive metadata "as a side-effect of ALi, without the explorer
	// noticing". It must be safe for concurrent use. When MountSvc is
	// set the engine wires the hook into the service instead and this
	// field is ignored.
	OnMount func(uri string, full *vector.Batch)
	// MountSvc is the engine-owned mount service every query of the
	// engine shares: single-flight extraction, streaming fan-out and the
	// cross-query admission budget. When nil (operator-level tests and
	// standalone envs) a private service is built on first use from the
	// env's own fields.
	MountSvc *mountsvc.Service
	// MountBudgetBytes configures the lazily built private service's
	// admission budget; ignored when MountSvc is set.
	MountBudgetBytes int64
	// Card, when set, is the statistics-free cardinality oracle built
	// from the frozen Qf result: hash joins consult it to build on the
	// provably smaller side. It must be read-only during execution.
	Card CardinalityOracle

	statsMu sync.Mutex
	svcOnce sync.Once
	lazySvc *mountsvc.Service
}

// service returns the mount service operators stream files through.
func (e *Env) service() *mountsvc.Service {
	if e.MountSvc != nil {
		return e.MountSvc
	}
	e.svcOnce.Do(func() {
		var pool *storage.BufferPool
		if e.Store != nil {
			pool = e.Store.Pool()
		}
		e.lazySvc = mountsvc.New(mountsvc.Config{
			RepoDir:     e.RepoDir,
			Pool:        pool,
			Cache:       e.Cache,
			OnMount:     e.OnMount,
			BudgetBytes: e.MountBudgetBytes,
		})
	})
	return e.lazySvc
}

// MountsSnapshot returns a copy of the accumulated mount statistics,
// taken under the stats lock: mount-service flights may attribute stats
// from their own goroutines.
func (e *Env) MountsSnapshot() MountStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if e.Mounts == nil {
		return MountStats{}
	}
	return *e.Mounts
}

func (e *Env) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return vector.DefaultBatchSize
}

// addMountStats applies a stats update under the environment's stats
// lock; mount and cache-scan operators may run on scheduler workers.
func (e *Env) addMountStats(fn func(*MountStats)) {
	if e.Mounts == nil {
		return
	}
	e.statsMu.Lock()
	fn(e.Mounts)
	e.statsMu.Unlock()
}

// lookupIndex finds a registered index on tableName whose key columns
// match keyCols exactly.
func (e *Env) lookupIndex(tableName string, keyCols []string) *IndexInfo {
	for i := range e.Indexes {
		ix := &e.Indexes[i]
		if ix.TableName != tableName || len(ix.KeyColumns) != len(keyCols) {
			continue
		}
		match := true
		for j := range keyCols {
			if ix.KeyColumns[j] != keyCols[j] {
				match = false
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// Build translates a resolved logical plan into an operator tree.
func Build(n plan.Node, env *Env) (Operator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return newTableScan(t, env)
	case *plan.Select:
		child, err := Build(t.Child, env)
		if err != nil {
			return nil, err
		}
		return &filterOp{child: child, pred: t.Pred}, nil
	case *plan.Project:
		child, err := Build(t.Child, env)
		if err != nil {
			return nil, err
		}
		return &projectOp{child: child, node: t}, nil
	case *plan.Join:
		return newJoin(t, env)
	case *plan.Aggregate:
		child, err := Build(t.Child, env)
		if err != nil {
			return nil, err
		}
		return newAggregate(t, child)
	case *plan.Sort:
		child, err := Build(t.Child, env)
		if err != nil {
			return nil, err
		}
		return &sortOp{child: child, keys: t.Keys, env: env}, nil
	case *plan.Limit:
		child, err := Build(t.Child, env)
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, n: t.N}, nil
	case *plan.UnionAll:
		inputs := make([]Operator, len(t.Inputs))
		for i, in := range t.Inputs {
			op, err := Build(in, env)
			if err != nil {
				return nil, err
			}
			inputs[i] = op
		}
		if env.Parallelism > 1 && len(inputs) > 1 {
			return newParallelUnion(t.Schema(), inputs, env.Parallelism), nil
		}
		return &unionOp{schema: t.Schema(), inputs: inputs}, nil
	case *plan.ResultScan:
		mat, ok := env.Results[t.Name]
		if !ok {
			return nil, fmt.Errorf("exec: result-scan %s: no materialized result", t.Name)
		}
		return &resultScanOp{schema: t.Cols, mat: mat}, nil
	case *plan.Mount:
		return newMount(t, env)
	case *plan.CacheScan:
		return newCacheScan(t, env)
	default:
		return nil, fmt.Errorf("exec: no operator for %T", n)
	}
}

// ServeCachedResult replays a frozen, cached materialized result through
// the result-scan access path: the served batches are O(1) copy-on-write
// shares of the entry's storage, and the serve is attributed to the
// query's ResultCacheHits/ResultCacheBytes statistics. The caller owns
// the returned materialization; mutating it through the vector API
// materializes private copies without touching the cache entry.
func ServeCachedResult(mat *Materialized, env *Env) (*Materialized, error) {
	const name = "__resultcache"
	node := &plan.ResultScan{Name: name, Cols: mat.Schema}
	if env.Results == nil {
		env.Results = make(map[string]*Materialized)
	}
	env.Results[name] = mat
	out, err := Run(node, env)
	delete(env.Results, name)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, b := range out.Batches {
		bytes += b.Bytes()
	}
	env.addMountStats(func(ms *MountStats) {
		ms.ResultCacheHits++
		ms.ResultCacheBytes += bytes
	})
	return out, nil
}

// ServeSubsumedResult answers a narrower query from a wider frozen cache
// entry: the entry's batches replay through the result-scan path as O(1)
// copy-on-write shares, re-filtered by the narrow query's re-filter
// predicate (nil re-filter serves the entry as-is). Batches the filter
// passes whole stay shares — only partially-selected batches gather into
// private storage, so a zoom step that trims little copies little. The
// serve counts as a ResultCacheHit and a SubsumptionHit; entryBytes is
// the wider entry's resident size, recorded as the bytes whose
// re-execution the semantic probe avoided.
func ServeSubsumedResult(mat *Materialized, refilter expr.Expr, entryBytes int64, env *Env) (*Materialized, error) {
	var op Operator = &resultScanOp{schema: mat.Schema, mat: mat}
	if refilter != nil {
		op = &filterOp{child: op, pred: refilter}
	}
	defer op.Close()
	out := &Materialized{Schema: op.Schema()}
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if b.Len() > 0 {
			out.Batches = append(out.Batches, b)
		}
	}
	var served int64
	for _, b := range out.Batches {
		served += b.Bytes()
	}
	env.addMountStats(func(ms *MountStats) {
		ms.ResultCacheHits++
		ms.ResultCacheBytes += served
		ms.SubsumptionHits++
		ms.SubsumptionBytesSaved += entryBytes
	})
	return out, nil
}

// Run builds and drains a plan into a materialized result.
func Run(n plan.Node, env *Env) (*Materialized, error) {
	op, err := Build(n, env)
	if err != nil {
		return nil, err
	}
	defer op.Close()
	out := &Materialized{Schema: op.Schema()}
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if b.Len() > 0 {
			out.Batches = append(out.Batches, b)
		}
	}
}
