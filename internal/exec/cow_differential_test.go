package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/vector"
)

// This file is the differential harness for the copy-on-write ownership
// contract: randomized operator pipelines over one shared source run
// once under the old deep-clone discipline (vector.SetForceCloneShares)
// and once under O(1) sharing, and must produce byte-identical results
// while the shared source stays pristine — with concurrent readers
// scanning the shared storage during the share-mode runs, so `go test
// -race` also proves the sharing is data-race free.

func diffSource(rng *rand.Rand, batches, rows int) *Materialized {
	schema := []plan.ColInfo{
		{Table: "src", Name: "id", Kind: vector.KindInt64},
		{Table: "src", Name: "t", Kind: vector.KindTime},
		{Table: "src", Name: "v", Kind: vector.KindFloat64},
		{Table: "src", Name: "tag", Kind: vector.KindString},
	}
	mat := &Materialized{Schema: schema}
	next := int64(0)
	for b := 0; b < batches; b++ {
		ids := make([]int64, rows)
		ts := make([]int64, rows)
		vs := make([]float64, rows)
		tags := make([]string, rows)
		for i := 0; i < rows; i++ {
			ids[i] = next
			next++
			ts[i] = 1_000_000_000 + rng.Int63n(1_000_000)
			vs[i] = rng.NormFloat64() * 100
			tags[i] = fmt.Sprintf("tag-%d", rng.Intn(8))
		}
		mat.Batches = append(mat.Batches, vector.NewBatch(
			vector.FromInt64(ids), vector.FromTime(ts),
			vector.FromFloat64(vs), vector.FromString(tags),
		))
	}
	return mat
}

// randomPipeline builds a random filter/sort/limit chain over the source.
func randomPipeline(rng *rand.Rand, schema []plan.ColInfo) plan.Node {
	var node plan.Node = &plan.ResultScan{Name: "src", Cols: schema}
	steps := 1 + rng.Intn(4)
	for s := 0; s < steps; s++ {
		switch rng.Intn(3) {
		case 0:
			ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge}
			node = &plan.Select{
				Pred: &expr.Compare{
					Op: ops[rng.Intn(len(ops))],
					L:  &expr.Col{Index: 2, Name: "src.v", K: vector.KindFloat64},
					R:  &expr.Const{Val: vector.Float64(rng.NormFloat64() * 50)},
				},
				Child: node,
			}
		case 1:
			node = &plan.Sort{
				Keys: []plan.SortKey{
					{Index: rng.Intn(4), Desc: rng.Intn(2) == 0},
					{Index: 0},
				},
				Child: node,
			}
		case 2:
			node = &plan.Limit{N: int64(1 + rng.Intn(600)), Child: node}
		}
	}
	return node
}

func materializedRows(m *Materialized) []string {
	var out []string
	for _, b := range m.Batches {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.FormatRow(i))
		}
	}
	return out
}

func TestDifferentialCloneVsShare(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Single-batch sources exercise the Flatten/Permute share path;
	// multi-batch ones exercise accumulation.
	for _, shape := range []struct{ batches, rows int }{{1, 512}, {3, 200}} {
		source := diffSource(rng, shape.batches, shape.rows)
		source.Freeze()
		pristine := materializedRows(source)

		for trial := 0; trial < 12; trial++ {
			node := randomPipeline(rng, source.Schema)
			runOnce := func(clone bool) []string {
				prev := vector.SetForceCloneShares(clone)
				defer vector.SetForceCloneShares(prev)
				env := &Env{Results: map[string]*Materialized{"src": source}}
				out, err := Run(node, env)
				if err != nil {
					t.Fatalf("trial %d (clone=%v): %v", trial, clone, err)
				}
				return materializedRows(out)
			}

			want := runOnce(true)

			// Share mode runs with concurrent readers over the shared
			// source; -race verifies the fan-out is data-race free.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if got := materializedRows(source); len(got) != len(pristine) {
							t.Error("concurrent reader saw wrong source length")
							return
						}
					}
				}()
			}
			got := runOnce(false)
			close(stop)
			wg.Wait()

			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d: share mode diverged from clone mode\nshare: %d rows\nclone: %d rows",
					trial, len(got), len(want))
			}
			if now := materializedRows(source); fmt.Sprint(now) != fmt.Sprint(pristine) {
				t.Fatalf("trial %d: shared source mutated by pipeline", trial)
			}
		}
	}
}

// TestDifferentialHostileClient mutates every batch a share-mode
// pipeline emits — through the sanctioned mutation API — and checks the
// shared source still replays pristine.
func TestDifferentialHostileClient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	source := diffSource(rng, 2, 128)
	pristine := materializedRows(source)
	env := &Env{Results: map[string]*Materialized{"src": source}}

	out, err := Run(&plan.ResultScan{Name: "src", Cols: source.Schema}, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range out.Batches {
		ids := b.Cols[0].MutableInt64s()
		for i := range ids {
			ids[i] = -1
		}
		b.Cols[3].Set(0, vector.Str("overwritten"))
		b.Permute(identityReversed(b.Len()))
	}
	if got := materializedRows(source); fmt.Sprint(got) != fmt.Sprint(pristine) {
		t.Fatal("hostile client mutated the shared source through its shares")
	}
}

func identityReversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}
