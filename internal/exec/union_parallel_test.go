package exec

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/vector"
)

// fakeInput is a synthetic operator emitting pre-built batches with an
// optional per-Next delay and injected failure.
type fakeInput struct {
	schema  []plan.ColInfo
	batches []*vector.Batch
	delay   time.Duration
	failAt  int // Next call index to fail on; -1 = never
	calls   int
	closed  bool
}

func (f *fakeInput) Schema() []plan.ColInfo { return f.schema }

func (f *fakeInput) Next() (*vector.Batch, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.failAt >= 0 && f.calls == f.failAt {
		return nil, errors.New("fake input failure")
	}
	if f.calls >= len(f.batches) {
		return nil, nil
	}
	b := f.batches[f.calls]
	f.calls++
	return b, nil
}

func (f *fakeInput) Close() error {
	f.closed = true
	return nil
}

func intBatch(vals ...int64) *vector.Batch {
	return vector.NewBatch(vector.FromInt64(vals))
}

func intSchema() []plan.ColInfo {
	return []plan.ColInfo{{Name: "v", Kind: vector.KindInt64}}
}

// makeInputs builds n inputs, input i emitting two batches holding
// 10*i and 10*i+1, with staggered delays so completion order differs
// from input order.
func makeInputs(n int) []*fakeInput {
	out := make([]*fakeInput, n)
	for i := 0; i < n; i++ {
		out[i] = &fakeInput{
			schema:  intSchema(),
			batches: []*vector.Batch{intBatch(int64(10 * i)), intBatch(int64(10*i + 1))},
			delay:   time.Duration((n-i)%4) * time.Millisecond,
			failAt:  -1,
		}
	}
	return out
}

func drainAll(t *testing.T, op Operator) []int64 {
	t.Helper()
	var got []int64
	for {
		b, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		got = append(got, b.Cols[0].Int64s()...)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParallelUnionPreservesOrder(t *testing.T) {
	for _, workers := range []int{2, 4, 16} {
		fakes := makeInputs(9)
		ops := make([]Operator, len(fakes))
		for i, f := range fakes {
			ops[i] = f
		}
		got := drainAll(t, newParallelUnion(intSchema(), ops, workers))

		var want []int64
		for i := 0; i < 9; i++ {
			want = append(want, int64(10*i), int64(10*i+1))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, got, want)
		}
		for i, f := range fakes {
			if !f.closed {
				t.Errorf("workers=%d: input %d not closed", workers, i)
			}
		}
	}
}

func TestParallelUnionMatchesSequentialUnion(t *testing.T) {
	fakes := makeInputs(7)
	seqOps := make([]Operator, len(fakes))
	for i := range fakes {
		seqOps[i] = &fakeInput{schema: fakes[i].schema, batches: fakes[i].batches, failAt: -1}
	}
	seq := drainAll(t, &unionOp{schema: intSchema(), inputs: seqOps})

	parOps := make([]Operator, len(fakes))
	for i, f := range fakes {
		parOps[i] = f
	}
	par := drainAll(t, newParallelUnion(intSchema(), parOps, 4))
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Fatalf("parallel %v != sequential %v", par, seq)
	}
}

func TestParallelUnionPropagatesError(t *testing.T) {
	fakes := makeInputs(6)
	fakes[3].failAt = 1
	ops := make([]Operator, len(fakes))
	for i, f := range fakes {
		ops[i] = f
	}
	u := newParallelUnion(intSchema(), ops, 3)
	var err error
	var got []int64
	for {
		var b *vector.Batch
		b, err = u.Next()
		if err != nil || b == nil {
			break
		}
		got = append(got, b.Cols[0].Int64s()...)
	}
	if err == nil {
		t.Fatal("want error from failing input, got clean end of stream")
	}
	// Everything before the failing input arrived intact and in order.
	want := []int64{0, 1, 10, 11, 20, 21}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pre-error output %v, want %v", got, want)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelUnionEarlyClose(t *testing.T) {
	fakes := makeInputs(12)
	ops := make([]Operator, len(fakes))
	for i, f := range fakes {
		ops[i] = f
	}
	u := newParallelUnion(intSchema(), ops, 2)
	if _, err := u.Next(); err != nil { // start the scheduler, take one batch
		t.Fatal(err)
	}
	if err := u.Close(); err != nil { // abandon mid-stream (e.g. LIMIT)
		t.Fatal(err)
	}
	for i, f := range fakes {
		if !f.closed {
			t.Errorf("input %d left open after early Close", i)
		}
	}
}

func TestParallelUnionCloseBeforeNext(t *testing.T) {
	fakes := makeInputs(3)
	ops := make([]Operator, len(fakes))
	for i, f := range fakes {
		ops[i] = f
	}
	u := newParallelUnion(intSchema(), ops, 2)
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range fakes {
		if !f.closed {
			t.Errorf("input %d left open", i)
		}
	}
}
