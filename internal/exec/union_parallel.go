package exec

import (
	"sync"

	"repro/internal/plan"
	"repro/internal/vector"
)

// parallelUnion is the mount scheduler: an exchange-style union that
// drains its inputs on a bounded worker pool while emitting batches in
// input order. After rewrite rule (1) a cold ALi query is a UnionAll of
// one Mount per file of interest, so this operator is what overlaps
// file I/O, decompression and transformation across files. Results are
// deterministic: batch order is exactly the sequential union's.
//
// Mount inputs are cursors over the engine's shared mount service, and
// the service's admission budget backpressures this pool naturally: a
// worker whose flight is waiting for budget blocks in the input's Next,
// occupying its slot instead of buffering bytes.
type parallelUnion struct {
	schema  []plan.ColInfo
	inputs  []Operator
	workers int

	started bool
	stop    chan struct{}
	slots   []chan inputResult
	sem     chan struct{} // bounds drained-but-unemitted inputs to O(workers)
	wg      sync.WaitGroup

	cur     int             // next input to emit from
	pending []*vector.Batch // batches of the current input
	pos     int
	err     error
}

// inputResult is one fully drained union input.
type inputResult struct {
	batches []*vector.Batch
	err     error
}

func newParallelUnion(schema []plan.ColInfo, inputs []Operator, workers int) *parallelUnion {
	if workers > len(inputs) {
		workers = len(inputs)
	}
	return &parallelUnion{schema: schema, inputs: inputs, workers: workers}
}

// Schema implements Operator.
func (u *parallelUnion) Schema() []plan.ColInfo { return u.schema }

// start launches the worker pool. Each worker claims input indices from
// the jobs channel, drains (and closes) that input, and parks the
// result in the input's slot for the in-order consumer.
func (u *parallelUnion) start() {
	u.started = true
	u.stop = make(chan struct{})
	u.slots = make([]chan inputResult, len(u.inputs))
	for i := range u.slots {
		u.slots[i] = make(chan inputResult, 1)
	}
	u.sem = make(chan struct{}, u.workers)
	jobs := make(chan int)
	for w := 0; w < u.workers; w++ {
		u.wg.Add(1)
		go func() {
			defer u.wg.Done()
			for {
				// Backpressure: don't claim a new input while `workers`
				// results already sit unconsumed — a slow first file must
				// not let the pool buffer the whole repository. The token
				// is taken before the job so dispatch stays ascending and
				// the input Next waits on is always in flight.
				select {
				case u.sem <- struct{}{}:
				case <-u.stop:
					return
				}
				i, ok := <-jobs
				if !ok {
					return
				}
				u.slots[i] <- drainInput(u.inputs[i])
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range u.inputs {
			select {
			case jobs <- i:
			case <-u.stop:
				return
			}
		}
	}()
}

// drainInput pulls an input to completion and closes it.
func drainInput(op Operator) inputResult {
	var res inputResult
	for {
		b, err := op.Next()
		if err != nil {
			res.err = err
			break
		}
		if b == nil {
			break
		}
		if b.Len() > 0 {
			res.batches = append(res.batches, b)
		}
	}
	if err := op.Close(); err != nil && res.err == nil {
		res.err = err
	}
	return res
}

// Next implements Operator: it emits every batch of input 0, then of
// input 1, and so on — indistinguishable from the sequential union.
func (u *parallelUnion) Next() (*vector.Batch, error) {
	if u.err != nil {
		return nil, u.err
	}
	if !u.started {
		u.start()
	}
	for {
		if u.pos < len(u.pending) {
			b := u.pending[u.pos]
			u.pos++
			return b, nil
		}
		if u.cur >= len(u.inputs) {
			return nil, nil
		}
		res := <-u.slots[u.cur]
		u.cur++
		<-u.sem
		if res.err != nil {
			u.err = res.err
			return nil, res.err
		}
		u.pending, u.pos = res.batches, 0
	}
}

// Close implements Operator. Inputs already drained were closed by
// their worker; inputs the scheduler never reached are closed here.
func (u *parallelUnion) Close() error {
	if !u.started {
		var first error
		for _, in := range u.inputs {
			if err := in.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	close(u.stop)
	// Wait for in-flight workers, then release any parked results and
	// close inputs that were never claimed by a worker.
	u.wg.Wait()
	for i := u.cur; i < len(u.inputs); i++ {
		select {
		case <-u.slots[i]:
			// Drained (and closed) by a worker; result discarded.
		default:
			u.inputs[i].Close()
		}
	}
	return nil
}
