package exec

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/repo"
	"repro/internal/seismic"
	"repro/internal/storage"
	"repro/internal/vector"
)

// mountEnv prepares a repository, adapter registry and environment for
// direct mount-operator tests.
func mountEnv(t *testing.T, cacheCfg cache.Config) (*Env, *repo.Manifest, catalog.TableDef) {
	t.Helper()
	spec := repo.DefaultSpec(t.TempDir())
	spec.Stations = spec.Stations[:1]
	spec.Channels = spec.Channels[:1]
	spec.Days = 1
	spec.RecordsPerFile = 4
	spec.SamplesPerRecord = 250
	m, err := repo.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(256, storage.NoCost(), nil)
	store, err := storage.Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	reg := catalog.NewRegistry()
	ad := seismic.NewAdapter()
	if err := reg.Register(ad); err != nil {
		t.Fatal(err)
	}
	_, _, dataDef := ad.Tables()
	env := &Env{
		Store:    store,
		Adapters: reg,
		RepoDir:  m.Dir,
		Cache:    cache.New(cacheCfg),
		Results:  make(map[string]*Materialized),
		Mounts:   &MountStats{},
	}
	return env, m, dataDef
}

func mountNode(m *repo.Manifest, def catalog.TableDef, pred expr.Expr) *plan.Mount {
	return &plan.Mount{
		URI: m.Files[0].URI, Adapter: seismic.AdapterName,
		Binding: "D", Def: def, Pred: pred,
	}
}

func spanPred(def catalog.TableDef, lo, hi int64) expr.Expr {
	schema := (&plan.Mount{Binding: "D", Def: def}).Schema()
	idx := plan.FindColumn(schema, "D.sample_time")
	c := &expr.Col{Index: idx, Name: "D.sample_time", K: vector.KindTime}
	return expr.JoinAnd([]expr.Expr{
		&expr.Compare{Op: expr.Ge, L: c, R: &expr.Const{Val: vector.Time(lo)}},
		&expr.Compare{Op: expr.Le, L: c, R: &expr.Const{Val: vector.Time(hi)}},
	})
}

func TestMountFullFileRows(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	mat, err := Run(mountNode(m, def, nil), env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1000 {
		t.Fatalf("mounted %d rows, want 1000", mat.Rows())
	}
	if env.Mounts.FilesMounted != 1 || env.Mounts.RecordsPruned != 0 {
		t.Errorf("stats = %+v", env.Mounts)
	}
}

func TestMountFusedSelectionPrunes(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	f := m.Files[0]
	// Window inside the first record only: three of four records prunable.
	recDur := (f.EndTime - f.StartTime) / 4
	pred := spanPred(def, f.StartTime, f.StartTime+recDur/2)
	mat, err := Run(mountNode(m, def, pred), env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() == 0 || mat.Rows() >= 1000 {
		t.Fatalf("σ∘mount returned %d rows", mat.Rows())
	}
	if env.Mounts.RecordsPruned == 0 {
		t.Error("no record pruned before decompression")
	}
	// Every surviving row satisfies the predicate.
	flat := mat.Flatten()
	for _, ts := range flat.Cols[2].Int64s() {
		if ts < f.StartTime || ts > f.StartTime+recDur/2 {
			t.Fatal("σ∘mount leaked a row outside the window")
		}
	}
}

func TestMountOnMountHookSeesFullRecords(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	var hookRows int
	env.OnMount = func(uri string, full *vector.Batch) { hookRows = full.Len() }
	f := m.Files[0]
	pred := spanPred(def, f.StartTime, f.StartTime+1) // ~1 row survives
	mat, err := Run(mountNode(m, def, pred), env)
	if err != nil {
		t.Fatal(err)
	}
	// The hook observes the decoded records BEFORE the row filter, so its
	// derived summaries describe whole records.
	if hookRows <= mat.Rows() {
		t.Errorf("hook saw %d rows, result has %d; hook must see pre-filter data", hookRows, mat.Rows())
	}
}

func TestCacheScanServesAndFallsBack(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	env, m, def := mountEnv(t, cfg)

	// Mount once to populate the cache.
	if _, err := Run(mountNode(m, def, nil), env); err != nil {
		t.Fatal(err)
	}
	if env.Cache.Stats().Entries != 1 {
		t.Fatal("mount did not populate the cache")
	}

	cs := &plan.CacheScan{
		URI: m.Files[0].URI, Adapter: seismic.AdapterName, Binding: "D", Def: def,
	}
	mat, err := Run(cs, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1000 || env.Mounts.CacheHits != 1 {
		t.Errorf("cache-scan rows=%d hits=%d", mat.Rows(), env.Mounts.CacheHits)
	}

	// Evict and scan again: must fall back to mounting, same rows.
	env.Cache.Clear()
	before := env.Mounts.FilesMounted
	mat, err = Run(cs, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1000 {
		t.Errorf("fallback rows = %d", mat.Rows())
	}
	if env.Mounts.FilesMounted != before+1 {
		t.Error("eviction fallback did not mount")
	}
}

func TestCacheScanWithoutCacheErrors(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	env.Cache = nil
	cs := &plan.CacheScan{URI: m.Files[0].URI, Adapter: seismic.AdapterName, Binding: "D", Def: def}
	if _, err := Run(cs, env); err == nil {
		t.Error("cache-scan without a cache succeeded")
	}
}

func TestMountUnknownAdapter(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	n := mountNode(m, def, nil)
	n.Adapter = "bogus"
	if _, err := Run(n, env); err == nil {
		t.Error("mount with unknown adapter succeeded")
	}
}

func TestMountMissingFile(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	n := mountNode(m, def, nil)
	n.URI = "not-there.mseed"
	if _, err := Run(n, env); err == nil {
		t.Error("mount of missing file succeeded")
	}
}

func TestFileGranularCachePutsWholeFile(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	env, m, def := mountEnv(t, cfg)
	f := m.Files[0]
	// Even a narrow σ∘mount must cache the WHOLE file under file
	// granularity (pruning is disabled so the cached entry is complete).
	pred := spanPred(def, f.StartTime, f.StartTime+1)
	if _, err := Run(mountNode(m, def, pred), env); err != nil {
		t.Fatal(err)
	}
	cached, ok := env.Cache.Get(f.URI, cache.FullSpan())
	if !ok {
		t.Fatal("file not cached")
	}
	if cached.Len() != 1000 {
		t.Errorf("cached %d rows, want the full 1000", cached.Len())
	}
}

func TestTupleGranularCachePutsFilteredSpan(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular}
	env, m, def := mountEnv(t, cfg)
	f := m.Files[0]
	hi := f.StartTime + (f.EndTime-f.StartTime)/8
	pred := spanPred(def, f.StartTime, hi)
	if _, err := Run(mountNode(m, def, pred), env); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Cache.Get(f.URI, cache.Span{Lo: f.StartTime, Hi: hi}); !ok {
		t.Error("tuple span not served")
	}
	if _, ok := env.Cache.Get(f.URI, cache.FullSpan()); ok {
		t.Error("tuple entry wrongly covers the full file")
	}
}
