package exec

import (
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/repo"
	"repro/internal/seismic"
	"repro/internal/storage"
	"repro/internal/vector"
)

// mountEnv prepares a repository, adapter registry and environment for
// direct mount-operator tests.
func mountEnv(t *testing.T, cacheCfg cache.Config) (*Env, *repo.Manifest, catalog.TableDef) {
	t.Helper()
	spec := repo.DefaultSpec(t.TempDir())
	spec.Stations = spec.Stations[:1]
	spec.Channels = spec.Channels[:1]
	spec.Days = 1
	spec.RecordsPerFile = 4
	spec.SamplesPerRecord = 250
	m, err := repo.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(256, storage.NoCost(), nil)
	store, err := storage.Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	reg := catalog.NewRegistry()
	ad := seismic.NewAdapter()
	if err := reg.Register(ad); err != nil {
		t.Fatal(err)
	}
	_, _, dataDef := ad.Tables()
	env := &Env{
		Store:    store,
		Adapters: reg,
		RepoDir:  m.Dir,
		Cache:    cache.New(cacheCfg),
		Results:  make(map[string]*Materialized),
		Mounts:   &MountStats{},
	}
	return env, m, dataDef
}

func mountNode(m *repo.Manifest, def catalog.TableDef, pred expr.Expr) *plan.Mount {
	return &plan.Mount{
		URI: m.Files[0].URI, Adapter: seismic.AdapterName,
		Binding: "D", Def: def, Pred: pred,
	}
}

func spanPred(def catalog.TableDef, lo, hi int64) expr.Expr {
	schema := (&plan.Mount{Binding: "D", Def: def}).Schema()
	idx := plan.FindColumn(schema, "D.sample_time")
	c := &expr.Col{Index: idx, Name: "D.sample_time", K: vector.KindTime}
	return expr.JoinAnd([]expr.Expr{
		&expr.Compare{Op: expr.Ge, L: c, R: &expr.Const{Val: vector.Time(lo)}},
		&expr.Compare{Op: expr.Le, L: c, R: &expr.Const{Val: vector.Time(hi)}},
	})
}

func TestMountFullFileRows(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	mat, err := Run(mountNode(m, def, nil), env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1000 {
		t.Fatalf("mounted %d rows, want 1000", mat.Rows())
	}
	if env.Mounts.FilesMounted != 1 || env.Mounts.RecordsPruned != 0 {
		t.Errorf("stats = %+v", env.Mounts)
	}
}

func TestMountFusedSelectionPrunes(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	f := m.Files[0]
	// Window inside the first record only: three of four records prunable.
	recDur := (f.EndTime - f.StartTime) / 4
	pred := spanPred(def, f.StartTime, f.StartTime+recDur/2)
	mat, err := Run(mountNode(m, def, pred), env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() == 0 || mat.Rows() >= 1000 {
		t.Fatalf("σ∘mount returned %d rows", mat.Rows())
	}
	if env.Mounts.RecordsPruned == 0 {
		t.Error("no record pruned before decompression")
	}
	// Every surviving row satisfies the predicate.
	flat := mat.Flatten()
	for _, ts := range flat.Cols[2].Int64s() {
		if ts < f.StartTime || ts > f.StartTime+recDur/2 {
			t.Fatal("σ∘mount leaked a row outside the window")
		}
	}
}

func TestMountOnMountHookSeesFullRecords(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	var hookRows int
	env.OnMount = func(uri string, full *vector.Batch) { hookRows = full.Len() }
	f := m.Files[0]
	pred := spanPred(def, f.StartTime, f.StartTime+1) // ~1 row survives
	mat, err := Run(mountNode(m, def, pred), env)
	if err != nil {
		t.Fatal(err)
	}
	// The hook observes the decoded records BEFORE the row filter, so its
	// derived summaries describe whole records.
	if hookRows <= mat.Rows() {
		t.Errorf("hook saw %d rows, result has %d; hook must see pre-filter data", hookRows, mat.Rows())
	}
}

func TestCacheScanServesAndFallsBack(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	env, m, def := mountEnv(t, cfg)

	// Mount once to populate the cache.
	if _, err := Run(mountNode(m, def, nil), env); err != nil {
		t.Fatal(err)
	}
	if env.Cache.Stats().Entries != 1 {
		t.Fatal("mount did not populate the cache")
	}

	cs := &plan.CacheScan{
		URI: m.Files[0].URI, Adapter: seismic.AdapterName, Binding: "D", Def: def,
	}
	mat, err := Run(cs, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1000 || env.Mounts.CacheHits != 1 {
		t.Errorf("cache-scan rows=%d hits=%d", mat.Rows(), env.Mounts.CacheHits)
	}

	// Evict and scan again: must fall back to mounting, same rows.
	env.Cache.Clear()
	before := env.Mounts.FilesMounted
	mat, err = Run(cs, env)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows() != 1000 {
		t.Errorf("fallback rows = %d", mat.Rows())
	}
	if env.Mounts.FilesMounted != before+1 {
		t.Error("eviction fallback did not mount")
	}
}

func TestCacheScanWithoutCacheErrors(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	env.Cache = nil
	cs := &plan.CacheScan{URI: m.Files[0].URI, Adapter: seismic.AdapterName, Binding: "D", Def: def}
	if _, err := Run(cs, env); err == nil {
		t.Error("cache-scan without a cache succeeded")
	}
}

func TestMountUnknownAdapter(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	n := mountNode(m, def, nil)
	n.Adapter = "bogus"
	if _, err := Run(n, env); err == nil {
		t.Error("mount with unknown adapter succeeded")
	}
}

func TestMountMissingFile(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{})
	n := mountNode(m, def, nil)
	n.URI = "not-there.mseed"
	if _, err := Run(n, env); err == nil {
		t.Error("mount of missing file succeeded")
	}
}

func TestFileGranularCachePutsWholeFile(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	env, m, def := mountEnv(t, cfg)
	f := m.Files[0]
	// Even a narrow σ∘mount must cache the WHOLE file under file
	// granularity (pruning is disabled so the cached entry is complete).
	pred := spanPred(def, f.StartTime, f.StartTime+1)
	if _, err := Run(mountNode(m, def, pred), env); err != nil {
		t.Fatal(err)
	}
	cached, ok := env.Cache.Get(f.URI, cache.FullSpan())
	if !ok {
		t.Fatal("file not cached")
	}
	if cached.Len() != 1000 {
		t.Errorf("cached %d rows, want the full 1000", cached.Len())
	}
}

func TestTupleGranularCachePutsFilteredSpan(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular}
	env, m, def := mountEnv(t, cfg)
	f := m.Files[0]
	hi := f.StartTime + (f.EndTime-f.StartTime)/8
	pred := spanPred(def, f.StartTime, hi)
	if _, err := Run(mountNode(m, def, pred), env); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Cache.Get(f.URI, cache.Span{Lo: f.StartTime, Hi: hi}); !ok {
		t.Error("tuple span not served")
	}
	if _, ok := env.Cache.Get(f.URI, cache.FullSpan()); ok {
		t.Error("tuple entry wrongly covers the full file")
	}
}

func TestCacheFallbackCounted(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	env, m, def := mountEnv(t, cfg)
	if _, err := Run(mountNode(m, def, nil), env); err != nil {
		t.Fatal(err)
	}
	cs := &plan.CacheScan{URI: m.Files[0].URI, Adapter: seismic.AdapterName, Binding: "D", Def: def}
	if _, err := Run(cs, env); err != nil {
		t.Fatal(err)
	}
	if env.Mounts.CacheFallbacks != 0 {
		t.Errorf("hit counted as fallback: %+v", env.Mounts)
	}
	// Evict between planning and execution: the re-mount must be
	// recorded, or benchmark numbers misattribute cache efficacy.
	env.Cache.Clear()
	if _, err := Run(cs, env); err != nil {
		t.Fatal(err)
	}
	if env.Mounts.CacheFallbacks != 1 {
		t.Errorf("CacheFallbacks = %d, want 1 (stats %+v)", env.Mounts.CacheFallbacks, env.Mounts)
	}
}

// TestCachedEntrySurvivesDownstreamMutation is the aliasing regression,
// restated for copy-on-write: batches served from the ingestion cache
// are O(1) shares of the entry, and any downstream mutation — a sort's
// in-place permute, or a client writing through the vector mutation
// API — materializes private storage and leaves the cached entry
// untouched.
func TestCachedEntrySurvivesDownstreamMutation(t *testing.T) {
	cfg := cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
	env, m, def := mountEnv(t, cfg)
	if _, err := Run(mountNode(m, def, nil), env); err != nil {
		t.Fatal(err)
	}
	entry, ok := env.Cache.Get(m.Files[0].URI, cache.FullSpan())
	if !ok {
		t.Fatal("file not cached")
	}
	wantFirst := entry.Cols[3].Float64s()[0]

	cs := &plan.CacheScan{URI: m.Files[0].URI, Adapter: seismic.AdapterName, Binding: "D", Def: def}
	// A descending sort over the cache-scan reorders every row.
	sorted, err := Run(&plan.Sort{Keys: []plan.SortKey{{Index: 2, Desc: true}}, Child: cs}, env)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the query's output in place, as a hostile client might.
	for _, b := range sorted.Batches {
		vals := b.Cols[3].MutableFloat64s()
		for i := range vals {
			vals[i] = -12345
		}
	}
	entry2, ok := env.Cache.Get(m.Files[0].URI, cache.FullSpan())
	if !ok {
		t.Fatal("entry vanished")
	}
	if got := entry2.Cols[3].Float64s()[0]; got != wantFirst {
		t.Fatalf("cached entry corrupted: first value %v, want %v", got, wantFirst)
	}
	ts := entry2.Cols[2].Int64s()
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatal("cached entry row order changed by downstream sort")
		}
	}
}

// TestResultScanSharesAreCopyOnWrite proves the same discipline for
// replayed materialized results: per-file subplans and incremental
// rounds replay one shared Qf result through O(1) shares, and mutating a
// replayed batch materializes a private copy instead of corrupting the
// shared materialization.
func TestResultScanSharesAreCopyOnWrite(t *testing.T) {
	env, _, _ := mountEnv(t, cache.Config{})
	schema := []plan.ColInfo{{Table: "qf", Name: "x", Kind: vector.KindInt64}}
	mat := &Materialized{
		Schema:  schema,
		Batches: []*vector.Batch{vector.NewBatch(vector.FromInt64([]int64{1, 2, 3}))},
	}
	env.Results["qf"] = mat
	rs := &plan.ResultScan{Name: "qf", Cols: schema}

	// Replaying must not deep-copy: the share is O(1).
	copies := vector.CowCopies()
	out, err := Run(rs, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := vector.CowCopies() - copies; got != 0 {
		t.Errorf("replay performed %d copies, want 0", got)
	}

	out.Batches[0].Cols[0].Set(0, vector.Int64(-99))
	if got := mat.Batches[0].Cols[0].Int64s()[0]; got != 1 {
		t.Fatalf("shared materialized result corrupted: %d", got)
	}
	// And replaying again still sees pristine values.
	again, err := Run(&plan.ResultScan{Name: "qf", Cols: schema}, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Batches[0].Cols[0].Int64s()[0]; got != 1 {
		t.Fatalf("second replay saw mutated value: %d", got)
	}
}

// TestConcurrentMountsOfOneFile drives K mount operators of the same
// file in parallel against one env: the shared service must coalesce
// them onto a single extraction while every operator sees every row.
func TestConcurrentMountsOfOneFile(t *testing.T) {
	env, m, def := mountEnv(t, cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular})
	const k = 8
	var wg sync.WaitGroup
	rows := make([]int, k)
	errs := make([]error, k)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			mat, err := Run(mountNode(m, def, nil), env)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = mat.Rows()
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if rows[i] != 1000 {
			t.Errorf("query %d saw %d rows, want 1000", i, rows[i])
		}
	}
	ms := env.MountsSnapshot()
	if ms.FilesMounted != 1 {
		t.Errorf("FilesMounted = %d, want 1 (single-flight)", ms.FilesMounted)
	}
	if ms.SingleFlightHits+ms.CacheHits != k-1 {
		t.Errorf("SingleFlightHits=%d + CacheHits=%d, want %d: every other query rides the flight or its cache entry",
			ms.SingleFlightHits, ms.CacheHits, k-1)
	}
}
