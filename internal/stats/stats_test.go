package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/derived"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/vector"
)

func col(name string, k vector.Kind) *expr.Col { return &expr.Col{Name: name, K: k} }

func cmp(op expr.CmpOp, l, r expr.Expr) expr.Expr { return &expr.Compare{Op: op, L: l, R: r} }

func timeConst(ns int64) *expr.Const { return &expr.Const{Val: vector.Time(ns)} }

func floatConst(f float64) *expr.Const { return &expr.Const{Val: vector.Float64(f)} }

const (
	spanCol = "D.sample_time"
	valCol  = "D.sample_value"
)

func TestSetResidualSpanBounds(t *testing.T) {
	o := New("Qf", 10, nil)
	pred := expr.JoinAnd([]expr.Expr{
		cmp(expr.Gt, col(spanCol, vector.KindTime), timeConst(100)),
		cmp(expr.Le, col(spanCol, vector.KindTime), timeConst(200)),
	})
	o.SetResidual(pred, spanCol, valCol)
	iv, ok := o.SpanInterval()
	if !ok || iv.Lo != 101 || iv.Hi != 200 {
		t.Fatalf("span interval = %+v ok=%v, want [101,200]", iv, ok)
	}
	if _, ok := o.ValueInterval(); ok {
		t.Fatal("value interval set with no value conjunct")
	}
}

func TestSetResidualConstOnLeft(t *testing.T) {
	o := New("Qf", 10, nil)
	// 100 < D.sample_time is D.sample_time > 100.
	o.SetResidual(cmp(expr.Lt, timeConst(100), col(spanCol, vector.KindTime)), spanCol, valCol)
	iv, ok := o.SpanInterval()
	if !ok || iv.Lo != 101 {
		t.Fatalf("flipped interval = %+v ok=%v, want Lo=101", iv, ok)
	}
}

func TestSetResidualSkipsDisjunctions(t *testing.T) {
	o := New("Qf", 10, nil)
	// An OR must not narrow anything — it doesn't hold conjunctively.
	or := &expr.Logic{
		Op: expr.OpOr,
		L:  cmp(expr.Gt, col(spanCol, vector.KindTime), timeConst(100)),
		R:  cmp(expr.Lt, col(spanCol, vector.KindTime), timeConst(50)),
	}
	o.SetResidual(or, spanCol, valCol)
	if _, ok := o.SpanInterval(); ok {
		t.Fatal("span narrowed from a disjunction")
	}
}

func TestSetResidualValueBounds(t *testing.T) {
	o := New("Qf", 10, nil)
	pred := expr.JoinAnd([]expr.Expr{
		cmp(expr.Gt, col(valCol, vector.KindFloat64), floatConst(1.5)),
		cmp(expr.Le, col(valCol, vector.KindFloat64), floatConst(9.5)),
	})
	o.SetResidual(pred, spanCol, valCol)
	iv, ok := o.ValueInterval()
	if !ok || iv.Lo != 1.5 || !iv.LoStrict || iv.Hi != 9.5 || iv.HiStrict {
		t.Fatalf("value interval = %+v ok=%v, want (1.5, 9.5]", iv, ok)
	}
	if !iv.contains(2) || iv.contains(1.5) || !iv.contains(9.5) || iv.contains(10) {
		t.Fatalf("contains misbehaves for %+v", iv)
	}
}

func TestFloatIntervalDisjoint(t *testing.T) {
	open := FloatInterval{Lo: 1, Hi: 2, LoStrict: true, HiStrict: true}
	cases := []struct {
		lo, hi float64
		want   bool
	}{
		{0, 0.5, true},
		{0, 1, true},    // touches open lower endpoint only
		{2, 3, true},    // touches open upper endpoint only
		{1.5, 1.6, false},
		{0, 3, false},
		{math.NaN(), 1, false}, // NaN bound can never prove disjointness
	}
	for _, c := range cases {
		if got := open.disjoint(c.lo, c.hi); got != c.want {
			t.Errorf("disjoint(%v,%v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	closed := FloatInterval{Lo: 1, Hi: 2}
	if !closed.disjoint(2.1, 3) || closed.disjoint(2, 3) || closed.disjoint(0, 1) {
		t.Error("closed-endpoint disjointness wrong")
	}
}

func TestAddRecordDedupes(t *testing.T) {
	o := New("Qf", 4, nil)
	o.AddRecord("f", 100, RecordStats{RecordID: 1, Rows: 10, SpanLo: 0, SpanHi: 9})
	o.AddRecord("f", 100, RecordStats{RecordID: 1, Rows: 10, SpanLo: 0, SpanHi: 9})
	o.AddRecord("f", 120, RecordStats{RecordID: 2, Rows: 5, SpanLo: 10, SpanHi: 19})
	fs := o.File("f")
	if fs == nil || len(fs.Records) != 2 {
		t.Fatalf("records = %+v, want 2 deduped", fs)
	}
	if fs.Bytes != 120 {
		t.Errorf("Bytes = %d, want max 120", fs.Bytes)
	}
	if o.File("ghost") != nil {
		t.Error("unknown file returned stats")
	}
}

func TestPruneFilesKeepsUnknown(t *testing.T) {
	o := New("Qf", 2, nil)
	o.AddRecord("dead", 100, RecordStats{RecordID: 0, Rows: 10, SpanLo: 0, SpanHi: 9})
	o.AddRecord("live", 100, RecordStats{RecordID: 0, Rows: 10, SpanLo: 50, SpanHi: 59})
	o.SetResidual(cmp(expr.Ge, col(spanCol, vector.KindTime), timeConst(50)), spanCol, valCol)

	files := []plan.MountSpec{{URI: "dead"}, {URI: "live"}, {URI: "unknown"}}
	kept, rep := o.PruneFiles(files)
	if len(kept) != 2 || kept[0].URI != "live" || kept[1].URI != "unknown" {
		t.Fatalf("kept = %+v", kept)
	}
	if rep.PrunedFiles != 1 || rep.PrunedRecords != 1 || rep.BytesNotMounted != 100 {
		t.Errorf("report = %+v", rep)
	}
	if len(files) != 3 {
		t.Error("input slice modified")
	}
}

func TestEstimateBytes(t *testing.T) {
	o := New("Qf", 4, nil)
	// 4 records x 10 rows; residual keeps only the last record.
	for i := int64(0); i < 4; i++ {
		o.AddRecord("f", 400, RecordStats{RecordID: i, Rows: 10, SpanLo: i * 10, SpanHi: i*10 + 9})
	}
	o.SetResidual(cmp(expr.Ge, col(spanCol, vector.KindTime), timeConst(30)), spanCol, valCol)
	if got := o.EstimateBytes("f"); got != 100 {
		t.Errorf("EstimateBytes = %d, want 100 (quarter of the file)", got)
	}
	if got := o.EstimateBytes("unknown"); got != 0 {
		t.Errorf("unknown file estimate = %d, want 0", got)
	}
	// Unrestricted residual: no estimate, mountsvc charges the stat size.
	o2 := New("Qf", 4, nil)
	o2.AddRecord("f", 400, RecordStats{RecordID: 0, Rows: 10, SpanLo: 0, SpanHi: 9})
	if got := o2.EstimateBytes("f"); got != 0 {
		t.Errorf("unrestricted estimate = %d, want 0", got)
	}
}

func TestNodeRows(t *testing.T) {
	o := New("Qf", 42, nil)
	o.AddRecord("a", 0, RecordStats{RecordID: 0, Rows: 7, SpanLo: 0, SpanHi: 9})
	o.AddRecord("a", 0, RecordStats{RecordID: 1, Rows: 5, SpanLo: 100, SpanHi: 109})
	o.SetResidual(cmp(expr.Le, col(spanCol, vector.KindTime), timeConst(50)), spanCol, valCol)

	if r, ok := o.NodeRows(&plan.ResultScan{Name: "Qf"}); !ok || r != 42 {
		t.Errorf("ResultScan(Qf) = %d,%v want 42", r, ok)
	}
	if _, ok := o.NodeRows(&plan.ResultScan{Name: "other"}); ok {
		t.Error("foreign result scan should be unknown")
	}
	// Record 1 is span-pruned: only record 0's rows count.
	mount := &plan.Mount{URI: "a"}
	if r, ok := o.NodeRows(mount); !ok || r != 7 {
		t.Errorf("Mount(a) = %d,%v want 7", r, ok)
	}
	union := &plan.UnionAll{Inputs: []plan.Node{mount, &plan.CacheScan{URI: "a"}}}
	if r, ok := o.NodeRows(union); !ok || r != 14 {
		t.Errorf("UnionAll = %d,%v want 14", r, ok)
	}
	if r, ok := o.NodeRows(&plan.UnionAll{}); !ok || r != 0 {
		t.Errorf("empty UnionAll = %d,%v want 0,true", r, ok)
	}
	if _, ok := o.NodeRows(&plan.Mount{URI: "ghost"}); ok {
		t.Error("unknown mount should be unknown")
	}
}

// TestPruningSoundnessProperty is the load-bearing test: across random
// repositories, residuals and derived summaries, a record reported
// prunable must contain no row satisfying the residual intervals —
// verified row by row against the generated ground truth.
func TestPruningSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		d := derived.NewStore()
		o := New("Qf", 0, d)

		type row struct {
			t int64
			v float64
		}
		rows := make(map[string]map[int64][]row)

		nFiles := 1 + rng.Intn(3)
		for fi := 0; fi < nFiles; fi++ {
			uri := fmt.Sprintf("file-%d", fi)
			rows[uri] = make(map[int64][]row)
			nRecs := 1 + rng.Intn(4)
			for ri := 0; ri < nRecs; ri++ {
				rid := int64(ri)
				n := 1 + rng.Intn(20)
				base := int64(rng.Intn(1000))
				var rs []row
				lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
				rids := vector.New(vector.KindInt64, 0)
				spans := vector.New(vector.KindTime, 0)
				vals := vector.New(vector.KindFloat64, 0)
				for k := 0; k < n; k++ {
					ts := base + int64(rng.Intn(100))
					v := float64(rng.Intn(200) - 100)
					rs = append(rs, row{ts, v})
					if ts < lo {
						lo = ts
					}
					if ts > hi {
						hi = ts
					}
					rids.AppendInt64(rid)
					spans.AppendValue(vector.Time(ts))
					vals.AppendFloat64(v)
				}
				rows[uri][rid] = rs
				o.AddRecord(uri, 1000, RecordStats{RecordID: rid, Rows: int64(n), SpanLo: lo, SpanHi: hi})
				// Half the records get a derived summary (observation is
				// best-effort in the engine too).
				if rng.Intn(2) == 0 {
					d.Observe(uri, vector.NewBatch(rids, spans, vals), 0, 1, 2)
				}
			}
		}

		// Random residual: optional span bounds, optional value bounds.
		var conj []expr.Expr
		if rng.Intn(4) > 0 {
			lo := int64(rng.Intn(1100))
			conj = append(conj,
				cmp(expr.Ge, col(spanCol, vector.KindTime), timeConst(lo)),
				cmp(expr.Le, col(spanCol, vector.KindTime), timeConst(lo+int64(rng.Intn(200)))))
		}
		if rng.Intn(3) > 0 {
			lo := float64(rng.Intn(220) - 110)
			ops := []expr.CmpOp{expr.Gt, expr.Ge}
			conj = append(conj,
				cmp(ops[rng.Intn(2)], col(valCol, vector.KindFloat64), floatConst(lo)),
				cmp(ops[rng.Intn(2)], floatConst(lo+float64(rng.Intn(50))), col(valCol, vector.KindFloat64)))
		}
		o.SetResidual(expr.JoinAnd(conj), spanCol, valCol)

		spanInt, hasSpan := o.SpanInterval()
		valInt, hasVal := o.ValueInterval()
		qualifies := func(r row) bool {
			if hasSpan && (r.t < spanInt.Lo || r.t > spanInt.Hi) {
				return false
			}
			if hasVal && !valInt.contains(r.v) {
				return false
			}
			return true
		}

		for uri, recs := range rows {
			fs := o.File(uri)
			var specs []plan.MountSpec
			specs = append(specs, plan.MountSpec{URI: uri})
			kept, _ := o.PruneFiles(specs)
			fileKept := len(kept) == 1
			anyQualifies := false
			for _, rec := range fs.Records {
				recQualifies := false
				for _, r := range recs[rec.RecordID] {
					if qualifies(r) {
						recQualifies = true
						anyQualifies = true
					}
				}
				if o.PrunableRecord(uri, rec) && recQualifies {
					t.Fatalf("trial %d: record %s/%d pruned but a row qualifies (span=%v/%v val=%v/%v)",
						trial, uri, rec.RecordID, spanInt, hasSpan, valInt, hasVal)
				}
			}
			if !fileKept && anyQualifies {
				t.Fatalf("trial %d: file %s pruned but contains a qualifying row", trial, uri)
			}
			// NodeRows(mount) must be an upper bound on qualifying rows.
			if nr, ok := o.NodeRows(&plan.Mount{URI: uri}); ok {
				var qcount int64
				for _, rs := range recs {
					for _, r := range rs {
						if qualifies(r) {
							qcount++
						}
					}
				}
				if nr < qcount {
					t.Fatalf("trial %d: NodeRows(%s) = %d < qualifying rows %d", trial, uri, nr, qcount)
				}
			}
		}
	}
}

// TestEstimateBytesProperty pins the estimate's contract: always in
// [1, Bytes] when non-zero, and monotone — a wider residual never
// yields a smaller estimate denominator's worth of surviving rows.
func TestEstimateBytesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		o := New("Qf", 0, nil)
		bytes := int64(1 + rng.Intn(100000))
		nRecs := 1 + rng.Intn(6)
		for ri := 0; ri < nRecs; ri++ {
			base := int64(rng.Intn(1000))
			o.AddRecord("f", bytes, RecordStats{
				RecordID: int64(ri), Rows: int64(1 + rng.Intn(50)),
				SpanLo: base, SpanHi: base + int64(rng.Intn(100)),
			})
		}
		lo := int64(rng.Intn(1200))
		o.SetResidual(expr.JoinAnd([]expr.Expr{
			cmp(expr.Ge, col(spanCol, vector.KindTime), timeConst(lo)),
			cmp(expr.Le, col(spanCol, vector.KindTime), timeConst(lo+int64(rng.Intn(300)))),
		}), spanCol, valCol)
		est := o.EstimateBytes("f")
		if est < 0 || est > bytes {
			t.Fatalf("trial %d: estimate %d outside [0,%d]", trial, est, bytes)
		}
	}
}
