// Package stats is the statistics-free planning layer: exact
// cardinalities and spans harvested from the frozen Qf result, plus
// per-record value summaries the ALi ingestion path already collects in
// internal/derived. Classic optimizers estimate; two-stage execution
// measures — by the time Qs is planned, Qf has been run and frozen, so
// every number the Oracle serves is exact, not an estimate.
//
// The Oracle answers four planning questions for Stage 2:
//
//   - which files/records provably cannot contribute a qualifying row
//     (PruneFiles: the metadata record span or the derived value
//     interval is disjoint from the residual predicate's interval);
//   - how many rows a plan subtree yields at most (NodeRows, driving
//     greedy join ordering and build-side selection);
//   - how many bytes a mount will really buffer (EstimateBytes,
//     scaling the file size by surviving records so admission stops
//     charging worst case).
//
// Soundness contract: pruning only ever drops a record when *no* row of
// it can satisfy the residual predicate, and NodeRows returns upper
// bounds that are exact for ResultScan — so a zero means provably
// empty. Both properties are what lets core keep the differential
// guarantee (byte-identical results with planning on or off).
package stats

import (
	"math"
	"sort"

	"repro/internal/derived"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/vector"
)

// RecordStats is one record's metadata-result row: exact row count and
// coverage span, straight out of the frozen Qf result.
type RecordStats struct {
	RecordID int64
	Rows     int64
	SpanLo   int64 // nanoseconds, inclusive
	SpanHi   int64 // nanoseconds, inclusive
}

// FileStats aggregates the Qf rows of one file.
type FileStats struct {
	URI     string
	Bytes   int64 // on-disk size from metadata, 0 if unknown
	Records []RecordStats
}

// IntInterval is a closed integer interval; used for time/int residual
// bounds (Lo > Hi means empty).
type IntInterval struct {
	Lo, Hi int64
}

// FloatInterval is a float interval with independently open/closed
// endpoints, for residual bounds on float columns where the +1/-1
// closing trick doesn't apply.
type FloatInterval struct {
	Lo, Hi             float64
	LoStrict, HiStrict bool // true: endpoint excluded
}

// contains reports whether v satisfies the interval.
func (iv FloatInterval) contains(v float64) bool {
	if iv.LoStrict {
		if !(v > iv.Lo) {
			return false
		}
	} else if !(v >= iv.Lo) {
		return false
	}
	if iv.HiStrict {
		return v < iv.Hi
	}
	return v <= iv.Hi
}

// disjoint reports whether the closed interval [lo, hi] has no point in
// common with iv. NaN summary bounds never prove disjointness.
func (iv FloatInterval) disjoint(lo, hi float64) bool {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return false
	}
	if iv.LoStrict && hi <= iv.Lo {
		return true
	}
	if !iv.LoStrict && hi < iv.Lo {
		return true
	}
	if iv.HiStrict && lo >= iv.Hi {
		return true
	}
	return !iv.HiStrict && lo > iv.Hi
}

// PruneReport summarizes one PruneFiles pass.
type PruneReport struct {
	PrunedFiles     int
	PrunedRecords   int   // records belonging to dropped files
	BytesNotMounted int64 // on-disk bytes of dropped files
}

// Oracle serves exact Stage-2 planning facts for one prepared query. It
// is built once between Stage 1 and Stage 2 and read-only afterwards,
// so it is safe to share across parallel Stage-2 workers.
type Oracle struct {
	resultName string
	qfRows     int64
	derived    *derived.Store
	files      map[string]*FileStats

	// Residual predicate bounds over the actual-data scan, extracted
	// from the top-level AND conjuncts of the Qs residual.
	spanName string // qualified span column, e.g. "D.sample_time"
	spanInt  IntInterval
	hasSpan  bool
	valName  string // qualified value column, e.g. "D.sample_value"
	valInt   FloatInterval
	hasVal   bool
}

// New creates an Oracle for the named frozen Qf result with qfRows rows.
// The derived store may be nil (value-interval pruning then stays off).
func New(resultName string, qfRows int64, d *derived.Store) *Oracle {
	return &Oracle{
		resultName: resultName,
		qfRows:     qfRows,
		derived:    d,
		files:      make(map[string]*FileStats),
	}
}

// AddRecord registers one Qf result row: record rec of file uri, whose
// on-disk size is fileBytes (0 if the metadata doesn't carry it).
// Duplicate (uri, record) rows — possible when Qf joins fan out — are
// collapsed to one.
func (o *Oracle) AddRecord(uri string, fileBytes int64, rec RecordStats) {
	fs := o.files[uri]
	if fs == nil {
		fs = &FileStats{URI: uri}
		o.files[uri] = fs
	}
	if fileBytes > fs.Bytes {
		fs.Bytes = fileBytes
	}
	for _, r := range fs.Records {
		if r.RecordID == rec.RecordID {
			return
		}
	}
	fs.Records = append(fs.Records, rec)
}

// File returns the stats collected for uri, or nil when Qf never named
// it.
func (o *Oracle) File(uri string) *FileStats {
	return o.files[uri]
}

// SetResidual extracts interval bounds from the Qs residual predicate
// over the actual-data scan. spanName/valName are the qualified span
// (time) and value (float) column names of the actual binding. Only
// top-level AND'd Compare(col, const) conjuncts contribute — OR, NOT
// and arithmetic are skipped, which weakens the interval and therefore
// stays sound (pruning only gets less aggressive).
func (o *Oracle) SetResidual(pred expr.Expr, spanName, valName string) {
	o.spanName, o.valName = spanName, valName
	if pred == nil {
		return
	}
	for _, c := range expr.SplitAnd(pred) {
		cmp, ok := c.(*expr.Compare)
		if !ok {
			continue
		}
		col, val, op, ok := normalizeCompare(cmp)
		if !ok || op == expr.Ne {
			continue
		}
		switch {
		case matchesColumn(col.Name, spanName) &&
			(val.Kind == vector.KindInt64 || val.Kind == vector.KindTime):
			o.narrowSpan(op, val.I)
		case matchesColumn(col.Name, valName) && val.IsNumeric():
			o.narrowVal(op, val.AsFloat())
		}
	}
}

// normalizeCompare puts a Compare into col-OP-const form, flipping the
// operator when the constant is on the left.
func normalizeCompare(cmp *expr.Compare) (*expr.Col, vector.Value, expr.CmpOp, bool) {
	if col, ok := cmp.L.(*expr.Col); ok {
		if c, ok := cmp.R.(*expr.Const); ok {
			return col, c.Val, cmp.Op, true
		}
	}
	if col, ok := cmp.R.(*expr.Col); ok {
		if c, ok := cmp.L.(*expr.Const); ok {
			return col, c.Val, flipOp(cmp.Op), true
		}
	}
	return nil, vector.Value{}, 0, false
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	}
	return op
}

// matchesColumn accepts the qualified name or its bare suffix — plans
// carry "D.sample_time" in some places and "sample_time" in others.
func matchesColumn(name, qualified string) bool {
	if name == qualified || qualified == "" {
		return name == qualified
	}
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return name == qualified[i+1:]
		}
	}
	return false
}

func (o *Oracle) narrowSpan(op expr.CmpOp, v int64) {
	if !o.hasSpan {
		o.spanInt = IntInterval{Lo: math.MinInt64, Hi: math.MaxInt64}
		o.hasSpan = true
	}
	switch op {
	case expr.Eq:
		if v > o.spanInt.Lo {
			o.spanInt.Lo = v
		}
		if v < o.spanInt.Hi {
			o.spanInt.Hi = v
		}
	case expr.Gt:
		if v+1 > o.spanInt.Lo {
			o.spanInt.Lo = v + 1
		}
	case expr.Ge:
		if v > o.spanInt.Lo {
			o.spanInt.Lo = v
		}
	case expr.Lt:
		if v-1 < o.spanInt.Hi {
			o.spanInt.Hi = v - 1
		}
	case expr.Le:
		if v < o.spanInt.Hi {
			o.spanInt.Hi = v
		}
	}
}

func (o *Oracle) narrowVal(op expr.CmpOp, v float64) {
	if !o.hasVal {
		o.valInt = FloatInterval{Lo: math.Inf(-1), Hi: math.Inf(1)}
		o.hasVal = true
	}
	switch op {
	case expr.Eq:
		if v > o.valInt.Lo || (v == o.valInt.Lo && !o.valInt.LoStrict) {
			o.valInt.Lo, o.valInt.LoStrict = v, false
		}
		if v < o.valInt.Hi || (v == o.valInt.Hi && !o.valInt.HiStrict) {
			o.valInt.Hi, o.valInt.HiStrict = v, false
		}
	case expr.Gt:
		if v >= o.valInt.Lo {
			o.valInt.Lo, o.valInt.LoStrict = v, true
		}
	case expr.Ge:
		if v > o.valInt.Lo {
			o.valInt.Lo, o.valInt.LoStrict = v, false
		}
	case expr.Lt:
		if v <= o.valInt.Hi {
			o.valInt.Hi, o.valInt.HiStrict = v, true
		}
	case expr.Le:
		if v < o.valInt.Hi {
			o.valInt.Hi, o.valInt.HiStrict = v, false
		}
	}
}

// SpanInterval exposes the extracted span bounds (for tests and
// explain output). ok is false when the residual constrains nothing.
func (o *Oracle) SpanInterval() (IntInterval, bool) { return o.spanInt, o.hasSpan }

// ValueInterval exposes the extracted value bounds.
func (o *Oracle) ValueInterval() (FloatInterval, bool) { return o.valInt, o.hasVal }

// PrunableRecord reports whether the record provably contributes no
// qualifying row: its metadata span misses the span interval entirely,
// or a derived summary proves every value in it misses the value
// interval. Exported so property tests can drive it directly.
func (o *Oracle) PrunableRecord(uri string, rec RecordStats) bool {
	if o.hasSpan && (rec.SpanHi < o.spanInt.Lo || rec.SpanLo > o.spanInt.Hi) {
		return true
	}
	if o.hasVal && o.derived != nil {
		if s, ok := o.derived.Lookup(uri, rec.RecordID); ok && s.Count > 0 &&
			o.valInt.disjoint(s.Min, s.Max) {
			return true
		}
	}
	return false
}

// survivingRows returns how many rows of the file survive span pruning
// alone (the bytes a mount must still buffer: value-pruned records are
// decoded into the replay buffer regardless), and whether any record at
// all — after both prune rules — can contribute.
func (o *Oracle) survivors(fs *FileStats) (spanRows, totalRows int64, any bool) {
	for _, rec := range fs.Records {
		totalRows += rec.Rows
		spanPruned := o.hasSpan && (rec.SpanHi < o.spanInt.Lo || rec.SpanLo > o.spanInt.Hi)
		if !spanPruned {
			spanRows += rec.Rows
		}
		if !o.PrunableRecord(fs.URI, rec) {
			any = true
		}
	}
	return spanRows, totalRows, any
}

// PruneFiles drops the mount specs whose every record is provably
// non-contributing. Files Qf never described are kept — unknown means
// unprunable. The input slice is not modified.
func (o *Oracle) PruneFiles(files []plan.MountSpec) ([]plan.MountSpec, PruneReport) {
	var rep PruneReport
	kept := make([]plan.MountSpec, 0, len(files))
	for _, f := range files {
		fs := o.files[f.URI]
		if fs == nil || len(fs.Records) == 0 {
			kept = append(kept, f)
			continue
		}
		if _, _, any := o.survivors(fs); any {
			kept = append(kept, f)
			continue
		}
		rep.PrunedFiles++
		rep.PrunedRecords += len(fs.Records)
		rep.BytesNotMounted += fs.Bytes
	}
	return kept, rep
}

// EstimateBytes predicts how many bytes mounting uri will buffer: the
// file size scaled by the fraction of rows in span-surviving records.
// Value-pruned records still get decoded into the replay buffer, so
// only span pruning (which mountsvc skips at extraction time) shrinks
// the estimate. Returns 0 (unknown) when the file or its size is
// unknown or nothing is restricted, and never less than 1 for a known
// non-empty file.
func (o *Oracle) EstimateBytes(uri string) int64 {
	fs := o.files[uri]
	if fs == nil || fs.Bytes == 0 || !o.hasSpan {
		return 0
	}
	spanRows, totalRows, _ := o.survivors(fs)
	if totalRows == 0 {
		return 0
	}
	if spanRows >= totalRows {
		return 0 // nothing saved; let mountsvc use the stat size
	}
	est := int64(math.Ceil(float64(fs.Bytes) * float64(spanRows) / float64(totalRows)))
	if est < 1 {
		est = 1
	}
	if est > fs.Bytes {
		est = fs.Bytes
	}
	return est
}

// NodeRows returns the number of rows the plan subtree yields. The
// bound is exact for ResultScan of the frozen Qf result and an exact
// upper bound elsewhere — in particular, 0 means provably empty, which
// is what licenses early join termination. ok is false for shapes the
// oracle doesn't model.
func (o *Oracle) NodeRows(n plan.Node) (int64, bool) {
	switch t := n.(type) {
	case *plan.ResultScan:
		if t.Name == o.resultName {
			return o.qfRows, true
		}
		return 0, false
	case *plan.Mount:
		return o.scanRows(t.URI)
	case *plan.CacheScan:
		return o.scanRows(t.URI)
	case *plan.Select:
		return o.NodeRows(t.Child)
	case *plan.Project:
		return o.NodeRows(t.Child)
	case *plan.UnionAll:
		var sum int64
		for _, in := range t.Inputs {
			r, ok := o.NodeRows(in)
			if !ok {
				return 0, false
			}
			sum += r
		}
		return sum, true
	}
	return 0, false
}

func (o *Oracle) scanRows(uri string) (int64, bool) {
	fs := o.files[uri]
	if fs == nil || len(fs.Records) == 0 {
		return 0, false
	}
	var rows int64
	for _, rec := range fs.Records {
		if !o.PrunableRecord(uri, rec) {
			rows += rec.Rows
		}
	}
	return rows, true
}

// URIs returns the known file URIs in deterministic order.
func (o *Oracle) URIs() []string {
	out := make([]string, 0, len(o.files))
	for u := range o.files {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
