package csvfmt

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/vector"
)

func writeSample(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	err := WriteFile(path, "S1", "delta", "temperature", 1000,
		map[int64][]float64{
			0: {20.0, 20.5, 21.0},
			1: {22.0, 22.5},
		},
		map[int64]int64{0: 1_000_000, 1: 2_000_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAdapterImplementsInterface(t *testing.T) {
	var _ catalog.FormatAdapter = NewAdapter()
}

func TestExtractMetadata(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir, "s1.csv")
	a := NewAdapter()
	fm, rms, err := a.ExtractMetadata(path, "s1.csv")
	if err != nil {
		t.Fatal(err)
	}
	if fm.Values[1].S != "S1" || fm.Values[2].S != "delta" || fm.Values[3].S != "temperature" {
		t.Errorf("file meta = %+v", fm.Values)
	}
	if fm.Values[5].I != 2 {
		t.Errorf("segment count = %d", fm.Values[5].I)
	}
	if len(rms) != 2 {
		t.Fatalf("records = %d", len(rms))
	}
	if rms[0].Values[4].I != 3 || rms[1].Values[4].I != 2 {
		t.Error("row counts wrong")
	}
	lo, hi, ok := a.RecordSpan(rms[0])
	if !ok || lo != 1_000_000 || hi != 1_000_000+2*1000 {
		t.Errorf("span = [%d,%d]", lo, hi)
	}
}

func TestMount(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir, "s1.csv")
	a := NewAdapter()
	b, err := a.Mount(path, "s1.csv", nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Fatalf("rows = %d, want 5", b.Len())
	}
	if b.Cols[3].Float64s()[1] != 20.5 {
		t.Error("reading values wrong")
	}
	if b.Cols[2].Int64s()[1] != 1_001_000 {
		t.Errorf("timestamp = %d", b.Cols[2].Int64s()[1])
	}
	// Filtered mount.
	b, err = a.Mount(path, "s1.csv", func(rm catalog.RecordMeta) bool { return rm.RecordID == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("filtered rows = %d", b.Len())
	}
}

func TestMalformedFiles(t *testing.T) {
	dir := t.TempDir()
	a := NewAdapter()
	cases := map[string]string{
		"reading-before-segment": "#sensor: x\n1.5\n",
		"bad-segment":            "#segment nope\n",
		"bad-period":             "#period_ns: -5\n",
		"bad-header":             "#justtext\n",
		"bad-reading":            "#segment 0 100\nnot_a_number\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if name == "bad-reading" {
			// Structure scan tolerates unparsed readings; mount must fail.
			if _, err := a.Mount(path, name, nil); err == nil {
				t.Errorf("%s: Mount accepted garbage", name)
			}
			continue
		}
		if _, _, err := a.ExtractMetadata(path, name); err == nil {
			t.Errorf("%s: ExtractMetadata accepted garbage", name)
		}
	}
}

// TestTwoStageOverCSV proves the generalization claim: the identical
// two-stage engine explores a CSV repository through this adapter.
func TestTwoStageOverCSV(t *testing.T) {
	repoDir := t.TempDir()
	// Three sensors at two sites; sensor S2 at site delta is of interest.
	mk := func(name, sensor, site string, base float64) {
		err := WriteFile(filepath.Join(repoDir, name), sensor, site, "temperature", 1000,
			map[int64][]float64{
				0: {base, base + 1, base + 2},
				1: {base + 10, base + 11},
			},
			map[int64]int64{0: 1_000_000, 1: 5_000_000},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("a.csv", "S1", "alpha", 10)
	mk("b.csv", "S2", "delta", 20)
	mk("c.csv", "S3", "delta", 30)

	eng, err := core.Open(core.Options{
		Mode:    core.ModeALi,
		RepoDir: repoDir,
		DBDir:   filepath.Join(t.TempDir(), "db"),
		Adapter: NewAdapter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Query(`SELECT AVG(CSV_READINGS.reading)
		FROM CSV_FILES JOIN CSV_SEGMENTS ON CSV_FILES.uri = CSV_SEGMENTS.uri
		JOIN CSV_READINGS ON CSV_SEGMENTS.uri = CSV_READINGS.uri
			AND CSV_SEGMENTS.record_id = CSV_READINGS.record_id
		WHERE CSV_FILES.sensor = 'S2'`)
	if err != nil {
		t.Fatal(err)
	}
	want := (20.0 + 21 + 22 + 30 + 31) / 5
	if math.Abs(res.Float(0, 0)-want) > 1e-9 {
		t.Errorf("AVG = %v, want %v", res.Float(0, 0), want)
	}
	if res.Stats.FilesOfInterest != 1 || res.Stats.Mounts.FilesMounted != 1 {
		t.Errorf("two-stage machinery not engaged: %+v", res.Stats)
	}

	// Metadata-only query over the CSV schema.
	meta, err := eng.Query(`SELECT site, COUNT(*) AS sensors FROM CSV_FILES GROUP BY site ORDER BY site`)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Stats.MetadataOnly || meta.Rows() != 2 {
		t.Errorf("metadata query wrong: rows=%d", meta.Rows())
	}
	if meta.Value(1, 0).S != "delta" || meta.Value(1, 1).I != 2 {
		t.Errorf("group result wrong: %v %v", meta.Value(1, 0), meta.Value(1, 1))
	}
}

func TestTimeWindowPushdownCSV(t *testing.T) {
	repoDir := t.TempDir()
	err := WriteFile(filepath.Join(repoDir, "w.csv"), "S1", "alpha", "t", 1000,
		map[int64][]float64{0: {1, 2, 3, 4, 5}},
		map[int64]int64{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(core.Options{
		Mode:    core.ModeALi,
		RepoDir: repoDir,
		DBDir:   filepath.Join(t.TempDir(), "db"),
		Adapter: NewAdapter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Readings at 0,1000,...,4000 ns; pick the middle three via epoch
	// nanosecond comparison against an integer literal.
	res, err := eng.Query(`SELECT COUNT(*)
		FROM CSV_SEGMENTS JOIN CSV_READINGS ON CSV_SEGMENTS.uri = CSV_READINGS.uri
			AND CSV_SEGMENTS.record_id = CSV_READINGS.record_id
		WHERE CSV_READINGS.reading_time >= 1000 AND CSV_READINGS.reading_time <= 3000`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value(0, 0).I; got != 3 {
		t.Errorf("COUNT = %d, want 3", got)
	}
}

// TestMountStreamParity proves the streaming path yields exactly the
// rows of the materializing path, segment-aligned.
func TestMountStreamParity(t *testing.T) {
	a := NewAdapter()
	path := writeSample(t, t.TempDir(), "s1.csv")
	whole, err := a.Mount(path, "s1.csv", nil)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*vector.Batch
	err = a.MountStream(path, "s1.csv", nil, 3, func(b *vector.Batch) error {
		streamed = append(streamed, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	row := 0
	for _, b := range streamed {
		for i := 0; i < b.Len(); i++ {
			for c := range b.Cols {
				if vector.Compare(b.Cols[c].Get(i), whole.Cols[c].Get(row)) != 0 {
					t.Fatalf("row %d col %d differs between stream and mount", row, c)
				}
			}
			row++
		}
	}
	if row != whole.Len() {
		t.Fatalf("stream yielded %d rows, mount %d", row, whole.Len())
	}
	if len(streamed) < 2 {
		t.Errorf("expected segment-aligned flushes, got %d batch(es)", len(streamed))
	}
}

// TestMountStreamSkipsRejectedSegments: the streaming path never parses
// the float values of segments the fused selection rejects.
func TestMountStreamRejectedSegmentsNotParsed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv")
	// Segment 1's values are not valid floats: parsing them would error.
	content := "#sensor: S1\n#site: x\n#quantity: q\n#period_ns: 1000\n" +
		"#segment 0 1000000\n1.5\n2.5\n" +
		"#segment 1 2000000\nnot-a-number\nstill-not\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAdapter()
	rows := 0
	err := a.MountStream(path, "bad.csv", func(rm catalog.RecordMeta) bool {
		return rm.RecordID == 0
	}, 0, func(b *vector.Batch) error {
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatalf("rejected segment was parsed: %v", err)
	}
	if rows != 2 {
		t.Errorf("rows = %d, want 2", rows)
	}
}
