// Package csvfmt is the second format adapter of the repository,
// demonstrating the paper's generalization challenge: "a generalized
// medium for the scientific developer [to] define domain- and
// format-specific mappings and extractions in a simpler way".
//
// The format is a sensor-log CSV dialect: a file starts with '#key: value'
// metadata header lines (sensor id, site, quantity, sample period), then
// one or more '#segment <id> <start_epoch_ns>' sections, each followed by
// one numeric reading per line. Segments play the role of records:
// their metadata (start, row count) is derivable by scanning line
// structure only, without parsing the readings — preserving the cheap
// metadata-extraction / expensive mount asymmetry that drives the
// two-stage paradigm.
package csvfmt

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Table names of the CSV sensor schema.
const (
	FileTable   = "CSV_FILES"
	RecordTable = "CSV_SEGMENTS"
	DataTable   = "CSV_READINGS"
)

// AdapterName identifies this format in the registry.
const AdapterName = "csv"

// Adapter implements catalog.FormatAdapter for sensor-log CSV files.
type Adapter struct{}

// NewAdapter returns the CSV adapter.
func NewAdapter() *Adapter { return &Adapter{} }

// Name implements catalog.FormatAdapter.
func (a *Adapter) Name() string { return AdapterName }

// Tables implements catalog.FormatAdapter.
func (a *Adapter) Tables() (file, record, data catalog.TableDef) {
	file = catalog.TableDef{
		Name: FileTable,
		Kind: catalog.Metadata,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "sensor", Kind: vector.KindString},
			{Name: "site", Kind: vector.KindString},
			{Name: "quantity", Kind: vector.KindString},
			{Name: "size_bytes", Kind: vector.KindInt64},
			{Name: "segment_count", Kind: vector.KindInt64},
		},
	}
	record = catalog.TableDef{
		Name: RecordTable,
		Kind: catalog.Metadata,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "start_time", Kind: vector.KindTime},
			{Name: "end_time", Kind: vector.KindTime},
			{Name: "rows", Kind: vector.KindInt64},
		},
	}
	data = catalog.TableDef{
		Name: DataTable,
		Kind: catalog.ActualData,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "reading_time", Kind: vector.KindTime},
			{Name: "reading", Kind: vector.KindFloat64},
		},
	}
	return file, record, data
}

// URIColumn implements catalog.FormatAdapter.
func (a *Adapter) URIColumn() string { return "uri" }

// RecordIDColumn implements catalog.FormatAdapter.
func (a *Adapter) RecordIDColumn() string { return "record_id" }

// DataSpanColumn implements catalog.FormatAdapter.
func (a *Adapter) DataSpanColumn() string { return "reading_time" }

// RecordSpan implements catalog.FormatAdapter.
func (a *Adapter) RecordSpan(rm catalog.RecordMeta) (int64, int64, bool) {
	if len(rm.Values) < 4 {
		return 0, 0, false
	}
	return rm.Values[2].I, rm.Values[3].I, true
}

// FileSizeColumn, RowCountColumn and RecordSpanColumns implement the
// engine's EstimateHints extension.
func (a *Adapter) FileSizeColumn() string              { return "size_bytes" }
func (a *Adapter) RowCountColumn() string              { return "rows" }
func (a *Adapter) RecordSpanColumns() (string, string) { return "start_time", "end_time" }

// header is the parsed '#key: value' preamble.
type header struct {
	sensor, site, quantity string
	periodNS               int64
}

// segmentMeta is one '#segment' section discovered by the cheap scan.
type segmentMeta struct {
	id    int64
	start int64
	rows  int64
}

// scanFile reads the file's structure: header and segment boundaries.
// When wantData is false the reading values are never parsed — the
// metadata fast path.
func scanFile(path string, wantData bool) (header, []segmentMeta, [][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return header{}, nil, nil, err
	}
	defer f.Close()
	var h header
	h.periodNS = int64(time.Second)
	var segs []segmentMeta
	var data [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#segment") {
			parts := strings.Fields(line)
			if len(parts) != 3 {
				return h, nil, nil, fmt.Errorf("csvfmt: %s:%d: malformed segment header %q", path, lineNo, line)
			}
			id, err1 := strconv.ParseInt(parts[1], 10, 64)
			start, err2 := strconv.ParseInt(parts[2], 10, 64)
			if err1 != nil || err2 != nil {
				return h, nil, nil, fmt.Errorf("csvfmt: %s:%d: bad segment numbers", path, lineNo)
			}
			segs = append(segs, segmentMeta{id: id, start: start})
			if wantData {
				data = append(data, nil)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			key, val, ok := strings.Cut(line[1:], ":")
			if !ok {
				return h, nil, nil, fmt.Errorf("csvfmt: %s:%d: malformed header %q", path, lineNo, line)
			}
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "sensor":
				h.sensor = val
			case "site":
				h.site = val
			case "quantity":
				h.quantity = val
			case "period_ns":
				p, err := strconv.ParseInt(val, 10, 64)
				if err != nil || p <= 0 {
					return h, nil, nil, fmt.Errorf("csvfmt: %s:%d: bad period %q", path, lineNo, val)
				}
				h.periodNS = p
			}
			continue
		}
		// A reading line.
		if len(segs) == 0 {
			return h, nil, nil, fmt.Errorf("csvfmt: %s:%d: reading before any #segment", path, lineNo)
		}
		segs[len(segs)-1].rows++
		if wantData {
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				return h, nil, nil, fmt.Errorf("csvfmt: %s:%d: bad reading %q", path, lineNo, line)
			}
			data[len(data)-1] = append(data[len(data)-1], v)
		}
	}
	if err := sc.Err(); err != nil {
		return h, nil, nil, err
	}
	return h, segs, data, nil
}

func (a *Adapter) recordMeta(uri string, s segmentMeta, periodNS int64) catalog.RecordMeta {
	end := s.start
	if s.rows > 1 {
		end = s.start + (s.rows-1)*periodNS
	}
	return catalog.RecordMeta{
		URI:      uri,
		RecordID: s.id,
		Values: []vector.Value{
			vector.Str(uri),
			vector.Int64(s.id),
			vector.Time(s.start),
			vector.Time(end),
			vector.Int64(s.rows),
		},
	}
}

// ExtractMetadata implements catalog.FormatAdapter (structure-only scan).
func (a *Adapter) ExtractMetadata(path, uri string) (catalog.FileMeta, []catalog.RecordMeta, error) {
	h, segs, _, err := scanFile(path, false)
	if err != nil {
		return catalog.FileMeta{}, nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return catalog.FileMeta{}, nil, err
	}
	fm := catalog.FileMeta{
		URI: uri,
		Values: []vector.Value{
			vector.Str(uri),
			vector.Str(h.sensor),
			vector.Str(h.site),
			vector.Str(h.quantity),
			vector.Int64(st.Size()),
			vector.Int64(int64(len(segs))),
		},
	}
	rms := make([]catalog.RecordMeta, len(segs))
	for i, s := range segs {
		rms[i] = a.recordMeta(uri, s, h.periodNS)
	}
	return fm, rms, nil
}

// Mount implements catalog.FormatAdapter: parse readings and materialize
// timestamps.
func (a *Adapter) Mount(path, uri string, keep func(catalog.RecordMeta) bool) (*vector.Batch, error) {
	return catalog.CollectMount(a, path, uri, keep)
}

// MountStream implements catalog.FormatAdapter. A first structure-only
// pass (the same cheap scan metadata extraction uses) fixes the header
// and segment boundaries; the second pass then parses reading values
// segment by segment, skipping the value parse entirely for segments
// rejected by keep — a tighter σ∘mount than the materializing path ever
// had — and yields segment-aligned batches as it goes.
func (a *Adapter) MountStream(path, uri string, keep func(catalog.RecordMeta) bool, batchRows int, emit func(*vector.Batch) error) error {
	if batchRows <= 0 {
		batchRows = vector.DefaultBatchSize
	}
	h, segs, _, err := scanFile(path, false)
	if err != nil {
		return err
	}
	wanted := make([]bool, len(segs))
	for i, s := range segs {
		wanted[i] = keep == nil || keep(a.recordMeta(uri, s, h.periodNS))
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var uris []string
	var ids, times []int64
	var vals []float64
	flush := func() error {
		if len(uris) == 0 {
			return nil
		}
		b := vector.NewBatch(
			vector.FromString(uris),
			vector.FromInt64(ids),
			vector.FromTime(times),
			vector.FromFloat64(vals),
		)
		uris, ids, times, vals = nil, nil, nil, nil
		return emit(b)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	seg := -1       // index into segs of the segment being read
	row := int64(0) // reading index within the segment
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "#segment") {
				seg++
				row = 0
				if seg >= len(segs) {
					return fmt.Errorf("csvfmt: %s:%d: segment appeared after structure scan", path, lineNo)
				}
				// Segment alignment: flush before a segment that would
				// overflow; one oversized segment goes out alone.
				if len(uris) > 0 && int64(len(uris))+segs[seg].rows > int64(batchRows) {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			continue
		}
		if seg < 0 {
			return fmt.Errorf("csvfmt: %s:%d: reading before any #segment", path, lineNo)
		}
		if !wanted[seg] {
			continue // σ∘mount: rejected segments are never parsed
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return fmt.Errorf("csvfmt: %s:%d: bad reading %q", path, lineNo, line)
		}
		uris = append(uris, uri)
		ids = append(ids, segs[seg].id)
		times = append(times, segs[seg].start+row*h.periodNS)
		vals = append(vals, v)
		row++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// WriteFile generates a sensor CSV file; used by tests, examples and the
// generalization benchmark.
func WriteFile(path, sensor, site, quantity string, periodNS int64, segments map[int64][]float64, starts map[int64]int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "#sensor: %s\n#site: %s\n#quantity: %s\n#period_ns: %d\n", sensor, site, quantity, periodNS)
	// Deterministic segment order.
	var ids []int64
	for id := range segments {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		fmt.Fprintf(w, "#segment %d %d\n", id, starts[id])
		for _, v := range segments[id] {
			fmt.Fprintf(w, "%g\n", v)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
