package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement (with optional trailing semicolon).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSymbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: LIMIT needs a number, found %s", t)
		}
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.Text)
		}
		stmt.Limit = &n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias after AS, found %s", t)
		}
		p.next()
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return TableRef{}, fmt.Errorf("sql: expected table name, found %s", t)
	}
	p.next()
	tr := TableRef{Name: t.Text}
	if a := p.peek(); a.Kind == TokIdent {
		p.next()
		tr.Alias = a.Text
	} else if p.acceptKeyword("AS") {
		a := p.peek()
		if a.Kind != TokIdent {
			return TableRef{}, fmt.Errorf("sql: expected alias after AS, found %s", a)
		}
		p.next()
		tr.Alias = a.Text
	}
	return tr, nil
}

// Expression precedence, loosest first: OR, AND, NOT, comparison/BETWEEN,
// additive, multiplicative, unary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "AND",
			L: &Binary{Op: ">=", L: l, R: lo},
			R: &Binary{Op: "<=", L: l, R: hi},
		}, nil
	}
	if p.acceptKeyword("IN") {
		return p.parseInList(l, false)
	}
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		// lookahead for NOT IN
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "IN" {
			p.next()
			p.next()
			return p.parseInList(l, true)
		}
	}
	t := p.peek()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.Text, L: l, R: r}, nil
		}
	}
	return l, nil
}

// parseInList desugars x IN (a, b, c) into (x = a OR x = b OR x = c),
// and NOT IN into its negation.
func (p *parser) parseInList(l Expr, negate bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out Expr
	for {
		item, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		eq := &Binary{Op: "=", L: l, R: item}
		if out == nil {
			out = eq
		} else {
			out = &Binary{Op: "OR", L: out, R: eq}
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if negate {
		return &Unary{Op: "NOT", E: out}, nil
	}
	return out, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok {
			switch lit.Kind {
			case LitInt:
				return &Lit{Kind: LitInt, Int: -lit.Int}, nil
			case LitFloat:
				return &Lit{Kind: LitFloat, Float: -lit.Float}, nil
			}
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.Text)
			}
			return &Lit{Kind: LitFloat, Float: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.Text)
		}
		return &Lit{Kind: LitInt, Int: n}, nil
	case TokString:
		p.next()
		return &Lit{Kind: LitString, Str: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE", "FALSE":
			p.next()
			return &Lit{Kind: LitBool, Bool: t.Text == "TRUE"}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t)
	case TokIdent:
		p.next()
		// Function call?
		if p.acceptSymbol("(") {
			call := &Call{Name: strings.ToUpper(t.Text)}
			if p.acceptSymbol("*") {
				call.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptKeyword("DISTINCT") {
				call.Distinct = true
			}
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified identifier?
		if p.acceptSymbol(".") {
			c := p.peek()
			if c.Kind != TokIdent {
				return nil, fmt.Errorf("sql: expected column after %q., found %s", t.Text, c)
			}
			p.next()
			return &Ident{Qualifier: t.Text, Name: c.Text}, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}
