// Package sql implements the query front-end: a lexer, an AST and a
// recursive-descent parser for the SQL subset the paper's exploration
// queries use (SELECT with aggregates, multi-way JOIN ... ON, WHERE
// conjunctions, GROUP BY, ORDER BY, LIMIT).
//
// The two-stage paradigm deliberately "does not require any change in
// the querying front-end": this package knows nothing about metadata
// versus actual data; that distinction is applied later, in plan
// rewriting.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol
)

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep their case
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "ASC": true, "DESC": true,
	"INNER": true, "DISTINCT": true, "BETWEEN": true, "IN": true, "TRUE": true, "FALSE": true,
}

// Lex tokenizes the input, returning an error with position on any
// character it does not understand.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentChar(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n {
				ch := rune(input[i])
				if unicode.IsDigit(ch) {
					i++
				} else if ch == '.' && !seenDot && i+1 < n && unicode.IsDigit(rune(input[i+1])) {
					seenDot = true
					i++
				} else {
					break
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=":
				if two == "!=" {
					two = "<>"
				}
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', ';', '=', '<', '>', '+', '-', '*', '/':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
