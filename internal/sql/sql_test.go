package sql

import (
	"strings"
	"testing"
)

// query1 is the paper's Figure 2 verbatim.
const query1 = `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';`

func TestParseQuery1(t *testing.T) {
	stmt, err := Parse(query1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 1 {
		t.Fatalf("items = %d, want 1", len(stmt.Items))
	}
	call, ok := stmt.Items[0].E.(*Call)
	if !ok || call.Name != "AVG" {
		t.Fatalf("item 0 = %#v, want AVG call", stmt.Items[0].E)
	}
	tabs := stmt.Tables()
	if len(tabs) != 3 || tabs[0].Name != "F" || tabs[1].Name != "R" || tabs[2].Name != "D" {
		t.Fatalf("tables = %v", tabs)
	}
	on2, ok := stmt.Joins[1].On.(*Binary)
	if !ok || on2.Op != "AND" {
		t.Fatalf("second ON should be an AND of two equalities: %v", stmt.Joins[1].On)
	}
	if stmt.Where == nil {
		t.Fatal("WHERE lost")
	}
	// WHERE is six conjuncts.
	count := 0
	var walk func(e Expr)
	walk = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		count++
	}
	walk(stmt.Where)
	if count != 6 {
		t.Errorf("WHERE has %d conjuncts, want 6", count)
	}
}

func TestParseQuery2Shape(t *testing.T) {
	stmt, err := Parse(`SELECT D.sample_time, D.sample_value
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK'
		AND D.sample_time > '2010-01-12T22:15:00.000'
		AND D.sample_time < '2010-01-12T22:15:02.000'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	id, ok := stmt.Items[0].E.(*Ident)
	if !ok || id.Qualifier != "D" || id.Name != "sample_time" {
		t.Errorf("item 0 = %#v", stmt.Items[0].E)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	stmt, err := Parse(`SELECT F.station, COUNT(*) AS n FROM F
		GROUP BY F.station ORDER BY n DESC, F.station ASC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 2 {
		t.Fatalf("group/order = %d/%d", len(stmt.GroupBy), len(stmt.OrderBy))
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Error("DESC/ASC flags wrong")
	}
	if stmt.Limit == nil || *stmt.Limit != 5 {
		t.Error("LIMIT lost")
	}
	if stmt.Items[1].Alias != "n" {
		t.Errorf("alias = %q", stmt.Items[1].Alias)
	}
}

func TestParseAliases(t *testing.T) {
	stmt, err := Parse(`SELECT f.station FROM F f JOIN R r ON f.uri = r.uri`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From.Alias != "f" || stmt.Joins[0].Table.Alias != "r" {
		t.Errorf("aliases = %q, %q", stmt.From.Alias, stmt.Joins[0].Table.Alias)
	}
	if stmt.From.Binding() != "f" {
		t.Error("Binding should prefer alias")
	}
}

func TestParseBetween(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM T WHERE x BETWEEN 1 AND 5`)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := stmt.Where.(*Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("BETWEEN should desugar to AND: %v", stmt.Where)
	}
	lo := b.L.(*Binary)
	hi := b.R.(*Binary)
	if lo.Op != ">=" || hi.Op != "<=" {
		t.Errorf("desugared ops = %s, %s", lo.Op, hi.Op)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM T WHERE a = 1 OR b = 2 AND c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := stmt.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top must be OR: %v", stmt.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "AND" {
		t.Errorf("AND must bind tighter: %v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT a + b * c FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	add := stmt.Items[0].E.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top = %s", add.Op)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Error("* must bind tighter than +")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM T WHERE x > -5 AND y < -2.5`)
	if err != nil {
		t.Fatal(err)
	}
	and := stmt.Where.(*Binary)
	l := and.L.(*Binary).R.(*Lit)
	if l.Kind != LitInt || l.Int != -5 {
		t.Errorf("literal = %+v", l)
	}
	r := and.R.(*Binary).R.(*Lit)
	if r.Kind != LitFloat || r.Float != -2.5 {
		t.Errorf("literal = %+v", r)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM T WHERE s = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	lit := stmt.Where.(*Binary).R.(*Lit)
	if lit.Str != "it's" {
		t.Errorf("escaped string = %q", lit.Str)
	}
}

func TestParseComments(t *testing.T) {
	stmt, err := Parse("SELECT x -- the column\nFROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 1 {
		t.Error("comment broke parse")
	}
}

func TestParseStar(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM F`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Items[0].Star {
		t.Error("star item lost")
	}
	stmt, err = Parse(`SELECT COUNT(*) FROM F`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Items[0].E.(*Call).Star {
		t.Error("COUNT(*) star lost")
	}
}

func TestParseCountDistinct(t *testing.T) {
	stmt, err := Parse(`SELECT COUNT(DISTINCT uri) FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	c := stmt.Items[0].E.(*Call)
	if !c.Distinct || len(c.Args) != 1 {
		t.Errorf("call = %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM T WHERE",
		"SELECT x FROM T JOIN",
		"SELECT x FROM T JOIN U",           // missing ON
		"SELECT x FROM T LIMIT x",          // non-numeric limit
		"SELECT x FROM T WHERE s = 'open",  // unterminated string
		"SELECT x FROM T; SELECT y FROM T", // trailing garbage
		"SELECT x FROM T WHERE a = = 1",
		"SELECT x FROM T GROUP x",
		"SELECT x FROM T WHERE x @ 3",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestStringRoundTripParses(t *testing.T) {
	stmt, err := Parse(query1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(stmt.String())
	if err != nil {
		t.Fatalf("canonical form %q does not reparse: %v", stmt.String(), err)
	}
	if again.String() != stmt.String() {
		t.Error("canonical form not a fixed point")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 7 {
		t.Errorf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	stmt, err := Parse(`select x from T where x > 1 limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Limit == nil || *stmt.Limit != 3 {
		t.Error("lowercase keywords failed")
	}
	if !strings.Contains(stmt.String(), "SELECT") {
		t.Error("canonical form should upper keywords")
	}
}

func TestParseInList(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM T WHERE s IN ('a', 'b', 'c')`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := stmt.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("IN should desugar to OR chain: %v", stmt.Where)
	}
	inner, ok := or.L.(*Binary)
	if !ok || inner.Op != "OR" {
		t.Fatalf("three-element IN needs nested OR: %v", or.L)
	}
	if eq := or.R.(*Binary); eq.Op != "=" || eq.R.(*Lit).Str != "c" {
		t.Errorf("last disjunct = %v", or.R)
	}
}

func TestParseNotInList(t *testing.T) {
	stmt, err := Parse(`SELECT x FROM T WHERE s NOT IN (1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	not, ok := stmt.Where.(*Unary)
	if !ok || not.Op != "NOT" {
		t.Fatalf("NOT IN should desugar to NOT(OR): %v", stmt.Where)
	}
	if or := not.E.(*Binary); or.Op != "OR" {
		t.Errorf("inner = %v", not.E)
	}
}

func TestParseInErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT x FROM T WHERE s IN`,
		`SELECT x FROM T WHERE s IN ()`,
		`SELECT x FROM T WHERE s IN ('a'`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}
