package sql

import (
	"fmt"
	"strings"
)

// Expr is an unbound expression AST node. Binding to column positions
// happens in internal/plan.
type Expr interface {
	exprNode()
	String() string
}

// Ident is a possibly-qualified column reference: name or qualifier.name.
type Ident struct {
	Qualifier string // table name or alias; empty if unqualified
	Name      string
}

func (*Ident) exprNode() {}

func (e *Ident) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// LitKind classifies literals.
type LitKind int

// Literal kinds. String literals may later be coerced to timestamps at
// bind time, depending on the column they are compared with.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
	LitBool
)

// Lit is a literal constant.
type Lit struct {
	Kind  LitKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

func (*Lit) exprNode() {}

func (e *Lit) String() string {
	switch e.Kind {
	case LitInt:
		return fmt.Sprintf("%d", e.Int)
	case LitFloat:
		return fmt.Sprintf("%g", e.Float)
	case LitBool:
		return fmt.Sprintf("%t", e.Bool)
	default:
		return "'" + e.Str + "'"
	}
}

// Binary is a binary operation; Op is one of = <> < <= > >= AND OR + - * /.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) exprNode() {}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*Unary) exprNode() {}

func (e *Unary) String() string {
	if e.Op == "NOT" {
		return "NOT " + e.E.String()
	}
	return "-" + e.E.String()
}

// Call is a function call; aggregates (AVG, SUM, COUNT, MIN, MAX) are the
// supported functions. Star marks COUNT(*).
type Call struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*Call) exprNode() {}

func (e *Call) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	E     Expr
	Alias string
	Star  bool // bare '*'
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the table is referred to by in the query.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON ... step.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    Expr
	Desc bool
}

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   *int64
}

// Tables returns every table referenced in FROM/JOIN, in syntactic order.
func (s *SelectStmt) Tables() []TableRef {
	out := []TableRef{s.From}
	for _, j := range s.Joins {
		out = append(out, j.Table)
	}
	return out
}

// String reassembles a canonical form of the query (for logs and tests).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.E.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	sb.WriteString(" FROM " + s.From.Name)
	if s.From.Alias != "" {
		sb.WriteString(" " + s.From.Alias)
	}
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Table.Name)
		if j.Table.Alias != "" {
			sb.WriteString(" " + j.Table.Alias)
		}
		sb.WriteString(" ON " + j.On.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		keys := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			keys[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(keys, ", "))
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.E.String()
			if o.Desc {
				keys[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if s.Limit != nil {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", *s.Limit))
	}
	return sb.String()
}
