// Package waveform generates deterministic synthetic seismograms and
// provides the STA/LTA event detector used by the example applications.
//
// The paper's evaluation uses real mSEED waveforms from the ORFEUS
// repository, which we cannot redistribute. What the experiments actually
// depend on is the *statistical shape* of the data: band-limited
// background noise with small sample-to-sample deltas (so Steim-style
// delta compression achieves its usual ~4x ratio) punctuated by occasional
// high-amplitude seismic events (so short-term-average queries have
// something to find). This package synthesizes exactly that, seeded
// deterministically per (network, station, channel, day) so every run of
// the repository generator produces byte-identical files.
package waveform

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Params controls waveform synthesis.
type Params struct {
	// SampleRate is samples per second (seismic broadband channels
	// commonly run at 20-40 Hz).
	SampleRate float64
	// NoiseAmp scales the background microseism noise.
	NoiseAmp float64
	// EventRate is the expected number of seismic events per hour.
	EventRate float64
	// EventAmp scales event amplitudes relative to noise.
	EventAmp float64
}

// DefaultParams mirrors a 40 Hz broadband channel with occasional events.
func DefaultParams() Params {
	return Params{SampleRate: 40, NoiseAmp: 120, EventRate: 0.5, EventAmp: 40}
}

// Seed derives a deterministic PRNG seed from a stream identity.
func Seed(network, station, channel string, day int) int64 {
	h := fnv.New64a()
	h.Write([]byte(network))
	h.Write([]byte{0})
	h.Write([]byte(station))
	h.Write([]byte{0})
	h.Write([]byte(channel))
	h.Write([]byte{0, byte(day), byte(day >> 8), byte(day >> 16), byte(day >> 24)})
	return int64(h.Sum64())
}

// Synthesize produces n int32 samples of a seismogram. The generator is
// an AR(1)-filtered Gaussian noise floor (which yields small deltas,
// matching the compressibility of real microseism data) plus Ricker
// wavelet bursts for events.
func Synthesize(seed int64, n int, p Params) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)

	// AR(1) background: x[i] = a*x[i-1] + noise. a close to 1 gives the
	// low-frequency microseism character.
	const a = 0.97
	state := 0.0
	for i := 0; i < n; i++ {
		state = a*state + rng.NormFloat64()*p.NoiseAmp*(1-a)*4
		out[i] = int32(math.Round(state))
	}

	// Poisson-ish events: expected events = rate * duration_hours.
	durHours := float64(n) / p.SampleRate / 3600
	expected := p.EventRate * durHours
	nEvents := 0
	for expected > 0 {
		if rng.Float64() < expected {
			nEvents++
		}
		expected--
	}
	for e := 0; e < nEvents; e++ {
		center := rng.Intn(n)
		// Event dominant frequency 1-8 Hz, duration a few seconds.
		freq := 1 + rng.Float64()*7
		amp := p.NoiseAmp * p.EventAmp * (0.5 + rng.Float64())
		addRicker(out, center, freq, p.SampleRate, amp)
	}
	return out
}

// addRicker adds a Ricker (Mexican-hat) wavelet centred at sample c.
func addRicker(samples []int32, c int, freq, rate, amp float64) {
	// Ricker: (1 - 2π²f²t²) e^(−π²f²t²); support ≈ ±1.5/f seconds.
	halfWidth := int(1.5 / freq * rate)
	if halfWidth < 2 {
		halfWidth = 2
	}
	pf := math.Pi * math.Pi * freq * freq
	for i := -halfWidth; i <= halfWidth; i++ {
		j := c + i
		if j < 0 || j >= len(samples) {
			continue
		}
		t := float64(i) / rate
		v := (1 - 2*pf*t*t) * math.Exp(-pf*t*t) * amp
		s := float64(samples[j]) + v
		if s > math.MaxInt32 {
			s = math.MaxInt32
		}
		if s < math.MinInt32 {
			s = math.MinInt32
		}
		samples[j] = int32(s)
	}
}

// Stats summarizes a waveform; used by derived-metadata computation.
type Stats struct {
	Count    int
	Min, Max int32
	Mean     float64
	AbsMean  float64
}

// Summarize computes waveform statistics in one pass.
func Summarize(samples []int32) Stats {
	st := Stats{Count: len(samples)}
	if len(samples) == 0 {
		return st
	}
	st.Min, st.Max = samples[0], samples[0]
	var sum, absSum float64
	for _, s := range samples {
		if s < st.Min {
			st.Min = s
		}
		if s > st.Max {
			st.Max = s
		}
		sum += float64(s)
		absSum += math.Abs(float64(s))
	}
	st.Mean = sum / float64(len(samples))
	st.AbsMean = absSum / float64(len(samples))
	return st
}
