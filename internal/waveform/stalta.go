package waveform

// STA/LTA (short-term average over long-term average) is the classic
// seismic event detector: the ratio of a short moving average of signal
// energy to a long one spikes when an event arrives. Query 1 of the paper
// is the database formulation of the short-term-average step; this
// package-level implementation is used by the examples to post-process
// retrieved waveforms.

// Trigger is a detected event interval, in sample indexes.
type Trigger struct {
	Start, End int
	PeakRatio  float64
}

// STALTAParams configures the detector.
type STALTAParams struct {
	// STAWindow and LTAWindow are window lengths in samples.
	STAWindow, LTAWindow int
	// OnRatio starts a trigger, OffRatio ends it.
	OnRatio, OffRatio float64
}

// DefaultSTALTA returns parameters typical for 40 Hz data: 2 s STA,
// 30 s LTA, trigger on at 4x, off at 1.5x.
func DefaultSTALTA(rate float64) STALTAParams {
	return STALTAParams{
		STAWindow: int(2 * rate),
		LTAWindow: int(30 * rate),
		OnRatio:   4,
		OffRatio:  1.5,
	}
}

// Detect runs the STA/LTA detector over the samples and returns the
// triggered intervals.
func Detect(samples []int32, p STALTAParams) []Trigger {
	n := len(samples)
	if p.STAWindow <= 0 || p.LTAWindow <= p.STAWindow || n < p.LTAWindow {
		return nil
	}
	// Prefix sums of |x| for O(1) window averages.
	prefix := make([]float64, n+1)
	for i, s := range samples {
		v := float64(s)
		if v < 0 {
			v = -v
		}
		prefix[i+1] = prefix[i] + v
	}
	avg := func(lo, hi int) float64 { // mean of |x| over [lo, hi)
		if hi <= lo {
			return 0
		}
		return (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}

	var out []Trigger
	var cur *Trigger
	for i := p.LTAWindow; i < n; i++ {
		sta := avg(i-p.STAWindow, i)
		lta := avg(i-p.LTAWindow, i)
		if lta == 0 {
			continue
		}
		ratio := sta / lta
		switch {
		case cur == nil && ratio >= p.OnRatio:
			cur = &Trigger{Start: i, End: i, PeakRatio: ratio}
		case cur != nil && ratio >= p.OffRatio:
			cur.End = i
			if ratio > cur.PeakRatio {
				cur.PeakRatio = ratio
			}
		case cur != nil:
			out = append(out, *cur)
			cur = nil
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}
