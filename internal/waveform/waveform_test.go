package waveform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(123, 1000, DefaultParams())
	b := Synthesize(123, 1000, DefaultParams())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	c := Synthesize(124, 1000, DefaultParams())
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical waveforms")
	}
}

func TestSeedDistinguishesStreams(t *testing.T) {
	s1 := Seed("NL", "ISK", "BHE", 12)
	s2 := Seed("NL", "ISK", "BHN", 12)
	s3 := Seed("NL", "ISK", "BHE", 13)
	s4 := Seed("NL", "ISKB", "HE", 12) // boundary confusion must not collide
	if s1 == s2 || s1 == s3 || s1 == s4 {
		t.Error("seeds collide across distinct streams")
	}
	if s1 != Seed("NL", "ISK", "BHE", 12) {
		t.Error("seed not deterministic")
	}
}

func TestSynthesizeSmallDeltas(t *testing.T) {
	// The compressibility claim: the noise floor must have mostly 1-byte
	// deltas or Steim-style compression would be pointless.
	samples := Synthesize(7, 50000, DefaultParams())
	small := 0
	for i := 1; i < len(samples); i++ {
		d := int64(samples[i]) - int64(samples[i-1])
		if d >= -128 && d <= 127 {
			small++
		}
	}
	if frac := float64(small) / float64(len(samples)-1); frac < 0.80 {
		t.Errorf("only %.0f%% of deltas fit one byte; waveform too rough", frac*100)
	}
}

func TestSynthesizeHasEvents(t *testing.T) {
	// With a high event rate over a long window, peak amplitude should far
	// exceed the noise floor.
	p := DefaultParams()
	p.EventRate = 20 // per hour
	samples := Synthesize(99, int(p.SampleRate)*3600, p)
	st := Summarize(samples)
	peak := math.Max(math.Abs(float64(st.Min)), math.Abs(float64(st.Max)))
	if peak < 5*st.AbsMean {
		t.Errorf("peak %.0f vs abs-mean %.1f: no visible events", peak, st.AbsMean)
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]int32{-3, 0, 3, 6})
	if st.Count != 4 || st.Min != -3 || st.Max != 6 || st.Mean != 1.5 || st.AbsMean != 3 {
		t.Errorf("Summarize = %+v", st)
	}
	empty := Summarize(nil)
	if empty.Count != 0 {
		t.Error("empty summarize wrong")
	}
}

func TestSummarizeMatchesNaiveProperty(t *testing.T) {
	f := func(xs []int32) bool {
		st := Summarize(xs)
		if len(xs) == 0 {
			return st.Count == 0
		}
		min, max := xs[0], xs[0]
		var sum float64
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			sum += float64(x)
		}
		return st.Min == min && st.Max == max && math.Abs(st.Mean-sum/float64(len(xs))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetectFindsInjectedEvent(t *testing.T) {
	rate := 40.0
	n := int(rate) * 600 // 10 minutes
	samples := make([]int32, n)
	// Gentle noise floor.
	for i := range samples {
		samples[i] = int32(i % 7)
	}
	// Big event at minute 5.
	addRicker(samples, n/2, 4, rate, 50000)
	trigs := Detect(samples, DefaultSTALTA(rate))
	if len(trigs) == 0 {
		t.Fatal("no trigger on an obvious event")
	}
	found := false
	for _, tr := range trigs {
		if tr.Start <= n/2+int(rate) && tr.End >= n/2-int(rate)*3 {
			found = true
		}
	}
	if !found {
		t.Errorf("triggers %v do not cover the event at %d", trigs, n/2)
	}
}

func TestDetectQuietData(t *testing.T) {
	samples := make([]int32, 40*120)
	for i := range samples {
		samples[i] = int32(i%5) + 1
	}
	if trigs := Detect(samples, DefaultSTALTA(40)); len(trigs) != 0 {
		t.Errorf("quiet data triggered %d times", len(trigs))
	}
}

func TestDetectDegenerateParams(t *testing.T) {
	samples := make([]int32, 100)
	if Detect(samples, STALTAParams{STAWindow: 0, LTAWindow: 10, OnRatio: 2, OffRatio: 1}) != nil {
		t.Error("zero STA window should detect nothing")
	}
	if Detect(samples, STALTAParams{STAWindow: 20, LTAWindow: 10, OnRatio: 2, OffRatio: 1}) != nil {
		t.Error("LTA <= STA should detect nothing")
	}
	if Detect(samples[:5], DefaultSTALTA(40)) != nil {
		t.Error("short data should detect nothing")
	}
}

func TestRickerClampsToInt32(t *testing.T) {
	samples := []int32{math.MaxInt32 - 10, math.MaxInt32 - 10, math.MaxInt32 - 10, math.MaxInt32 - 10, math.MaxInt32 - 10}
	addRicker(samples, 2, 4, 40, 1e12)
	for i, s := range samples {
		if s < 0 && i == 2 {
			t.Error("ricker overflowed int32 instead of clamping")
		}
	}
}
