package admission

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// acquireAsync starts an Acquire in a goroutine and returns a channel
// that receives its error when it returns.
func acquireAsync(g *Gate, ctx context.Context, session string, n int64) chan error {
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, session, n) }()
	return done
}

// waitQueueDepth blocks until the gate's queue holds want tickets.
func waitQueueDepth(t *testing.T, g *Gate, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", want, g.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustDone(t *testing.T, done chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("acquire did not return")
		return nil
	}
}

func TestAcquireReleaseAccounting(t *testing.T) {
	g := New(Config{BudgetBytes: 100})
	if err := g.Acquire(context.Background(), "a", 60); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), "b", 40); err != nil {
		t.Fatal(err)
	}
	if got := g.Used(); got != 100 {
		t.Errorf("used = %d, want 100", got)
	}
	g.Release("a", 60)
	g.Release("b", 40)
	st := g.Stats()
	if st.UsedBytes != 0 || st.PeakBytes != 100 {
		t.Errorf("used=%d peak=%d, want 0 and 100", st.UsedBytes, st.PeakBytes)
	}
	if st.PerSession["a"].Acquires != 1 || st.PerSession["a"].HeldBytes != 0 {
		t.Errorf("session a stats = %+v", st.PerSession["a"])
	}
}

// TestCancelledWaiterReleasesNothing is the satellite-1 regression: a
// waiter cancelled while the gate is full must return promptly, leave
// the queue, and leak no bytes it never held.
func TestCancelledWaiterReleasesNothing(t *testing.T) {
	g := New(Config{BudgetBytes: 100})
	if err := g.Acquire(context.Background(), "holder", 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := acquireAsync(g, ctx, "victim", 50)
	waitQueueDepth(t, g, 1)
	cancel()
	if err := mustDone(t, done); err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	st := g.Stats()
	if st.QueueDepth != 0 || st.UsedBytes != 100 || st.Cancelled != 1 {
		t.Errorf("after cancel: depth=%d used=%d cancelled=%d", st.QueueDepth, st.UsedBytes, st.Cancelled)
	}
	if vs := st.PerSession["victim"]; vs.HeldBytes != 0 || vs.Cancelled != 1 {
		t.Errorf("victim stats = %+v", vs)
	}
	// The gate stays healthy: release the holder, a new acquire flows.
	g.Release("holder", 100)
	if err := g.Acquire(context.Background(), "next", 100); err != nil {
		t.Fatal(err)
	}
}

// TestCancelledHeadUnblocksTail: cancelling a budget-blocked queue head
// must hand the scan to the tickets queued behind it.
func TestCancelledHeadUnblocksTail(t *testing.T) {
	g := New(Config{BudgetBytes: 100})
	if err := g.Acquire(context.Background(), "holder", 60); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	head := acquireAsync(g, ctx, "big", 90)
	waitQueueDepth(t, g, 1)
	tail := acquireAsync(g, context.Background(), "small", 40)
	waitQueueDepth(t, g, 2)
	cancel()
	if err := mustDone(t, head); err != context.Canceled {
		t.Fatalf("head returned %v", err)
	}
	if err := mustDone(t, tail); err != nil {
		t.Fatalf("tail blocked after head cancelled: %v", err)
	}
}

// TestFIFONoLeapfrog is the satellite-2 regression: N small acquirers
// queued behind one oversized waiter must not pass it.
func TestFIFONoLeapfrog(t *testing.T) {
	g := New(Config{BudgetBytes: 100})
	if err := g.Acquire(context.Background(), "holder", 90); err != nil {
		t.Fatal(err)
	}
	bigDone := acquireAsync(g, context.Background(), "big", 50)
	waitQueueDepth(t, g, 1)
	const smalls = 5
	smallDone := make([]chan error, smalls)
	for i := range smallDone {
		// Each small (5 bytes) WOULD fit the budget right now (90+5 <=
		// 100): a Broadcast gate would admit them all past big.
		smallDone[i] = acquireAsync(g, context.Background(), "small", 5)
		waitQueueDepth(t, g, 2+i)
	}
	// Nobody moves while big is budget-blocked at the head.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-bigDone:
		t.Fatal("big admitted while budget full")
	default:
	}
	for i, d := range smallDone {
		select {
		case <-d:
			t.Fatalf("small %d leapfrogged the blocked head", i)
		default:
		}
	}
	if got := g.Stats().StarvationAvoided; got == 0 {
		t.Error("StarvationAvoided = 0, want > 0 (smalls held back behind the head)")
	}
	// Handoff: the head goes first, then the smalls (50 + 5*5 <= 100).
	g.Release("holder", 90)
	if err := mustDone(t, bigDone); err != nil {
		t.Fatal(err)
	}
	for i, d := range smallDone {
		if err := mustDone(t, d); err != nil {
			t.Fatalf("small %d: %v", i, err)
		}
	}
	if got := g.Used(); got != 75 {
		t.Errorf("used = %d, want 75", got)
	}
}

func TestOversizedRequestAdmittedAlone(t *testing.T) {
	g := New(Config{BudgetBytes: 100})
	if err := g.Acquire(context.Background(), "a", 10); err != nil {
		t.Fatal(err)
	}
	done := acquireAsync(g, context.Background(), "big", 500)
	waitQueueDepth(t, g, 1)
	g.Release("a", 10)
	if err := mustDone(t, done); err != nil {
		t.Fatal(err)
	}
	if got := g.Used(); got != 500 {
		t.Errorf("used = %d, want the oversized request alone", got)
	}
	g.Release("big", 500)
}

// TestQuotaBlocksOnlyItself: a session at its quota is passed over in
// the admission scan; sessions queued behind it are admitted.
func TestQuotaBlocksOnlyItself(t *testing.T) {
	g := New(Config{BudgetBytes: 100, SessionQuotaBytes: 40})
	if err := g.Acquire(context.Background(), "greedy", 40); err != nil {
		t.Fatal(err)
	}
	greedyMore := acquireAsync(g, context.Background(), "greedy", 20)
	waitQueueDepth(t, g, 1)
	// Other queued BEHIND the quota-blocked greedy ticket still flows.
	if err := g.Acquire(context.Background(), "other", 30); err != nil {
		t.Fatalf("other blocked behind a quota-blocked ticket: %v", err)
	}
	select {
	case <-greedyMore:
		t.Fatal("greedy exceeded its quota")
	default:
	}
	st := g.Stats()
	if st.PerSession["greedy"].QuotaBlocked == 0 {
		t.Error("greedy QuotaBlocked = 0, want > 0")
	}
	if st.StarvationAvoided == 0 {
		t.Error("StarvationAvoided = 0, want > 0 (other admitted past greedy)")
	}
	// Only greedy's own release unblocks greedy.
	g.Release("greedy", 40)
	if err := mustDone(t, greedyMore); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaAndBudgetBlockedHeadDoesNotStallQueue: a head ticket blocked
// by BOTH its quota and the budget is still a quota block — only its
// own session's releases can ever admit it, so it must be skipped, not
// treated as a strict-FIFO budget head that stalls everyone behind it.
func TestQuotaAndBudgetBlockedHeadDoesNotStallQueue(t *testing.T) {
	g := New(Config{BudgetBytes: 1000, SessionQuotaBytes: 400})
	if err := g.Acquire(context.Background(), "greedy", 400); err != nil {
		t.Fatal(err)
	}
	// 400 held + 700 exceeds the budget too: both limits block it.
	greedyBig := acquireAsync(g, context.Background(), "greedy", 700)
	waitQueueDepth(t, g, 1)
	other := acquireAsync(g, context.Background(), "other", 300)
	if err := mustDone(t, other); err != nil {
		t.Fatalf("other stalled behind a quota-blocked head: %v", err)
	}
	select {
	case <-greedyBig:
		t.Fatal("greedy admitted over its quota")
	default:
	}
	// Greedy's own release frees its quota (oversized-for-quota alone)
	// and 300+700 fits the budget.
	g.Release("greedy", 400)
	if err := mustDone(t, greedyBig); err != nil {
		t.Fatal(err)
	}
}

func TestMaxShareDerivesQuota(t *testing.T) {
	g := New(Config{BudgetBytes: 100, MaxSessionShare: 0.5})
	if got := g.Quota(); got != 50 {
		t.Fatalf("effective quota = %d, want 50", got)
	}
	// A request larger than the quota is admitted when the session holds
	// nothing (no self-deadlock).
	if err := g.Acquire(context.Background(), "s", 80); err != nil {
		t.Fatal(err)
	}
	g.Release("s", 80)
}

func TestDoubleReleasePanics(t *testing.T) {
	g := New(Config{BudgetBytes: 100})
	if err := g.Acquire(context.Background(), "s", 50); err != nil {
		t.Fatal(err)
	}
	g.Release("s", 50)
	defer func() {
		if recover() == nil {
			t.Error("second release of the same bytes did not panic")
		}
	}()
	g.Release("s", 50)
}

// TestRandomizedMultiSessionDifferential runs random acquire/release
// traffic across sessions against a reference model of the gate's
// invariants, under -race: the budget is never exceeded (every request
// fits the budget, so the oversized-alone escape never applies), no
// session exceeds its quota, and everything drains to zero.
func TestRandomizedMultiSessionDifferential(t *testing.T) {
	const (
		budget   = 1000
		quota    = 400
		sessions = 4
		workers  = 3
		rounds   = 60
	)
	g := New(Config{BudgetBytes: budget, SessionQuotaBytes: quota})

	// model tracks what the test itself granted, independently of the
	// gate's internal accounting.
	var modelMu sync.Mutex
	modelHeld := make(map[string]int64)
	var modelTotal int64
	var granted int64

	stop := make(chan struct{})
	violations := make(chan string, 16)
	go func() {
		// Invariant monitor: samples the gate concurrently with traffic.
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := g.Stats()
			if st.UsedBytes > budget {
				violations <- "budget exceeded"
				return
			}
			for name, s := range st.PerSession {
				if s.HeldBytes > quota {
					violations <- "quota exceeded by " + name
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		name := string(rune('a' + s))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < rounds; i++ {
					n := 1 + rng.Int63n(quota) // always fits budget and quota alone
					if err := g.Acquire(context.Background(), name, n); err != nil {
						violations <- "acquire error: " + err.Error()
						return
					}
					modelMu.Lock()
					modelHeld[name] += n
					modelTotal += n
					granted++
					modelMu.Unlock()
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					modelMu.Lock()
					modelHeld[name] -= n
					modelTotal -= n
					modelMu.Unlock()
					g.Release(name, n)
				}
			}(int64(s*100 + w))
		}
	}
	wg.Wait()
	close(stop)
	select {
	case v := <-violations:
		t.Fatal(v)
	default:
	}

	st := g.Stats()
	if st.UsedBytes != 0 || modelTotal != 0 {
		t.Errorf("drained: gate=%d model=%d, want 0", st.UsedBytes, modelTotal)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth = %d after drain", st.QueueDepth)
	}
	var acquires int64
	for name, s := range st.PerSession {
		if s.HeldBytes != modelHeld[name] {
			t.Errorf("session %s held: gate=%d model=%d", name, s.HeldBytes, modelHeld[name])
		}
		acquires += s.Acquires
	}
	if acquires != granted {
		t.Errorf("acquires: gate=%d model=%d", acquires, granted)
	}
}

// TestAcquireGrantRacingCancel hammers the grant/cancel race: whichever
// side wins, an error return must leave nothing held.
func TestAcquireGrantRacingCancel(t *testing.T) {
	g := New(Config{BudgetBytes: 10})
	for i := 0; i < 200; i++ {
		if err := g.Acquire(context.Background(), "holder", 10); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := acquireAsync(g, ctx, "racer", 10)
		go g.Release("holder", 10) // may grant racer...
		cancel()                   // ...while this cancels it
		if err := mustDone(t, done); err != nil {
			// Cancel won: nothing held by racer.
			if got := g.SessionHeld("racer"); got != 0 {
				t.Fatalf("iteration %d: cancelled racer holds %d", i, got)
			}
		} else {
			g.Release("racer", 10)
		}
		// Either way the gate must be empty again.
		deadline := time.Now().Add(5 * time.Second)
		for g.Used() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("iteration %d: gate never drained (used %d)", i, g.Used())
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}
