// Package admission is the engine's shared fairness-aware byte-budget
// gate: the one admission abstraction behind both the mount service's
// in-flight extraction budget and the result cache's resident-bytes
// budget. It replaces the hand-rolled condition-variable gates those
// layers used to carry, which had two load-bearing bugs:
//
//   - Uncancellable waits: a request blocked on the budget had no way
//     out, even though the work it was admitting (flights, queries) was
//     already cancel-aware. Acquire takes a context.Context and unblocks
//     promptly on cancellation, holding nothing it was never granted.
//   - Broadcast starvation: Broadcast-driven wait loops re-race every
//     waiter on each release, so a stream of small requests can leapfrog
//     a large waiter forever. The gate keeps a FIFO ticket queue with
//     handoff wakeups: releases admit from the queue head, and a later
//     request never passes an earlier one that is still blocked on the
//     byte budget.
//
// On top of the budget the gate enforces per-session quotas (an absolute
// byte cap, a fractional max share of the budget, or both): a session at
// its quota blocks only itself — its tickets are passed over in the
// admission scan, never the tickets queued behind them — so one greedy
// dashboard cannot hold the whole budget while interactive explorers
// wait.
//
// Two usage modes share the same accounting:
//
//   - Blocking: Acquire/Release, used by the mount service, where
//     admission backpressures extraction.
//   - Charging: Charge/Release, used by the result cache, where entries
//     are always accepted and the budget instead drives eviction;
//     OverShare tells the evictor whether a session's resident bytes
//     exceed its quota, so a fat session's entries are evicted first.
package admission

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Config parameterizes a Gate.
type Config struct {
	// BudgetBytes bounds the total bytes held at once; <= 0 means
	// unlimited (the gate still tracks usage and per-session stats). A
	// single request larger than the whole budget is admitted only when
	// nothing else is held, so it can never deadlock but may exceed the
	// budget alone.
	BudgetBytes int64
	// SessionQuotaBytes caps the bytes one session may hold at once;
	// <= 0 means no absolute cap. A single request larger than the quota
	// is admitted when the session holds nothing, mirroring the
	// oversized-budget rule.
	SessionQuotaBytes int64
	// MaxSessionShare caps one session's holdings as a fraction of
	// BudgetBytes (0 < share <= 1); <= 0 means no share cap. When both
	// this and SessionQuotaBytes are set, the smaller cap wins.
	MaxSessionShare float64
}

// SessionStats is one session's view of the gate.
type SessionStats struct {
	// HeldBytes / PeakHeldBytes track the session's current and peak
	// admitted bytes.
	HeldBytes     int64
	PeakHeldBytes int64
	// Acquires counts granted admissions (including charges); Waits
	// counts acquires that had to queue.
	Acquires int64
	Waits    int64
	// Cancelled counts waits abandoned via context cancellation.
	Cancelled int64
	// QuotaBlocked counts tickets passed over in the admission scan
	// because this session was at its quota (each ticket counted once).
	QuotaBlocked int64
	// WaitTotal / WaitMax aggregate time spent blocked in Acquire.
	WaitTotal time.Duration
	WaitMax   time.Duration
}

// Stats is a gate-wide snapshot.
type Stats struct {
	// UsedBytes / PeakBytes track total admitted bytes.
	UsedBytes int64
	PeakBytes int64
	// QueueDepth is the number of tickets currently blocked in Acquire.
	QueueDepth int
	// Waits counts acquires that had to queue; Cancelled counts waits
	// abandoned via context cancellation.
	Waits     int64
	Cancelled int64
	// StarvationAvoided counts admission scans in which a later, smaller
	// request was held back behind a budget-blocked queue head — the
	// wakeup races a Broadcast-driven gate would have lost, starving the
	// head — plus admissions granted past an earlier quota-blocked
	// ticket (the quota protecting everyone else from that session).
	StarvationAvoided int64
	// PerSession maps session identity to its counters.
	PerSession map[string]SessionStats
}

// Gate is the fairness-aware budget gate. It is safe for concurrent use.
type Gate struct {
	cfg   Config
	quota int64 // effective per-session cap; 0 = none

	mu       sync.Mutex
	used     int64
	peak     int64
	queue    []*ticket // FIFO; nil-compacted on removal
	sessions map[string]*sessionState

	waits     int64
	cancelled int64
	avoided   int64
}

type sessionState struct {
	name string
	SessionStats
}

// ticket is one blocked Acquire.
type ticket struct {
	sess    *sessionState
	n       int64
	ready   chan struct{} // closed under mu when granted
	granted bool
	skipped bool // counted in QuotaBlocked already
}

// New returns a gate over the configuration.
func New(cfg Config) *Gate {
	g := &Gate{cfg: cfg, sessions: make(map[string]*sessionState)}
	g.quota = cfg.SessionQuotaBytes
	if cfg.MaxSessionShare > 0 && cfg.BudgetBytes > 0 {
		byShare := int64(cfg.MaxSessionShare * float64(cfg.BudgetBytes))
		if byShare < 1 {
			byShare = 1
		}
		if g.quota <= 0 || byShare < g.quota {
			g.quota = byShare
		}
	}
	return g
}

func (g *Gate) session(name string) *sessionState {
	s, ok := g.sessions[name]
	if !ok {
		s = &sessionState{name: name}
		g.sessions[name] = s
	}
	return s
}

// fitsBudget reports whether n more bytes fit the global budget. An
// oversized request fits only an empty gate (admitted alone).
func (g *Gate) fitsBudget(n int64) bool {
	return g.cfg.BudgetBytes <= 0 || g.used == 0 || g.used+n <= g.cfg.BudgetBytes
}

// fitsQuota reports whether n more bytes fit the session's quota. A
// request larger than the quota fits only a session holding nothing.
func (g *Gate) fitsQuota(s *sessionState, n int64) bool {
	return g.quota <= 0 || s.HeldBytes == 0 || s.HeldBytes+n <= g.quota
}

// grantLocked admits n bytes to the session; callers hold mu.
func (g *Gate) grantLocked(s *sessionState, n int64) {
	g.used += n
	if g.used > g.peak {
		g.peak = g.used
	}
	s.HeldBytes += n
	if s.HeldBytes > s.PeakHeldBytes {
		s.PeakHeldBytes = s.HeldBytes
	}
	s.Acquires++
}

// admitLocked is the handoff scan: walk the queue front to back,
// admitting tickets in order. A ticket that does not fit the BUDGET
// stops the scan — strict FIFO on the shared resource is what closes
// the starvation window — while a ticket blocked only by its own
// session's QUOTA is passed over (it blocks only itself) and the scan
// continues behind it. Callers hold mu.
func (g *Gate) admitLocked() {
	passedQuotaBlock := false
	for i := 0; i < len(g.queue); {
		t := g.queue[i]
		// The quota check comes FIRST: a ticket its own session has
		// quota-blocked is skipped even when it is also over the budget
		// — only the session's own releases can ever make it
		// admissible, so treating it as a strict-FIFO budget head would
		// stall every session queued behind it on a wait no one else
		// can shorten (the cross-session starvation quotas exist to
		// prevent).
		if !g.fitsQuota(t.sess, t.n) {
			if !t.skipped {
				t.skipped = true
				t.sess.QuotaBlocked++
			}
			passedQuotaBlock = true
			i++
			continue
		}
		if !g.fitsBudget(t.n) {
			// Strict FIFO: nothing behind this ticket may be admitted.
			// Count the scan as starvation-avoided when a later ticket
			// would have fit — the admission a Broadcast gate would have
			// raced past the head.
			for _, later := range g.queue[i+1:] {
				if g.fitsBudget(later.n) && g.fitsQuota(later.sess, later.n) {
					g.avoided++
					break
				}
			}
			return
		}
		g.queue = append(g.queue[:i], g.queue[i+1:]...)
		g.grantLocked(t.sess, t.n)
		t.granted = true
		close(t.ready)
		if passedQuotaBlock {
			// Admitted past a quota-blocked earlier ticket: the quota
			// kept that session from starving this one.
			g.avoided++
		}
	}
}

// Acquire blocks until session may hold n more bytes, or ctx is done.
// On error the caller holds nothing: a cancelled waiter leaves the queue
// without disturbing tickets around it, and a grant racing the
// cancellation is returned to the pool. A nil ctx means no cancellation.
func (g *Gate) Acquire(ctx context.Context, session string, n int64) error {
	if n < 0 {
		n = 0
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxcheck the documented nil-ctx contract means "no cancellation"; Background is that contract's spelling
	}
	g.mu.Lock()
	s := g.session(session)
	// An already-cancelled request is never granted, even when it would
	// fit: the caller has walked away and must deterministically hold
	// nothing.
	if err := ctx.Err(); err != nil {
		g.cancelled++
		s.Cancelled++
		g.mu.Unlock()
		return err
	}
	// Fast path: nothing queued ahead and both limits fit. With a
	// non-empty queue even a fitting request must enqueue — jumping the
	// line is exactly the race this gate exists to close.
	if len(g.queue) == 0 && g.fitsBudget(n) && g.fitsQuota(s, n) {
		g.grantLocked(s, n)
		g.mu.Unlock()
		return nil
	}
	t := &ticket{sess: s, n: n, ready: make(chan struct{})}
	g.queue = append(g.queue, t)
	g.waits++
	s.Waits++
	start := time.Now()
	// The new ticket may be admissible right away (e.g. every earlier
	// ticket is quota-blocked).
	g.admitLocked()
	g.mu.Unlock()

	select {
	case <-t.ready:
		g.noteWait(s, time.Since(start))
		return nil
	case <-ctx.Done():
	}
	g.mu.Lock()
	if t.granted {
		// The grant raced the cancellation: give it back (which may
		// admit the next ticket) and report the cancel — the caller
		// must be able to trust that an error means nothing is held.
		g.used -= n
		s.HeldBytes -= n
		s.Acquires--
		g.admitLocked()
	} else {
		for i, q := range g.queue {
			if q == t {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				break
			}
		}
		// Removing a budget-blocked head may unblock the tickets that
		// were queued behind it.
		g.admitLocked()
	}
	g.cancelled++
	s.Cancelled++
	d := time.Since(start)
	s.WaitTotal += d
	if d > s.WaitMax {
		s.WaitMax = d
	}
	g.mu.Unlock()
	return ctx.Err()
}

func (g *Gate) noteWait(s *sessionState, d time.Duration) {
	g.mu.Lock()
	s.WaitTotal += d
	if d > s.WaitMax {
		s.WaitMax = d
	}
	g.mu.Unlock()
}

// Charge admits n bytes to the session unconditionally, never blocking
// and never queueing — the accounting mode for callers (the result
// cache) that accept first and evict to get back under budget. The
// charge still counts toward the session's quota, steering OverShare.
func (g *Gate) Charge(session string, n int64) {
	if n < 0 {
		n = 0
	}
	g.mu.Lock()
	g.grantLocked(g.session(session), n)
	g.mu.Unlock()
}

// Release gives back n bytes held by the session and hands the freed
// capacity to the queue head. Releasing bytes never acquired is a
// caller bug (a double release) and panics loudly rather than silently
// over-admitting forever after.
func (g *Gate) Release(session string, n int64) {
	if n < 0 {
		n = 0
	}
	g.mu.Lock()
	s := g.session(session)
	g.used -= n
	s.HeldBytes -= n
	if g.used < 0 || s.HeldBytes < 0 {
		g.mu.Unlock()
		panic(fmt.Sprintf("admission: double release: session %q releasing %d holds %d (gate %d)",
			session, n, s.HeldBytes+n, g.used+n))
	}
	g.admitLocked()
	g.mu.Unlock()
}

// Used returns the total bytes currently held.
func (g *Gate) Used() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// SessionHeld returns the bytes currently held by one session.
func (g *Gate) SessionHeld(session string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.sessions[session]; ok {
		return s.HeldBytes
	}
	return 0
}

// OverShare reports whether the session's holdings exceed its quota —
// the evictor's signal to take that session's entries first.
func (g *Gate) OverShare(session string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.quota <= 0 {
		return false
	}
	if s, ok := g.sessions[session]; ok {
		return s.HeldBytes > g.quota
	}
	return false
}

// Quota returns the effective per-session byte cap (0 = none).
func (g *Gate) Quota() int64 { return g.quota }

// Stats returns a snapshot of the gate, including every session seen.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		UsedBytes: g.used, PeakBytes: g.peak,
		QueueDepth: len(g.queue),
		Waits:      g.waits, Cancelled: g.cancelled,
		StarvationAvoided: g.avoided,
		PerSession:        make(map[string]SessionStats, len(g.sessions)),
	}
	for name, s := range g.sessions {
		st.PerSession[name] = s.SessionStats
	}
	return st
}
