package mountsvc

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// slowAdapter is a synthetic format: each "file" yields nBatches batches
// of batchLen rows. Extraction counts are tracked and each extraction
// can be gated on a channel so tests can hold flights open while more
// requests arrive.
type slowAdapter struct {
	nBatches    int
	batchLen    int
	extractions atomic.Int64
	streamed    atomic.Int64  // batches successfully emitted
	gate        chan struct{} // when non-nil, each extraction waits here once
	stepGate    chan struct{} // when non-nil, each batch waits for one token
	failWith    error
}

func (a *slowAdapter) Name() string { return "slow" }
func (a *slowAdapter) Tables() (f, r, d catalog.TableDef) {
	d = catalog.TableDef{
		Name: "SLOW_D", Kind: catalog.ActualData,
		Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "t", Kind: vector.KindTime},
			{Name: "v", Kind: vector.KindFloat64},
		},
	}
	return f, r, d
}
func (a *slowAdapter) URIColumn() string      { return "uri" }
func (a *slowAdapter) RecordIDColumn() string { return "record_id" }
func (a *slowAdapter) DataSpanColumn() string { return "t" }
func (a *slowAdapter) RecordSpan(rm catalog.RecordMeta) (int64, int64, bool) {
	return rm.Values[0].I, rm.Values[1].I, true
}
func (a *slowAdapter) ExtractMetadata(path, uri string) (catalog.FileMeta, []catalog.RecordMeta, error) {
	return catalog.FileMeta{URI: uri}, nil, nil
}
func (a *slowAdapter) Mount(path, uri string, keep func(catalog.RecordMeta) bool) (*vector.Batch, error) {
	return catalog.CollectMount(a, path, uri, keep)
}
func (a *slowAdapter) MountStream(path, uri string, keep func(catalog.RecordMeta) bool, batchRows int, emit func(*vector.Batch) error) error {
	a.extractions.Add(1)
	if a.gate != nil {
		<-a.gate
	}
	if a.failWith != nil {
		return a.failWith
	}
	for rec := 0; rec < a.nBatches; rec++ {
		rm := catalog.RecordMeta{
			URI: uri, RecordID: int64(rec),
			Values: []vector.Value{vector.Time(int64(rec) * 100), vector.Time(int64(rec)*100 + 99)},
		}
		if keep != nil && !keep(rm) {
			continue
		}
		var uris []string
		var ids, times []int64
		var vals []float64
		for i := 0; i < a.batchLen; i++ {
			uris = append(uris, uri)
			ids = append(ids, int64(rec))
			times = append(times, int64(rec)*100+int64(i))
			vals = append(vals, float64(rec*1000+i))
		}
		b := vector.NewBatch(
			vector.FromString(uris), vector.FromInt64(ids),
			vector.FromTime(times), vector.FromFloat64(vals),
		)
		if a.stepGate != nil {
			<-a.stepGate
		}
		if err := emit(b); err != nil {
			return err
		}
		a.streamed.Add(1)
	}
	return nil
}

// testFiles creates size-controlled dummy files (the service only stats
// and opens them; the fake adapter never reads the contents).
func testFiles(t *testing.T, sizes map[string]int) string {
	t.Helper()
	dir := t.TempDir()
	for name, size := range sizes {
		if err := os.WriteFile(filepath.Join(dir, name), make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func drain(t *testing.T, c Cursor) int {
	t.Helper()
	rows, err := drainCount(c)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// drainCount is the goroutine-safe form of drain.
func drainCount(c Cursor) (int, error) {
	rows := 0
	for {
		b, err := c.Next()
		if err != nil {
			return rows, err
		}
		if b == nil {
			return rows, nil
		}
		rows += b.Len()
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	ad := &slowAdapter{nBatches: 4, batchLen: 10, gate: make(chan struct{})}
	dir := testFiles(t, map[string]int{"a.slow": 1 << 12})
	svc := New(Config{RepoDir: dir})

	const k = 8
	var mounted, joined atomic.Int64
	cursors := make([]Cursor, k)
	for i := range cursors {
		cur, err := svc.Mount(Request{
			URI: "a.slow", Adapter: ad, Span: cache.FullSpan(),
			Observe: func(d Delta) {
				if d.FileMounted {
					mounted.Add(1)
				}
				if d.SingleFlight {
					joined.Add(1)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cursors[i] = cur
	}
	close(ad.gate) // all k requests are attached; let the extraction run

	var wg sync.WaitGroup
	rows := make([]int, k)
	for i, cur := range cursors {
		wg.Add(1)
		go func(i int, cur Cursor) {
			defer wg.Done()
			rows[i], _ = drainCount(cur)
		}(i, cur)
	}
	wg.Wait()

	if got := ad.extractions.Load(); got != 1 {
		t.Errorf("extractions = %d, want 1", got)
	}
	for i, n := range rows {
		if n != 40 {
			t.Errorf("cursor %d saw %d rows, want 40", i, n)
		}
	}
	if mounted.Load() != 1 || joined.Load() != k-1 {
		t.Errorf("mounted=%d joined=%d, want 1 and %d", mounted.Load(), joined.Load(), k-1)
	}
	st := svc.Stats()
	if st.FlightsStarted != 1 || st.SingleFlightHits != k-1 {
		t.Errorf("service stats = %+v", st)
	}
}

func TestSpanContainmentJoining(t *testing.T) {
	ad := &slowAdapter{nBatches: 4, batchLen: 10, gate: make(chan struct{})}
	dir := testFiles(t, map[string]int{"a.slow": 1 << 12})
	svc := New(Config{RepoDir: dir})

	wide, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.Span{Lo: 0, Hi: 399}})
	if err != nil {
		t.Fatal(err)
	}
	// Narrower span rides the wide flight; a wider one cannot.
	narrow, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.Span{Lo: 100, Hi: 199}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	close(ad.gate)
	if got := drain(t, wide); got != 40 {
		t.Errorf("wide rows = %d", got)
	}
	if got := drain(t, narrow); got != 40 {
		t.Errorf("narrow rows = %d (must see the containing flight's batches)", got)
	}
	if got := drain(t, full); got != 40 {
		t.Errorf("full rows = %d", got)
	}
	// wide+narrow shared one flight; full needed its own.
	if got := ad.extractions.Load(); got != 2 {
		t.Errorf("extractions = %d, want 2", got)
	}
}

func TestBudgetBoundsInFlightBytes(t *testing.T) {
	const fileSize = 1000
	sizes := make(map[string]int)
	names := []string{"a.slow", "b.slow", "c.slow", "d.slow", "e.slow", "f.slow"}
	for _, n := range names {
		sizes[n] = fileSize
	}
	dir := testFiles(t, sizes)
	ad := &slowAdapter{nBatches: 2, batchLen: 64}
	// Budget fits one and a half files: at most one flight at a time.
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 3 / 2})

	var wg sync.WaitGroup
	for _, name := range names {
		cur, err := svc.Mount(Request{URI: name, Adapter: ad, Span: cache.FullSpan()})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cur Cursor) {
			defer wg.Done()
			drainCount(cur)
		}(cur)
	}
	wg.Wait()
	st := svc.Stats()
	if st.PeakInFlightBytes > fileSize*3/2 {
		t.Errorf("peak in-flight bytes %d exceeded budget %d", st.PeakInFlightBytes, fileSize*3/2)
	}
	if st.InFlightBytes != 0 {
		t.Errorf("in-flight bytes %d not released", st.InFlightBytes)
	}
	if st.FlightsStarted != int64(len(names)) {
		t.Errorf("flights = %d, want %d", st.FlightsStarted, len(names))
	}
}

func TestOversizedFileAdmittedAlone(t *testing.T) {
	dir := testFiles(t, map[string]int{"big.slow": 4000, "small.slow": 100})
	ad := &slowAdapter{nBatches: 1, batchLen: 8}
	svc := New(Config{RepoDir: dir, BudgetBytes: 1000})
	for _, name := range []string{"big.slow", "small.slow"} {
		cur, err := svc.Mount(Request{URI: name, Adapter: ad, Span: cache.FullSpan()})
		if err != nil {
			t.Fatal(err)
		}
		if got := drain(t, cur); got != 8 {
			t.Errorf("%s rows = %d", name, got)
		}
	}
	if st := svc.Stats(); st.InFlightBytes != 0 {
		t.Errorf("in-flight bytes %d not released", st.InFlightBytes)
	}
}

func TestWaiterCancelOthersStillServed(t *testing.T) {
	ad := &slowAdapter{nBatches: 4, batchLen: 10, gate: make(chan struct{})}
	dir := testFiles(t, map[string]int{"a.slow": 1 << 12})
	svc := New(Config{RepoDir: dir})

	quitter, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	stayer, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	quitter.Close() // aborts before the extraction even starts
	close(ad.gate)
	if got := drain(t, stayer); got != 40 {
		t.Errorf("surviving waiter saw %d rows, want 40", got)
	}
	if b, err := quitter.Next(); b != nil || err != nil {
		t.Errorf("closed cursor Next = (%v, %v), want (nil, nil)", b, err)
	}
}

// TestAbandonedFlightStopsMidFile is the cancel-aware-flight contract:
// when every waiter closes its cursor, the extraction is stopped at the
// next batch boundary, the budget released, and any partial cache fill
// aborted — instead of decoding the rest of a file nobody will read.
func TestAbandonedFlightStopsMidFile(t *testing.T) {
	const fileSize = 1000
	ad := &slowAdapter{nBatches: 50, batchLen: 8, stepGate: make(chan struct{})}
	dir := testFiles(t, map[string]int{"a.slow": fileSize})
	mgr := cache.New(cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular})
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 4, Cache: mgr})

	c1, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	// Let two batches fully through, then abandon the flight entirely.
	ad.stepGate <- struct{}{}
	ad.stepGate <- struct{}{}
	for deadline := time.Now().Add(5 * time.Second); ad.streamed.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("adapter never emitted the first two batches")
		}
		time.Sleep(time.Millisecond)
	}
	c1.Close()
	c2.Close()
	// The third emit runs into the refcount check and stops the stream.
	ad.stepGate <- struct{}{}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.FlightsCancelled == 1 && st.InFlightBytes == 0 && st.ReplayBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight not cancelled/released: stats %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if got := ad.streamed.Load(); got >= 50 {
		t.Errorf("extraction ran to completion (%d batches) despite abandonment", got)
	}
	if _, ok := mgr.Get("a.slow", cache.FullSpan()); ok {
		t.Error("abandoned flight committed a partial cache entry")
	}
	// The service stays usable for the same URI afterwards.
	ad2 := &slowAdapter{nBatches: 2, batchLen: 4}
	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad2, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, cur); got != 8 {
		t.Errorf("post-cancel mount rows = %d, want 8", got)
	}
}

// TestReplayBytesTrackedWithBatchBytes pins the replay-buffer gauge to
// the vector-level size estimate rather than any ad-hoc guess.
func TestReplayBytesTrackedWithBatchBytes(t *testing.T) {
	dir := testFiles(t, map[string]int{"a.slow": 64})
	ad := &slowAdapter{nBatches: 2, batchLen: 4}
	svc := New(Config{RepoDir: dir})
	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 2; i++ {
		b, err := cur.Next()
		if err != nil || b == nil {
			t.Fatalf("batch %d: (%v, %v)", i, b, err)
		}
		want += b.Bytes()
	}
	if got := svc.Stats().ReplayBytes; got != want {
		t.Errorf("ReplayBytes = %d, want %d (sum of Batch.Bytes)", got, want)
	}
	if b, err := cur.Next(); b != nil || err != nil {
		t.Fatalf("expected end of stream, got (%v, %v)", b, err)
	}
	st := svc.Stats()
	if st.ReplayBytes != 0 {
		t.Errorf("ReplayBytes = %d after last cursor drained, want 0", st.ReplayBytes)
	}
	if st.PeakReplayBytes != want {
		t.Errorf("PeakReplayBytes = %d, want %d", st.PeakReplayBytes, want)
	}
}

// TestFlightSharesIsolateWaiters: two waiters of one flight mutate the
// batches they receive; neither observes the other's writes.
func TestFlightSharesIsolateWaiters(t *testing.T) {
	dir := testFiles(t, map[string]int{"a.slow": 64})
	ad := &slowAdapter{nBatches: 1, batchLen: 4}
	svc := New(Config{RepoDir: dir})
	c1, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := c1.Next()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c2.Next()
	if err != nil {
		t.Fatal(err)
	}
	b1.Cols[3].Set(0, vector.Float64(-1e9))
	if got := b2.Cols[3].Get(0).F; got == -1e9 {
		t.Error("one waiter's mutation leaked into another waiter's batch")
	}
}

func TestFlightErrorReachesAllWaiters(t *testing.T) {
	boom := errors.New("boom")
	ad := &slowAdapter{nBatches: 2, batchLen: 4, gate: make(chan struct{}), failWith: boom}
	dir := testFiles(t, map[string]int{"a.slow": 64})
	svc := New(Config{RepoDir: dir})
	c1, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	close(ad.gate)
	for i, c := range []Cursor{c1, c2} {
		if _, err := c.Next(); !errors.Is(err, boom) {
			t.Errorf("waiter %d got %v, want the extraction error", i, err)
		}
	}
}

func TestMissingFileErrors(t *testing.T) {
	svc := New(Config{RepoDir: t.TempDir()})
	if _, err := svc.Mount(Request{URI: "nope.slow", Adapter: &slowAdapter{}}); err == nil {
		t.Error("mount of missing file succeeded")
	}
}

func TestFileGranularFlightFillsCacheAndShortCircuits(t *testing.T) {
	ad := &slowAdapter{nBatches: 4, batchLen: 10}
	dir := testFiles(t, map[string]int{"a.slow": 1 << 12})
	mgr := cache.New(cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular})
	svc := New(Config{RepoDir: dir, Cache: mgr})

	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.Span{Lo: 0, Hi: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// File-granular caching forces a full extraction despite the span.
	if got := drain(t, cur); got != 40 {
		t.Errorf("rows = %d, want the full 40 under file-granular caching", got)
	}
	if b, ok := mgr.Get("a.slow", cache.FullSpan()); !ok || b.Len() != 40 {
		t.Fatalf("flight did not stream the whole file into the cache")
	}

	// A second request is served from the cache without extracting.
	var fromCache atomic.Int64
	cur2, err := svc.Mount(Request{
		URI: "a.slow", Adapter: ad, Span: cache.FullSpan(), BatchRows: 16,
		Observe: func(d Delta) {
			if d.FromCache {
				fromCache.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, cur2); got != 40 {
		t.Errorf("cache-served rows = %d", got)
	}
	if ad.extractions.Load() != 1 || fromCache.Load() != 1 {
		t.Errorf("extractions=%d fromCache=%d, want 1 and 1", ad.extractions.Load(), fromCache.Load())
	}
}

func TestOnMountSeesPreFilterBatches(t *testing.T) {
	ad := &slowAdapter{nBatches: 4, batchLen: 10}
	dir := testFiles(t, map[string]int{"a.slow": 1 << 12})
	var hookRows atomic.Int64
	svc := New(Config{RepoDir: dir, OnMount: func(uri string, b *vector.Batch) {
		hookRows.Add(int64(b.Len()))
	}})
	// Span keeps only record 1: the hook must still see every kept
	// record's rows exactly once.
	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.Span{Lo: 100, Hi: 199}})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, cur); got != 10 {
		t.Errorf("rows = %d, want 10 (three records span-pruned)", got)
	}
	if hookRows.Load() != 10 {
		t.Errorf("hook saw %d rows, want 10", hookRows.Load())
	}
}

func TestModeledIOChargedOncePerFlight(t *testing.T) {
	ad := &slowAdapter{nBatches: 1, batchLen: 4, gate: make(chan struct{})}
	dir := testFiles(t, map[string]int{"a.slow": int(storage.PageSize) * 3})
	clock := &storage.Clock{}
	pool := storage.NewBufferPool(64, storage.HDD7200(), clock)
	svc := New(Config{RepoDir: dir, Pool: pool})

	c1, _ := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	c2, _ := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	close(ad.gate)
	drain(t, c1)
	drain(t, c2)
	if got := pool.Stats().PagesRead; got != 3 {
		t.Errorf("pages read = %d, want 3 (one flight, one touch)", got)
	}
}

// waitStat polls the service until cond(Stats()) holds.
func waitStat(t *testing.T, svc *Service, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(svc.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("%s: stats %+v", what, svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// holdBudget mounts a file and consumes its batches without reaching
// end of stream, so the flight's budget bytes stay held; the returned
// cursor releases them when drained or closed.
func holdBudget(t *testing.T, svc *Service, ad *slowAdapter, uri string) Cursor {
	t.Helper()
	cur, err := svc.Mount(Request{URI: uri, Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ad.nBatches; i++ {
		if b, err := cur.Next(); err != nil || b == nil {
			t.Fatalf("batch %d: (%v, %v)", i, b, err)
		}
	}
	return cur
}

// TestBudgetWaitCancellable is the satellite-1 regression at the
// service level: a query cancelled while its mount is blocked on the
// byte budget returns promptly through its cursor, leaks no budget
// bytes it never held, and is counted in Stats.
func TestBudgetWaitCancellable(t *testing.T) {
	const fileSize = 1000
	dir := testFiles(t, map[string]int{"a.slow": fileSize, "b.slow": fileSize})
	ad := &slowAdapter{nBatches: 2, batchLen: 4}
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 3 / 2})

	holder := holdBudget(t, svc, ad, "a.slow")

	ctx, cancel := context.WithCancel(context.Background())
	blocked, err := svc.Mount(Request{
		URI: "b.slow", Adapter: ad, Span: cache.FullSpan(),
		Ctx: ctx, Session: "victim",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, svc, "mount never queued on the budget", func(st Stats) bool {
		return st.QueueDepth == 1
	})
	cancel()

	// The cursor must observe the cancellation promptly, not hang.
	got := make(chan error, 1)
	go func() {
		_, err := blocked.Next()
		got <- err
	}()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cursor error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled budget wait hung")
	}

	if got := svc.Stats().InFlightBytes; got != fileSize {
		t.Errorf("in-flight = %d, want the holder's %d only (cancelled waiter must hold nothing)",
			got, fileSize)
	}
	if got := svc.Stats().WaiterCancels; got != 1 {
		t.Errorf("WaiterCancels = %d, want 1", got)
	}
	// The sole waiter left, so the flight is abandoned and its queued
	// admission cancelled (asynchronously, via the abandonment watcher).
	waitStat(t, svc, "admission wait never cancelled", func(st Stats) bool {
		return st.BudgetCancelled == 1 && st.PerSession["victim"].Cancelled == 1
	})

	// The budget is healthy: drain the holder and remount b.
	if b, err := holder.Next(); b != nil || err != nil {
		t.Fatalf("holder drain: (%v, %v)", b, err)
	}
	cur, err := svc.Mount(Request{URI: "b.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, cur); rows != 8 {
		t.Errorf("post-cancel remount rows = %d, want 8", rows)
	}
	if got := svc.Stats().InFlightBytes; got != 0 {
		t.Errorf("in-flight bytes %d not released", got)
	}
}

// TestCancelledLeaderDoesNotPoisonJoiners: cancellation is per-waiter.
// A joiner riding a flight whose LEADING request's context dies must
// still receive the whole stream — the flight's admission wait and
// extraction belong to all its waiters, not to the leader's lifecycle.
func TestCancelledLeaderDoesNotPoisonJoiners(t *testing.T) {
	const fileSize = 1000
	dir := testFiles(t, map[string]int{"hold.slow": fileSize, "a.slow": fileSize})
	adHold := &slowAdapter{nBatches: 2, batchLen: 4}
	ad := &slowAdapter{nBatches: 2, batchLen: 10}
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 3 / 2})

	// The holder keeps the budget full so the led flight queues.
	holder := holdBudget(t, svc, adHold, "hold.slow")

	ctx, cancel := context.WithCancel(context.Background())
	leader, err := svc.Mount(Request{
		URI: "a.slow", Adapter: ad, Span: cache.FullSpan(),
		Ctx: ctx, Session: "leader",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, svc, "led flight never queued", func(st Stats) bool { return st.QueueDepth == 1 })
	joiner, err := svc.Mount(Request{
		URI: "a.slow", Adapter: ad, Span: cache.FullSpan(), Session: "joiner",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().SingleFlightHits; got != 1 {
		t.Fatalf("joiner did not join the queued flight (hits=%d)", got)
	}

	// Kill the leader while the shared flight is still budget-blocked.
	cancel()
	if _, err := leader.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader got %v, want context.Canceled", err)
	}
	// The joiner must be untouched: release the budget and drain fully.
	if b, err := holder.Next(); b != nil || err != nil {
		t.Fatalf("holder drain: (%v, %v)", b, err)
	}
	done := make(chan struct{})
	var rows int
	var joinErr error
	go func() {
		rows, joinErr = drainCount(joiner)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("joiner hung after the leader was cancelled")
	}
	if joinErr != nil {
		t.Fatalf("joiner failed with the leader's cancellation: %v", joinErr)
	}
	if rows != 20 {
		t.Errorf("joiner rows = %d, want 20", rows)
	}
	if got := svc.Stats().InFlightBytes; got != 0 {
		t.Errorf("in-flight bytes %d, want 0", got)
	}
}

// TestAbandonedWaiterLeavesAdmissionQueue: a flight whose only waiter
// closes its cursor while the flight is still queued on the budget must
// leave the queue (not extract, not hold bytes) so later mounts flow.
func TestAbandonedWaiterLeavesAdmissionQueue(t *testing.T) {
	const fileSize = 1000
	dir := testFiles(t, map[string]int{"a.slow": fileSize, "b.slow": fileSize})
	ad := &slowAdapter{nBatches: 2, batchLen: 4}
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 3 / 2})

	holder := holdBudget(t, svc, ad, "a.slow")
	adB := &slowAdapter{nBatches: 2, batchLen: 4}
	blocked, err := svc.Mount(Request{URI: "b.slow", Adapter: adB, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, svc, "mount never queued on the budget", func(st Stats) bool {
		return st.QueueDepth == 1
	})
	blocked.Close()
	waitStat(t, svc, "abandoned waiter never left the queue", func(st Stats) bool {
		return st.QueueDepth == 0 && st.FlightsCancelled == 1
	})
	if got := adB.extractions.Load(); got != 0 {
		t.Errorf("abandoned flight extracted anyway (%d extractions)", got)
	}
	if b, err := holder.Next(); b != nil || err != nil {
		t.Fatalf("holder drain: (%v, %v)", b, err)
	}
	if got := svc.Stats().InFlightBytes; got != 0 {
		t.Errorf("in-flight bytes %d, want 0", got)
	}
}

// TestFIFOAdmissionNoStarvation is the satellite-2 regression: a large
// request at the queue head is admitted before later small ones, even
// while the smalls would fit the remaining budget — the leapfrog the
// old Broadcast gate allowed unboundedly.
func TestFIFOAdmissionNoStarvation(t *testing.T) {
	const budget = 1000
	sizes := map[string]int{
		"holder.slow": 600, "big.slow": 900,
		"s1.slow": 300, "s2.slow": 300, "s3.slow": 300,
	}
	dir := testFiles(t, sizes)
	adHold := &slowAdapter{nBatches: 2, batchLen: 4}
	adBig := &slowAdapter{nBatches: 2, batchLen: 4}
	adSmall := &slowAdapter{nBatches: 2, batchLen: 4}
	svc := New(Config{RepoDir: dir, BudgetBytes: budget})

	holder := holdBudget(t, svc, adHold, "holder.slow")

	// Queue big first, then the smalls, pinning FIFO arrival order by
	// waiting for each ticket to reach the gate before issuing the next.
	bigCur, err := svc.Mount(Request{URI: "big.slow", Adapter: adBig, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, svc, "big never queued", func(st Stats) bool { return st.QueueDepth == 1 })
	var smallCurs []Cursor
	for i, name := range []string{"s1.slow", "s2.slow", "s3.slow"} {
		cur, err := svc.Mount(Request{URI: name, Adapter: adSmall, Span: cache.FullSpan()})
		if err != nil {
			t.Fatal(err)
		}
		smallCurs = append(smallCurs, cur)
		waitStat(t, svc, "small never queued", func(st Stats) bool { return st.QueueDepth == 2+i })
	}

	// 600 held + 300 would fit; the smalls must still wait behind big.
	time.Sleep(20 * time.Millisecond)
	if got := adSmall.extractions.Load(); got != 0 {
		t.Fatalf("%d smalls leapfrogged the blocked large waiter", got)
	}
	if got := adBig.extractions.Load(); got != 0 {
		t.Fatal("big admitted while the holder's bytes exceed the budget")
	}
	if got := svc.Stats().StarvationAvoided; got == 0 {
		t.Error("StarvationAvoided = 0, want > 0")
	}

	// Handoff: draining the holder admits big (900 <= 1000) and only
	// big — the smalls stay blocked until big's bytes free.
	if b, err := holder.Next(); b != nil || err != nil {
		t.Fatalf("holder drain: (%v, %v)", b, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for adBig.extractions.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("big never admitted after the holder drained")
		}
		time.Sleep(time.Millisecond)
	}
	if got := adSmall.extractions.Load(); got != 0 {
		t.Fatalf("%d smalls admitted alongside big (900+300 > budget)", got)
	}
	if rows := drain(t, bigCur); rows != 8 {
		t.Errorf("big rows = %d", rows)
	}
	for _, cur := range smallCurs {
		if rows := drain(t, cur); rows != 8 {
			t.Errorf("small rows = %d", rows)
		}
	}
	if got := svc.Stats().InFlightBytes; got != 0 {
		t.Errorf("in-flight bytes %d, want 0", got)
	}
}

// TestSessionQuotaBoundsOneSession: a session at its quota waits while
// another session's later request is admitted past it.
func TestSessionQuotaBoundsOneSession(t *testing.T) {
	const fileSize = 400
	dir := testFiles(t, map[string]int{
		"g1.slow": fileSize, "g2.slow": fileSize, "i1.slow": fileSize,
	})
	adG := &slowAdapter{nBatches: 2, batchLen: 4}
	adI := &slowAdapter{nBatches: 2, batchLen: 4}
	// Budget fits three files; the quota caps one session at one file.
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 3, SessionQuotaBytes: fileSize})

	g1 := holdBudget(t, svc, adG, "g1.slow")
	g2, err := svc.Mount(Request{URI: "g2.slow", Adapter: adG, Session: "", Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	waitStat(t, svc, "greedy second mount never queued", func(st Stats) bool {
		return st.QueueDepth == 1
	})
	// A different session flows past the quota-blocked ticket.
	i1, err := svc.Mount(Request{URI: "i1.slow", Adapter: adI, Session: "interactive", Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, i1); rows != 8 {
		t.Errorf("interactive rows = %d", rows)
	}
	if got := adG.extractions.Load(); got != 1 {
		t.Errorf("greedy extractions = %d, want 1 (second blocked by quota)", got)
	}
	st := svc.Stats()
	if st.PerSession[""].QuotaBlocked == 0 {
		t.Errorf("greedy session QuotaBlocked = 0: %+v", st.PerSession)
	}
	// Its own release is what unblocks the greedy session.
	if b, err := g1.Next(); b != nil || err != nil {
		t.Fatalf("g1 drain: (%v, %v)", b, err)
	}
	if rows := drain(t, g2); rows != 8 {
		t.Errorf("greedy second mount rows = %d", rows)
	}
}

// TestCancelledMidExtractionReleasesBudgetOnce is the satellite-3
// regression, run under -race: a flight abandoned mid-extraction
// returns its admitted bytes exactly once — the admission gate panics
// on a double release, so surviving this test IS the guard — and the
// full budget is usable afterwards.
func TestCancelledMidExtractionReleasesBudgetOnce(t *testing.T) {
	const fileSize = 1000
	ad := &slowAdapter{nBatches: 50, batchLen: 8, stepGate: make(chan struct{})}
	dir := testFiles(t, map[string]int{"a.slow": fileSize, "b.slow": fileSize})
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize})

	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	ad.stepGate <- struct{}{}
	waitStat(t, svc, "first batch never streamed", func(st Stats) bool {
		return st.ReplayBytes > 0
	})
	// Abandon mid-extraction: Close (the cursor's unref) and the emit
	// callback's refcount check race to end the flight.
	cur.Close()
	ad.stepGate <- struct{}{}
	waitStat(t, svc, "cancelled flight never released", func(st Stats) bool {
		return st.FlightsCancelled == 1 && st.InFlightBytes == 0 && st.ReplayBytes == 0
	})
	// Exactly once: the whole budget is available again — a leak would
	// block this oversized-for-the-remainder mount, a double release
	// would have panicked above.
	ad2 := &slowAdapter{nBatches: 1, batchLen: 4}
	cur2, err := svc.Mount(Request{URI: "b.slow", Adapter: ad2, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		n, _ := drainCount(cur2)
		done <- n
	}()
	select {
	case n := <-done:
		if n != 4 {
			t.Errorf("post-cancel mount rows = %d, want 4", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("budget bytes leaked: full-budget mount blocked after cancellation")
	}
}

// TestBudgetHeldUntilReplayDrained pins the budget's lifetime: the
// bytes of a flight stay accounted while any cursor can still replay
// its buffer, and are released synchronously when the last cursor
// drains — resident decoded data is what the budget bounds, not just
// the decode phase.
func TestBudgetHeldUntilReplayDrained(t *testing.T) {
	const fileSize = 1000
	dir := testFiles(t, map[string]int{"a.slow": fileSize})
	ad := &slowAdapter{nBatches: 2, batchLen: 4}
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize * 2})

	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	// Consume both batches but do not reach end of stream yet.
	for i := 0; i < 2; i++ {
		if b, err := cur.Next(); err != nil || b == nil {
			t.Fatalf("batch %d: (%v, %v)", i, b, err)
		}
	}
	if got := svc.Stats().InFlightBytes; got != fileSize {
		t.Errorf("budget released while the replay buffer is still referenced: in-flight %d", got)
	}
	// Drain to the end: release is synchronous with the detach.
	if b, err := cur.Next(); b != nil || err != nil {
		t.Fatalf("expected end of stream, got (%v, %v)", b, err)
	}
	if got := svc.Stats().InFlightBytes; got != 0 {
		t.Errorf("in-flight bytes %d after last cursor drained, want 0", got)
	}
}

// spillBatchBytes returns the decoded size of one of the slow adapter's
// batches, the unit the spill threshold is denominated in.
func spillBatchBytes(t *testing.T, batchLen int) int64 {
	t.Helper()
	dir := testFiles(t, map[string]int{"probe.slow": 64})
	svc := New(Config{RepoDir: dir})
	cur, err := svc.Mount(Request{URI: "probe.slow", Adapter: &slowAdapter{nBatches: 1, batchLen: batchLen}, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cur.Next()
	if err != nil || b == nil {
		t.Fatalf("probe batch: (%v, %v)", b, err)
	}
	n := b.Bytes()
	drain(t, cur)
	return n
}

// TestFlightSpillsOverThreshold is the out-of-core contract at the
// service level: a flight whose replay buffer exceeds the threshold
// flushes it to a temp spill file, cursors (including one that began in
// memory and one that joined after completion) replay the identical
// stream from disk, the replay gauge drains, and the temp file is gone
// once the last cursor detaches.
func TestFlightSpillsOverThreshold(t *testing.T) {
	const nBatches, batchLen = 12, 32
	bb := spillBatchBytes(t, batchLen)
	spillDir := t.TempDir()
	dir := testFiles(t, map[string]int{"a.slow": 4096})
	ad := &slowAdapter{nBatches: nBatches, batchLen: batchLen, stepGate: make(chan struct{})}
	svc := New(Config{RepoDir: dir, SpillDir: spillDir, SpillThresholdBytes: 2 * bb})

	early, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	// Let one batch through and consume it from memory before any spill.
	ad.stepGate <- struct{}{}
	b0, err := early.Next()
	if err != nil || b0 == nil || b0.Len() != batchLen {
		t.Fatalf("first batch: (%v, %v)", b0, err)
	}
	vals0 := append([]float64{}, b0.Cols[3].Float64s()...)
	for i := 1; i < nBatches; i++ {
		ad.stepGate <- struct{}{}
	}
	rows, err := drainCount(early)
	if err != nil {
		t.Fatal(err)
	}
	if rows != (nBatches-1)*batchLen {
		t.Errorf("early cursor saw %d more rows, want %d", rows, (nBatches-1)*batchLen)
	}

	// A second request for the same URI after completion starts a fresh
	// flight (the first left the table at finish); instead verify replay
	// correctness through a joiner attached before completion... here the
	// early cursor already pinned content; check bookkeeping.
	st := svc.Stats()
	if st.SpilledFlights != 1 {
		t.Errorf("SpilledFlights = %d, want 1", st.SpilledFlights)
	}
	if st.SpilledBytes <= 0 || st.SpillReplayReads <= 0 {
		t.Errorf("spill counters = %+v, want positive SpilledBytes and SpillReplayReads", st)
	}
	if st.ReplayBytes != 0 {
		t.Errorf("ReplayBytes = %d after drain, want 0", st.ReplayBytes)
	}
	if st.InFlightBytes != 0 {
		t.Errorf("InFlightBytes = %d after drain, want 0", st.InFlightBytes)
	}
	if vals0[0] != 0 {
		t.Errorf("first batch content changed: %v", vals0[0])
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill dir not empty after flight teardown: %v", ents)
	}
}

// TestSpillReplayIdenticalToMemory pins byte-identical fan-out: two
// cursors — one pacing the extraction, one draining only after the
// whole file has spilled — see exactly the same rows in the same order.
func TestSpillReplayIdenticalToMemory(t *testing.T) {
	const nBatches, batchLen = 10, 16
	bb := spillBatchBytes(t, batchLen)
	spillDir := t.TempDir()
	dir := testFiles(t, map[string]int{"a.slow": 2048})
	ad := &slowAdapter{nBatches: nBatches, batchLen: batchLen}
	svc := New(Config{RepoDir: dir, SpillDir: spillDir, SpillThresholdBytes: bb})

	collect := func(cur Cursor) []float64 {
		var out []float64
		for {
			b, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				return out
			}
			out = append(out, b.Cols[3].Float64s()...)
		}
	}
	c1, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	got1 := collect(c1) // mostly rides the live stream
	got2 := collect(c2) // replays after everything spilled
	if len(got1) != nBatches*batchLen || len(got2) != len(got1) {
		t.Fatalf("rows: %d vs %d, want %d", len(got1), len(got2), nBatches*batchLen)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("row %d diverged: %v vs %v", i, got1[i], got2[i])
		}
	}
	if ad.extractions.Load() != 1 {
		t.Errorf("extractions = %d, want 1", ad.extractions.Load())
	}
}

// TestPeakReplayHighWaterPerAppend is the satellite regression: the
// peak replay gauge must be sampled at every append, not at flight
// completion. With spilling enabled the gauge drains mid-flight and is
// zero by completion — a completion-time sample would record nothing,
// and an unspilled cumulative sum would record the whole file.
func TestPeakReplayHighWaterPerAppend(t *testing.T) {
	const nBatches, batchLen = 16, 32
	bb := spillBatchBytes(t, batchLen)
	spillDir := t.TempDir()
	dir := testFiles(t, map[string]int{"a.slow": 4096})
	ad := &slowAdapter{nBatches: nBatches, batchLen: batchLen}
	svc := New(Config{RepoDir: dir, SpillDir: spillDir, SpillThresholdBytes: 2 * bb})

	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, cur)
	st := svc.Stats()
	if st.ReplayBytes != 0 {
		t.Fatalf("ReplayBytes = %d after drain, want 0", st.ReplayBytes)
	}
	if st.PeakReplayBytes == 0 {
		t.Error("PeakReplayBytes = 0: peak was sampled at completion, after the spill drained the gauge")
	}
	total := int64(nBatches) * bb
	if st.PeakReplayBytes >= total {
		t.Errorf("PeakReplayBytes = %d, want < %d: spilling must bound resident replay below the whole file", st.PeakReplayBytes, total)
	}
	// The bound is threshold + one over-the-line batch.
	if max := 3 * bb; st.PeakReplayBytes > max {
		t.Errorf("PeakReplayBytes = %d, want <= threshold+batch = %d", st.PeakReplayBytes, max)
	}
}

// TestSpillReleasesAdmissionAsBatchesLand: a mount whose admission
// charge exceeds the budget still completes (oversized-alone), and
// spilling hands budget bytes back while the flight is live, so a
// second mount can be admitted before the first is drained.
func TestSpillReleasesAdmissionAsBatchesLand(t *testing.T) {
	const batchLen = 64
	bb := spillBatchBytes(t, batchLen)
	spillDir := t.TempDir()
	const fileSize = 10000
	dir := testFiles(t, map[string]int{"big.slow": fileSize, "small.slow": 100})
	ad := &slowAdapter{nBatches: 8, batchLen: batchLen}
	svc := New(Config{RepoDir: dir, BudgetBytes: fileSize / 2, SpillDir: spillDir, SpillThresholdBytes: bb})

	big, err := svc.Mount(Request{URI: "big.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the extraction to finish: everything has spilled, and the
	// admission bytes must already be (mostly) back even though the
	// cursor has not drained.
	waitStat(t, svc, "flight never spilled", func(st Stats) bool {
		return st.SpilledFlights == 1 && st.SpilledBytes >= int64(7)*bb
	})
	st := svc.Stats()
	if st.InFlightBytes >= fileSize {
		t.Errorf("InFlightBytes = %d: spilling returned no admission bytes", st.InFlightBytes)
	}
	if got := drain(t, big); got != 8*batchLen {
		t.Errorf("big rows = %d, want %d", got, 8*batchLen)
	}
	small, err := svc.Mount(Request{URI: "small.slow", Adapter: &slowAdapter{nBatches: 1, batchLen: 4}, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, small); got != 4 {
		t.Errorf("small rows = %d", got)
	}
	if got := svc.Stats().InFlightBytes; got != 0 {
		t.Errorf("InFlightBytes = %d at idle, want 0 (exactly-once release across spill flushes and teardown)", got)
	}
}

// TestSpillAbandonedFlightRemovesTempFile: cancelling every waiter of a
// spilling flight stops the extraction and deletes the spill file.
func TestSpillAbandonedFlightRemovesTempFile(t *testing.T) {
	const batchLen = 32
	bb := spillBatchBytes(t, batchLen)
	spillDir := t.TempDir()
	dir := testFiles(t, map[string]int{"a.slow": 2048})
	ad := &slowAdapter{nBatches: 50, batchLen: batchLen, stepGate: make(chan struct{})}
	svc := New(Config{RepoDir: dir, SpillDir: spillDir, SpillThresholdBytes: bb})

	cur, err := svc.Mount(Request{URI: "a.slow", Adapter: ad, Span: cache.FullSpan()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ad.stepGate <- struct{}{}
	}
	// Wait until all four emits have fully landed: closing the cursor
	// while an emit is still in flight would fail that emit's refcount
	// check and stop the stream before the fifth token is consumed.
	for deadline := time.Now().Add(5 * time.Second); ad.streamed.Load() < 4; {
		if time.Now().After(deadline) {
			t.Fatal("adapter never finished the first four batches")
		}
		time.Sleep(time.Millisecond)
	}
	waitStat(t, svc, "flight never spilled", func(st Stats) bool { return st.SpilledFlights == 1 })
	cur.Close()
	ad.stepGate <- struct{}{} // the next emit sees zero refs and stops
	waitStat(t, svc, "abandoned spilling flight never released", func(st Stats) bool {
		return st.FlightsCancelled == 1 && st.InFlightBytes == 0 && st.ReplayBytes == 0
	})
	// The file is removed by the flight goroutine's own teardown, which
	// runs after the cancellation stats flip; poll rather than snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(spillDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned flight leaked spill files: %v", ents)
		}
		time.Sleep(time.Millisecond)
	}
}
