// Package mountsvc is the engine-owned mount service: the shared,
// streaming implementation of ALi's second stage. Before it existed the
// extract/decompress/transform path lived inside per-operator code, so N
// concurrent queries needing the same file paid N full extractions and
// every mount materialized the whole file before chunking. The service
// inverts that ownership — the data path is engine-global and queries
// attach cursors to it:
//
//   - Single-flight mounting: concurrent requests for the same (uri,
//     span) coalesce onto one extraction ("flight") whose record batches
//     are fanned out to every waiter and, per cache policy, streamed
//     into the ingestion cache. Joining is span-containment aware: a
//     request may ride any in-progress flight whose extraction span
//     covers its own.
//   - Streaming extraction: flights drive the adapter's MountStream
//     API, so batches reach waiters (and the operator tree above them)
//     while the file is still being decoded.
//   - Admission budget: a cross-query gate (internal/admission) bounds
//     the total bytes of repository files being extracted at once;
//     requests beyond the budget wait in a FIFO ticket queue — handoff
//     wakeups, so a stream of small requests can never starve a large
//     waiter — backpressuring the mount scheduler instead of OOMing.
//     Waits are cancellable (Request.Ctx) and subject to per-session
//     quotas (Request.Session), so one greedy session cannot hold the
//     whole budget against interactive explorers.
//   - Cancel-aware flights: a flight refcounts its live cursors; when
//     every waiter has closed or drained, an extraction still running is
//     stopped at the next batch boundary, its budget released and any
//     pending cache fill aborted — a fully abandoned query stops paying
//     for data nobody will read.
//
// Batches fanned out by cursors are copy-on-write shares of the
// flight's replay buffer (vector.Batch.Share): waiters may mutate what
// they receive and the first write materializes a private copy, so no
// waiter can ever corrupt another's view.
package mountsvc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/admission"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Config parameterizes a Service.
type Config struct {
	// RepoDir is the scientific file repository root; request URIs are
	// resolved against it.
	RepoDir string
	// Pool, when set, models the cost of reading repository files (cold
	// pages are charged to the disk model; hot repeats are free).
	Pool *storage.BufferPool
	// Cache is the ingestion cache the service fills under file-granular
	// retention. May be nil.
	Cache *cache.Manager
	// OnMount, when set, observes every extracted pre-filter batch
	// (record-aligned, so per-record summaries stay correct). It is
	// invoked from flight goroutines and must be safe for concurrent use.
	OnMount func(uri string, batch *vector.Batch)
	// BudgetBytes bounds the total repository-file bytes being extracted
	// at once across all queries; <= 0 means unlimited. A single file
	// larger than the budget is admitted alone.
	BudgetBytes int64
	// SessionQuotaBytes caps the budget bytes one session may hold at
	// once; <= 0 means no cap (see admission.Config.SessionQuotaBytes).
	SessionQuotaBytes int64
	// MaxSessionShare caps one session's holdings as a fraction of
	// BudgetBytes; <= 0 means no cap. The smaller of the two caps wins.
	MaxSessionShare float64
	// SpillDir, together with SpillThresholdBytes > 0, enables
	// out-of-core replay buffers: once a flight's resident replay buffer
	// exceeds the threshold, its batches are flushed to a temp spill
	// file under SpillDir (removed at flight teardown on every path),
	// admission bytes are given back as batches land on disk, and
	// cursors replay the flushed prefix through streaming spill reads —
	// so a mount larger than the whole budget completes within it.
	SpillDir string
	// SpillThresholdBytes is the resident replay-buffer size (decoded
	// vector.Batch.Bytes) above which a flight spills; <= 0 disables
	// spilling even when SpillDir is set.
	SpillThresholdBytes int64
}

// Delta attributes one request's outcome to the requesting query's
// mount statistics. Exactly one of the booleans is set.
type Delta struct {
	// FileMounted marks the request that led a real extraction, with the
	// flight's totals.
	FileMounted    bool
	BytesRead      int64
	RecordsPruned  int
	RecordsMounted int
	// AdmissionSaved is how many budget bytes the planner's estimate
	// left free compared to whole-file admission (file size minus the
	// bytes actually admitted); only set with FileMounted.
	AdmissionSaved int64
	// SingleFlight marks a request served by joining another request's
	// in-progress flight.
	SingleFlight bool
	// FromCache marks a request short-circuited by a cache entry that
	// already covered its span.
	FromCache bool
}

// Request describes one query's need for a mounted file.
type Request struct {
	// URI names the repository file.
	URI string
	// Ctx, when set, cancels THIS request's cursor: a query cancelled
	// while its mount is blocked (on the byte budget, or mid-stream)
	// returns promptly through Cursor.Next and detaches, holding
	// nothing. The flight itself is untouched while other waiters ride
	// it — its admission wait and extraction are cancelled only when
	// every waiter has detached (abandonment), never by one waiter's
	// context, so one cancelled query can never fail the queries that
	// joined its flight.
	Ctx context.Context
	// Session identifies the requesting session for admission quotas
	// and per-session statistics; empty is a valid (shared) identity.
	Session string
	// Adapter extracts the file's format.
	Adapter catalog.FormatAdapter
	// Span is the restriction the caller's predicate places on the data
	// span column: records entirely outside it may be pruned without
	// decoding. FullSpan means the whole file is needed.
	Span cache.Span
	// BatchRows caps rows per yielded batch (record-aligned; see
	// catalog.FormatAdapter.MountStream). <= 0 selects the default.
	BatchRows int
	// EstBytes, when in (0, file size), is the planner's estimate of the
	// bytes this mount will actually buffer (span-surviving records
	// only): admission charges it instead of the whole-file worst case,
	// admitting more true parallelism under the same budget. 0 means
	// unknown. Ignored under file-granular caching, where the whole file
	// is extracted regardless.
	EstBytes int64
	// Observe, when set, receives the request's statistics attribution.
	// It may fire from a flight goroutine.
	Observe func(Delta)
}

// Cursor yields the record batches of one mounted file, in file order.
// Next returns nil at end of stream. Batches are copy-on-write shares of
// storage common to every waiter of the same flight: reading is free and
// a consumer mutating its batch (through the vector mutation API)
// materializes a private copy without affecting anyone else.
type Cursor interface {
	Next() (*vector.Batch, error)
	Close() error
}

// Stats is a snapshot of service-wide counters.
type Stats struct {
	// FlightsStarted counts real extractions.
	FlightsStarted int64
	// SingleFlightHits counts requests that joined an in-progress flight.
	SingleFlightHits int64
	// CacheServes counts requests short-circuited by the ingestion cache.
	CacheServes int64
	// FlightsCancelled counts extractions stopped mid-file because every
	// waiter had abandoned the flight.
	FlightsCancelled int64
	// InFlightBytes / PeakInFlightBytes track the admission budget
	// (denominated in repository-file bytes, the pre-extraction
	// admission estimate).
	InFlightBytes     int64
	PeakInFlightBytes int64
	// ReplayBytes / PeakReplayBytes track the decoded replay buffers of
	// live flights, measured with vector.Batch.Bytes rather than any
	// ad-hoc estimate. The peak is the true high-water mark, updated at
	// every buffer append — spilling drains the gauge mid-flight, so a
	// completion-time sample would under-report the pressure that
	// triggered the spill.
	ReplayBytes     int64
	PeakReplayBytes int64
	// Out-of-core counters: SpilledFlights counts flights that spilled
	// their replay buffer to disk, SpilledBytes the decoded bytes
	// flushed (the memory the spill released), SpillReplayReads the
	// batches cursors replayed from spill files instead of memory.
	SpilledFlights   int64
	SpilledBytes     int64
	SpillReplayReads int64
	// AdmissionBytesSaved totals the budget bytes honest (estimate-
	// sized) admissions left free versus whole-file admission.
	AdmissionBytesSaved int64
	// QueueDepth is the number of flights currently blocked in the
	// admission queue; BudgetWaits counts admissions that had to queue;
	// BudgetCancelled counts admission waits cancelled because every
	// waiter had detached (including a sole cancelled waiter);
	// WaiterCancels counts cursors detached by their own request's
	// context; StarvationAvoided counts the fairness interventions of
	// the FIFO gate (see admission.Stats.StarvationAvoided).
	QueueDepth        int
	BudgetWaits       int64
	BudgetCancelled   int64
	WaiterCancels     int64
	StarvationAvoided int64
	// PerSession breaks the admission gate down by session identity:
	// held/peak bytes, acquires, waits and wait times, cancellations,
	// quota blocks.
	PerSession map[string]admission.SessionStats
}

// Service is the shared mount service. It is safe for concurrent use by
// any number of queries.
type Service struct {
	cfg Config

	// gate is the shared FIFO admission gate bounding in-flight
	// extraction bytes across all queries and sessions.
	gate *admission.Gate

	// replay-buffer and spill accounting
	rmu            sync.Mutex
	replay         int64
	replayPeak     int64
	spilledFlights int64
	spilledBytes   int64
	spillReads     int64

	// single-flight table
	fmu            sync.Mutex
	flights        map[string][]*flight
	started        int64
	joined         int64
	cached         int64
	cancelled      int64
	waiterCancels  int64
	admissionSaved int64
}

// errFlightAbandoned is the internal sentinel the flight goroutine
// returns through the adapter's emit callback to stop an extraction
// whose every waiter has detached.
var errFlightAbandoned = errors.New("mountsvc: flight abandoned by all waiters")

// New returns a service over the given configuration.
func New(cfg Config) *Service {
	return &Service{
		cfg:     cfg,
		flights: make(map[string][]*flight),
		gate: admission.New(admission.Config{
			BudgetBytes:       cfg.BudgetBytes,
			SessionQuotaBytes: cfg.SessionQuotaBytes,
			MaxSessionShare:   cfg.MaxSessionShare,
		}),
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.fmu.Lock()
	st := Stats{
		FlightsStarted: s.started, SingleFlightHits: s.joined,
		CacheServes: s.cached, FlightsCancelled: s.cancelled,
		WaiterCancels: s.waiterCancels, AdmissionBytesSaved: s.admissionSaved,
	}
	s.fmu.Unlock()
	gs := s.gate.Stats()
	st.InFlightBytes, st.PeakInFlightBytes = gs.UsedBytes, gs.PeakBytes
	st.QueueDepth, st.BudgetWaits = gs.QueueDepth, gs.Waits
	st.BudgetCancelled, st.StarvationAvoided = gs.Cancelled, gs.StarvationAvoided
	st.PerSession = gs.PerSession
	s.rmu.Lock()
	st.ReplayBytes, st.PeakReplayBytes = s.replay, s.replayPeak
	st.SpilledFlights, st.SpilledBytes = s.spilledFlights, s.spilledBytes
	st.SpillReplayReads = s.spillReads
	s.rmu.Unlock()
	return st
}

// spillEnabled reports whether flights may spill their replay buffers.
func (s *Service) spillEnabled() bool {
	return s.cfg.SpillDir != "" && s.cfg.SpillThresholdBytes > 0
}

// diskModel returns the modeled disk spill I/O is charged to: the
// buffer pool's when one is configured, a free disk otherwise.
func (s *Service) diskModel() (storage.DiskModel, *storage.Clock) {
	if s.cfg.Pool != nil {
		return s.cfg.Pool.Model(), s.cfg.Pool.Clock()
	}
	return storage.NoCost(), nil
}

// Gate exposes the admission gate (benchmarks sample per-session waits).
func (s *Service) Gate() *admission.Gate { return s.gate }

// fileGranular reports whether the cache retains whole files, in which
// case flights must extract (and cache) the full file regardless of the
// requested span.
func (s *Service) fileGranular() bool {
	return s.cfg.Cache != nil &&
		s.cfg.Cache.Config().Policy != cache.NeverCache &&
		s.cfg.Cache.Config().Granularity == cache.FileGranular
}

// Mount resolves a request to a batch cursor: joining an in-progress
// flight when one covers the span, serving straight from a covering
// cache entry, or starting a new extraction flight.
func (s *Service) Mount(req Request) (Cursor, error) {
	path := filepath.Join(s.cfg.RepoDir, req.URI)
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("mountsvc: mount %s: %w", req.URI, err)
	}
	span := req.Span
	if s.fileGranular() {
		// Whole-file retention: pruning would cache an incomplete entry.
		span = cache.FullSpan()
	}

	s.fmu.Lock()
	for _, f := range s.flights[req.URI] {
		if f.span.Contains(span) {
			// ref before releasing fmu: cancellation checks refs under
			// both locks, so a flight visible in the table can never be
			// abandoned between the containment check and the attach.
			f.ref()
			s.joined++
			s.fmu.Unlock()
			if req.Observe != nil {
				req.Observe(Delta{SingleFlight: true})
			}
			return &flightCursor{f: f, ctx: req.Ctx}, nil
		}
	}
	// Planning races: rule (1) may have chosen Mount while the cache was
	// still empty; by execution time a completed flight may have filled
	// it. Only file-granular entries are safe to serve here (they hold
	// the whole file; tuple-granular entries hold another query's
	// filtered rows and stay the planner's business).
	if s.fileGranular() {
		if b, ok := s.cfg.Cache.Get(req.URI, span); ok {
			s.cached++
			s.fmu.Unlock()
			if req.Observe != nil {
				req.Observe(Delta{FromCache: true})
			}
			return newStaticCursor(b, req.batchRows()), nil
		}
	}
	f := newFlight(req.URI, span, st.Size(), req.Session, s)
	// Honest admission: when the planner proved (from the frozen Qf
	// result) that span pruning leaves only part of the file to buffer,
	// admit that estimate instead of the whole-file worst case. Skipped
	// under file-granular caching, where the full file is extracted.
	if req.EstBytes > 0 && req.EstBytes < st.Size() && !s.fileGranular() {
		f.admitBytes = req.EstBytes
	}
	s.flights[req.URI] = append(s.flights[req.URI], f)
	s.started++
	f.ref()
	s.fmu.Unlock()

	go s.run(f, req, path, st.Size())
	return &flightCursor{f: f, ctx: req.Ctx}, nil
}

func (r Request) batchRows() int {
	if r.BatchRows > 0 {
		return r.BatchRows
	}
	return vector.DefaultBatchSize
}

// run is the flight goroutine: admission, modeled I/O, streaming
// extraction, fan-out and cache fill. The budget stays held until the
// extraction is done AND every cursor has drained or closed — the
// replay buffer, not just the decode, is what the budget bounds (see
// flight.unref).
func (s *Service) run(f *flight, req Request, path string, size int64) {
	finish := func(err error) {
		s.fmu.Lock()
		s.removeLocked(f)
		s.fmu.Unlock()
		// Extraction-done must be visible before done is: a cursor that
		// observes done and detaches must synchronously release the
		// budget when it was the last reference.
		f.extractionFinished()
		f.finish(err)
	}

	if err := s.admit(f); err != nil {
		// Nothing was ever held: the abandoned flight leaves the gate
		// without touching the budget (a cursor racing the abandonment
		// sees the error).
		finish(fmt.Errorf("mountsvc: mount %s: admission: %w", f.uri, err))
		return
	}

	// Model the cost of reading the external file by pulling its pages
	// through the buffer pool: a cold mount pays seek+transfer, a hot
	// repeat is free (the paper's hot protocol has the file in the OS
	// page cache). Single-flight means concurrent queries pay it once.
	if s.cfg.Pool != nil {
		fh, err := os.Open(path)
		if err != nil {
			finish(fmt.Errorf("mountsvc: mount %s: %w", f.uri, err))
			return
		}
		touchErr := s.cfg.Pool.Touch(path, fh, size)
		fh.Close()
		if touchErr != nil {
			finish(fmt.Errorf("mountsvc: mount %s: %w", f.uri, touchErr))
			return
		}
	}

	// Record pruning from the flight span (disabled for full-span
	// flights, including all flights under file-granular caching).
	pruned := 0
	var keep func(catalog.RecordMeta) bool
	if !f.span.Full {
		lo, hi := f.span.Lo, f.span.Hi
		keep = func(rm catalog.RecordMeta) bool {
			rlo, rhi, known := req.Adapter.RecordSpan(rm)
			if !known {
				return true
			}
			if rhi < lo || rlo > hi {
				pruned++
				return false
			}
			return true
		}
	}

	// File-granular retention streams into the cache as batches arrive;
	// the reservation keeps a concurrent Put from double-inserting.
	var pending *cache.Pending
	if s.fileGranular() {
		pending = s.cfg.Cache.BeginPut(f.uri)
	}

	rows := 0
	err := req.Adapter.MountStream(path, f.uri, keep, req.batchRows(), func(b *vector.Batch) error {
		if s.abandonIfUnreferenced(f) {
			return errFlightAbandoned
		}
		if s.cfg.OnMount != nil {
			s.cfg.OnMount(f.uri, b)
		}
		pending.Append(b)
		rows += b.Len()
		f.append(b)
		return nil
	})
	if errors.Is(err, errFlightAbandoned) {
		// Nobody is left to read (abandonIfUnreferenced removed the
		// flight from the table, so nobody new can join either): drop the
		// partial cache fill and release the budget.
		pending.Abort()
		finish(nil)
		return
	}
	if err != nil {
		pending.Abort()
		finish(err)
		return
	}
	pending.Commit(cache.FullSpan())
	saved := size - f.admitBytes
	if saved > 0 {
		s.fmu.Lock()
		s.admissionSaved += saved
		s.fmu.Unlock()
	}
	if req.Observe != nil {
		req.Observe(Delta{
			FileMounted:    true,
			BytesRead:      size,
			RecordsPruned:  pruned,
			RecordsMounted: rows,
			AdmissionSaved: saved,
		})
	}
	finish(nil)
}

// admit blocks in the admission gate until the flight's bytes fit the
// budget (FIFO order, per-session quotas) or every waiter abandons the
// flight. Deliberately NOT cancelled by any single request's context:
// a flight is shared, and failing it on one waiter's cancellation would
// poison the queries riding it — cancelled waiters leave through their
// own cursors instead, and only the last one's departure (abandonment)
// ends the wait. On success the flight is marked admitted, which is
// what licenses the (single) release.
func (s *Service) admit(f *flight) error {
	actx, cancel := context.WithCancel(context.Background()) //lint:allow ctxcheck the flight's wait is deliberately detached from any one waiter's ctx; abandonment (below) is its only cancellation
	defer cancel()
	go func() {
		// A flight whose every waiter detached while it was still queued
		// must not sit in the gate forever: abandonment cancels the wait.
		select {
		case <-f.abandonCh:
			cancel()
		case <-actx.Done():
		}
	}()
	if err := s.gate.Acquire(actx, f.session, f.admitBytes); err != nil { //lint:allow releasecheck the flight record owns this admission; spill flushes and releaseFlight give it back exactly once in total, gated by f.released
		return err
	}
	f.mu.Lock()
	f.admitted = true
	f.admitHeld = f.admitBytes
	f.mu.Unlock()
	return nil
}

// releaseFlight gives back a finished flight's admission bytes (0 when
// the flight was never admitted) and retires its replay-buffer
// accounting. The flight's released flag guarantees this runs at most
// once per flight; the gate panics on a double release rather than
// silently over-admitting.
func (s *Service) releaseFlight(session string, admitted, buffered int64) {
	if admitted > 0 {
		s.gate.Release(session, admitted)
	}
	s.rmu.Lock()
	s.replay -= buffered
	s.rmu.Unlock()
}

// addReplay charges one appended batch to the replay-buffer gauge. The
// peak is sampled here, at every append — before any spill flush drains
// the gauge — so it is the true high-water mark of resident replay
// memory, not a completion-time reading.
func (s *Service) addReplay(n int64) {
	s.rmu.Lock()
	s.replay += n
	if s.replay > s.replayPeak {
		s.replayPeak = s.replay
	}
	s.rmu.Unlock()
}

// noteSpill retires flushed bytes from the replay gauge and counts them
// as spilled; first marks the flight's first successful flush.
func (s *Service) noteSpill(first bool, n int64) {
	if n == 0 && !first {
		return
	}
	s.rmu.Lock()
	if first {
		s.spilledFlights++
	}
	s.spilledBytes += n
	s.replay -= n
	s.rmu.Unlock()
}

// noteSpillRead counts one batch replayed from a spill file.
func (s *Service) noteSpillRead() {
	s.rmu.Lock()
	s.spillReads++
	s.rmu.Unlock()
}

// abandonIfUnreferenced cancels a flight whose every cursor has detached:
// it is removed from the single-flight table (so no later request can
// join a dying extraction), its pending admission wait is cancelled, and
// the caller (the emit callback) stops the adapter stream. The refs
// check happens under both locks, mirroring the join path, so a request
// that found the flight in the table has always ref'd it before this can
// observe zero. Both the emit callback and the last unref may race here;
// the abandonMarked flag keeps the cancellation count and the admission
// cancel single-shot.
func (s *Service) abandonIfUnreferenced(f *flight) bool {
	s.fmu.Lock()
	f.mu.Lock()
	if f.refs > 0 || f.done || f.extracted {
		f.mu.Unlock()
		s.fmu.Unlock()
		return false
	}
	first := !f.abandonMarked
	f.abandonMarked = true
	f.mu.Unlock()
	s.removeLocked(f)
	if first {
		s.cancelled++
	}
	s.fmu.Unlock()
	if first {
		close(f.abandonCh)
	}
	return true
}

// removeLocked drops a flight from the single-flight table; callers hold
// fmu. Removing an already-removed flight is a no-op.
func (s *Service) removeLocked(f *flight) {
	fs := s.flights[f.uri]
	for i, other := range fs {
		if other == f {
			s.flights[f.uri] = append(fs[:i], fs[i+1:]...)
			break
		}
	}
	if len(s.flights[f.uri]) == 0 {
		delete(s.flights, f.uri)
	}
}

// flight is one in-progress extraction with replay: batches accumulate
// so waiters joining mid-flight still see the file from the beginning.
// Its budget bytes are held until the extraction is done AND the last
// cursor has drained or closed — the replay buffer is resident memory,
// so releasing at decode-end alone would let K queries over K distinct
// files keep K whole decoded files live with the budget showing zero.
type flight struct {
	uri  string
	span cache.Span
	size int64
	// admitBytes is what the admission gate is charged for this flight:
	// the file size by default, or the planner's smaller honest
	// estimate. Set before the flight goroutine starts, immutable after.
	admitBytes int64
	session    string // admission identity of the request that led the flight
	svc        *Service

	// abandonCh is closed (once, by abandonIfUnreferenced) when every
	// waiter has detached, cancelling a still-pending admission wait.
	abandonCh chan struct{}

	mu            sync.Mutex
	cond          *sync.Cond
	batches       []*vector.Batch // resident replay tail: global indices [spilled, spilled+len)
	buffered      int64           // resident replay-buffer bytes (vector.Batch.Bytes)
	done          bool
	err           error
	refs          int   // attached cursors still replaying
	extracted     bool  // the flight goroutine is finished
	admitted      bool  // the gate granted the flight's bytes
	admitHeld     int64 // admission bytes still held (spilling gives some back early)
	released      bool  // budget bytes given back
	abandonMarked bool  // counted as cancelled; abandonCh closed

	// Out-of-core state. Batches with global index < spilled live only
	// in the spill file; spilled grows monotonically and only the flight
	// goroutine writes the file, so a cursor that saw index i < spilled
	// under mu may read frame i outside it.
	spill       *storage.SpillFile
	spillW      *storage.BatchWriter
	spilled     int  // batch frames durable in the spill file
	spillFailed bool // a spill write failed: stay in-memory for good
}

func newFlight(uri string, span cache.Span, size int64, session string, svc *Service) *flight {
	f := &flight{uri: uri, span: span, size: size, admitBytes: size,
		session: session, svc: svc, abandonCh: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// ref attaches one cursor to the flight's replay buffer.
func (f *flight) ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// unref detaches a cursor (it drained to the end, errored, or closed);
// the last detach after extraction releases the budget. When the last
// detach happens before extraction finished — all waiters walked away —
// the flight is abandoned, which also unblocks an admission wait still
// queued in the gate.
func (f *flight) unref() {
	f.mu.Lock()
	f.refs--
	abandon := f.refs <= 0 && !f.done && !f.extracted
	f.maybeReleaseLocked()
	f.mu.Unlock()
	if abandon {
		f.svc.abandonIfUnreferenced(f)
	}
}

// extractionFinished marks the flight goroutine done for budget
// purposes (called whether extraction succeeded or failed).
func (f *flight) extractionFinished() {
	f.mu.Lock()
	f.extracted = true
	f.maybeReleaseLocked()
	f.mu.Unlock()
}

// maybeReleaseLocked returns the flight's bytes exactly once: the
// released flag is the single-shot guard shared by every path that can
// end a flight (normal drain, error, cancellation mid-extraction, and
// an admission wait that never held anything — admitted stays false and
// zero budget bytes are released).
func (f *flight) maybeReleaseLocked() {
	if f.extracted && f.refs <= 0 && !f.released {
		f.released = true
		held := int64(0)
		if f.admitted {
			held = f.admitHeld
		}
		f.svc.releaseFlight(f.session, held, f.buffered)
		if f.spill != nil {
			// Temp spill files never outlive their flight: normal drain,
			// error and abandonment all come through here exactly once.
			f.spill.Remove()
			f.spill, f.spillW = nil, nil
		}
	}
}

// append stores one extracted batch in the replay buffer, charging its
// decoded size to the service's replay gauge. The flight keeps its own
// handle; cursors take copy-on-write shares of it on the way out.
func (f *flight) append(b *vector.Batch) {
	if b == nil || b.Len() == 0 {
		return
	}
	n := b.Bytes()
	f.mu.Lock()
	f.batches = append(f.batches, b)
	f.buffered += n
	f.mu.Unlock()
	f.svc.addReplay(n)
	f.cond.Broadcast()
	f.maybeSpill()
}

// maybeSpill flushes the resident replay buffer to the flight's spill
// file once it exceeds the configured threshold. Only the flight
// goroutine calls this (from append, between adapter emits), so it is
// the sole writer of the spill file and the sole mutator of batches —
// it may read the slice it last published without holding mu. Flushed
// batches leave the replay gauge and give back a matching share of the
// flight's admission bytes: data on disk no longer occupies the
// memory budget, which is what lets a file bigger than the whole
// budget stream through it.
func (f *flight) maybeSpill() {
	svc := f.svc
	if !svc.spillEnabled() {
		return
	}
	f.mu.Lock()
	over := f.buffered > svc.cfg.SpillThresholdBytes && !f.spillFailed
	toFlush := f.batches
	f.mu.Unlock()
	if !over || len(toFlush) == 0 {
		return
	}
	first := f.spillW == nil
	if first {
		sf, err := storage.CreateSpillFile(svc.cfg.SpillDir, "flight-*.spill")
		if err != nil {
			// Out-of-core unavailable (dir gone, disk full): degrade to
			// the in-memory behaviour rather than failing the flight.
			f.mu.Lock()
			f.spillFailed = true
			f.mu.Unlock()
			return
		}
		kinds := make([]vector.Kind, toFlush[0].NumCols())
		for i, c := range toFlush[0].Cols {
			kinds[i] = c.Kind()
		}
		model, clock := svc.diskModel()
		w := storage.NewBatchWriter(sf.File(), kinds, model, clock)
		f.mu.Lock()
		f.spill, f.spillW = sf, w
		f.mu.Unlock()
	}
	var flushed int64
	for i, b := range toFlush {
		if err := f.spillW.Append(b); err != nil {
			// A torn tail may be in the file; spilled was never advanced
			// past it, so no cursor will read it. Keep everything resident
			// from here on.
			f.mu.Lock()
			f.spillFailed = true
			f.spilled += i
			f.batches = f.batches[i:]
			f.buffered -= flushed
			f.mu.Unlock()
			svc.noteSpill(first && i > 0, flushed)
			return
		}
		flushed += b.Bytes()
	}
	f.mu.Lock()
	f.spilled += len(toFlush)
	f.batches = f.batches[len(toFlush):]
	f.buffered -= flushed
	rel := int64(0)
	if f.admitted {
		rel = f.admitHeld
		if rel > flushed {
			rel = flushed
		}
		f.admitHeld -= rel
	}
	f.mu.Unlock()
	if rel > 0 {
		svc.gate.Release(f.session, rel)
	}
	svc.noteSpill(first, flushed)
}

func (f *flight) finish(err error) {
	f.mu.Lock()
	f.done = true
	f.err = err
	f.mu.Unlock()
	f.cond.Broadcast()
}

// flightCursor is one waiter's position in a flight. Closing a cursor
// detaches the waiter without affecting the flight or other waiters —
// an aborting query never starves the rest. A cursor detaches (for
// budget accounting) as soon as it reaches end of stream, not only at
// Close: a sequential union closes its inputs at query end, and holding
// the budget that long would deadlock later mounts of the same query.
//
// Cancellation is per-cursor: when the waiter's request context dies,
// Next returns its error promptly — even while blocked behind a flight
// that is itself queued on the admission budget — and the waiter
// detaches exactly like a Close. The flight is unaffected unless this
// was its last waiter (abandonment).
type flightCursor struct {
	f        *flight
	ctx      context.Context // may be nil: uncancellable
	stop     func() bool     // releases the ctx watcher
	i        int
	detached bool

	// Spill replay state: r reads the flight's spill file sequentially;
	// rpos is the next frame it will decode. Frames this cursor already
	// consumed from memory before they were flushed are decoded and
	// discarded on the way past (their dictionary deltas are needed).
	r    *storage.BatchReader
	rpos int
}

// Next implements Cursor.
func (c *flightCursor) Next() (*vector.Batch, error) {
	if c.detached {
		return nil, nil
	}
	f := c.f
	if c.ctx != nil && c.stop == nil {
		// Wake this waiter out of the replay wait when its context dies.
		// Broadcast under f.mu so the wakeup can never slip between a
		// waiter's ctx check and its cond.Wait.
		c.stop = context.AfterFunc(c.ctx, func() {
			f.mu.Lock()
			f.cond.Broadcast()
			f.mu.Unlock()
		})
	}
	f.mu.Lock()
	for {
		if c.ctx != nil {
			if err := c.ctx.Err(); err != nil {
				f.mu.Unlock()
				c.detach()
				c.f.svc.noteWaiterCancel()
				return nil, err
			}
		}
		if c.i < f.spilled {
			// The batch lives only in the spill file now. Frames below
			// spilled are durable and the file outlives every ref'd
			// cursor, so the read happens outside mu.
			path := f.spill.Path()
			f.mu.Unlock()
			b, err := c.nextSpilled(path)
			if err != nil {
				c.detach()
				return nil, err
			}
			c.f.svc.noteSpillRead()
			return b, nil
		}
		if idx := c.i - f.spilled; idx < len(f.batches) {
			// Fan out a copy-on-write share: every waiter gets its own
			// handle over the replay buffer's storage in O(1).
			b := f.batches[idx].Share()
			c.i++
			f.mu.Unlock()
			return b, nil
		}
		if f.done {
			err := f.err
			f.mu.Unlock()
			c.detach()
			return nil, err
		}
		f.cond.Wait()
	}
}

// nextSpilled advances the cursor's spill reader to frame c.i and
// returns that batch (exclusively owned: decoded fresh from disk, no
// share bookkeeping needed).
func (c *flightCursor) nextSpilled(path string) (*vector.Batch, error) {
	if c.r == nil {
		model, clock := c.f.svc.diskModel()
		r, err := storage.OpenBatchReader(path, model, clock)
		if err != nil {
			return nil, err
		}
		c.r = r
	}
	var b *vector.Batch
	for c.rpos <= c.i {
		var err error
		b, err = c.r.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, fmt.Errorf("%w: spill file ended before frame %d", storage.ErrCorruptSpill, c.i)
		}
		c.rpos++
	}
	c.i++
	return b, nil
}

// detach ends the cursor's attachment exactly once and releases its
// context watcher and spill reader.
func (c *flightCursor) detach() {
	if c.detached {
		return
	}
	c.detached = true
	if c.stop != nil {
		c.stop()
		c.stop = nil
	}
	if c.r != nil {
		c.r.Close()
		c.r = nil
	}
	c.f.unref()
}

// Close implements Cursor.
func (c *flightCursor) Close() error {
	c.detach()
	return nil
}

// noteWaiterCancel counts one cursor detached by its own context.
func (s *Service) noteWaiterCancel() {
	s.fmu.Lock()
	s.waiterCancels++
	s.fmu.Unlock()
}

// staticCursor chunks an already resident batch (a cache entry share).
// Chunks are copy-on-write slices aliasing the entry's storage: reads
// are free, and a consumer writing to a chunk materializes a private
// copy without touching the entry.
type staticCursor struct {
	b    *vector.Batch
	pos  int
	size int
}

func newStaticCursor(b *vector.Batch, size int) *staticCursor {
	return &staticCursor{b: b, size: size}
}

// Next implements Cursor.
func (c *staticCursor) Next() (*vector.Batch, error) {
	if c.b == nil || c.pos >= c.b.Len() {
		return nil, nil
	}
	hi := c.pos + c.size
	if hi > c.b.Len() {
		hi = c.b.Len()
	}
	out := c.b.Slice(c.pos, hi)
	c.pos = hi
	return out, nil
}

// Close implements Cursor.
func (c *staticCursor) Close() error {
	c.b = nil
	return nil
}
