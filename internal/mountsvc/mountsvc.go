// Package mountsvc is the engine-owned mount service: the shared,
// streaming implementation of ALi's second stage. Before it existed the
// extract/decompress/transform path lived inside per-operator code, so N
// concurrent queries needing the same file paid N full extractions and
// every mount materialized the whole file before chunking. The service
// inverts that ownership — the data path is engine-global and queries
// attach cursors to it:
//
//   - Single-flight mounting: concurrent requests for the same (uri,
//     span) coalesce onto one extraction ("flight") whose record batches
//     are fanned out to every waiter and, per cache policy, streamed
//     into the ingestion cache. Joining is span-containment aware: a
//     request may ride any in-progress flight whose extraction span
//     covers its own.
//   - Streaming extraction: flights drive the adapter's MountStream
//     API, so batches reach waiters (and the operator tree above them)
//     while the file is still being decoded.
//   - Admission budget: a cross-query gate bounds the total bytes of
//     repository files being extracted at once; requests beyond the
//     budget block until capacity frees, backpressuring the mount
//     scheduler instead of OOMing.
//   - Cancel-aware flights: a flight refcounts its live cursors; when
//     every waiter has closed or drained, an extraction still running is
//     stopped at the next batch boundary, its budget released and any
//     pending cache fill aborted — a fully abandoned query stops paying
//     for data nobody will read.
//
// Batches fanned out by cursors are copy-on-write shares of the
// flight's replay buffer (vector.Batch.Share): waiters may mutate what
// they receive and the first write materializes a private copy, so no
// waiter can ever corrupt another's view.
package mountsvc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Config parameterizes a Service.
type Config struct {
	// RepoDir is the scientific file repository root; request URIs are
	// resolved against it.
	RepoDir string
	// Pool, when set, models the cost of reading repository files (cold
	// pages are charged to the disk model; hot repeats are free).
	Pool *storage.BufferPool
	// Cache is the ingestion cache the service fills under file-granular
	// retention. May be nil.
	Cache *cache.Manager
	// OnMount, when set, observes every extracted pre-filter batch
	// (record-aligned, so per-record summaries stay correct). It is
	// invoked from flight goroutines and must be safe for concurrent use.
	OnMount func(uri string, batch *vector.Batch)
	// BudgetBytes bounds the total repository-file bytes being extracted
	// at once across all queries; <= 0 means unlimited. A single file
	// larger than the budget is admitted alone.
	BudgetBytes int64
}

// Delta attributes one request's outcome to the requesting query's
// mount statistics. Exactly one of the booleans is set.
type Delta struct {
	// FileMounted marks the request that led a real extraction, with the
	// flight's totals.
	FileMounted    bool
	BytesRead      int64
	RecordsPruned  int
	RecordsMounted int
	// SingleFlight marks a request served by joining another request's
	// in-progress flight.
	SingleFlight bool
	// FromCache marks a request short-circuited by a cache entry that
	// already covered its span.
	FromCache bool
}

// Request describes one query's need for a mounted file.
type Request struct {
	// URI names the repository file.
	URI string
	// Adapter extracts the file's format.
	Adapter catalog.FormatAdapter
	// Span is the restriction the caller's predicate places on the data
	// span column: records entirely outside it may be pruned without
	// decoding. FullSpan means the whole file is needed.
	Span cache.Span
	// BatchRows caps rows per yielded batch (record-aligned; see
	// catalog.FormatAdapter.MountStream). <= 0 selects the default.
	BatchRows int
	// Observe, when set, receives the request's statistics attribution.
	// It may fire from a flight goroutine.
	Observe func(Delta)
}

// Cursor yields the record batches of one mounted file, in file order.
// Next returns nil at end of stream. Batches are copy-on-write shares of
// storage common to every waiter of the same flight: reading is free and
// a consumer mutating its batch (through the vector mutation API)
// materializes a private copy without affecting anyone else.
type Cursor interface {
	Next() (*vector.Batch, error)
	Close() error
}

// Stats is a snapshot of service-wide counters.
type Stats struct {
	// FlightsStarted counts real extractions.
	FlightsStarted int64
	// SingleFlightHits counts requests that joined an in-progress flight.
	SingleFlightHits int64
	// CacheServes counts requests short-circuited by the ingestion cache.
	CacheServes int64
	// FlightsCancelled counts extractions stopped mid-file because every
	// waiter had abandoned the flight.
	FlightsCancelled int64
	// InFlightBytes / PeakInFlightBytes track the admission budget
	// (denominated in repository-file bytes, the pre-extraction
	// admission estimate).
	InFlightBytes     int64
	PeakInFlightBytes int64
	// ReplayBytes / PeakReplayBytes track the decoded replay buffers of
	// live flights, measured with vector.Batch.Bytes rather than any
	// ad-hoc estimate.
	ReplayBytes     int64
	PeakReplayBytes int64
}

// Service is the shared mount service. It is safe for concurrent use by
// any number of queries.
type Service struct {
	cfg Config

	// budget gate and replay-buffer accounting
	bmu        sync.Mutex
	bcond      *sync.Cond
	used       int64
	peak       int64
	replay     int64
	replayPeak int64

	// single-flight table
	fmu       sync.Mutex
	flights   map[string][]*flight
	started   int64
	joined    int64
	cached    int64
	cancelled int64
}

// errFlightAbandoned is the internal sentinel the flight goroutine
// returns through the adapter's emit callback to stop an extraction
// whose every waiter has detached.
var errFlightAbandoned = errors.New("mountsvc: flight abandoned by all waiters")

// New returns a service over the given configuration.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg, flights: make(map[string][]*flight)}
	s.bcond = sync.NewCond(&s.bmu)
	return s
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.fmu.Lock()
	st := Stats{
		FlightsStarted: s.started, SingleFlightHits: s.joined,
		CacheServes: s.cached, FlightsCancelled: s.cancelled,
	}
	s.fmu.Unlock()
	s.bmu.Lock()
	st.InFlightBytes, st.PeakInFlightBytes = s.used, s.peak
	st.ReplayBytes, st.PeakReplayBytes = s.replay, s.replayPeak
	s.bmu.Unlock()
	return st
}

// fileGranular reports whether the cache retains whole files, in which
// case flights must extract (and cache) the full file regardless of the
// requested span.
func (s *Service) fileGranular() bool {
	return s.cfg.Cache != nil &&
		s.cfg.Cache.Config().Policy != cache.NeverCache &&
		s.cfg.Cache.Config().Granularity == cache.FileGranular
}

// Mount resolves a request to a batch cursor: joining an in-progress
// flight when one covers the span, serving straight from a covering
// cache entry, or starting a new extraction flight.
func (s *Service) Mount(req Request) (Cursor, error) {
	path := filepath.Join(s.cfg.RepoDir, req.URI)
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("mountsvc: mount %s: %w", req.URI, err)
	}
	span := req.Span
	if s.fileGranular() {
		// Whole-file retention: pruning would cache an incomplete entry.
		span = cache.FullSpan()
	}

	s.fmu.Lock()
	for _, f := range s.flights[req.URI] {
		if f.span.Contains(span) {
			// ref before releasing fmu: cancellation checks refs under
			// both locks, so a flight visible in the table can never be
			// abandoned between the containment check and the attach.
			f.ref()
			s.joined++
			s.fmu.Unlock()
			if req.Observe != nil {
				req.Observe(Delta{SingleFlight: true})
			}
			return &flightCursor{f: f}, nil
		}
	}
	// Planning races: rule (1) may have chosen Mount while the cache was
	// still empty; by execution time a completed flight may have filled
	// it. Only file-granular entries are safe to serve here (they hold
	// the whole file; tuple-granular entries hold another query's
	// filtered rows and stay the planner's business).
	if s.fileGranular() {
		if b, ok := s.cfg.Cache.Get(req.URI, span); ok {
			s.cached++
			s.fmu.Unlock()
			if req.Observe != nil {
				req.Observe(Delta{FromCache: true})
			}
			return newStaticCursor(b, req.batchRows()), nil
		}
	}
	f := newFlight(req.URI, span, st.Size(), s)
	s.flights[req.URI] = append(s.flights[req.URI], f)
	s.started++
	f.ref()
	s.fmu.Unlock()

	go s.run(f, req, path, st.Size())
	return &flightCursor{f: f}, nil
}

func (r Request) batchRows() int {
	if r.BatchRows > 0 {
		return r.BatchRows
	}
	return vector.DefaultBatchSize
}

// run is the flight goroutine: admission, modeled I/O, streaming
// extraction, fan-out and cache fill. The budget stays held until the
// extraction is done AND every cursor has drained or closed — the
// replay buffer, not just the decode, is what the budget bounds (see
// flight.unref).
func (s *Service) run(f *flight, req Request, path string, size int64) {
	s.acquire(size)

	finish := func(err error) {
		s.fmu.Lock()
		s.removeLocked(f)
		s.fmu.Unlock()
		// Extraction-done must be visible before done is: a cursor that
		// observes done and detaches must synchronously release the
		// budget when it was the last reference.
		f.extractionFinished()
		f.finish(err)
	}

	// Model the cost of reading the external file by pulling its pages
	// through the buffer pool: a cold mount pays seek+transfer, a hot
	// repeat is free (the paper's hot protocol has the file in the OS
	// page cache). Single-flight means concurrent queries pay it once.
	if s.cfg.Pool != nil {
		fh, err := os.Open(path)
		if err != nil {
			finish(fmt.Errorf("mountsvc: mount %s: %w", f.uri, err))
			return
		}
		touchErr := s.cfg.Pool.Touch(path, fh, size)
		fh.Close()
		if touchErr != nil {
			finish(fmt.Errorf("mountsvc: mount %s: %w", f.uri, touchErr))
			return
		}
	}

	// Record pruning from the flight span (disabled for full-span
	// flights, including all flights under file-granular caching).
	pruned := 0
	var keep func(catalog.RecordMeta) bool
	if !f.span.Full {
		lo, hi := f.span.Lo, f.span.Hi
		keep = func(rm catalog.RecordMeta) bool {
			rlo, rhi, known := req.Adapter.RecordSpan(rm)
			if !known {
				return true
			}
			if rhi < lo || rlo > hi {
				pruned++
				return false
			}
			return true
		}
	}

	// File-granular retention streams into the cache as batches arrive;
	// the reservation keeps a concurrent Put from double-inserting.
	var pending *cache.Pending
	if s.fileGranular() {
		pending = s.cfg.Cache.BeginPut(f.uri)
	}

	rows := 0
	err := req.Adapter.MountStream(path, f.uri, keep, req.batchRows(), func(b *vector.Batch) error {
		if s.abandonIfUnreferenced(f) {
			return errFlightAbandoned
		}
		if s.cfg.OnMount != nil {
			s.cfg.OnMount(f.uri, b)
		}
		pending.Append(b)
		rows += b.Len()
		f.append(b)
		return nil
	})
	if errors.Is(err, errFlightAbandoned) {
		// Nobody is left to read (abandonIfUnreferenced removed the
		// flight from the table, so nobody new can join either): drop the
		// partial cache fill and release the budget.
		pending.Abort()
		finish(nil)
		return
	}
	if err != nil {
		pending.Abort()
		finish(err)
		return
	}
	pending.Commit(cache.FullSpan())
	if req.Observe != nil {
		req.Observe(Delta{
			FileMounted:    true,
			BytesRead:      size,
			RecordsPruned:  pruned,
			RecordsMounted: rows,
		})
	}
	finish(nil)
}

// acquire blocks until the flight's bytes fit the budget. A request
// larger than the whole budget is admitted only when nothing else is in
// flight, so it can never deadlock but may exceed the budget alone.
func (s *Service) acquire(n int64) {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	if s.cfg.BudgetBytes > 0 {
		for s.used > 0 && s.used+n > s.cfg.BudgetBytes {
			s.bcond.Wait()
		}
	}
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
}

// releaseFlight gives back a finished flight's admission bytes and
// retires its replay-buffer accounting.
func (s *Service) releaseFlight(admitted, buffered int64) {
	s.bmu.Lock()
	s.used -= admitted
	s.replay -= buffered
	s.bmu.Unlock()
	s.bcond.Broadcast()
}

// addReplay charges one appended batch to the replay-buffer gauge.
func (s *Service) addReplay(n int64) {
	s.bmu.Lock()
	s.replay += n
	if s.replay > s.replayPeak {
		s.replayPeak = s.replay
	}
	s.bmu.Unlock()
}

// abandonIfUnreferenced cancels a flight whose every cursor has detached:
// it is removed from the single-flight table (so no later request can
// join a dying extraction) and the caller stops the adapter stream. The
// refs check happens under both locks, mirroring the join path, so a
// request that found the flight in the table has always ref'd it before
// this can observe zero.
func (s *Service) abandonIfUnreferenced(f *flight) bool {
	s.fmu.Lock()
	f.mu.Lock()
	if f.refs > 0 {
		f.mu.Unlock()
		s.fmu.Unlock()
		return false
	}
	f.mu.Unlock()
	s.removeLocked(f)
	s.cancelled++
	s.fmu.Unlock()
	return true
}

// removeLocked drops a flight from the single-flight table; callers hold
// fmu. Removing an already-removed flight is a no-op.
func (s *Service) removeLocked(f *flight) {
	fs := s.flights[f.uri]
	for i, other := range fs {
		if other == f {
			s.flights[f.uri] = append(fs[:i], fs[i+1:]...)
			break
		}
	}
	if len(s.flights[f.uri]) == 0 {
		delete(s.flights, f.uri)
	}
}

// flight is one in-progress extraction with replay: batches accumulate
// so waiters joining mid-flight still see the file from the beginning.
// Its budget bytes are held until the extraction is done AND the last
// cursor has drained or closed — the replay buffer is resident memory,
// so releasing at decode-end alone would let K queries over K distinct
// files keep K whole decoded files live with the budget showing zero.
type flight struct {
	uri  string
	span cache.Span
	size int64
	svc  *Service

	mu        sync.Mutex
	cond      *sync.Cond
	batches   []*vector.Batch
	buffered  int64 // replay-buffer bytes (vector.Batch.Bytes)
	done      bool
	err       error
	refs      int  // attached cursors still replaying
	extracted bool // the flight goroutine is finished
	released  bool // budget bytes given back
}

func newFlight(uri string, span cache.Span, size int64, svc *Service) *flight {
	f := &flight{uri: uri, span: span, size: size, svc: svc}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// ref attaches one cursor to the flight's replay buffer.
func (f *flight) ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// unref detaches a cursor (it drained to the end, errored, or closed);
// the last detach after extraction releases the budget.
func (f *flight) unref() {
	f.mu.Lock()
	f.refs--
	f.maybeReleaseLocked()
	f.mu.Unlock()
}

// extractionFinished marks the flight goroutine done for budget
// purposes (called whether extraction succeeded or failed).
func (f *flight) extractionFinished() {
	f.mu.Lock()
	f.extracted = true
	f.maybeReleaseLocked()
	f.mu.Unlock()
}

func (f *flight) maybeReleaseLocked() {
	if f.extracted && f.refs <= 0 && !f.released {
		f.released = true
		f.svc.releaseFlight(f.size, f.buffered)
	}
}

// append stores one extracted batch in the replay buffer, charging its
// decoded size to the service's replay gauge. The flight keeps its own
// handle; cursors take copy-on-write shares of it on the way out.
func (f *flight) append(b *vector.Batch) {
	if b == nil || b.Len() == 0 {
		return
	}
	n := b.Bytes()
	f.mu.Lock()
	f.batches = append(f.batches, b)
	f.buffered += n
	f.mu.Unlock()
	f.svc.addReplay(n)
	f.cond.Broadcast()
}

func (f *flight) finish(err error) {
	f.mu.Lock()
	f.done = true
	f.err = err
	f.mu.Unlock()
	f.cond.Broadcast()
}

// flightCursor is one waiter's position in a flight. Closing a cursor
// detaches the waiter without affecting the flight or other waiters —
// an aborting query never starves the rest. A cursor detaches (for
// budget accounting) as soon as it reaches end of stream, not only at
// Close: a sequential union closes its inputs at query end, and holding
// the budget that long would deadlock later mounts of the same query.
type flightCursor struct {
	f        *flight
	i        int
	detached bool
}

// Next implements Cursor.
func (c *flightCursor) Next() (*vector.Batch, error) {
	if c.detached {
		return nil, nil
	}
	f := c.f
	f.mu.Lock()
	for {
		if c.i < len(f.batches) {
			// Fan out a copy-on-write share: every waiter gets its own
			// handle over the replay buffer's storage in O(1).
			b := f.batches[c.i].Share()
			c.i++
			f.mu.Unlock()
			return b, nil
		}
		if f.done {
			err := f.err
			f.mu.Unlock()
			c.detached = true
			f.unref()
			return nil, err
		}
		f.cond.Wait()
	}
}

// Close implements Cursor.
func (c *flightCursor) Close() error {
	if !c.detached {
		c.detached = true
		c.f.unref()
	}
	return nil
}

// staticCursor chunks an already resident batch (a cache entry share).
// Chunks are copy-on-write slices aliasing the entry's storage: reads
// are free, and a consumer writing to a chunk materializes a private
// copy without touching the entry.
type staticCursor struct {
	b    *vector.Batch
	pos  int
	size int
}

func newStaticCursor(b *vector.Batch, size int) *staticCursor {
	return &staticCursor{b: b, size: size}
}

// Next implements Cursor.
func (c *staticCursor) Next() (*vector.Batch, error) {
	if c.b == nil || c.pos >= c.b.Len() {
		return nil, nil
	}
	hi := c.pos + c.size
	if hi > c.b.Len() {
		hi = c.b.Len()
	}
	out := c.b.Slice(c.pos, hi)
	c.pos = hi
	return out, nil
}

// Close implements Cursor.
func (c *staticCursor) Close() error {
	c.b = nil
	return nil
}
