package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
)

// resultCacheOpts enables the result cache with no admission floor.
func resultCacheOpts(extra Options) Options {
	extra.ResultCacheBytes = -1
	return extra
}

// TestResultCacheHitServesIdenticalResult pins the basic hit path: the
// second identical query is served from the cache, byte-identical,
// with zero mounts and the hit attributed to per-query stats.
func TestResultCacheHitServesIdenticalResult(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))

	cold, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.ServedFromResultCache {
		t.Fatal("first execution claims a result-cache serve")
	}
	hit, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.ServedFromResultCache {
		t.Fatal("repeat execution was not served from the result cache")
	}
	if hit.Stats.Mounts.FilesMounted != 0 || hit.Stats.Mounts.ResultCacheHits != 1 {
		t.Fatalf("hit mounts = %+v", hit.Stats.Mounts)
	}
	if hit.Stats.Mounts.ResultCacheBytes <= 0 {
		t.Fatal("hit did not attribute served bytes")
	}
	if cold.Format(0) != hit.Format(0) {
		t.Fatalf("cached result differs:\ncold:\n%s\nhit:\n%s", cold.Format(0), hit.Format(0))
	}
	st := eng.ResultCache().Stats()
	if st.Stores != 1 || st.Hits != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestResultCacheEquivalentSpellingsShareOneEntry pins the canonical
// fingerprint end to end: different spellings of one query hit the
// entry the first spelling stored.
func TestResultCacheEquivalentSpellingsShareOneEntry(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))

	spellings := []string{
		query1,
		// Reordered conjuncts, flipped sides, swapped ON sides.
		`SELECT AVG(D.sample_value)
FROM F JOIN R ON R.uri = F.uri
JOIN D ON D.uri = R.uri AND D.record_id = R.record_id
WHERE R.start_time < '2010-01-12T23:59:59.999'
AND 'ISK' = F.station AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000'
AND D.sample_time > '2010-01-12T22:15:00.000'`,
		// Aliased tables, swapped join order.
		`SELECT AVG(dd.sample_value)
FROM R rr JOIN F ff ON ff.uri = rr.uri
JOIN D dd ON rr.uri = dd.uri AND rr.record_id = dd.record_id
WHERE ff.station = 'ISK' AND ff.channel = 'BHE'
AND rr.start_time > '2010-01-12T00:00:00.000'
AND rr.start_time < '2010-01-12T23:59:59.999'
AND dd.sample_time > '2010-01-12T22:15:00.000'
AND dd.sample_time < '2010-01-12T22:15:02.000'`,
	}
	first, err := eng.Query(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	want := first.Float(0, 0)
	for i, q := range spellings[1:] {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("spelling %d: %v", i+1, err)
		}
		if !res.Stats.ServedFromResultCache {
			t.Fatalf("spelling %d missed the result cache", i+1)
		}
		if got := res.Float(0, 0); got != want {
			t.Fatalf("spelling %d value %v != %v", i+1, got, want)
		}
	}
	if st := eng.ResultCache().Stats(); st.Stores != 1 || st.Hits != int64(len(spellings)-1) {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestResultCacheDifferentialConcurrent is the randomized differential
// test: concurrent clients issue a random mix of queries against a
// cached engine, and every result must be byte-identical to the cold
// answer computed by an identically configured cache-less engine. Run
// under -race it also pins the single-flight locking.
func TestResultCacheDifferentialConcurrent(t *testing.T) {
	m := testRepo(t)
	cold := openEngine(t, m.Dir, Options{Mode: ModeALi})
	cached := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))

	queries := []string{
		query1,
		query2,
		`SELECT station, COUNT(*) FROM F GROUP BY station ORDER BY station`,
		`SELECT COUNT(*) FROM R WHERE R.start_time > '2010-01-12T00:00:00.000'`,
		`SELECT MAX(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'`,
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		res, err := cold.Query(q)
		if err != nil {
			t.Fatalf("cold %q: %v", q, err)
		}
		want[q] = res.Format(0)
	}

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 12; i++ {
				q := queries[rng.Intn(len(queries))]
				res, err := cached.Query(q)
				if err != nil {
					t.Errorf("cached %q: %v", q, err)
					return
				}
				if got := res.Format(0); got != want[q] {
					t.Errorf("cached result differs for %q:\n%s\nwant:\n%s", q, got, want[q])
					return
				}
			}
		}(int64(c) + 1)
	}
	wg.Wait()

	st := cached.ResultCache().Stats()
	if st.Hits+st.Riders == 0 {
		t.Fatalf("concurrent workload never hit the cache: %+v", st)
	}
	if st.Stores > int64(len(queries)) {
		t.Fatalf("more stores than distinct queries: %+v", st)
	}
}

// TestResultCacheInvalidation pins the epoch wiring: a repo/ingestion-
// cache change bumps the epoch and the next identical query re-executes
// instead of serving the stale entry.
func TestResultCacheInvalidation(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{
		Mode:  ModeALi,
		Cache: cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular},
	}))

	first, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Mounts.FilesMounted == 0 {
		t.Fatal("first run mounted nothing")
	}
	epochBefore := eng.ResultCache().Stats().Epoch

	// The file changed: the ingestion-cache drop must bump the epoch...
	eng.NotifyFileChanged(m.Files[0].URI)
	if got := eng.ResultCache().Stats().Epoch; got != epochBefore+1 {
		t.Fatalf("epoch = %d after file change, want %d", got, epochBefore+1)
	}

	// ...and force a full re-execution (mounts happen again).
	again, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.ServedFromResultCache {
		t.Fatal("stale result served after invalidation")
	}
	if again.Stats.Mounts.FilesMounted == 0 && again.Stats.Mounts.CacheHits == 0 {
		t.Fatalf("re-execution touched no data: %+v", again.Stats.Mounts)
	}
	if again.Float(0, 0) != first.Float(0, 0) {
		t.Fatal("unchanged data produced a different answer")
	}

	// Clear (the cold protocol) invalidates too.
	before := eng.ResultCache().Stats().Epoch
	eng.Cache().Clear()
	if got := eng.ResultCache().Stats().Epoch; got != before+1 {
		t.Fatalf("Clear did not bump the epoch: %d vs %d", got, before)
	}
}

// TestResultCacheSingleFlightQueries pins the acceptance criterion at
// engine level: K identical concurrent queries perform one full
// execution — the riders are served as shares with zero extra file
// mounts.
func TestResultCacheSingleFlightQueries(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))

	// A wide query so the leader's execution is long enough to ride.
	q := `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-01T00:00:00.000'`

	const k = 8
	results := make([]*Result, k)
	errs := make([]error, k)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i], errs[i] = eng.Query(q)
		}(i)
	}
	start.Done()
	wg.Wait()

	var mounted, hits int
	var want float64
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		mounted += results[i].Stats.Mounts.FilesMounted
		hits += results[i].Stats.Mounts.ResultCacheHits
		if i == 0 {
			want = results[0].Float(0, 0)
		} else if got := results[i].Float(0, 0); got != want {
			t.Fatalf("client %d answer %v != %v", i, got, want)
		}
	}
	files := len(eng.RepoFiles())
	if mounted != files {
		t.Fatalf("total file mounts = %d, want exactly %d (one execution)", mounted, files)
	}
	if hits != k-1 {
		t.Fatalf("result-cache serves = %d, want %d", hits, k-1)
	}
	st := eng.ResultCache().Stats()
	if st.Stores != 1 {
		t.Fatalf("stores = %d, want 1 (%+v)", st.Stores, st)
	}
}

// TestResultCacheAdmissionGate pins the cost floor: with an absurdly
// high floor nothing is retained, but execution still works.
func TestResultCacheAdmissionGate(t *testing.T) {
	m := testRepo(t)
	opts := resultCacheOpts(Options{Mode: ModeALi})
	opts.ResultCacheMinCost = 24 * time.Hour
	eng := openEngine(t, m.Dir, opts)

	for i := 0; i < 2; i++ {
		if _, err := eng.Query(query1); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.ResultCache().Stats()
	if st.Stores != 0 || st.RejectedStores == 0 {
		t.Fatalf("admission gate did not reject: %+v", st)
	}
}

// TestResultCacheInteractivePath pins that the explorer's Stage1/Proceed
// flow both stores into and probes the cache.
func TestResultCacheInteractivePath(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))

	p, err := eng.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint.IsZero() {
		t.Fatal("Prepare left the fingerprint unset")
	}
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	if bp.Done() {
		t.Fatal("query1 should reach the breakpoint")
	}
	first, err := bp.Proceed()
	if err != nil {
		t.Fatal(err)
	}

	// Same query again: Stage1 itself is short-circuited by the probe.
	p2, err := eng.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	bp2, err := p2.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	if !bp2.Done() {
		t.Fatal("probe stage did not answer the repeated query")
	}
	res := bp2.Result()
	if !res.Stats.ServedFromResultCache {
		t.Fatal("breakpoint result not marked as a cache serve")
	}
	if res.Float(0, 0) != first.Float(0, 0) {
		t.Fatal("cached breakpoint answer differs")
	}
}

// TestResultCacheDisabledIsInert pins that a zero configuration changes
// nothing: no cache, no fingerprint probes, identical behavior to the
// seed engine.
func TestResultCacheDisabledIsInert(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, Options{Mode: ModeALi})
	if eng.ResultCache() != nil {
		t.Fatal("result cache allocated despite being disabled")
	}
	a, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.ServedFromResultCache || b.Stats.ServedFromResultCache {
		t.Fatal("disabled cache served a result")
	}
	if a.Format(0) != b.Format(0) {
		t.Fatal("repeat execution differs")
	}
}

// TestResultCacheEiMode pins that the conventional engine benefits too:
// the pipeline is shared, so Ei queries fingerprint and cache the same
// way.
func TestResultCacheEiMode(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeEi}))
	q := `SELECT station, COUNT(*) FROM F GROUP BY station ORDER BY station`
	first, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.ServedFromResultCache {
		t.Fatal("Ei repeat missed the result cache")
	}
	if first.Format(0) != hit.Format(0) {
		t.Fatal("Ei cached result differs")
	}
}

// TestResultCacheStatsString smoke-checks that stats render (used by the
// explorer's \stats).
func TestResultCacheStatsString(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))
	if _, err := eng.Query(query1); err != nil {
		t.Fatal(err)
	}
	st := eng.ResultCache().Stats()
	s := fmt.Sprintf("%+v", st)
	if s == "" || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestResultCacheStraddleNotRetained pins the review-found straddle
// bug on the interactive path: an invalidation landing between Stage1
// and Proceed must keep the (possibly pre-change) result out of the
// cache.
func TestResultCacheStraddleNotRetained(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, resultCacheOpts(Options{Mode: ModeALi}))

	p, err := eng.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	// The file changes while the query sits at the breakpoint.
	eng.NotifyFileChanged(m.Files[0].URI)
	if _, err := bp.Proceed(); err != nil {
		t.Fatal(err)
	}
	st := eng.ResultCache().Stats()
	if st.Stores != 0 {
		t.Fatalf("straddling execution was retained: %+v", st)
	}
	// The next identical query must execute, not serve a stale entry.
	res, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ServedFromResultCache {
		t.Fatal("stale straddling result served")
	}
}
