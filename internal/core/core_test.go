package core

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/mseed"
	"repro/internal/repo"
	"repro/internal/storage"
	"repro/internal/vector"
)

// query1 is the paper's Figure 2, verbatim.
const query1 = `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';`

// query2 retrieves a waveform window from all channels of a station.
const query2 = `SELECT D.sample_time, D.sample_value
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';`

// testRepo generates a small repository once per test binary.
func testRepo(t *testing.T) *repo.Manifest {
	t.Helper()
	dir := t.TempDir()
	spec := repo.DefaultSpec(dir)
	spec.Stations = spec.Stations[:3] // ISK, ANTO, APE
	spec.Days = 13                    // covers 2010-01-12
	spec.RecordsPerFile = 4
	spec.SamplesPerRecord = 800
	// 4 x 800 samples at 40 Hz = 80 s of coverage per file; start at
	// 22:14 so the paper's literal 22:15:00-22:15:02 window is inside.
	spec.DayOffset = 22*time.Hour + 14*time.Minute
	m, err := repo.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openEngine(t *testing.T, repoDir string, opts Options) *Engine {
	t.Helper()
	opts.RepoDir = repoDir
	if opts.DBDir == "" {
		opts.DBDir = filepath.Join(t.TempDir(), "db")
	}
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// expectedQuery1 computes Query 1's answer straight from the repository
// files, bypassing the engine entirely.
func expectedQuery1(t *testing.T, m *repo.Manifest) (float64, int) {
	t.Helper()
	lo := time.Date(2010, 1, 12, 22, 15, 0, 0, time.UTC).UnixNano()
	hi := time.Date(2010, 1, 12, 22, 15, 2, 0, time.UTC).UnixNano()
	var sum float64
	var n int
	for _, f := range m.Files {
		if f.Station != "ISK" || f.Channel != "BHE" || f.DayOfYear != 12 {
			continue
		}
		recs, err := mseed.ReadFile(m.Path(f.URI))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			for i, s := range r.Samples {
				ts := r.Header.SampleTime(i)
				if ts > lo && ts < hi {
					sum += float64(s)
					n++
				}
			}
		}
	}
	if n == 0 {
		t.Fatal("test repository has no samples in the Query 1 window")
	}
	return sum / float64(n), n
}

func TestQuery1ALiMatchesGroundTruth(t *testing.T) {
	m := testRepo(t)
	want, wantRows := expectedQuery1(t, m)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})

	res, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1 {
		t.Fatalf("rows = %d, want 1", res.Rows())
	}
	got := res.Float(0, 0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AVG = %v, want %v", got, want)
	}
	// Exactly one file is of interest (ISK/BHE/day 12).
	if res.Stats.FilesOfInterest != 1 {
		t.Errorf("files of interest = %d, want 1", res.Stats.FilesOfInterest)
	}
	if res.Stats.Mounts.FilesMounted != 1 {
		t.Errorf("mounted %d files, want 1", res.Stats.Mounts.FilesMounted)
	}
	// σ∘mount should have pruned records outside 22:15:00-22:15:02.
	if res.Stats.Mounts.RecordsPruned == 0 {
		t.Error("no records pruned by the fused selection")
	}
	_ = wantRows
}

func TestQuery1EiMatchesALi(t *testing.T) {
	m := testRepo(t)
	ali := openEngine(t, m.Dir, Options{Mode: ModeALi})
	ei := openEngine(t, m.Dir, Options{Mode: ModeEi})

	aliRes, err := ali.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	eiRes, err := ei.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aliRes.Float(0, 0)-eiRes.Float(0, 0)) > 1e-9 {
		t.Errorf("ALi AVG %v != Ei AVG %v", aliRes.Float(0, 0), eiRes.Float(0, 0))
	}
}

func TestQuery2BothModes(t *testing.T) {
	m := testRepo(t)
	ali := openEngine(t, m.Dir, Options{Mode: ModeALi})
	ei := openEngine(t, m.Dir, Options{Mode: ModeEi})

	aliRes, err := ali.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	eiRes, err := ei.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	if aliRes.Rows() == 0 {
		t.Fatal("Query 2 returned no rows")
	}
	if aliRes.Rows() != eiRes.Rows() {
		t.Fatalf("ALi %d rows != Ei %d rows", aliRes.Rows(), eiRes.Rows())
	}
	// Query 2 touches all three channels of ISK: 3 files of interest.
	if aliRes.Stats.FilesOfInterest != 3 {
		t.Errorf("files of interest = %d, want 3", aliRes.Stats.FilesOfInterest)
	}
	// Row-level agreement: sum both value columns.
	sum := func(r *Result) float64 {
		var s float64
		for _, b := range r.Mat.Batches {
			for _, v := range b.Cols[1].Float64s() {
				s += v
			}
		}
		return s
	}
	if math.Abs(sum(aliRes)-sum(eiRes)) > 1e-6 {
		t.Error("Query 2 values disagree across modes")
	}
}

func TestMetadataOnlyQueryNeverMounts(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	res, err := e.Query(`SELECT station, COUNT(*) AS files FROM F GROUP BY station ORDER BY station`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.MetadataOnly {
		t.Error("metadata-only query not recognized")
	}
	if res.Stats.Mounts.FilesMounted != 0 {
		t.Error("metadata-only query mounted files")
	}
	if res.Rows() != 3 {
		t.Errorf("rows = %d, want 3 stations", res.Rows())
	}
	// 3 channels x 13 days = 39 files per station.
	if got := res.Value(0, 1).I; got != 39 {
		t.Errorf("files per station = %d, want 39", got)
	}
}

func TestEmptyFilesOfInterestSkipsIngestion(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	res, err := e.Query(`SELECT AVG(D.sample_value)
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'NOPE'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilesOfInterest != 0 || res.Stats.Mounts.FilesMounted != 0 {
		t.Errorf("best case violated: %d files of interest, %d mounted",
			res.Stats.FilesOfInterest, res.Stats.Mounts.FilesMounted)
	}
	if !res.Stats.Estimate.Empty {
		t.Error("estimate should mark the result empty")
	}
}

func TestBreakpointAbort(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	p, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	if bp.Done() {
		t.Fatal("Query 1 should pause at the breakpoint")
	}
	if len(bp.FilesOfInterest()) != 1 {
		t.Errorf("breakpoint files = %v", bp.FilesOfInterest())
	}
	if bp.Est.Files != 1 || bp.Est.EstRows == 0 || bp.Est.BytesToMount == 0 {
		t.Errorf("estimate incomplete: %+v", bp.Est)
	}
	// Aborting here simply means not calling Proceed: nothing was mounted.
}

func TestEstimatePredictsRows(t *testing.T) {
	m := testRepo(t)
	_, wantRows := expectedQuery1(t, m)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	p, _ := e.Prepare(query1)
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	est := bp.Est.EstRows
	if est < int64(wantRows)/3 || est > int64(wantRows)*3 {
		t.Errorf("estimated %d rows, actual %d: off by more than 3x", est, wantRows)
	}
}

func TestIngestionGapALiVsEi(t *testing.T) {
	m := testRepo(t)
	ali := openEngine(t, m.Dir, Options{Mode: ModeALi})
	ei := openEngine(t, m.Dir, Options{Mode: ModeEi})

	aliUp := ali.Report().Wall + ali.Report().ModeledIO
	eiUp := ei.Report().Wall + ei.Report().ModeledIO
	if aliUp*2 >= eiUp {
		t.Errorf("up-front ingestion: ALi %v should be far below Ei %v", aliUp, eiUp)
	}
	// Storage gap: metadata-only DB must be much smaller.
	if ali.Store().SizeOnDisk()*4 >= ei.Store().SizeOnDisk() {
		t.Errorf("storage: ALi %d bytes should be far below Ei %d bytes",
			ali.Store().SizeOnDisk(), ei.Store().SizeOnDisk())
	}
	if ei.IndexBytes() == 0 {
		t.Error("Ei built no indexes")
	}
	if ali.IndexBytes() != 0 {
		t.Error("ALi should build no indexes")
	}
}

func TestCachingAvoidsRemount(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{
		Mode:  ModeALi,
		Cache: cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular},
	})
	r1, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Mounts.FilesMounted != 1 {
		t.Fatalf("first run mounted %d files", r1.Stats.Mounts.FilesMounted)
	}
	r2, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Mounts.FilesMounted != 0 {
		t.Errorf("second run mounted %d files, want 0 (cache)", r2.Stats.Mounts.FilesMounted)
	}
	if r2.Stats.Mounts.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", r2.Stats.Mounts.CacheHits)
	}
	if math.Abs(r1.Float(0, 0)-r2.Float(0, 0)) > 1e-9 {
		t.Error("cached answer differs")
	}
}

func TestTupleGranularCacheContainment(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{
		Mode:  ModeALi,
		Cache: cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular},
	})
	if _, err := e.Query(query1); err != nil {
		t.Fatal(err)
	}
	// Same window again: served from tuple cache.
	r2, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Mounts.FilesMounted != 0 {
		t.Errorf("identical window remounted %d files", r2.Stats.Mounts.FilesMounted)
	}
	// Wider window: tuple cache insufficient, must remount the whole file.
	wide := `SELECT AVG(D.sample_value)
	FROM F JOIN R ON F.uri = R.uri
	JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
	WHERE F.station = 'ISK' AND F.channel = 'BHE'
	AND R.start_time > '2010-01-12T00:00:00.000'
	AND R.start_time < '2010-01-12T23:59:59.999'
	AND D.sample_time > '2010-01-12T22:14:00.000'
	AND D.sample_time < '2010-01-12T22:16:00.000'`
	r3, err := e.Query(wide)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.Mounts.FilesMounted != 1 {
		t.Errorf("widened window should force a remount, mounted %d", r3.Stats.Mounts.FilesMounted)
	}
}

func TestPerFileStrategyMatchesBulk(t *testing.T) {
	m := testRepo(t)
	bulk := openEngine(t, m.Dir, Options{Mode: ModeALi, Strategy: StrategyBulk})
	perFile := openEngine(t, m.Dir, Options{Mode: ModeALi, Strategy: StrategyPerFile})

	q := `SELECT AVG(D.sample_value)
	FROM F JOIN R ON F.uri = R.uri
	JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
	WHERE F.station = 'ISK'
	AND D.sample_time > '2010-01-12T22:15:00.000'
	AND D.sample_time < '2010-01-12T22:15:02.000'`
	rb, err := bulk.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := perFile.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rb.Float(0, 0)-rp.Float(0, 0)) > 1e-9 {
		t.Errorf("bulk %v != per-file %v", rb.Float(0, 0), rp.Float(0, 0))
	}
	if rp.Stats.Strategy != StrategyPerFile {
		t.Error("strategy not recorded")
	}
}

func TestDerivedMetadataAnswersSecondQuery(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, EnableDerived: true})
	// Full-record query: the whole day's records for ISK/BHE.
	full := `SELECT AVG(D.sample_value)
	FROM F JOIN R ON F.uri = R.uri
	JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
	WHERE F.station = 'ISK' AND F.channel = 'BHE'
	AND R.start_time > '2010-01-12T00:00:00.000'
	AND R.start_time < '2010-01-12T23:59:59.999'`
	r1, err := e.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.AnsweredFromDerived {
		t.Fatal("first query cannot be answered from derived metadata")
	}
	if e.Derived().Len() == 0 {
		t.Fatal("mount did not derive metadata")
	}
	r2, err := e.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.AnsweredFromDerived {
		t.Error("repeat summary query should be answered from derived metadata")
	}
	if r2.Stats.Mounts.FilesMounted != 0 {
		t.Error("derived answer should not mount")
	}
	if math.Abs(r1.Float(0, 0)-r2.Float(0, 0)) > 1e-9 {
		t.Errorf("derived answer %v != mounted answer %v", r2.Float(0, 0), r1.Float(0, 0))
	}
}

func TestColdVsHotALi(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	e.FlushCold()
	e.Clock().Reset()
	if _, err := e.Query(query1); err != nil {
		t.Fatal(err)
	}
	cold := e.Clock().Elapsed()

	e.Clock().Reset()
	if _, err := e.Query(query1); err != nil {
		t.Fatal(err)
	}
	hot := e.Clock().Elapsed()
	if cold == 0 {
		t.Error("cold run charged no modeled I/O")
	}
	// Hot still pays the mount (NeverCache), but not metadata I/O.
	if hot > cold {
		t.Errorf("hot %v > cold %v", hot, cold)
	}
}

func TestQueryNoMetadataWorstCase(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	res, err := e.Query(`SELECT COUNT(*) FROM D`)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: every repository file is mounted.
	if res.Stats.Mounts.FilesMounted != len(e.RepoFiles()) {
		t.Errorf("mounted %d files, want all %d", res.Stats.Mounts.FilesMounted, len(e.RepoFiles()))
	}
	wantSamples := int64(3 * 3 * 13 * 4 * 800)
	if got := res.Value(0, 0).I; got != wantSamples {
		t.Errorf("COUNT(*) = %d, want %d", got, wantSamples)
	}
}

func TestPlanStringShowsStages(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	p, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	s := p.PlanString()
	for _, want := range []string{"Qf", "Qs", "result-scan", "scan[metadata] F"} {
		if !contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEiIndexJoinIsUsed(t *testing.T) {
	m := testRepo(t)
	ei := openEngine(t, m.Dir, Options{Mode: ModeEi})
	ei.FlushCold()
	ei.Pool().ResetStats()
	if _, err := ei.Query(query1); err != nil {
		t.Fatal(err)
	}
	// Cold Ei must pay random I/O (index probes + row fetches).
	if ei.Pool().Stats().SeeksPayed < 3 {
		t.Errorf("cold Ei payed only %d seeks; index join apparently unused", ei.Pool().Stats().SeeksPayed)
	}
}

func TestReopenPersistedALiDatabase(t *testing.T) {
	m := testRepo(t)
	dbDir := filepath.Join(t.TempDir(), "db")
	e1 := openEngine(t, m.Dir, Options{Mode: ModeALi, DBDir: dbDir})
	r1, err := e1.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	e2 := openEngine(t, m.Dir, Options{Mode: ModeALi, DBDir: dbDir})
	if e2.Report().Metadata.Files != 0 {
		t.Error("reopen should not re-ingest metadata")
	}
	r2, err := e2.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Float(0, 0)-r2.Float(0, 0)) > 1e-9 {
		t.Error("answer changed after reopen")
	}
}

func TestModeledIOAccounting(t *testing.T) {
	m := testRepo(t)
	disk := storage.HDD7200()
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, Disk: &disk})
	res, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stage2IO == 0 {
		t.Error("mount charged no modeled I/O")
	}
	if res.Stats.Modeled() <= res.Stats.TotalWall {
		t.Error("Modeled() should add I/O on top of wall time")
	}
	_ = vector.KindInt64
}

func TestProceedIncrementalMatchesFull(t *testing.T) {
	m := testRepo(t)
	q := `SELECT AVG(D.sample_value)
	FROM F JOIN R ON F.uri = R.uri
	JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
	WHERE F.station = 'ISK'
	AND R.start_time > '2010-01-12T00:00:00.000'
	AND R.start_time < '2010-01-12T23:59:59.999'
	AND D.sample_time > '2010-01-12T22:15:00.000'
	AND D.sample_time < '2010-01-12T22:15:02.000'`

	full := openEngine(t, m.Dir, Options{Mode: ModeALi})
	want, err := full.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	inc := openEngine(t, m.Dir, Options{Mode: ModeALi})
	p, err := inc.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	var rounds []Partial
	res, err := bp.ProceedIncremental(1, func(pt Partial) bool {
		rounds = append(rounds, pt)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 channels at ISK = 3 files of interest = 3 ingestion rounds.
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	if rounds[0].FilesProcessed != 1 || rounds[2].FilesProcessed != 3 || rounds[2].FilesTotal != 3 {
		t.Errorf("round progress wrong: %+v", rounds)
	}
	if res.Stats.StoppedEarly {
		t.Error("not stopped, but marked stopped")
	}
	if math.Abs(res.Float(0, 0)-want.Float(0, 0)) > 1e-9 {
		t.Errorf("incremental %v != bulk %v", res.Float(0, 0), want.Float(0, 0))
	}
	// Partial values must converge to the final answer.
	if math.Abs(rounds[2].Values[0].AsFloat()-want.Float(0, 0)) > 1e-9 {
		t.Error("last partial != final answer")
	}
}

func TestProceedIncrementalEarlyStop(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	q := `SELECT COUNT(*)
	FROM F JOIN R ON F.uri = R.uri
	JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
	WHERE F.station = 'ISK'
	AND R.start_time > '2010-01-12T00:00:00.000'
	AND R.start_time < '2010-01-12T23:59:59.999'`
	p, _ := e.Prepare(q)
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bp.ProceedIncremental(1, func(pt Partial) bool {
		return pt.FilesProcessed < 2 // stop after the second file
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.StoppedEarly {
		t.Fatal("early stop not recorded")
	}
	// 2 of 3 files x 4 records x 800 samples.
	if got := res.Value(0, 0).I; got != 2*4*800 {
		t.Errorf("partial COUNT = %d, want %d", got, 2*4*800)
	}
	if res.Stats.Mounts.FilesMounted != 2 {
		t.Errorf("mounted %d files after early stop, want 2", res.Stats.Mounts.FilesMounted)
	}
}

func TestProceedIncrementalNonAggregate(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	p, _ := e.Prepare(query2)
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	res, err := bp.ProceedIncremental(1, func(pt Partial) bool {
		calls++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("non-aggregate plans should make one callback, got %d", calls)
	}
	if res.Rows() == 0 {
		t.Error("no rows from fallback execution")
	}
}
