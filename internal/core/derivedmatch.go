package core

import (
	"repro/internal/derived"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/vector"
)

// tryDerivedAnswer attempts to answer the query from derived metadata
// alone (paper §5, "Extending metadata"): when the query is a global
// aggregate of the data table's value column whose only actual-data
// restriction is a span window, and every record of interest has already
// been summarized by an earlier mount, the answer is computed without
// ingesting anything.
func (e *Engine) tryDerivedAnswer(p *Prepared, bp *Breakpoint) (*Result, bool) {
	if !p.HasStages || bp.qfResult == nil || len(p.actuals) != 1 {
		return nil, false
	}
	actual := p.actuals[0]
	_, _, dataDef := e.adapter.Tables()
	if e.dataValCol < 0 {
		return nil, false
	}
	valName := actual.Binding + "." + dataDef.Columns[e.dataValCol].Name
	spanName := actual.Binding + "." + e.adapter.DataSpanColumn()

	// The actual-data predicate may restrict only the span column.
	if actual.Pred != nil && !predOnlyReferences(actual.Pred, spanName) {
		return nil, false
	}

	// Plan shape: Project(Aggregate(join...)) with one aggregate over the
	// value column and no GROUP BY.
	proj, agg, _ := matchGlobalAggOverJoin(p.Dec.Qs)
	if agg == nil || len(agg.Aggs) != 1 {
		return nil, false
	}
	spec := agg.Aggs[0]
	if spec.Distinct {
		return nil, false
	}
	var argName string
	if spec.Arg != nil {
		col, ok := spec.Arg.(*expr.Col)
		if !ok {
			return nil, false
		}
		argName = col.Name
	}
	if spec.Func != plan.AggCount && argName != valName {
		return nil, false
	}
	if spec.Func == plan.AggCount && spec.Arg != nil && argName != valName {
		return nil, false
	}

	// The join must pair D rows with Qf rows on both uri and record id, so
	// each record of interest appears exactly once in the Qf result.
	uriCol, err := plan.CollectURIColumn(p.Dec.Qs, p.Dec.Name, actual.Binding, e.adapter.URIColumn())
	if err != nil {
		return nil, false
	}
	ridCol, err := plan.CollectURIColumn(p.Dec.Qs, p.Dec.Name, actual.Binding, e.adapter.RecordIDColumn())
	if err != nil {
		return nil, false
	}
	hints, ok := e.adapter.(EstimateHints)
	if !ok {
		return nil, false
	}
	loName, hiName := hints.RecordSpanColumns()

	uriIdx := bp.qfResult.Column(uriCol)
	ridIdx := bp.qfResult.Column(ridCol)
	loIdx := bp.qfResult.Column(loName)
	hiIdx := bp.qfResult.Column(hiName)
	if uriIdx < 0 || ridIdx < 0 || loIdx < 0 || hiIdx < 0 {
		return nil, false
	}
	var refs []derived.RecordRef
	for _, b := range bp.qfResult.Batches {
		uris := b.Cols[uriIdx].Strings()
		rids := b.Cols[ridIdx].Int64s()
		los := b.Cols[loIdx].Int64s()
		his := b.Cols[hiIdx].Int64s()
		for i := range uris {
			refs = append(refs, derived.RecordRef{
				URI: uris[i], RecordID: rids[i], SpanLo: los[i], SpanHi: his[i],
			})
		}
	}
	val, ok := e.derived.Answer(refs, bp.spanLo, bp.spanHi, spec.Func)
	if !ok {
		return nil, false
	}

	// Assemble the single-row result with the projected schema.
	outSchema := p.Dec.Qs.Schema()
	if proj != nil {
		outSchema = proj.Schema()
	}
	if len(outSchema) != 1 {
		return nil, false
	}
	col := vector.New(outSchema[0].Kind, 1)
	switch outSchema[0].Kind {
	case vector.KindFloat64:
		col.AppendFloat64(val.AsFloat())
	case vector.KindInt64:
		col.AppendInt64(val.AsInt())
	case vector.KindTime:
		col.AppendInt64(val.AsInt())
	default:
		return nil, false
	}
	mat := &exec.Materialized{Schema: outSchema, Batches: []*vector.Batch{vector.NewBatch(col)}}
	return &Result{Columns: columnNames(outSchema), Mat: mat}, true
}

// predOnlyReferences reports whether every column reference in pred is
// the named column.
func predOnlyReferences(pred expr.Expr, name string) bool {
	ok := true
	pred.Walk(func(x expr.Expr) {
		if c, isCol := x.(*expr.Col); isCol && c.Name != name {
			ok = false
		}
	})
	return ok
}

// matchGlobalAggOverJoin is like matchGlobalAggOverUnion but before rule
// (1) has run: the aggregate sits over the join of the (not yet
// expanded) actual scan with the result-scan.
func matchGlobalAggOverJoin(root plan.Node) (*plan.Project, *plan.Aggregate, plan.Node) {
	var proj *plan.Project
	n := root
	if p, ok := n.(*plan.Project); ok {
		proj = p
		n = p.Child
	}
	agg, ok := n.(*plan.Aggregate)
	if !ok || len(agg.GroupBy) > 0 {
		return nil, nil, nil
	}
	return proj, agg, agg.Child
}
