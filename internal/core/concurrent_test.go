package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cache"
)

// TestConcurrentQueries runs a mixed workload of metadata-only and
// two-stage queries concurrently against one ALi engine: shared state
// (buffer pool, ingestion cache, derived store, qf-name counter) must
// tolerate parallel explorers.
func TestConcurrentQueries(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, EnableDerived: true})

	// Ground truth once, sequentially.
	want, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := want.Float(0, 0)

	queries := []string{
		query1,
		query2,
		`SELECT station, COUNT(*) AS n FROM F GROUP BY station ORDER BY station`,
		`SELECT COUNT(*) FROM R`,
	}
	const workers = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := e.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if q == query1 && math.Abs(res.Float(0, 0)-wantAvg) > 1e-9 {
					errs <- errWrongAnswer
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errWrongAnswer = &queryError{"concurrent query returned a different answer"}

type queryError struct{ msg string }

func (e *queryError) Error() string { return e.msg }

// TestConcurrentQueriesWithCache stresses the ingestion cache: parallel
// mounts and cache-scans of the same files under an LRU budget small
// enough to force evictions mid-flight (the cache-scan fallback path).
func TestConcurrentQueriesWithCache(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{
		Mode:  ModeALi,
		Cache: cacheConfigTinyLRU(),
	})
	want, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := want.Float(0, 0)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := e.Query(query1)
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(res.Float(0, 0)-wantAvg) > 1e-9 {
					errs <- errWrongAnswer
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// cacheConfigTinyLRU is a deliberately tiny cache so concurrent queries
// evict each other's entries.
func cacheConfigTinyLRU() cache.Config {
	return cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular, MaxBytes: 64 << 10}
}
