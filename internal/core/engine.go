// Package core implements the paper's primary contribution: a database
// engine with two-stage query execution and automated lazy ingestion
// (ALi) over scientific file repositories.
//
// An Engine owns a column store, a catalog whose tables are split into
// metadata (M) and actual data (A), a format-adapter registry, an
// ingestion cache and (optionally) a derived-metadata store. In ALi mode
// only metadata is loaded up-front; every query is decomposed as
// Q = Qf ⋈ Qs, the metadata branch Qf runs first, the run-time
// optimization phase applies rewrite rule (1), and the second stage
// mounts exactly the files of interest. In Ei mode (the baseline) the
// whole repository is ingested eagerly and primary/foreign-key indexes
// are built before the first query.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/derived"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/mountsvc"
	"repro/internal/resultcache"
	"repro/internal/seismic"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Mode selects the ingestion approach.
type Mode int

// Ingestion modes (the two systems compared in the paper's evaluation).
const (
	// ModeALi loads metadata only; actual data is ingested lazily per
	// query by the second execution stage.
	ModeALi Mode = iota
	// ModeEi ingests the entire repository eagerly up-front and builds
	// key indexes, like a conventional warehouse.
	ModeEi
)

func (m Mode) String() string {
	if m == ModeALi {
		return "ALi"
	}
	return "Ei"
}

// MergeStrategy selects how the second stage combines per-file data —
// the paper's run-time optimization question (a) vs (b).
type MergeStrategy int

// Merge strategies.
const (
	// StrategyBulk merges mounted data into one stream and runs the
	// higher operators once (paper's option (a)).
	StrategyBulk MergeStrategy = iota
	// StrategyPerFile runs the higher operators per file and merges the
	// partial results (paper's option (b); applies to global aggregates,
	// falling back to bulk otherwise).
	StrategyPerFile
)

func (s MergeStrategy) String() string {
	if s == StrategyBulk {
		return "bulk"
	}
	return "per-file"
}

// Options configures an Engine.
type Options struct {
	// Mode is ALi (default) or Ei.
	Mode Mode
	// DBDir holds column storage and indexes; RepoDir is the scientific
	// file repository being explored.
	DBDir   string
	RepoDir string
	// Adapter maps the repository's format onto the schema (defaults to
	// the seismic mSEED adapter).
	Adapter catalog.FormatAdapter
	// Disk is the modeled storage device (defaults to HDD7200).
	Disk *storage.DiskModel
	// PoolPages sizes the buffer pool (defaults to 16384 pages = 1 GiB).
	PoolPages int
	// Cache configures the ingestion cache (defaults to NeverCache, the
	// paper's preliminary setting).
	Cache cache.Config
	// BatchSize overrides the execution batch size.
	BatchSize int
	// Parallelism bounds the worker pools of the parallel ingestion and
	// mount-scheduling subsystem: how many repository files are
	// extracted, decompressed and transformed concurrently during
	// up-front loads and during the second execution stage. 0 (the
	// default) selects runtime.GOMAXPROCS(0); 1 forces the sequential
	// paths. Query results are identical at every setting.
	Parallelism int
	// MountBudgetBytes bounds the total repository-file bytes being
	// extracted at once ACROSS all concurrent queries of this engine —
	// the mount service's admission gate. Requests beyond the budget
	// wait (in FIFO order, cancellable through QueryAs's context)
	// instead of OOMing the server; a single file larger than the whole
	// budget is admitted alone. <= 0 means unlimited.
	MountBudgetBytes int64
	// MountSessionQuotaBytes caps the mount-budget bytes one session
	// (see Engine.QueryAs) may hold at once; <= 0 means no cap.
	MountSessionQuotaBytes int64
	// MountMaxSessionShare caps one session's mount-budget holdings as a
	// fraction of MountBudgetBytes (0 < share <= 1); <= 0 means no cap.
	// With both caps set the smaller wins. Either way a session at its
	// quota blocks only itself: its requests are passed over in the
	// admission scan, never the sessions queued behind them.
	MountMaxSessionShare float64
	// ResultCacheBytes enables the engine-wide result cache: completed
	// query results are retained frozen, keyed by canonical plan
	// fingerprint + invalidation epoch, and served to later identical
	// queries (and to concurrent identical queries, via query-granular
	// single-flight) as O(1) copy-on-write shares. > 0 bounds resident
	// result bytes; < 0 enables with no bound; 0 (the default) disables
	// the cache, keeping the paper-reproduction measurements honest.
	ResultCacheBytes int64
	// ResultCacheMinCost gates result-cache admission: results whose
	// recompute-cost signal (breakpoint estimate or measured modeled
	// time) is below it are not retained. 0 admits everything.
	ResultCacheMinCost time.Duration
	// ResultCacheMaxSessionShare caps one session's resident result
	// bytes as a fraction of ResultCacheBytes: a session over its share
	// evicts its own oldest results first, so one dashboard's fat
	// results cannot push out everyone else's. <= 0 disables the
	// preference (plain global LRU).
	ResultCacheMaxSessionShare float64
	// ResultCacheSubsumption turns on semantic result caching: on an
	// exact-fingerprint miss, a wider cached result whose predicate
	// provably contains the query's (predicate subsumption over
	// normalized per-column intervals) is re-filtered in memory instead
	// of re-executing and re-mounting files. Sound and conservative —
	// only plans with no row-collapsing operator and interval-shaped
	// bounds over passthrough output columns participate. Requires
	// ResultCacheBytes != 0.
	ResultCacheSubsumption bool
	// SpillDir enables out-of-core execution: mount-flight replay buffers
	// over SpillThresholdBytes stream to temp spill files under
	// SpillDir/flights (so a file whose decoded size exceeds
	// MountBudgetBytes completes, handing admission bytes back as batches
	// land on disk), and the result cache demotes cold entries to
	// SpillDir/results instead of evicting them — the same directory a
	// later Open warms the result cache from (repeat queries after a
	// restart serve with zero executions). Empty disables both.
	SpillDir string
	// SpillThresholdBytes is the resident replay-buffer size above which
	// a mount flight spills. <= 0 disables flight spilling even with
	// SpillDir set (the result-cache disk tier still runs).
	SpillThresholdBytes int64
	// ResultCacheDiskBytes bounds the result cache's disk tier (its own
	// LRU, counted separately from ResultCacheBytes which covers resident
	// bytes only); <= 0 means unlimited. Ignored without SpillDir.
	ResultCacheDiskBytes int64
	// EnableDerived turns on derived-metadata collection and answering.
	EnableDerived bool
	// Strategy selects the second-stage merge strategy.
	Strategy MergeStrategy
	// SkipIndexes disables Ei's index build (for ablation benchmarks).
	SkipIndexes bool
	// StatsPlanning gates the statistics-free Stage-2 planner fed by the
	// frozen Qf result (see internal/stats). The zero value is on;
	// StatsPlanningOff restores pre-planner behaviour for A/B runs.
	StatsPlanning StatsPlanningMode
}

// IngestReport records what Open ingested.
type IngestReport struct {
	Mode     Mode
	Metadata ingest.MetadataResult
	Eager    *ingest.EagerResult
	// Wall and ModeledIO cover the whole up-front ingestion (the
	// data-to-insight time the paper measures).
	Wall      time.Duration
	ModeledIO time.Duration
}

// Engine is the two-stage query engine.
type Engine struct {
	opts    Options
	clock   *storage.Clock
	pool    *storage.BufferPool
	store   *storage.Store
	cat     *catalog.Catalog
	reg     *catalog.AdapterRegistry
	adapter catalog.FormatAdapter
	indexes []exec.IndexInfo
	cache   *cache.Manager
	derived *derived.Store
	mounts  *mountsvc.Service
	results *resultcache.Cache
	report  IngestReport
	allURIs []string
	qfSeq   atomic.Int64

	// Engine-lifetime statistics-free planner counters (see stats.go).
	statPrunedFiles     atomic.Int64
	statPrunedRecords   atomic.Int64
	statBytesNotMounted atomic.Int64
	statJoinOrderFlips  atomic.Int64
	statJoinBuildFlips  atomic.Int64

	// data-table column positions for the derived-metadata hook
	dataRIDCol, dataSpanCol, dataValCol int
}

// Open creates (or reopens) an engine over a repository and performs the
// mode's up-front ingestion.
func Open(opts Options) (*Engine, error) {
	if opts.RepoDir == "" || opts.DBDir == "" {
		return nil, fmt.Errorf("core: Options needs RepoDir and DBDir")
	}
	if opts.Adapter == nil {
		opts.Adapter = seismic.NewAdapter()
	}
	disk := storage.HDD7200()
	if opts.Disk != nil {
		disk = *opts.Disk
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 16384
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	clock := &storage.Clock{}
	pool := storage.NewBufferPool(opts.PoolPages, disk, clock)
	store, err := storage.Open(opts.DBDir, pool)
	if err != nil {
		return nil, err
	}
	cat := catalog.New()
	reg := catalog.NewRegistry()
	if err := reg.Register(opts.Adapter); err != nil {
		return nil, err
	}
	if err := ingest.EnsureTables(store, cat, opts.Adapter); err != nil {
		return nil, err
	}

	e := &Engine{
		opts: opts, clock: clock, pool: pool, store: store,
		cat: cat, reg: reg, adapter: opts.Adapter,
		cache: cache.New(opts.Cache),
	}
	if opts.EnableDerived {
		e.derived = derived.NewStore()
	}
	if opts.SpillDir != "" {
		// Two spill namespaces, so the flight sweep-and-replay logic and
		// the result manifest never see each other's files.
		for _, sub := range []string{"flights", "results"} {
			if err := os.MkdirAll(filepath.Join(opts.SpillDir, sub), 0o755); err != nil {
				return nil, fmt.Errorf("core: create spill dir: %w", err)
			}
		}
	}
	if opts.ResultCacheBytes != 0 {
		budget := opts.ResultCacheBytes
		if budget < 0 {
			budget = 0 // unlimited
		}
		rcCfg := resultcache.Config{
			MaxBytes:        budget,
			MinCost:         opts.ResultCacheMinCost,
			MaxSessionShare: opts.ResultCacheMaxSessionShare,
		}
		if opts.SpillDir != "" {
			rcCfg.SpillDir = filepath.Join(opts.SpillDir, "results")
			rcCfg.DiskMaxBytes = opts.ResultCacheDiskBytes
			rcCfg.Disk = disk
			rcCfg.Clock = clock
		}
		e.results = resultcache.New(rcCfg)
		// Invalidation wiring: any ingestion-cache Drop/Clear signals the
		// underlying repository data may have changed, so every retained
		// result becomes unservable at once.
		e.cache.SetOnInvalidate(e.results.BumpEpoch)
	}
	if err := e.locateDataColumns(); err != nil {
		return nil, err
	}
	// The engine-owned mount service: all queries share one extraction
	// path, so concurrent identical queries coalesce onto single flights
	// and the admission budget holds across the whole engine.
	svcCfg := mountsvc.Config{
		RepoDir:           opts.RepoDir,
		Pool:              pool,
		Cache:             e.cache,
		BudgetBytes:       opts.MountBudgetBytes,
		SessionQuotaBytes: opts.MountSessionQuotaBytes,
		MaxSessionShare:   opts.MountMaxSessionShare,
	}
	if opts.SpillDir != "" && opts.SpillThresholdBytes > 0 {
		svcCfg.SpillDir = filepath.Join(opts.SpillDir, "flights")
		svcCfg.SpillThresholdBytes = opts.SpillThresholdBytes
	}
	if e.derived != nil && e.dataValCol >= 0 && e.dataRIDCol >= 0 && e.dataSpanCol >= 0 {
		rid, span, val := e.dataRIDCol, e.dataSpanCol, e.dataValCol
		store := e.derived
		// Batches are record-aligned, so per-record summaries derived per
		// batch are exactly the summaries of the whole file.
		svcCfg.OnMount = func(uri string, full *vector.Batch) {
			store.Observe(uri, full, rid, span, val)
		}
	}
	e.mounts = mountsvc.New(svcCfg)
	uris, err := listRepoFiles(opts.RepoDir)
	if err != nil {
		return nil, err
	}
	e.allURIs = uris

	// Up-front ingestion, unless the database already holds the data.
	fileDef, _, _ := opts.Adapter.Tables()
	fileTbl := store.MustTable(fileDef.Name)
	start := time.Now()
	ioStart := clock.Elapsed()
	e.report.Mode = opts.Mode
	if fileTbl.Rows() == 0 {
		switch opts.Mode {
		case ModeALi:
			meta, err := ingest.LoadMetadataParallel(store, opts.Adapter, opts.RepoDir, uris, opts.Parallelism)
			if err != nil {
				return nil, err
			}
			e.report.Metadata = meta
		case ModeEi:
			eager, err := ingest.LoadEagerParallel(store, opts.Adapter, opts.RepoDir, uris, !opts.SkipIndexes, opts.Parallelism)
			if err != nil {
				return nil, err
			}
			e.report.Metadata = eager.Meta
			e.report.Eager = &eager
			e.indexes = eager.Indexes
		}
	} else if opts.Mode == ModeEi && !opts.SkipIndexes {
		// Reopened eager database: reattach indexes.
		infos, _, err := ingest.BuildKeyIndexes(store, opts.Adapter)
		if err != nil {
			return nil, err
		}
		e.indexes = infos
	}
	e.report.Wall = time.Since(start)
	e.report.ModeledIO = clock.Elapsed() - ioStart
	return e, nil
}

// locateDataColumns finds the record-id, span and value columns of the
// data table, used by the derived-metadata hook. The value column is the
// first DOUBLE column that is neither the span nor the record id.
func (e *Engine) locateDataColumns() error {
	_, _, dataDef := e.adapter.Tables()
	e.dataRIDCol = dataDef.ColumnIndex(e.adapter.RecordIDColumn())
	e.dataSpanCol = dataDef.ColumnIndex(e.adapter.DataSpanColumn())
	e.dataValCol = -1
	for i, c := range dataDef.Columns {
		if c.Kind == vector.KindFloat64 && i != e.dataSpanCol && i != e.dataRIDCol {
			e.dataValCol = i
			break
		}
	}
	return nil
}

// Close releases storage handles and indexes. With a spill directory
// configured it also persists the result cache (entries plus manifest),
// so the next Open over the same directories starts warm.
func (e *Engine) Close() error {
	for _, ix := range e.indexes {
		ix.Index.Close()
	}
	cacheErr := e.results.Close() // nil-safe; no-op without a spill dir
	storeErr := e.store.Close()
	if storeErr != nil {
		return storeErr
	}
	return cacheErr
}

// Report returns the up-front ingestion report.
func (e *Engine) Report() IngestReport { return e.report }

// Mode returns the engine's ingestion mode.
func (e *Engine) Mode() Mode { return e.opts.Mode }

// Catalog exposes the schema (read-only use).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store exposes the column store (benchmarks measure its size).
func (e *Engine) Store() *storage.Store { return e.store }

// Pool exposes the buffer pool (the cold/hot protocol flushes it).
func (e *Engine) Pool() *storage.BufferPool { return e.pool }

// Clock exposes the modeled-I/O clock.
func (e *Engine) Clock() *storage.Clock { return e.clock }

// Cache exposes the ingestion cache.
func (e *Engine) Cache() *cache.Manager { return e.cache }

// Derived exposes the derived-metadata store (nil unless enabled).
func (e *Engine) Derived() *derived.Store { return e.derived }

// MountService exposes the shared mount service (single-flight and
// admission-budget statistics).
func (e *Engine) MountService() *mountsvc.Service { return e.mounts }

// ResultCache exposes the engine-wide result cache (nil when disabled;
// its methods are nil-safe).
func (e *Engine) ResultCache() *resultcache.Cache { return e.results }

// NotifyFileChanged tells the engine one repository file's content
// changed: its ingestion-cache entry is dropped and — through the
// invalidation wiring — the result cache's epoch is bumped, forcing
// every later query to re-execute against the new data.
func (e *Engine) NotifyFileChanged(uri string) {
	// Drop fires the invalidation hook whether or not the URI (or any
	// entry at all — NeverCache) was resident.
	e.cache.Drop(uri)
}

// RepoFiles returns the URIs of every repository file.
func (e *Engine) RepoFiles() []string {
	out := make([]string, len(e.allURIs))
	copy(out, e.allURIs)
	return out
}

// IndexBytes totals the on-disk size of the engine's key indexes.
func (e *Engine) IndexBytes() int64 {
	var total int64
	for _, ix := range e.indexes {
		total += ix.Index.SizeOnDisk()
	}
	return total
}

// FlushCold empties the buffer pool — the paper's "cold" protocol
// ("right after restarting the server with all buffers flushed").
func (e *Engine) FlushCold() {
	e.pool.Flush()
}

// listRepoFiles returns the regular files of a repository directory,
// sorted for determinism.
func listRepoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: list repository %s: %w", dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}
