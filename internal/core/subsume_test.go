package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// subsumeOpts enables the result cache with semantic (subsumption)
// probing and no admission floor.
func subsumeOpts() Options {
	return resultCacheOpts(Options{Mode: ModeALi, ResultCacheSubsumption: true})
}

// windowQuery is the zooming projection query: a waveform window from
// one station, parameterized by the D.sample_time bounds. The test
// repository's coverage is [22:14:00, 22:15:20] on 2010-01-12.
func windowQuery(station, lo, hi string) string {
	return fmt.Sprintf(`SELECT D.sample_time, D.sample_value
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = '%s'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, station, lo, hi)
}

// clock renders an offset in seconds from 22:14:00 as a query literal.
func clock(secs int) string {
	return time.Date(2010, 1, 12, 22, 14, 0, 0, time.UTC).
		Add(time.Duration(secs) * time.Second).Format("2006-01-02T15:04:05.000")
}

func TestSubsumptionServesNarrowerQuery(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, subsumeOpts())
	cold := openEngine(t, m.Dir, Options{Mode: ModeALi})

	wideQ := windowQuery("ISK", clock(10), clock(70))
	narrowQ := windowQuery("ISK", clock(20), clock(60))

	wide, err := eng.Query(wideQ)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Stats.ServedFromResultCache || wide.Rows() == 0 {
		t.Fatalf("wide query must execute cold with rows, got served=%v rows=%d",
			wide.Stats.ServedFromResultCache, wide.Rows())
	}
	narrow, err := eng.Query(narrowQ)
	if err != nil {
		t.Fatal(err)
	}
	if !narrow.Stats.ServedBySubsumption || !narrow.Stats.ServedFromResultCache {
		t.Fatalf("nested window not served by subsumption: %+v", narrow.Stats)
	}
	if narrow.Stats.Mounts.FilesMounted != 0 {
		t.Fatalf("subsumption serve mounted %d files", narrow.Stats.Mounts.FilesMounted)
	}
	if narrow.Stats.Mounts.SubsumptionHits != 1 || narrow.Stats.Mounts.SubsumptionBytesSaved <= 0 {
		t.Fatalf("subsumption stats not attributed: %+v", narrow.Stats.Mounts)
	}
	if narrow.Stats.SubsumedFrom.IsZero() {
		t.Fatal("SubsumedFrom fingerprint not recorded")
	}
	ref, err := cold.Query(narrowQ)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Format(0) != narrow.Format(0) {
		t.Fatalf("subsumption-served answer differs from cold execution:\ncold:\n%s\nserved:\n%s",
			ref.Format(0), narrow.Format(0))
	}
	st := eng.ResultCache().Stats()
	if st.SubsumptionHits != 1 || st.SubsumptionBytesSaved <= 0 {
		t.Fatalf("cache subsumption stats = %+v", st)
	}

	// The slice was retained under the narrow query's own fingerprint:
	// its repetition is an exact hit, not another semantic probe.
	again, err := eng.Query(narrowQ)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.ServedFromResultCache || again.Stats.ServedBySubsumption {
		t.Fatalf("narrow repeat must be an exact hit: %+v", again.Stats)
	}
	if eng.ResultCache().Stats().SubsumptionHits != 1 {
		t.Fatal("narrow repeat re-probed the semantic index")
	}
}

func TestSubsumptionNeverServesAggregates(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, subsumeOpts())
	agg := func(lo, hi string) string {
		return fmt.Sprintf(`SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, lo, hi)
	}
	if _, err := eng.Query(agg(clock(10), clock(70))); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(agg(clock(20), clock(60)))
	if err != nil {
		t.Fatal(err)
	}
	// Re-filtering a final aggregate is unsound: the narrower aggregate
	// must execute, never be served semantically.
	if res.Stats.ServedBySubsumption {
		t.Fatal("aggregate query served by subsumption")
	}
	if eng.ResultCache().Stats().SubsumptionHits != 0 {
		t.Fatal("semantic index hit for a row-collapsing plan")
	}
}

// TestSubsumptionDifferentialRandomized is the satellite's differential
// test: random zooming (and occasionally widening) windows over random
// stations, every answer pinned byte-identical to a cold engine's.
func TestSubsumptionDifferentialRandomized(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, subsumeOpts())
	cold := openEngine(t, m.Dir, Options{Mode: ModeALi})
	rng := rand.New(rand.NewSource(11))
	stations := []string{"ISK", "ANTO", "APE"}

	served := 0
	for trial := 0; trial < 24; trial++ {
		lo := rng.Intn(70)
		hi := lo + 1 + rng.Intn(80-lo)
		q := windowQuery(stations[rng.Intn(len(stations))], clock(lo), clock(hi))
		got, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Format(0) != want.Format(0) {
			t.Fatalf("trial %d (%s): answer diverged from cold execution\ncold:\n%s\ngot:\n%s",
				trial, q, want.Format(0), got.Format(0))
		}
		if got.Stats.ServedBySubsumption {
			served++
			if got.Stats.Mounts.FilesMounted != 0 {
				t.Fatalf("trial %d: subsumption serve mounted files", trial)
			}
		}
	}
	if served == 0 {
		t.Fatal("randomized zoom session never exercised the subsumption path")
	}
}

// TestSubsumptionEpochBumpMidProbe races concurrent subsumption-served
// queries against epoch-bump invalidations (NotifyFileChanged). The
// repository bytes never change, so every answer must stay identical to
// the cold reference — frozen CoW entries make a mid-probe bump safe —
// and under -race this doubles as the data-race check.
func TestSubsumptionEpochBumpMidProbe(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, subsumeOpts())
	cold := openEngine(t, m.Dir, Options{Mode: ModeALi})

	wideQ := windowQuery("ISK", clock(0), clock(80))
	narrowQ := windowQuery("ISK", clock(20), clock(60))
	if _, err := eng.Query(wideQ); err != nil {
		t.Fatal(err)
	}
	want, err := cold.Query(narrowQ)
	if err != nil {
		t.Fatal(err)
	}
	ref := want.Format(0)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := eng.Query(narrowQ)
				if err != nil {
					errs <- err
					return
				}
				if res.Format(0) != ref {
					errs <- fmt.Errorf("answer diverged under invalidation churn")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			eng.NotifyFileChanged(m.Files[0].URI)
			// Re-warm the wide entry so later narrow queries can be served
			// either semantically or by full execution — both must agree.
			if _, err := eng.Query(wideQ); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
