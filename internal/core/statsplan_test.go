package core

import (
	"fmt"
	"testing"
)

// pruneQuery widens the R window to three days while the D window stays
// inside one: the Qf result proves (per-record spans) that two of the
// three files of interest per station/channel cannot contribute a row,
// so the statistics-free planner must drop them before mounting.
const pruneQuery = `SELECT COUNT(*) AS n
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-11T00:00:00.000'
AND R.start_time < '2010-01-13T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';`

// TestStatsPlanningDifferential pins the planner's core guarantee:
// byte-identical answers with StatsPlanning on and off, at serial and
// parallel execution, across order-sensitive (AVG, projection) and
// order-insensitive (COUNT) outputs.
func TestStatsPlanningDifferential(t *testing.T) {
	m := testRepo(t)
	queries := []string{query1, query2, pruneQuery}
	for _, par := range []int{1, 4} {
		on := openEngine(t, m.Dir, Options{Mode: ModeALi, Parallelism: par})
		off := openEngine(t, m.Dir, Options{Mode: ModeALi, Parallelism: par, StatsPlanning: StatsPlanningOff})
		for qi, q := range queries {
			a, err := on.Query(q)
			if err != nil {
				t.Fatalf("par=%d q%d on: %v", par, qi, err)
			}
			b, err := off.Query(q)
			if err != nil {
				t.Fatalf("par=%d q%d off: %v", par, qi, err)
			}
			if a.Format(0) != b.Format(0) {
				t.Errorf("par=%d q%d: results differ\non:\n%s\noff:\n%s",
					par, qi, a.Format(0), b.Format(0))
			}
		}
	}
}

// TestStatsPlanningPrunesFiles asserts the planner actually skips the
// two provably-irrelevant files and mounts strictly less than the
// unpruned engine does — with the same answer.
func TestStatsPlanningPrunesFiles(t *testing.T) {
	m := testRepo(t)
	on := openEngine(t, m.Dir, Options{Mode: ModeALi})
	off := openEngine(t, m.Dir, Options{Mode: ModeALi, StatsPlanning: StatsPlanningOff})

	ra, err := on.Query(pruneQuery)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := off.Query(pruneQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Format(0) != rb.Format(0) {
		t.Fatalf("pruned answer differs:\non:\n%s\noff:\n%s", ra.Format(0), rb.Format(0))
	}
	ms, msOff := ra.Stats.Mounts, rb.Stats.Mounts
	if ms.PrunedFiles != 2 {
		t.Errorf("PrunedFiles = %d, want 2", ms.PrunedFiles)
	}
	if ms.PrunedRecords == 0 {
		t.Errorf("PrunedRecords = 0, want > 0")
	}
	if ms.BytesNotMounted == 0 {
		t.Errorf("BytesNotMounted = 0, want > 0")
	}
	if ms.FilesMounted >= msOff.FilesMounted {
		t.Errorf("FilesMounted = %d, want < unpruned %d", ms.FilesMounted, msOff.FilesMounted)
	}
	if msOff.PrunedFiles != 0 {
		t.Errorf("unpruned engine reports PrunedFiles = %d", msOff.PrunedFiles)
	}
	if ra.Stats.FilesOfInterest >= rb.Stats.FilesOfInterest {
		t.Errorf("FilesOfInterest = %d, want < unpruned %d",
			ra.Stats.FilesOfInterest, rb.Stats.FilesOfInterest)
	}

	ps := on.PlannerStats()
	if ps.PrunedFiles != 2 || ps.BytesNotMounted == 0 {
		t.Errorf("PlannerStats = %+v, want PrunedFiles 2 and bytes saved", ps)
	}
}

// TestStatsPlanningHonestAdmission pins admission sizing: query1's file
// has one span-surviving record out of four, so the mount must be
// admitted well under the whole-file worst case.
func TestStatsPlanningHonestAdmission(t *testing.T) {
	m := testRepo(t)
	on := openEngine(t, m.Dir, Options{Mode: ModeALi})
	res, err := on.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mounts.AdmissionBytesSaved <= 0 {
		t.Errorf("AdmissionBytesSaved = %d, want > 0 (1 of 4 records survives the span)",
			res.Stats.Mounts.AdmissionBytesSaved)
	}
	if got := on.PlannerStats().AdmissionBytesSaved; got <= 0 {
		t.Errorf("PlannerStats().AdmissionBytesSaved = %d, want > 0", got)
	}

	off := openEngine(t, m.Dir, Options{Mode: ModeALi, StatsPlanning: StatsPlanningOff})
	resOff, err := off.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.Stats.Mounts.AdmissionBytesSaved != 0 {
		t.Errorf("unpruned AdmissionBytesSaved = %d, want 0", resOff.Stats.Mounts.AdmissionBytesSaved)
	}
	if res.Format(0) != resOff.Format(0) {
		t.Errorf("answers differ under honest admission:\non:\n%s\noff:\n%s",
			res.Format(0), resOff.Format(0))
	}
}

// TestStatsPlanningValuePrune warms the derived store by mounting a
// file, then issues a query whose value predicate every observed record
// summary provably fails: the planner must answer without mounting at
// all, identically to the unpruned engine.
func TestStatsPlanningValuePrune(t *testing.T) {
	m := testRepo(t)
	on := openEngine(t, m.Dir, Options{Mode: ModeALi, EnableDerived: true})
	off := openEngine(t, m.Dir, Options{Mode: ModeALi, EnableDerived: true, StatsPlanning: StatsPlanningOff})

	warm := `SELECT COUNT(*) FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		AND R.start_time > '2010-01-12T00:00:00.000'
		AND R.start_time < '2010-01-12T23:59:59.999';`
	impossible := `SELECT COUNT(*) AS n FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		AND R.start_time > '2010-01-12T00:00:00.000'
		AND R.start_time < '2010-01-12T23:59:59.999'
		AND D.sample_value > 1000000000.0;`

	for _, e := range []*Engine{on, off} {
		if _, err := e.Query(warm); err != nil {
			t.Fatal(err)
		}
	}
	ra, err := on.Query(impossible)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := off.Query(impossible)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Format(0) != rb.Format(0) {
		t.Fatalf("value-pruned answer differs:\non:\n%s\noff:\n%s", ra.Format(0), rb.Format(0))
	}
	// Both engines answer the impossible query from derived metadata or
	// pruning; the planner path must report the file as pruned when the
	// derived shortcut did not already answer it.
	if !ra.Stats.AnsweredFromDerived {
		if ra.Stats.Mounts.PrunedFiles == 0 {
			t.Errorf("PrunedFiles = 0, want > 0 (every record summary excludes the value)")
		}
		if ra.Stats.Mounts.FilesMounted != 0 {
			t.Errorf("FilesMounted = %d, want 0", ra.Stats.Mounts.FilesMounted)
		}
	}
}

// TestStatsPlanningModeString covers the flag's display form.
func TestStatsPlanningModeString(t *testing.T) {
	if s := fmt.Sprint(StatsPlanningOn); s != "on" {
		t.Errorf("StatsPlanningOn = %q", s)
	}
	if s := fmt.Sprint(StatsPlanningOff); s != "off" {
		t.Errorf("StatsPlanningOff = %q", s)
	}
}
