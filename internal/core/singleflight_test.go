package core

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cache"
)

// fileGranularLRU is the cache configuration the single-flight tests
// use: retention closes the window between a flight completing and a
// straggler query re-requesting the file, making mount counts exact.
func fileGranularLRU() cache.Config {
	return cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}
}

// TestConcurrentIdenticalColdQueriesMountOnce is the headline acceptance
// test of the mount service: K identical cold queries against one ALi
// engine must together mount each file of interest once — not K times —
// and return answers identical to sequential execution.
func TestConcurrentIdenticalColdQueriesMountOnce(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, Cache: fileGranularLRU()})

	// Sequential ground truth, then back to cold.
	want, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := want.Float(0, 0)
	filesOfInterest := want.Stats.FilesOfInterest
	if filesOfInterest != 1 {
		t.Fatalf("query1 should touch exactly 1 file, got %d", filesOfInterest)
	}
	e.FlushCold()
	e.Cache().Clear()

	const k = 8
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	results := make([]*Result, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i], errs[i] = e.Query(query1)
		}(i)
	}
	start.Done()
	wg.Wait()

	mounted := 0
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got := results[i].Float(0, 0); math.Abs(got-wantAvg) > 1e-9 {
			t.Errorf("query %d answered %v, want %v", i, got, wantAvg)
		}
		mounted += results[i].Stats.Mounts.FilesMounted
	}
	if mounted != filesOfInterest {
		t.Errorf("total FilesMounted = %d across %d queries, want %d (one extraction per file)",
			mounted, k, filesOfInterest)
	}
}

// TestConcurrentWideColdQueriesMountOncePerFile widens the workload: K
// identical cold queries each needing EVERY repository file must still
// extract each file exactly once in total.
func TestConcurrentWideColdQueriesMountOncePerFile(t *testing.T) {
	if testing.Short() {
		t.Skip("wide concurrent workload")
	}
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, Cache: fileGranularLRU(), Parallelism: 4})
	wide := `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-01T00:00:00.000'`

	want, err := e.Query(wide)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := want.Float(0, 0)
	nFiles := want.Stats.FilesOfInterest
	if nFiles != len(m.Files) {
		t.Fatalf("wide query touches %d files, want all %d", nFiles, len(m.Files))
	}
	e.FlushCold()
	e.Cache().Clear()

	const k = 4
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	results := make([]*Result, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i], errs[i] = e.Query(wide)
		}(i)
	}
	start.Done()
	wg.Wait()

	mounted := 0
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got := results[i].Float(0, 0); math.Abs(got-wantAvg) > 1e-9 {
			t.Errorf("query %d answered %v, want %v", i, got, wantAvg)
		}
		mounted += results[i].Stats.Mounts.FilesMounted
	}
	if mounted != nFiles {
		t.Errorf("total FilesMounted = %d, want %d (not %d×%d)", mounted, nFiles, k, nFiles)
	}
}

// TestAbortAtBreakpointOthersStillServed: one explorer stops at the
// breakpoint (never proceeds past stage one) while others sharing the
// same files proceed — they must still get complete, correct batches.
func TestAbortAtBreakpointOthersStillServed(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	want, err := e.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := want.Float(0, 0)
	e.FlushCold()

	const k = 4
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	errs := make([]error, k)
	answers := make([]float64, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := e.Prepare(query1)
			if err != nil {
				errs[i] = err
				return
			}
			start.Wait()
			bp, err := p.Stage1()
			if err != nil {
				errs[i] = err
				return
			}
			if i == 0 {
				// This explorer looks at the estimate and walks away; its
				// abandoned breakpoint must not starve anyone.
				answers[i] = wantAvg
				return
			}
			res, err := bp.Proceed()
			if err != nil {
				errs[i] = err
				return
			}
			answers[i] = res.Float(0, 0)
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if math.Abs(answers[i]-wantAvg) > 1e-9 {
			t.Errorf("explorer %d got %v, want %v", i, answers[i], wantAvg)
		}
	}
}

// TestMountBudgetRespected mounts files whose aggregate size exceeds the
// configured budget and asserts the admission gate held: peak in-flight
// bytes never passed the budget, and the answer is still exact.
func TestMountBudgetRespected(t *testing.T) {
	m := testRepo(t)
	// The budget admits one file and a bit: with aggregate file bytes far
	// beyond it, extractions must serialize rather than run wide open.
	var maxSize int64
	for _, f := range m.Files {
		st, err := os.Stat(filepath.Join(m.Dir, f.URI))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > maxSize {
			maxSize = st.Size()
		}
	}
	budget := maxSize * 3 / 2
	e := openEngine(t, m.Dir, Options{
		Mode: ModeALi, Parallelism: 4, MountBudgetBytes: budget,
	})
	unbounded := openEngine(t, m.Dir, Options{Mode: ModeALi, Parallelism: 4})
	wide := `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-01T00:00:00.000'`

	want, err := unbounded.Query(wide)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(wide)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Float(0, 0); math.Abs(got-want.Float(0, 0)) > 1e-9 {
		t.Errorf("budgeted answer %v, want %v", got, want.Float(0, 0))
	}
	st := e.MountService().Stats()
	if st.PeakInFlightBytes > budget {
		t.Errorf("peak in-flight bytes %d exceeded budget %d", st.PeakInFlightBytes, budget)
	}
	if st.PeakInFlightBytes == 0 {
		t.Error("budget accounting saw no traffic")
	}
	if st.InFlightBytes != 0 {
		t.Errorf("in-flight bytes %d not released after the query", st.InFlightBytes)
	}
	// The unbounded engine's scheduler really did go wider than the
	// budgeted one was allowed to (sanity that the gate constrained it).
	if u := unbounded.MountService().Stats(); u.PeakInFlightBytes <= budget && e.opts.Parallelism > 1 {
		t.Logf("note: unbounded peak %d within budget %d — workload too small to contend", u.PeakInFlightBytes, budget)
	}
}

// TestSingleFlightStatsAttribution: queries that ride another query's
// flight report SingleFlightHits, keeping per-query mount accounting
// honest under concurrency.
func TestSingleFlightStatsAttribution(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, Cache: fileGranularLRU()})
	if _, err := e.Query(query1); err != nil {
		t.Fatal(err)
	}
	e.FlushCold()
	e.Cache().Clear()

	const k = 6
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	results := make([]*Result, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i], errs[i] = e.Query(query1)
		}(i)
	}
	start.Done()
	wg.Wait()
	var mounted, shared int
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		ms := results[i].Stats.Mounts
		mounted += ms.FilesMounted
		shared += ms.SingleFlightHits + ms.CacheHits
	}
	if mounted+shared < k {
		t.Errorf("accounting lost queries: mounted=%d shared=%d of %d", mounted, shared, k)
	}
	if mounted != 1 {
		t.Errorf("FilesMounted total = %d, want 1", mounted)
	}
}

// TestConcurrentRowQueriesByteIdentical checks the strong form of the
// determinism contract under concurrency: a row-returning query (not a
// scalar aggregate, which could mask reordering or duplication) must
// produce exactly the sequential row sequence from every concurrent
// client riding shared flights.
func TestConcurrentRowQueriesByteIdentical(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi, Cache: fileGranularLRU(), Parallelism: 4})

	render := func(r *Result) []string {
		flat := r.Mat.Flatten()
		out := make([]string, flat.Len())
		for i := range out {
			out[i] = flat.FormatRow(i)
		}
		return out
	}
	want, err := e.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := render(want)
	if len(wantRows) == 0 {
		t.Fatal("query2 returned no rows; test would be vacuous")
	}
	e.FlushCold()
	e.Cache().Clear()

	const k = 6
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	results := make([]*Result, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i], errs[i] = e.Query(query2)
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		got := render(results[i])
		if len(got) != len(wantRows) {
			t.Fatalf("client %d: %d rows, want %d", i, len(got), len(wantRows))
		}
		for r := range got {
			if got[r] != wantRows[r] {
				t.Fatalf("client %d row %d = %q, want %q (row order/content diverged)", i, r, got[r], wantRows[r])
			}
		}
	}
}
