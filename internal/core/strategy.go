package core

import (
	"repro/internal/exec"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/vector"
)

// runPerFile implements the paper's merge strategy (b): "run higher
// operators on sub-tables and then merge the results". For a global
// aggregate it executes the aggregate's input once per file of interest
// and merges the per-file partial aggregate states; plans that are not
// global aggregates fall back to bulk execution (strategy (a)).
func (e *Engine) runPerFile(resolved plan.Node, bp *Breakpoint, env *exec.Env) (*exec.Materialized, error) {
	proj, agg, union := matchGlobalAggOverUnion(resolved)
	if agg == nil || union == nil {
		return exec.Run(resolved, env)
	}

	states := make([]exec.AggState, len(agg.Aggs))
	for i, spec := range agg.Aggs {
		states[i] = exec.NewAggState(spec)
	}

	// Per-file subplans run on the engine's worker pool; partial states
	// merge in file order so float accumulation stays deterministic.
	err := par.ForEachOrdered(len(union.Inputs), e.opts.Parallelism,
		func(i int) (*exec.Materialized, error) {
			// Swap the union for a single-file union and run the aggregate's
			// input subtree for that file only.
			single := &plan.UnionAll{Inputs: []plan.Node{union.Inputs[i]}}
			childPlan := plan.ReplaceNode(agg.Child, union, single)
			return exec.Run(childPlan, env)
		},
		func(_ int, mat *exec.Materialized) error {
			for _, b := range mat.Batches {
				n := b.Len()
				for i, spec := range agg.Aggs {
					if spec.Arg == nil {
						for r := 0; r < n; r++ {
							states[i].AddCount()
						}
						continue
					}
					v, err := spec.Arg.Eval(b)
					if err != nil {
						return err
					}
					for r := 0; r < n; r++ {
						states[i].Add(v.Get(r))
					}
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Finalize: one global row, then the projection on top.
	aggSchema := agg.Schema()
	cols := make([]*vector.Vector, len(aggSchema))
	for i, ci := range aggSchema {
		cols[i] = vector.New(ci.Kind, 1)
	}
	for i, st := range states {
		v := st.Result()
		want := aggSchema[i].Kind
		switch {
		case v.Kind == want:
		case want == vector.KindFloat64:
			v = vector.Float64(v.AsFloat())
		case want == vector.KindInt64:
			v = vector.Int64(v.AsInt())
		case want == vector.KindTime:
			v = vector.Time(v.AsInt())
		}
		cols[i].AppendValue(v)
	}
	row := vector.NewBatch(cols...)
	if proj == nil {
		return &exec.Materialized{Schema: aggSchema, Batches: []*vector.Batch{row}}, nil
	}
	outCols := make([]*vector.Vector, len(proj.Exprs))
	for i, ex := range proj.Exprs {
		v, err := ex.Eval(row)
		if err != nil {
			return nil, err
		}
		outCols[i] = v
	}
	return &exec.Materialized{
		Schema:  proj.Schema(),
		Batches: []*vector.Batch{vector.NewBatch(outCols...)},
	}, nil
}

// matchGlobalAggOverUnion recognizes Project?(Aggregate(subtree
// containing one UnionAll)) with no GROUP BY.
func matchGlobalAggOverUnion(root plan.Node) (*plan.Project, *plan.Aggregate, *plan.UnionAll) {
	var proj *plan.Project
	n := root
	if p, ok := n.(*plan.Project); ok {
		proj = p
		n = p.Child
	}
	agg, ok := n.(*plan.Aggregate)
	if !ok || len(agg.GroupBy) > 0 {
		return nil, nil, nil
	}
	var union *plan.UnionAll
	count := 0
	plan.Walk(agg.Child, func(x plan.Node) {
		if u, ok := x.(*plan.UnionAll); ok {
			union = u
			count++
		}
	})
	if count != 1 {
		return nil, nil, nil
	}
	return proj, agg, union
}
