package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/plan"
	"repro/internal/vector"
)

// Stats records where a query's time went, stage by stage.
type Stats struct {
	// Stage1Wall/Stage2Wall are measured wall times of the two stages;
	// Stage1IO/Stage2IO are the modeled I/O charged during each. Total*
	// include plan time.
	Stage1Wall, Stage2Wall, TotalWall time.Duration
	Stage1IO, Stage2IO, TotalIO       time.Duration
	// FilesOfInterest is |result-scan(Qf)| distinct files; Mounts details
	// the second stage's ALi activity.
	FilesOfInterest int
	Mounts          exec.MountStats
	// Estimate is the breakpoint informativeness estimate.
	Estimate explore.Estimate
	// MetadataOnly: answered entirely by the first stage.
	MetadataOnly bool
	// AnsweredFromDerived: answered from derived metadata, skipping ALi.
	AnsweredFromDerived bool
	// Strategy used in stage two.
	Strategy MergeStrategy
	// StoppedEarly marks a multi-stage execution the explorer stopped
	// before all files of interest were ingested; the result is the
	// partial aggregate over the ingested prefix.
	StoppedEarly bool
	// ServedFromResultCache: the whole query was answered by an O(1)
	// share of a cached result — no stage executed. CoalescedRider
	// additionally marks that the share came from riding another
	// client's concurrent execution of the identical query.
	ServedFromResultCache bool
	CoalescedRider        bool
	// ServedBySubsumption: the answer came from re-filtering a *wider*
	// cached result whose predicate contains this query's (semantic
	// caching). SubsumedFrom is the wider entry's fingerprint and
	// RefilterWall the time spent re-filtering it.
	ServedBySubsumption bool
	SubsumedFrom        plan.Fingerprint
	RefilterWall        time.Duration
}

// Modeled returns the query's combined wall + modeled-I/O time: the
// number benchmarks report ("time it would have taken on the modeled
// disk").
func (s Stats) Modeled() time.Duration { return s.TotalWall + s.TotalIO }

// Result is a completed query.
type Result struct {
	Columns []string
	Mat     *exec.Materialized
	Stats   Stats
}

// Rows returns the number of result rows.
func (r *Result) Rows() int {
	if r.Mat == nil {
		return 0
	}
	return r.Mat.Rows()
}

// Value returns the value at (row, col) across batches.
func (r *Result) Value(row, col int) vector.Value {
	for _, b := range r.Mat.Batches {
		if row < b.Len() {
			return b.Cols[col].Get(row)
		}
		row -= b.Len()
	}
	panic(fmt.Sprintf("core: Value(%d,%d) out of range", row, col))
}

// Float is a convenience accessor for single-value aggregate results.
func (r *Result) Float(row, col int) float64 {
	return r.Value(row, col).AsFloat()
}

// Format renders the result as an aligned text table capped at maxRows.
func (r *Result) Format(maxRows int) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, "\t"))
	sb.WriteByte('\n')
	n := 0
	for _, b := range r.Mat.Batches {
		for i := 0; i < b.Len(); i++ {
			if maxRows > 0 && n >= maxRows {
				sb.WriteString(fmt.Sprintf("... (%d more rows)\n", r.Rows()-n))
				return sb.String()
			}
			sb.WriteString(b.FormatRow(i))
			sb.WriteByte('\n')
			n++
		}
	}
	return sb.String()
}
