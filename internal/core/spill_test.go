package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/vector"
)

// spillOpts configures out-of-core execution aggressively: any replay
// buffer spills after its first batch, and the mount budget is far
// smaller than one decoded file, so only early admission release lets
// concurrent mounts make progress.
func spillOpts(dir string, par int) Options {
	return Options{
		Mode:                ModeALi,
		Parallelism:         par,
		MountBudgetBytes:    512,
		SpillDir:            dir,
		SpillThresholdBytes: 1,
	}
}

// TestSpillDifferentialByteIdentical is the tentpole's correctness pin:
// with flight spilling forced on (threshold 1 byte, budget smaller than
// any decoded file) every query answer is byte-identical to a spill-off
// engine's, at serial and parallel mount scheduling, cold and hot — and
// the spilling engine really did go out of core.
func TestSpillDifferentialByteIdentical(t *testing.T) {
	m := testRepo(t)
	for _, par := range []int{1, 8} {
		plain := openEngine(t, m.Dir, Options{Mode: ModeALi, Parallelism: par})
		spill := openEngine(t, m.Dir, spillOpts(t.TempDir(), par))
		for _, q := range []string{query1, query2} {
			for _, cold := range []bool{true, false} {
				want := queryAllValues(t, plain, q, cold)
				got := queryAllValues(t, spill, q, cold)
				assertSameValues(t, q[:20], want, got)
			}
		}
		st := spill.MountService().Stats()
		if st.SpilledFlights == 0 || st.SpilledBytes == 0 || st.SpillReplayReads == 0 {
			t.Fatalf("parallelism %d: spilling engine never spilled: %+v", par, st)
		}
		if st.InFlightBytes != 0 || st.ReplayBytes != 0 {
			t.Fatalf("parallelism %d: gauges not drained: %+v", par, st)
		}
		// Temp flight spill files never outlive their flights.
		ents, err := os.ReadDir(filepath.Join(spill.opts.SpillDir, "flights"))
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("parallelism %d: leaked flight spill files: %v", par, ents)
		}
	}
}

// TestSpillCompletesMountOverBudgetPeak pins the out-of-core point
// directly: a query whose window pulls every record of each file
// streams multiple record-aligned batches per flight, and with spilling
// the resident replay peak stays strictly below what each flight
// decoded in total — the buffer lived on disk, not in memory.
func TestSpillCompletesMountOverBudgetPeak(t *testing.T) {
	m := testRepo(t)
	// A window covering every record of the day's files.
	wide := `SELECT D.sample_time, D.sample_value
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T00:00:00.000'
AND D.sample_time < '2010-01-12T23:59:59.999'`
	// Batches smaller than a record stream record-aligned: four appends
	// per file instead of one, so spilling between appends matters.
	so := spillOpts(t.TempDir(), 1)
	so.BatchSize = 256
	spill := openEngine(t, m.Dir, so)
	queryAllValues(t, spill, wide, true)
	st := spill.MountService().Stats()
	if st.SpilledFlights == 0 || st.SpilledBytes == 0 {
		t.Fatalf("wide query never spilled: %+v", st)
	}
	if st.PeakReplayBytes == 0 {
		t.Fatal("replay peak not tracked")
	}
	// Threshold 1 flushes after every append: resident replay never held
	// more than a batch or two of the multi-batch flights, so the peak
	// sits strictly below even a single flight's total decoded bytes.
	perFlight := st.SpilledBytes / st.SpilledFlights
	if st.PeakReplayBytes >= perFlight {
		t.Fatalf("resident peak %d not bounded below per-flight decoded bytes %d",
			st.PeakReplayBytes, perFlight)
	}
}

// TestRestartWarmsResultCache is the persistence contract end to end:
// Close persists the result cache under the spill dir; a new Engine
// over the same DBDir+SpillDir serves the repeat query from the
// disk-warmed cache — zero files mounted, byte-identical answer.
func TestRestartWarmsResultCache(t *testing.T) {
	m := testRepo(t)
	dbDir := filepath.Join(t.TempDir(), "db")
	spillDir := t.TempDir()
	opts := spillOpts(spillDir, 0)
	opts.DBDir = dbDir
	opts.ResultCacheBytes = -1

	eng := openEngine(t, m.Dir, opts)
	cold, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	coldText := cold.Format(0)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2 := openEngine(t, m.Dir, opts)
	if st := eng2.ResultCache().Stats(); st.WarmedFromDisk == 0 {
		t.Fatalf("reopened cache warmed nothing: %+v", st)
	}
	warm, err := eng2.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.ServedFromResultCache {
		t.Fatal("post-restart repeat query re-executed instead of serving from disk-warmed cache")
	}
	if warm.Stats.Mounts.FilesMounted != 0 {
		t.Fatalf("post-restart repeat query mounted %d files, want 0", warm.Stats.Mounts.FilesMounted)
	}
	if warm.Format(0) != coldText {
		t.Fatalf("warmed result differs:\npre-restart:\n%s\npost-restart:\n%s", coldText, warm.Format(0))
	}
}

// TestRestartIgnoresCorruptSpillState: truncated entry files and a
// garbage manifest must never fail Open or a query — the engine falls
// back to re-executing, with the same answer.
func TestRestartIgnoresCorruptSpillState(t *testing.T) {
	m := testRepo(t)
	dbDir := filepath.Join(t.TempDir(), "db")
	spillDir := t.TempDir()
	opts := spillOpts(spillDir, 0)
	opts.DBDir = dbDir
	opts.ResultCacheBytes = -1

	eng := openEngine(t, m.Dir, opts)
	cold, err := eng.Query(query1)
	if err != nil {
		t.Fatal(err)
	}
	coldText := cold.Format(0)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate every persisted result file.
	results := filepath.Join(spillDir, "results")
	ents, err := os.ReadDir(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if ok, _ := filepath.Match("result-*.spill", de.Name()); ok {
			if err := os.Truncate(filepath.Join(results, de.Name()), 7); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng2 := openEngine(t, m.Dir, opts)
	res, err := eng2.Query(query1)
	if err != nil {
		t.Fatalf("query over truncated spill state: %v", err)
	}
	if res.Stats.ServedFromResultCache {
		t.Fatal("truncated entry was served")
	}
	if res.Format(0) != coldText {
		t.Fatalf("re-executed result differs from original:\n%s\nvs\n%s", coldText, res.Format(0))
	}
	eng2.Close()

	// Garbage manifest: cold but functional.
	if err := os.WriteFile(filepath.Join(results, "manifest.json"), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng3 := openEngine(t, m.Dir, opts)
	res3, err := eng3.Query(query1)
	if err != nil {
		t.Fatalf("query over corrupt manifest: %v", err)
	}
	if res3.Format(0) != coldText {
		t.Fatal("answer changed after corrupt-manifest cold start")
	}
}

// TestSpillCancellationMidFlight: queries cancelled at varying points
// while their flights are spilling must neither wedge the engine nor
// leak budget bytes or temp files, and a clean query afterwards gets
// the right answer.
func TestSpillCancellationMidFlight(t *testing.T) {
	m := testRepo(t)
	spillDir := t.TempDir()
	eng := openEngine(t, m.Dir, spillOpts(spillDir, 2))
	plain := openEngine(t, m.Dir, Options{Mode: ModeALi})
	want := queryAllValues(t, plain, query2, true)

	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // before the mounts
		} else {
			time.AfterFunc(time.Duration(i)*2*time.Millisecond, cancel)
		}
		eng.FlushCold()
		eng.Cache().Clear()
		_, err := eng.QueryAs(ctx, "cancel-prone", query2)
		cancel()
		// Either outcome is fine; the invariants below are not.
		_ = err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := eng.MountService().Stats()
		ents, err := os.ReadDir(filepath.Join(spillDir, "flights"))
		if err != nil {
			t.Fatal(err)
		}
		if st.InFlightBytes == 0 && st.ReplayBytes == 0 && len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation leaked: stats %+v, files %v", st, ents)
		}
		time.Sleep(time.Millisecond)
	}
	got := queryAllValues(t, eng, query2, true)
	assertSameValues(t, "after cancellations", want, got)
}

var _ = vector.KindInt64 // keep the import if assertions change shape
