package core

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vector"
)

// TestDifferentialALiVsEi generates random exploration queries and
// asserts that lazy and eager ingestion produce identical answers — the
// paper's core correctness requirement: "the queries are the same as in
// the case where the database is eagerly loaded with all data up-front".
func TestDifferentialALiVsEi(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test is slow")
	}
	m := testRepo(t)
	ali := openEngine(t, m.Dir, Options{Mode: ModeALi})
	ei := openEngine(t, m.Dir, Options{Mode: ModeEi})

	rng := rand.New(rand.NewSource(20130623)) // the symposium's date
	stations := []string{"ISK", "ANTO", "APE", "NOPE"}
	channels := []string{"BHE", "BHN", "BHZ"}

	for trial := 0; trial < 30; trial++ {
		q := randomAggQuery(rng, stations, channels)
		aliRes, err := ali.Query(q)
		if err != nil {
			t.Fatalf("trial %d ALi: %v\nquery: %s", trial, err, q)
		}
		eiRes, err := ei.Query(q)
		if err != nil {
			t.Fatalf("trial %d Ei: %v\nquery: %s", trial, err, q)
		}
		if aliRes.Rows() != eiRes.Rows() {
			t.Fatalf("trial %d: row counts differ (%d vs %d)\nquery: %s",
				trial, aliRes.Rows(), eiRes.Rows(), q)
		}
		for row := 0; row < aliRes.Rows(); row++ {
			for col := range aliRes.Columns {
				a, b := aliRes.Value(row, col), eiRes.Value(row, col)
				if !valuesClose(a, b) {
					t.Fatalf("trial %d: (%d,%d) differs: ALi=%v Ei=%v\nquery: %s",
						trial, row, col, a, b, q)
				}
			}
		}
	}
}

// randomAggQuery builds a deterministic-output aggregate query with
// random predicates over the seismic schema.
func randomAggQuery(rng *rand.Rand, stations, channels []string) string {
	var preds []string
	if rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("F.station = '%s'", stations[rng.Intn(len(stations))]))
	} else {
		a := stations[rng.Intn(len(stations))]
		b := stations[rng.Intn(len(stations))]
		preds = append(preds, fmt.Sprintf("F.station IN ('%s', '%s')", a, b))
	}
	if rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("F.channel = '%s'", channels[rng.Intn(len(channels))]))
	}
	day := 10 + rng.Intn(3)
	preds = append(preds,
		fmt.Sprintf("R.start_time > '2010-01-%02dT00:00:00.000'", day),
		fmt.Sprintf("R.start_time < '2010-01-%02dT23:59:59.999'", day+rng.Intn(2)))
	if rng.Intn(2) == 0 {
		// A window that may or may not intersect coverage.
		sec := rng.Intn(120)
		preds = append(preds,
			fmt.Sprintf("D.sample_time > '2010-01-%02dT22:14:%02d.000'", day, sec%60),
			fmt.Sprintf("D.sample_time < '2010-01-%02dT22:15:%02d.000'", day, (sec+30)%60))
	}
	if rng.Intn(3) == 0 {
		preds = append(preds, fmt.Sprintf("D.sample_value > %d", rng.Intn(100)-50))
	}
	where := ""
	for i, p := range preds {
		if i == 0 {
			where = "WHERE " + p
		} else {
			where += " AND " + p
		}
	}
	return fmt.Sprintf(`SELECT COUNT(*) AS n, SUM(D.sample_value) AS s,
		MIN(D.sample_value) AS lo, MAX(D.sample_value) AS hi
		FROM F JOIN R ON F.uri = R.uri
		JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
		%s`, where)
}

func valuesClose(a, b vector.Value) bool {
	if a.Kind == vector.KindFloat64 || b.Kind == vector.KindFloat64 {
		af, bf := a.AsFloat(), b.AsFloat()
		if af == bf {
			return true
		}
		diff := math.Abs(af - bf)
		scale := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= 1e-9*math.Max(scale, 1)
	}
	return vector.Equal(a, b)
}

// TestDifferentialMetadataQueries compares grouped metadata-only queries.
func TestDifferentialMetadataQueries(t *testing.T) {
	m := testRepo(t)
	ali := openEngine(t, m.Dir, Options{Mode: ModeALi})
	ei := openEngine(t, m.Dir, Options{Mode: ModeEi})
	queries := []string{
		`SELECT station, channel, COUNT(*) AS n FROM F GROUP BY station, channel ORDER BY station, channel`,
		`SELECT COUNT(DISTINCT uri) FROM R`,
		`SELECT station, SUM(size_bytes) AS b FROM F GROUP BY station ORDER BY b DESC, station`,
		`SELECT MIN(start_time) AS first, MAX(end_time) AS last FROM R`,
		`SELECT uri, nsamples FROM R WHERE record_id = 0 ORDER BY uri LIMIT 7`,
	}
	for _, q := range queries {
		a, err := ali.Query(q)
		if err != nil {
			t.Fatalf("ALi %q: %v", q, err)
		}
		b, err := ei.Query(q)
		if err != nil {
			t.Fatalf("Ei %q: %v", q, err)
		}
		if a.Format(0) != b.Format(0) {
			t.Errorf("results differ for %q:\nALi:\n%s\nEi:\n%s", q, a.Format(0), b.Format(0))
		}
	}
}

// TestMountCorruptFileFails injects corruption between metadata load and
// query time: the mount must fail loudly, never silently return wrong
// data (the Steim reverse-integration check).
func TestMountCorruptFileFails(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})

	// Identify the file Query 1 will mount and corrupt its payload.
	p, _ := e.Prepare(query1)
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	files := bp.FilesOfInterest()
	if len(files) != 1 {
		t.Fatalf("files of interest = %d", len(files))
	}
	path := filepath.Join(m.Dir, files[0].URI)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]byte, len(data))
	copy(orig, data)
	data[len(data)/2] ^= 0xFF // flip a bit mid-payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.WriteFile(path, orig, 0o644)

	if _, err := bp.Proceed(); err == nil {
		t.Fatal("mount of corrupted file succeeded; corruption must not pass silently")
	}
}

// TestMountDeletedFileFails covers the file vanishing between the two
// stages (repositories are live; files may be rotated away).
func TestMountDeletedFileFails(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	p, _ := e.Prepare(query1)
	bp, err := p.Stage1()
	if err != nil {
		t.Fatal(err)
	}
	files := bp.FilesOfInterest()
	path := filepath.Join(m.Dir, files[0].URI)
	data, _ := os.ReadFile(path)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	defer os.WriteFile(path, data, 0o644)
	if _, err := bp.Proceed(); err == nil {
		t.Fatal("mount of deleted file succeeded")
	}
}

// TestOpenErrors covers engine-open misconfiguration.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open without dirs succeeded")
	}
	if _, err := Open(Options{RepoDir: "/nonexistent-repo-xyz", DBDir: t.TempDir()}); err == nil {
		t.Error("Open of missing repository succeeded")
	}
}

// TestQueryErrors covers user mistakes reaching the engine.
func TestQueryErrors(t *testing.T) {
	m := testRepo(t)
	e := openEngine(t, m.Dir, Options{Mode: ModeALi})
	for _, q := range []string{
		`SELECT nope FROM F`,
		`SELECT * FROM GHOST`,
		`this is not sql`,
		`SELECT AVG(F.station) FROM F`, // AVG over VARCHAR
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}
