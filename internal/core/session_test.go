package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestQueryAsAttributesMountsToSession: the session identity threaded
// through QueryAs must surface in the mount service's per-session
// admission statistics, with nothing left held after the query.
func TestQueryAsAttributesMountsToSession(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, Options{Mode: ModeALi, MountBudgetBytes: 1 << 30})
	want, _ := expectedQuery1(t, m)
	res, err := eng.QueryAs(context.Background(), "alice", query1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Float(0, 0); got != want {
		t.Errorf("answer = %v, want %v", got, want)
	}
	st := eng.MountService().Stats()
	ss, ok := st.PerSession["alice"]
	if !ok || ss.Acquires == 0 {
		t.Fatalf("no admission stats for session alice: %+v", st.PerSession)
	}
	if ss.HeldBytes != 0 {
		t.Errorf("session alice still holds %d budget bytes after the query", ss.HeldBytes)
	}
	if _, ok := st.PerSession["bob"]; ok {
		t.Error("phantom session appeared in the stats")
	}
}

// TestQueryAsCancelledBeforeMount: a query whose context is already
// cancelled when it reaches the admission gate fails promptly and
// deterministically, holding no budget bytes — the engine-level face of
// the cancellable-wait bugfix.
func TestQueryAsCancelledBeforeMount(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, Options{Mode: ModeALi, MountBudgetBytes: 1 << 30})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := eng.QueryAs(ctx, "impatient", query1)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query hung")
	}
	if got := eng.MountService().Stats().WaiterCancels; got == 0 {
		t.Error("cursor-level cancellation not counted in Stats")
	}
	// The abandoned flight stops and releases asynchronously (at the
	// next batch boundary, or when its queued admission is cancelled).
	deadline := time.Now().Add(10 * time.Second)
	for eng.MountService().Stats().InFlightBytes != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled query leaked %d budget bytes",
				eng.MountService().Stats().InFlightBytes)
		}
		time.Sleep(time.Millisecond)
	}
	// The engine stays fully usable afterwards.
	if _, err := eng.QueryAs(context.Background(), "impatient", query1); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestResultCacheStoresAttributedToSession: stores land on the leader's
// session in the result cache's per-session accounting.
func TestResultCacheStoresAttributedToSession(t *testing.T) {
	m := testRepo(t)
	eng := openEngine(t, m.Dir, Options{Mode: ModeALi, ResultCacheBytes: -1})
	if _, err := eng.QueryAs(context.Background(), "dashboard", query1); err != nil {
		t.Fatal(err)
	}
	st := eng.ResultCache().Stats()
	ss, ok := st.PerSession["dashboard"]
	if !ok || ss.HeldBytes == 0 {
		t.Fatalf("stored result not attributed to its session: %+v", st.PerSession)
	}
	if st.BytesResident != ss.HeldBytes {
		t.Errorf("resident %d != session-held %d with one session", st.BytesResident, ss.HeldBytes)
	}
}
