package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/plan"
	"repro/internal/stats"
)

// Prepared is a query that finished the pipeline's front half (see
// pipeline.go): parsed, bound, optimized, normalized and fingerprinted,
// and decomposed into Q = Qf ⋈ Qs when the engine runs in ALi mode.
type Prepared struct {
	eng  *Engine
	SQL  string
	Root plan.Node
	// ctx cancels the query's budget waits; session is the admission
	// identity mounts and result-cache stores are attributed to. Both
	// default to anonymous (Prepare) and are set by PrepareAs/QueryAs.
	ctx     context.Context
	session string
	// Fingerprint is the canonical-plan hash semantically equivalent
	// spellings share; the engine's result cache keys on it.
	Fingerprint plan.Fingerprint
	// Dec is the two-stage decomposition; valid when HasStages.
	Dec       plan.Decomposition
	HasStages bool
	// actuals are the actual-data scans rule (1) will expand.
	actuals []plan.ActualScanInfo
	// inFlight marks an execution led under the result cache's
	// single-flight: the flight publishes the result, so the stages skip
	// their own probe and offer.
	inFlight bool
	// startEpoch is the result-cache epoch observed when execution began
	// (Stage1); an execution that straddles an invalidation must not be
	// retained.
	startEpoch uint64
	// sub is the plan's subsumption summary (nil when ineligible or when
	// Options.ResultCacheSubsumption is off): the semantic-cache bucket
	// key, per-column intervals, and the prebuilt re-filter predicate.
	sub *plan.SubsumptionInfo
}

// PlanString renders the optimized plan; in ALi mode the two stages are
// shown separately.
func (p *Prepared) PlanString() string {
	if !p.HasStages {
		return plan.Format(p.Root)
	}
	if p.Dec.MetadataOnly {
		return "-- metadata-only: Qf answers the query --\n" + plan.Format(p.Dec.Qf)
	}
	return "-- Qf (first stage) --\n" + plan.Format(p.Dec.Qf) +
		"-- Qs (second stage) --\n" + plan.Format(p.Dec.Qs)
}

// Breakpoint is the pause between the two execution stages: the files of
// interest are known, the informativeness estimate is available, and the
// explorer may proceed, or abort without ingesting anything.
type Breakpoint struct {
	pq       *Prepared
	qfResult *exec.Materialized
	files    []plan.MountSpec
	// Est is the informativeness estimate for the second stage.
	Est explore.Estimate
	// final is non-nil when the query was fully answered in stage one
	// (metadata-only queries, derived-metadata answers, or Ei mode).
	final *Result

	stage1Wall time.Duration
	stage1IO   time.Duration
	spanLo     int64
	spanHi     int64
	hasSpan    bool

	// oracle is the statistics-free planner fed by the frozen Qf result
	// (nil when Options.StatsPlanning is off or the metadata result is
	// not record-granular). The counters record what Stage-1 planning
	// already saved so Stage-2 stats can report it.
	oracle          *stats.Oracle
	prunedFiles     int
	prunedRecords   int
	bytesNotMounted int64
	joinFlips       int
}

// Done reports whether the query is already answered (no second stage).
func (b *Breakpoint) Done() bool { return b.final != nil }

// Result returns the final result when Done.
func (b *Breakpoint) Result() *Result { return b.final }

// FilesOfInterest lists the files the second stage would access.
func (b *Breakpoint) FilesOfInterest() []plan.MountSpec {
	out := make([]plan.MountSpec, len(b.files))
	copy(out, b.files)
	return out
}

// Stage1 runs the result-cache probe and the first execution stage. A
// current-epoch cached result for the query's fingerprint answers it
// outright (Done reports true and no stage executes). Otherwise, for Ei
// mode Stage1 simply runs the whole plan (there is only one stage); for
// ALi it executes Qf, identifies the files of interest and computes the
// informativeness estimate — then pauses.
func (p *Prepared) Stage1() (*Breakpoint, error) {
	e := p.eng
	start := time.Now()
	ioStart := e.clock.Elapsed()
	bp := &Breakpoint{pq: p}

	p.startEpoch = e.results.Epoch()
	// Pipeline probe stage: an O(1) share of a cached result makes both
	// execution stages unnecessary.
	if res, ok := e.probeResultCache(p); ok {
		res.Stats.Stage1Wall = time.Since(start)
		res.Stats.TotalWall = res.Stats.Stage1Wall
		bp.final = res
		return bp, nil
	}

	finish := func(mat *exec.Materialized, st Stats) {
		st.Stage1Wall = time.Since(start)
		st.Stage1IO = e.clock.Elapsed() - ioStart
		st.TotalWall = st.Stage1Wall + st.Stage2Wall
		st.TotalIO = st.Stage1IO + st.Stage2IO
		bp.final = &Result{Columns: columnNames(mat.Schema), Mat: mat, Stats: st}
		e.offerToResultCache(p, bp.final)
	}

	if e.opts.Mode == ModeEi || !p.HasStages && len(p.actuals) == 0 {
		// Single-stage execution: the conventional path.
		mat, err := exec.Run(p.Root, e.newExecEnv(p, nil))
		if err != nil {
			return nil, err
		}
		finish(mat, Stats{})
		return bp, nil
	}

	if p.HasStages && p.Dec.MetadataOnly {
		mat, err := exec.Run(p.Dec.Qf, e.newExecEnv(p, nil))
		if err != nil {
			return nil, err
		}
		finish(mat, Stats{MetadataOnly: true})
		return bp, nil
	}

	// ALi with actual data involved.
	if p.HasStages {
		mat, err := exec.Run(p.Dec.Qf, e.newExecEnv(p, nil))
		if err != nil {
			return nil, err
		}
		// The Qf result is replayed by every per-file subplan of stage
		// two, possibly concurrently at any parallelism: freeze it so the
		// replays are O(1) shares and any mutation anywhere materializes
		// a private copy instead of corrupting the shared result.
		mat.Freeze()
		bp.qfResult = mat
	}
	if err := e.identifyFiles(p, bp); err != nil {
		return nil, err
	}
	// Statistics-free planning: the frozen Qf result is an exact
	// cardinality oracle. Prune files whose every record provably fails
	// the Stage-2 residual before the mount service ever sees them, and
	// stamp honest byte estimates on what survives.
	if e.statsPlanningOn() && bp.qfResult != nil {
		if o := e.buildOracle(p, bp); o != nil {
			bp.oracle = o
			kept, rep := o.PruneFiles(bp.files)
			bp.files = kept
			bp.prunedFiles = rep.PrunedFiles
			bp.prunedRecords = rep.PrunedRecords
			bp.bytesNotMounted = rep.BytesNotMounted
			for i := range bp.files {
				bp.files[i].EstBytes = o.EstimateBytes(bp.files[i].URI)
			}
		}
	}
	bp.Est = e.estimate(p, bp)
	bp.stage1Wall = time.Since(start)
	bp.stage1IO = e.clock.Elapsed() - ioStart

	// Derived-metadata shortcut: answer summary queries without stage 2.
	if e.derived != nil {
		if res, ok := e.tryDerivedAnswer(p, bp); ok {
			st := res.Stats
			st.Stage1Wall = time.Since(start)
			st.Stage1IO = e.clock.Elapsed() - ioStart
			st.TotalWall = st.Stage1Wall
			st.TotalIO = st.Stage1IO
			st.FilesOfInterest = len(bp.files)
			st.Estimate = bp.Est
			st.AnsweredFromDerived = true
			res.Stats = st
			bp.final = res
			e.offerToResultCache(p, res)
			return bp, nil
		}
	}
	return bp, nil
}

// identifyFiles computes the files of interest from the Qf result (or
// all repository files when the query never touches metadata) and marks
// which are cache-resident (f ∈ C).
func (e *Engine) identifyFiles(p *Prepared, bp *Breakpoint) error {
	if len(p.actuals) == 0 {
		return fmt.Errorf("core: stage 2 with no actual-data scan")
	}
	actual := p.actuals[0]
	// The span σp3 places on the data-span column, for cache decisions
	// and informativeness.
	bp.spanLo, bp.spanHi = math.MinInt64, math.MaxInt64
	if actual.Pred != nil {
		if lo, hi, ok := exec.PredSpan(actual.Pred, actual.Binding, e.adapter.DataSpanColumn()); ok {
			bp.spanLo, bp.spanHi, bp.hasSpan = lo, hi, true
		}
	}

	var uris []string
	if bp.qfResult == nil {
		uris = e.allURIs // worst case: the entire repository
	} else {
		uriCol, err := plan.CollectURIColumn(p.Dec.Qs, p.Dec.Name, actual.Binding, e.adapter.URIColumn())
		if err != nil {
			return err
		}
		idx := bp.qfResult.Column(uriCol)
		if idx < 0 {
			return fmt.Errorf("core: stage-one result lacks column %s", uriCol)
		}
		seen := make(map[string]bool)
		for _, b := range bp.qfResult.Batches {
			for _, u := range b.Cols[idx].Strings() {
				if !seen[u] {
					seen[u] = true
					uris = append(uris, u)
				}
			}
		}
	}
	need := cache.FullSpan()
	if bp.hasSpan {
		need = cache.Span{Lo: bp.spanLo, Hi: bp.spanHi}
	}
	bp.files = make([]plan.MountSpec, len(uris))
	for i, u := range uris {
		bp.files[i] = plan.MountSpec{URI: u, Cached: e.cache.Contains(u, need)}
	}
	return nil
}

// Proceed runs the second execution stage: the run-time query
// optimization phase applies rewrite rule (1), then Qs executes, mounts
// happening wherever and whenever needed.
func (b *Breakpoint) Proceed() (*Result, error) {
	if b.final != nil {
		return b.final, nil
	}
	e := b.pq.eng
	start := time.Now()
	ioStart := e.clock.Elapsed()

	root := b.pq.Root
	if b.pq.HasStages {
		root = b.pq.Dec.Qs
	}
	actual := b.pq.actuals[0]
	rewritten := plan.ApplyRule1(root, actual.Binding, e.adapter.Name(), b.files)
	rewritten = b.orderStage2Joins(rewritten)
	resolved, err := plan.Resolve(rewritten)
	if err != nil {
		return nil, err
	}
	env := e.newExecEnv(b.pq, b)

	var mat *exec.Materialized
	if e.opts.Strategy == StrategyPerFile {
		mat, err = e.runPerFile(resolved, b, env)
	} else {
		mat, err = exec.Run(resolved, env)
	}
	if err != nil {
		return nil, err
	}

	st := Stats{
		Stage1Wall:      b.stage1Wall,
		Stage1IO:        b.stage1IO,
		Stage2Wall:      time.Since(start),
		Stage2IO:        e.clock.Elapsed() - ioStart,
		FilesOfInterest: len(b.files),
		Mounts:          b.stage2Mounts(env),
		Estimate:        b.Est,
		Strategy:        e.opts.Strategy,
	}
	st.TotalWall = st.Stage1Wall + st.Stage2Wall
	st.TotalIO = st.Stage1IO + st.Stage2IO
	res := &Result{Columns: columnNames(mat.Schema), Mat: mat, Stats: st}
	b.pq.eng.offerToResultCache(b.pq, res)
	return res, nil
}

// newExecEnv builds the execution environment, wiring the query's
// cancellation context and session identity, the Qf result for
// result-scans and the engine's shared mount service (which carries the
// derived-metadata observation hook). p may be nil (cached serves with
// no originating prepared query).
func (e *Engine) newExecEnv(p *Prepared, bp *Breakpoint) *exec.Env {
	env := &exec.Env{
		Store:       e.store,
		Adapters:    e.reg,
		RepoDir:     e.opts.RepoDir,
		Cache:       e.cache,
		Results:     make(map[string]*exec.Materialized),
		Indexes:     e.indexes,
		BatchSize:   e.opts.BatchSize,
		Parallelism: e.opts.Parallelism,
		Mounts:      &exec.MountStats{},
		MountSvc:    e.mounts,
	}
	if p != nil {
		env.Ctx = p.ctx
		env.Session = p.session
	}
	if bp != nil && bp.qfResult != nil {
		env.Results[bp.pq.Dec.Name] = bp.qfResult
	}
	if bp != nil && bp.oracle != nil {
		env.Card = bp.oracle
	}
	return env
}

// estimate computes the breakpoint informativeness from the stage-one
// result, using the adapter's estimate hints when available.
func (e *Engine) estimate(p *Prepared, bp *Breakpoint) explore.Estimate {
	if bp.qfResult == nil {
		// No metadata stage: only file-level knowledge.
		est := explore.Estimate{Files: len(bp.files)}
		est.Empty = est.Files == 0
		return est
	}
	in := explore.EstimateInput{
		Schema: bp.qfResult.Schema,
		Rows:   bp.qfResult.Batches,
		SpanLo: bp.spanLo,
		SpanHi: bp.spanHi,
		IsCached: func(uri string) bool {
			need := cache.FullSpan()
			if bp.hasSpan {
				need = cache.Span{Lo: bp.spanLo, Hi: bp.spanHi}
			}
			return e.cache.Contains(uri, need)
		},
		Disk: e.pool.Model(),
	}
	if len(p.actuals) > 0 {
		if uriCol, err := plan.CollectURIColumn(p.Dec.Qs, p.Dec.Name, p.actuals[0].Binding, e.adapter.URIColumn()); err == nil {
			in.URICol = uriCol
		}
	}
	if h, ok := e.adapter.(EstimateHints); ok {
		in.SizeCol = h.FileSizeColumn()
		in.NSamplesCol = h.RowCountColumn()
		lo, hi := h.RecordSpanColumns()
		in.SpanLoCol, in.SpanHiCol = lo, hi
	}
	return explore.Compute(in)
}

// EstimateHints is an optional adapter extension giving the
// informativeness model the metadata columns it needs. Without it the
// estimate degrades to file/record counts.
type EstimateHints interface {
	// FileSizeColumn is the file-table column holding file bytes.
	FileSizeColumn() string
	// RowCountColumn is the record-table column holding per-record row
	// counts.
	RowCountColumn() string
	// RecordSpanColumns are the record-table columns bounding the data
	// span (start, end).
	RecordSpanColumns() (lo, hi string)
}

func columnNames(schema []plan.ColInfo) []string {
	out := make([]string, len(schema))
	for i, c := range schema {
		out[i] = c.Name
	}
	return out
}
