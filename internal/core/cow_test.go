package core

import (
	"testing"

	"repro/internal/vector"
)

// wideCowQuery touches every station over a week: many files of
// interest, so the Qf result is replayed once per file by the per-file
// merge strategy.
const wideCowQuery = `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-01T00:00:00.000'
AND R.start_time < '2010-01-08T00:00:00.000'`

// TestPerFileQfReplayIsO1Copies pins the acceptance criterion of the
// copy-on-write refactor: replaying a shared Qf result across K files
// performs O(1) deep copies in total, not one per file — the per-file
// subplans read O(1) shares of the frozen stage-one result.
func TestPerFileQfReplayIsO1Copies(t *testing.T) {
	m := testRepo(t)
	for _, par := range []int{1, 4} {
		e := openEngine(t, m.Dir, Options{Mode: ModeALi, Strategy: StrategyPerFile, Parallelism: par})
		p, err := e.Prepare(wideCowQuery)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := p.Stage1()
		if err != nil {
			t.Fatal(err)
		}
		files := len(bp.FilesOfInterest())
		if files < 4 {
			t.Fatalf("parallelism %d: only %d files of interest; the test needs a wide query", par, files)
		}
		before := vector.CowCopies()
		res, err := bp.Proceed()
		if err != nil {
			t.Fatal(err)
		}
		copies := vector.CowCopies() - before
		if copies >= int64(files) {
			t.Errorf("parallelism %d: stage two performed %d CoW copies over %d files — sharing degenerated to one copy per file",
				par, copies, files)
		}
		if copies > 2 {
			t.Errorf("parallelism %d: stage two performed %d CoW copies, want O(1)", par, copies)
		}
		if res.Rows() != 1 {
			t.Fatalf("parallelism %d: rows = %d", par, res.Rows())
		}
	}
}
