package core

import (
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/vector"
)

// This file wires the statistics-free planning layer (internal/stats)
// into the two-stage pipeline. Between Stage 1 and Stage 2 the frozen
// Qf result is a perfect, free cardinality oracle: exact per-record row
// counts and spans with zero statistics collection. The engine uses it
// to prune files from the mount list before the mount service sees
// them, order Stage-2 join chains greedily, pick hash-join build sides,
// and size admission requests honestly. Everything is gated by
// Options.StatsPlanning and guaranteed not to change results — only
// how much work producing them costs.

// StatsPlanningMode gates the statistics-free planner.
type StatsPlanningMode int

// StatsPlanning settings. The zero value is ON: the planner only ever
// skips provably useless work, so there is no reason to opt in.
const (
	// StatsPlanningOn enables Qf-fed pruning, join ordering, build-side
	// selection and honest admission sizing (the default).
	StatsPlanningOn StatsPlanningMode = iota
	// StatsPlanningOff disables the oracle entirely; Stage 2 plans and
	// admits exactly as it would have before the planner existed. The
	// differential tests pin byte-identical results across both modes.
	StatsPlanningOff
)

func (m StatsPlanningMode) String() string {
	if m == StatsPlanningOff {
		return "off"
	}
	return "on"
}

func (e *Engine) statsPlanningOn() bool {
	return e.opts.StatsPlanning == StatsPlanningOn
}

// buildOracle harvests the frozen Qf result into a stats.Oracle. It
// returns nil when the metadata result doesn't carry record-granular
// columns (uri, record id, span bounds, row counts) — planning then
// proceeds exactly as with the oracle off.
func (e *Engine) buildOracle(p *Prepared, bp *Breakpoint) *stats.Oracle {
	if !p.HasStages || bp.qfResult == nil || len(p.actuals) == 0 {
		return nil
	}
	hints, ok := e.adapter.(EstimateHints)
	if !ok {
		return nil
	}
	actual := p.actuals[0]
	uriCol, err := plan.CollectURIColumn(p.Dec.Qs, p.Dec.Name, actual.Binding, e.adapter.URIColumn())
	if err != nil {
		return nil
	}
	ridCol, err := plan.CollectURIColumn(p.Dec.Qs, p.Dec.Name, actual.Binding, e.adapter.RecordIDColumn())
	if err != nil {
		return nil
	}
	loName, hiName := hints.RecordSpanColumns()
	uriIdx := bp.qfResult.Column(uriCol)
	ridIdx := bp.qfResult.Column(ridCol)
	loIdx := bp.qfResult.Column(loName)
	hiIdx := bp.qfResult.Column(hiName)
	rowsIdx := bp.qfResult.Column(hints.RowCountColumn())
	sizeIdx := bp.qfResult.Column(hints.FileSizeColumn()) // optional
	if uriIdx < 0 || ridIdx < 0 || loIdx < 0 || hiIdx < 0 || rowsIdx < 0 {
		return nil
	}

	o := stats.New(p.Dec.Name, int64(bp.qfResult.Rows()), e.derived)
	for _, b := range bp.qfResult.Batches {
		uris := b.Cols[uriIdx].Strings()
		rids := b.Cols[ridIdx].Int64s()
		los := b.Cols[loIdx].Int64s()
		his := b.Cols[hiIdx].Int64s()
		rows := b.Cols[rowsIdx].Int64s()
		var sizes []int64
		if sizeIdx >= 0 && b.Cols[sizeIdx].Kind() == vector.KindInt64 {
			sizes = b.Cols[sizeIdx].Int64s()
		}
		for i := range uris {
			var size int64
			if sizes != nil {
				size = sizes[i]
			}
			o.AddRecord(uris[i], size, stats.RecordStats{
				RecordID: rids[i], Rows: rows[i], SpanLo: los[i], SpanHi: his[i],
			})
		}
	}

	// The residual predicate Stage 2 will apply at every mount: interval
	// bounds over the span (time) and value (float) columns license the
	// prune rules.
	_, _, dataDef := e.adapter.Tables()
	spanName := actual.Binding + "." + e.adapter.DataSpanColumn()
	valName := ""
	if e.dataValCol >= 0 {
		valName = actual.Binding + "." + dataDef.Columns[e.dataValCol].Name
	}
	o.SetResidual(actual.Pred, spanName, valName)
	return o
}

// orderStage2Joins applies the oracle's join-chain rewrites to the
// rule-(1)-expanded Stage-2 plan. Order-insensitive consumers (global
// aggregates without float-order-sensitive functions) get the full
// greedy smallest-first reorder; everything else gets only the
// always-safe empty-chain early termination, preserving row order and
// therefore byte-identical output.
func (b *Breakpoint) orderStage2Joins(root plan.Node) plan.Node {
	if b.oracle == nil {
		return root
	}
	var out plan.Node
	var flips int
	if orderInsensitiveOutput(root) {
		out, flips = plan.OrderJoins(root, b.oracle.NodeRows)
	} else {
		out, flips = plan.PruneEmptyJoins(root, b.oracle.NodeRows)
	}
	b.joinFlips += flips
	return out
}

// orderInsensitiveOutput reports whether the plan's final answer cannot
// depend on input row order: a global aggregate (no GROUP BY) whose
// every function is order-insensitive over floats too — COUNT, MIN,
// MAX always; SUM only over int/time arguments (float addition is not
// associative); AVG never.
func orderInsensitiveOutput(root plan.Node) bool {
	n := root
	if p, ok := n.(*plan.Project); ok {
		n = p.Child
	}
	agg, ok := n.(*plan.Aggregate)
	if !ok || len(agg.GroupBy) > 0 {
		return false
	}
	for _, spec := range agg.Aggs {
		switch spec.Func {
		case plan.AggCount, plan.AggMin, plan.AggMax:
		case plan.AggSum:
			if spec.Arg == nil || spec.Arg.Kind() == vector.KindFloat64 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// stage2Mounts folds the breakpoint's planner counters into the
// execution env's mount statistics and records them on the engine.
func (b *Breakpoint) stage2Mounts(env *exec.Env) exec.MountStats {
	ms := env.MountsSnapshot()
	ms.PrunedFiles += b.prunedFiles
	ms.PrunedRecords += b.prunedRecords
	ms.BytesNotMounted += b.bytesNotMounted
	ms.JoinOrderFlips += b.joinFlips
	b.pq.eng.notePlannerStats(ms)
	return ms
}

// PlannerStats is the engine-lifetime snapshot of statistics-free
// planner activity, for cmd/explorer's \stats display.
type PlannerStats struct {
	PrunedFiles         int64
	PrunedRecords       int64
	BytesNotMounted     int64
	JoinOrderFlips      int64
	JoinBuildFlips      int64
	AdmissionBytesSaved int64
}

// PlannerStats returns planner counters accumulated across every query
// of the engine (admission savings come from the shared mount service).
func (e *Engine) PlannerStats() PlannerStats {
	return PlannerStats{
		PrunedFiles:         e.statPrunedFiles.Load(),
		PrunedRecords:       e.statPrunedRecords.Load(),
		BytesNotMounted:     e.statBytesNotMounted.Load(),
		JoinOrderFlips:      e.statJoinOrderFlips.Load(),
		JoinBuildFlips:      e.statJoinBuildFlips.Load(),
		AdmissionBytesSaved: e.mounts.Stats().AdmissionBytesSaved,
	}
}

// notePlannerStats accumulates one stage-2 execution's planner counters
// into the engine-lifetime totals.
func (e *Engine) notePlannerStats(ms exec.MountStats) {
	e.statPrunedFiles.Add(int64(ms.PrunedFiles))
	e.statPrunedRecords.Add(int64(ms.PrunedRecords))
	e.statBytesNotMounted.Add(ms.BytesNotMounted)
	e.statJoinOrderFlips.Add(int64(ms.JoinOrderFlips))
	e.statJoinBuildFlips.Add(int64(ms.JoinBuildFlips))
}
