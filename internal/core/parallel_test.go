package core

import (
	"math"
	"testing"

	"repro/internal/vector"
)

// queryAllValues flattens a result into its scalar values, row-major.
func queryAllValues(t *testing.T, e *Engine, q string, cold bool) []vector.Value {
	t.Helper()
	if cold {
		e.FlushCold()
		e.Cache().Clear()
	}
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var out []vector.Value
	for _, b := range res.Mat.Batches {
		for r := 0; r < b.Len(); r++ {
			for _, c := range b.Cols {
				out = append(out, c.Get(r))
			}
		}
	}
	return out
}

func assertSameValues(t *testing.T, label string, want, got []vector.Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d values vs %d", label, len(want), len(got))
	}
	for i := range want {
		if vector.Compare(want[i], got[i]) != 0 {
			t.Fatalf("%s: value %d differs: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestParallelismDeterministic runs the paper's two queries cold and
// hot at parallelism 1 vs 8 — ingestion, the mount scheduler and the
// second stage must produce identical results.
func TestParallelismDeterministic(t *testing.T) {
	m := testRepo(t)
	for _, mode := range []Mode{ModeALi, ModeEi} {
		seq := openEngine(t, m.Dir, Options{Mode: mode, Parallelism: 1})
		par := openEngine(t, m.Dir, Options{Mode: mode, Parallelism: 8})
		for _, q := range []string{query1, query2} {
			for _, cold := range []bool{true, false} {
				want := queryAllValues(t, seq, q, cold)
				got := queryAllValues(t, par, q, cold)
				assertSameValues(t, mode.String()+"/"+q[:20], want, got)
			}
		}
	}
}

// TestParallelismDeterministicPerFile covers the per-file merge
// strategy, whose float accumulation must merge partial states in file
// order at any worker count.
func TestParallelismDeterministicPerFile(t *testing.T) {
	m := testRepo(t)
	q := `SELECT AVG(D.sample_value), COUNT(*) AS n
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'`
	seq := openEngine(t, m.Dir, Options{Mode: ModeALi, Strategy: StrategyPerFile, Parallelism: 1})
	par := openEngine(t, m.Dir, Options{Mode: ModeALi, Strategy: StrategyPerFile, Parallelism: 8})
	want := queryAllValues(t, seq, q, true)
	got := queryAllValues(t, par, q, true)
	assertSameValues(t, "per-file", want, got)
	if math.IsNaN(want[0].AsFloat()) {
		t.Fatal("per-file aggregate returned NaN")
	}
}

// TestParallelIngestReportMatches checks the parallel ingestion reports
// the same file/record/byte accounting as the sequential load.
func TestParallelIngestReportMatches(t *testing.T) {
	m := testRepo(t)
	seq := openEngine(t, m.Dir, Options{Mode: ModeEi, Parallelism: 1, SkipIndexes: true})
	par := openEngine(t, m.Dir, Options{Mode: ModeEi, Parallelism: 8, SkipIndexes: true})
	a, b := seq.Report(), par.Report()
	if a.Metadata.Files != b.Metadata.Files || a.Metadata.Records != b.Metadata.Records {
		t.Fatalf("metadata accounting differs: %+v vs %+v", a.Metadata, b.Metadata)
	}
	if a.Eager.DataRows != b.Eager.DataRows || a.Eager.RepoBytes != b.Eager.RepoBytes {
		t.Fatalf("eager accounting differs: rows %d vs %d, bytes %d vs %d",
			a.Eager.DataRows, b.Eager.DataRows, a.Eager.RepoBytes, b.Eager.RepoBytes)
	}
	if a.Eager.DataBytes != b.Eager.DataBytes {
		t.Fatalf("stored bytes differ: %d vs %d", a.Eager.DataBytes, b.Eager.DataBytes)
	}
}

// TestParallelMountStats checks mount statistics are complete (not
// torn) when the scheduler runs 8-wide.
func TestParallelMountStats(t *testing.T) {
	m := testRepo(t)
	seq := openEngine(t, m.Dir, Options{Mode: ModeALi, Parallelism: 1})
	par := openEngine(t, m.Dir, Options{Mode: ModeALi, Parallelism: 8})
	resSeq, err := seq.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := par.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	if resSeq.Stats.Mounts.FilesMounted != resPar.Stats.Mounts.FilesMounted ||
		resSeq.Stats.Mounts.RecordsMounted != resPar.Stats.Mounts.RecordsMounted ||
		resSeq.Stats.Mounts.BytesRead != resPar.Stats.Mounts.BytesRead {
		t.Fatalf("mount stats differ: %+v vs %+v", resSeq.Stats.Mounts, resPar.Stats.Mounts)
	}
}
