package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/resultcache"
	"repro/internal/sql"
)

// This file is the engine's staged query pipeline:
//
//	parse → bind → optimize → normalize → fingerprint
//	      → result-cache probe → execute (stage 1 [→ breakpoint] → stage 2)
//
// All three entry points share it instead of duplicating steps: Prepare
// runs the front half and stops before the probe; Stage1/Proceed (the
// interactive breakpoint flow) and Query (end-to-end, with
// query-granular single-flight) share the probe, the execution stages
// and the result-cache offer on completion.

// Prepare runs the pipeline's front half: parse, bind, optimize,
// normalize and fingerprint (plus, in ALi mode, the Q = Qf ⋈ Qs
// decomposition). This is the compile-time query optimization phase.
// The query runs anonymously; PrepareAs attaches a cancellation context
// and a session identity.
func (e *Engine) Prepare(sqlText string) (*Prepared, error) {
	return e.PrepareAs(context.Background(), "", sqlText) //lint:allow ctxcheck Prepare is the documented anonymous uncancellable entry point; callers who hold a ctx use PrepareAs
}

// PrepareAs is Prepare with an execution identity: ctx cancels the
// query's waits on the mount admission budget, and session is the
// identity its mounts and result-cache stores are attributed to — the
// unit of the engine's per-session quotas and fairness statistics.
func (e *Engine) PrepareAs(ctx context.Context, session, sqlText string) (*Prepared, error) {
	// parse
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	// bind
	bound, err := plan.Bind(stmt, e.cat)
	if err != nil {
		return nil, err
	}
	// optimize
	optimized, err := plan.Optimize(bound, e.cat)
	if err != nil {
		return nil, err
	}
	// normalize: semantics-preserving canonicalization (constant folding,
	// canonical conjunct order) of the plan that will execute.
	normalized, err := plan.Normalize(optimized)
	if err != nil {
		return nil, err
	}
	// fingerprint: the canonical-plan hash equivalent spellings share;
	// the result cache keys on it.
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxcheck nil-ctx normalization: a nil ctx means the caller opted out of cancellation
	}
	p := &Prepared{
		eng: e, SQL: sqlText, Root: normalized,
		ctx: ctx, session: session,
		Fingerprint: plan.FingerprintOf(normalized),
	}
	// Subsumption summary: the semantic-cache bucket key, the per-column
	// interval decomposition, and the re-filter predicate. Computed once
	// at prepare time; nil when the plan is ineligible (row-collapsing
	// operators, non-interval bounds, non-passthrough columns).
	if e.results != nil && e.opts.ResultCacheSubsumption {
		p.sub = plan.SubsumptionInfoOf(normalized)
	}
	if e.opts.Mode == ModeALi {
		name := fmt.Sprintf("qf%d", e.qfSeq.Add(1))
		if dec, ok := plan.Decompose(normalized, e.cat, name); ok {
			p.Dec = dec
			p.HasStages = true
			if !dec.MetadataOnly {
				p.actuals = plan.FindActualScans(dec.Qs, e.cat)
			}
		} else {
			// No metadata reference at all: rule (1) still applies, with
			// every repository file potentially of interest (worst case).
			p.actuals = plan.FindActualScans(normalized, e.cat)
		}
	}
	return p, nil
}

// run executes a prepared query end to end through the shared stages.
func (p *Prepared) run() (*Result, error) {
	bp, err := p.Stage1()
	if err != nil {
		return nil, err
	}
	if bp.Done() {
		return bp.Result(), nil
	}
	return bp.Proceed()
}

// Query runs a query end to end: the full pipeline, with query-granular
// single-flight when the result cache is enabled — concurrent identical
// queries coalesce onto one execution and riders receive O(1)
// copy-on-write shares of the leader's result, mirroring the mount
// service's flights one layer up. The query runs anonymously and
// uncancellable; servers multiplexing sessions use QueryAs.
func (e *Engine) Query(sqlText string) (*Result, error) {
	return e.QueryAs(context.Background(), "", sqlText) //lint:allow ctxcheck Query is the documented anonymous uncancellable entry point; callers who hold a ctx use QueryAs
}

// QueryAs is Query under an execution identity: ctx unblocks the query
// promptly if it is cancelled while waiting on the mount admission
// budget (holding nothing it never acquired), and session threads
// through to the mount service's per-session quotas and the result
// cache's per-session eviction — the fairness unit that keeps one
// greedy session from starving the rest.
func (e *Engine) QueryAs(ctx context.Context, session, sqlText string) (*Result, error) {
	p, err := e.PrepareAs(ctx, session, sqlText)
	if err != nil {
		return nil, err
	}
	if e.results == nil {
		return p.run()
	}
	start := time.Now()
	var leader *Result
	var mat *exec.Materialized
	var out resultcache.Outcome
	for {
		mat, out, err = e.results.Do(p.Fingerprint, session, p.sub, func() (*exec.Materialized, time.Duration, error) {
			// The flight publishes and stores the result; the stages must
			// not offer it a second time.
			p.inFlight = true
			// Semantic probe before executing: a wider cached entry that
			// contains this query re-filters in memory — zero mounts — and
			// the flight publishes (and cost permitting retains) the slice
			// under this query's own fingerprint.
			if res, cost, ok := e.probeSubsumption(p); ok {
				leader = res
				return res.Mat, cost, nil
			}
			res, err := p.run()
			if err != nil {
				return nil, 0, err
			}
			leader = res
			return res.Mat, recomputeCost(res), nil
		})
		if err == nil {
			break
		}
		// A rider that inherited the LEADER's cancellation while this
		// query is itself alive must not fail: the leader died of its own
		// context, not of the query. Re-resolve — ride whoever leads now,
		// or lead (and the lead's own errors, including this query's own
		// cancellation, return normally above).
		if out.Rider && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return nil, err
	}
	if leader != nil {
		return leader, nil
	}
	res, err := e.serveCached(mat, out)
	if err != nil {
		return nil, err
	}
	// The client's latency includes any wait on the ridden flight.
	res.Stats.Stage1Wall = time.Since(start)
	res.Stats.TotalWall = res.Stats.Stage1Wall
	return res, nil
}

// probeResultCache is the pipeline's probe stage: a current-epoch entry
// for the prepared fingerprint short-circuits both execution stages. On
// an exact miss the semantic index is probed next — a wider entry whose
// predicate contains this query's answers it by an in-memory re-filter.
func (e *Engine) probeResultCache(p *Prepared) (*Result, bool) {
	if e.results == nil || p.inFlight {
		return nil, false
	}
	if mat, ok := e.results.Get(p.Fingerprint); ok {
		res, err := e.serveCached(mat, resultcache.Outcome{Hit: true})
		if err != nil {
			return nil, false
		}
		return res, true
	}
	res, cost, ok := e.probeSubsumption(p)
	if !ok {
		return nil, false
	}
	// Retain the slice under the narrow query's own fingerprint so its
	// next repetition is an exact O(1) hit — cost-gated, and declined
	// outright when the re-filter trimmed nothing (the slice would only
	// duplicate its source entry).
	if cost != resultcache.DoNotStore {
		e.results.PutAt(p.Fingerprint, p.session, res.Mat, cost, p.startEpoch, p.sub)
	}
	return res, true
}

// probeSubsumption probes the result cache's semantic index and, on a
// hit, re-filters the wider frozen entry through the executor's
// share-based result-scan path: zero file mounts, O(1) copies for
// batches the re-filter passes whole. It returns the served result and
// the cost signal for retaining the slice as its own entry —
// resultcache.DoNotStore when the re-filter removed nothing.
func (e *Engine) probeSubsumption(p *Prepared) (*Result, time.Duration, bool) {
	if e.results == nil || p.sub == nil {
		return nil, 0, false
	}
	hit, ok := e.results.GetSubsuming(p.Fingerprint, p.sub)
	if !ok {
		return nil, 0, false
	}
	start := time.Now()
	env := e.newExecEnv(nil, nil)
	served, err := exec.ServeSubsumedResult(hit.Mat, p.sub.Refilter, hit.Bytes, env)
	if err != nil {
		return nil, 0, false
	}
	wall := time.Since(start)
	e.results.NoteRefilter(wall, hit.Bytes)
	st := Stats{
		ServedFromResultCache: true,
		ServedBySubsumption:   true,
		SubsumedFrom:          hit.Fp,
		RefilterWall:          wall,
		Mounts:                env.MountsSnapshot(),
	}
	st.Stage1Wall = wall
	st.TotalWall = wall
	res := &Result{Columns: columnNames(served.Schema), Mat: served, Stats: st}
	// The slice inherits the wider entry's recompute-cost signal — a
	// narrow re-execution would mount the same files — unless it is the
	// whole entry, which is already stored under the wider fingerprint.
	cost := hit.Cost
	var servedBytes int64
	for _, b := range served.Batches {
		servedBytes += b.Bytes()
	}
	if servedBytes >= hit.Bytes {
		cost = resultcache.DoNotStore
	}
	return res, cost, true
}

// serveCached turns a frozen cache entry (or flight result) into a
// client result through the executor's share-based result-scan path,
// attributing the serve to the query's result-cache statistics. Callers
// on a longer path (a flight ridden inside Query) overwrite the wall
// times with their full elapsed time.
func (e *Engine) serveCached(mat *exec.Materialized, out resultcache.Outcome) (*Result, error) {
	start := time.Now()
	env := e.newExecEnv(nil, nil)
	served, err := exec.ServeCachedResult(mat, env)
	if err != nil {
		return nil, err
	}
	st := Stats{
		ServedFromResultCache: true,
		CoalescedRider:        out.Rider,
		Mounts:                env.MountsSnapshot(),
	}
	st.Stage1Wall = time.Since(start)
	st.TotalWall = st.Stage1Wall
	return &Result{Columns: columnNames(served.Schema), Mat: served, Stats: st}, nil
}

// offerToResultCache retains a completed result under the query's
// fingerprint. Partial (stopped-early) results and results already
// served from the cache are never offered; a query running under a
// single-flight leader leaves storing to the flight; and an execution
// that straddled an invalidation (the epoch moved past the one Stage1
// observed) is rejected by PutAt — it may reflect pre-change data.
func (e *Engine) offerToResultCache(p *Prepared, res *Result) {
	if e.results == nil || p.inFlight || p.Fingerprint.IsZero() ||
		res.Stats.StoppedEarly || res.Stats.ServedFromResultCache {
		return
	}
	e.results.PutAt(p.Fingerprint, p.session, res.Mat, recomputeCost(res), p.startEpoch, p.sub)
}

// recomputeCost is the admission signal: what it would cost to compute
// this result again. The breakpoint's cardinality-derived estimate
// (files, records and bytes of interest from metadata) and the measured
// modeled time bound it from two sides; the larger wins.
func recomputeCost(res *Result) time.Duration {
	cost := res.Stats.Modeled()
	if est := res.Stats.Estimate.EstCost; est > cost {
		cost = est
	}
	return cost
}
