package core

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/vector"
)

// This file implements the paper's §5 extension: "Ideally, we can even
// go for a 'multi-stage query execution' paradigm where the system ...
// tries to ingest in more than one place during execution.
// Consequently, we can allow more interactivity, which goes towards the
// user having full control over his query's destiny, even after the
// query leaves him and comes to the database."
//
// ProceedIncremental splits the second stage itself into ingestion
// rounds: the files of interest are mounted in batches, and after every
// batch the explorer sees the running partial answer and may stop —
// keeping what has been computed so far. It applies to global-aggregate
// queries (the shape of the paper's exploration aggregates); other
// plans execute in one piece with a single progress callback.

// Partial is the progressive answer surfaced after each ingestion round.
type Partial struct {
	// FilesProcessed / FilesTotal track ingestion progress.
	FilesProcessed int
	FilesTotal     int
	// Values are the current aggregate results, in output-column order,
	// computed over everything mounted so far.
	Values []vector.Value
	// Columns names the values.
	Columns []string
	// Elapsed is wall+modeled time since Proceed began.
	Elapsed time.Duration
}

// ErrStopped is reported via Result.Stats when the explorer stops a
// multi-stage execution early; the partial answer is still returned.
// (Stopping is not an error — the paper's whole point is that a partial,
// early answer can be worth more than a complete, late one.)

// ProceedIncremental runs the second stage in ingestion rounds of
// batchFiles files, invoking observe after each round. If observe
// returns false the execution stops and the partial aggregate over the
// files ingested so far is returned; Stats.StoppedEarly marks the
// result. A batchFiles <= 0 defaults to 1.
func (b *Breakpoint) ProceedIncremental(batchFiles int, observe func(Partial) bool) (*Result, error) {
	if b.final != nil {
		return b.final, nil
	}
	if batchFiles <= 0 {
		batchFiles = 1
	}
	e := b.pq.eng
	start := time.Now()
	ioStart := e.clock.Elapsed()

	root := b.pq.Root
	if b.pq.HasStages {
		root = b.pq.Dec.Qs
	}
	actual := b.pq.actuals[0]
	rewritten := plan.ApplyRule1(root, actual.Binding, e.adapter.Name(), b.files)
	rewritten = b.orderStage2Joins(rewritten)
	resolved, err := plan.Resolve(rewritten)
	if err != nil {
		return nil, err
	}
	proj, agg, union := matchGlobalAggOverUnion(resolved)
	env := e.newExecEnv(b.pq, b)

	elapsed := func() time.Duration {
		return time.Since(start) + e.clock.Elapsed() - ioStart
	}

	if agg == nil || union == nil {
		// Not a global aggregate: single round, one final callback.
		mat, err := exec.Run(resolved, env)
		if err != nil {
			return nil, err
		}
		res := b.assembleResult(mat, env, start, ioStart, false)
		if observe != nil {
			observe(Partial{
				FilesProcessed: len(b.files), FilesTotal: len(b.files),
				Columns: res.Columns, Elapsed: elapsed(),
			})
		}
		return res, nil
	}

	states := make([]exec.AggState, len(agg.Aggs))
	for i, spec := range agg.Aggs {
		states[i] = exec.NewAggState(spec)
	}
	outSchema := resolved.Schema()
	stopped := false

	snapshot := func(processed int) Partial {
		row := b.finalizeStates(agg, proj, states)
		p := Partial{
			FilesProcessed: processed,
			FilesTotal:     len(union.Inputs),
			Columns:        columnNames(outSchema),
			Elapsed:        elapsed(),
		}
		for i := 0; i < row.NumCols(); i++ {
			p.Values = append(p.Values, row.Cols[i].Get(0))
		}
		return p
	}

	for lo := 0; lo < len(union.Inputs); lo += batchFiles {
		hi := lo + batchFiles
		if hi > len(union.Inputs) {
			hi = len(union.Inputs)
		}
		chunk := &plan.UnionAll{Inputs: union.Inputs[lo:hi], Cols: union.Schema()}
		childPlan := plan.ReplaceNode(agg.Child, union, chunk)
		mat, err := exec.Run(childPlan, env)
		if err != nil {
			return nil, err
		}
		if err := accumulate(agg, states, mat); err != nil {
			return nil, err
		}
		if observe != nil && !observe(snapshot(hi)) {
			stopped = true
			break
		}
	}

	row := b.finalizeStates(agg, proj, states)
	mat := &exec.Materialized{Schema: outSchema, Batches: []*vector.Batch{row}}
	return b.assembleResult(mat, env, start, ioStart, stopped), nil
}

// accumulate feeds a materialized child result into the aggregate states.
func accumulate(agg *plan.Aggregate, states []exec.AggState, mat *exec.Materialized) error {
	for _, batch := range mat.Batches {
		n := batch.Len()
		for i, spec := range agg.Aggs {
			if spec.Arg == nil {
				for r := 0; r < n; r++ {
					states[i].AddCount()
				}
				continue
			}
			v, err := spec.Arg.Eval(batch)
			if err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				states[i].Add(v.Get(r))
			}
		}
	}
	return nil
}

// finalizeStates renders the current aggregate states through the
// optional projection into a single output row.
func (b *Breakpoint) finalizeStates(agg *plan.Aggregate, proj *plan.Project, states []exec.AggState) *vector.Batch {
	aggSchema := agg.Schema()
	cols := make([]*vector.Vector, len(aggSchema))
	for i, ci := range aggSchema {
		cols[i] = vector.New(ci.Kind, 1)
	}
	for i, st := range states {
		v := st.Result()
		want := aggSchema[i].Kind
		switch {
		case v.Kind == want:
		case want == vector.KindFloat64:
			v = vector.Float64(v.AsFloat())
		case want == vector.KindInt64:
			v = vector.Int64(v.AsInt())
		case want == vector.KindTime:
			v = vector.Time(v.AsInt())
		}
		cols[i].AppendValue(v)
	}
	row := vector.NewBatch(cols...)
	if proj == nil {
		return row
	}
	outCols := make([]*vector.Vector, len(proj.Exprs))
	for i, ex := range proj.Exprs {
		v, err := ex.Eval(row)
		if err != nil {
			// Projections over aggregate outputs are simple column
			// references resolved at optimization time; failure here is an
			// engine invariant violation.
			panic(fmt.Sprintf("core: finalize projection: %v", err))
		}
		outCols[i] = v
	}
	return vector.NewBatch(outCols...)
}

// assembleResult builds the Result with stage-two statistics.
func (b *Breakpoint) assembleResult(mat *exec.Materialized, env *exec.Env, start time.Time, ioStart time.Duration, stopped bool) *Result {
	e := b.pq.eng
	st := Stats{
		Stage1Wall:      b.stage1Wall,
		Stage1IO:        b.stage1IO,
		Stage2Wall:      time.Since(start),
		Stage2IO:        e.clock.Elapsed() - ioStart,
		FilesOfInterest: len(b.files),
		Mounts:          b.stage2Mounts(env),
		Estimate:        b.Est,
		Strategy:        e.opts.Strategy,
		StoppedEarly:    stopped,
	}
	st.TotalWall = st.Stage1Wall + st.Stage2Wall
	st.TotalIO = st.Stage1IO + st.Stage2IO
	res := &Result{Columns: columnNames(mat.Schema), Mat: mat, Stats: st}
	// A completed multi-stage run is as cacheable as a one-shot one; a
	// stopped-early partial never is (offerToResultCache checks).
	e.offerToResultCache(b.pq, res)
	return res
}
