package resultcache

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/vector"
)

func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range ents {
		if ok, _ := filepath.Match("result-*.spill", de.Name()); ok {
			n++
		}
	}
	return n
}

// TestDemoteInsteadOfEvict: with a spill directory configured, byte
// pressure demotes the LRU entry to disk instead of dropping it, and a
// later probe for it promotes it back — serving the original rows with
// zero re-executions.
func TestDemoteInsteadOfEvict(t *testing.T) {
	dir := t.TempDir()
	per := matBytes(mat(1, 2, 3))
	c := New(Config{MaxBytes: per, SpillDir: dir})
	if !c.Put(fp("old"), "", mat(1, 2, 3), time.Second) {
		t.Fatal("first store rejected")
	}
	if !c.Put(fp("new"), "", mat(4, 5, 6), time.Second) {
		t.Fatal("second store rejected")
	}
	st := c.Stats()
	if st.Demotions != 1 || st.Evictions != 0 {
		t.Fatalf("stats after pressure = %+v, want one demotion and no evictions", st)
	}
	if st.Entries != 1 || st.DiskEntries != 1 || st.BytesOnDisk != per {
		t.Fatalf("occupancy = %+v", st)
	}
	if countSpillFiles(t, dir) != 1 {
		t.Fatal("demotion left no spill file")
	}

	got, ok := c.Get(fp("old"))
	if !ok || got.Rows() != 3 {
		t.Fatalf("demoted entry not served: %v %v", got, ok)
	}
	if got.Batches[0].Cols[0].Int64s()[0] != 1 {
		t.Fatal("promoted entry has wrong content")
	}
	st = c.Stats()
	if st.Promotions != 1 {
		t.Fatalf("stats after promotion = %+v", st)
	}
	// Promotion re-applied byte pressure: "new" was demoted in turn, and
	// the promoted file is gone.
	if st.Entries != 1 || st.DiskEntries != 1 {
		t.Fatalf("occupancy after promotion = %+v", st)
	}
	if countSpillFiles(t, dir) != 1 {
		t.Fatal("promoted entry's spill file was not removed")
	}
}

// TestDiskTierHasItsOwnLRU: the disk tier's byte budget drops the
// oldest demotion for real (counted as DiskEvictions), and like the
// resident tier a single over-budget entry may remain alone.
func TestDiskTierHasItsOwnLRU(t *testing.T) {
	dir := t.TempDir()
	per := matBytes(mat(1, 2, 3))
	c := New(Config{MaxBytes: per, SpillDir: dir, DiskMaxBytes: per})
	c.Put(fp("a"), "", mat(1, 2, 3), time.Second)
	c.Put(fp("b"), "", mat(4, 5, 6), time.Second) // demotes a
	c.Put(fp("c"), "", mat(7, 8, 9), time.Second) // demotes b, disk-evicts a
	st := c.Stats()
	if st.Demotions != 2 || st.DiskEvictions != 1 || st.DiskEntries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := c.Get(fp("a")); ok {
		t.Fatal("disk-evicted entry still served")
	}
	if got, ok := c.Get(fp("b")); !ok || got.Rows() != 3 {
		t.Fatal("surviving spilled entry lost")
	}
	if countSpillFiles(t, dir) > 1 {
		t.Fatal("disk eviction leaked a spill file")
	}
}

// TestBumpEpochClearsDiskTier: invalidation drops spilled entries and
// their files — pre-change results must not warm a later process.
func TestBumpEpochClearsDiskTier(t *testing.T) {
	dir := t.TempDir()
	per := matBytes(mat(1, 2, 3))
	c := New(Config{MaxBytes: per, SpillDir: dir})
	c.Put(fp("a"), "", mat(1, 2, 3), time.Second)
	c.Put(fp("b"), "", mat(4, 5, 6), time.Second)
	c.BumpEpoch()
	st := c.Stats()
	if st.Entries != 0 || st.DiskEntries != 0 || st.BytesOnDisk != 0 {
		t.Fatalf("occupancy after bump = %+v", st)
	}
	if st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", st.Invalidations)
	}
	if countSpillFiles(t, dir) != 0 {
		t.Fatal("epoch bump left spill files behind")
	}
}

// TestCloseReopenWarmsCache is the restart contract: Close persists
// every entry plus the manifest; a new cache over the same directory
// serves the same fingerprints — including semantic subsumption probes
// — without any execution, at the preserved epoch.
func TestCloseReopenWarmsCache(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{SpillDir: dir})
	c.BumpEpoch() // a non-zero epoch must survive the restart
	sub := subInfo("bucket", 0, 100)
	if !c.PutAt(fp("plain"), "s1", mat(1, 2, 3), time.Second, c.Epoch(), nil) {
		t.Fatal("store rejected")
	}
	if !c.PutAt(fp("wide"), "s2", mat(4, 5, 6, 7), 2*time.Second, c.Epoch(), sub) {
		t.Fatal("indexed store rejected")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := New(Config{SpillDir: dir})
	st := c2.Stats()
	if st.WarmedFromDisk != 2 || st.DiskEntries != 2 || st.Epoch != 1 {
		t.Fatalf("reopened stats = %+v", st)
	}
	got, ok := c2.Get(fp("plain"))
	if !ok || got.Rows() != 3 || got.Batches[0].Cols[0].Int64s()[2] != 3 {
		t.Fatalf("warmed entry not served: %v %v", got, ok)
	}
	hit, ok := c2.GetSubsuming(fp("narrow"), subInfo("bucket", 10, 20))
	if !ok || hit.Fp != fp("wide") || hit.Mat.Rows() != 4 || hit.Cost != 2*time.Second {
		t.Fatalf("warmed subsumption probe = %+v ok=%v", hit, ok)
	}
	// Served shares stay copy-on-write isolated, as with resident entries.
	served, err := exec.ServeCachedResult(got, &exec.Env{Mounts: &exec.MountStats{}})
	if err != nil {
		t.Fatal(err)
	}
	served.Batches[0].Cols[0].Set(0, vector.Int64(99))
	again, _ := c2.Get(fp("plain"))
	if again.Batches[0].Cols[0].Int64s()[0] != 1 {
		t.Fatal("mutation through a served share reached the cache copy")
	}
}

// TestReopenIgnoresCorruptState: a truncated spill file, a garbage
// manifest, and unreferenced leftovers must never fail the open — the
// cache degrades to cold (or partially cold) and sweeps the junk.
func TestReopenIgnoresCorruptState(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{SpillDir: dir})
	c.Put(fp("a"), "", mat(1, 2, 3), time.Second)
	c.Put(fp("b"), "", mat(4, 5, 6), time.Second)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate one entry's file: it warms but the first probe drops it.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if ok, _ := filepath.Match("result-*.spill", de.Name()); ok {
			p := filepath.Join(dir, de.Name())
			if err := os.Truncate(p, 10); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	c2 := New(Config{SpillDir: dir})
	okA, okB := 0, 0
	if m, ok := c2.Get(fp("a")); ok && m.Rows() == 3 {
		okA = 1
	}
	if m, ok := c2.Get(fp("b")); ok && m.Rows() == 3 {
		okB = 1
	}
	if okA+okB != 1 {
		t.Fatalf("exactly one entry should survive the truncation, got a=%d b=%d", okA, okB)
	}

	// Garbage manifest: cold start, stray spill files swept.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "result-stray.spill"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := New(Config{SpillDir: dir2})
	if st := c3.Stats(); st.WarmedFromDisk != 0 || st.DiskEntries != 0 {
		t.Fatalf("corrupt manifest warmed entries: %+v", st)
	}
	if countSpillFiles(t, dir2) != 0 {
		t.Fatal("unreferenced spill file not swept")
	}
	// And the cache still works after the cold start.
	if !c3.Put(fp("fresh"), "", mat(9), time.Second) {
		t.Fatal("cache unusable after corrupt reopen")
	}
}

// TestWarmedEntriesKeepKinds: every vector kind round-trips through a
// restart, not just int64 results.
func TestWarmedEntriesKeepKinds(t *testing.T) {
	dir := t.TempDir()
	m := &exec.Materialized{
		Schema: []plan.ColInfo{
			{Name: "s", Kind: vector.KindString},
			{Name: "f", Kind: vector.KindFloat64},
			{Name: "b", Kind: vector.KindBool},
			{Name: "t", Kind: vector.KindTime},
		},
		Batches: []*vector.Batch{vector.NewBatch(
			vector.FromString([]string{"x", "y"}),
			vector.FromFloat64([]float64{1.5, -2.5}),
			vector.FromBool([]bool{true, false}),
			vector.FromTime([]int64{100, 200}),
		)},
	}
	c := New(Config{SpillDir: dir})
	if !c.Put(fp("mixed"), "", m, time.Second) {
		t.Fatal("store rejected")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := New(Config{SpillDir: dir})
	got, ok := c2.Get(fp("mixed"))
	if !ok || got.Rows() != 2 {
		t.Fatalf("mixed-kind entry lost: %v %v", got, ok)
	}
	b := got.Batches[0]
	if b.Cols[0].Strings()[1] != "y" || b.Cols[1].Float64s()[1] != -2.5 ||
		b.Cols[2].Bools()[0] != true || b.Cols[3].Kind() != vector.KindTime {
		t.Fatalf("warmed content mismatch: %v", b)
	}
	if got.Schema[0].Name != "s" || got.Schema[3].Kind != vector.KindTime {
		t.Fatalf("warmed schema mismatch: %+v", got.Schema)
	}
}
