// Package resultcache is the engine-wide result cache sitting above the
// mount service: where the mount service dedups the *extraction* of one
// file across concurrent queries, the result cache dedups the *entire
// execution* of one query across clients and across time. Entries are
// final materialized results, stored frozen and served as O(1)
// copy-on-write shares (vector.Batch.Share), keyed by the canonical plan
// fingerprint plus an invalidation epoch:
//
//   - Fingerprint keying: the plan layer normalizes semantically
//     equivalent spellings (reordered conjuncts, swapped join sides,
//     aliases, foldable constants) onto one plan.Fingerprint, so a zoom
//     session re-issuing the same query in different shapes keeps
//     hitting one entry.
//   - Invalidation epochs: every entry is stamped with the epoch current
//     at store time, and only current-epoch entries are served. A repo or
//     ingestion-cache change bumps the epoch (the engine wires the hook),
//     atomically invalidating every retained result. An execution that
//     straddles the bump publishes to the riders that joined it before
//     the bump but is not retained — and a query arriving after the bump
//     neither serves stale entries nor rides stale flights: it has
//     observed "the data changed" and re-executes.
//   - Query-granular single-flight: concurrent identical queries
//     coalesce onto one execution, mirroring the mount service's flights
//     one layer up — the leader executes, riders block and then receive
//     shares of the frozen result, paying O(1) instead of a full Qf+Qs
//     execution each.
//   - Byte-budget LRU, per-session-aware: resident results are
//     accounted with Batch.Bytes through the engine's shared admission
//     abstraction (internal/admission, the same gate type behind the
//     mount budget), tagged with the storing session. Under pressure a
//     session holding more than its share evicts its own
//     least-recently-served entries first — a fat dashboard's results
//     push out that dashboard's older results, not everyone else's —
//     falling back to global LRU otherwise.
//   - Cost-gated admission: a result whose recompute cost signal (the
//     engine passes the breakpoint's cardinality-derived estimate or the
//     measured modeled time, whichever is larger) falls below the
//     configured floor is served to its riders but not retained — cheap
//     metadata lookups never crowd out expensive multi-file scans.
//   - Subsumption index: entries whose plans carry a subsumption summary
//     (plan.SubsumptionInfo) are additionally indexed by their
//     plan.SubsumptionKey — the bucket of structurally identical plans
//     differing only in re-filterable interval constants. On an exact
//     fingerprint miss, GetSubsuming probes the narrow query's bucket for
//     a current-epoch entry whose intervals contain the query's; the
//     engine re-filters that wider frozen entry in memory instead of
//     mounting files (the classic semantic-caching move).
//
// All methods are nil-safe: a nil *Cache never caches and never
// coalesces, so the engine threads it through unconditionally.
package resultcache

import (
	"container/list"
	"errors"
	"os"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes bounds resident result bytes; <= 0 means unlimited.
	MaxBytes int64
	// MinCost gates admission: results whose recompute-cost signal is
	// below it are not retained (riders of an in-flight execution are
	// still served). Zero admits everything.
	MinCost time.Duration
	// MaxSessionShare caps one session's resident result bytes as a
	// fraction of MaxBytes; a session over its share evicts its own
	// oldest entries first. <= 0 disables the per-session preference
	// (eviction is plain global LRU).
	MaxSessionShare float64
	// SpillDir enables the disk tier (see spill.go): cold entries are
	// demoted to spill files here instead of evicted, and the directory
	// doubles as the restart-persistence store. Empty disables the tier.
	SpillDir string
	// DiskMaxBytes bounds the disk tier; <= 0 means unlimited.
	DiskMaxBytes int64
	// Disk and Clock charge demotion writes and promotion reads to the
	// engine's modeled I/O accounting. The zero-value Disk charges
	// nothing.
	Disk  storage.DiskModel
	Clock *storage.Clock
}

// Stats is a snapshot of cache counters.
type Stats struct {
	// Hits counts probes served from a stored entry; Riders counts
	// queries that coalesced onto another client's in-flight execution.
	Hits, Misses, Riders int64
	// Stores / RejectedStores split completed executions into retained
	// and admission-rejected (cost floor or epoch raced) ones.
	Stores, RejectedStores int64
	// Evictions counts LRU budget evictions; SelfEvictions the subset
	// where an over-share session's own entry was taken instead of the
	// global LRU victim; Invalidations counts entries dropped by epoch
	// bumps.
	Evictions, SelfEvictions, Invalidations int64
	// Subsumption counters: probes of the secondary index on exact miss,
	// hits served by re-filtering a wider entry, the bytes of wider
	// entries served that way instead of re-executed and re-mounted, and
	// the cumulative wall time the engine spent re-filtering.
	SubsumptionProbes, SubsumptionHits int64
	SubsumptionBytesSaved              int64
	RefilterWall                       time.Duration
	// Disk-tier counters: entries demoted to spill files instead of
	// evicted, spilled entries promoted back on a hit, entries dropped by
	// the disk tier's own LRU, and entries warmed from a previous
	// process's manifest at open.
	Demotions, Promotions, DiskEvictions, WarmedFromDisk int64
	// BytesResident / Entries describe current occupancy; BytesOnDisk /
	// DiskEntries the disk tier's; Epoch is the current invalidation
	// epoch.
	BytesResident int64
	Entries       int
	BytesOnDisk   int64
	DiskEntries   int
	Epoch         uint64
	// PerSession breaks resident bytes and stores down by the session
	// that stored each entry (see admission.SessionStats; Acquires
	// counts stores, HeldBytes the session's resident bytes).
	PerSession map[string]admission.SessionStats
}

// Outcome reports how a Do call was satisfied.
type Outcome struct {
	// Hit: served from the cache (stored entry, or a flight ridden).
	Hit bool
	// Rider: the call coalesced onto another client's in-flight
	// execution. Set on error returns too, so a caller can tell an
	// inherited failure (the LEADER died — e.g. of its own context)
	// from its own and re-resolve instead of failing a live query.
	Rider bool
	// Stored: this call led the execution and the result was retained.
	Stored bool
}

// Cache is the result cache. It is safe for concurrent use.
type Cache struct {
	cfg Config

	// gate is the shared admission abstraction carrying the byte budget:
	// entries are charged to their storing session (Charge — stores are
	// never blocked; the budget drives eviction instead) and released on
	// evict/invalidate, so per-session occupancy steers the evictor.
	gate *admission.Gate

	mu      sync.Mutex
	epoch   uint64
	entries map[plan.Fingerprint]*list.Element
	order   *list.List // front = most recently served
	flights map[plan.Fingerprint]*flight
	bytes   int64

	// Disk tier (spill.go): spilled entries keep their c.entries slot but
	// their element lives in diskOrder (front = most recently demoted)
	// and their bytes count against diskBytes, not bytes or the gate.
	diskOrder *list.List
	diskBytes int64

	// subindex is the secondary semantic index: subsumption bucket →
	// fingerprints of resident entries carrying that key. Only entries
	// stored with a non-nil summary appear.
	subindex map[plan.SubsumptionKey]map[plan.Fingerprint]struct{}

	hits, misses, riders     int64
	stores, rejected         int64
	evictions, selfEvictions int64
	invalidated              int64

	subProbes, subHits int64
	subBytesSaved      int64
	refilterWall       time.Duration

	demotions, promotions, diskEvictions, warmed int64
}

type entry struct {
	fp      plan.Fingerprint
	session string
	mat     *exec.Materialized // nil while spilled to disk
	bytes   int64
	epoch   uint64
	cost    time.Duration         // recompute-cost signal it was admitted with
	sub     *plan.SubsumptionInfo // nil: not semantically indexed
	path    string                // spill file; non-empty marks the entry spilled
	schema  []plan.ColInfo        // result schema, kept for promotion
}

// flight is one in-progress execution other identical queries wait on.
// epoch is the invalidation epoch the execution began under: a query
// arriving after a bump must not ride a pre-change flight.
type flight struct {
	done  chan struct{}
	mat   *exec.Materialized // frozen at publish
	err   error
	epoch uint64
}

// New returns a cache over the configuration. With a spill directory
// configured it is also the warm-restart path: a manifest left by a
// previous Close is loaded and its entries served from disk.
func New(cfg Config) *Cache {
	c := &Cache{
		cfg: cfg,
		gate: admission.New(admission.Config{
			BudgetBytes:     cfg.MaxBytes,
			MaxSessionShare: cfg.MaxSessionShare,
		}),
		entries:   make(map[plan.Fingerprint]*list.Element),
		order:     list.New(),
		flights:   make(map[plan.Fingerprint]*flight),
		subindex:  make(map[plan.SubsumptionKey]map[plan.Fingerprint]struct{}),
		diskOrder: list.New(),
	}
	if c.spillEnabled() {
		os.MkdirAll(cfg.SpillDir, 0o755)
		c.loadManifest()
	}
	return c
}

// Epoch returns the current invalidation epoch.
func (c *Cache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// BumpEpoch advances the invalidation epoch, dropping every stored
// entry: results computed before the bump are never served after it.
// In-flight executions keep serving their riders but will not be
// retained.
func (c *Cache) BumpEpoch() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.invalidated += int64(len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		c.gate.Release(e.session, e.bytes)
	}
	// The disk tier invalidates with everything else: pre-change results
	// must not survive to warm a post-change process either.
	for el := c.diskOrder.Front(); el != nil; el = el.Next() {
		os.Remove(el.Value.(*entry).path)
	}
	c.entries = make(map[plan.Fingerprint]*list.Element)
	c.order = list.New()
	c.diskOrder = list.New()
	c.subindex = make(map[plan.SubsumptionKey]map[plan.Fingerprint]struct{})
	c.bytes = 0
	c.diskBytes = 0
}

// Get returns the frozen entry for a fingerprint at the current epoch.
// The returned materialization is the cache's own (frozen) storage:
// serve it to a client through exec.ServeCachedResult, which emits
// copy-on-write shares.
func (c *Cache) Get(fp plan.Fingerprint) (*exec.Materialized, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockcheck spill promotion is serialized under c.mu by design: an entry's tier state must not change between probe and load (see spill.go)
	mat, ok := c.getLocked(fp)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return mat, ok
}

func (c *Cache) getLocked(fp plan.Fingerprint) (*exec.Materialized, bool) {
	el, ok := c.entries[fp]
	if !ok || el.Value.(*entry).epoch != c.epoch {
		return nil, false
	}
	if el.Value.(*entry).path != "" {
		// Spilled: a hit promotes the entry back to the resident tier (a
		// corrupt spill file drops it and the probe is a miss).
		return c.promoteLocked(el)
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).mat, true
}

// SubsumeHit describes a wider entry found by GetSubsuming: whose
// fingerprint it is stored under, the frozen materialization to
// re-filter, its resident bytes (the re-execution the probe saved) and
// the recompute-cost signal it was admitted with (the ceiling for
// admitting the re-filtered slice as its own entry).
type SubsumeHit struct {
	Fp    plan.Fingerprint
	Mat   *exec.Materialized
	Bytes int64
	Cost  time.Duration
}

// DoNotStore is the cost sentinel a Do leader (or PutAt caller) passes
// to decline retention outright — e.g. a subsumption-served slice that
// filtered nothing away, which would duplicate its source entry. Unlike
// a low cost it is not counted as an admission rejection.
const DoNotStore time.Duration = -1

// GetSubsuming probes the semantic index for a current-epoch entry able
// to answer the query summarized by sub: same subsumption bucket,
// intervals containing the query's. The smallest such entry wins (least
// re-filter work). The caller re-filters the returned frozen
// materialization through sub.Refilter. Misses and nil summaries are
// not counted against the exact-match hit/miss counters.
func (c *Cache) GetSubsuming(fp plan.Fingerprint, sub *plan.SubsumptionInfo) (SubsumeHit, bool) {
	if c == nil || sub == nil || sub.Key.IsZero() {
		return SubsumeHit{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subProbes++
	// A spilled candidate can lose to promotion (corrupt file) and drop
	// out; re-select until a candidate survives or none remain.
	for {
		var best *list.Element
		for cand := range c.subindex[sub.Key] {
			el, ok := c.entries[cand]
			if !ok {
				continue
			}
			e := el.Value.(*entry)
			if e.epoch != c.epoch || e.fp == fp || !plan.Subsumes(e.sub, sub) {
				continue
			}
			if best == nil || e.bytes < best.Value.(*entry).bytes {
				best = el
			}
		}
		if best == nil {
			return SubsumeHit{}, false
		}
		e := best.Value.(*entry)
		if e.path != "" {
			//lint:allow lockcheck spill promotion is serialized under c.mu by design: an entry's tier state must not change between probe and load (see spill.go)
			mat, ok := c.promoteLocked(best)
			if !ok {
				continue
			}
			c.subHits++
			return SubsumeHit{Fp: e.fp, Mat: mat, Bytes: e.bytes, Cost: e.cost}, true
		}
		c.order.MoveToFront(best)
		c.subHits++
		return SubsumeHit{Fp: e.fp, Mat: e.mat, Bytes: e.bytes, Cost: e.cost}, true
	}
}

// NoteRefilter accounts one subsumption serve: the wall time spent
// re-filtering and the bytes of re-execution it saved.
func (c *Cache) NoteRefilter(wall time.Duration, saved int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refilterWall += wall
	c.subBytesSaved += saved
}

// Put retains a completed result under the current epoch, subject to the
// cost-admission floor, charged to the storing session. The entry holds
// the materialization frozen: the caller keeps its handle and any later
// mutation on either side materializes a private copy. A non-nil sub
// additionally indexes the entry for semantic (subsumption) probes.
func (c *Cache) Put(fp plan.Fingerprint, session string, mat *exec.Materialized, cost time.Duration) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockcheck demotion-based eviction is serialized under c.mu by design: admission and spill share one byte ledger (see spill.go)
	return c.admitLocked(fp, session, mat, cost, c.epoch, nil)
}

// PutAt is Put with an epoch-straddle guard: startEpoch is the epoch the
// caller observed when the execution began, and a result computed across
// an invalidation (the epoch moved on) is rejected — it may reflect
// pre-change data.
func (c *Cache) PutAt(fp plan.Fingerprint, session string, mat *exec.Materialized, cost time.Duration, startEpoch uint64, sub *plan.SubsumptionInfo) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockcheck demotion-based eviction is serialized under c.mu by design: admission and spill share one byte ledger (see spill.go)
	return c.admitLocked(fp, session, mat, cost, startEpoch, sub)
}

// admitLocked applies the admission rules (cost floor, epoch match) and
// stores on success; callers hold the lock. A DoNotStore cost declines
// without counting as a rejection.
func (c *Cache) admitLocked(fp plan.Fingerprint, session string, mat *exec.Materialized, cost time.Duration, startEpoch uint64, sub *plan.SubsumptionInfo) bool {
	if mat == nil || cost == DoNotStore {
		return false
	}
	if startEpoch != c.epoch || cost < c.cfg.MinCost {
		c.rejected++
		return false
	}
	mat.Freeze()
	c.putLocked(fp, session, mat, c.epoch, cost, sub)
	c.stores++
	return true
}

func (c *Cache) putLocked(fp plan.Fingerprint, session string, mat *exec.Materialized, epoch uint64, cost time.Duration, sub *plan.SubsumptionInfo) {
	if el, ok := c.entries[fp]; ok {
		c.removeLocked(el)
	}
	e := &entry{fp: fp, session: session, mat: mat, bytes: matBytes(mat), epoch: epoch, cost: cost, sub: sub, schema: mat.Schema}
	c.entries[fp] = c.order.PushFront(e)
	c.bytes += e.bytes
	if sub != nil && !sub.Key.IsZero() {
		bucket := c.subindex[sub.Key]
		if bucket == nil {
			bucket = make(map[plan.Fingerprint]struct{})
			c.subindex[sub.Key] = bucket
		}
		bucket[fp] = struct{}{}
	}
	c.gate.Charge(session, e.bytes)
	c.evictLocked(session)
}

// removeLocked drops one entry — resident (bytes go back to the gate)
// or spilled (the spill file is deleted).
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	if e.path != "" {
		c.diskOrder.Remove(el)
		c.diskBytes -= e.bytes
		os.Remove(e.path)
	} else {
		c.order.Remove(el)
		c.bytes -= e.bytes
		c.gate.Release(e.session, e.bytes)
	}
	delete(c.entries, e.fp)
	if e.sub != nil {
		if bucket, ok := c.subindex[e.sub.Key]; ok {
			delete(bucket, e.fp)
			if len(bucket) == 0 {
				delete(c.subindex, e.sub.Key)
			}
		}
	}
}

// evictLocked enforces the byte budget after a store by `storing`;
// callers hold the lock. While the storing session holds more than its
// share, its own least-recently-served entry goes first — the session
// whose fat results created the pressure pays for it — then eviction
// falls back to global LRU. Like the ingestion cache, a single
// over-budget entry is allowed to remain alone. With the disk tier
// configured the victim is demoted to a spill file instead of dropped
// (falling back to a real eviction if the disk write fails).
func (c *Cache) evictLocked(storing string) {
	if c.cfg.MaxBytes <= 0 {
		return
	}
	for c.bytes > c.cfg.MaxBytes && c.order.Len() > 1 {
		victim := c.order.Back()
		if c.gate.OverShare(storing) {
			// The just-stored entry sits at the front; any older entry of
			// the over-share session is a better victim than another
			// session's.
			for el := c.order.Back(); el != nil && el != c.order.Front(); el = el.Prev() {
				if el.Value.(*entry).session == storing {
					victim = el
					c.selfEvictions++
					break
				}
			}
		}
		if c.spillEnabled() && c.demoteLocked(victim) {
			continue
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

// Do resolves a query through the cache with query-granular
// single-flight: a stored current-epoch entry is served immediately; an
// in-flight identical execution is ridden (block, then share its
// result); otherwise compute runs as the leader and its result is
// published to every rider and — cost and epoch permitting — retained,
// charged to the leader's session. compute returns the materialized
// result and its recompute-cost signal (DoNotStore declines retention).
// A non-nil sub semantically indexes the retained entry. A nil cache
// degenerates to calling compute.
func (c *Cache) Do(fp plan.Fingerprint, session string, sub *plan.SubsumptionInfo, compute func() (*exec.Materialized, time.Duration, error)) (*exec.Materialized, Outcome, error) {
	if c == nil {
		mat, _, err := compute()
		return mat, Outcome{}, err
	}
	c.mu.Lock()
	//lint:allow lockcheck spill promotion is serialized under c.mu by design: an entry's tier state must not change between probe and load (see spill.go)
	if mat, ok := c.getLocked(fp); ok {
		c.hits++
		c.mu.Unlock()
		return mat, Outcome{Hit: true}, nil
	}
	if f, ok := c.flights[fp]; ok && f.epoch == c.epoch {
		// Riding is a hit, not a miss: the work is not repeated. Only a
		// current-epoch flight qualifies — a query arriving after an
		// invalidation has observed "the data changed" and must
		// re-execute, not ride a pre-change execution (whose result the
		// store side will likewise reject).
		c.riders++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, Outcome{Rider: true}, f.err
		}
		return f.mat, Outcome{Hit: true, Rider: true}, nil
	}
	c.misses++
	f := &flight{done: make(chan struct{}), epoch: c.epoch}
	// Overwrites any stale-epoch flight: its leader still publishes to
	// its own (pre-bump) riders and removes only its own table entry.
	c.flights[fp] = f
	startEpoch := c.epoch
	c.mu.Unlock()

	// publish runs exactly once — on the normal path below, or from the
	// deferred recovery if compute panics: the flight must leave the
	// table and its riders must wake (with an error) either way, or every
	// later identical query would block forever on a dead flight.
	published := false
	publish := func(mat *exec.Materialized, cost time.Duration, err error) bool {
		published = true
		c.mu.Lock()
		// Remove only our own flight: a stale-epoch flight may have been
		// superseded in the table by a post-invalidation one.
		if c.flights[fp] == f {
			delete(c.flights, fp)
		}
		stored := false
		if err == nil {
			// Freeze before publishing: riders and the stored entry share
			// the leader's storage, and the first mutation through any
			// handle (including the leader's own) copies first.
			mat.Freeze()
			f.mat = mat
			//lint:allow lockcheck demotion-based eviction is serialized under c.mu by design: admission and spill share one byte ledger (see spill.go)
			stored = c.admitLocked(fp, session, mat, cost, startEpoch, sub)
		}
		f.err = err
		c.mu.Unlock()
		close(f.done)
		return stored
	}
	defer func() {
		if !published {
			publish(nil, 0, errLeaderAborted)
		}
	}()

	mat, cost, err := compute()
	stored := publish(mat, cost, err)
	if err != nil {
		return nil, Outcome{}, err
	}
	return mat, Outcome{Stored: stored}, nil
}

// errLeaderAborted is what riders see when the leading execution
// panicked out of Do instead of returning.
var errLeaderAborted = errors.New("resultcache: leading execution aborted")

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Riders: c.riders,
		Stores: c.stores, RejectedStores: c.rejected,
		Evictions: c.evictions, SelfEvictions: c.selfEvictions,
		Invalidations:     c.invalidated,
		SubsumptionProbes: c.subProbes, SubsumptionHits: c.subHits,
		SubsumptionBytesSaved: c.subBytesSaved, RefilterWall: c.refilterWall,
		Demotions: c.demotions, Promotions: c.promotions,
		DiskEvictions: c.diskEvictions, WarmedFromDisk: c.warmed,
		BytesResident: c.bytes, Entries: c.order.Len(),
		BytesOnDisk: c.diskBytes, DiskEntries: c.diskOrder.Len(),
		Epoch:      c.epoch,
		PerSession: c.gate.Stats().PerSession,
	}
}

// matBytes totals a materialization's resident size in the same unit the
// ingestion cache charges (vector.Batch.Bytes).
func matBytes(mat *exec.Materialized) int64 {
	var total int64
	for _, b := range mat.Batches {
		total += b.Bytes()
	}
	return total
}
