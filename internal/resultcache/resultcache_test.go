package resultcache

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/vector"
)

func fp(s string) plan.Fingerprint {
	return plan.Fingerprint(sha256.Sum256([]byte(s)))
}

func mat(vals ...int64) *exec.Materialized {
	return &exec.Materialized{
		Schema:  []plan.ColInfo{{Name: "v", Kind: vector.KindInt64}},
		Batches: []*vector.Batch{vector.NewBatch(vector.FromInt64(vals))},
	}
}

func TestGetPutAndEpoch(t *testing.T) {
	c := New(Config{})
	if _, ok := c.Get(fp("q1")); ok {
		t.Fatal("empty cache served a result")
	}
	if !c.Put(fp("q1"), "", mat(1, 2, 3), time.Second) {
		t.Fatal("Put rejected with no cost floor")
	}
	got, ok := c.Get(fp("q1"))
	if !ok || got.Rows() != 3 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	c.BumpEpoch()
	if _, ok := c.Get(fp("q1")); ok {
		t.Fatal("entry served after epoch bump")
	}
	st := c.Stats()
	if st.Epoch != 1 || st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats after bump = %+v", st)
	}
}

func TestCostAdmission(t *testing.T) {
	c := New(Config{MinCost: time.Second})
	if c.Put(fp("cheap"), "", mat(1), time.Millisecond) {
		t.Fatal("cheap result admitted below the cost floor")
	}
	if !c.Put(fp("dear"), "", mat(1), 2*time.Second) {
		t.Fatal("expensive result rejected")
	}
	if st := c.Stats(); st.RejectedStores != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestByteBudgetLRU(t *testing.T) {
	one := mat(1, 2, 3, 4)
	per := one.Batches[0].Bytes()
	c := New(Config{MaxBytes: 2 * per})
	c.Put(fp("a"), "", mat(1, 2, 3, 4), 0)
	c.Put(fp("b"), "", mat(5, 6, 7, 8), 0)
	// Touch a so b is the LRU victim.
	if _, ok := c.Get(fp("a")); !ok {
		t.Fatal("a missing")
	}
	c.Put(fp("c"), "", mat(9, 10, 11, 12), 0)
	if _, ok := c.Get(fp("b")); ok {
		t.Fatal("LRU kept the least recently served entry")
	}
	if _, ok := c.Get(fp("a")); !ok {
		t.Fatal("LRU evicted the recently served entry")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.BytesResident != 2*per {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOverShareSessionEvictsItsOwnEntriesFirst pins the per-session
// eviction preference: when a session holding more than its share
// stores another entry, the victim is that session's own oldest entry,
// not another session's globally-older one.
func TestOverShareSessionEvictsItsOwnEntriesFirst(t *testing.T) {
	per := mat(1, 2, 3, 4).Batches[0].Bytes()
	// Budget fits two entries; one session may hold at most half.
	c := New(Config{MaxBytes: 2 * per, MaxSessionShare: 0.5})
	c.Put(fp("other"), "frugal", mat(1, 2, 3, 4), 0)
	c.Put(fp("fat1"), "dashboard", mat(5, 6, 7, 8), 0)
	// dashboard's second store pushes it over its share AND the cache
	// over budget: its own fat1 must go, not frugal's globally-oldest
	// entry.
	c.Put(fp("fat2"), "dashboard", mat(9, 10, 11, 12), 0)
	if _, ok := c.Get(fp("other")); !ok {
		t.Fatal("the frugal session's entry paid for the dashboard's pressure")
	}
	if _, ok := c.Get(fp("fat1")); ok {
		t.Fatal("over-share session's own oldest entry survived")
	}
	if _, ok := c.Get(fp("fat2")); !ok {
		t.Fatal("just-stored entry evicted")
	}
	st := c.Stats()
	if st.SelfEvictions != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.PerSession["dashboard"].HeldBytes; got != per {
		t.Errorf("dashboard resident bytes = %d, want %d", got, per)
	}
	if got := st.PerSession["frugal"].HeldBytes; got != per {
		t.Errorf("frugal resident bytes = %d, want %d", got, per)
	}

	// Without the share cap the same sequence evicts plain LRU (the
	// frugal session's older entry).
	c2 := New(Config{MaxBytes: 2 * per})
	c2.Put(fp("other"), "frugal", mat(1, 2, 3, 4), 0)
	c2.Put(fp("fat1"), "dashboard", mat(5, 6, 7, 8), 0)
	c2.Put(fp("fat2"), "dashboard", mat(9, 10, 11, 12), 0)
	if _, ok := c2.Get(fp("other")); ok {
		t.Fatal("global LRU kept the oldest entry without a share cap")
	}
	if st := c2.Stats(); st.SelfEvictions != 0 {
		t.Fatalf("self-evictions without a share cap: %+v", st)
	}
}

// TestBumpEpochReleasesSessionBytes: invalidation must return every
// entry's bytes to its session, or quota pressure would outlive the
// entries it came from.
func TestBumpEpochReleasesSessionBytes(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, MaxSessionShare: 0.5})
	c.Put(fp("a"), "s1", mat(1, 2), 0)
	c.Put(fp("b"), "s2", mat(3, 4), 0)
	c.BumpEpoch()
	st := c.Stats()
	if st.BytesResident != 0 {
		t.Fatalf("resident bytes after bump = %d", st.BytesResident)
	}
	for name, s := range st.PerSession {
		if s.HeldBytes != 0 {
			t.Errorf("session %s still holds %d bytes after invalidation", name, s.HeldBytes)
		}
	}
}

// TestSingleFlightCoalesces pins the query-granular single-flight: K
// concurrent Do calls for one fingerprint run compute exactly once, and
// every rider receives the leader's result.
func TestSingleFlightCoalesces(t *testing.T) {
	c := New(Config{})
	const k = 16
	var executions atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*exec.Materialized, k)
	outs := make([]Outcome, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
				executions.Add(1)
				<-gate // hold the flight open until all riders queued
				return mat(42), time.Second, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i], outs[i] = m, out
		}(i)
	}
	// Wait until everyone is either the leader or riding its flight.
	for {
		c.mu.Lock()
		riders := c.riders
		c.mu.Unlock()
		if riders == k-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	var stored, ridden int
	for i := 0; i < k; i++ {
		if results[i].Rows() != 1 || results[i].Batches[0].Cols[0].Int64s()[0] != 42 {
			t.Fatalf("client %d got wrong result", i)
		}
		if outs[i].Stored {
			stored++
		}
		if outs[i].Rider {
			ridden++
		}
	}
	if stored != 1 || ridden != k-1 {
		t.Fatalf("stored=%d ridden=%d, want 1/%d", stored, ridden, k-1)
	}
	// The stored entry now serves directly.
	m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		t.Fatal("stored entry recomputed")
		return nil, 0, nil
	})
	if err != nil || !out.Hit || out.Rider || m.Rows() != 1 {
		t.Fatalf("post-flight Do = %v, %+v, %v", m, out, err)
	}
}

// TestFlightErrorPropagates pins that a failed leader reports the error
// to every rider and leaves nothing cached.
func TestFlightErrorPropagates(t *testing.T) {
	c := New(Config{})
	boom := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
				<-gate
				return nil, 0, boom
			})
		}(i)
	}
	for {
		c.mu.Lock()
		riders := c.riders
		c.mu.Unlock()
		if riders == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("client %d error = %v, want boom", i, err)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed execution left an entry: %+v", st)
	}
}

// TestEpochRaceSkipsStore pins that an execution straddling an epoch
// bump serves its result but does not retain it.
func TestEpochRaceSkipsStore(t *testing.T) {
	c := New(Config{})
	m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		c.BumpEpoch() // the data changed mid-execution
		return mat(1), time.Second, nil
	})
	if err != nil || m.Rows() != 1 {
		t.Fatalf("Do = %v, %v", m, err)
	}
	if out.Stored {
		t.Fatal("stale-epoch result was retained")
	}
	if _, ok := c.Get(fp("q")); ok {
		t.Fatal("stale-epoch result is being served")
	}
}

// TestNilCacheIsTransparent pins the nil-safety contract.
func TestNilCacheIsTransparent(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(fp("q")); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(fp("q"), "", mat(1), 0)
	c.BumpEpoch()
	m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		return mat(7), 0, nil
	})
	if err != nil || out.Hit || m.Rows() != 1 {
		t.Fatalf("nil Do = %v, %+v, %v", m, out, err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Stores != 0 || st.BytesResident != 0 {
		t.Fatalf("nil Stats = %+v", st)
	}
}

// TestServedSharesAreIsolated pins the CoW contract end to end: a served
// share can be mutated without corrupting the entry.
func TestServedSharesAreIsolated(t *testing.T) {
	c := New(Config{})
	c.Put(fp("q"), "", mat(1, 2, 3), 0)
	got, _ := c.Get(fp("q"))
	served, err := exec.ServeCachedResult(got, &exec.Env{Mounts: &exec.MountStats{}})
	if err != nil {
		t.Fatal(err)
	}
	served.Batches[0].Cols[0].Set(0, vector.Int64(99))
	again, _ := c.Get(fp("q"))
	if v := again.Batches[0].Cols[0].Int64s()[0]; v != 1 {
		t.Fatalf("cache entry corrupted through a served share: %d", v)
	}
}

// TestConcurrentMixedWorkload hammers the cache from many goroutines
// with overlapping fingerprints, stores, probes and epoch bumps; run
// under -race it pins the locking discipline.
func TestConcurrentMixedWorkload(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fp(fmt.Sprintf("q%d", i%5))
				switch i % 4 {
				case 0:
					c.Do(key, "", nil, func() (*exec.Materialized, time.Duration, error) {
						return mat(int64(i)), time.Duration(i), nil
					})
				case 1:
					if m, ok := c.Get(key); ok && m.Rows() != 1 {
						t.Error("malformed entry")
						return
					}
				case 2:
					c.Put(key, "", mat(int64(g)), time.Duration(i))
				default:
					if i%40 == 3 {
						c.BumpEpoch()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPutAtEpochGuard pins the interactive path's straddle guard: a
// result whose execution began before an invalidation is rejected.
func TestPutAtEpochGuard(t *testing.T) {
	c := New(Config{})
	startEpoch := c.Epoch()
	c.BumpEpoch() // the data changed while the query executed
	if c.PutAt(fp("q"), "", mat(1), time.Second, startEpoch, nil) {
		t.Fatal("stale-epoch result retained through PutAt")
	}
	if _, ok := c.Get(fp("q")); ok {
		t.Fatal("stale-epoch result served")
	}
	if !c.PutAt(fp("q"), "", mat(1), time.Second, c.Epoch(), nil) {
		t.Fatal("current-epoch PutAt rejected")
	}
}

// TestRiderOutcomeMarkedOnLeaderError pins the inherited-failure
// contract: a rider failed by its leader's error sees Outcome.Rider, so
// a live caller (the engine's QueryAs) can tell the failure was not its
// own and re-resolve — e.g. when the leader died of its own context
// cancellation.
func TestRiderOutcomeMarkedOnLeaderError(t *testing.T) {
	c := New(Config{})
	gate := make(chan struct{})
	type riderResult struct {
		out Outcome
		err error
	}
	got := make(chan riderResult, 1)
	go func() {
		c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
			<-gate
			return nil, 0, context.Canceled // the leader's own ctx died
		})
	}()
	go func() {
		for {
			c.mu.Lock()
			started := len(c.flights) == 1
			c.mu.Unlock()
			if started {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
			t.Error("rider recomputed instead of riding")
			return nil, 0, nil
		})
		got <- riderResult{out, err}
	}()
	for {
		c.mu.Lock()
		riders := c.riders
		c.mu.Unlock()
		if riders == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	select {
	case r := <-got:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("rider error = %v, want the leader's context.Canceled", r.err)
		}
		if !r.out.Rider {
			t.Fatal("inherited failure not marked Rider: the caller cannot tell it from its own")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rider never woken")
	}
	// The dead flight left the table: the next Do recomputes cleanly.
	m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		return mat(42), time.Second, nil
	})
	if err != nil || out.Hit || m.Rows() != 1 {
		t.Fatalf("retry after dead leader = (%v, %+v, %v)", m, out, err)
	}
}

// TestLeaderPanicWakesRiders pins the panic recovery: a leader that
// panics out of compute must still remove its flight and fail its
// riders instead of wedging them (and every later identical query)
// forever.
func TestLeaderPanicWakesRiders(t *testing.T) {
	c := New(Config{})
	gate := make(chan struct{})
	riderErr := make(chan error, 1)
	leaderDone := make(chan struct{})
	// Leader: panics out of compute once released. The panic is recovered
	// in this goroutine; Do's deferred publish must have cleaned up first.
	go func() {
		defer close(leaderDone)
		defer func() { recover() }()
		c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
			<-gate
			panic("engine invariant violation")
		})
	}()
	// Rider: joins the leader's flight, then must be woken with an error.
	go func() {
		for {
			c.mu.Lock()
			started := len(c.flights) == 1
			c.mu.Unlock()
			if started {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_, _, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
			t.Error("rider recomputed instead of riding")
			return nil, 0, nil
		})
		riderErr <- err
	}()
	// Release the leader once the rider is registered on the flight.
	for {
		c.mu.Lock()
		riders := c.riders
		c.mu.Unlock()
		if riders == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	select {
	case err := <-riderErr:
		if err != errLeaderAborted {
			t.Fatalf("rider error = %v, want errLeaderAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rider deadlocked on a panicked leader's flight")
	}
	<-leaderDone
	// The flight table is clean: a fresh Do computes normally.
	m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		return mat(1), time.Second, nil
	})
	if err != nil || out.Hit || m.Rows() != 1 {
		t.Fatalf("post-panic Do = %v, %+v, %v", m, out, err)
	}
}

// TestRiderIsNotAMiss pins the stats accounting: riding an in-flight
// execution counts as a rider (a form of hit), not a miss.
func TestRiderIsNotAMiss(t *testing.T) {
	c := New(Config{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
			<-gate
			return mat(1), time.Second, nil
		})
	}()
	for {
		c.mu.Lock()
		started := len(c.flights) == 1
		c.mu.Unlock()
		if started {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
				t.Error("rider recomputed")
				return nil, 0, nil
			})
		}()
	}
	for {
		c.mu.Lock()
		riders := c.riders
		c.mu.Unlock()
		if riders == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	<-done
	st := c.Stats()
	if st.Misses != 1 || st.Riders != 3 {
		t.Fatalf("misses=%d riders=%d, want 1/3", st.Misses, st.Riders)
	}
}

// TestPostInvalidationQueryDoesNotRideStaleFlight pins the epoch check
// on the join path: a query issued after a bump has observed "the data
// changed" and must re-execute instead of riding a pre-change flight.
func TestPostInvalidationQueryDoesNotRideStaleFlight(t *testing.T) {
	c := New(Config{})
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
			<-gate
			return mat(1), time.Second, nil
		})
	}()
	for {
		c.mu.Lock()
		started := len(c.flights) == 1
		c.mu.Unlock()
		if started {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.BumpEpoch() // the data changed while the old flight is running

	recomputed := false
	m, out, err := c.Do(fp("q"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		recomputed = true
		return mat(2), time.Second, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed || out.Rider {
		t.Fatalf("post-invalidation query rode the stale flight (out=%+v)", out)
	}
	if got := m.Batches[0].Cols[0].Int64s()[0]; got != 2 {
		t.Fatalf("served value %d, want the recomputed 2", got)
	}
	close(gate)
	<-leaderDone
	// The fresh result is the retained one; the stale leader's publish
	// must neither store nor remove the fresh flight-table state.
	entry, ok := c.Get(fp("q"))
	if !ok || entry.Batches[0].Cols[0].Int64s()[0] != 2 {
		t.Fatalf("retained entry = %v, %v; want the post-bump result", entry, ok)
	}
	if st := c.Stats(); st.Stores != 1 || st.RejectedStores != 1 {
		t.Fatalf("stats = %+v, want 1 store (fresh) and 1 rejection (stale)", st)
	}
}

// --- semantic (subsumption) index ---

// subInfo builds a summary with one int64 interval column "c" bounded
// [lo, hi] (closed), sharing one bucket per key string.
func subInfo(key string, lo, hi int64) *plan.SubsumptionInfo {
	return &plan.SubsumptionInfo{
		Key: plan.SubsumptionKey(sha256.Sum256([]byte(key))),
		Intervals: map[string]plan.Interval{
			"c": {HasLo: true, Lo: vector.Int64(lo), HasHi: true, Hi: vector.Int64(hi)},
		},
	}
}

func TestGetSubsumingServesWiderEntry(t *testing.T) {
	c := New(Config{})
	wideFp, wide := fp("wide"), subInfo("bucket", 0, 100)
	if !c.PutAt(wideFp, "", mat(1, 2, 3), time.Second, c.Epoch(), wide) {
		t.Fatal("indexed store rejected")
	}
	narrow := subInfo("bucket", 10, 20)
	hit, ok := c.GetSubsuming(fp("narrow"), narrow)
	if !ok {
		t.Fatal("contained interval missed the wider entry")
	}
	if hit.Fp != wideFp || hit.Mat.Rows() != 3 || hit.Cost != time.Second {
		t.Fatalf("hit = %+v", hit)
	}
	// The wider query must not be served by the narrower... entry the
	// other way around: store narrow, probe with a wider summary.
	if _, ok := c.GetSubsuming(fp("wider-still"), subInfo("bucket", -50, 500)); ok {
		t.Fatal("a wider query was served by a narrower entry")
	}
	// Different bucket: never served.
	if _, ok := c.GetSubsuming(fp("n2"), subInfo("other-bucket", 10, 20)); ok {
		t.Fatal("cross-bucket subsumption hit")
	}
	st := c.Stats()
	if st.SubsumptionHits != 1 || st.SubsumptionProbes != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetSubsumingSkipsOwnFingerprint(t *testing.T) {
	c := New(Config{})
	sub := subInfo("bucket", 0, 100)
	c.PutAt(fp("q"), "", mat(1), time.Second, c.Epoch(), sub)
	// The exact entry is the exact-match path's business: the semantic
	// probe must not serve an entry to its own fingerprint.
	if _, ok := c.GetSubsuming(fp("q"), sub); ok {
		t.Fatal("semantic probe served the query's own entry")
	}
}

func TestGetSubsumingPrefersSmallestCandidate(t *testing.T) {
	c := New(Config{})
	c.PutAt(fp("huge"), "", mat(1, 2, 3, 4, 5, 6, 7, 8), time.Second, c.Epoch(), subInfo("bucket", 0, 1000))
	c.PutAt(fp("small"), "", mat(1, 2), time.Second, c.Epoch(), subInfo("bucket", 0, 100))
	hit, ok := c.GetSubsuming(fp("narrow"), subInfo("bucket", 10, 20))
	if !ok || hit.Fp != fp("small") {
		t.Fatalf("want the smallest containing entry, got %+v ok=%v", hit, ok)
	}
}

func TestSubsumptionIndexDropsWithEntry(t *testing.T) {
	c := New(Config{})
	sub := subInfo("bucket", 0, 100)
	c.PutAt(fp("wide"), "", mat(1, 2, 3), time.Second, c.Epoch(), sub)

	// Epoch bump: the semantic index must not serve pre-bump entries.
	c.BumpEpoch()
	if _, ok := c.GetSubsuming(fp("narrow"), subInfo("bucket", 10, 20)); ok {
		t.Fatal("semantic index served an invalidated entry")
	}

	// Re-store, then evict via the byte budget: the bucket must follow.
	per := mat(1, 2, 3, 4).Batches[0].Bytes()
	c2 := New(Config{MaxBytes: per})
	c2.PutAt(fp("wide"), "", mat(1, 2, 3, 4), time.Second, c2.Epoch(), subInfo("bucket", 0, 100))
	c2.PutAt(fp("other"), "", mat(5, 6, 7, 8), time.Second, c2.Epoch(), nil)
	if _, ok := c2.GetSubsuming(fp("narrow"), subInfo("bucket", 10, 20)); ok {
		t.Fatal("semantic index served an evicted entry")
	}
}

func TestDoNotStoreDeclinesRetention(t *testing.T) {
	c := New(Config{})
	if c.Put(fp("q"), "", mat(1), DoNotStore) {
		t.Fatal("DoNotStore cost retained an entry")
	}
	st := c.Stats()
	if st.Stores != 0 || st.RejectedStores != 0 {
		t.Fatalf("DoNotStore must not count as store or rejection: %+v", st)
	}
	// Via Do: the leader declining retention still serves its riders.
	got, out, err := c.Do(fp("q2"), "", nil, func() (*exec.Materialized, time.Duration, error) {
		return mat(7), DoNotStore, nil
	})
	if err != nil || out.Stored || got.Rows() != 1 {
		t.Fatalf("Do with DoNotStore: %v %+v", err, out)
	}
	if _, ok := c.Get(fp("q2")); ok {
		t.Fatal("DoNotStore result retained through Do")
	}
}
