// Disk tier of the result cache: instead of evicting a cold entry under
// byte pressure, the cache demotes it — the frozen materialization is
// serialized to a spill file (internal/storage batch spill format) and
// only the entry's metadata stays resident. A later hit promotes it back
// through the ordinary result-scan share path. The tier has its own byte
// budget and LRU (demotion recency), and persists across restarts: Close
// demotes everything still resident and writes a manifest
// (fingerprint, subsumption summary, invalidation epoch per entry), and
// New over the same spill directory warms the cache from it, so repeat
// queries after a restart are served with zero executions. Corrupt or
// truncated spill files and manifests are ignored, never fatal: a bad
// manifest means a cold start, a bad entry file means a miss.

package resultcache

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// spillEnabled reports whether the disk tier is configured.
func (c *Cache) spillEnabled() bool { return c.cfg.SpillDir != "" }

func (c *Cache) diskModel() (storage.DiskModel, *storage.Clock) {
	return c.cfg.Disk, c.cfg.Clock
}

// demoteLocked moves one resident entry (an element of c.order) to the
// disk tier. On any I/O failure it reports false and leaves the entry
// resident — the caller falls back to plain eviction, so a full or
// broken disk degrades to the spill-off behavior instead of erroring.
func (c *Cache) demoteLocked(el *list.Element) bool {
	e := el.Value.(*entry)
	sf, err := storage.CreateSpillFile(c.cfg.SpillDir, "result-*.spill")
	if err != nil {
		return false
	}
	kinds := make([]vector.Kind, len(e.schema))
	for i, ci := range e.schema {
		kinds[i] = ci.Kind
	}
	model, clock := c.diskModel()
	w := storage.NewBatchWriter(sf.File(), kinds, model, clock)
	for _, b := range e.mat.Batches {
		if err := w.Append(b); err != nil {
			sf.Remove()
			return false
		}
	}
	if err := w.Finish(); err != nil {
		sf.Remove()
		return false
	}
	path, err := sf.Adopt()
	if err != nil {
		return false
	}
	c.order.Remove(el)
	c.bytes -= e.bytes
	c.gate.Release(e.session, e.bytes)
	e.mat = nil
	e.path = path
	c.entries[e.fp] = c.diskOrder.PushFront(e)
	c.diskBytes += e.bytes
	c.demotions++
	c.evictDiskLocked()
	return true
}

// promoteLocked loads a spilled entry (an element of c.diskOrder) back
// into the resident tier and returns its materialization. A corrupt or
// missing spill file drops the entry silently — the probe becomes a
// miss, never an error.
func (c *Cache) promoteLocked(el *list.Element) (*exec.Materialized, bool) {
	e := el.Value.(*entry)
	model, clock := c.diskModel()
	r, err := storage.OpenBatchReader(e.path, model, clock)
	if err != nil {
		c.removeLocked(el)
		return nil, false
	}
	var batches []*vector.Batch
	for {
		b, err := r.Next()
		if err != nil {
			r.Close()
			c.removeLocked(el)
			return nil, false
		}
		if b == nil {
			break
		}
		batches = append(batches, b)
	}
	r.Close()
	mat := &exec.Materialized{Schema: e.schema, Batches: batches}
	mat.Freeze()
	c.diskOrder.Remove(el)
	c.diskBytes -= e.bytes
	os.Remove(e.path)
	e.path = ""
	e.mat = mat
	e.bytes = matBytes(mat)
	c.entries[e.fp] = c.order.PushFront(e)
	c.bytes += e.bytes
	c.gate.Charge(e.session, e.bytes)
	c.promotions++
	c.evictLocked(e.session)
	return mat, true
}

// evictDiskLocked enforces the disk-tier byte budget, oldest demotion
// first. Like the resident tier, a single over-budget entry may remain
// alone.
func (c *Cache) evictDiskLocked() {
	if c.cfg.DiskMaxBytes <= 0 {
		return
	}
	for c.diskBytes > c.cfg.DiskMaxBytes && c.diskOrder.Len() > 1 {
		c.removeLocked(c.diskOrder.Back())
		c.diskEvictions++
	}
}

// Close demotes every resident entry to the disk tier and writes the
// manifest, so a cache reopened over the same spill directory serves
// repeat queries without re-executing them. Without a spill directory it
// is a no-op. Close does not render the cache unusable, but it is meant
// as the last call before process exit.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.spillEnabled() {
		return nil
	}
	// Demote LRU-first: each demotion pushes to the disk tier's front, so
	// the resident recency order is preserved on top of what had already
	// been demoted.
	for el := c.order.Back(); el != nil; el = c.order.Back() {
		//lint:allow lockcheck Close persists the whole resident tier under c.mu: shutdown demotion must not race concurrent probes (see spill.go)
		if !c.demoteLocked(el) {
			c.removeLocked(el) // cannot persist — drop rather than leak
		}
	}
	return c.writeManifestLocked()
}

// manifest is the on-disk index of the spill directory. Entries are
// ordered most recently used first.
type manifest struct {
	Epoch   uint64          `json:"epoch"`
	Entries []manifestEntry `json:"entries"`
}

type manifestEntry struct {
	Fingerprint string        `json:"fingerprint"`
	Session     string        `json:"session,omitempty"`
	File        string        `json:"file"`
	Bytes       int64         `json:"bytes"`
	CostNs      int64         `json:"cost_ns"`
	Schema      []manifestCol `json:"schema"`
	Sub         *manifestSub  `json:"sub,omitempty"`
}

type manifestCol struct {
	Table string `json:"table,omitempty"`
	Name  string `json:"name"`
	Kind  int    `json:"kind"`
}

// manifestSub carries the subsumption summary minus the re-filter
// closure (not serializable). A warmed entry keeps answering semantic
// probes — Subsumes uses only the key and intervals, and the narrow
// query re-filters with its own expression.
type manifestSub struct {
	Key       string                   `json:"key"`
	Intervals map[string]plan.Interval `json:"intervals"`
}

func (c *Cache) writeManifestLocked() error {
	m := manifest{Epoch: c.epoch}
	for el := c.diskOrder.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		me := manifestEntry{
			Fingerprint: e.fp.String(),
			Session:     e.session,
			File:        filepath.Base(e.path),
			Bytes:       e.bytes,
			CostNs:      int64(e.cost),
		}
		for _, ci := range e.schema {
			me.Schema = append(me.Schema, manifestCol{Table: ci.Table, Name: ci.Name, Kind: int(ci.Kind)})
		}
		if e.sub != nil && !e.sub.Key.IsZero() {
			ms := &manifestSub{Key: e.sub.Key.String(), Intervals: e.sub.Intervals}
			// Interval bounds hold vector.Values; a non-finite double
			// cannot be marshaled — drop the summary, keep the entry.
			if _, err := json.Marshal(ms); err == nil {
				me.Sub = ms
			}
		}
		m.Entries = append(m.Entries, me)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.cfg.SpillDir, "manifest.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.cfg.SpillDir, "manifest.json"))
}

// loadManifest warms the disk tier from a previous process's manifest.
// Every failure mode — missing or corrupt manifest, missing files, bad
// fingerprints or schemas — skips quietly: the worst restart outcome is
// a cold cache. Spill files the manifest does not reference are removed.
func (c *Cache) loadManifest() {
	data, err := os.ReadFile(filepath.Join(c.cfg.SpillDir, "manifest.json"))
	if err != nil {
		c.sweepSpillDir(nil)
		return
	}
	var m manifest
	if json.Unmarshal(data, &m) != nil {
		c.sweepSpillDir(nil)
		return
	}
	c.epoch = m.Epoch
	referenced := make(map[string]bool)
	for _, me := range m.Entries {
		fpB, err := hex.DecodeString(me.Fingerprint)
		if err != nil || len(fpB) != len(plan.Fingerprint{}) || me.Bytes < 0 {
			continue
		}
		var f plan.Fingerprint
		copy(f[:], fpB)
		if _, dup := c.entries[f]; dup {
			continue
		}
		path := filepath.Join(c.cfg.SpillDir, filepath.Base(me.File))
		if fi, err := os.Stat(path); err != nil || fi.IsDir() {
			continue
		}
		schema := make([]plan.ColInfo, 0, len(me.Schema))
		ok := true
		for _, mc := range me.Schema {
			k := vector.Kind(mc.Kind)
			if k <= vector.KindInvalid || k > vector.KindTime {
				ok = false
				break
			}
			schema = append(schema, plan.ColInfo{Table: mc.Table, Name: mc.Name, Kind: k})
		}
		if !ok {
			continue
		}
		e := &entry{
			fp: f, session: me.Session, bytes: me.Bytes,
			epoch: c.epoch, cost: time.Duration(me.CostNs),
			path: path, schema: schema,
		}
		if me.Sub != nil {
			if kb, err := hex.DecodeString(me.Sub.Key); err == nil && len(kb) == len(plan.SubsumptionKey{}) {
				var key plan.SubsumptionKey
				copy(key[:], kb)
				e.sub = &plan.SubsumptionInfo{Key: key, Intervals: me.Sub.Intervals}
			}
		}
		c.entries[f] = c.diskOrder.PushBack(e) // manifest order is MRU-first
		c.diskBytes += e.bytes
		if e.sub != nil && !e.sub.Key.IsZero() {
			bucket := c.subindex[e.sub.Key]
			if bucket == nil {
				bucket = make(map[plan.Fingerprint]struct{})
				c.subindex[e.sub.Key] = bucket
			}
			bucket[f] = struct{}{}
		}
		referenced[filepath.Base(path)] = true
		c.warmed++
	}
	c.sweepSpillDir(referenced)
	c.evictDiskLocked()
}

// sweepSpillDir removes result spill files not referenced by the loaded
// manifest (leftovers of a crash between demotion and manifest write).
// Only files matching this package's naming pattern are touched.
func (c *Cache) sweepSpillDir(keep map[string]bool) {
	ents, err := os.ReadDir(c.cfg.SpillDir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || keep[name] {
			continue
		}
		if ok, _ := filepath.Match("result-*.spill", name); ok {
			os.Remove(filepath.Join(c.cfg.SpillDir, name))
		}
	}
}
