package vector

import (
	"fmt"
	"strings"
)

// DefaultBatchSize is the number of rows operators aim to move per batch.
const DefaultBatchSize = 4096

// Batch is a set of aligned column vectors: the horizontal unit of data
// flow between physical operators. All columns have the same length.
type Batch struct {
	Cols []*Vector
}

// NewBatch returns a batch over the given columns, validating alignment.
func NewBatch(cols ...*Vector) *Batch {
	b := &Batch{Cols: cols}
	if len(cols) > 0 {
		n := cols[0].Len()
		for i, c := range cols {
			if c.Len() != n {
				panic(fmt.Sprintf("vector: batch column %d has %d rows, want %d", i, c.Len(), n))
			}
		}
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return len(b.Cols) }

// Gather returns a new batch with only the selected row indexes. It
// always copies: the result is exclusively owned.
func (b *Batch) Gather(sel []int) *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Gather(sel)
	}
	return &Batch{Cols: cols}
}

// Slice returns a batch over rows [lo, hi) aliasing b's storage until
// written: the columns join b's share groups, so mutations through
// either side materialize private copies (see Vector.Slice).
func (b *Batch) Slice(lo, hi int) *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &Batch{Cols: cols}
}

// Clone returns a deep copy of the batch: mutations of either copy can
// never be observed through the other, and no copy-on-write accounting
// ties them together. Prefer Share at shared-state boundaries — it is
// O(1) and defers the copy until a mutation actually happens.
func (b *Batch) Clone() *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Clone()
	}
	return &Batch{Cols: cols}
}

// Share returns a new batch handle over the same storage in O(1). This
// is the sanctioned way to hand one batch to a second owner (the
// ingestion cache, a flight's replay buffer, a retained result): each
// owner holds its own handle, reads are free, and the first mutation
// through any handle materializes a private copy for that handle only.
func (b *Batch) Share() *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Share()
	}
	return &Batch{Cols: cols}
}

// Freeze permanently marks every column's storage as shared: any later
// mutation through any handle copies first. Long-lived read-mostly
// batches (replayed Qf results, cache entries) freeze themselves as
// belt-and-braces against handle-ownership mistakes.
func (b *Batch) Freeze() {
	for _, c := range b.Cols {
		c.Freeze()
	}
}

// Shared reports whether any column's storage may still be referenced by
// another handle.
func (b *Batch) Shared() bool {
	for _, c := range b.Cols {
		if c.Shared() {
			return true
		}
	}
	return false
}

// Bytes estimates the resident size of the batch: the unit the ingestion
// cache and the mount service's replay accounting are denominated in.
func (b *Batch) Bytes() int64 {
	var total int64
	for _, c := range b.Cols {
		total += c.Bytes()
	}
	return total
}

// Permute reorders the batch in place so that new row i is old row
// perm[i]; perm must be a permutation of [0, Len()) and is left
// unchanged. Shared columns are materialized first; exclusively owned
// columns are permuted without allocating (sort's gather-in-place path).
func (b *Batch) Permute(perm []int) {
	for _, c := range b.Cols {
		c.Permute(perm)
	}
}

// Row returns the values of row i across all columns.
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Cols))
	for j, c := range b.Cols {
		out[j] = c.Get(i)
	}
	return out
}

// SelFromBools converts a boolean predicate vector into a selection
// vector of the indexes where the predicate holds.
func SelFromBools(pred *Vector) []int {
	bs := pred.Bools()
	sel := make([]int, 0, len(bs))
	for i, ok := range bs {
		if ok {
			sel = append(sel, i)
		}
	}
	return sel
}

// FormatRow renders row i of the batch as a tab-separated line.
func (b *Batch) FormatRow(i int) string {
	parts := make([]string, len(b.Cols))
	for j, c := range b.Cols {
		parts[j] = c.Format(i)
	}
	return strings.Join(parts, "\t")
}
