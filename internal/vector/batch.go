package vector

import (
	"fmt"
	"strings"
)

// DefaultBatchSize is the number of rows operators aim to move per batch.
const DefaultBatchSize = 4096

// Batch is a set of aligned column vectors: the horizontal unit of data
// flow between physical operators. All columns have the same length.
type Batch struct {
	Cols []*Vector
}

// NewBatch returns a batch over the given columns, validating alignment.
func NewBatch(cols ...*Vector) *Batch {
	b := &Batch{Cols: cols}
	if len(cols) > 0 {
		n := cols[0].Len()
		for i, c := range cols {
			if c.Len() != n {
				panic(fmt.Sprintf("vector: batch column %d has %d rows, want %d", i, c.Len(), n))
			}
		}
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return len(b.Cols) }

// Gather returns a new batch with only the selected row indexes.
func (b *Batch) Gather(sel []int) *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Gather(sel)
	}
	return &Batch{Cols: cols}
}

// Slice returns a batch sharing storage over rows [lo, hi).
func (b *Batch) Slice(lo, hi int) *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &Batch{Cols: cols}
}

// Clone returns a deep copy of the batch: mutations of either copy can
// never be observed through the other. Shared-state boundaries (the
// ingestion cache, replayed materialized results) emit clones to enforce
// read-only discipline on their stored batches.
func (b *Batch) Clone() *Batch {
	cols := make([]*Vector, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Clone()
	}
	return &Batch{Cols: cols}
}

// Row returns the values of row i across all columns.
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Cols))
	for j, c := range b.Cols {
		out[j] = c.Get(i)
	}
	return out
}

// SelFromBools converts a boolean predicate vector into a selection
// vector of the indexes where the predicate holds.
func SelFromBools(pred *Vector) []int {
	bs := pred.Bools()
	sel := make([]int, 0, len(bs))
	for i, ok := range bs {
		if ok {
			sel = append(sel, i)
		}
	}
	return sel
}

// FormatRow renders row i of the batch as a tab-separated line.
func (b *Batch) FormatRow(i int) string {
	parts := make([]string, len(b.Cols))
	for j, c := range b.Cols {
		parts[j] = c.Format(i)
	}
	return strings.Join(parts, "\t")
}
