package vector

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
)

// Value is a scalar of any supported Kind. Exactly one of the payload
// fields is meaningful, selected by Kind (I backs both BIGINT and
// TIMESTAMP).
type Value struct {
	Kind Kind
	B    bool
	I    int64
	F    float64
	S    string
}

// Bool, Int64, Float64, Str and Time construct scalar values.
func Bool(b bool) Value       { return Value{Kind: KindBool, B: b} }
func Int64(i int64) Value     { return Value{Kind: KindInt64, I: i} }
func Float64(f float64) Value { return Value{Kind: KindFloat64, F: f} }
func Str(s string) Value      { return Value{Kind: KindString, S: s} }
func Time(ns int64) Value     { return Value{Kind: KindTime, I: ns} }

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool { return v.Kind.Numeric() }

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt64, KindTime:
		return float64(v.I)
	case KindFloat64:
		return v.F
	default:
		panic(fmt.Sprintf("vector: AsFloat on %s value", v.Kind))
	}
}

// AsInt converts a numeric value to int64 (floats are truncated).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt64, KindTime:
		return v.I
	case KindFloat64:
		return int64(v.F)
	default:
		panic(fmt.Sprintf("vector: AsInt on %s value", v.Kind))
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindInt64:
		return strconv.FormatInt(v.I, 10)
	case KindTime:
		return FormatTime(v.I)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return "NULL"
	}
}

// Compare orders two values of compatible kinds: -1, 0 or +1. Numeric
// kinds compare numerically across int/float; TIMESTAMP compares as its
// underlying instant.
func Compare(a, b Value) int {
	switch {
	case a.Kind == KindString && b.Kind == KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case a.Kind == KindBool && b.Kind == KindBool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	case (a.Kind == KindInt64 || a.Kind == KindTime) && (b.Kind == KindInt64 || b.Kind == KindTime):
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case a.IsNumeric() && b.IsNumeric():
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("vector: Compare of %s and %s", a.Kind, b.Kind))
	}
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// hashSeed is the process-wide seed for value hashing.
var hashSeed = maphash.MakeSeed()

// Hash returns a stable-in-process hash of the value, suitable for hash
// joins and group-by. Int64 and Time values of equal instant hash equal;
// a float that holds an integral value hashes equal to that integer so
// cross-kind numeric joins behave.
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.Kind {
	case KindBool:
		if v.B {
			writeU64(&h, 1)
		} else {
			writeU64(&h, 0)
		}
	case KindInt64, KindTime:
		writeU64(&h, uint64(v.I))
	case KindFloat64:
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) {
			writeU64(&h, uint64(int64(v.F)))
		} else {
			writeU64(&h, math.Float64bits(v.F))
		}
	case KindString:
		h.WriteString(v.S)
	}
	return h.Sum64()
}

func writeU64(h *maphash.Hash, x uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(x >> (8 * i))
	}
	h.Write(buf[:])
}

// HashVector hashes every element of v into dst (which must have length
// v.Len()), combining with any existing contents of dst so multi-column
// keys can be hashed by repeated calls.
func HashVector(v *Vector, dst []uint64) {
	n := v.Len()
	if len(dst) != n {
		panic("vector: HashVector length mismatch")
	}
	const mix = 0x9e3779b97f4a7c15
	switch v.kind {
	case KindInt64, KindTime:
		for i, x := range v.is {
			dst[i] = combine(dst[i], Value{Kind: KindInt64, I: x}.Hash(), mix)
		}
	case KindFloat64:
		for i, x := range v.fs {
			dst[i] = combine(dst[i], Value{Kind: KindFloat64, F: x}.Hash(), mix)
		}
	case KindString:
		for i, x := range v.ss {
			dst[i] = combine(dst[i], Value{Kind: KindString, S: x}.Hash(), mix)
		}
	case KindBool:
		for i, x := range v.bs {
			dst[i] = combine(dst[i], Value{Kind: KindBool, B: x}.Hash(), mix)
		}
	}
}

func combine(acc, h, mix uint64) uint64 {
	acc ^= h + mix + (acc << 6) + (acc >> 2)
	return acc
}
