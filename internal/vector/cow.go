package vector

import "sync/atomic"

// Copy-on-write ownership.
//
// Every Vector handle is attached to a share record counting how many
// handles reference the same backing storage. Freshly constructed
// vectors are exclusively owned (count 1). Share and Slice hand out new
// handles in O(1) by bumping the count; mutation entry points (Set, the
// Append family, Permute, the Mutable accessors) call materialize first,
// which copies the storage into a private allocation only when the count
// shows another handle could still observe it. The count is
// conservative: dropping a handle without mutating never decrements it,
// so a stale count can only cause an unnecessary copy, never a visible
// write through another handle.
//
// Concurrency contract: any number of goroutines may concurrently read
// and Share the same handle. Mutating a handle requires exclusive access
// to that handle — but not to the storage: two goroutines may mutate two
// different handles of the same share group concurrently, and each
// materializes its own private copy.
type share struct {
	refs atomic.Int64
}

func newShare() *share {
	s := &share{}
	s.refs.Store(1)
	return s
}

// cowCopies counts materializations: mutations that found their storage
// shared and had to copy it first. Benchmarks and tests read it to prove
// sharing boundaries stay O(1) until someone actually writes.
var cowCopies atomic.Int64

// CowCopies returns the number of copy-on-write materializations
// performed since process start.
func CowCopies() int64 { return cowCopies.Load() }

// forceCloneShares switches Share back to the deep-clone discipline this
// package replaced: a differential-testing and benchmarking knob, not a
// production mode.
var forceCloneShares atomic.Bool

// forcedClones counts the deep copies Share performed while in
// forced-clone mode: the price of the old discipline, measured.
var forcedClones atomic.Int64

// ForcedClones returns the number of deep copies Share has performed in
// forced-clone mode since process start.
func ForcedClones() int64 { return forcedClones.Load() }

// SetForceCloneShares makes every Share return a deep Clone when on,
// restoring the defensive-copy discipline at sharing boundaries so tests
// and benchmarks can compare the two. It returns the previous setting.
func SetForceCloneShares(on bool) bool { return forceCloneShares.Swap(on) }

// Share returns a new handle over v's storage in O(1). Both handles read
// the same values; the first mutation through either materializes a
// private copy for the mutating handle, so neither can ever observe the
// other's writes.
func (v *Vector) Share() *Vector {
	if forceCloneShares.Load() {
		forcedClones.Add(1)
		return v.Clone()
	}
	v.sh.refs.Add(1)
	return &Vector{kind: v.kind, bs: v.bs, is: v.is, fs: v.fs, ss: v.ss, sh: v.sh}
}

// Shared reports whether another handle may still reference v's storage
// (conservatively: handles dropped without mutating keep counting).
func (v *Vector) Shared() bool { return v.sh.refs.Load() > 1 }

// Freeze permanently marks v's storage as shared: every later mutation
// through any handle of the share group materializes a private copy
// first. Long-lived read-mostly data (post-ingestion buffers, replayed
// query results) freezes itself so no handle-bookkeeping mistake can
// ever corrupt it.
func (v *Vector) Freeze() { v.sh.refs.Add(1) }

// materialize makes v's storage private, copying it when any other
// handle could still observe it. Every mutation entry point calls it
// first. The copy happens before the count is released, so a concurrent
// mutation through another handle of the group either sees the storage
// still shared (and copies too) or already has its own.
func (v *Vector) materialize() {
	if v.sh.refs.Load() == 1 {
		return
	}
	switch v.kind {
	case KindBool:
		v.bs = append(make([]bool, 0, len(v.bs)), v.bs...)
	case KindInt64, KindTime:
		v.is = append(make([]int64, 0, len(v.is)), v.is...)
	case KindFloat64:
		v.fs = append(make([]float64, 0, len(v.fs)), v.fs...)
	case KindString:
		v.ss = append(make([]string, 0, len(v.ss)), v.ss...)
	}
	v.sh.refs.Add(-1)
	v.sh = newShare()
	cowCopies.Add(1)
}

// Reset truncates v to zero length. Shared storage is detached rather
// than copied — the old values are being discarded anyway — which lets
// append buffers be reused in place when they are exclusively owned.
func (v *Vector) Reset() {
	if v.sh.refs.Load() > 1 {
		v.sh.refs.Add(-1)
		v.sh = newShare()
		v.bs, v.is, v.fs, v.ss = nil, nil, nil, nil
	}
	switch v.kind {
	case KindBool:
		v.bs = v.bs[:0]
	case KindInt64, KindTime:
		v.is = v.is[:0]
	case KindFloat64:
		v.fs = v.fs[:0]
	case KindString:
		v.ss = v.ss[:0]
	}
}

// Set overwrites the value at index i, which must match the vector kind
// (TIMESTAMP accepts BIGINT values and vice versa). Shared storage is
// materialized first.
func (v *Vector) Set(i int, val Value) {
	v.materialize()
	switch v.kind {
	case KindBool:
		v.bs[i] = val.B
	case KindInt64, KindTime:
		v.is[i] = val.I
	case KindFloat64:
		v.fs[i] = val.F
	case KindString:
		v.ss[i] = val.S
	default:
		panic("vector: Set on invalid vector")
	}
}

// MutableBools returns the backing slice of a BOOLEAN vector for
// in-place writes, materializing shared storage first. The plain
// accessors (Bools, Int64s, ...) are read-only views; writing through
// them on a shared vector is a contract violation the share-count cannot
// intercept.
func (v *Vector) MutableBools() []bool { v.mustKind(KindBool); v.materialize(); return v.bs }

// MutableInt64s is the writable form of Int64s.
func (v *Vector) MutableInt64s() []int64 {
	if v.kind != KindInt64 && v.kind != KindTime {
		panic("vector: MutableInt64s on " + v.kind.String() + " vector")
	}
	v.materialize()
	return v.is
}

// MutableFloat64s is the writable form of Float64s.
func (v *Vector) MutableFloat64s() []float64 { v.mustKind(KindFloat64); v.materialize(); return v.fs }

// MutableStrings is the writable form of Strings.
func (v *Vector) MutableStrings() []string { v.mustKind(KindString); v.materialize(); return v.ss }

// Bytes estimates the resident size of the vector's storage: the unit
// cache and mount-service accounting is denominated in.
func (v *Vector) Bytes() int64 {
	n := int64(v.Len())
	switch v.kind {
	case KindBool:
		return n
	case KindString:
		var total int64
		for _, s := range v.ss {
			total += int64(len(s)) + 16
		}
		return total
	default:
		return n * 8
	}
}

// Permute reorders v in place so that the new value at position i is the
// old value at position perm[i]. perm must be a permutation of
// [0, Len()) and is left unchanged on return. Shared storage is
// materialized first; exclusively owned storage is permuted without
// allocating — the gather-in-place path sort uses.
func (v *Vector) Permute(perm []int) {
	v.materialize()
	switch v.kind {
	case KindBool:
		applyPerm(v.bs, perm)
	case KindInt64, KindTime:
		applyPerm(v.is, perm)
	case KindFloat64:
		applyPerm(v.fs, perm)
	case KindString:
		applyPerm(v.ss, perm)
	}
}

// applyPerm applies new[i] = old[perm[i]] in place by walking cycles.
// perm is used as the visited marker (entries are bit-flipped negative)
// and restored before returning.
func applyPerm[T any](s []T, perm []int) {
	for start := range perm {
		if perm[start] < 0 {
			continue
		}
		cur := start
		tmp := s[start]
		for {
			next := perm[cur]
			perm[cur] = -1 - next
			if next == start {
				s[cur] = tmp
				break
			}
			s[cur] = s[next]
			cur = next
		}
	}
	for i := range perm {
		perm[i] = -1 - perm[i]
	}
}
