// Package vector implements typed column vectors, the unit of data flow
// in the vectorized execution engine. A Vector holds a homogeneous run of
// values of one Kind; operators exchange Batches of aligned vectors.
//
// The design follows the column-at-a-time processing model of analytical
// column stores: predicates produce selection vectors, and most kernels
// (filter, gather, hash) operate on whole vectors at once.
package vector

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported kinds. KindTime is represented as int64 nanoseconds since the
// Unix epoch (UTC); it shares the int64 storage of KindInt64 but carries
// distinct comparison/formatting semantics.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt64
	KindFloat64
	KindString
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "BOOLEAN"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindTime:
		return "TIMESTAMP"
	default:
		return "INVALID"
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool {
	return k == KindInt64 || k == KindFloat64
}

// Fixed reports whether the kind has a fixed-width binary representation.
func (k Kind) Fixed() bool {
	return k != KindString && k != KindInvalid
}

// Width returns the on-disk width in bytes of one value of a fixed kind,
// and 0 for variable-width kinds.
func (k Kind) Width() int {
	switch k {
	case KindBool:
		return 1
	case KindInt64, KindFloat64, KindTime:
		return 8
	default:
		return 0
	}
}

// Vector is a growable, homogeneous column of values. The zero Vector is
// not usable; construct with New or one of the FromX helpers.
//
// Vectors are copy-on-write (see cow.go): Share and Slice hand out O(1)
// handles over the same storage, and mutation entry points materialize a
// private copy only when the storage is actually shared. The raw slice
// accessors (Bools, Int64s, ...) are read-only views; in-place writes go
// through Set, Permute or the Mutable accessors.
type Vector struct {
	kind Kind
	bs   []bool
	is   []int64 // also backs KindTime
	fs   []float64
	ss   []string
	sh   *share // copy-on-write share record, never nil
}

// New returns an empty vector of the given kind with capacity hint n.
func New(kind Kind, n int) *Vector {
	v := &Vector{kind: kind, sh: newShare()}
	switch kind {
	case KindBool:
		v.bs = make([]bool, 0, n)
	case KindInt64, KindTime:
		v.is = make([]int64, 0, n)
	case KindFloat64:
		v.fs = make([]float64, 0, n)
	case KindString:
		v.ss = make([]string, 0, n)
	default:
		panic("vector: New with invalid kind")
	}
	return v
}

// FromInt64 wraps the given slice (no copy) as a BIGINT vector.
func FromInt64(vals []int64) *Vector { return &Vector{kind: KindInt64, is: vals, sh: newShare()} }

// FromTime wraps the given epoch-nanosecond slice (no copy) as a TIMESTAMP vector.
func FromTime(vals []int64) *Vector { return &Vector{kind: KindTime, is: vals, sh: newShare()} }

// FromFloat64 wraps the given slice (no copy) as a DOUBLE vector.
func FromFloat64(vals []float64) *Vector { return &Vector{kind: KindFloat64, fs: vals, sh: newShare()} }

// FromString wraps the given slice (no copy) as a VARCHAR vector.
func FromString(vals []string) *Vector { return &Vector{kind: KindString, ss: vals, sh: newShare()} }

// FromBool wraps the given slice (no copy) as a BOOLEAN vector.
func FromBool(vals []bool) *Vector { return &Vector{kind: KindBool, bs: vals, sh: newShare()} }

// Kind returns the vector's value kind.
func (v *Vector) Kind() Kind { return v.kind }

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.kind {
	case KindBool:
		return len(v.bs)
	case KindInt64, KindTime:
		return len(v.is)
	case KindFloat64:
		return len(v.fs)
	case KindString:
		return len(v.ss)
	default:
		return 0
	}
}

// Bools returns the backing slice of a BOOLEAN vector as a read-only
// view; writes go through Set or MutableBools so shared storage can be
// materialized first.
func (v *Vector) Bools() []bool { v.mustKind(KindBool); return v.bs }

// Int64s returns the backing slice of a BIGINT or TIMESTAMP vector
// (read-only view; see Bools).
func (v *Vector) Int64s() []int64 {
	if v.kind != KindInt64 && v.kind != KindTime {
		panic(fmt.Sprintf("vector: Int64s on %s vector", v.kind))
	}
	return v.is
}

// Float64s returns the backing slice of a DOUBLE vector (read-only view;
// see Bools).
func (v *Vector) Float64s() []float64 { v.mustKind(KindFloat64); return v.fs }

// Strings returns the backing slice of a VARCHAR vector (read-only view;
// see Bools).
func (v *Vector) Strings() []string { v.mustKind(KindString); return v.ss }

func (v *Vector) mustKind(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("vector: kind mismatch: have %s, want %s", v.kind, k))
	}
}

// AppendBool appends to a BOOLEAN vector.
func (v *Vector) AppendBool(b bool) { v.mustKind(KindBool); v.materialize(); v.bs = append(v.bs, b) }

// AppendInt64 appends to a BIGINT or TIMESTAMP vector.
func (v *Vector) AppendInt64(i int64) {
	if v.kind != KindInt64 && v.kind != KindTime {
		panic(fmt.Sprintf("vector: AppendInt64 on %s vector", v.kind))
	}
	v.materialize()
	v.is = append(v.is, i)
}

// AppendFloat64 appends to a DOUBLE vector.
func (v *Vector) AppendFloat64(f float64) {
	v.mustKind(KindFloat64)
	v.materialize()
	v.fs = append(v.fs, f)
}

// AppendString appends to a VARCHAR vector.
func (v *Vector) AppendString(s string) {
	v.mustKind(KindString)
	v.materialize()
	v.ss = append(v.ss, s)
}

// AppendValue appends a scalar Value, which must match the vector kind
// (TIMESTAMP accepts BIGINT values and vice versa).
func (v *Vector) AppendValue(val Value) {
	v.materialize()
	switch v.kind {
	case KindBool:
		v.bs = append(v.bs, val.B)
	case KindInt64, KindTime:
		v.is = append(v.is, val.I)
	case KindFloat64:
		v.fs = append(v.fs, val.F)
	case KindString:
		v.ss = append(v.ss, val.S)
	default:
		panic("vector: AppendValue on invalid vector")
	}
}

// Get returns the value at index i as a scalar Value.
func (v *Vector) Get(i int) Value {
	switch v.kind {
	case KindBool:
		return Value{Kind: KindBool, B: v.bs[i]}
	case KindInt64:
		return Value{Kind: KindInt64, I: v.is[i]}
	case KindTime:
		return Value{Kind: KindTime, I: v.is[i]}
	case KindFloat64:
		return Value{Kind: KindFloat64, F: v.fs[i]}
	case KindString:
		return Value{Kind: KindString, S: v.ss[i]}
	default:
		panic("vector: Get on invalid vector")
	}
}

// Slice returns a new vector over rows [lo, hi) of v, aliasing v's
// storage until either side is written: the handles join one share
// group, so any mutation through either materializes a private copy
// first (capacity is capped at the window, so even an append can never
// bleed into the parent's tail).
func (v *Vector) Slice(lo, hi int) *Vector {
	v.sh.refs.Add(1)
	out := &Vector{kind: v.kind, sh: v.sh}
	switch v.kind {
	case KindBool:
		out.bs = v.bs[lo:hi:hi]
	case KindInt64, KindTime:
		out.is = v.is[lo:hi:hi]
	case KindFloat64:
		out.fs = v.fs[lo:hi:hi]
	case KindString:
		out.ss = v.ss[lo:hi:hi]
	}
	return out
}

// Gather returns a new vector containing v[sel[0]], v[sel[1]], ... .
// Unlike Slice it always copies: the result is exclusively owned.
func (v *Vector) Gather(sel []int) *Vector {
	out := New(v.kind, len(sel))
	switch v.kind {
	case KindBool:
		for _, i := range sel {
			out.bs = append(out.bs, v.bs[i])
		}
	case KindInt64, KindTime:
		for _, i := range sel {
			out.is = append(out.is, v.is[i])
		}
	case KindFloat64:
		for _, i := range sel {
			out.fs = append(out.fs, v.fs[i])
		}
	case KindString:
		for _, i := range sel {
			out.ss = append(out.ss, v.ss[i])
		}
	}
	return out
}

// AppendVector appends all values of src (same kind) to v. src is only
// read; v materializes shared storage first.
func (v *Vector) AppendVector(src *Vector) {
	if src.kind != v.kind && !(v.kind == KindTime && src.kind == KindInt64) &&
		!(v.kind == KindInt64 && src.kind == KindTime) {
		panic(fmt.Sprintf("vector: AppendVector kind mismatch: %s vs %s", v.kind, src.kind))
	}
	v.materialize()
	switch v.kind {
	case KindBool:
		v.bs = append(v.bs, src.bs...)
	case KindInt64, KindTime:
		v.is = append(v.is, src.is...)
	case KindFloat64:
		v.fs = append(v.fs, src.fs...)
	case KindString:
		v.ss = append(v.ss, src.ss...)
	}
}

// Clone returns a deep copy of v: exclusively owned storage, regardless
// of how widely v is shared. Prefer Share at read-mostly boundaries —
// copy-on-write makes the copy lazy.
func (v *Vector) Clone() *Vector {
	out := New(v.kind, v.Len())
	out.AppendVector(v)
	return out
}

// Format returns the display form of the value at index i.
func (v *Vector) Format(i int) string {
	switch v.kind {
	case KindBool:
		return strconv.FormatBool(v.bs[i])
	case KindInt64:
		return strconv.FormatInt(v.is[i], 10)
	case KindTime:
		return FormatTime(v.is[i])
	case KindFloat64:
		return strconv.FormatFloat(v.fs[i], 'g', -1, 64)
	case KindString:
		return v.ss[i]
	default:
		return "?"
	}
}

// FormatTime renders epoch nanoseconds in the ISO form used by the paper's
// queries: 2010-01-12T22:15:00.000.
func FormatTime(ns int64) string {
	return time.Unix(0, ns).UTC().Format("2006-01-02T15:04:05.000")
}

// ParseTime parses the time-literal formats accepted in queries. It
// understands dates, second precision and millisecond precision.
func ParseTime(s string) (int64, error) {
	for _, layout := range []string{
		"2006-01-02T15:04:05.000",
		"2006-01-02T15:04:05",
		"2006-01-02 15:04:05.000",
		"2006-01-02 15:04:05",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC().UnixNano(), nil
		}
	}
	return 0, fmt.Errorf("vector: cannot parse %q as timestamp", s)
}
