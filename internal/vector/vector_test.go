package vector

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBool:    "BOOLEAN",
		KindInt64:   "BIGINT",
		KindFloat64: "DOUBLE",
		KindString:  "VARCHAR",
		KindTime:    "TIMESTAMP",
		KindInvalid: "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindWidth(t *testing.T) {
	if w := KindInt64.Width(); w != 8 {
		t.Errorf("int64 width = %d, want 8", w)
	}
	if w := KindBool.Width(); w != 1 {
		t.Errorf("bool width = %d, want 1", w)
	}
	if w := KindString.Width(); w != 0 {
		t.Errorf("string width = %d, want 0", w)
	}
	if !KindFloat64.Numeric() || KindString.Numeric() {
		t.Error("Numeric misclassifies kinds")
	}
}

func TestAppendAndGet(t *testing.T) {
	v := New(KindInt64, 4)
	for i := int64(0); i < 10; i++ {
		v.AppendInt64(i * 3)
	}
	if v.Len() != 10 {
		t.Fatalf("Len = %d, want 10", v.Len())
	}
	if got := v.Get(4); got.I != 12 || got.Kind != KindInt64 {
		t.Errorf("Get(4) = %+v, want I=12", got)
	}
}

func TestStringVector(t *testing.T) {
	v := FromString([]string{"a", "b", "c"})
	if v.Len() != 3 || v.Get(1).S != "b" {
		t.Fatalf("unexpected string vector state: len=%d", v.Len())
	}
	v.AppendString("d")
	if v.Format(3) != "d" {
		t.Errorf("Format(3) = %q, want d", v.Format(3))
	}
}

func TestGather(t *testing.T) {
	v := FromInt64([]int64{10, 20, 30, 40, 50})
	g := v.Gather([]int{4, 0, 2})
	want := []int64{50, 10, 30}
	for i, w := range want {
		if g.Int64s()[i] != w {
			t.Errorf("Gather[%d] = %d, want %d", i, g.Int64s()[i], w)
		}
	}
}

func TestSliceSharesStorage(t *testing.T) {
	v := FromFloat64([]float64{1, 2, 3, 4})
	s := v.Slice(1, 3)
	if s.Len() != 2 || s.Float64s()[0] != 2 {
		t.Fatalf("Slice wrong: len=%d", s.Len())
	}
	v.Float64s()[1] = 99
	if s.Float64s()[0] != 99 {
		t.Error("Slice did not share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := FromInt64([]int64{1, 2, 3})
	c := v.Clone()
	v.Int64s()[0] = 42
	if c.Int64s()[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestAppendVectorKinds(t *testing.T) {
	a := FromTime([]int64{100})
	b := FromInt64([]int64{200})
	a.AppendVector(b) // time <- int64 allowed
	if a.Len() != 2 || a.Int64s()[1] != 200 {
		t.Fatal("AppendVector across time/int failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for string into int append")
		}
	}()
	a.AppendVector(FromString([]string{"x"}))
}

func TestParseFormatTimeRoundTrip(t *testing.T) {
	in := "2010-01-12T22:15:00.000"
	ns, err := ParseTime(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTime(ns); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestParseTimeLayouts(t *testing.T) {
	for _, s := range []string{
		"2010-01-12", "2010-01-12T00:00:00", "2010-01-12 13:01:02.500", "2010-01-12 13:01:02",
	} {
		if _, err := ParseTime(s); err != nil {
			t.Errorf("ParseTime(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseTime("not a time"); err == nil {
		t.Error("ParseTime accepted garbage")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(2), 0},
		{Int64(3), Int64(2), 1},
		{Float64(1.5), Int64(2), -1},
		{Int64(2), Float64(1.5), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Time(5), Int64(5), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int64(a), Int64(b)) == -Compare(Int64(b), Int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualValuesProperty(t *testing.T) {
	f := func(x int64) bool {
		// An integral float must hash equal to the same integer so that
		// cross-kind numeric join keys collide as Compare says they should.
		return Int64(x).Hash() == Time(x).Hash() &&
			(x != int64(float64(x)) || Float64(float64(x)).Hash() == Int64(int64(float64(x))).Hash())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashStringsProperty(t *testing.T) {
	f := func(s string) bool { return Str(s).Hash() == Str(s).Hash() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashVectorCombines(t *testing.T) {
	a := FromInt64([]int64{1, 1, 2})
	b := FromString([]string{"x", "y", "x"})
	h := make([]uint64, 3)
	HashVector(a, h)
	HashVector(b, h)
	if h[0] == h[1] {
		t.Error("distinct composite keys (1,x) and (1,y) hash equal")
	}
	h2 := make([]uint64, 3)
	HashVector(a.Gather([]int{0, 1, 2}), h2)
	HashVector(b, h2)
	if h[0] != h2[0] {
		t.Error("equal composite keys hash differently")
	}
}

func TestBatchGatherAndRow(t *testing.T) {
	b := NewBatch(
		FromInt64([]int64{1, 2, 3}),
		FromString([]string{"a", "b", "c"}),
	)
	if b.Len() != 3 || b.NumCols() != 2 {
		t.Fatalf("batch shape wrong: %d x %d", b.Len(), b.NumCols())
	}
	g := b.Gather([]int{2, 0})
	if g.Len() != 2 || g.Cols[1].Strings()[0] != "c" {
		t.Error("batch gather wrong")
	}
	row := b.Row(1)
	if row[0].I != 2 || row[1].S != "b" {
		t.Error("Row(1) wrong")
	}
	if b.FormatRow(0) != "1\ta" {
		t.Errorf("FormatRow = %q", b.FormatRow(0))
	}
}

func TestBatchMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for misaligned batch")
		}
	}()
	NewBatch(FromInt64([]int64{1}), FromInt64([]int64{1, 2}))
}

func TestSelFromBools(t *testing.T) {
	sel := SelFromBools(FromBool([]bool{true, false, true, true}))
	want := []int{0, 2, 3}
	if len(sel) != len(want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
}

func TestValueStringForms(t *testing.T) {
	if Int64(5).String() != "5" || Str("q").String() != "q" || Bool(true).String() != "true" {
		t.Error("Value.String formatting wrong")
	}
	if Float64(2.5).String() != "2.5" {
		t.Errorf("float formatting = %q", Float64(2.5).String())
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if Float64(2.9).AsInt() != 2 {
		t.Error("AsInt truncation wrong")
	}
	if Int64(7).AsFloat() != 7.0 {
		t.Error("AsFloat wrong")
	}
}
