package vector

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func testBatch(n int) *Batch {
	ids := make([]int64, n)
	vals := make([]float64, n)
	names := make([]string, n)
	flags := make([]bool, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i) * 1.5
		names[i] = fmt.Sprintf("row-%d", i)
		flags[i] = i%2 == 0
	}
	return NewBatch(FromInt64(ids), FromFloat64(vals), FromString(names), FromBool(flags))
}

func formatAll(b *Batch) []string {
	out := make([]string, b.Len())
	for i := range out {
		out[i] = b.FormatRow(i)
	}
	return out
}

func TestShareIsolatesMutations(t *testing.T) {
	base := testBatch(16)
	want := formatAll(base)
	sh := base.Share()
	if !base.Shared() || !sh.Shared() {
		t.Fatal("Share did not mark storage shared")
	}

	// Mutating the share materializes a private copy; base is untouched.
	before := CowCopies()
	sh.Cols[0].Set(0, Int64(-1))
	sh.Cols[2].Set(3, Str("mutated"))
	if got := formatAll(base); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("base corrupted by share mutation:\n%v\nwant\n%v", got, want)
	}
	if sh.Cols[0].Get(0).I != -1 || sh.Cols[2].Get(3).S != "mutated" {
		t.Fatal("share did not see its own mutation")
	}
	if CowCopies()-before != 2 {
		t.Errorf("CowCopies delta = %d, want 2 (one per mutated column)", CowCopies()-before)
	}

	// The mutated columns are now private: further writes copy nothing.
	before = CowCopies()
	sh.Cols[0].Set(1, Int64(-2))
	if CowCopies() != before {
		t.Error("exclusively owned column copied again")
	}
}

func TestSliceAliasesUntilWritten(t *testing.T) {
	base := testBatch(10)
	sl := base.Slice(2, 5)
	if sl.Len() != 3 {
		t.Fatalf("slice len = %d", sl.Len())
	}
	// Reads alias.
	if sl.Cols[0].Get(0).I != 2 {
		t.Fatal("slice window wrong")
	}
	// An append on the slice can never bleed into the parent's tail, and
	// a write through the slice materializes it away from the parent.
	sl.Cols[0].AppendInt64(99)
	sl.Cols[0].Set(0, Int64(-7))
	if base.Cols[0].Get(2).I != 2 || base.Cols[0].Get(5).I != 5 {
		t.Fatal("parent corrupted by slice mutation")
	}
	// And a parent write after slicing leaves existing slices untouched.
	sl2 := base.Slice(0, 3)
	base.Cols[1].Set(0, Float64(-1))
	if sl2.Cols[1].Get(0).F != 0 {
		t.Fatal("slice observed parent mutation")
	}
}

func TestFreezeForcesCopyOnMutate(t *testing.T) {
	v := FromInt64([]int64{1, 2, 3})
	v.Freeze()
	before := CowCopies()
	v.Set(0, Int64(9))
	if CowCopies()-before != 1 {
		t.Error("mutating a frozen vector did not copy")
	}
	if v.Get(0).I != 9 {
		t.Error("mutation lost")
	}
}

func TestResetDetachesSharedStorage(t *testing.T) {
	v := FromInt64([]int64{1, 2, 3})
	sh := v.Share()
	v.Reset()
	v.AppendInt64(42)
	if sh.Len() != 3 || sh.Get(0).I != 1 {
		t.Fatal("Reset+append corrupted the share")
	}
	if v.Len() != 1 || v.Get(0).I != 42 {
		t.Fatal("Reset vector wrong")
	}
	// Exclusive reset reuses storage in place.
	x := New(KindFloat64, 8)
	x.AppendFloat64(1)
	before := CowCopies()
	x.Reset()
	x.AppendFloat64(2)
	if CowCopies() != before {
		t.Error("exclusive Reset copied")
	}
}

func TestPermuteMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		b := testBatch(n)
		perm := rng.Perm(n)
		permCopy := append([]int(nil), perm...)
		want := formatAll(b.Gather(perm))
		b.Permute(perm)
		if got := formatAll(b); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: Permute != Gather\n%v\nwant\n%v", trial, got, want)
		}
		if fmt.Sprint(perm) != fmt.Sprint(permCopy) {
			t.Fatalf("trial %d: perm not restored: %v != %v", trial, perm, permCopy)
		}
	}
}

func TestPermuteOnShareLeavesOriginal(t *testing.T) {
	b := testBatch(8)
	want := formatAll(b)
	sh := b.Share()
	sh.Permute([]int{7, 6, 5, 4, 3, 2, 1, 0})
	if got := formatAll(b); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("Permute of a share corrupted the original")
	}
	if sh.Cols[0].Get(0).I != 7 {
		t.Fatal("share not permuted")
	}
}

func TestBytes(t *testing.T) {
	b := NewBatch(FromInt64([]int64{1, 2}), FromBool([]bool{true, false}), FromString([]string{"ab", "c"}))
	want := int64(2*8 + 2 + (2 + 16) + (1 + 16))
	if got := b.Bytes(); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

func TestForceCloneSharesRestoresDeepCopies(t *testing.T) {
	prev := SetForceCloneShares(true)
	defer SetForceCloneShares(prev)
	b := testBatch(4)
	sh := b.Share()
	if sh.Shared() || b.Shared() {
		t.Fatal("clone mode still shared storage")
	}
}

// TestConcurrentSharedReadsAndWrites is the race check: many goroutines
// read one shared batch while others mutate their own shares of it.
func TestConcurrentSharedReadsAndWrites(t *testing.T) {
	base := testBatch(128)
	base.Freeze()
	want := formatAll(base)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Reader: repeatedly scan the shared storage.
				for i := 0; i < 50; i++ {
					if got := formatAll(base); len(got) != len(want) {
						t.Error("reader saw wrong length")
						return
					}
				}
			} else {
				// Writer: mutate a private share.
				sh := base.Share()
				for i := 0; i < 50; i++ {
					sh.Cols[1].Set(i, Float64(float64(-g*1000 - i)))
				}
				for i := 0; i < 50; i++ {
					if sh.Cols[1].Get(i).F != float64(-g*1000-i) {
						t.Error("writer lost its own mutation")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := formatAll(base); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("shared base corrupted under concurrency")
	}
}
