package benchutil

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/vector"
)

// CoWMeasure is one workload run under one sharing discipline.
type CoWMeasure struct {
	AllocBytes int64 // bytes allocated during the run (runtime.MemStats.TotalAlloc delta)
	CowCopies  int64 // copy-on-write materializations during the run
	DeepCopies int64 // forced deep copies at sharing boundaries (clone mode only)
	Value      float64
}

// CoW is the copy-on-write ablation: the same two sharing-heavy
// workloads — replaying one Qf result across every file of interest
// (per-file merge strategy) and K concurrent identical cold clients —
// run under the old deep-clone discipline (every sharing boundary
// copies) and under O(1) copy-on-write shares. The clone column is what
// every cache hit, flight fan-out and result replay used to cost; the
// share column is what they cost now, with copies deferred until a
// mutation actually happens.
type CoW struct {
	Scale Scale
	K     int
	Files int

	ReplayClone, ReplayShare CoWMeasure
	ConcClone, ConcShare     CoWMeasure
}

// String renders the comparison.
func (c *CoW) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Copy-on-write ablation (scale %s, %d files, K=%d clients)\n",
		c.Scale.Name, c.Files, c.K)
	row := func(name string, clone, share CoWMeasure) {
		saved := 0.0
		if clone.AllocBytes > 0 {
			saved = 100 * (1 - float64(share.AllocBytes)/float64(clone.AllocBytes))
		}
		fmt.Fprintf(&sb, "  %-24s clone: %-10s (%d deep-copied boundaries)  share: %-10s (%d CoW copies)  allocation saved: %.0f%%\n",
			name, FormatBytes(clone.AllocBytes), clone.DeepCopies,
			FormatBytes(share.AllocBytes), share.CowCopies, saved)
	}
	row("shared-Qf replay:", c.ReplayClone, c.ReplayShare)
	row("K concurrent cold:", c.ConcClone, c.ConcShare)
	// A report only exists when both workloads produced the same answer
	// in both modes; divergence fails the experiment instead.
	fmt.Fprintf(&sb, "  answers cross-checked identical across modes\n")
	return sb.String()
}

// measureAlloc runs f and reports the bytes allocated and CoW copies
// performed while it ran. TotalAlloc is monotonic, so no GC pacing can
// hide allocations; the number is process-wide, which is exactly what
// the concurrent workload needs.
func measureAlloc(f func() error) (CoWMeasure, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	copies0 := vector.CowCopies()
	deep0 := vector.ForcedClones()
	runtime.ReadMemStats(&m0)
	err := f()
	runtime.ReadMemStats(&m1)
	return CoWMeasure{
		AllocBytes: int64(m1.TotalAlloc - m0.TotalAlloc),
		CowCopies:  vector.CowCopies() - copies0,
		DeepCopies: vector.ForcedClones() - deep0,
	}, err
}

// ExperimentCoW measures the two sharing-heavy paths under clone and
// share discipline. A share-mode answer differing from clone mode is an
// error — the whole point of the differential is that sharing is free
// only if it is invisible.
func ExperimentCoW(baseDir string, sc Scale, k int) (*CoW, error) {
	if k < 2 {
		k = 2
	}
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	out := &CoW{Scale: sc, K: k, Files: sc.Files()}
	q := sweepQuery(sc.Days)

	// Workload 1: per-file merge strategy replays the Qf result once per
	// file of interest. Under clone discipline that is one deep copy per
	// file and per replayed batch; under CoW it is O(1) handle bumps.
	replay, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi, Strategy: core.StrategyPerFile})
	if err != nil {
		return nil, err
	}
	runReplay := func(dst *CoWMeasure, cloneMode bool) error {
		prev := vector.SetForceCloneShares(cloneMode)
		defer vector.SetForceCloneShares(prev)
		replay.FlushCold()
		replay.Cache().Clear()
		var value float64
		meas, err := measureAlloc(func() error {
			res, err := replay.Query(q)
			if err != nil {
				return err
			}
			value = res.Float(0, 0)
			return nil
		})
		if err != nil {
			return err
		}
		meas.Value = value
		*dst = meas
		return nil
	}
	if err := runReplay(&out.ReplayClone, true); err != nil {
		replay.Close()
		return nil, err
	}
	if err := runReplay(&out.ReplayShare, false); err != nil {
		replay.Close()
		return nil, err
	}
	replay.Close()

	// Workload 2: K identical cold clients at once. The mount service
	// fans every extracted batch out to K waiters and fills the cache;
	// under clone discipline each fan-out and cache serve copies.
	conc, err := OpenEngine(m, baseDir, core.Options{
		Mode:  core.ModeALi,
		Cache: cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular},
	})
	if err != nil {
		return nil, err
	}
	defer conc.Close()
	runConc := func(dst *CoWMeasure, cloneMode bool) error {
		prev := vector.SetForceCloneShares(cloneMode)
		defer vector.SetForceCloneShares(prev)
		conc.FlushCold()
		conc.Cache().Clear()
		values := make([]float64, k)
		errs := make([]error, k)
		meas, err := measureAlloc(func() error {
			var wg sync.WaitGroup
			for i := 0; i < k; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := conc.Query(q)
					if err != nil {
						errs[i] = err
						return
					}
					values[i] = res.Float(0, 0)
				}(i)
			}
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		meas.Value = values[0]
		for _, v := range values {
			if v != values[0] {
				return fmt.Errorf("benchutil: concurrent clients disagreed: %v vs %v", v, values[0])
			}
		}
		*dst = meas
		return nil
	}
	if err := runConc(&out.ConcClone, true); err != nil {
		return nil, err
	}
	if err := runConc(&out.ConcShare, false); err != nil {
		return nil, err
	}

	if out.ReplayClone.Value != out.ReplayShare.Value || out.ConcClone.Value != out.ConcShare.Value {
		return nil, fmt.Errorf("benchutil: cow modes disagreed: replay %v vs %v, concurrent %v vs %v",
			out.ReplayClone.Value, out.ReplayShare.Value, out.ConcClone.Value, out.ConcShare.Value)
	}
	return out, nil
}
