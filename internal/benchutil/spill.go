package benchutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

// SpillExperiment reports the out-of-core layer: flights whose decoded
// replay buffers exceed the mount budget complete by spilling to disk,
// answers stay byte-identical to an unlimited in-memory baseline at
// serial and parallel mount scheduling, and a simulated restart serves
// the repeat query from the disk-persisted result cache with zero
// executions.
type SpillExperiment struct {
	Scale  Scale
	Files  int
	Budget int64 // mount budget, far below one file

	// Unlimited in-memory baseline.
	BaselineWall   time.Duration
	BaselineMounts int

	// Budget-only engine, spilling off: the mount completes (a lone
	// oversized admission is allowed through), but the resident replay
	// peak blows through the budget — RAM is the ceiling.
	OverBudgetPeak int64

	// Spilling engines (parallelism 1 and 8).
	SpillWall        time.Duration
	Mounts           int
	SpilledFlights   int64
	SpilledBytes     int64
	SpillReplayReads int64
	SpillPeak        int64 // parallelism-1 resident replay peak
	PerFlightBytes   int64 // decoded bytes one flight streamed

	// Simulated restart over the same DB + spill directory.
	WarmedFromDisk int64
	RestartServed  bool // repeat query: zero executions, zero mounts

	Identical bool
}

// String renders the experiment.
func (s *SpillExperiment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Out-of-core spilling (scale %s, %d files, mount budget %s)\n",
		s.Scale.Name, s.Files, FormatBytes(s.Budget))
	fmt.Fprintf(&sb, "  in-memory baseline:  %4d file-mounts in %12s\n",
		s.BaselineMounts, s.BaselineWall.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  budget, no spilling: replay peak %s — %s over the budget\n",
		FormatBytes(s.OverBudgetPeak), FormatBytes(s.OverBudgetPeak-s.Budget))
	fmt.Fprintf(&sb, "  with spilling:       %4d file-mounts in %12s; %d flights spilled %s, %d replay reads\n",
		s.Mounts, s.SpillWall.Round(time.Microsecond),
		s.SpilledFlights, FormatBytes(s.SpilledBytes), s.SpillReplayReads)
	fmt.Fprintf(&sb, "  resident replay peak %s vs %s decoded per flight\n",
		FormatBytes(s.SpillPeak), FormatBytes(s.PerFlightBytes))
	fmt.Fprintf(&sb, "  restart: %d entries warmed from disk, repeat served with zero executions: %v\n",
		s.WarmedFromDisk, s.RestartServed)
	fmt.Fprintf(&sb, "  answers identical across baseline, spilling and restart: %v\n", s.Identical)
	return sb.String()
}

// BenchCounters reports the three cold executions (baseline, budget-only
// and the two spilling runs); the restart repeat adds none.
func (s *SpillExperiment) BenchCounters() (mounts, executions int) {
	return s.BaselineMounts + s.Mounts, 4
}

// BenchExtra reports the out-of-core trajectory counters.
func (s *SpillExperiment) BenchExtra() map[string]int64 {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]int64{
		"spilled_flights":    s.SpilledFlights,
		"spilled_bytes":      s.SpilledBytes,
		"spill_replay_reads": s.SpillReplayReads,
		"spill_peak_bytes":   s.SpillPeak,
		"warmed_from_disk":   s.WarmedFromDisk,
		"restart_served":     b2i(s.RestartServed),
	}
}

// ExperimentSpill measures the out-of-core layer against an unlimited
// in-memory baseline and a budget-only (spill-off) engine, then
// simulates a restart over the same DB and spill directories.
func ExperimentSpill(baseDir string, sc Scale) (*SpillExperiment, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	q := SweepQueryForDays(sc.Days)
	out := &SpillExperiment{Scale: sc, Files: sc.Files(), Budget: 512, Identical: true}

	// Batches far smaller than one record keep flights record-aligned
	// and multi-batch, so the replay gauge can distinguish "whole file
	// resident" from "one batch resident, rest on disk".
	const batchRows = 256

	// Unlimited in-memory baseline.
	base, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := base.Query(q)
	if err != nil {
		base.Close()
		return nil, err
	}
	out.BaselineWall = time.Since(t0)
	out.BaselineMounts = res.Stats.Mounts.FilesMounted
	want := res.Format(0)
	base.Close()

	// Budget only, spilling off: every mounted file's decoded replay is
	// bigger than the budget; the lone oversized admission completes, but
	// the resident peak proves the budget could not actually hold it.
	mem, err := OpenEngine(m, baseDir, core.Options{
		Mode: core.ModeALi, Parallelism: 1,
		MountBudgetBytes: out.Budget, BatchSize: batchRows,
	})
	if err != nil {
		return nil, err
	}
	res, err = mem.Query(q)
	if err != nil {
		mem.Close()
		return nil, err
	}
	if res.Format(0) != want {
		out.Identical = false
	}
	out.OverBudgetPeak = mem.MountService().Stats().PeakReplayBytes
	mem.Close()
	if out.OverBudgetPeak <= out.Budget {
		return nil, fmt.Errorf("benchutil: spill-off replay peak %d fits the %d budget; the scale exercises nothing",
			out.OverBudgetPeak, out.Budget)
	}

	// Spilling on, at serial and parallel mount scheduling.
	root := filepath.Join(baseDir, "spill-"+sc.Name)
	if err := os.RemoveAll(root); err != nil {
		return nil, err
	}
	for _, par := range []int{1, 8} {
		opts := core.Options{
			Mode: core.ModeALi, Parallelism: par,
			RepoDir:          m.Dir,
			DBDir:            filepath.Join(root, fmt.Sprintf("db-par%d", par)),
			SpillDir:         filepath.Join(root, fmt.Sprintf("spill-par%d", par)),
			MountBudgetBytes: out.Budget, BatchSize: batchRows,
			SpillThresholdBytes: 1,
			ResultCacheBytes:    -1,
		}
		eng, err := core.Open(opts)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := eng.Query(q)
		if err != nil {
			eng.Close()
			return nil, err
		}
		out.SpillWall += time.Since(t0)
		if res.Format(0) != want {
			out.Identical = false
		}
		st := eng.MountService().Stats()
		out.Mounts += res.Stats.Mounts.FilesMounted
		out.SpilledFlights += st.SpilledFlights
		out.SpilledBytes += st.SpilledBytes
		out.SpillReplayReads += st.SpillReplayReads
		if st.SpilledFlights == 0 || st.SpilledBytes == 0 {
			eng.Close()
			return nil, fmt.Errorf("benchutil: parallelism %d: over-budget mounts never spilled: %+v", par, st)
		}
		if par != 1 {
			eng.Close()
			continue
		}
		// Serial scheduling makes the peak deterministic: with the
		// threshold at one byte every append is flushed, so the resident
		// replay peak must sit strictly below what one flight decoded.
		out.SpillPeak = st.PeakReplayBytes
		out.PerFlightBytes = st.SpilledBytes / st.SpilledFlights
		if out.SpillPeak >= out.PerFlightBytes {
			eng.Close()
			return nil, fmt.Errorf("benchutil: spilling did not bound resident replay: peak %d vs %d decoded per flight",
				out.SpillPeak, out.PerFlightBytes)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		// Simulated restart: the same DB + spill directories must warm
		// the result cache, and the repeat query must serve with zero
		// executions — no files mounted at all.
		eng2, err := core.Open(opts)
		if err != nil {
			return nil, err
		}
		out.WarmedFromDisk = eng2.ResultCache().Stats().WarmedFromDisk
		rep, err := eng2.Query(q)
		if err != nil {
			eng2.Close()
			return nil, err
		}
		out.RestartServed = rep.Stats.ServedFromResultCache && rep.Stats.Mounts.FilesMounted == 0
		if rep.Format(0) != want {
			out.Identical = false
		}
		eng2.Close()
		if out.WarmedFromDisk == 0 {
			return nil, fmt.Errorf("benchutil: restart warmed nothing from the spill directory")
		}
		if !out.RestartServed {
			return nil, fmt.Errorf("benchutil: post-restart repeat re-executed (served=%v mounts=%d)",
				rep.Stats.ServedFromResultCache, rep.Stats.Mounts.FilesMounted)
		}
	}
	if !out.Identical {
		return nil, fmt.Errorf("benchutil: spilling changed an answer")
	}
	return out, nil
}
