package benchutil

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/repo"
)

// Table1 reproduces the paper's Table 1: dataset characteristics and the
// storage footprint of each ingestion approach.
type Table1 struct {
	Scale      Scale
	FRecords   int64 // files
	RRecords   int64 // records
	DRecords   int64 // samples
	MSEEDBytes int64 // compressed repository
	DBBytes    int64 // loaded column store, no indexes (paper: "MonetDB")
	KeyBytes   int64 // additional index bytes (paper: "+keys")
	ALiBytes   int64 // metadata-only footprint (paper: "ALi")
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 — dataset and sizes (scale %s)\n", t.Scale.Name)
	fmt.Fprintf(&sb, "  records per table:        F=%d  R=%d  D=%d\n", t.FRecords, t.RRecords, t.DRecords)
	fmt.Fprintf(&sb, "  mSEED repository:         %s\n", FormatBytes(t.MSEEDBytes))
	fmt.Fprintf(&sb, "  column store (no keys):   %s  (%.1fx the repository)\n",
		FormatBytes(t.DBBytes), safeDiv(t.DBBytes, t.MSEEDBytes))
	fmt.Fprintf(&sb, "  +keys (index bytes):      %s  (%.2fx the column store)\n",
		FormatBytes(t.KeyBytes), safeDiv(t.KeyBytes, t.DBBytes))
	fmt.Fprintf(&sb, "  ALi (metadata only):      %s  (1/%.0f of the eager footprint)\n",
		FormatBytes(t.ALiBytes), safeDiv(t.DBBytes+t.KeyBytes, t.ALiBytes))
	return sb.String()
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ExperimentTable1 builds the repository at scale and loads it both ways
// to measure the four sizes of Table 1.
func ExperimentTable1(baseDir string, sc Scale) (*Table1, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	ei, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeEi})
	if err != nil {
		return nil, err
	}
	defer ei.Close()
	ali, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	defer ali.Close()

	return &Table1{
		Scale:      sc,
		FRecords:   int64(len(m.Files)),
		RRecords:   m.Records,
		DRecords:   m.Samples,
		MSEEDBytes: m.Bytes,
		DBBytes:    ei.Store().SizeOnDisk(),
		KeyBytes:   ei.IndexBytes(),
		ALiBytes:   ali.Store().SizeOnDisk(),
	}, nil
}

// Figure3Cell is one bar of Figure 3.
type Figure3Cell struct {
	Query string // "Q1" or "Q2"
	Temp  string // "cold" or "hot"
	Mode  string // "Ei" or "ALi"
	Time  time.Duration
	Rows  int
}

// Figure3 reproduces the paper's Figure 3: Query 1 and Query 2 times for
// cold and hot runs under Ei and ALi (log scale in the paper; we report
// the modeled durations directly).
type Figure3 struct {
	Scale Scale
	Cells []Figure3Cell
}

// Get returns the cell for a (query, temperature, mode) triple.
func (f *Figure3) Get(query, temp, mode string) (Figure3Cell, bool) {
	for _, c := range f.Cells {
		if c.Query == query && c.Temp == temp && c.Mode == mode {
			return c, true
		}
	}
	return Figure3Cell{}, false
}

// String renders the figure as the series the paper plots.
func (f *Figure3) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — querying %d files (scale %s), modeled time\n", f.Scale.Files(), f.Scale.Name)
	fmt.Fprintf(&sb, "  %-6s %-5s %-4s %12s %8s\n", "query", "temp", "mode", "time", "rows")
	for _, c := range f.Cells {
		fmt.Fprintf(&sb, "  %-6s %-5s %-4s %12s %8d\n",
			c.Query, c.Temp, c.Mode, c.Time.Round(time.Microsecond), c.Rows)
	}
	if q1c, ok := f.Get("Q1", "cold", "Ei"); ok {
		if q1a, ok2 := f.Get("Q1", "cold", "ALi"); ok2 {
			fmt.Fprintf(&sb, "  cold Q1: ALi beats Ei by %s\n", Ratio(q1c.Time, q1a.Time))
		}
	}
	if q2c, ok := f.Get("Q2", "hot", "Ei"); ok {
		if q2a, ok2 := f.Get("Q2", "hot", "ALi"); ok2 {
			fmt.Fprintf(&sb, "  hot Q2: ALi/Ei = %s (the paper expects ALi to fall behind as data of interest grows)\n",
				Ratio(q2a.Time, q2c.Time))
		}
	}
	return sb.String()
}

// ExperimentFigure3 runs both queries cold and hot under both engines.
func ExperimentFigure3(baseDir string, sc Scale, runs int) (*Figure3, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	out := &Figure3{Scale: sc}
	for _, mode := range []core.Mode{core.ModeEi, core.ModeALi} {
		eng, err := OpenEngine(m, baseDir, core.Options{Mode: mode})
		if err != nil {
			return nil, err
		}
		for _, q := range []struct {
			name, text string
		}{{"Q1", Query1}, {"Q2", Query2}} {
			cold, err := RunCold(eng, q.text, runs)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s %s cold: %w", mode, q.name, err)
			}
			hot, err := RunHot(eng, q.text, runs)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("%s %s hot: %w", mode, q.name, err)
			}
			out.Cells = append(out.Cells,
				Figure3Cell{Query: q.name, Temp: "cold", Mode: mode.String(), Time: cold.Modeled, Rows: cold.Rows},
				Figure3Cell{Query: q.name, Temp: "hot", Mode: mode.String(), Time: hot.Modeled, Rows: hot.Rows},
			)
		}
		eng.Close()
	}
	return out, nil
}

// Ingestion reproduces the paper's headline claim: up-front ingestion
// time reduced by orders of magnitude, plus the "index build takes four
// times longer than loading" observation.
type Ingestion struct {
	Scale        Scale
	ALiTime      time.Duration // metadata-only load (modeled)
	EiLoadTime   time.Duration // eager extract+decompress+store (modeled)
	EiIndexTime  time.Duration // PK/FK index build (modeled)
	IndexToLoad  float64       // EiIndexTime / EiLoadTime
	UpFrontRatio float64       // (EiLoad+EiIndex) / ALi
}

// String renders the ingestion comparison.
func (g *Ingestion) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Up-front ingestion (scale %s, %d files)\n", g.Scale.Name, g.Scale.Files())
	fmt.Fprintf(&sb, "  ALi metadata-only load:  %12s\n", g.ALiTime.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  Ei eager load:           %12s\n", g.EiLoadTime.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  Ei index build:          %12s  (%.1fx the load)\n",
		g.EiIndexTime.Round(time.Microsecond), g.IndexToLoad)
	fmt.Fprintf(&sb, "  data-to-insight gap:     Ei total is %.0fx ALi\n", g.UpFrontRatio)
	return sb.String()
}

// ExperimentIngestion measures both up-front paths.
func ExperimentIngestion(baseDir string, sc Scale) (*Ingestion, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	ali, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	aliTime := ali.Report().Wall + ali.Report().ModeledIO
	ali.Close()

	ei, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeEi})
	if err != nil {
		return nil, err
	}
	rep := ei.Report().Eager
	ei.Close()
	if rep == nil {
		return nil, fmt.Errorf("benchutil: eager engine has no eager report")
	}
	load := rep.LoadWall + rep.LoadIO
	idx := rep.IndexWall + rep.IndexIO
	out := &Ingestion{
		Scale: sc, ALiTime: aliTime, EiLoadTime: load, EiIndexTime: idx,
	}
	if load > 0 {
		out.IndexToLoad = float64(idx) / float64(load)
	}
	if aliTime > 0 {
		out.UpFrontRatio = float64(load+idx) / float64(aliTime)
	}
	return out, nil
}

// SweepPoint is one selectivity step: how ALi's query time grows as the
// data of interest approaches the whole repository (the paper's worst
// case, where ALi converges to Ei's load).
type SweepPoint struct {
	Days            int
	FilesOfInterest int
	ALiTime         time.Duration
}

// Sweep is the selectivity experiment.
type Sweep struct {
	Scale      Scale
	EiLoadTime time.Duration
	Points     []SweepPoint
}

// String renders the sweep.
func (s *Sweep) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Selectivity sweep (scale %s): ALi vs data-of-interest size\n", s.Scale.Name)
	fmt.Fprintf(&sb, "  Ei eager load (asymptote): %s\n", s.EiLoadTime.Round(time.Microsecond))
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "  days=%-3d files=%-5d ALi=%12s (%.0f%% of Ei load)\n",
			p.Days, p.FilesOfInterest, p.ALiTime.Round(time.Microsecond),
			100*float64(p.ALiTime)/float64(s.EiLoadTime))
	}
	return sb.String()
}

// sweepQuery widens Query 1's day window to cover k days and all
// stations/channels, growing the files of interest.
func sweepQuery(days int) string {
	end := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, days)
	return fmt.Sprintf(`SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-01T00:00:00.000'
AND R.start_time < '%s'`, end.Format("2006-01-02T15:04:05.000"))
}

// ExperimentSweep measures ALi at growing selectivity against the Ei
// load asymptote.
func ExperimentSweep(baseDir string, sc Scale, daySteps []int) (*Sweep, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	ei, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeEi, SkipIndexes: true})
	if err != nil {
		return nil, err
	}
	rep := ei.Report().Eager
	ei.Close()
	out := &Sweep{Scale: sc, EiLoadTime: rep.LoadWall + rep.LoadIO}

	ali, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	defer ali.Close()
	for _, d := range daySteps {
		if d > sc.Days {
			d = sc.Days
		}
		ali.FlushCold()
		ioBefore := ali.Clock().Elapsed()
		start := time.Now()
		res, err := ali.Query(sweepQuery(d))
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, SweepPoint{
			Days:            d,
			FilesOfInterest: res.Stats.FilesOfInterest,
			ALiTime:         time.Since(start) + ali.Clock().Elapsed() - ioBefore,
		})
	}
	return out, nil
}

// CacheComparison is the cache-granularity ablation: an exploration
// session of overlapping zoom queries under each configuration.
type CacheComparison struct {
	Scale    Scale
	Sessions []CacheSession
}

// CacheSession is one configuration's outcome.
type CacheSession struct {
	Config       string
	FilesMounted int
	BytesRead    int64
	Time         time.Duration
}

// String renders the comparison.
func (c *CacheComparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cache granularity ablation (scale %s): 4-query zoom and pan sessions\n", c.Scale.Name)
	for _, s := range c.Sessions {
		fmt.Fprintf(&sb, "  %-19s mounts=%-3d bytes=%-12s time=%s\n",
			s.Config, s.FilesMounted, FormatBytes(s.BytesRead), s.Time.Round(time.Microsecond))
	}
	return sb.String()
}

// zoomSession is the canonical exploration pattern: a quick look at a
// day, then three successive zoom-ins around an interesting point.
func zoomSession() []string {
	window := func(lo, hi string) string {
		return fmt.Sprintf(`SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, lo, hi)
	}
	return []string{
		window("2010-01-12T22:10:00.000", "2010-01-12T22:40:00.000"),
		window("2010-01-12T22:14:00.000", "2010-01-12T22:20:00.000"),
		window("2010-01-12T22:15:00.000", "2010-01-12T22:16:00.000"),
		window("2010-01-12T22:15:00.000", "2010-01-12T22:15:02.000"),
	}
}

// ExperimentCacheGranularity runs the zoom session under no caching,
// file-granular and tuple-granular caching.
func ExperimentCacheGranularity(baseDir string, sc Scale) (*CacheComparison, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		cfg  cache.Config
	}{
		{"no-cache", cache.Config{Policy: cache.NeverCache}},
		{"file-granular", cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular}},
		{"tuple-granular", cache.Config{Policy: cache.LRU, Granularity: cache.TupleGranular}},
	}
	out := &CacheComparison{Scale: sc}
	sessions := []struct {
		name    string
		queries []string
	}{{"zoom", zoomSession()}, {"pan", panSession()}}
	for _, c := range configs {
		for _, sess := range sessions {
			eng, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi, Cache: c.cfg})
			if err != nil {
				return nil, err
			}
			var mounted int
			var bytes int64
			ioBefore := eng.Clock().Elapsed()
			start := time.Now()
			for _, q := range sess.queries {
				res, err := eng.Query(q)
				if err != nil {
					eng.Close()
					return nil, err
				}
				mounted += res.Stats.Mounts.FilesMounted
				bytes += res.Stats.Mounts.BytesRead
			}
			out.Sessions = append(out.Sessions, CacheSession{
				Config:       c.name + "/" + sess.name,
				FilesMounted: mounted,
				BytesRead:    bytes,
				Time:         time.Since(start) + eng.Clock().Elapsed() - ioBefore,
			})
			eng.Close()
		}
	}
	return out, nil
}

// StrategyComparison is the merge-strategy ablation (paper §3 options
// (a) and (b)).
type StrategyComparison struct {
	Scale    Scale
	Bulk     time.Duration
	PerFile  time.Duration
	BulkVal  float64
	PFVal    float64
	NumFiles int
}

// String renders the comparison.
func (s *StrategyComparison) String() string {
	return fmt.Sprintf(
		"Merge strategy ablation (scale %s, %d files of interest)\n  bulk (a):     %12s\n  per-file (b): %12s\n",
		s.Scale.Name, s.NumFiles, s.Bulk.Round(time.Microsecond), s.PerFile.Round(time.Microsecond))
}

// ExperimentMergeStrategy compares the two second-stage strategies on an
// aggregate touching many files.
func ExperimentMergeStrategy(baseDir string, sc Scale) (*StrategyComparison, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	q := sweepQuery(min(sc.Days, 5))
	out := &StrategyComparison{Scale: sc}
	for _, strat := range []core.MergeStrategy{core.StrategyBulk, core.StrategyPerFile} {
		eng, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi, Strategy: strat})
		if err != nil {
			return nil, err
		}
		meas, err := RunHot(eng, q, 3)
		if err != nil {
			eng.Close()
			return nil, err
		}
		res, err := eng.Query(q)
		if err != nil {
			eng.Close()
			return nil, err
		}
		if strat == core.StrategyBulk {
			out.Bulk = meas.Modeled
			out.BulkVal = res.Float(0, 0)
			out.NumFiles = res.Stats.FilesOfInterest
		} else {
			out.PerFile = meas.Modeled
			out.PFVal = res.Float(0, 0)
		}
		eng.Close()
	}
	return out, nil
}

// DerivedComparison is the derived-metadata ablation (paper §5).
type DerivedComparison struct {
	Scale        Scale
	FirstRun     time.Duration // mounts, derives summaries
	RepeatNoDM   time.Duration // re-mounts everything
	RepeatWithDM time.Duration // answered from summaries
}

// String renders the comparison.
func (d *DerivedComparison) String() string {
	return fmt.Sprintf(
		"Derived metadata ablation (scale %s)\n  first run (mounts+derives): %12s\n  repeat without derived:     %12s\n  repeat with derived:        %12s\n",
		d.Scale.Name, d.FirstRun.Round(time.Microsecond),
		d.RepeatNoDM.Round(time.Microsecond), d.RepeatWithDM.Round(time.Microsecond))
}

// ExperimentDerived measures answering a repeated full-record summary
// query from derived metadata versus re-mounting.
func ExperimentDerived(baseDir string, sc Scale) (*DerivedComparison, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	q := `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'`
	out := &DerivedComparison{Scale: sc}

	with, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi, EnableDerived: true})
	if err != nil {
		return nil, err
	}
	first, err := RunCold(with, q, 1)
	if err != nil {
		with.Close()
		return nil, err
	}
	out.FirstRun = first.Modeled
	repeat, err := RunHot(with, q, 3)
	if err != nil {
		with.Close()
		return nil, err
	}
	out.RepeatWithDM = repeat.Modeled
	with.Close()

	without, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	repeatNo, err := RunHot(without, q, 3)
	if err != nil {
		without.Close()
		return nil, err
	}
	out.RepeatNoDM = repeatNo.Modeled
	without.Close()
	return out, nil
}

// ParallelismPoint is one worker count's cold-ALi measurements.
type ParallelismPoint struct {
	Workers    int
	IngestWall time.Duration // ALi metadata-only load (wall only)
	ColdQ1Wall time.Duration // Query 1 cold (one file of interest)
	WideWall   time.Duration // cold all-days sweep (every file mounted)
	WideValue  float64       // the wide aggregate, for cross-checking
}

// ParallelismSweep shows how the parallel ingestion and mount scheduler
// scale the wall-clock side of cold ALi queries. Query 1's selection
// leaves a single file of interest — the scheduler has nothing to
// overlap and the point serves as an overhead check — while the wide
// query mounts the whole repository, the regime the worker pool is for.
// The modeled disk time is parallelism-independent by construction (the
// same pages are charged), so the sweep reports wall time.
type ParallelismSweep struct {
	Scale  Scale
	Points []ParallelismPoint
}

// String renders the sweep.
func (p *ParallelismSweep) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallelism sweep (scale %s, %d files): cold ALi, wall time\n",
		p.Scale.Name, p.Scale.Files())
	base := time.Duration(0)
	for _, pt := range p.Points {
		if base == 0 {
			base = pt.WideWall
		}
		fmt.Fprintf(&sb, "  workers=%-3d ingest=%-12s coldQ1=%-12s wide=%-12s (wide %s vs 1 worker)\n",
			pt.Workers, pt.IngestWall.Round(time.Microsecond),
			pt.ColdQ1Wall.Round(time.Microsecond),
			pt.WideWall.Round(time.Microsecond), Ratio(base, pt.WideWall))
	}
	return sb.String()
}

// ExperimentParallelism measures metadata ingestion, cold Query 1 and
// the cold all-days sweep at growing worker counts, verifying the wide
// aggregate is identical everywhere.
func ExperimentParallelism(baseDir string, sc Scale, workerSteps []int, runs int) (*ParallelismSweep, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	wideQuery := sweepQuery(sc.Days)
	out := &ParallelismSweep{Scale: sc}
	var wantWide float64
	for _, w := range workerSteps {
		eng, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi, Parallelism: w})
		if err != nil {
			return nil, err
		}
		pt := ParallelismPoint{Workers: w, IngestWall: eng.Report().Wall}
		coldOnce := func(q string) (time.Duration, *core.Result, error) {
			var total time.Duration
			var res *core.Result
			for i := 0; i < runs; i++ {
				eng.FlushCold()
				eng.Cache().Clear()
				start := time.Now()
				res, err = eng.Query(q)
				if err != nil {
					return 0, nil, fmt.Errorf("parallelism %d: %w", w, err)
				}
				total += time.Since(start)
			}
			return total / time.Duration(runs), res, nil
		}
		d, _, err := coldOnce(Query1)
		if err != nil {
			eng.Close()
			return nil, err
		}
		pt.ColdQ1Wall = d
		d, res, err := coldOnce(wideQuery)
		if err != nil {
			eng.Close()
			return nil, err
		}
		pt.WideWall = d
		pt.WideValue = res.Float(0, 0)
		eng.Close()
		if len(out.Points) == 0 {
			wantWide = pt.WideValue
		} else if pt.WideValue != wantWide {
			return nil, fmt.Errorf("parallelism %d: wide aggregate %v differs from %v at %d workers",
				w, pt.WideValue, wantWide, out.Points[0].Workers)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Concurrency reports the single-flight experiment: K clients issuing
// the same cold wide query at once against one engine. Without the
// shared mount service every client would extract every file itself
// (K × files mounts); with it the extractions coalesce to ~one per
// file, and the admission budget keeps peak in-flight bytes flat no
// matter how many clients pile on.
type Concurrency struct {
	Scale        Scale
	K            int
	Files        int
	SeqMounts    int           // K cold runs back-to-back
	ConcMounts   int           // K cold runs at once (total across clients)
	SingleFlight int           // requests served by riding another's flight
	CacheServes  int           // requests served by the entry a flight cached
	SeqWall      time.Duration // the K sequential runs
	ConcWall     time.Duration // the K concurrent runs
	PeakBytes    int64         // peak in-flight extraction bytes
	Value        float64
	Identical    bool // concurrent answers matched the sequential one
}

// String renders the experiment.
func (c *Concurrency) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Concurrent identical cold queries (scale %s, %d files, K=%d clients)\n",
		c.Scale.Name, c.Files, c.K)
	fmt.Fprintf(&sb, "  sequential: %4d file-mounts in %12s (every client pays)\n",
		c.SeqMounts, c.SeqWall.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  concurrent: %4d file-mounts in %12s (single-flight: %d joins, %d cache serves)\n",
		c.ConcMounts, c.ConcWall.Round(time.Microsecond), c.SingleFlight, c.CacheServes)
	fmt.Fprintf(&sb, "  mounts per file: %.2f concurrent vs %.2f sequential; peak in-flight %s; answers identical: %v\n",
		float64(c.ConcMounts)/float64(c.Files), float64(c.SeqMounts)/float64(c.Files),
		FormatBytes(c.PeakBytes), c.Identical)
	return sb.String()
}

// ExperimentConcurrency measures K identical cold wide queries run
// sequentially versus simultaneously against a single ALi engine.
func ExperimentConcurrency(baseDir string, sc Scale, k int) (*Concurrency, error) {
	if k < 2 {
		k = 2
	}
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	eng, err := OpenEngine(m, baseDir, core.Options{
		Mode:  core.ModeALi,
		Cache: cache.Config{Policy: cache.LRU, Granularity: cache.FileGranular},
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	q := sweepQuery(sc.Days)
	out := &Concurrency{Scale: sc, K: k, Files: sc.Files(), Identical: true}

	// Sequential baseline: K cold runs, each paying its own mounts.
	var want float64
	start := time.Now()
	for i := 0; i < k; i++ {
		eng.FlushCold()
		eng.Cache().Clear()
		res, err := eng.Query(q)
		if err != nil {
			return nil, err
		}
		out.SeqMounts += res.Stats.Mounts.FilesMounted
		want = res.Float(0, 0)
	}
	out.SeqWall = time.Since(start)
	out.Value = want

	// Concurrent run: K clients at once, one shared mount service.
	eng.FlushCold()
	eng.Cache().Clear()
	results := make([]*core.Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	start = time.Now()
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			barrier.Wait()
			results[i], errs[i] = eng.Query(q)
		}(i)
	}
	barrier.Done()
	wg.Wait()
	out.ConcWall = time.Since(start)
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		st := results[i].Stats.Mounts
		out.ConcMounts += st.FilesMounted
		out.SingleFlight += st.SingleFlightHits
		out.CacheServes += st.CacheHits
		if results[i].Float(0, 0) != want {
			out.Identical = false
		}
	}
	out.PeakBytes = eng.MountService().Stats().PeakInFlightBytes
	return out, nil
}

// RepoManifest re-exports manifest building for cmd/bench.
func RepoManifest(baseDir string, sc Scale) (*repo.Manifest, error) {
	return BuildRepo(baseDir, sc)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SweepQueryForDays exposes the selectivity-sweep query for external
// benchmarks.
func SweepQueryForDays(days int) string { return sweepQuery(days) }

// ZoomSessionQueries exposes the zoom-in exploration session.
func ZoomSessionQueries() []string { return zoomSession() }

// FullRecordSummaryQuery is a summary query whose selection covers whole
// records, answerable from derived metadata after the first mount.
func FullRecordSummaryQuery() string {
	return `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'`
}

// panSession is the complementary exploration pattern: successive
// sideways pans over the same file. File-granular caching keeps serving
// from memory; tuple-granular caching must remount because each new
// window needs tuples outside the cached span — the paper's "we need to
// mount the whole file even if there is one required tuple missing".
func panSession() []string {
	window := func(lo, hi string) string {
		return fmt.Sprintf(`SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, lo, hi)
	}
	return []string{
		window("2010-01-12T22:15:00.000", "2010-01-12T22:15:02.000"),
		window("2010-01-12T22:15:02.000", "2010-01-12T22:15:04.000"),
		window("2010-01-12T22:15:04.000", "2010-01-12T22:15:06.000"),
		window("2010-01-12T22:15:06.000", "2010-01-12T22:15:08.000"),
	}
}

// PanSessionQueries exposes the panning session.
func PanSessionQueries() []string { return panSession() }
