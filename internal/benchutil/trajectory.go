package benchutil

// Counters is implemented by experiment reports that can summarize
// themselves as the two engine-level counters the benchmark trajectory
// records alongside wall time: total file mounts performed and full
// query executions run. Reports without meaningful counters (structural
// tables, parameter sweeps) simply don't implement it and the
// trajectory records zeros for them.
type Counters interface {
	BenchCounters() (mounts, executions int)
}

// BenchCounters reports both phases of the single-flight experiment:
// every client runs the query once sequentially and once concurrently.
func (c *Concurrency) BenchCounters() (int, int) {
	return c.SeqMounts + c.ConcMounts, 2 * c.K
}

// BenchCounters reports the baseline burst (K full executions) plus the
// cached burst's coalesced executions; the repeat and spelling-variant
// serves mount nothing and execute nothing, so they add no counts.
func (r *ResultCacheExperiment) BenchCounters() (int, int) {
	return r.BaselineMounts + r.Mounts, r.K + r.Executions
}

// BenchCounters reports the contention workload's completed query runs.
// The fairness experiment measures admission waits, not extraction
// volume, so it carries no mount count.
func (f *Fairness) BenchCounters() (int, int) {
	return 0, f.GreedyRuns + f.InteractiveRuns
}
