package benchutil

// Counters is implemented by experiment reports that can summarize
// themselves as the two engine-level counters the benchmark trajectory
// records alongside wall time: total file mounts performed and full
// query executions run. Reports without meaningful counters (structural
// tables, parameter sweeps) simply don't implement it and the
// trajectory records zeros for them.
type Counters interface {
	BenchCounters() (mounts, executions int)
}

// ExtraCounters is implemented by experiment reports carrying
// experiment-specific counters beyond the two engine-level ones —
// result-cache hits, subsumption hits, bytes saved. The trajectory
// records them as a name → value map, so each experiment's BENCH file
// carries the counters that make *its* regressions visible.
type ExtraCounters interface {
	BenchExtra() map[string]int64
}

// BenchCounters reports both phases of the single-flight experiment:
// every client runs the query once sequentially and once concurrently.
func (c *Concurrency) BenchCounters() (int, int) {
	return c.SeqMounts + c.ConcMounts, 2 * c.K
}

// BenchExtra reports the single-flight experiment's coalescing counters.
func (c *Concurrency) BenchExtra() map[string]int64 {
	return map[string]int64{
		"single_flight_hits": int64(c.SingleFlight),
		"cache_serves":       int64(c.CacheServes),
	}
}

// BenchCounters reports the baseline burst (K full executions) plus the
// cached burst's coalesced executions; the repeat and spelling-variant
// serves mount nothing and execute nothing, so they add no counts.
func (r *ResultCacheExperiment) BenchCounters() (int, int) {
	return r.BaselineMounts + r.Mounts, r.K + r.Executions
}

// BenchExtra reports the result-cache experiment's serve counters: rides
// on the in-flight execution, bytes served as CoW shares, and whether
// the repeat and equivalently spelled probes hit the stored entry.
func (r *ResultCacheExperiment) BenchExtra() map[string]int64 {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]int64{
		"result_cache_riders": int64(r.Riders),
		"shared_bytes":        r.SharedBytes,
		"repeat_hit":          b2i(r.RepeatHit),
		"spelling_hit":        b2i(r.SpellingHit),
	}
}

// BenchCounters reports the contention workload's completed query runs.
// The fairness experiment measures admission waits, not extraction
// volume, so it carries no mount count.
func (f *Fairness) BenchCounters() (int, int) {
	return 0, f.GreedyRuns + f.InteractiveRuns
}
