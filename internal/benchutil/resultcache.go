package benchutil

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// ResultCacheExperiment reports the result-cache layer above the mount
// service: K clients issuing the identical cold wide query at once.
// Without the cache every client pays a full Qf+Qs execution (the mount
// service already dedups extraction, but joins, filters and aggregation
// still run K times); with it the executions coalesce query-granularly —
// one client leads, the riders receive O(1) copy-on-write shares of the
// final result and mount nothing at all. A repeat query afterwards and
// an equivalently-spelled variant both serve from the stored entry.
type ResultCacheExperiment struct {
	Scale Scale
	K     int
	Files int

	// Without the result cache (mount service only).
	BaselineMounts int
	BaselineWall   time.Duration

	// With the result cache: the concurrent burst...
	Executions int // full executions (file-mount totals / files)
	Mounts     int // total file mounts across all K clients
	Riders     int // clients served as shares of the in-flight execution
	CacheWall  time.Duration
	// ...then a repeat of the same query and a differently spelled
	// equivalent, both after the burst.
	RepeatHit   bool
	SpellingHit bool
	SharedBytes int64 // bytes served as shares instead of recomputed

	Value     float64
	Identical bool
}

// String renders the experiment.
func (r *ResultCacheExperiment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Result cache (scale %s, %d files, K=%d identical concurrent clients)\n",
		r.Scale.Name, r.Files, r.K)
	fmt.Fprintf(&sb, "  mount service only:  %4d file-mounts, %d full executions in %12s\n",
		r.BaselineMounts, r.K, r.BaselineWall.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  with result cache:   %4d file-mounts, %d full execution(s) in %12s (%d riders served as CoW shares)\n",
		r.Mounts, r.Executions, r.CacheWall.Round(time.Microsecond), r.Riders)
	fmt.Fprintf(&sb, "  afterwards: repeat query hit=%v, equivalent spelling hit=%v, %s served as shares\n",
		r.RepeatHit, r.SpellingHit, FormatBytes(r.SharedBytes))
	fmt.Fprintf(&sb, "  answers identical across every client and serve: %v\n", r.Identical)
	return sb.String()
}

// ExperimentResultCache measures K identical concurrent cold queries
// with and without the engine-wide result cache.
func ExperimentResultCache(baseDir string, sc Scale, k int) (*ResultCacheExperiment, error) {
	if k < 2 {
		k = 2
	}
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	q := SweepQueryForDays(sc.Days)
	out := &ResultCacheExperiment{Scale: sc, K: k, Files: sc.Files(), Identical: true}

	burst := func(eng *core.Engine) ([]*core.Result, time.Duration, error) {
		results := make([]*core.Result, k)
		errs := make([]error, k)
		var start, wg sync.WaitGroup
		start.Add(1)
		t0 := time.Now()
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start.Wait()
				results[i], errs[i] = eng.Query(q)
			}(i)
		}
		start.Done()
		wg.Wait()
		wall := time.Since(t0)
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
		return results, wall, nil
	}

	// Baseline: the mount service dedups extraction, but every client
	// still executes the full pipeline.
	base, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	baseResults, baseWall, err := burst(base)
	base.Close()
	if err != nil {
		return nil, err
	}
	out.BaselineWall = baseWall
	want := baseResults[0].Float(0, 0)
	out.Value = want
	for _, r := range baseResults {
		out.BaselineMounts += r.Stats.Mounts.FilesMounted
		if r.Float(0, 0) != want {
			out.Identical = false
		}
	}

	// With the result cache: one execution, K-1 riders.
	eng, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi, ResultCacheBytes: -1})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	results, wall, err := burst(eng)
	if err != nil {
		return nil, err
	}
	out.CacheWall = wall
	for _, r := range results {
		out.Mounts += r.Stats.Mounts.FilesMounted
		out.SharedBytes += r.Stats.Mounts.ResultCacheBytes
		if r.Stats.ServedFromResultCache {
			out.Riders++
		}
		if r.Float(0, 0) != want {
			out.Identical = false
		}
	}
	if out.Files > 0 {
		out.Executions = out.Mounts / out.Files
	}

	// A later repeat and an equivalently spelled variant both hit the
	// stored entry: zero mounts, O(1) serves.
	repeat, err := eng.Query(q)
	if err != nil {
		return nil, err
	}
	out.RepeatHit = repeat.Stats.ServedFromResultCache && repeat.Stats.Mounts.FilesMounted == 0
	out.SharedBytes += repeat.Stats.Mounts.ResultCacheBytes
	if repeat.Float(0, 0) != want {
		out.Identical = false
	}
	variant, err := eng.Query(equivalentSpelling(q))
	if err != nil {
		return nil, err
	}
	out.SpellingHit = variant.Stats.ServedFromResultCache && variant.Stats.Mounts.FilesMounted == 0
	out.SharedBytes += variant.Stats.Mounts.ResultCacheBytes
	if variant.Float(0, 0) != want {
		out.Identical = false
	}
	if out.Executions != 1 {
		return nil, fmt.Errorf("benchutil: result cache let %d executions through, want 1 (mounts=%d files=%d)",
			out.Executions, out.Mounts, out.Files)
	}
	if !out.Identical {
		return nil, fmt.Errorf("benchutil: result-cache serves diverged from the cold answer")
	}
	return out, nil
}

// equivalentSpelling rewrites the sweep query into a semantically
// identical but syntactically different shape: swapped join order and
// ON sides, plus one comparison flipped around its constant. The
// canonical fingerprint must map it to the same result-cache entry.
func equivalentSpelling(q string) string {
	q = strings.Replace(q,
		"FROM F JOIN R ON F.uri = R.uri\nJOIN D ON R.uri = D.uri AND R.record_id = D.record_id",
		"FROM R JOIN F ON R.uri = F.uri\nJOIN D ON D.record_id = R.record_id AND D.uri = R.uri", 1)
	// Flip "R.start_time > 'X'" to "'X' < R.start_time".
	if i := strings.Index(q, "R.start_time > '"); i >= 0 {
		rest := q[i+len("R.start_time > '"):]
		if j := strings.IndexByte(rest, '\''); j >= 0 {
			lit := rest[:j]
			q = q[:i] + "'" + lit + "' < R.start_time" + rest[j+1:]
		}
	}
	return q
}
