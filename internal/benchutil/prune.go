package benchutil

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// PruneExperiment reports the statistics-free planning experiment: a
// selective workload whose metadata stage proves most files of interest
// irrelevant, run against the Qf-fed planner and against an engine with
// planning off as the correctness and mount baseline.
type PruneExperiment struct {
	Scale Scale

	// Baseline: StatsPlanning off — every file of interest is mounted.
	BaselineMounts int
	BaselineFiles  int // files of interest before pruning
	BaselineWall   time.Duration

	// Measured: planner on.
	Mounts          int
	PrunedFiles     int64
	PrunedRecords   int64
	BytesNotMounted int64
	JoinOrderFlips  int64
	JoinBuildFlips  int64
	AdmissionSaved  int64
	Wall            time.Duration

	// Rows per query, and whether every answer matched the baseline byte
	// for byte.
	Rows      []int
	Identical bool
}

// pruneQueries is the selective workload: the R window spans three
// days, the D window one — so per station/channel two of the three
// files of interest provably contain no qualifying sample. One
// projection (order-sensitive: pruning only) and one aggregate
// (order-insensitive: pruning plus join ordering).
func pruneQueries() []string {
	base := `FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-11T00:00:00.000'
AND R.start_time < '2010-01-13T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000'`
	return []string{
		"SELECT D.sample_time, D.sample_value " + base,
		"SELECT COUNT(*) AS n, MIN(D.sample_time) AS lo, MAX(D.sample_time) AS hi " + base,
	}
}

// ExperimentPrune runs the workload against both engines and enforces
// the planner's contract: strictly fewer mounts with PrunedFiles > 0,
// and every answer byte-identical to the unpruned execution. Violations
// are errors, so CI smoke runs enforce the contract on every commit.
func ExperimentPrune(baseDir string, sc Scale) (*PruneExperiment, error) {
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	out := &PruneExperiment{Scale: sc, Identical: true}
	queries := pruneQueries()

	baseline, err := OpenEngine(m, baseDir, core.Options{
		Mode:          core.ModeALi,
		StatsPlanning: core.StatsPlanningOff,
	})
	if err != nil {
		return nil, err
	}
	defer baseline.Close()
	refs := make([]string, len(queries))
	baseStart := time.Now()
	for i, q := range queries {
		res, err := baseline.Query(q)
		if err != nil {
			return nil, fmt.Errorf("prune: baseline query %d: %w", i+1, err)
		}
		refs[i] = res.Format(0)
		out.BaselineMounts += res.Stats.Mounts.FilesMounted
		out.BaselineFiles += res.Stats.FilesOfInterest
		if res.Stats.Mounts.PrunedFiles != 0 {
			return out, fmt.Errorf("prune: baseline pruned %d files with planning off", res.Stats.Mounts.PrunedFiles)
		}
	}
	out.BaselineWall = time.Since(baseStart)

	eng, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	start := time.Now()
	for i, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			return nil, fmt.Errorf("prune: query %d: %w", i+1, err)
		}
		out.Rows = append(out.Rows, res.Rows())
		if res.Format(0) != refs[i] {
			out.Identical = false
			return out, fmt.Errorf("prune: query %d answer differs from unpruned execution", i+1)
		}
		out.Mounts += res.Stats.Mounts.FilesMounted
	}
	out.Wall = time.Since(start)

	ps := eng.PlannerStats()
	out.PrunedFiles = ps.PrunedFiles
	out.PrunedRecords = ps.PrunedRecords
	out.BytesNotMounted = ps.BytesNotMounted
	out.JoinOrderFlips = ps.JoinOrderFlips
	out.JoinBuildFlips = ps.JoinBuildFlips
	out.AdmissionSaved = ps.AdmissionBytesSaved

	// The planner's contract, enforced.
	if out.PrunedFiles == 0 {
		return out, fmt.Errorf("prune: planner pruned no files on a selective workload")
	}
	if out.Mounts >= out.BaselineMounts {
		return out, fmt.Errorf("prune: %d mounts with planning on, baseline %d — no savings",
			out.Mounts, out.BaselineMounts)
	}
	if out.BytesNotMounted == 0 {
		return out, fmt.Errorf("prune: pruned %d files but BytesNotMounted is zero", out.PrunedFiles)
	}
	return out, nil
}

func (p *PruneExperiment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Statistics-free planning (scale %s): selective 2-query workload, Qf as cardinality oracle\n",
		p.Scale.Name)
	fmt.Fprintf(&sb, "  planning off:  %d files of interest, %d mounts, %v\n",
		p.BaselineFiles, p.BaselineMounts, p.BaselineWall.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  planning on:   %d mounts — %d files (%d records, %s) proved irrelevant before mounting\n",
		p.Mounts, p.PrunedFiles, p.PrunedRecords, FormatBytes(p.BytesNotMounted))
	fmt.Fprintf(&sb, "  join rewrites: %d chain reorders, %d build-side flips; admission charged %s under worst case\n",
		p.JoinOrderFlips, p.JoinBuildFlips, FormatBytes(p.AdmissionSaved))
	rows := make([]string, len(p.Rows))
	for i, r := range p.Rows {
		rows[i] = fmt.Sprintf("%d", r)
	}
	fmt.Fprintf(&sb, "  rows per query: %s; answers byte-identical to unpruned: %v\n",
		strings.Join(rows, ", "), p.Identical)
	fmt.Fprintf(&sb, "  workload wall: %v (baseline %v)\n",
		p.Wall.Round(time.Millisecond), p.BaselineWall.Round(time.Millisecond))
	return sb.String()
}

// BenchCounters implements Counters: mounts across both engines and the
// number of query executions.
func (p *PruneExperiment) BenchCounters() (mounts, executions int) {
	return p.BaselineMounts + p.Mounts, 2 * len(p.Rows)
}

// BenchExtra implements ExtraCounters with the planner trajectory.
func (p *PruneExperiment) BenchExtra() map[string]int64 {
	return map[string]int64{
		"pruned_files":      p.PrunedFiles,
		"pruned_records":    p.PrunedRecords,
		"bytes_not_mounted": p.BytesNotMounted,
		"join_order_flips":  p.JoinOrderFlips,
		"mounts_saved":      int64(p.BaselineMounts - p.Mounts),
	}
}
