// Package benchutil is the experiment harness behind the paper's
// evaluation: dataset scales, the cold/hot measurement protocol of
// Figure 3, and the size accounting of Table 1. It is shared by the
// testing.B benchmarks in the repository root and by cmd/bench.
package benchutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/repo"
	"repro/internal/unit"
)

// Query1 is the paper's Figure 2 verbatim: the short-term-average task.
const Query1 = `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';`

// Query2 has the same FROM clause but retrieves a waveform piece from
// all channels at station ISK (paper §4: data of interest is a lot
// larger than Query 1's).
const Query2 = `SELECT D.sample_time, D.sample_value
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';`

// Scale is a dataset size. The paper uses 5000 files with 175,765
// records and 660 M samples; our scales keep the same per-file shape
// (≈35 records/file, ≈3750 samples/record at full scale) at laptop-
// friendly sizes.
type Scale struct {
	Name             string
	Stations         int // of repo.DefaultStations (max 8)
	Channels         int // of BHE/BHN/BHZ
	Days             int
	RecordsPerFile   int
	SamplesPerRecord int
}

// Files returns the file count of the scale.
func (s Scale) Files() int { return s.Stations * s.Channels * s.Days }

// Samples returns the total sample count.
func (s Scale) Samples() int64 {
	return int64(s.Files()) * int64(s.RecordsPerFile) * int64(s.SamplesPerRecord)
}

// Predefined scales. Tiny is for -short runs, Small the default,
// Medium for the headline numbers in EXPERIMENTS.md.
var (
	Tiny   = Scale{Name: "tiny", Stations: 2, Channels: 2, Days: 13, RecordsPerFile: 4, SamplesPerRecord: 500}
	Small  = Scale{Name: "small", Stations: 4, Channels: 3, Days: 14, RecordsPerFile: 8, SamplesPerRecord: 2000}
	Medium = Scale{Name: "medium", Stations: 8, Channels: 3, Days: 21, RecordsPerFile: 16, SamplesPerRecord: 4000}
)

// ScaleByName resolves a scale name, defaulting to Small.
func ScaleByName(name string) Scale {
	switch name {
	case "tiny":
		return Tiny
	case "medium":
		return Medium
	case "small", "":
		return Small
	}
	return Small
}

// EnvScale reads the REPRO_SCALE environment variable.
func EnvScale() Scale { return ScaleByName(os.Getenv("REPRO_SCALE")) }

// DefaultParallelism, when non-zero, is applied to every engine opened
// through OpenEngine whose options leave Parallelism unset. cmd/bench's
// -parallelism flag and the REPRO_PARALLELISM environment variable
// (read at init) both set it; 0 lets the engine pick GOMAXPROCS.
var DefaultParallelism = envParallelism()

func envParallelism() int {
	n, err := strconv.Atoi(os.Getenv("REPRO_PARALLELISM"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// BuildRepo generates (once) a repository for the scale under baseDir
// and returns its manifest. Repeated calls with the same arguments reuse
// the generated files (generation is deterministic).
func BuildRepo(baseDir string, sc Scale) (*repo.Manifest, error) {
	dir := filepath.Join(baseDir, "repo-"+sc.Name)
	if _, err := os.Stat(dir); err == nil {
		m, err := repo.Scan(dir)
		if err == nil && len(m.Files) == sc.Files() {
			return m, nil
		}
		os.RemoveAll(dir)
	}
	spec := repo.DefaultSpec(dir)
	spec.Stations = spec.Stations[:sc.Stations]
	spec.Channels = spec.Channels[:sc.Channels]
	spec.Days = sc.Days
	spec.RecordsPerFile = sc.RecordsPerFile
	spec.SamplesPerRecord = sc.SamplesPerRecord
	// Place each file's coverage window so the paper's literal
	// 22:15:00-22:15:02 query window falls inside it at every scale: the
	// window end minus three quarters of the coverage duration.
	coverage := time.Duration(float64(sc.RecordsPerFile*sc.SamplesPerRecord) /
		spec.SampleRate * float64(time.Second))
	windowEnd := 22*time.Hour + 15*time.Minute + 2*time.Second
	off := windowEnd - coverage*3/4
	if off < 0 {
		off = 0
	}
	spec.DayOffset = off
	return repo.Generate(spec)
}

// OpenEngine opens a fresh engine over the repository in a new DB dir.
func OpenEngine(m *repo.Manifest, baseDir string, opts core.Options) (*core.Engine, error) {
	dbDir, err := os.MkdirTemp(baseDir, "db-")
	if err != nil {
		return nil, err
	}
	opts.RepoDir = m.Dir
	opts.DBDir = dbDir
	if opts.Parallelism == 0 {
		opts.Parallelism = DefaultParallelism
	}
	return core.Open(opts)
}

// Measurement is one timed query run: wall time plus modeled I/O.
type Measurement struct {
	Wall    time.Duration
	Modeled time.Duration // wall + virtual disk time
	Rows    int
}

// RunCold measures a query under the cold protocol: buffer pool flushed
// (and, for ALi, the ingestion cache cleared) before each of n runs;
// results are averaged — "average execution times of three identical
// runs" (paper §4).
func RunCold(e *core.Engine, query string, n int) (Measurement, error) {
	var total Measurement
	for i := 0; i < n; i++ {
		e.FlushCold()
		e.Cache().Clear()
		m, err := runOnce(e, query)
		if err != nil {
			return Measurement{}, err
		}
		total.Wall += m.Wall
		total.Modeled += m.Modeled
		total.Rows = m.Rows
	}
	total.Wall /= time.Duration(n)
	total.Modeled /= time.Duration(n)
	return total, nil
}

// RunHot measures a query under the hot protocol: one warm-up run, then
// n measured runs with all buffers pre-loaded.
func RunHot(e *core.Engine, query string, n int) (Measurement, error) {
	if _, err := runOnce(e, query); err != nil {
		return Measurement{}, err
	}
	var total Measurement
	for i := 0; i < n; i++ {
		m, err := runOnce(e, query)
		if err != nil {
			return Measurement{}, err
		}
		total.Wall += m.Wall
		total.Modeled += m.Modeled
		total.Rows = m.Rows
	}
	total.Wall /= time.Duration(n)
	total.Modeled /= time.Duration(n)
	return total, nil
}

func runOnce(e *core.Engine, query string) (Measurement, error) {
	ioBefore := e.Clock().Elapsed()
	start := time.Now()
	res, err := e.Query(query)
	if err != nil {
		return Measurement{}, err
	}
	wall := time.Since(start)
	return Measurement{
		Wall:    wall,
		Modeled: wall + (e.Clock().Elapsed() - ioBefore),
		Rows:    res.Rows(),
	}, nil
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string { return unit.FormatBytes(n) }

// Ratio renders a "/" ratio guarding against division by zero.
func Ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}
