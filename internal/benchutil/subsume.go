package benchutil

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
)

// SubsumeExperiment reports the semantic-cache (predicate subsumption)
// experiment: a zooming exploration session whose every query after the
// first nests inside its predecessor, against an engine probing the
// result cache's subsumption index, with a cold no-cache engine as the
// correctness and mount baseline.
type SubsumeExperiment struct {
	Scale Scale
	Steps int

	// Baseline: every query of the session executed cold (no caches).
	BaselineMounts int
	BaselineWall   time.Duration

	// Subsumption engine: the first query's mounts, then the warm rest.
	FirstMounts int
	WarmMounts  int

	SubsumptionHits int64
	BytesSaved      int64
	RefilterWall    time.Duration
	Wall            time.Duration

	// Rows per zoom step, and whether every answer matched the baseline
	// byte for byte.
	Rows      []int
	Identical bool
}

// zoomWindows builds n strictly nested [lo, hi) windows around the
// repository's guaranteed-data window: the first spans half an hour, the
// last is the paper's literal 22:15:00–22:15:02 slice (inside every
// file's coverage at every scale — see BuildRepo).
func zoomWindows(n int) [][2]string {
	day := time.Date(2010, 1, 12, 0, 0, 0, 0, time.UTC)
	loStart := 22*time.Hour + 10*time.Minute
	loEnd := 22*time.Hour + 15*time.Minute
	hiStart := 22*time.Hour + 40*time.Minute
	hiEnd := 22*time.Hour + 15*time.Minute + 2*time.Second
	const format = "2006-01-02T15:04:05.000"
	out := make([][2]string, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		lo := loStart + time.Duration(frac*float64(loEnd-loStart))
		hi := hiStart - time.Duration(frac*float64(hiStart-hiEnd))
		out[i] = [2]string{day.Add(lo).Format(format), day.Add(hi).Format(format)}
	}
	return out
}

// zoomQuery is the session's projection query: a waveform window from
// one station. No aggregate, so the plan stays subsumption-eligible.
func zoomQuery(w [2]string) string {
	return fmt.Sprintf(`SELECT D.sample_time, D.sample_value
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, w[0], w[1])
}

// ExperimentSubsume drives a steps-query zooming explore session against
// an engine with semantic result caching on, asserting the semantic-
// cache contract: after the first (widest) query executes and its result
// is retained, every narrower query is answered by re-filtering a wider
// frozen entry — zero file mounts, SubsumptionHits >= steps-1 — with
// every answer byte-identical to a cold execution. Violations are
// errors, so CI smoke runs enforce the contract on every commit.
func ExperimentSubsume(baseDir string, sc Scale, steps int) (*SubsumeExperiment, error) {
	if steps < 2 {
		return nil, fmt.Errorf("subsume: need at least 2 zoom steps, got %d", steps)
	}
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	windows := zoomWindows(steps)
	out := &SubsumeExperiment{Scale: sc, Steps: steps, Identical: true}

	// Baseline: every zoom step cold, no caches — what the session costs
	// without semantic caching, and the byte-identicality reference.
	baseline, err := OpenEngine(m, baseDir, core.Options{Mode: core.ModeALi})
	if err != nil {
		return nil, err
	}
	defer baseline.Close()
	refs := make([]string, steps)
	baseStart := time.Now()
	for i, w := range windows {
		res, err := baseline.Query(zoomQuery(w))
		if err != nil {
			return nil, fmt.Errorf("subsume: baseline step %d: %w", i+1, err)
		}
		refs[i] = res.Format(0)
		out.BaselineMounts += res.Stats.Mounts.FilesMounted
	}
	out.BaselineWall = time.Since(baseStart)

	// The measured engine: result cache with subsumption probing.
	eng, err := OpenEngine(m, baseDir, core.Options{
		Mode:                   core.ModeALi,
		ResultCacheBytes:       -1,
		ResultCacheSubsumption: true,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	// A zooming exploration session: Stage1 → breakpoint decision →
	// Proceed, the paper's interactive flow, logged step by step.
	session := explore.NewSession(nil)
	start := time.Now()
	for i, w := range windows {
		q := zoomQuery(w)
		qStart := time.Now()
		p, err := eng.Prepare(q)
		if err != nil {
			return nil, err
		}
		bp, err := p.Stage1()
		if err != nil {
			return nil, fmt.Errorf("subsume: step %d stage 1: %w", i+1, err)
		}
		if session.Decide(bp.Est) != explore.Proceed {
			return nil, fmt.Errorf("subsume: step %d aborted at breakpoint", i+1)
		}
		res := bp.Result()
		if !bp.Done() {
			if res, err = bp.Proceed(); err != nil {
				return nil, fmt.Errorf("subsume: step %d stage 2: %w", i+1, err)
			}
		}
		session.Log(explore.Record{
			SQL: q, At: qStart, Estimate: bp.Est, Decision: explore.Proceed,
			Rows: res.Rows(), Wall: time.Since(qStart),
		})
		out.Rows = append(out.Rows, res.Rows())
		if res.Format(0) != refs[i] {
			out.Identical = false
			return out, fmt.Errorf("subsume: step %d answer differs from cold execution", i+1)
		}
		mounts := res.Stats.Mounts.FilesMounted
		if i == 0 {
			out.FirstMounts = mounts
			if res.Stats.ServedBySubsumption {
				return out, fmt.Errorf("subsume: the widest query claims a subsumption serve")
			}
			continue
		}
		out.WarmMounts += mounts
		// The semantic-cache contract: nested queries re-filter in memory.
		if !res.Stats.ServedBySubsumption {
			return out, fmt.Errorf("subsume: step %d not served by subsumption", i+1)
		}
		if mounts != 0 {
			return out, fmt.Errorf("subsume: step %d mounted %d files on a subsumption serve", i+1, mounts)
		}
	}
	out.Wall = time.Since(start)
	if last := out.Rows[len(out.Rows)-1]; last == 0 {
		return out, fmt.Errorf("subsume: innermost window returned no rows")
	}

	st := eng.ResultCache().Stats()
	out.SubsumptionHits = st.SubsumptionHits
	out.BytesSaved = st.SubsumptionBytesSaved
	out.RefilterWall = st.RefilterWall
	if out.SubsumptionHits < int64(steps-1) {
		return out, fmt.Errorf("subsume: %d subsumption hits for %d nested queries", out.SubsumptionHits, steps-1)
	}
	return out, nil
}

func (s *SubsumeExperiment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Semantic cache (scale %s): %d-step zoom session, each window nested in the last\n",
		s.Scale.Name, s.Steps)
	fmt.Fprintf(&sb, "  cold baseline:     %d mounts, %v for the whole session\n",
		s.BaselineMounts, s.BaselineWall.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  with subsumption:  %d mounts on the first query, %d after — every later step\n",
		s.FirstMounts, s.WarmMounts)
	fmt.Fprintf(&sb, "                     re-filters a wider frozen entry in memory (%v total)\n",
		s.RefilterWall.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  subsumption hits:  %d (bytes whose re-execution was avoided: %s)\n",
		s.SubsumptionHits, FormatBytes(s.BytesSaved))
	rows := make([]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = fmt.Sprintf("%d", r)
	}
	fmt.Fprintf(&sb, "  rows per step:     %s; answers byte-identical to cold: %v\n",
		strings.Join(rows, " → "), s.Identical)
	fmt.Fprintf(&sb, "  session wall:      %v (baseline %v)\n",
		s.Wall.Round(time.Millisecond), s.BaselineWall.Round(time.Millisecond))
	return sb.String()
}

// BenchCounters implements Counters: total mounts across baseline and
// measured sessions, and full executions (baseline steps + the one cold
// execution the measured session pays).
func (s *SubsumeExperiment) BenchCounters() (mounts, executions int) {
	return s.BaselineMounts + s.FirstMounts + s.WarmMounts, s.Steps + 1
}

// BenchExtra implements ExtraCounters with the experiment-specific
// trajectory counters.
func (s *SubsumeExperiment) BenchExtra() map[string]int64 {
	return map[string]int64{
		"subsumption_hits": s.SubsumptionHits,
		"bytes_saved":      s.BytesSaved,
		"mounts_saved":     int64(s.BaselineMounts - s.FirstMounts - s.WarmMounts),
		"refilter_us":      s.RefilterWall.Microseconds(),
	}
}
