package benchutil

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Fairness reports the per-session admission experiment: one greedy
// bulk session loops a query that mounts most of the repository while K
// interactive sessions repeatedly run the paper's Query 1 against a
// deliberately small mount budget. Under the old Broadcast gate the
// bulk session's stream of mount requests could leapfrog and starve
// interactive waiters without bound; the FIFO gate plus the per-session
// quota keeps every interactive admission wait bounded, which the
// experiment asserts on the p95.
type Fairness struct {
	Scale       Scale
	Interactive int     // K interactive sessions
	QuotaShare  float64 // MountMaxSessionShare
	BudgetBytes int64
	// MaxFileBytes is the largest repository file: the only legitimate
	// way a session's held bytes can exceed its quota (oversized-alone).
	MaxFileBytes int64

	GreedyRuns        int           // bulk queries completed
	InteractiveRuns   int           // interactive queries completed
	WaitP50, WaitP95  time.Duration // interactive admission waits
	WaitMax           time.Duration
	Bound             time.Duration // p95 must stay under this
	GreedyPeakHeld    int64         // peak budget bytes held by the bulk session
	GreedyQuotaBlocks int64         // times the bulk session was passed over at its quota
	StarvationAvoided int64         // FIFO/quota fairness interventions
	Identical         bool          // every interactive answer matched
}

// String renders the experiment.
func (f *Fairness) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fairness under admission pressure (scale %s): 1 greedy bulk vs %d interactive sessions\n",
		f.Scale.Name, f.Interactive)
	fmt.Fprintf(&sb, "  budget %s, per-session share %.2f (quota %s)\n",
		FormatBytes(f.BudgetBytes), f.QuotaShare, FormatBytes(int64(f.QuotaShare*float64(f.BudgetBytes))))
	fmt.Fprintf(&sb, "  greedy: %d bulk runs, peak held %s, %d quota blocks\n",
		f.GreedyRuns, FormatBytes(f.GreedyPeakHeld), f.GreedyQuotaBlocks)
	fmt.Fprintf(&sb, "  interactive: %d runs; admission wait p50=%s p95=%s max=%s (bound %s)\n",
		f.InteractiveRuns,
		f.WaitP50.Round(time.Microsecond), f.WaitP95.Round(time.Microsecond),
		f.WaitMax.Round(time.Microsecond), f.Bound)
	fmt.Fprintf(&sb, "  starvation-avoided interventions: %d; answers identical: %v\n",
		f.StarvationAvoided, f.Identical)
	return sb.String()
}

// greedyBulkQuery aggregates over every file whose records start before
// Jan 12 — disjoint from Query 1's day-12 file, so the interactive
// sessions always lead their own flights (their admission waits are
// their own, never absorbed into a greedy flight they joined).
func greedyBulkQuery() string {
	return `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE R.start_time > '2010-01-01T00:00:00.000'
AND R.start_time < '2010-01-12T00:00:00.000'`
}

// ExperimentFairness runs the greedy-vs-interactive contention workload
// and asserts the interactive p95 admission wait stays bounded. sessions
// is the number of interactive sessions (>= 1); quota is the per-session
// budget share in (0, 1].
func ExperimentFairness(baseDir string, sc Scale, sessions int, quota float64) (*Fairness, error) {
	if sessions < 1 {
		return nil, fmt.Errorf("benchutil: fairness needs >= 1 interactive session, got %d", sessions)
	}
	if quota <= 0 || quota > 1 {
		return nil, fmt.Errorf("benchutil: fairness quota must be in (0, 1], got %v", quota)
	}
	m, err := BuildRepo(baseDir, sc)
	if err != nil {
		return nil, err
	}
	// A budget of ~3 average files forces real contention: the bulk
	// query alone would happily hold everything. Parallelism is pinned
	// above the budget so the bulk session always has more mount
	// requests in hand than the gate will admit — the starvation regime
	// the experiment exists to measure — independent of the host's CPU
	// count.
	avg := m.Bytes / int64(len(m.Files))
	budget := 3 * avg
	var maxFile int64
	for _, f := range m.Files {
		if f.SizeBytes > maxFile {
			maxFile = f.SizeBytes
		}
	}
	eng, err := OpenEngine(m, baseDir, core.Options{
		Mode:                 core.ModeALi,
		MountBudgetBytes:     budget,
		MountMaxSessionShare: quota,
		Parallelism:          4,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	out := &Fairness{
		Scale: sc, Interactive: sessions, QuotaShare: quota,
		BudgetBytes: budget, MaxFileBytes: maxFile,
		Bound: 2 * time.Second, Identical: true,
	}

	// Reference answer, before any contention.
	ref, err := eng.Query(Query1)
	if err != nil {
		return nil, err
	}
	want := ref.Float(0, 0)

	// The greedy bulk session loops until the interactive sessions are
	// done (at least one full run). One root context is shared by every
	// session goroutine: the experiment is its own entry point, so there
	// is no caller context to thread.
	ctx := context.Background() //lint:allow ctxcheck the experiment is a process entry point; sessions are stopped via the stop channel, not cancellation
	stop := make(chan struct{})
	greedyDone := make(chan error, 1)
	var greedyRuns atomic.Int64
	go func() {
		for {
			if _, err := eng.QueryAs(ctx, "greedy", greedyBulkQuery()); err != nil {
				greedyDone <- err
				return
			}
			greedyRuns.Add(1)
			select {
			case <-stop:
				greedyDone <- nil
				return
			default:
			}
		}
	}()

	// Interactive sessions: each measures its own per-query admission
	// wait as the delta of its session's WaitTotal (the session runs
	// its queries sequentially, so the delta is exactly this query's).
	const runsPerSession = 6
	waitOf := func(session string) time.Duration {
		return eng.MountService().Stats().PerSession[session].WaitTotal
	}
	var mu sync.Mutex
	var waits []time.Duration
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	time.Sleep(20 * time.Millisecond) // let the bulk session saturate the budget
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("interactive-%d", i)
			for r := 0; r < runsPerSession; r++ {
				before := waitOf(session)
				res, err := eng.QueryAs(ctx, session, Query1)
				if err != nil {
					errs[i] = err
					return
				}
				d := waitOf(session) - before
				mu.Lock()
				waits = append(waits, d)
				if res.Float(0, 0) != want {
					out.Identical = false
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	if err := <-greedyDone; err != nil {
		return nil, fmt.Errorf("benchutil: greedy bulk session: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("benchutil: interactive session: %w", err)
		}
	}

	sort.Slice(waits, func(a, b int) bool { return waits[a] < waits[b] })
	pct := func(p float64) time.Duration {
		if len(waits) == 0 {
			return 0
		}
		i := int(p*float64(len(waits))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(waits) {
			i = len(waits) - 1
		}
		return waits[i]
	}
	out.GreedyRuns = int(greedyRuns.Load())
	out.InteractiveRuns = len(waits)
	out.WaitP50, out.WaitP95 = pct(0.50), pct(0.95)
	out.WaitMax = waits[len(waits)-1]
	st := eng.MountService().Stats()
	out.GreedyPeakHeld = st.PerSession["greedy"].PeakHeldBytes
	out.GreedyQuotaBlocks = st.PerSession["greedy"].QuotaBlocked
	out.StarvationAvoided = st.StarvationAvoided

	if !out.Identical {
		return nil, fmt.Errorf("benchutil: fairness: interactive answers diverged under contention")
	}
	if out.WaitP95 > out.Bound {
		return nil, fmt.Errorf("benchutil: fairness: interactive p95 admission wait %v exceeds bound %v (starvation)",
			out.WaitP95, out.Bound)
	}
	return out, nil
}
