package benchutil

import (
	"testing"
	"time"

	"repro/internal/core"
)

// These tests run the paper's experiments at tiny scale and assert the
// SHAPES the reproduction claims (EXPERIMENTS.md), so a regression in
// any headline result fails the test suite, not just the benchmarks.

func TestScaleSelection(t *testing.T) {
	if ScaleByName("tiny").Name != "tiny" || ScaleByName("medium").Name != "medium" {
		t.Error("named scales wrong")
	}
	if ScaleByName("").Name != "small" || ScaleByName("bogus").Name != "small" {
		t.Error("default scale wrong")
	}
	if Tiny.Files() != 2*2*13 || Tiny.Samples() != int64(Tiny.Files()*4*500) {
		t.Error("scale arithmetic wrong")
	}
}

func TestBuildRepoIsCached(t *testing.T) {
	dir := t.TempDir()
	m1, err := BuildRepo(dir, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildRepo(dir, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Bytes != m2.Bytes || len(m1.Files) != len(m2.Files) {
		t.Error("cached rebuild differs")
	}
}

func TestTable1Shape(t *testing.T) {
	t1, err := ExperimentTable1(t.TempDir(), Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: column store much larger than the compressed repo;
	// indexes a sizable fraction of the store; metadata-only footprint
	// orders of magnitude below the eager footprint.
	if t1.DBBytes < 5*t1.MSEEDBytes {
		t.Errorf("column store %d not ≫ repository %d", t1.DBBytes, t1.MSEEDBytes)
	}
	if t1.KeyBytes < t1.DBBytes/2 || t1.KeyBytes > t1.DBBytes {
		t.Errorf("index bytes %d out of the paper's ~0.7x store band (store %d)", t1.KeyBytes, t1.DBBytes)
	}
	if t1.ALiBytes*100 > t1.DBBytes+t1.KeyBytes {
		t.Errorf("metadata footprint %d not orders of magnitude below eager %d",
			t1.ALiBytes, t1.DBBytes+t1.KeyBytes)
	}
	if t1.FRecords != int64(Tiny.Files()) || t1.DRecords != Tiny.Samples() {
		t.Error("row counts wrong")
	}
	if t1.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFigure3Shape(t *testing.T) {
	f3, err := ExperimentFigure3(t.TempDir(), Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(f3.Cells))
	}
	for _, q := range []string{"Q1", "Q2"} {
		coldEi, _ := f3.Get(q, "cold", "Ei")
		coldALi, _ := f3.Get(q, "cold", "ALi")
		// Cold: ALi definitely outperforms Ei (paper Figure 3).
		if coldALi.Time >= coldEi.Time {
			t.Errorf("%s cold: ALi %v not faster than Ei %v", q, coldALi.Time, coldEi.Time)
		}
		hotEi, _ := f3.Get(q, "hot", "Ei")
		hotALi, _ := f3.Get(q, "hot", "ALi")
		// Hot: both must be far below their cold runs.
		if hotALi.Time*2 >= coldALi.Time || hotEi.Time*2 >= coldEi.Time {
			t.Errorf("%s hot runs not clearly below cold", q)
		}
	}
	// Query answers must not depend on the mode.
	a1, _ := f3.Get("Q1", "hot", "ALi")
	e1, _ := f3.Get("Q1", "hot", "Ei")
	if a1.Rows != e1.Rows {
		t.Errorf("Q1 rows differ across modes: %d vs %d", a1.Rows, e1.Rows)
	}
	if f3.String() == "" {
		t.Error("empty rendering")
	}
}

func TestIngestionShape(t *testing.T) {
	g, err := ExperimentIngestion(t.TempDir(), Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if g.ALiTime <= 0 || g.EiLoadTime <= 0 || g.EiIndexTime <= 0 {
		t.Fatalf("times missing: %+v", g)
	}
	// The data-to-insight gap: Ei total clearly above ALi.
	if g.UpFrontRatio < 1.5 {
		t.Errorf("up-front ratio = %.2f, want well above 1", g.UpFrontRatio)
	}
}

func TestSweepShape(t *testing.T) {
	s, err := ExperimentSweep(t.TempDir(), Tiny, []int{1, 4, 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// ALi time grows with the data of interest and the widest query
	// approaches (but does not exceed by much) the Ei load asymptote.
	if s.Points[0].ALiTime >= s.Points[2].ALiTime {
		t.Error("sweep not increasing with selectivity")
	}
	if s.Points[2].FilesOfInterest != Tiny.Files() {
		t.Errorf("widest query touches %d files, want all %d",
			s.Points[2].FilesOfInterest, Tiny.Files())
	}
	if s.Points[2].ALiTime > s.EiLoadTime*3/2 {
		t.Errorf("worst case %v far exceeds the Ei-load asymptote %v",
			s.Points[2].ALiTime, s.EiLoadTime)
	}
}

func TestCacheGranularityShape(t *testing.T) {
	c, err := ExperimentCacheGranularity(t.TempDir(), Tiny)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) CacheSession {
		for _, s := range c.Sessions {
			if s.Config == name {
				return s
			}
		}
		t.Fatalf("session %s missing", name)
		return CacheSession{}
	}
	// Zooming in: both granularities mount once; no cache mounts per query.
	if get("no-cache/zoom").FilesMounted != 4 {
		t.Error("no-cache zoom should mount 4 times")
	}
	if get("file-granular/zoom").FilesMounted != 1 || get("tuple-granular/zoom").FilesMounted != 1 {
		t.Error("caches should mount once while zooming in")
	}
	// Panning: tuple granularity must keep remounting, file must not.
	if get("file-granular/pan").FilesMounted != 1 {
		t.Error("file-granular pan should mount once")
	}
	if get("tuple-granular/pan").FilesMounted != 4 {
		t.Error("tuple-granular pan should remount per query (paper's trade-off)")
	}
}

func TestMergeStrategyShape(t *testing.T) {
	s, err := ExperimentMergeStrategy(t.TempDir(), Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bulk <= 0 || s.PerFile <= 0 || s.NumFiles == 0 {
		t.Fatalf("incomplete: %+v", s)
	}
	// Strategies must agree on the answer.
	if diff := s.BulkVal - s.PFVal; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("strategies disagree: %v vs %v", s.BulkVal, s.PFVal)
	}
}

func TestDerivedShape(t *testing.T) {
	d, err := ExperimentDerived(t.TempDir(), Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Derived metadata must beat re-mounting on the repeat query.
	if d.RepeatWithDM >= d.RepeatNoDM {
		t.Errorf("derived repeat %v not faster than mounting repeat %v",
			d.RepeatWithDM, d.RepeatNoDM)
	}
	if d.FirstRun < d.RepeatWithDM {
		t.Error("first run should dominate the derived repeat")
	}
}

func TestMeasurementProtocols(t *testing.T) {
	m, err := BuildRepo(t.TempDir(), Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := OpenEngine(m, t.TempDir(), engineOptsALi())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cold, err := RunCold(e, Query1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := RunHot(e, Query1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Modeled <= hot.Modeled {
		t.Errorf("cold %v not above hot %v", cold.Modeled, hot.Modeled)
	}
	if cold.Modeled < cold.Wall {
		t.Error("modeled time must include wall time")
	}
}

func TestFormatHelpers(t *testing.T) {
	for in, want := range map[int64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	} {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if Ratio(10*time.Second, 0) != "inf" {
		t.Error("zero-division ratio")
	}
	if Ratio(3*time.Second, 2*time.Second) != "1.5x" {
		t.Error("ratio formatting")
	}
}

func engineOptsALi() core.Options { return core.Options{Mode: core.ModeALi} }

func TestFairnessShape(t *testing.T) {
	f, err := ExperimentFairness(t.TempDir(), Tiny, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f.InteractiveRuns != 3*6 {
		t.Errorf("interactive runs = %d, want 18", f.InteractiveRuns)
	}
	if f.GreedyRuns < 1 {
		t.Error("greedy bulk session never completed a run")
	}
	if !f.Identical {
		t.Error("interactive answers diverged under contention")
	}
	// The experiment's own bound is the headline assertion; it returning
	// without error means p95 stayed bounded. Pin it explicitly anyway.
	if f.WaitP95 > f.Bound {
		t.Errorf("interactive p95 wait %v exceeds bound %v", f.WaitP95, f.Bound)
	}
	// The quota must actually bite: the greedy session can never hold
	// more than its share — except a single file larger than the quota,
	// which the gate admits alone.
	ceiling := int64(f.QuotaShare * float64(f.BudgetBytes))
	if f.MaxFileBytes > ceiling {
		ceiling = f.MaxFileBytes
	}
	if f.GreedyPeakHeld > ceiling {
		t.Errorf("greedy peak held %d exceeds its quota ceiling %d", f.GreedyPeakHeld, ceiling)
	}
	// Bad parameters are errors, mirroring cmd/bench's flag validation.
	if _, err := ExperimentFairness(t.TempDir(), Tiny, 0, 0.5); err == nil {
		t.Error("sessions=0 accepted")
	}
	if _, err := ExperimentFairness(t.TempDir(), Tiny, 2, 1.5); err == nil {
		t.Error("quota=1.5 accepted")
	}
}
