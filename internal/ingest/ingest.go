// Package ingest implements the two ingestion approaches the paper
// compares:
//
//   - Metadata-only loading (the ALi side): only record headers are read;
//     the metadata tables F and R are populated and the actual-data table
//     D stays empty. Actual data enters the system later, per query,
//     through the mount access path.
//
//   - Eager ingestion (Ei): the entire repository is extracted,
//     decompressed and loaded up-front, followed by primary- and
//     foreign-key index construction — which the paper measures at about
//     four times the load time itself.
package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/par"
	"repro/internal/storage"
	"repro/internal/vector"
)

// normWorkers resolves a worker count: <= 0 means one worker per
// available CPU.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// MetadataResult summarizes a metadata-only load.
type MetadataResult struct {
	Files       int
	Records     int64
	Wall        time.Duration
	ModeledIO   time.Duration
	BytesStored int64
}

// EagerResult summarizes a full eager load.
type EagerResult struct {
	Meta       MetadataResult
	DataRows   int64
	LoadWall   time.Duration
	LoadIO     time.Duration
	IndexWall  time.Duration
	IndexIO    time.Duration
	IndexBytes int64
	Indexes    []exec.IndexInfo
	DataBytes  int64 // column bytes of all tables, without indexes
	RepoBytes  int64 // original compressed repository bytes
}

// EnsureTables creates the adapter's three tables if missing and
// registers them in the catalog.
func EnsureTables(store *storage.Store, cat *catalog.Catalog, ad catalog.FormatAdapter) error {
	fileDef, recDef, dataDef := ad.Tables()
	for _, def := range []catalog.TableDef{fileDef, recDef, dataDef} {
		if _, ok := store.Table(def.Name); !ok {
			if _, err := store.Create(def.Name, def.Columns); err != nil {
				return err
			}
		}
		if _, ok := cat.Table(def.Name); !ok {
			if err := cat.Define(def); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadMetadata extracts only metadata from every repository file into the
// adapter's file- and record-level tables, using one extraction worker
// per available CPU. It charges the modeled cost of reading the headers
// (one seek per file plus the header bytes).
func LoadMetadata(store *storage.Store, ad catalog.FormatAdapter, repoDir string, uris []string) (MetadataResult, error) {
	return LoadMetadataParallel(store, ad, repoDir, uris, 0)
}

// fileMeta is one file's extracted metadata, produced by a worker.
type fileMeta struct {
	fm  catalog.FileMeta
	rms []catalog.RecordMeta
}

// LoadMetadataParallel is LoadMetadata with an explicit worker count
// (<= 0 selects one worker per CPU). Extraction and the modeled header
// reads fan out across workers; rows are appended in file order, so the
// stored tables are byte-identical at every parallelism level.
func LoadMetadataParallel(store *storage.Store, ad catalog.FormatAdapter, repoDir string, uris []string, workers int) (MetadataResult, error) {
	start := time.Now()
	pool := store.Pool()
	var ioStart time.Duration
	if pool.Clock() != nil {
		ioStart = pool.Clock().Elapsed()
	}
	fileDef, recDef, _ := ad.Tables()
	fileTbl, ok := store.Table(fileDef.Name)
	if !ok {
		return MetadataResult{}, fmt.Errorf("ingest: table %s missing (call EnsureTables)", fileDef.Name)
	}
	recTbl, ok := store.Table(recDef.Name)
	if !ok {
		return MetadataResult{}, fmt.Errorf("ingest: table %s missing", recDef.Name)
	}
	fApp, err := fileTbl.NewAppender()
	if err != nil {
		return MetadataResult{}, err
	}
	rApp, err := recTbl.NewAppender()
	if err != nil {
		return MetadataResult{}, err
	}

	res := MetadataResult{}
	fileRows := newRowBuffer(fileDef)
	recRows := newRowBuffer(recDef)
	err = par.ForEachOrdered(len(uris), normWorkers(workers),
		func(i int) (fileMeta, error) {
			path := filepath.Join(repoDir, uris[i])
			fm, rms, err := ad.ExtractMetadata(path, uris[i])
			if err != nil {
				return fileMeta{}, err
			}
			// Modeled cost: one seek, then the header bytes of every record
			// (payloads are skipped, not transferred).
			pool.Model().ChargeRead(pool.Clock(), 1, false)
			return fileMeta{fm: fm, rms: rms}, nil
		},
		func(_ int, f fileMeta) error {
			fileRows.add(f.fm.Values)
			for _, rm := range f.rms {
				recRows.add(rm.Values)
			}
			res.Files++
			res.Records += int64(len(f.rms))
			if fileRows.rows >= 4096 {
				if err := fileRows.flush(fApp); err != nil {
					return err
				}
			}
			if recRows.rows >= 4096 {
				if err := recRows.flush(rApp); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return res, err
	}
	if err := fileRows.flush(fApp); err != nil {
		return res, err
	}
	if err := recRows.flush(rApp); err != nil {
		return res, err
	}
	if err := fApp.Close(); err != nil {
		return res, err
	}
	if err := rApp.Close(); err != nil {
		return res, err
	}
	res.Wall = time.Since(start)
	if pool.Clock() != nil {
		res.ModeledIO = pool.Clock().Elapsed() - ioStart
	}
	res.BytesStored = fileTbl.SizeOnDisk() + recTbl.SizeOnDisk()
	return res, nil
}

// LoadEager performs the Ei ingestion: metadata plus all actual data,
// followed (when buildIndexes is set) by primary- and foreign-key index
// construction. Extraction runs on one worker per available CPU.
func LoadEager(store *storage.Store, ad catalog.FormatAdapter, repoDir string, uris []string, buildIndexes bool) (EagerResult, error) {
	return LoadEagerParallel(store, ad, repoDir, uris, buildIndexes, 0)
}

// mountedFile is one file's extracted actual data, produced by a worker.
type mountedFile struct {
	batch *vector.Batch
	size  int64
}

// LoadEagerParallel is LoadEager with an explicit worker count (<= 0
// selects one worker per CPU). Per-file extract/decompress runs in
// workers; batches are appended to the data table in file order, so
// stored columns and dictionaries are identical at every parallelism
// level.
func LoadEagerParallel(store *storage.Store, ad catalog.FormatAdapter, repoDir string, uris []string, buildIndexes bool, workers int) (EagerResult, error) {
	out := EagerResult{}
	pool := store.Pool()
	clockAt := func() time.Duration {
		if pool.Clock() == nil {
			return 0
		}
		return pool.Clock().Elapsed()
	}

	loadStart := time.Now()
	ioStart := clockAt()
	meta, err := LoadMetadataParallel(store, ad, repoDir, uris, workers)
	if err != nil {
		return out, err
	}
	out.Meta = meta

	_, _, dataDef := ad.Tables()
	dataTbl, ok := store.Table(dataDef.Name)
	if !ok {
		return out, fmt.Errorf("ingest: table %s missing", dataDef.Name)
	}
	dApp, err := dataTbl.NewAppender()
	if err != nil {
		return out, err
	}
	err = par.ForEachOrdered(len(uris), normWorkers(workers),
		func(i int) (mountedFile, error) {
			path := filepath.Join(repoDir, uris[i])
			st, err := os.Stat(path)
			if err != nil {
				return mountedFile{}, err
			}
			// Model reading the full compressed file through the page cache.
			f, err := os.Open(path)
			if err != nil {
				return mountedFile{}, fmt.Errorf("ingest: load %s: %w", uris[i], err)
			}
			touchErr := pool.Touch(path, f, st.Size())
			f.Close()
			if touchErr != nil {
				return mountedFile{}, touchErr
			}
			batch, err := ad.Mount(path, uris[i], nil)
			if err != nil {
				return mountedFile{}, err
			}
			return mountedFile{batch: batch, size: st.Size()}, nil
		},
		func(_ int, mf mountedFile) error {
			out.RepoBytes += mf.size
			if err := dApp.Append(mf.batch); err != nil {
				return err
			}
			out.DataRows += int64(mf.batch.Len())
			return nil
		})
	if err != nil {
		return out, err
	}
	if err := dApp.Close(); err != nil {
		return out, err
	}
	out.LoadWall = time.Since(loadStart)
	out.LoadIO = clockAt() - ioStart
	out.DataBytes = store.SizeOnDisk()

	if buildIndexes {
		idxStart := time.Now()
		idxIOStart := clockAt()
		indexes, bytes, err := BuildKeyIndexes(store, ad)
		if err != nil {
			return out, err
		}
		out.Indexes = indexes
		out.IndexBytes = bytes
		out.IndexWall = time.Since(idxStart)
		out.IndexIO = clockAt() - idxIOStart
	}
	return out, nil
}

// BuildKeyIndexes constructs the primary- and foreign-key indexes the Ei
// baseline queries with: PK(F.uri), PK(R.uri, R.record_id) and
// FK(D.uri, D.record_id). Key columns are indexed by dictionary code for
// strings and by value otherwise. Primary keys are validated unique.
func BuildKeyIndexes(store *storage.Store, ad catalog.FormatAdapter) ([]exec.IndexInfo, int64, error) {
	fileDef, recDef, dataDef := ad.Tables()
	uriCol := ad.URIColumn()
	ridCol := ad.RecordIDColumn()

	specs := []struct {
		table   string
		keys    []string
		primary bool
	}{
		{table: fileDef.Name, keys: []string{uriCol}, primary: true},
		{table: recDef.Name, keys: []string{uriCol, ridCol}, primary: true},
		{table: dataDef.Name, keys: []string{uriCol, ridCol}, primary: false},
	}

	idxDir := filepath.Join(store.Dir(), "_indexes")
	if err := os.MkdirAll(idxDir, 0o755); err != nil {
		return nil, 0, err
	}
	var infos []exec.IndexInfo
	var totalBytes int64
	for _, spec := range specs {
		tbl, ok := store.Table(spec.table)
		if !ok {
			return nil, 0, fmt.Errorf("ingest: index build over missing table %s", spec.table)
		}
		entries, err := keyEntries(tbl, spec.keys)
		if err != nil {
			return nil, 0, err
		}
		name := spec.table
		for _, k := range spec.keys {
			name += "_" + k
		}
		ix, err := index.Build(filepath.Join(idxDir, name+".idx"), store.Pool(), entries)
		if err != nil {
			return nil, 0, err
		}
		if spec.primary {
			unique, err := ix.Unique()
			if err != nil {
				return nil, 0, err
			}
			if !unique {
				return nil, 0, fmt.Errorf("ingest: primary key of %s(%v) is not unique", spec.table, spec.keys)
			}
		}
		totalBytes += ix.SizeOnDisk()
		infos = append(infos, exec.IndexInfo{Index: ix, TableName: spec.table, KeyColumns: spec.keys})
	}
	return infos, totalBytes, nil
}

// keyEntries reads the key columns of a table and produces index entries.
func keyEntries(tbl *storage.Table, keys []string) ([]index.Entry, error) {
	if len(keys) == 0 || len(keys) > 2 {
		return nil, fmt.Errorf("ingest: index needs 1 or 2 key columns")
	}
	colIdx := make([]int, len(keys))
	for i, k := range keys {
		colIdx[i] = tbl.ColumnIndex(k)
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("ingest: table %s lacks key column %s", tbl.Name(), k)
		}
	}
	rows := tbl.Rows()
	entries := make([]index.Entry, 0, rows)
	const chunk = 1 << 16
	for lo := int64(0); lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		batch, err := tbl.ReadBatch(colIdx, lo, hi)
		if err != nil {
			return nil, err
		}
		n := batch.Len()
		for r := 0; r < n; r++ {
			e := index.Entry{RowID: lo + int64(r)}
			for i := range keys {
				v := batch.Cols[i].Get(r)
				var k int64
				switch v.Kind {
				case vector.KindString:
					dict := tbl.Dict(colIdx[i])
					code, ok := dict.CodeIfPresent(v.S)
					if !ok {
						return nil, fmt.Errorf("ingest: string %q not in dictionary of %s.%s",
							v.S, tbl.Name(), keys[i])
					}
					k = code
				default:
					k = v.AsInt()
				}
				if i == 0 {
					e.A = k
				} else {
					e.B = k
				}
			}
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// rowBuffer accumulates value rows into column vectors for batched
// appends. The buffer relies on the copy-on-write ownership contract:
// storage.Appender.Append only reads the batch it is handed, so reset
// truncates the vectors in place and reuses their storage for the next
// batch instead of reallocating — Vector.Reset detaches (without
// copying) only if someone unexpectedly still shares the storage.
type rowBuffer struct {
	def  catalog.TableDef
	cols []*vector.Vector
	rows int
}

func newRowBuffer(def catalog.TableDef) *rowBuffer {
	b := &rowBuffer{def: def}
	b.cols = make([]*vector.Vector, len(b.def.Columns))
	for i, c := range b.def.Columns {
		b.cols[i] = vector.New(c.Kind, 4096)
	}
	return b
}

func (b *rowBuffer) reset() {
	for _, c := range b.cols {
		c.Reset()
	}
	b.rows = 0
}

func (b *rowBuffer) add(values []vector.Value) {
	for i, v := range values {
		b.cols[i].AppendValue(v)
	}
	b.rows++
}

func (b *rowBuffer) flush(app *storage.Appender) error {
	if b.rows == 0 {
		return nil
	}
	if err := app.Append(vector.NewBatch(b.cols...)); err != nil {
		return err
	}
	b.reset()
	return nil
}
