package ingest

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/repo"
	"repro/internal/seismic"
	"repro/internal/storage"
)

func genRepo(t *testing.T) (*repo.Manifest, repo.Spec) {
	t.Helper()
	spec := repo.DefaultSpec(t.TempDir())
	spec.Stations = spec.Stations[:2]
	spec.Channels = spec.Channels[:2]
	spec.Days = 2
	spec.RecordsPerFile = 3
	spec.SamplesPerRecord = 500
	m, err := repo.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m, spec
}

func newStore(t *testing.T) (*storage.Store, *catalog.Catalog, *storage.Clock) {
	t.Helper()
	clock := &storage.Clock{}
	pool := storage.NewBufferPool(1024, storage.HDD7200(), clock)
	store, err := storage.Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	cat := catalog.New()
	if err := EnsureTables(store, cat, seismic.NewAdapter()); err != nil {
		t.Fatal(err)
	}
	return store, cat, clock
}

func uris(m *repo.Manifest) []string {
	out := make([]string, len(m.Files))
	for i, f := range m.Files {
		out[i] = f.URI
	}
	return out
}

func TestEnsureTablesIdempotent(t *testing.T) {
	store, cat, _ := newStore(t)
	if err := EnsureTables(store, cat, seismic.NewAdapter()); err != nil {
		t.Fatal(err)
	}
	if !cat.IsMetadata("F") || !cat.IsMetadata("R") || cat.IsMetadata("D") {
		t.Error("catalog kinds wrong")
	}
	if len(store.Tables()) != 3 {
		t.Errorf("tables = %v", store.Tables())
	}
}

func TestLoadMetadataOnly(t *testing.T) {
	m, spec := genRepo(t)
	store, _, _ := newStore(t)
	res, err := LoadMetadata(store, seismic.NewAdapter(), m.Dir, uris(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != len(m.Files) {
		t.Errorf("files = %d, want %d", res.Files, len(m.Files))
	}
	if res.Records != m.Records {
		t.Errorf("records = %d, want %d", res.Records, m.Records)
	}
	fTbl := store.MustTable("F")
	rTbl := store.MustTable("R")
	dTbl := store.MustTable("D")
	if fTbl.Rows() != int64(len(m.Files)) || rTbl.Rows() != m.Records {
		t.Error("metadata tables wrong row counts")
	}
	if dTbl.Rows() != 0 {
		t.Error("metadata-only load populated D")
	}
	// Metadata footprint must be far below repository size.
	if res.BytesStored*5 > m.Bytes {
		t.Errorf("metadata %d bytes vs repo %d: not small", res.BytesStored, m.Bytes)
	}
	_ = spec
}

func TestLoadEagerPopulatesEverything(t *testing.T) {
	m, spec := genRepo(t)
	store, _, _ := newStore(t)
	res, err := LoadEager(store, seismic.NewAdapter(), m.Dir, uris(m), true)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := int64(len(m.Files) * spec.RecordsPerFile * spec.SamplesPerRecord)
	if res.DataRows != wantRows {
		t.Errorf("data rows = %d, want %d", res.DataRows, wantRows)
	}
	if store.MustTable("D").Rows() != wantRows {
		t.Error("D rows wrong")
	}
	if len(res.Indexes) != 3 {
		t.Fatalf("indexes = %d, want 3", len(res.Indexes))
	}
	if res.IndexBytes == 0 {
		t.Error("index bytes not reported")
	}
	// Decompressed DB must exceed the compressed repository (the paper's
	// Table 1: 13 GB from 1.3 GB).
	if res.DataBytes <= res.RepoBytes {
		t.Errorf("DB %d bytes should exceed repo %d bytes", res.DataBytes, res.RepoBytes)
	}
	for _, ix := range res.Indexes {
		ix.Index.Close()
	}
}

func TestEagerIndexLookupFindsRows(t *testing.T) {
	m, spec := genRepo(t)
	store, _, _ := newStore(t)
	res, err := LoadEager(store, seismic.NewAdapter(), m.Dir, uris(m), true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ix := range res.Indexes {
			ix.Index.Close()
		}
	}()
	// The D FK index: look up (first uri, record 1).
	var dIdx *int
	for i, ix := range res.Indexes {
		if ix.TableName == "D" {
			dIdx = &i
			break
		}
	}
	if dIdx == nil {
		t.Fatal("no D index")
	}
	dTbl := store.MustTable("D")
	dict := dTbl.Dict(dTbl.ColumnIndex("uri"))
	code, ok := dict.CodeIfPresent(m.Files[0].URI)
	if !ok {
		t.Fatal("uri not in dictionary")
	}
	rows, err := res.Indexes[*dIdx].Index.Lookup(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != spec.SamplesPerRecord {
		t.Errorf("index lookup found %d rows, want %d", len(rows), spec.SamplesPerRecord)
	}
}

func TestLoadChargesIO(t *testing.T) {
	m, _ := genRepo(t)
	store, _, clock := newStore(t)
	clock.Reset()
	if _, err := LoadMetadata(store, seismic.NewAdapter(), m.Dir, uris(m)); err != nil {
		t.Fatal(err)
	}
	metaIO := clock.Elapsed()
	if metaIO == 0 {
		t.Error("metadata load charged no I/O")
	}

	store2, _, clock2 := newStore(t)
	clock2.Reset()
	if _, err := LoadEager(store2, seismic.NewAdapter(), m.Dir, uris(m), false); err != nil {
		t.Fatal(err)
	}
	eagerIO := clock2.Elapsed()
	if eagerIO <= metaIO {
		t.Errorf("eager I/O %v should exceed metadata-only %v", eagerIO, metaIO)
	}
}

func TestLoadMetadataMissingTable(t *testing.T) {
	m, _ := genRepo(t)
	pool := storage.NewBufferPool(64, storage.NoCost(), nil)
	store, err := storage.Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := LoadMetadata(store, seismic.NewAdapter(), m.Dir, uris(m)); err == nil {
		t.Error("load without EnsureTables should fail")
	}
}

func TestKeyEntriesValidation(t *testing.T) {
	store, _, _ := newStore(t)
	tbl := store.MustTable("F")
	if _, err := keyEntries(tbl, nil); err == nil {
		t.Error("empty key list accepted")
	}
	if _, err := keyEntries(tbl, []string{"a", "b", "c"}); err == nil {
		t.Error("three keys accepted")
	}
	if _, err := keyEntries(tbl, []string{"nonexistent"}); err == nil {
		t.Error("missing column accepted")
	}
}
