package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/repo"
	"repro/internal/seismic"
	"repro/internal/storage"
	"repro/internal/vector"
)

// loadWith runs a metadata or eager load at the given worker count into
// a fresh store and returns it.
func loadWith(t *testing.T, m *repo.Manifest, workers int, eager bool) *storage.Store {
	t.Helper()
	store, _, _ := newStore(t)
	ad := seismic.NewAdapter()
	if eager {
		res, err := LoadEagerParallel(store, ad, m.Dir, uris(m), true, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range res.Indexes {
			ix.Index.Close()
		}
	} else {
		if _, err := LoadMetadataParallel(store, ad, m.Dir, uris(m), workers); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// assertTablesEqual compares the full contents of every shared table,
// value by value — parallel loads must be indistinguishable from the
// sequential ones.
func assertTablesEqual(t *testing.T, a, b *storage.Store) {
	t.Helper()
	for _, name := range a.Tables() {
		ta := a.MustTable(name)
		tb := b.MustTable(name)
		if ta.Rows() != tb.Rows() {
			t.Fatalf("table %s: %d rows (sequential) vs %d (parallel)", name, ta.Rows(), tb.Rows())
		}
		cols := make([]int, len(ta.Columns()))
		for i := range cols {
			cols[i] = i
		}
		ba, err := ta.ReadBatch(cols, 0, ta.Rows())
		if err != nil {
			t.Fatal(err)
		}
		bb, err := tb.ReadBatch(cols, 0, tb.Rows())
		if err != nil {
			t.Fatal(err)
		}
		for c := range ba.Cols {
			for r := 0; r < ba.Len(); r++ {
				va, vb := ba.Cols[c].Get(r), bb.Cols[c].Get(r)
				if vector.Compare(va, vb) != 0 {
					t.Fatalf("table %s col %d row %d: %v (sequential) vs %v (parallel)",
						name, c, r, va, vb)
				}
			}
		}
	}
}

func TestLoadMetadataParallelDeterministic(t *testing.T) {
	m, _ := genRepo(t)
	seq := loadWith(t, m, 1, false)
	for _, workers := range []int{2, 8} {
		par := loadWith(t, m, workers, false)
		assertTablesEqual(t, seq, par)
	}
}

func TestLoadEagerParallelDeterministic(t *testing.T) {
	m, _ := genRepo(t)
	seq := loadWith(t, m, 1, true)
	for _, workers := range []int{2, 8} {
		par := loadWith(t, m, workers, true)
		assertTablesEqual(t, seq, par)
	}
}

// TestLoadEagerParallelModeledCost asserts the virtual I/O charge is
// worker-count independent: the same pages are pulled through the pool
// whatever the schedule.
func TestLoadEagerParallelModeledCost(t *testing.T) {
	m, _ := genRepo(t)
	costs := make(map[int]int64)
	for _, workers := range []int{1, 4} {
		store, _, clock := newStore(t)
		if _, err := LoadEagerParallel(store, seismic.NewAdapter(), m.Dir, uris(m), false, workers); err != nil {
			t.Fatal(err)
		}
		costs[workers] = int64(clock.Elapsed())
	}
	if costs[1] != costs[4] {
		t.Errorf("modeled cost differs: 1 worker = %d ns, 4 workers = %d ns", costs[1], costs[4])
	}
}

// TestLoadParallelPropagatesErrors removes one repository file mid-list
// and checks both loaders surface the failure instead of hanging or
// panicking.
func TestLoadParallelPropagatesErrors(t *testing.T) {
	m, _ := genRepo(t)
	us := uris(m)
	if err := os.Remove(filepath.Join(m.Dir, us[len(us)/2])); err != nil {
		t.Fatal(err)
	}
	ad := seismic.NewAdapter()

	store1, _, _ := newStore(t)
	if _, err := LoadMetadataParallel(store1, ad, m.Dir, us, 8); err == nil {
		t.Error("metadata load of missing file: want error, got nil")
	}
	store2, _, _ := newStore(t)
	if _, err := LoadEagerParallel(store2, ad, m.Dir, us, false, 8); err == nil {
		t.Error("eager load of missing file: want error, got nil")
	}
}
