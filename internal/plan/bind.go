package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/vector"
)

// Bind converts a parsed SELECT into a logical plan against the catalog.
// The produced plan is bound (expression column indexes resolved); any
// later structural rewrite must call Resolve to re-bind.
func Bind(stmt *sql.SelectStmt, cat *catalog.Catalog) (Node, error) {
	b := &binder{cat: cat}
	return b.bindSelect(stmt)
}

type binder struct {
	cat *catalog.Catalog
}

func (b *binder) bindSelect(stmt *sql.SelectStmt) (Node, error) {
	// FROM and JOINs: left-deep tree in syntactic order.
	seen := make(map[string]bool)
	mkScan := func(ref sql.TableRef) (*Scan, error) {
		def, ok := b.cat.Table(ref.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %s", ref.Name)
		}
		binding := ref.Binding()
		if seen[binding] {
			return nil, fmt.Errorf("plan: duplicate table binding %s", binding)
		}
		seen[binding] = true
		return &Scan{TableName: ref.Name, Binding: binding, Def: def}, nil
	}

	root, err := mkScan(stmt.From)
	if err != nil {
		return nil, err
	}
	var tree Node = root
	for _, j := range stmt.Joins {
		right, err := mkScan(j.Table)
		if err != nil {
			return nil, err
		}
		joined, err := b.bindJoin(tree, right, j.On)
		if err != nil {
			return nil, err
		}
		tree = joined
	}

	// WHERE.
	if stmt.Where != nil {
		pred, err := b.bindExpr(stmt.Where, tree.Schema())
		if err != nil {
			return nil, err
		}
		if pred.Kind() != vector.KindBool {
			return nil, fmt.Errorf("plan: WHERE must be boolean, got %s", pred.Kind())
		}
		tree = &Select{Pred: pred, Child: tree}
	}

	// Aggregation or plain projection.
	hasAgg := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if !item.Star {
			if _, ok := findAggCall(item.E); ok {
				hasAgg = true
			}
		}
	}
	var projected Node
	var outNames []string
	if hasAgg {
		projected, outNames, err = b.bindAggregate(stmt, tree)
	} else {
		projected, outNames, err = b.bindProjection(stmt, tree)
	}
	if err != nil {
		return nil, err
	}

	// ORDER BY over the projected output.
	if len(stmt.OrderBy) > 0 {
		keys := make([]SortKey, len(stmt.OrderBy))
		outSchema := projected.Schema()
		for i, item := range stmt.OrderBy {
			idx, err := resolveOrderKey(item.E, outSchema, outNames)
			if err != nil {
				return nil, err
			}
			keys[i] = SortKey{Index: idx, Desc: item.Desc}
		}
		projected = &Sort{Keys: keys, Child: projected}
	}
	if stmt.Limit != nil {
		projected = &Limit{N: *stmt.Limit, Child: projected}
	}
	return projected, nil
}

// bindJoin builds an equi-join from an ON condition, separating equality
// conjuncts that span the two sides (join keys) from residual predicates.
func (b *binder) bindJoin(left, right Node, on sql.Expr) (Node, error) {
	combined := append(append([]ColInfo{}, left.Schema()...), right.Schema()...)
	pred, err := b.bindExpr(on, combined)
	if err != nil {
		return nil, err
	}
	nLeft := len(left.Schema())
	var leftKeys, rightKeys []string
	var residual []expr.Expr
	for _, conj := range expr.SplitAnd(pred) {
		cmp, ok := conj.(*expr.Compare)
		if ok && cmp.Op == expr.Eq {
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok {
				switch {
				case lc.Index < nLeft && rc.Index >= nLeft:
					leftKeys = append(leftKeys, lc.Name)
					rightKeys = append(rightKeys, rc.Name)
					continue
				case rc.Index < nLeft && lc.Index >= nLeft:
					leftKeys = append(leftKeys, rc.Name)
					rightKeys = append(rightKeys, lc.Name)
					continue
				}
			}
		}
		residual = append(residual, conj)
	}
	var out Node = &Join{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys}
	if len(residual) > 0 {
		out = &Select{Pred: expr.JoinAnd(residual), Child: out}
	}
	return out, nil
}

func (b *binder) bindProjection(stmt *sql.SelectStmt, child Node) (Node, []string, error) {
	schema := child.Schema()
	var exprs []expr.Expr
	var names []string
	for _, item := range stmt.Items {
		if item.Star {
			for i, c := range schema {
				exprs = append(exprs, &expr.Col{Index: i, Name: c.Qualified(), K: c.Kind})
				names = append(names, c.Name)
			}
			continue
		}
		e, err := b.bindExpr(item.E, schema)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, outputName(item))
	}
	return &Project{Exprs: exprs, Names: names, Child: child}, names, nil
}

func (b *binder) bindAggregate(stmt *sql.SelectStmt, child Node) (Node, []string, error) {
	schema := child.Schema()

	// Group-by keys must be column references.
	var groupBy []string
	groupAST := make(map[string]string) // canonical AST text -> qualified name
	for _, g := range stmt.GroupBy {
		id, ok := g.(*sql.Ident)
		if !ok {
			return nil, nil, fmt.Errorf("plan: GROUP BY supports column references, got %s", g)
		}
		bound, err := b.bindExpr(id, schema)
		if err != nil {
			return nil, nil, err
		}
		col := bound.(*expr.Col)
		groupBy = append(groupBy, col.Name)
		groupAST[g.String()] = col.Name
	}

	var aggs []AggSpec
	type outRef struct {
		name  string // column to project from aggregate output
		alias string // output name
	}
	var outs []outRef
	for _, item := range stmt.Items {
		if item.Star {
			return nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with aggregation")
		}
		if call, ok := findAggCall(item.E); ok {
			if item.E != sql.Expr(call) {
				return nil, nil, fmt.Errorf("plan: expressions over aggregates are not supported: %s", item.E)
			}
			fn, _ := aggFunc(call.Name)
			spec := AggSpec{Func: fn, Distinct: call.Distinct}
			if call.Star {
				if fn != AggCount {
					return nil, nil, fmt.Errorf("plan: %s(*) is not valid", call.Name)
				}
			} else {
				if len(call.Args) != 1 {
					return nil, nil, fmt.Errorf("plan: %s takes one argument", call.Name)
				}
				arg, err := b.bindExpr(call.Args[0], schema)
				if err != nil {
					return nil, nil, err
				}
				if fn != AggCount && fn != AggMin && fn != AggMax && !arg.Kind().Numeric() &&
					arg.Kind() != vector.KindTime {
					return nil, nil, fmt.Errorf("plan: %s over non-numeric %s", call.Name, arg.Kind())
				}
				spec.Arg = arg
			}
			spec.Name = outputName(item)
			aggs = append(aggs, spec)
			outs = append(outs, outRef{name: spec.Name, alias: spec.Name})
			continue
		}
		// Non-aggregate item must be a group-by key.
		qname, ok := groupAST[item.E.String()]
		if !ok {
			return nil, nil, fmt.Errorf("plan: %s must appear in GROUP BY or inside an aggregate", item.E)
		}
		outs = append(outs, outRef{name: qname, alias: outputName(item)})
	}

	agg := &Aggregate{GroupBy: groupBy, Aggs: aggs, Child: child}
	aggSchema := agg.Schema()
	var exprs []expr.Expr
	var names []string
	for _, o := range outs {
		idx := FindColumn(aggSchema, o.name)
		if idx < 0 {
			return nil, nil, fmt.Errorf("plan: internal: aggregate output %s not found", o.name)
		}
		exprs = append(exprs, &expr.Col{Index: idx, Name: aggSchema[idx].Qualified(), K: aggSchema[idx].Kind})
		names = append(names, o.alias)
	}
	return &Project{Exprs: exprs, Names: names, Child: agg}, names, nil
}

// outputName picks the display name of a select item.
func outputName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.E.(*sql.Ident); ok {
		return id.Name
	}
	return item.E.String()
}

// resolveOrderKey resolves an ORDER BY expression to an output column:
// by ordinal, by alias, or by (qualified) column name.
func resolveOrderKey(e sql.Expr, outSchema []ColInfo, names []string) (int, error) {
	switch t := e.(type) {
	case *sql.Lit:
		if t.Kind == sql.LitInt {
			if t.Int < 1 || int(t.Int) > len(outSchema) {
				return 0, fmt.Errorf("plan: ORDER BY position %d out of range", t.Int)
			}
			return int(t.Int - 1), nil
		}
	case *sql.Ident:
		// Output columns of a projection carry bare names, so a qualified
		// ORDER BY key (F.channel) must also match by its bare part.
		for i, n := range names {
			if n == t.Name {
				return i, nil
			}
		}
		if idx := FindColumn(outSchema, t.String()); idx >= 0 {
			return idx, nil
		}
		if idx := FindColumn(outSchema, t.Name); idx >= 0 {
			return idx, nil
		}
	}
	return 0, fmt.Errorf("plan: cannot resolve ORDER BY key %s", e)
}

// aggFunc maps a function name to an aggregate.
func aggFunc(name string) (AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	}
	return 0, false
}

// findAggCall returns the top-level aggregate call inside e, if any.
func findAggCall(e sql.Expr) (*sql.Call, bool) {
	call, ok := e.(*sql.Call)
	if !ok {
		return nil, false
	}
	if _, ok := aggFunc(call.Name); !ok {
		return nil, false
	}
	return call, true
}

// bindExpr binds a SQL expression against a schema, producing a typed
// executable expression. String literals compared with TIMESTAMP columns
// are coerced to timestamps here.
func (b *binder) bindExpr(e sql.Expr, schema []ColInfo) (expr.Expr, error) {
	switch t := e.(type) {
	case *sql.Ident:
		idx := FindColumn(schema, t.String())
		if idx < 0 {
			if t.Qualifier == "" && countByName(schema, t.Name) > 1 {
				return nil, fmt.Errorf("plan: ambiguous column %s", t.Name)
			}
			return nil, fmt.Errorf("plan: unknown column %s", t)
		}
		c := schema[idx]
		return &expr.Col{Index: idx, Name: c.Qualified(), K: c.Kind}, nil
	case *sql.Lit:
		switch t.Kind {
		case sql.LitInt:
			return &expr.Const{Val: vector.Int64(t.Int)}, nil
		case sql.LitFloat:
			return &expr.Const{Val: vector.Float64(t.Float)}, nil
		case sql.LitBool:
			return &expr.Const{Val: vector.Bool(t.Bool)}, nil
		default:
			return &expr.Const{Val: vector.Str(t.Str)}, nil
		}
	case *sql.Unary:
		inner, err := b.bindExpr(t.E, schema)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			if inner.Kind() != vector.KindBool {
				return nil, fmt.Errorf("plan: NOT over %s", inner.Kind())
			}
			return &expr.Not{E: inner}, nil
		}
		return &expr.Arith{Op: expr.Sub, L: &expr.Const{Val: vector.Int64(0)}, R: inner}, nil
	case *sql.Binary:
		switch t.Op {
		case "AND", "OR":
			l, err := b.bindExpr(t.L, schema)
			if err != nil {
				return nil, err
			}
			r, err := b.bindExpr(t.R, schema)
			if err != nil {
				return nil, err
			}
			op := expr.OpAnd
			if t.Op == "OR" {
				op = expr.OpOr
			}
			return &expr.Logic{Op: op, L: l, R: r}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			l, err := b.bindExpr(t.L, schema)
			if err != nil {
				return nil, err
			}
			r, err := b.bindExpr(t.R, schema)
			if err != nil {
				return nil, err
			}
			l, r, err = coerceTime(l, r)
			if err != nil {
				return nil, err
			}
			var op expr.CmpOp
			switch t.Op {
			case "=":
				op = expr.Eq
			case "<>":
				op = expr.Ne
			case "<":
				op = expr.Lt
			case "<=":
				op = expr.Le
			case ">":
				op = expr.Gt
			case ">=":
				op = expr.Ge
			}
			return &expr.Compare{Op: op, L: l, R: r}, nil
		case "+", "-", "*", "/":
			l, err := b.bindExpr(t.L, schema)
			if err != nil {
				return nil, err
			}
			r, err := b.bindExpr(t.R, schema)
			if err != nil {
				return nil, err
			}
			var op expr.ArithOp
			switch t.Op {
			case "+":
				op = expr.Add
			case "-":
				op = expr.Sub
			case "*":
				op = expr.Mul
			case "/":
				op = expr.Div
			}
			return &expr.Arith{Op: op, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("plan: unsupported operator %s", t.Op)
		}
	case *sql.Call:
		return nil, fmt.Errorf("plan: function %s not allowed here (aggregates only appear in SELECT items)", t.Name)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// coerceTime converts a string constant compared with a TIMESTAMP column
// into a timestamp constant (the paper's queries write time literals as
// strings).
func coerceTime(l, r expr.Expr) (expr.Expr, expr.Expr, error) {
	fix := func(timeSide, strSide expr.Expr) (expr.Expr, error) {
		c, ok := strSide.(*expr.Const)
		if !ok || c.Val.Kind != vector.KindString {
			return strSide, nil
		}
		ns, err := vector.ParseTime(c.Val.S)
		if err != nil {
			return nil, fmt.Errorf("plan: comparing %s with TIMESTAMP: %w", c.String(), err)
		}
		return &expr.Const{Val: vector.Time(ns)}, nil
	}
	var err error
	if l.Kind() == vector.KindTime && r.Kind() == vector.KindString {
		r, err = fix(l, r)
	} else if r.Kind() == vector.KindTime && l.Kind() == vector.KindString {
		l, err = fix(r, l)
	}
	return l, r, err
}

func countByName(schema []ColInfo, name string) int {
	n := 0
	for _, c := range schema {
		if c.Name == name {
			n++
		}
	}
	return n
}
