package plan

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// Decomposition is the result of splitting Q = Qf ⋈ Qs: the metadata
// branch Qf (to be executed in the first stage), and the full plan with
// the Qf subtree replaced by a ResultScan (Qs, to be executed in the
// second stage after the run-time optimization phase).
type Decomposition struct {
	// Qf is the metadata branch: the highest subtree whose leaves are all
	// metadata-table scans.
	Qf Node
	// Qs is the rest of the query with Qf replaced by ResultScan(Name).
	Qs Node
	// Name is the result-scan identifier binding the two stages.
	Name string
	// MetadataOnly is true when the whole query is Qf: the first stage
	// answers it and no actual data is ever ingested.
	MetadataOnly bool
}

// Decompose splits an optimized plan into Q = Qf ⋈ Qs per section 3 of
// the paper. It returns ok=false if the plan references no metadata
// table at all (then there is nothing to run in the first stage and the
// caller treats every file as potentially of interest).
func Decompose(root Node, cat *catalog.Catalog, name string) (Decomposition, bool) {
	if isMetadataOnly(root, cat) {
		return Decomposition{Qf: root, Qs: nil, Name: name, MetadataOnly: true}, true
	}
	qf := findQf(root, cat)
	if qf == nil {
		return Decomposition{}, false
	}
	rs := &ResultScan{Name: name, Cols: qf.Schema()}
	qs := replaceSubtree(root, qf, rs)
	return Decomposition{Qf: qf, Qs: qs, Name: name}, true
}

// findQf locates the highest branch whose leaves are all metadata scans.
func findQf(n Node, cat *catalog.Catalog) Node {
	if isMetadataOnly(n, cat) {
		return n
	}
	for _, c := range n.Children() {
		if qf := findQf(c, cat); qf != nil {
			return qf
		}
	}
	return nil
}

// replaceSubtree swaps the subtree identical to target (pointer
// equality) with replacement.
func replaceSubtree(root, target, replacement Node) Node {
	if root == target {
		return replacement
	}
	children := root.Children()
	if len(children) == 0 {
		return root
	}
	newChildren := make([]Node, len(children))
	changed := false
	for i, c := range children {
		newChildren[i] = replaceSubtree(c, target, replacement)
		if newChildren[i] != c {
			changed = true
		}
	}
	if !changed {
		return root
	}
	return root.withChildren(newChildren)
}

// ActualScanInfo describes one actual-data scan found in Qs that rewrite
// rule (1) will expand.
type ActualScanInfo struct {
	Binding   string
	TableName string
	Def       catalog.TableDef
	// Pred is the selection sitting immediately above the scan (σp3), if
	// any; rule (1) pushes it into each mount/cache-scan.
	Pred expr.Expr
}

// FindActualScans lists the actual-data scans remaining in a plan.
func FindActualScans(root Node, cat *catalog.Catalog) []ActualScanInfo {
	var out []ActualScanInfo
	seen := make(map[string]bool)
	var walk func(n Node, preds []expr.Expr)
	walk = func(n Node, preds []expr.Expr) {
		switch t := n.(type) {
		case *Select:
			walk(t.Child, append(preds, t.Pred))
			return
		case *Scan:
			if t.Def.Kind == catalog.ActualData && !seen[t.Binding] {
				seen[t.Binding] = true
				out = append(out, ActualScanInfo{
					Binding: t.Binding, TableName: t.TableName, Def: t.Def,
					Pred: expr.JoinAnd(preds),
				})
			}
			return
		}
		for _, c := range n.Children() {
			walk(c, nil)
		}
	}
	walk(root, nil)
	return out
}

// MountSpec tells ApplyRule1 how to access one file of interest: from
// the cache (f ∈ C) or by mounting it.
type MountSpec struct {
	URI    string
	Cached bool
	// EstBytes is the statistics-free planner's estimate of the bytes
	// mounting this file will buffer; 0 means unknown (admission then
	// charges the stat size).
	EstBytes int64
}

// ApplyRule1 is the paper's rewrite rule (1), applied at run time
// between the two stages:
//
//	scan(a) → ⋃_{f ∈ result-scan(Qf)} { cache-scan(f) if f ∈ C
//	                                    mount(f)      otherwise }
//
// Every actual-data scan of the given binding is replaced by a union of
// per-file access paths; a selection sitting directly above the scan is
// fused into each union input (σ∘mount / σ∘cache-scan). An empty file
// list produces an empty union, which executes to zero rows.
func ApplyRule1(root Node, binding, adapter string, files []MountSpec) Node {
	// Top-down: the Select(Scan) pattern must be matched before the scan
	// itself is rewritten, so σp3 can be fused into each union input.
	var pred expr.Expr
	var scan *Scan
	if sel, selOK := root.(*Select); selOK {
		if inner, innerOK := sel.Child.(*Scan); innerOK {
			pred = sel.Pred
			scan = inner
		}
	} else if s, sOK := root.(*Scan); sOK {
		scan = s
	}
	if scan != nil && scan.Binding == binding && scan.Def.Kind == catalog.ActualData {
		inputs := make([]Node, 0, len(files))
		for _, f := range files {
			if f.Cached {
				inputs = append(inputs, &CacheScan{
					URI: f.URI, Adapter: adapter, Binding: scan.Binding, Def: scan.Def, Pred: pred,
					EstBytes: f.EstBytes,
				})
			} else {
				inputs = append(inputs, &Mount{
					URI: f.URI, Adapter: adapter, Binding: scan.Binding, Def: scan.Def, Pred: pred,
					EstBytes: f.EstBytes,
				})
			}
		}
		return &UnionAll{Inputs: inputs, Cols: scan.Schema()}
	}
	children := root.Children()
	if len(children) == 0 {
		return root
	}
	newChildren := make([]Node, len(children))
	changed := false
	for i, c := range children {
		newChildren[i] = ApplyRule1(c, binding, adapter, files)
		if newChildren[i] != c {
			changed = true
		}
	}
	if !changed {
		return root
	}
	return root.withChildren(newChildren)
}

// CollectURIColumn returns the qualified name of the Qf output column
// that joins against the given actual-data binding's URI column, by
// inspecting the join directly above the ResultScan. This is how the
// engine knows which result column holds the files of interest.
func CollectURIColumn(qs Node, rsName, actualBinding, uriColumn string) (string, error) {
	want := actualBinding + "." + uriColumn
	var found string
	Walk(qs, func(n Node) {
		j, ok := n.(*Join)
		if !ok || found != "" {
			return
		}
		// The result-scan must be on one side of this join.
		hasRS := false
		for _, side := range []Node{j.Left, j.Right} {
			Walk(side, func(x Node) {
				if rs, ok := x.(*ResultScan); ok && rs.Name == rsName {
					hasRS = true
				}
			})
		}
		if !hasRS {
			return
		}
		for i := range j.LeftKeys {
			if j.LeftKeys[i] == want {
				found = j.RightKeys[i]
				return
			}
			if j.RightKeys[i] == want {
				found = j.LeftKeys[i]
				return
			}
		}
	})
	if found == "" {
		return "", fmt.Errorf("plan: no join links %s to result-scan %s", want, rsName)
	}
	return found, nil
}

// ReplaceNode swaps the subtree identical to target (pointer equality)
// with replacement — exported for engine-level plan surgery such as the
// per-file merge strategy.
func ReplaceNode(root, target, replacement Node) Node {
	return replaceSubtree(root, target, replacement)
}
