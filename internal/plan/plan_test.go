package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// seismicCatalog mirrors the paper's three-table schema.
func seismicCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	defs := []catalog.TableDef{
		{Name: "F", Kind: catalog.Metadata, Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "station", Kind: vector.KindString},
			{Name: "network", Kind: vector.KindString},
			{Name: "channel", Kind: vector.KindString},
			{Name: "size_bytes", Kind: vector.KindInt64},
		}},
		{Name: "R", Kind: catalog.Metadata, Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "start_time", Kind: vector.KindTime},
			{Name: "end_time", Kind: vector.KindTime},
			{Name: "nsamples", Kind: vector.KindInt64},
		}},
		{Name: "D", Kind: catalog.ActualData, Columns: []storage.Column{
			{Name: "uri", Kind: vector.KindString},
			{Name: "record_id", Kind: vector.KindInt64},
			{Name: "sample_time", Kind: vector.KindTime},
			{Name: "sample_value", Kind: vector.KindFloat64},
		}},
	}
	for _, d := range defs {
		if err := cat.Define(d); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const query1 = `SELECT AVG(D.sample_value)
FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000'`

func mustPlan(t *testing.T, cat *catalog.Catalog, q string) Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Bind(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustOptimize(t *testing.T, cat *catalog.Catalog, q string) Node {
	t.Helper()
	n, err := Optimize(mustPlan(t, cat, q), cat)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBindQuery1Schema(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustPlan(t, cat, query1)
	schema := n.Schema()
	if len(schema) != 1 || schema[0].Kind != vector.KindFloat64 {
		t.Fatalf("output schema = %+v, want one DOUBLE", schema)
	}
}

func TestBindErrors(t *testing.T) {
	cat := seismicCatalog(t)
	cases := map[string]string{
		"unknown table":     `SELECT x FROM NOPE`,
		"unknown column":    `SELECT F.nope FROM F`,
		"ambiguous column":  `SELECT uri FROM F JOIN R ON F.uri = R.uri`,
		"dup binding":       `SELECT F.uri FROM F JOIN F ON F.uri = F.uri`,
		"non-bool where":    `SELECT F.uri FROM F WHERE F.size_bytes`,
		"bad group item":    `SELECT station, AVG(size_bytes) FROM F GROUP BY network`,
		"star with agg":     `SELECT *, COUNT(*) FROM F`,
		"agg in where":      `SELECT F.uri FROM F WHERE AVG(F.size_bytes) > 1`,
		"bad time literal":  `SELECT R.uri FROM R WHERE R.start_time > 'yesterday'`,
		"order key unknown": `SELECT station FROM F ORDER BY nope`,
		"order out of rng":  `SELECT station FROM F ORDER BY 3`,
	}
	for name, q := range cases {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("%s: parse failed: %v", name, err)
		}
		if _, err := Bind(stmt, cat); err == nil {
			t.Errorf("%s: Bind(%q) succeeded, want error", name, q)
		}
	}
}

func TestUnqualifiedResolution(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustPlan(t, cat, `SELECT station FROM F WHERE size_bytes > 10`)
	if len(n.Schema()) != 1 || n.Schema()[0].Name != "station" {
		t.Errorf("schema = %+v", n.Schema())
	}
}

func TestTimeCoercion(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustPlan(t, cat, `SELECT R.uri FROM R WHERE R.start_time > '2010-01-12'`)
	found := false
	Walk(n, func(x Node) {
		if s, ok := x.(*Select); ok {
			s.Pred.Walk(func(e expr.Expr) {
				if c, ok := e.(*expr.Const); ok && c.Val.Kind == vector.KindTime {
					found = true
				}
			})
		}
	})
	if !found {
		t.Error("string literal not coerced to TIMESTAMP")
	}
}

func TestPushDownReachesScans(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	// After optimization each relation should carry its own selection:
	// no Select above any Join should mention single-table predicates.
	text := Format(n)
	// F's predicate must appear below the join of F (i.e. adjacent to scan F).
	lines := strings.Split(text, "\n")
	var scanFDepth, selFLine int = -1, -1
	for i, l := range lines {
		if strings.Contains(l, "scan[metadata] F") {
			scanFDepth = indent(l)
		}
		if strings.Contains(l, "F.station = 'ISK'") {
			selFLine = i
		}
	}
	if scanFDepth < 0 || selFLine < 0 {
		t.Fatalf("plan missing expected operators:\n%s", text)
	}
	if indent(lines[selFLine]) != scanFDepth-1 {
		t.Errorf("selection on F not directly above scan F:\n%s", text)
	}
}

func indent(s string) int {
	n := 0
	for strings.HasPrefix(s[n*2:], "  ") {
		n++
	}
	return n
}

func TestReorderMetadataFirst(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	// The top join must have the actual-data relation on the left and the
	// metadata subtree on the right: a1 ⋈ (m1 ⋈ m2).
	var topJoin *Join
	Walk(n, func(x Node) {
		if j, ok := x.(*Join); ok && topJoin == nil {
			topJoin = j
		}
	})
	if topJoin == nil {
		t.Fatalf("no join in plan:\n%s", Format(n))
	}
	if isMetadataOnly(topJoin.Left, cat) {
		t.Errorf("left side of top join should be the actual-data branch:\n%s", Format(n))
	}
	if !isMetadataOnly(topJoin.Right, cat) {
		t.Errorf("right side of top join should be the metadata branch Qf:\n%s", Format(n))
	}
	// The metadata subtree must join F and R on uri.
	if len(topJoin.LeftKeys) != 2 {
		t.Errorf("top join keys = %v / %v, want uri+record_id", topJoin.LeftKeys, topJoin.RightKeys)
	}
}

func TestDecomposeQuery1(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	dec, ok := Decompose(n, cat, "qf1")
	if !ok {
		t.Fatalf("Decompose failed:\n%s", Format(n))
	}
	if dec.MetadataOnly {
		t.Fatal("Query 1 misclassified as metadata-only")
	}
	// Qf must contain only metadata scans.
	Walk(dec.Qf, func(x Node) {
		if s, ok := x.(*Scan); ok && s.Def.Kind != catalog.Metadata {
			t.Errorf("Qf contains actual-data scan %s", s.TableName)
		}
	})
	// Qs must contain the ResultScan and the D scan.
	var hasRS, hasD bool
	Walk(dec.Qs, func(x Node) {
		if rs, ok := x.(*ResultScan); ok && rs.Name == "qf1" {
			hasRS = true
		}
		if s, ok := x.(*Scan); ok && s.TableName == "D" {
			hasD = true
		}
	})
	if !hasRS || !hasD {
		t.Errorf("Qs missing result-scan (%v) or D scan (%v):\n%s", hasRS, hasD, Format(dec.Qs))
	}
}

func TestDecomposeMetadataOnly(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, `SELECT station, COUNT(*) FROM F GROUP BY station`)
	dec, ok := Decompose(n, cat, "qf")
	if !ok || !dec.MetadataOnly {
		t.Fatalf("metadata-only query not recognized (ok=%v, mo=%v)", ok, dec.MetadataOnly)
	}
	if dec.Qs != nil {
		t.Error("metadata-only decomposition must have no Qs")
	}
}

func TestDecomposeNoMetadata(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, `SELECT AVG(sample_value) FROM D`)
	if _, ok := Decompose(n, cat, "qf"); ok {
		t.Error("plan without metadata references should not decompose")
	}
}

func TestCollectURIColumn(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	dec, ok := Decompose(n, cat, "qf1")
	if !ok {
		t.Fatal("decompose failed")
	}
	col, err := CollectURIColumn(dec.Qs, "qf1", "D", "uri")
	if err != nil {
		t.Fatal(err)
	}
	if col != "R.uri" {
		t.Errorf("URI column = %s, want R.uri", col)
	}
}

func TestApplyRule1(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	dec, _ := Decompose(n, cat, "qf1")
	files := []MountSpec{
		{URI: "f1.mseed"}, {URI: "f2.mseed"}, {URI: "f3.mseed", Cached: true},
	}
	rewritten := ApplyRule1(dec.Qs, "D", "mseed", files)
	var mounts, cacheScans, unions int
	var fusedPred bool
	Walk(rewritten, func(x Node) {
		switch m := x.(type) {
		case *Mount:
			mounts++
			if m.Pred != nil {
				fusedPred = true
			}
		case *CacheScan:
			cacheScans++
		case *UnionAll:
			unions++
		case *Scan:
			if m.Def.Kind == catalog.ActualData {
				t.Error("actual-data scan survived rule 1")
			}
		}
	})
	if mounts != 2 || cacheScans != 1 || unions != 1 {
		t.Errorf("mounts=%d cacheScans=%d unions=%d, want 2/1/1:\n%s",
			mounts, cacheScans, unions, Format(rewritten))
	}
	if !fusedPred {
		t.Error("σp3 was not fused into the mounts (σ∘mount)")
	}
	if _, err := Resolve(rewritten); err != nil {
		t.Errorf("rewritten plan does not resolve: %v", err)
	}
}

func TestApplyRule1EmptyFiles(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	dec, _ := Decompose(n, cat, "qf1")
	rewritten := ApplyRule1(dec.Qs, "D", "mseed", nil)
	found := false
	Walk(rewritten, func(x Node) {
		if u, ok := x.(*UnionAll); ok && len(u.Inputs) == 0 {
			found = true
		}
	})
	if !found {
		t.Error("empty file list should produce an empty union (best case: no ingestion)")
	}
}

func TestFindActualScans(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	scans := FindActualScans(n, cat)
	if len(scans) != 1 || scans[0].Binding != "D" {
		t.Fatalf("actual scans = %+v", scans)
	}
	if scans[0].Pred == nil {
		t.Error("σp3 above scan D not captured")
	}
}

func TestFormatShowsAccessPaths(t *testing.T) {
	cat := seismicCatalog(t)
	def, _ := cat.Table("D")
	n := &UnionAll{Inputs: []Node{
		&Mount{URI: "a", Adapter: "mseed", Binding: "D", Def: def},
		&CacheScan{URI: "b", Binding: "D", Def: def},
	}}
	text := Format(n)
	if !strings.Contains(text, "mount(a)") || !strings.Contains(text, "cache-scan(b)") {
		t.Errorf("Format = %q", text)
	}
}

func TestAggregateSchemaKinds(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustPlan(t, cat, `SELECT station, COUNT(*) AS n, AVG(size_bytes) AS avg_size,
		MIN(size_bytes) AS min_size FROM F GROUP BY station`)
	schema := n.Schema()
	if schema[0].Kind != vector.KindString ||
		schema[1].Kind != vector.KindInt64 ||
		schema[2].Kind != vector.KindFloat64 ||
		schema[3].Kind != vector.KindInt64 {
		t.Errorf("aggregate schema kinds = %+v", schema)
	}
}

func TestOrderByAliasAndOrdinal(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustPlan(t, cat, `SELECT station, COUNT(*) AS n FROM F GROUP BY station ORDER BY n DESC, 1`)
	var sort *Sort
	Walk(n, func(x Node) {
		if s, ok := x.(*Sort); ok {
			sort = s
		}
	})
	if sort == nil {
		t.Fatal("no sort node")
	}
	if len(sort.Keys) != 2 || sort.Keys[0].Index != 1 || !sort.Keys[0].Desc || sort.Keys[1].Index != 0 {
		t.Errorf("sort keys = %+v", sort.Keys)
	}
}
