package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/vector"
)

// subsumptionOf runs a query through the pipeline's front half and
// computes its subsumption summary.
func subsumptionOf(t *testing.T, q string) *SubsumptionInfo {
	t.Helper()
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, q)
	norm, err := Normalize(n)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", q, err)
	}
	return SubsumptionInfoOf(norm)
}

// projQuery builds the projection-shaped zoom query with parameterized
// D.sample_time bounds — the subsumption-eligible shape.
func projQuery(lo, hi string) string {
	return fmt.Sprintf(`SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000' AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '%s' AND D.sample_time < '%s'`, lo, hi)
}

func TestSubsumptionKeySharesBucketAcrossConstants(t *testing.T) {
	wide := subsumptionOf(t, projQuery("2010-01-12T22:10:00.000", "2010-01-12T22:20:00.000"))
	narrow := subsumptionOf(t, projQuery("2010-01-12T22:14:00.000", "2010-01-12T22:16:00.000"))
	if wide == nil || narrow == nil {
		t.Fatal("projection zoom queries must be subsumption-eligible")
	}
	if wide.Key.IsZero() || wide.Key != narrow.Key {
		t.Fatalf("zoom queries differing only in re-filterable bounds must share a key: %s vs %s",
			wide.Key, narrow.Key)
	}
	if !Subsumes(wide, narrow) {
		t.Fatal("wider interval must subsume the nested narrower one")
	}
	if Subsumes(narrow, wide) {
		t.Fatal("narrower interval must not subsume the wider one")
	}
	if narrow.Refilter == nil {
		t.Fatal("a bounded re-filterable column must produce a re-filter predicate")
	}
}

func TestSubsumptionUnboundedWiderServesBounded(t *testing.T) {
	// No D.sample_time constraint at all: same bucket, unbounded interval.
	unbounded := subsumptionOf(t, `SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK'
AND R.start_time > '2010-01-12T00:00:00.000' AND R.start_time < '2010-01-12T23:59:59.999'`)
	narrow := subsumptionOf(t, projQuery("2010-01-12T22:14:00.000", "2010-01-12T22:16:00.000"))
	if unbounded == nil || narrow == nil {
		t.Fatal("both plans must be eligible")
	}
	if unbounded.Key != narrow.Key {
		t.Fatal("an unconstrained column must share the bucket with constrained ones")
	}
	if !Subsumes(unbounded, narrow) {
		t.Fatal("an unbounded interval subsumes every bounded one")
	}
	if Subsumes(narrow, unbounded) {
		t.Fatal("a bounded interval must not subsume an unbounded one")
	}
}

func TestSubsumptionResidualConjunctsPartitionBuckets(t *testing.T) {
	// F.station is not in the output, so its equality conjunct is residual
	// and renders verbatim: different stations must land in different
	// buckets (re-filtering cannot fix a station mismatch).
	isk := subsumptionOf(t, projQuery("2010-01-12T22:10:00.000", "2010-01-12T22:20:00.000"))
	anto := subsumptionOf(t, `SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ANTO'
AND R.start_time > '2010-01-12T00:00:00.000' AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:14:00.000' AND D.sample_time < '2010-01-12T22:16:00.000'`)
	if isk == nil || anto == nil {
		t.Fatal("both plans must be eligible")
	}
	if isk.Key == anto.Key {
		t.Fatal("differing residual conjuncts must produce different keys")
	}
	if Subsumes(isk, anto) {
		t.Fatal("different buckets must never subsume")
	}
}

func TestSubsumptionBailsOnRowCollapsingPlans(t *testing.T) {
	for name, q := range map[string]string{
		"aggregate": `SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND D.sample_time > '2010-01-12T22:14:00.000'`,
		"limit": `SELECT D.sample_time, D.sample_value FROM F JOIN R ON F.uri = R.uri
JOIN D ON R.uri = D.uri AND R.record_id = D.record_id
WHERE F.station = 'ISK' AND D.sample_time > '2010-01-12T22:14:00.000' LIMIT 5`,
	} {
		if got := subsumptionOf(t, q); got != nil {
			t.Fatalf("%s plan must be subsumption-ineligible, got key %s", name, got.Key)
		}
	}
}

func TestSubsumptionSortedOutputStaysEligible(t *testing.T) {
	// Sort is stable, so filtering commutes with it: an ORDER BY plan
	// stays eligible and buckets with its unsorted... no — sort renders in
	// the key, so it buckets with identically sorted plans only.
	sorted := subsumptionOf(t, projQuery("2010-01-12T22:10:00.000", "2010-01-12T22:20:00.000")+
		` ORDER BY D.sample_time`)
	if sorted == nil {
		t.Fatal("sorted projection must stay subsumption-eligible")
	}
	narrow := subsumptionOf(t, projQuery("2010-01-12T22:14:00.000", "2010-01-12T22:16:00.000")+
		` ORDER BY D.sample_time`)
	if !Subsumes(sorted, narrow) {
		t.Fatal("sorted wider plan must subsume sorted narrower plan")
	}
	unsorted := subsumptionOf(t, projQuery("2010-01-12T22:10:00.000", "2010-01-12T22:20:00.000"))
	if unsorted.Key == sorted.Key {
		t.Fatal("sorted and unsorted plans must not share a bucket")
	}
}

func TestIntervalContainment(t *testing.T) {
	i := func(lo, hi int64, loOpen, hiOpen bool) Interval {
		return Interval{HasLo: true, Lo: vector.Int64(lo), LoOpen: loOpen,
			HasHi: true, Hi: vector.Int64(hi), HiOpen: hiOpen}
	}
	cases := []struct {
		w, n Interval
		want bool
	}{
		{i(0, 10, false, false), i(2, 8, false, false), true},
		{i(0, 10, false, false), i(0, 10, false, false), true},
		{i(2, 8, false, false), i(0, 10, false, false), false},
		// Equal bound, wider open, narrower closed: w excludes the endpoint.
		{i(0, 10, true, false), i(0, 10, false, false), false},
		{i(0, 10, false, false), i(0, 10, true, true), true},
		// Unbounded wider side contains everything.
		{Interval{}, i(0, 10, false, false), true},
		{Interval{HasLo: true, Lo: vector.Int64(0)}, Interval{}, false},
		// Incomparable kinds: conservative false.
		{i(0, 10, false, false), Interval{HasLo: true, Lo: vector.Str("x"), HasHi: true, Hi: vector.Str("y")}, false},
	}
	for idx, c := range cases {
		if got := c.w.contains(c.n); got != c.want {
			t.Errorf("case %d: contains = %v, want %v", idx, got, c.want)
		}
	}
}

// --- satellite 1: range-conjunct folding ---

func TestFoldRangeConjuncts(t *testing.T) {
	col := func(k vector.Kind, idx int) *expr.Col {
		return &expr.Col{Index: idx, Name: fmt.Sprintf("c%d", idx), K: k}
	}
	a := col(vector.KindInt64, 0)
	cmp := func(op expr.CmpOp, l, r expr.Expr) expr.Expr { return &expr.Compare{Op: op, L: l, R: r} }
	ci := func(i int64) expr.Expr { return &expr.Const{Val: vector.Int64(i)} }

	t.Run("redundant lower bounds drop", func(t *testing.T) {
		out := foldRangeConjuncts([]expr.Expr{cmp(expr.Gt, a, ci(5)), cmp(expr.Gt, a, ci(3))})
		if len(out) != 1 || canonExpr(out[0], nil) != canonExpr(cmp(expr.Gt, a, ci(5)), nil) {
			t.Fatalf("a>5 AND a>3 must fold to a>5, got %d conjuncts", len(out))
		}
	})
	t.Run("contradiction folds to false", func(t *testing.T) {
		out := foldRangeConjuncts([]expr.Expr{cmp(expr.Gt, a, ci(5)), cmp(expr.Lt, a, ci(3))})
		if len(out) != 1 {
			t.Fatalf("a>5 AND a<3 must fold to one conjunct, got %d", len(out))
		}
		c, ok := out[0].(*expr.Const)
		if !ok || c.Val.Kind != vector.KindBool || c.Val.B {
			t.Fatalf("contradiction must fold to constant false, got %v", out[0])
		}
	})
	t.Run("touching open bounds contradict", func(t *testing.T) {
		out := foldRangeConjuncts([]expr.Expr{cmp(expr.Ge, a, ci(5)), cmp(expr.Lt, a, ci(5))})
		c, ok := out[0].(*expr.Const)
		if len(out) != 1 || !ok || c.Val.B {
			t.Fatal("a>=5 AND a<5 must fold to constant false")
		}
		out = foldRangeConjuncts([]expr.Expr{cmp(expr.Ge, a, ci(5)), cmp(expr.Le, a, ci(5))})
		if len(out) != 2 {
			t.Fatal("a>=5 AND a<=5 is satisfiable and must keep both bounds")
		}
	})
	t.Run("eq absorbs looser range", func(t *testing.T) {
		out := foldRangeConjuncts([]expr.Expr{cmp(expr.Eq, a, ci(5)), cmp(expr.Gt, a, ci(3))})
		if len(out) != 1 || canonExpr(out[0], nil) != canonExpr(cmp(expr.Eq, a, ci(5)), nil) {
			t.Fatalf("a=5 AND a>3 must fold to a=5, got %v", out)
		}
	})
	t.Run("non-interval conjuncts pass through", func(t *testing.T) {
		ne := cmp(expr.Ne, a, ci(7))
		out := foldRangeConjuncts([]expr.Expr{cmp(expr.Gt, a, ci(5)), ne, cmp(expr.Gt, a, ci(3))})
		if len(out) != 2 {
			t.Fatalf("Ne must pass through while ranges fold, got %d conjuncts", len(out))
		}
	})
	t.Run("distinct columns fold independently", func(t *testing.T) {
		b := col(vector.KindInt64, 1)
		out := foldRangeConjuncts([]expr.Expr{
			cmp(expr.Gt, a, ci(5)), cmp(expr.Lt, b, ci(9)),
			cmp(expr.Gt, a, ci(1)), cmp(expr.Lt, b, ci(20)),
		})
		if len(out) != 2 {
			t.Fatalf("want 2 survivors, got %d", len(out))
		}
	})
}

// TestFoldRangeConjunctsProperty is the satellite's property test: for
// random soups of range (and a few opaque) conjuncts, the normalized
// predicate must agree with the original on every row of random batches
// — same selected rows, or both predicates erroring.
func TestFoldRangeConjunctsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := []struct {
		name string
		kind vector.Kind
	}{
		{"a", vector.KindInt64}, {"b", vector.KindFloat64}, {"s", vector.KindString},
	}
	ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
	words := []string{"ant", "bee", "cat", "dog", "eel"}

	randConst := func(k vector.Kind) vector.Value {
		switch k {
		case vector.KindInt64:
			return vector.Int64(int64(rng.Intn(10)))
		case vector.KindFloat64:
			return vector.Float64(float64(rng.Intn(10)) / 2)
		default:
			return vector.Str(words[rng.Intn(len(words))])
		}
	}

	for trial := 0; trial < 200; trial++ {
		var conjuncts []expr.Expr
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			ci := rng.Intn(len(schema))
			c := &expr.Col{Index: ci, Name: schema[ci].name, K: schema[ci].kind}
			op := ops[rng.Intn(len(ops))]
			k := &expr.Const{Val: randConst(schema[ci].kind)}
			if rng.Intn(2) == 0 {
				conjuncts = append(conjuncts, &expr.Compare{Op: op, L: c, R: k})
			} else {
				conjuncts = append(conjuncts, &expr.Compare{Op: op, L: k, R: c})
			}
		}
		orig := expr.JoinAnd(conjuncts)
		norm := normalizePred(orig)

		// Random batch over the schema.
		rows := 1 + rng.Intn(40)
		av := make([]int64, rows)
		bv := make([]float64, rows)
		sv := make([]string, rows)
		for r := 0; r < rows; r++ {
			av[r] = int64(rng.Intn(10))
			bv[r] = float64(rng.Intn(10)) / 2
			sv[r] = words[rng.Intn(len(words))]
		}
		batch := vector.NewBatch(vector.FromInt64(av), vector.FromFloat64(bv), vector.FromString(sv))

		ov, oerr := orig.Eval(batch)
		nv, nerr := norm.Eval(batch)
		if (oerr != nil) != (nerr != nil) {
			t.Fatalf("trial %d: error behavior diverged: orig=%v norm=%v\npred: %s", trial, oerr, nerr, orig)
		}
		if oerr != nil {
			continue
		}
		ob, nb := ov.Bools(), nv.Bools()
		for r := 0; r < rows; r++ {
			if ob[r] != nb[r] {
				t.Fatalf("trial %d row %d: orig=%v norm=%v\norig pred: %s\nnorm pred: %s",
					trial, r, ob[r], nb[r], orig, norm)
			}
		}
	}
}
