package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sql"
)

// fingerprintOf runs a query through the pipeline's front half the way
// the engine does: bind, optimize, normalize, fingerprint.
func fingerprintOf(t *testing.T, cat *catalog.Catalog, q string) Fingerprint {
	t.Helper()
	n := mustOptimize(t, cat, q)
	norm, err := Normalize(n)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", q, err)
	}
	return FingerprintOf(norm)
}

// TestFingerprintEquivalentSpellings is the normalization property test:
// for a corpus of randomly parameterized queries, every semantically
// equivalent spelling — reordered conjuncts, flipped comparison sides,
// swapped join sides and join order, table aliases, foldable constant
// arithmetic, and the re-parse of sql.Stmt.String() — must produce the
// identical fingerprint, while distinct queries must never collide.
func TestFingerprintEquivalentSpellings(t *testing.T) {
	cat := seismicCatalog(t)
	rng := rand.New(rand.NewSource(7))
	stations := []string{"ISK", "ANTO", "BALB", "CSS"}
	seen := make(map[Fingerprint]string) // fingerprint -> base spelling

	for trial := 0; trial < 40; trial++ {
		station := stations[rng.Intn(len(stations))]
		day := 10 + rng.Intn(5)
		threshold := 100 * (1 + rng.Intn(9))
		lo := fmt.Sprintf("2010-01-%02dT00:00:00.000", day)
		hi := fmt.Sprintf("2010-01-%02dT23:59:59.999", day)

		conjuncts := []string{
			fmt.Sprintf("F.station = '%s'", station),
			fmt.Sprintf("R.start_time > '%s'", lo),
			fmt.Sprintf("R.start_time < '%s'", hi),
			fmt.Sprintf("F.size_bytes > %d", threshold),
		}
		base := `SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri ` +
			`JOIN D ON R.uri = D.uri AND R.record_id = D.record_id WHERE ` +
			strings.Join(conjuncts, " AND ")

		// Spelling 2: shuffled conjuncts, flipped comparison sides, folded
		// constant arithmetic, swapped ON sides.
		shuffled := append([]string(nil), conjuncts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i, c := range shuffled {
			switch {
			case strings.Contains(c, "F.station ="):
				shuffled[i] = fmt.Sprintf("'%s' = F.station", station)
			case strings.Contains(c, "R.start_time >"):
				shuffled[i] = fmt.Sprintf("'%s' < R.start_time", lo)
			case strings.Contains(c, "F.size_bytes >"):
				shuffled[i] = fmt.Sprintf("F.size_bytes > %d + %d", threshold-25, 25)
			}
		}
		flipped := `SELECT AVG(D.sample_value) FROM F JOIN R ON R.uri = F.uri ` +
			`JOIN D ON D.uri = R.uri AND D.record_id = R.record_id WHERE ` +
			strings.Join(shuffled, " AND ")

		// Spelling 3: swapped join order and table aliases everywhere.
		aliased := fmt.Sprintf(`SELECT AVG(dd.sample_value) FROM R rr JOIN F ff ON ff.uri = rr.uri `+
			`JOIN D dd ON rr.uri = dd.uri AND rr.record_id = dd.record_id WHERE `+
			`ff.station = '%s' AND rr.start_time > '%s' AND rr.start_time < '%s' AND ff.size_bytes > %d`,
			station, lo, hi, threshold)

		// Spelling 4: the re-parse of the parser's canonical rendering.
		stmt, err := sql.Parse(base)
		if err != nil {
			t.Fatal(err)
		}
		reparsed := stmt.String()

		want := fingerprintOf(t, cat, base)
		for name, spelling := range map[string]string{
			"flipped": flipped, "aliased": aliased, "reparsed": reparsed,
		} {
			if got := fingerprintOf(t, cat, spelling); got != want {
				t.Fatalf("trial %d: %s spelling fingerprint %s != base %s\nbase:     %s\nspelling: %s",
					trial, name, got.Short(), want.Short(), base, spelling)
			}
		}

		// Distinct queries never collide within the corpus.
		if prev, ok := seen[want]; ok && prev != base {
			t.Fatalf("fingerprint collision between distinct queries:\n%s\n%s", prev, base)
		}
		seen[want] = base
	}
}

// TestFingerprintDistinguishesPredicates pins that near-identical but
// semantically different queries get different fingerprints.
func TestFingerprintDistinguishesPredicates(t *testing.T) {
	cat := seismicCatalog(t)
	queries := []string{
		`SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri JOIN D ON R.uri = D.uri WHERE F.station = 'ISK'`,
		`SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri JOIN D ON R.uri = D.uri WHERE F.station = 'ANTO'`,
		`SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri JOIN D ON R.uri = D.uri WHERE F.station <> 'ISK'`,
		`SELECT MAX(D.sample_value) FROM F JOIN R ON F.uri = R.uri JOIN D ON R.uri = D.uri WHERE F.station = 'ISK'`,
		`SELECT AVG(D.sample_value) FROM F JOIN R ON F.uri = R.uri JOIN D ON R.uri = D.uri WHERE F.station = 'ISK' AND F.channel = 'BHE'`,
		`SELECT COUNT(*) FROM F`,
		`SELECT COUNT(*) FROM R`,
		`SELECT station, COUNT(*) FROM F GROUP BY station`,
		`SELECT station, COUNT(*) FROM F GROUP BY station ORDER BY station`,
		`SELECT station, COUNT(*) FROM F GROUP BY station ORDER BY station DESC`,
	}
	seen := make(map[Fingerprint]string)
	for _, q := range queries {
		fp := fingerprintOf(t, cat, q)
		if prev, ok := seen[fp]; ok {
			t.Errorf("collision:\n%s\n%s", prev, q)
		}
		seen[fp] = q
	}
}

// TestFingerprintStableAcrossNormalize pins that normalization is
// idempotent with respect to the canonical form: the fingerprint of the
// optimized plan equals the fingerprint of its normalized form (the
// canonical rendering already folds and sorts).
func TestFingerprintStableAcrossNormalize(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, query1)
	norm, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintOf(n) != FingerprintOf(norm) {
		t.Errorf("canonical form changed across Normalize:\n%s\nvs\n%s",
			CanonicalString(n), CanonicalString(norm))
	}
	// And Normalize must not change what the plan computes structurally:
	// the schema is identical.
	a, b := n.Schema(), norm.Schema()
	if len(a) != len(b) {
		t.Fatalf("schema length changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("schema[%d] changed: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestConstantFoldingInNormalizedPlan pins that Normalize actually folds
// constant subexpressions in the executed plan.
func TestConstantFoldingInNormalizedPlan(t *testing.T) {
	cat := seismicCatalog(t)
	n := mustOptimize(t, cat, `SELECT F.uri FROM F WHERE F.size_bytes > 5 + 5`)
	norm, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(norm)
	if !strings.Contains(text, "10") || strings.Contains(text, "5 + 5") {
		t.Errorf("constant arithmetic not folded:\n%s", text)
	}
}
