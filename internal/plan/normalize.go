package plan

import (
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/vector"
)

// This file is the normalization stage of the query pipeline: the pass
// that runs between Optimize and Fingerprint so that semantically
// equivalent query spellings converge on one canonical plan. Two layers
// do the work:
//
//   - Normalize rewrites the executed plan itself in semantics-preserving
//     ways: constant subexpressions fold, and the conjuncts of every
//     selection (and of every fused σ∘mount / σ∘cache-scan predicate) are
//     re-ordered into a canonical commutative order. AND evaluates both
//     sides over the whole batch, so conjunct order never changes results
//     or error behavior.
//   - CanonicalString renders a plan into an alias-insensitive canonical
//     form without touching it: table bindings are replaced by canonical
//     names, commutative join chains are flattened and sorted, comparison
//     directions are normalized. Fingerprint hashes this rendering.

// Normalize applies the semantics-preserving normalization rewrites to a
// bound plan and re-resolves it: constant folding everywhere expressions
// appear, plus canonical conjunct ordering in selections and fused scan
// predicates. The returned plan computes exactly the same result as the
// input on every operator.
func Normalize(root Node) (Node, error) {
	out := Transform(root, func(n Node) Node {
		switch t := n.(type) {
		case *Select:
			return &Select{Pred: normalizePred(t.Pred), Child: t.Child}
		case *Project:
			exprs := make([]expr.Expr, len(t.Exprs))
			for i, e := range t.Exprs {
				exprs[i] = FoldConstants(e)
			}
			return &Project{Exprs: exprs, Names: t.Names, Child: t.Child}
		case *Aggregate:
			aggs := make([]AggSpec, len(t.Aggs))
			for i, a := range t.Aggs {
				aggs[i] = a
				if a.Arg != nil {
					aggs[i].Arg = FoldConstants(a.Arg)
				}
			}
			return &Aggregate{GroupBy: t.GroupBy, Aggs: aggs, Child: t.Child}
		case *Mount:
			if t.Pred == nil {
				return n
			}
			return &Mount{URI: t.URI, Adapter: t.Adapter, Binding: t.Binding, Def: t.Def,
				Pred: normalizePred(t.Pred), EstBytes: t.EstBytes}
		case *CacheScan:
			if t.Pred == nil {
				return n
			}
			return &CacheScan{URI: t.URI, Adapter: t.Adapter, Binding: t.Binding, Def: t.Def,
				Pred: normalizePred(t.Pred), EstBytes: t.EstBytes}
		default:
			return n
		}
	})
	return Resolve(out)
}

// normalizePred folds constants, drops range conjuncts made redundant by
// tighter ones on the same column, and re-orders the survivors
// canonically (by their alias-sensitive canonical rendering — stable for
// one plan, which is all execution needs).
func normalizePred(pred expr.Expr) expr.Expr {
	folded := FoldConstants(pred)
	conjuncts := expr.SplitAnd(folded)
	if len(conjuncts) <= 1 {
		return folded
	}
	conjuncts = foldRangeConjuncts(conjuncts)
	if len(conjuncts) == 1 {
		return conjuncts[0]
	}
	sort.SliceStable(conjuncts, func(i, j int) bool {
		return canonExpr(conjuncts[i], nil) < canonExpr(conjuncts[j], nil)
	})
	return expr.JoinAnd(conjuncts)
}

// rangeAcc accumulates one column's interval conjuncts: the tightest
// lower and upper bound seen, each remembering which source conjunct
// supplied it (the survivor that gets emitted).
type rangeAcc struct {
	col  *expr.Col
	iv   Interval
	loC  expr.Expr // conjunct that supplied iv's lo bound
	hiC  expr.Expr
	keep []expr.Expr // originals, emitted verbatim when folding aborts
	bad  bool        // an incomparable merge poisoned this column
}

// foldRangeConjuncts drops range conjuncts made redundant by a tighter
// bound on the same column (`a>5 AND a>3` → `a>5`) and collapses
// contradictory ranges (`a>5 AND a<3`) to constant false. Only the
// interval shape with executor-comparable kinds participates — exactly
// the conjuncts whose evaluation cannot error, so dropping one (or
// replacing a set with FALSE) preserves error behavior as well as
// semantics. Anything else, and any column whose bounds fail to merge,
// passes through untouched. AND evaluates both sides batch-wide, so
// dropping a conjunct never changes results beyond doing less work.
func foldRangeConjuncts(conjuncts []expr.Expr) []expr.Expr {
	var order []string // first-seen column order, for deterministic output
	accs := make(map[string]*rangeAcc)
	var rest []expr.Expr
	for _, c := range conjuncts {
		ic, ok := asIntervalConjunct(c)
		if !ok {
			rest = append(rest, c)
			continue
		}
		key := canonExpr(ic.col, nil)
		acc := accs[key]
		if acc == nil {
			acc = &rangeAcc{col: ic.col}
			accs[key] = acc
			order = append(order, key)
		}
		acc.keep = append(acc.keep, c)
		if acc.bad {
			continue
		}
		b := ic.bounds()
		// Track which source conjunct owns each bound after the merge, so
		// the emitted survivor is an original conjunct, not a rewrite.
		prev := acc.iv
		if !acc.iv.intersect(b) {
			acc.bad = true
			continue
		}
		if b.HasLo && (acc.iv.Lo != prev.Lo || acc.iv.LoOpen != prev.LoOpen || !prev.HasLo) &&
			acc.iv.Lo == b.Lo && acc.iv.LoOpen == b.LoOpen {
			acc.loC = c
		}
		if b.HasHi && (acc.iv.Hi != prev.Hi || acc.iv.HiOpen != prev.HiOpen || !prev.HasHi) &&
			acc.iv.Hi == b.Hi && acc.iv.HiOpen == b.HiOpen {
			acc.hiC = c
		}
	}
	out := rest
	for _, key := range order {
		acc := accs[key]
		if acc.bad || len(acc.keep) == 1 {
			out = append(out, acc.keep...)
			continue
		}
		// Contradictory range → constant false for this column's conjuncts.
		if acc.iv.HasLo && acc.iv.HasHi {
			cmp, ok := compareConsts(acc.iv.Lo, acc.iv.Hi)
			if !ok {
				out = append(out, acc.keep...)
				continue
			}
			if cmp > 0 || cmp == 0 && (acc.iv.LoOpen || acc.iv.HiOpen) {
				out = append(out, &expr.Const{Val: vector.Bool(false)})
				continue
			}
		}
		if acc.loC != nil {
			out = append(out, acc.loC)
		}
		if acc.hiC != nil && acc.hiC != acc.loC {
			out = append(out, acc.hiC)
		}
	}
	if len(out) == 0 {
		// Every conjunct folded away (cannot happen today — interval
		// conjuncts always leave a survivor — but keep JoinAnd's nil out).
		return conjuncts
	}
	return out
}

// FoldConstants evaluates constant subexpressions at plan time. Folding
// is conservative: an operation folds only when every operand is a
// constant and the operation cannot fail (no division by zero, no
// incomparable kinds), so runtime error behavior is preserved exactly.
func FoldConstants(e expr.Expr) expr.Expr {
	switch t := e.(type) {
	case *expr.Col, *expr.Const:
		return e
	case *expr.Not:
		inner := FoldConstants(t.E)
		if c, ok := inner.(*expr.Const); ok && c.Val.Kind == vector.KindBool {
			return &expr.Const{Val: vector.Bool(!c.Val.B)}
		}
		return &expr.Not{E: inner}
	case *expr.Logic:
		l, r := FoldConstants(t.L), FoldConstants(t.R)
		lc, lok := constBool(l)
		rc, rok := constBool(r)
		if lok && rok {
			if t.Op == expr.OpAnd {
				return &expr.Const{Val: vector.Bool(lc && rc)}
			}
			return &expr.Const{Val: vector.Bool(lc || rc)}
		}
		// Identity operands drop without changing semantics (the other
		// side is still evaluated either way).
		if lok && ((t.Op == expr.OpAnd && lc) || (t.Op == expr.OpOr && !lc)) {
			return r
		}
		if rok && ((t.Op == expr.OpAnd && rc) || (t.Op == expr.OpOr && !rc)) {
			return l
		}
		return &expr.Logic{Op: t.Op, L: l, R: r}
	case *expr.Compare:
		l, r := FoldConstants(t.L), FoldConstants(t.R)
		if lc, ok := l.(*expr.Const); ok {
			if rc, ok := r.(*expr.Const); ok {
				if cmp, ok := compareConsts(lc.Val, rc.Val); ok {
					return &expr.Const{Val: vector.Bool(cmpHolds(t.Op, cmp))}
				}
			}
		}
		return &expr.Compare{Op: t.Op, L: l, R: r}
	case *expr.Arith:
		l, r := FoldConstants(t.L), FoldConstants(t.R)
		if lc, ok := l.(*expr.Const); ok {
			if rc, ok := r.(*expr.Const); ok {
				if v, ok := foldArith(t.Op, lc.Val, rc.Val); ok {
					return &expr.Const{Val: v}
				}
			}
		}
		return &expr.Arith{Op: t.Op, L: l, R: r}
	default:
		return e
	}
}

func constBool(e expr.Expr) (bool, bool) {
	c, ok := e.(*expr.Const)
	if !ok || c.Val.Kind != vector.KindBool {
		return false, false
	}
	return c.Val.B, true
}

// compareConsts orders two constant values when their kinds are
// comparable, mirroring the executor's comparison semantics.
func compareConsts(a, b vector.Value) (int, bool) {
	intish := func(k vector.Kind) bool { return k == vector.KindInt64 || k == vector.KindTime }
	numeric := func(k vector.Kind) bool { return intish(k) || k == vector.KindFloat64 }
	switch {
	case numeric(a.Kind) && numeric(b.Kind):
		if intish(a.Kind) && intish(b.Kind) {
			switch {
			case a.I < b.I:
				return -1, true
			case a.I > b.I:
				return 1, true
			}
			return 0, true
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	case a.Kind == vector.KindString && b.Kind == vector.KindString:
		return strings.Compare(a.S, b.S), true
	case a.Kind == vector.KindBool && b.Kind == vector.KindBool:
		switch {
		case a.B == b.B:
			return 0, true
		case !a.B:
			return -1, true
		}
		return 1, true
	}
	return 0, false
}

func cmpHolds(op expr.CmpOp, cmp int) bool {
	switch op {
	case expr.Eq:
		return cmp == 0
	case expr.Ne:
		return cmp != 0
	case expr.Lt:
		return cmp < 0
	case expr.Le:
		return cmp <= 0
	case expr.Gt:
		return cmp > 0
	}
	return cmp >= 0
}

// foldArith evaluates constant arithmetic with the executor's promotion
// rules: all-integer (or time) operands use int64 arithmetic with
// truncating division, a float operand promotes to float64. Division by
// zero never folds — the error stays a runtime error.
func foldArith(op expr.ArithOp, a, b vector.Value) (vector.Value, bool) {
	intish := func(k vector.Kind) bool { return k == vector.KindInt64 || k == vector.KindTime }
	if !a.IsNumeric() || !b.IsNumeric() {
		return vector.Value{}, false
	}
	if intish(a.Kind) && intish(b.Kind) {
		switch op {
		case expr.Add:
			return vector.Int64(a.I + b.I), true
		case expr.Sub:
			return vector.Int64(a.I - b.I), true
		case expr.Mul:
			return vector.Int64(a.I * b.I), true
		default:
			if b.I == 0 {
				return vector.Value{}, false
			}
			return vector.Int64(a.I / b.I), true
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case expr.Add:
		return vector.Float64(af + bf), true
	case expr.Sub:
		return vector.Float64(af - bf), true
	case expr.Mul:
		return vector.Float64(af * bf), true
	default:
		if bf == 0 {
			return vector.Value{}, false
		}
		return vector.Float64(af / bf), true
	}
}
