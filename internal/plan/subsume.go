package plan

// This file is the containment checker behind the engine's semantic
// result cache: when no stored result has the exact canonical
// fingerprint of a query, a *wider* stored result whose predicate is
// implied by the query's can still answer it — the cached rows are a
// superset of the wanted rows, and re-filtering them in memory is the
// classic semantic-caching move. Three pieces cooperate:
//
//   - Interval decomposition: the canonical conjunct form from the
//     fingerprint layer is split, per plan, into per-column [lo, hi]
//     intervals (from conjuncts of the shape `col CMP constant`) plus
//     residual conjuncts that stay opaque.
//   - SubsumptionKey: a canonical plan rendering with every
//     interval-eligible conjunct over a *re-filterable* output column
//     elided. Structurally identical plans that differ only in those
//     filter constants share one key — the result cache's secondary
//     index bucket. Residual conjuncts render verbatim, so anything the
//     checker cannot re-apply must match exactly.
//   - Subsumes: per-column interval containment between two summaries in
//     the same bucket, using the same constant comparison the executor
//     applies. Everything non-interval already matched via the key.
//
// Soundness is bought with conservatism; the bail-outs are:
//
//   - Row-collapsing plans (Aggregate, Limit anywhere) are ineligible:
//     re-filtering a final aggregate or a truncated prefix does not
//     commute with the collapsed rows. (Sort is fine — the operator is
//     stable, so filtering commutes with it.)
//   - A column is re-filterable only when it reaches the plan's output
//     as a pure column passthrough (a bare *expr.Col projection), with
//     an unambiguous canonical name: only then can the narrow query's
//     bound be re-applied to the wider final result.
//   - Interval conjuncts qualify only for comparison ops the executor
//     evaluates without error against the column's kind (numeric with
//     numeric, string with string); Ne, booleans, NaN bounds and
//     anything structurally richer stay residual.
//   - Any incomparable bound merge removes the column from eligibility
//     for this plan, which changes its key: bail to no-match, never to a
//     wrong match.

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/expr"
	"repro/internal/vector"
)

// Interval is the per-column bound summary of a predicate's interval
// conjuncts: the values in the column satisfying every one of them. An
// absent bound side is unbounded; the zero Interval is (-inf, +inf).
type Interval struct {
	HasLo, HasHi   bool
	Lo, Hi         vector.Value
	LoOpen, HiOpen bool // open = strict (>/<), closed = >= / <=
}

// contains reports whether every value admitted by n is admitted by iv,
// conservatively: incomparable bound kinds report false.
func (iv Interval) contains(n Interval) bool {
	if iv.HasLo {
		if !n.HasLo {
			return false
		}
		cmp, ok := compareConsts(iv.Lo, n.Lo)
		if !ok || cmp > 0 {
			return false
		}
		// Equal bounds: an open (strict) wider bound excludes the value a
		// closed narrower bound admits.
		if cmp == 0 && iv.LoOpen && !n.LoOpen {
			return false
		}
	}
	if iv.HasHi {
		if !n.HasHi {
			return false
		}
		cmp, ok := compareConsts(iv.Hi, n.Hi)
		if !ok || cmp < 0 {
			return false
		}
		if cmp == 0 && iv.HiOpen && !n.HiOpen {
			return false
		}
	}
	return true
}

// SubsumptionKey identifies the bucket of plans that are structurally
// identical up to the constants of their re-filterable interval
// conjuncts. The zero key marks an ineligible plan.
type SubsumptionKey [32]byte

// IsZero reports whether the key was never computed (ineligible plan).
func (k SubsumptionKey) IsZero() bool { return k == SubsumptionKey{} }

// String renders the key as hex.
func (k SubsumptionKey) String() string { return hex.EncodeToString(k[:]) }

// SubsumptionInfo is everything the result cache needs to serve a plan
// semantically: the bucket key, the per-column interval summary of its
// re-filterable conjuncts, and a prebuilt re-filter predicate bound to
// the plan's *output* positions — evaluable directly against any cached
// final result in the same bucket (same key ⇒ identical output schema).
type SubsumptionInfo struct {
	Key       SubsumptionKey
	Intervals map[string]Interval // canonical column name → interval
	Refilter  expr.Expr           // nil when no interval conjunct exists
}

// Subsumes reports whether a query summarized by narrower can be
// answered by re-filtering a result summarized by wider: same bucket,
// and every narrower interval contained in the wider one (an absent
// interval is unbounded). Sound and conservative — false on any doubt.
func Subsumes(wider, narrower *SubsumptionInfo) bool {
	if wider == nil || narrower == nil || wider.Key.IsZero() || wider.Key != narrower.Key {
		return false
	}
	for name, w := range wider.Intervals {
		if !w.contains(narrower.Intervals[name]) {
			return false
		}
	}
	// Columns only the narrower query constrains are fine: the wider side
	// is unbounded there and the re-filter applies the narrow bound.
	return true
}

// intervalConjunct is one conjunct of the shape `col CMP constant`
// (either orientation), normalized to the column on the left.
type intervalConjunct struct {
	col *expr.Col
	op  expr.CmpOp
	val vector.Value
}

// asIntervalConjunct matches a conjunct against the interval shape. Ne
// never qualifies (it is not an interval), nor do boolean or
// kind-mismatched comparisons the executor would reject, nor NaN bounds
// (their comparisons are not an order).
func asIntervalConjunct(c expr.Expr) (intervalConjunct, bool) {
	cmp, ok := c.(*expr.Compare)
	if !ok || cmp.Op == expr.Ne {
		return intervalConjunct{}, false
	}
	if col, ok := cmp.L.(*expr.Col); ok {
		if k, ok := cmp.R.(*expr.Const); ok {
			return makeIntervalConjunct(col, cmp.Op, k.Val)
		}
	}
	if k, ok := cmp.L.(*expr.Const); ok {
		if col, ok := cmp.R.(*expr.Col); ok {
			return makeIntervalConjunct(col, flipCmp(cmp.Op), k.Val)
		}
	}
	return intervalConjunct{}, false
}

func makeIntervalConjunct(col *expr.Col, op expr.CmpOp, v vector.Value) (intervalConjunct, bool) {
	if !comparableKinds(col.K, v.Kind) {
		return intervalConjunct{}, false
	}
	if v.Kind == vector.KindFloat64 && v.F != v.F { // NaN
		return intervalConjunct{}, false
	}
	return intervalConjunct{col: col, op: op, val: v}, true
}

// flipCmp mirrors an operator across its operands: c OP col ⇔ col OP' c.
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	}
	return op // Eq
}

// comparableKinds reports whether the executor evaluates `col CMP const`
// without error for these kinds: the numeric class (int, time, float)
// inter-compares, strings compare with strings, everything else is out.
// (Booleans are excluded deliberately: a bool "interval" adds nothing.)
func comparableKinds(colK, constK vector.Kind) bool {
	numeric := func(k vector.Kind) bool {
		return k == vector.KindInt64 || k == vector.KindTime || k == vector.KindFloat64
	}
	if numeric(colK) && numeric(constK) {
		return true
	}
	return colK == vector.KindString && constK == vector.KindString
}

// bounds converts the conjunct into its interval contribution.
func (ic intervalConjunct) bounds() Interval {
	switch ic.op {
	case expr.Eq:
		return Interval{HasLo: true, Lo: ic.val, HasHi: true, Hi: ic.val}
	case expr.Lt:
		return Interval{HasHi: true, Hi: ic.val, HiOpen: true}
	case expr.Le:
		return Interval{HasHi: true, Hi: ic.val}
	case expr.Gt:
		return Interval{HasLo: true, Lo: ic.val, LoOpen: true}
	default: // Ge
		return Interval{HasLo: true, Lo: ic.val}
	}
}

// intersect merges another conjunct's bounds into iv, keeping the
// tighter bound per side. It reports false when a bound pair is
// incomparable (the caller drops the column from eligibility).
func (iv *Interval) intersect(other Interval) bool {
	if other.HasLo {
		if !iv.HasLo {
			iv.HasLo, iv.Lo, iv.LoOpen = true, other.Lo, other.LoOpen
		} else {
			cmp, ok := compareConsts(other.Lo, iv.Lo)
			if !ok {
				return false
			}
			if cmp > 0 || cmp == 0 && other.LoOpen && !iv.LoOpen {
				iv.Lo, iv.LoOpen = other.Lo, other.LoOpen
			}
		}
	}
	if other.HasHi {
		if !iv.HasHi {
			iv.HasHi, iv.Hi, iv.HiOpen = true, other.Hi, other.HiOpen
		} else {
			cmp, ok := compareConsts(other.Hi, iv.Hi)
			if !ok {
				return false
			}
			if cmp < 0 || cmp == 0 && other.HiOpen && !iv.HiOpen {
				iv.Hi, iv.HiOpen = other.Hi, other.HiOpen
			}
		}
	}
	return true
}

// refCol is one re-filterable output column: where the passthrough lands
// in the output schema and its kind.
type refCol struct {
	pos  int
	kind vector.Kind
}

// SubsumptionInfoOf computes the subsumption summary of a normalized
// plan, or nil when the plan is ineligible (see the bail-outs above).
func SubsumptionInfoOf(root Node) *SubsumptionInfo {
	// Bail-out 1: row-collapsing operators anywhere make re-filtering the
	// final result unsound.
	eligible := true
	Walk(root, func(n Node) {
		switch n.(type) {
		case *Aggregate, *Limit:
			eligible = false
		}
	})
	if !eligible {
		return nil
	}

	rn := canonicalBindings(root)
	refCols := refilterableColumns(root, rn)

	// Collect every selection conjunct once: interval conjuncts over
	// re-filterable columns become the summary; everything else stays
	// verbatim in the key. A column whose bounds fail to merge loses
	// eligibility (its conjuncts go back to verbatim via elide).
	intervals := make(map[string]Interval)
	blocked := make(map[string]bool)
	collect := func(pred expr.Expr) {
		if pred == nil {
			return
		}
		for _, c := range expr.SplitAnd(FoldConstants(pred)) {
			ic, ok := asIntervalConjunct(c)
			if !ok {
				continue
			}
			name := canonColName(ic.col.Name, rn)
			rc, ok := refCols[name]
			if !ok || rc.kind != ic.col.K {
				continue
			}
			iv := intervals[name]
			if !iv.intersect(ic.bounds()) {
				blocked[name] = true
				continue
			}
			intervals[name] = iv
		}
	}
	Walk(root, func(n Node) {
		switch t := n.(type) {
		case *Select:
			collect(t.Pred)
		case *Mount:
			collect(t.Pred)
		case *CacheScan:
			collect(t.Pred)
		}
	})
	for name := range blocked {
		delete(intervals, name)
	}

	// The key: the canonical rendering with eligible interval conjuncts
	// elided entirely — a plan that does not constrain a column at all
	// shares the bucket with one that does (its interval is simply
	// unbounded), so a fully wider result can serve a constrained query.
	elide := func(c expr.Expr, rn map[string]string) (string, bool) {
		if ic, ok := asIntervalConjunct(c); ok {
			name := canonColName(ic.col.Name, rn)
			if rc, ok := refCols[name]; ok && rc.kind == ic.col.K && !blocked[name] {
				return "", false
			}
		}
		return canonExpr(c, rn), true
	}
	key := SubsumptionKey(sha256.Sum256([]byte("subsume:" + canonNodeWith(root, rn, elide))))

	return &SubsumptionInfo{
		Key:       key,
		Intervals: intervals,
		Refilter:  buildRefilter(intervals, refCols),
	}
}

// refilterableColumns maps canonical column names to output positions
// for columns that pass through to the plan's output untouched. The
// output node is the root, looked at through any Sorts (stable sort
// commutes with filtering); a bare-column projection is a passthrough,
// any computed expression is not. Ambiguous canonical names drop out.
func refilterableColumns(root Node, rn map[string]string) map[string]refCol {
	out := root
	for {
		s, ok := out.(*Sort)
		if !ok {
			break
		}
		out = s.Child
	}
	cols := make(map[string]refCol)
	ambiguous := make(map[string]bool)
	add := func(name string, rc refCol) {
		if _, dup := cols[name]; dup || ambiguous[name] {
			ambiguous[name] = true
			delete(cols, name)
			return
		}
		cols[name] = rc
	}
	if p, ok := out.(*Project); ok {
		for i, e := range p.Exprs {
			if c, ok := e.(*expr.Col); ok {
				add(canonColName(c.Name, rn), refCol{pos: i, kind: c.K})
			}
		}
		return cols
	}
	for i, ci := range out.Schema() {
		add(canonColName(ci.Qualified(), rn), refCol{pos: i, kind: ci.Kind})
	}
	return cols
}

// buildRefilter compiles the merged intervals into one predicate over
// the plan's output positions: what turns a wider cached result into
// this plan's answer. Interval semantics make it equivalent to the
// plan's own interval conjuncts, and comparableKinds guarantees it
// evaluates without error.
func buildRefilter(intervals map[string]Interval, refCols map[string]refCol) expr.Expr {
	names := make([]string, 0, len(intervals))
	for name := range intervals {
		names = append(names, name)
	}
	sort.Strings(names)
	var conjuncts []expr.Expr
	for _, name := range names {
		iv, rc := intervals[name], refCols[name]
		col := &expr.Col{Index: rc.pos, Name: name, K: rc.kind}
		if iv.HasLo {
			op := expr.Ge
			if iv.LoOpen {
				op = expr.Gt
			}
			conjuncts = append(conjuncts, &expr.Compare{Op: op, L: col, R: &expr.Const{Val: iv.Lo}})
		}
		if iv.HasHi {
			op := expr.Le
			if iv.HiOpen {
				op = expr.Lt
			}
			conjuncts = append(conjuncts, &expr.Compare{Op: op, L: col, R: &expr.Const{Val: iv.Hi}})
		}
	}
	return expr.JoinAnd(conjuncts)
}
