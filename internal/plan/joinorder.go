package plan

import "repro/internal/expr"

// CardFunc answers "how many rows does this subtree yield" with exact
// numbers (ok=false when unknown). In two-stage execution the frozen Qf
// result provides these for free — see internal/stats.
type CardFunc func(Node) (int64, bool)

// OrderJoins rewrites every maximal join chain greedily
// smallest-known-cardinality-first: the smallest input becomes the
// innermost (right-deep) relation, which execution uses as the hash
// build side, and each next relation is the smallest one connected to
// the chain so far by a join edge (avoiding cartesian products). A
// chain containing a provably empty input collapses to an empty union —
// early termination before any file is mounted.
//
// The rewrite preserves the result as a SET but may permute row order,
// so callers must only apply it when the consumer is order-insensitive
// (global aggregates); order-sensitive plans get PruneEmptyJoins
// instead. The returned count is the number of chains rewritten.
func OrderJoins(root Node, card CardFunc) (Node, int) {
	return orderJoins(root, card, true)
}

// PruneEmptyJoins applies only the early-termination part of OrderJoins:
// a join chain with a provably empty input is replaced by an empty
// union with the chain's schema. Row order is untouched, so this is
// safe for every consumer.
func PruneEmptyJoins(root Node, card CardFunc) (Node, int) {
	return orderJoins(root, card, false)
}

// orderJoins recurses top-down so each maximal join chain is flattened
// exactly once (Transform is bottom-up and would re-flatten rewritten
// inner chains).
func orderJoins(n Node, card CardFunc, reorder bool) (Node, int) {
	if j, ok := n.(*Join); ok {
		return rewriteChain(j, card, reorder)
	}
	children := n.Children()
	if len(children) == 0 {
		return n, 0
	}
	newChildren := make([]Node, len(children))
	changed, flips := false, 0
	for i, c := range children {
		nc, f := orderJoins(c, card, reorder)
		newChildren[i] = nc
		flips += f
		if nc != c {
			changed = true
		}
	}
	if !changed {
		return n, flips
	}
	return n.withChildren(newChildren), flips
}

func rewriteChain(j *Join, card CardFunc, reorder bool) (Node, int) {
	origSchema := j.Schema()
	leaves, edges := flattenJoins(j)
	flips := 0
	// Leaves may themselves contain join chains below non-Join nodes
	// (e.g. under a Select that terminated flattening): recurse first.
	for i, leaf := range leaves {
		nl, f := orderJoins(leaf, card, reorder)
		leaves[i] = nl
		flips += f
	}
	rows := make([]int64, len(leaves))
	known := make([]bool, len(leaves))
	anyKnown := false
	for i, leaf := range leaves {
		rows[i], known[i] = card(leaf)
		if known[i] {
			anyKnown = true
			if rows[i] == 0 {
				// A provably empty input empties the whole inner-join
				// chain: stop before mounting anything.
				return &UnionAll{Inputs: nil, Cols: origSchema}, flips + 1
			}
		}
	}
	if !reorder || !anyKnown || len(leaves) < 2 {
		return rebuildInPlace(j, leaves, flips)
	}
	order := greedyOrder(leaves, rows, known, edges)
	// Already in the desired shape? A right-deep chain whose flatten
	// order is the reverse of the greedy (smallest-first) order has the
	// smallest relation innermost and needs no rewrite.
	if isRightDeepChain(j) {
		desired := true
		for i, idx := range order {
			if idx != len(order)-1-i {
				desired = false
				break
			}
		}
		if desired {
			return rebuildInPlace(j, leaves, flips)
		}
	}
	// Right-deep with the smallest relation innermost: reverse the
	// greedy (smallest-first) order so buildRightDeep places it deepest,
	// where execution's hash join builds.
	reversed := make([]Node, len(order))
	for i, idx := range order {
		reversed[len(order)-1-i] = leaves[idx]
	}
	tree := buildRightDeep(reversed, edges)
	return restoreSchema(tree, origSchema), flips + 1
}

// isRightDeepChain reports whether every left input of the chain is a
// leaf (the shape buildRightDeep produces).
func isRightDeepChain(j *Join) bool {
	for {
		if _, ok := j.Left.(*Join); ok {
			return false
		}
		r, ok := j.Right.(*Join)
		if !ok {
			return true
		}
		j = r
	}
}

// rebuildInPlace grafts rewritten leaves back into the original join
// structure (preserving its shape and therefore its row order); an
// untouched chain stays pointer-identical.
func rebuildInPlace(j *Join, leaves []Node, flips int) (Node, int) {
	next := 0
	var graft func(n Node) Node
	graft = func(n Node) Node {
		if jn, ok := n.(*Join); ok {
			l, r := graft(jn.Left), graft(jn.Right)
			if l == jn.Left && r == jn.Right {
				return jn
			}
			return jn.withChildren([]Node{l, r})
		}
		leaf := leaves[next]
		next++
		return leaf
	}
	return graft(j), flips
}

// greedyOrder returns leaf indexes smallest-first: start with the
// smallest known input, then repeatedly take the smallest remaining
// leaf connected to the chosen set by a join edge (unknown cardinality
// sorts last; ties break on original position, keeping the rewrite
// deterministic). Leaves with no connecting edge are deferred until
// nothing connected remains, mirroring joinWithEdges' cartesian
// fallback.
func greedyOrder(leaves []Node, rows []int64, known []bool, edges []joinEdge) []int {
	n := len(leaves)
	chosen := make([]bool, n)
	order := make([]int, 0, n)
	var chosenSchema []ColInfo
	better := func(a, b int) bool { // does a beat b?
		if known[a] != known[b] {
			return known[a]
		}
		if known[a] && rows[a] != rows[b] {
			return rows[a] < rows[b]
		}
		return a < b
	}
	connected := func(i int) bool {
		ls := leaves[i].Schema()
		for _, e := range edges {
			if FindColumn(ls, e.a) >= 0 && FindColumn(chosenSchema, e.b) >= 0 {
				return true
			}
			if FindColumn(ls, e.b) >= 0 && FindColumn(chosenSchema, e.a) >= 0 {
				return true
			}
		}
		return false
	}
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] || (len(order) > 0 && !connected(i)) {
				continue
			}
			if best < 0 || better(i, best) {
				best = i
			}
		}
		if best < 0 { // nothing connected: fall back to smallest remaining
			for i := 0; i < n; i++ {
				if !chosen[i] && (best < 0 || better(i, best)) {
					best = i
				}
			}
		}
		chosen[best] = true
		order = append(order, best)
		chosenSchema = append(chosenSchema, leaves[best].Schema()...)
	}
	return order
}

// restoreSchema wraps the reordered chain in a projection that restores
// the original column order, so nothing upstream of the chain observes
// the rewrite.
func restoreSchema(tree Node, orig []ColInfo) Node {
	ts := tree.Schema()
	exprs := make([]expr.Expr, len(orig))
	names := make([]string, len(orig))
	for i, c := range orig {
		q := c.Qualified()
		idx := FindColumn(ts, q)
		exprs[i] = &expr.Col{Index: idx, Name: q, K: c.Kind}
		names[i] = q
	}
	return &Project{Exprs: exprs, Names: names, Child: tree}
}
