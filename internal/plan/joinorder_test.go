package plan

import (
	"testing"

	"repro/internal/vector"
)

// rel builds a ResultScan leaf with one key column per name.
func rel(name string, cols ...string) *ResultScan {
	ci := make([]ColInfo, len(cols))
	for i, c := range cols {
		ci[i] = ColInfo{Table: name, Name: c, Kind: vector.KindInt64}
	}
	return &ResultScan{Name: name, Cols: ci}
}

// cardByName answers cardinalities from a fixed table.
func cardByName(cards map[string]int64) CardFunc {
	return func(n Node) (int64, bool) {
		if rs, ok := n.(*ResultScan); ok {
			c, ok := cards[rs.Name]
			return c, ok
		}
		return 0, false
	}
}

// chain is A ⋈ B ⋈ C as the parser shapes it: (A ⋈ B) ⋈ C.
func testChain() (*Join, *ResultScan, *ResultScan, *ResultScan) {
	a, b, c := rel("A", "k", "x"), rel("B", "k", "m"), rel("C", "m")
	inner := &Join{Left: a, Right: b, LeftKeys: []string{"A.k"}, RightKeys: []string{"B.k"}}
	outer := &Join{Left: inner, Right: c, LeftKeys: []string{"B.m"}, RightKeys: []string{"C.m"}}
	return outer, a, b, c
}

func schemaNames(s []ColInfo) []string {
	out := make([]string, len(s))
	for i, ci := range s {
		out[i] = ci.Qualified()
	}
	return out
}

func TestOrderJoinsSmallestInnermost(t *testing.T) {
	root, _, _, c := testChain()
	origSchema := schemaNames(root.Schema())
	out, flips := OrderJoins(root, cardByName(map[string]int64{"A": 100, "B": 10, "C": 1}))
	if flips != 1 {
		t.Fatalf("flips = %d, want 1", flips)
	}
	proj, ok := out.(*Project)
	if !ok {
		t.Fatalf("root = %T, want *Project restoring the schema", out)
	}
	if got := schemaNames(proj.Schema()); len(got) != len(origSchema) {
		t.Fatalf("schema arity changed: %v vs %v", got, origSchema)
	} else {
		for i := range got {
			if got[i] != origSchema[i] {
				t.Fatalf("schema[%d] = %q, want %q", i, got[i], origSchema[i])
			}
		}
	}
	outer, ok := proj.Child.(*Join)
	if !ok {
		t.Fatalf("child = %T, want *Join", proj.Child)
	}
	innerJ, ok := outer.Right.(*Join)
	if !ok {
		t.Fatalf("not right-deep: right = %T", outer.Right)
	}
	if innerJ.Right != c {
		t.Errorf("innermost (build side) = %v, want smallest relation C", innerJ.Right)
	}
}

func TestOrderJoinsAlreadyOptimal(t *testing.T) {
	// A ⋈ (B ⋈ C) with C smallest is already the greedy shape.
	a, b, c := rel("A", "k", "x"), rel("B", "k", "m"), rel("C", "m")
	inner := &Join{Left: b, Right: c, LeftKeys: []string{"B.m"}, RightKeys: []string{"C.m"}}
	root := &Join{Left: a, Right: inner, LeftKeys: []string{"A.k"}, RightKeys: []string{"B.k"}}
	out, flips := OrderJoins(root, cardByName(map[string]int64{"A": 100, "B": 10, "C": 1}))
	if flips != 0 {
		t.Errorf("flips = %d, want 0 for already-optimal chain", flips)
	}
	if out != Node(root) {
		t.Errorf("already-optimal chain rewritten: %T", out)
	}
}

func TestOrderJoinsEmptyInputCollapses(t *testing.T) {
	root, _, _, _ := testChain()
	origSchema := schemaNames(root.Schema())
	for _, f := range []func(Node, CardFunc) (Node, int){OrderJoins, PruneEmptyJoins} {
		out, flips := f(root, cardByName(map[string]int64{"B": 0}))
		if flips != 1 {
			t.Fatalf("flips = %d, want 1", flips)
		}
		u, ok := out.(*UnionAll)
		if !ok || len(u.Inputs) != 0 {
			t.Fatalf("out = %T, want empty *UnionAll", out)
		}
		got := schemaNames(u.Schema())
		for i := range origSchema {
			if got[i] != origSchema[i] {
				t.Fatalf("empty-union schema[%d] = %q, want %q", i, got[i], origSchema[i])
			}
		}
	}
}

func TestPruneEmptyJoinsNeverReorders(t *testing.T) {
	root, _, _, _ := testChain()
	out, flips := PruneEmptyJoins(root, cardByName(map[string]int64{"A": 100, "B": 10, "C": 1}))
	if flips != 0 {
		t.Errorf("flips = %d, want 0", flips)
	}
	if out != Node(root) {
		t.Errorf("order-sensitive chain restructured: %T", out)
	}
}

func TestOrderJoinsUnknownCardinalities(t *testing.T) {
	root, _, _, _ := testChain()
	out, flips := OrderJoins(root, cardByName(nil))
	if flips != 0 || out != Node(root) {
		t.Errorf("all-unknown chain rewritten (flips=%d, %T)", flips, out)
	}
}

func TestOrderJoinsAvoidsCartesian(t *testing.T) {
	// C is tiny but shares no edge with A; greedy must pick B (connected
	// to C) before A even though A < B.
	root, a, _, c := testChain()
	out, _ := OrderJoins(root, cardByName(map[string]int64{"A": 5, "B": 10, "C": 1}))
	proj, ok := out.(*Project)
	if !ok {
		t.Fatalf("root = %T", out)
	}
	outer, _ := proj.Child.(*Join)
	if outer == nil {
		t.Fatalf("child = %T", proj.Child)
	}
	// Expected order: C (smallest) innermost, then B (connected), then A.
	if outer.Left != a {
		t.Errorf("outermost = %v, want A (only relation left after C,B)", outer.Left)
	}
	innerJ, _ := outer.Right.(*Join)
	if innerJ == nil || innerJ.Right != c {
		t.Errorf("innermost != C; cartesian-avoidance order broken")
	}
}

// TestOrderJoinsResolvable pins that the restore projection rebinds
// cleanly: Resolve must succeed on the rewritten plan and preserve the
// outward schema.
func TestOrderJoinsResolvable(t *testing.T) {
	root, _, _, _ := testChain()
	out, flips := OrderJoins(root, cardByName(map[string]int64{"A": 100, "B": 10, "C": 1}))
	if flips != 1 {
		t.Fatalf("flips = %d", flips)
	}
	resolved, err := Resolve(out)
	if err != nil {
		t.Fatalf("Resolve after reorder: %v", err)
	}
	want := schemaNames(root.Schema())
	got := schemaNames(resolved.Schema())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resolved schema[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
