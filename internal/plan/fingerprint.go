package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/vector"
)

// Fingerprint is a stable hash of a plan's canonical form: two plans
// receive the same fingerprint exactly when their canonical renderings
// agree. Semantically equivalent spellings of a query — reordered
// conjuncts, swapped join sides, different table aliases, folded-away
// constant arithmetic — converge to one canonical form and therefore one
// fingerprint. The result cache keys on it.
type Fingerprint [32]byte

// String renders the fingerprint as hex (abbreviated form for display is
// the caller's business).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short is the first 12 hex digits, for logs and the explorer.
func (f Fingerprint) Short() string { return f.String()[:12] }

// IsZero reports whether the fingerprint was never computed.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// FingerprintOf hashes a plan's canonical rendering.
func FingerprintOf(root Node) Fingerprint {
	return Fingerprint(sha256.Sum256([]byte(CanonicalString(root))))
}

// CanonicalString renders a plan into its canonical, alias-insensitive
// form: bindings become canonical table names, commutative join chains
// flatten into sorted leaf and edge sets, conjunct lists sort, constant
// subexpressions fold, and comparisons face one canonical direction. The
// rendering is a pure function of the plan's semantics under those
// equivalences; it never mutates the plan.
func CanonicalString(root Node) string {
	rn := canonicalBindings(root)
	return canonNode(root, rn)
}

// canonicalBindings assigns every table binding a canonical,
// alias-independent name. A table referenced once canonicalizes to its
// own name; self-join duplicates are ranked by the canonical rendering
// of their leaf unit (scan plus the selections directly above it) and
// numbered table@2, table@3, ... in that order. Duplicates whose leaf
// units render identically (fully symmetric self-join legs) fall back
// to plan traversal order: deterministic for one plan, but two
// spellings that permute indistinguishable legs may fingerprint
// differently. That costs at worst a false cache miss, never a false
// hit — the two fingerprints still only ever describe this query.
func canonicalBindings(root Node) map[string]string {
	type leaf struct {
		binding, table string
		preds          []expr.Expr
	}
	var leaves []leaf
	// One binding names one relation even when rule (1) expanded it into
	// many mounts/cache-scans: keep the first leaf per binding.
	seenBinding := make(map[string]bool)
	add := func(l leaf) {
		if !seenBinding[l.binding] {
			seenBinding[l.binding] = true
			leaves = append(leaves, l)
		}
	}
	var collect func(n Node, preds []expr.Expr)
	collect = func(n Node, preds []expr.Expr) {
		switch t := n.(type) {
		case *Select:
			collect(t.Child, append(preds, t.Pred))
			return
		case *Scan:
			add(leaf{t.Binding, t.TableName, preds})
			return
		case *Mount:
			add(leaf{t.Binding, t.Def.Name, preds})
			return
		case *CacheScan:
			add(leaf{t.Binding, t.Def.Name, preds})
			return
		}
		for _, c := range n.Children() {
			collect(c, nil)
		}
	}
	collect(root, nil)

	byTable := make(map[string][]leaf)
	for _, l := range leaves {
		byTable[l.table] = append(byTable[l.table], l)
	}
	rn := make(map[string]string, len(leaves))
	for table, ls := range byTable {
		if len(ls) == 1 {
			rn[ls[0].binding] = table
			continue
		}
		// Rank duplicates by an alias-free provisional rendering of their
		// leaf unit (every binding provisionally mapped to its table name).
		prov := make(map[string]string, len(leaves))
		for _, l := range leaves {
			prov[l.binding] = l.table
		}
		type ranked struct {
			binding, key string
		}
		rs := make([]ranked, len(ls))
		for i, l := range ls {
			parts := make([]string, 0, len(l.preds))
			for _, p := range l.preds {
				parts = append(parts, canonConjuncts(p, prov))
			}
			sort.Strings(parts)
			rs[i] = ranked{l.binding, "scan(" + table + ")[" + strings.Join(parts, "&") + "]"}
		}
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].key < rs[j].key })
		for i, r := range rs {
			if i == 0 {
				rn[r.binding] = table
			} else {
				rn[r.binding] = fmt.Sprintf("%s@%d", table, i+1)
			}
		}
	}
	return rn
}

// canonNode renders one node canonically.
func canonNode(n Node, rn map[string]string) string {
	return canonNodeWith(n, rn, renderCanon)
}

// conjunctRenderer renders one selection conjunct, or elides it from the
// rendering by reporting keep=false. The fingerprint uses renderCanon
// (render everything); the subsumption key elides the interval conjuncts
// it can re-apply at serve time.
type conjunctRenderer func(c expr.Expr, rn map[string]string) (s string, keep bool)

func renderCanon(c expr.Expr, rn map[string]string) (string, bool) {
	return canonExpr(c, rn), true
}

// canonNodeWith renders one node canonically, with selection conjuncts
// (Select predicates and the mount/cache-scan pushdowns rule (1) derives
// from them) rendered through render. Everything else — projections,
// join edges, aggregates — always renders in full.
func canonNodeWith(n Node, rn map[string]string, render conjunctRenderer) string {
	switch t := n.(type) {
	case *Scan:
		return "scan(" + canonBinding(t.Binding, t.TableName, rn) + ")"
	case *Select:
		// A selection whose conjuncts all render away is the identity:
		// render it transparently, so a plan that never had the selection
		// (e.g. no constraint at all on an elided column) reads the same.
		conj := canonConjunctsWith(t.Pred, rn, render)
		if conj == "" {
			return canonNodeWith(t.Child, rn, render)
		}
		return "select[" + conj + "](" + canonNodeWith(t.Child, rn, render) + ")"
	case *Project:
		parts := make([]string, len(t.Exprs))
		for i, e := range t.Exprs {
			parts[i] = canonLabel(t.Names[i], rn) + "=" + canonExpr(e, rn)
		}
		return "project[" + strings.Join(parts, ",") + "](" + canonNodeWith(t.Child, rn, render) + ")"
	case *Join:
		// Flatten the maximal commutative join chain: the set of leaves
		// and the set of equality edges identify it regardless of the
		// syntactic association and side order.
		leaves, edges := flattenJoins(t)
		ls := make([]string, len(leaves))
		for i, l := range leaves {
			ls[i] = canonNodeWith(l, rn, render)
		}
		sort.Strings(ls)
		es := make([]string, 0, len(edges))
		seen := make(map[string]bool)
		for _, e := range edges {
			a, b := canonColName(e.a, rn), canonColName(e.b, rn)
			if b < a {
				a, b = b, a
			}
			s := a + "=" + b
			if !seen[s] {
				seen[s] = true
				es = append(es, s)
			}
		}
		sort.Strings(es)
		return "join{" + strings.Join(ls, ",") + "}on{" + strings.Join(es, ",") + "}"
	case *Aggregate:
		groups := make([]string, len(t.GroupBy))
		for i, g := range t.GroupBy {
			groups[i] = canonColName(g, rn)
		}
		aggs := make([]string, len(t.Aggs))
		for i, a := range t.Aggs {
			s := a.Func.String()
			if a.Distinct {
				s += " distinct"
			}
			if a.Arg != nil {
				s += "(" + canonExpr(a.Arg, rn) + ")"
			} else {
				s += "(*)"
			}
			aggs[i] = s
		}
		return "agg[" + strings.Join(groups, ",") + ";" + strings.Join(aggs, ",") + "](" +
			canonNodeWith(t.Child, rn, render) + ")"
	case *Sort:
		parts := make([]string, len(t.Keys))
		for i, k := range t.Keys {
			dir := "a"
			if k.Desc {
				dir = "d"
			}
			parts[i] = strconv.Itoa(k.Index) + dir
		}
		return "sort[" + strings.Join(parts, ",") + "](" + canonNodeWith(t.Child, rn, render) + ")"
	case *Limit:
		return "limit[" + strconv.FormatInt(t.N, 10) + "](" + canonNodeWith(t.Child, rn, render) + ")"
	case *UnionAll:
		// Union order determines result row order: keep it.
		parts := make([]string, len(t.Inputs))
		for i, in := range t.Inputs {
			parts[i] = canonNodeWith(in, rn, render)
		}
		return "union(" + strings.Join(parts, ",") + ")"
	case *ResultScan:
		// The stage-binding name (qfN) is a per-prepare sequence number:
		// canonical form identifies the scan by its schema instead.
		cols := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = canonColName(c.Qualified(), rn) + ":" + c.Kind.String()
		}
		return "result-scan[" + strings.Join(cols, ",") + "]"
	case *Mount:
		return "mount(" + t.URI + ")[" + canonConjunctsWith(t.Pred, rn, render) + "]"
	case *CacheScan:
		return "cache-scan(" + t.URI + ")[" + canonConjunctsWith(t.Pred, rn, render) + "]"
	default:
		return fmt.Sprintf("%T", n)
	}
}

// canonConjuncts folds a predicate, splits it into conjuncts and renders
// them sorted. A nil predicate renders empty.
func canonConjuncts(pred expr.Expr, rn map[string]string) string {
	return canonConjunctsWith(pred, rn, renderCanon)
}

// canonConjunctsWith folds a predicate, splits it into conjuncts and
// renders the kept ones sorted. A nil predicate renders empty, and so
// does one whose conjuncts the renderer elides entirely.
func canonConjunctsWith(pred expr.Expr, rn map[string]string, render conjunctRenderer) string {
	if pred == nil {
		return ""
	}
	folded := FoldConstants(pred)
	conjuncts := expr.SplitAnd(folded)
	parts := make([]string, 0, len(conjuncts))
	for _, c := range conjuncts {
		if s, keep := render(c, rn); keep {
			parts = append(parts, s)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "&&")
}

// canonExpr renders one already-folded expression canonically. A nil
// rename map renders alias-sensitively (used for in-plan normalization,
// where stability within one plan suffices).
func canonExpr(e expr.Expr, rn map[string]string) string {
	switch t := e.(type) {
	case *expr.Col:
		return canonColName(t.Name, rn)
	case *expr.Const:
		return canonConst(t.Val)
	case *expr.Compare:
		l, r := canonExpr(t.L, rn), canonExpr(t.R, rn)
		op := t.Op
		// One canonical direction per operator class: commutative
		// comparisons sort their sides, order comparisons face "<".
		switch op {
		case expr.Eq, expr.Ne:
			if r < l {
				l, r = r, l
			}
		case expr.Gt:
			op, l, r = expr.Lt, r, l
		case expr.Ge:
			op, l, r = expr.Le, r, l
		}
		return "(" + l + op.String() + r + ")"
	case *expr.Logic:
		ops := flattenLogic(t.Op, t)
		parts := make([]string, len(ops))
		for i, o := range ops {
			parts[i] = canonExpr(o, rn)
		}
		sort.Strings(parts)
		return "(" + strings.Join(parts, t.Op.String()) + ")"
	case *expr.Not:
		return "!(" + canonExpr(t.E, rn) + ")"
	case *expr.Arith:
		l, r := canonExpr(t.L, rn), canonExpr(t.R, rn)
		if (t.Op == expr.Add || t.Op == expr.Mul) && r < l {
			l, r = r, l
		}
		return "(" + l + t.Op.String() + r + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// flattenLogic collects the operand list of a same-operator chain.
func flattenLogic(op expr.LogicOp, e expr.Expr) []expr.Expr {
	if l, ok := e.(*expr.Logic); ok && l.Op == op {
		return append(flattenLogic(op, l.L), flattenLogic(op, l.R)...)
	}
	return []expr.Expr{e}
}

// canonConst renders a constant kind-tagged, so 1, 1.0 and '1' never
// collide. Times render as raw nanoseconds (display formatting is not
// part of identity).
func canonConst(v vector.Value) string {
	switch v.Kind {
	case vector.KindInt64:
		return "i:" + strconv.FormatInt(v.I, 10)
	case vector.KindTime:
		return "t:" + strconv.FormatInt(v.I, 10)
	case vector.KindFloat64:
		return "f:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case vector.KindBool:
		return "b:" + strconv.FormatBool(v.B)
	default:
		return "s:" + strconv.Quote(v.S)
	}
}

// canonColName renders a qualified column reference with its binding
// replaced by the canonical table name. Names that are not simple
// binding-qualified references (bare columns, generated aggregate
// labels like "AVG(x.sample_value)") go through the token-wise label
// rewrite, so aliases embedded in generated labels canonicalize too.
func canonColName(name string, rn map[string]string) string {
	if rn == nil {
		return name
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		if canon, ok := rn[name[:dot]]; ok {
			return canon + "." + name[dot+1:]
		}
	}
	return canonLabel(name, rn)
}

// canonBinding canonicalizes a leaf binding, falling back to the table
// name when the rename map does not know it.
func canonBinding(binding, table string, rn map[string]string) string {
	if rn != nil {
		if canon, ok := rn[binding]; ok {
			return canon
		}
	}
	return table
}

// canonLabel rewrites alias-qualified tokens inside a generated output
// label (e.g. "AVG(x.sample_value)" with D aliased x) to their canonical
// binding, leaving everything else — including string literals' quotes —
// untouched. Tokens qualify only when preceded by a non-identifier
// character or the start of the label.
func canonLabel(label string, rn map[string]string) string {
	if rn == nil || len(rn) == 0 {
		return label
	}
	isIdent := func(b byte) bool {
		return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
	}
	var sb strings.Builder
	for i := 0; i < len(label); {
		replaced := false
		if i == 0 || !isIdent(label[i-1]) {
			for binding, canon := range rn {
				if binding == canon {
					continue
				}
				tok := binding + "."
				if strings.HasPrefix(label[i:], tok) {
					sb.WriteString(canon + ".")
					i += len(tok)
					replaced = true
					break
				}
			}
		}
		if !replaced {
			sb.WriteByte(label[i])
			i++
		}
	}
	return sb.String()
}
