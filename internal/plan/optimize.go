package plan

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// Optimize runs the compile-time optimization pipeline of section 3 of
// the paper: ordinary rewrites (predicate pushdown) plus the additional
// metadata-first join reordering whose purpose is to form the metadata
// branch Qf. The returned plan is fully re-bound.
func Optimize(root Node, cat *catalog.Catalog) (Node, error) {
	root = PushDown(root)
	root = ReorderMetadataFirst(root, cat)
	// Reordering may have lifted predicates; push again so each relation
	// carries its own selections before decomposition.
	root = PushDown(root)
	root = CollapseSelects(root)
	return Resolve(root)
}

// PushDown sinks selection predicates to the lowest operator whose
// schema covers them: through joins into their sides, through unions
// into every input, and into the Pred slot of mounts and cache-scans
// (the combined σ∘mount and σ∘cache-scan access paths).
func PushDown(root Node) Node {
	return Transform(root, func(n Node) Node {
		sel, ok := n.(*Select)
		if !ok {
			return n
		}
		child := sel.Child
		var remaining []expr.Expr
		for _, conj := range expr.SplitAnd(sel.Pred) {
			newChild, consumed := sink(child, conj)
			if consumed {
				child = newChild
			} else {
				remaining = append(remaining, conj)
			}
		}
		if len(remaining) == 0 {
			return child
		}
		return &Select{Pred: expr.JoinAnd(remaining), Child: child}
	})
}

// sink attempts to push one conjunct into n, returning the rewritten
// node and whether the predicate was consumed.
func sink(n Node, pred expr.Expr) (Node, bool) {
	switch t := n.(type) {
	case *Join:
		if coversExpr(t.Left.Schema(), pred) {
			newLeft, ok := sink(t.Left, pred)
			if !ok {
				newLeft = &Select{Pred: pred, Child: t.Left}
			}
			return t.withChildren([]Node{newLeft, t.Right}), true
		}
		if coversExpr(t.Right.Schema(), pred) {
			newRight, ok := sink(t.Right, pred)
			if !ok {
				newRight = &Select{Pred: pred, Child: t.Right}
			}
			return t.withChildren([]Node{t.Left, newRight}), true
		}
		return n, false
	case *Select:
		newChild, ok := sink(t.Child, pred)
		if ok {
			return &Select{Pred: t.Pred, Child: newChild}, true
		}
		return &Select{Pred: expr.JoinAnd([]expr.Expr{t.Pred, pred}), Child: t.Child}, true
	case *UnionAll:
		newInputs := make([]Node, len(t.Inputs))
		for i, in := range t.Inputs {
			child, ok := sink(in, pred)
			if !ok {
				child = &Select{Pred: pred, Child: in}
			}
			newInputs[i] = child
		}
		return &UnionAll{Inputs: newInputs}, true
	case *Mount:
		merged := pred
		if t.Pred != nil {
			merged = expr.JoinAnd([]expr.Expr{t.Pred, pred})
		}
		return &Mount{URI: t.URI, Adapter: t.Adapter, Binding: t.Binding, Def: t.Def, Pred: merged, EstBytes: t.EstBytes}, true
	case *CacheScan:
		merged := pred
		if t.Pred != nil {
			merged = expr.JoinAnd([]expr.Expr{t.Pred, pred})
		}
		return &CacheScan{URI: t.URI, Adapter: t.Adapter, Binding: t.Binding, Def: t.Def, Pred: merged, EstBytes: t.EstBytes}, true
	case *Scan:
		return &Select{Pred: pred, Child: t}, true
	default:
		return n, false
	}
}

// coversExpr reports whether every column referenced by e exists in the
// schema (by qualified name).
func coversExpr(schema []ColInfo, e expr.Expr) bool {
	covered := true
	e.Walk(func(x expr.Expr) {
		if c, ok := x.(*expr.Col); ok {
			if FindColumn(schema, c.Name) < 0 {
				covered = false
			}
		}
	})
	return covered
}

// joinEdge is one equality between columns of two relations.
type joinEdge struct {
	a, b string // qualified column names
}

// ReorderMetadataFirst rewrites every maximal join chain into the
// paper's pattern
//
//	a1 ⋈ (a2 ⋈ (... (ay ⋈ (m1 ⋈ (m2 ⋈ (... ⋈ mx))))...))
//
// using join associativity and commutativity: metadata relations are
// collected into the innermost (deepest) subtree so that the metadata
// branch Qf exists and can be evaluated first. Relations keep their
// syntactic relative order within each class.
func ReorderMetadataFirst(root Node, cat *catalog.Catalog) Node {
	return Transform(root, func(n Node) Node {
		j, ok := n.(*Join)
		if !ok {
			return n
		}
		// Only rewrite at the top of a join chain; Transform is bottom-up,
		// so inner joins were already visited — guard by checking that
		// neither child that is a Join needs flattening twice. We flatten
		// the whole chain here and return a non-Join-rooted rewrite only
		// when the chain mixes metadata and actual relations.
		leaves, edges := flattenJoins(j)
		var mLeaves, aLeaves []Node
		for _, leaf := range leaves {
			if isMetadataOnly(leaf, cat) {
				mLeaves = append(mLeaves, leaf)
			} else {
				aLeaves = append(aLeaves, leaf)
			}
		}
		if len(mLeaves) == 0 {
			return n // nothing to reorder toward
		}
		// Build the metadata subtree m1 ⋈ (m2 ⋈ ... ⋈ mx), right-deep.
		tree := buildRightDeep(mLeaves, edges)
		// Wrap actual relations outside-in: ay innermost, a1 outermost.
		for i := len(aLeaves) - 1; i >= 0; i-- {
			tree = joinWithEdges(aLeaves[i], tree, edges)
		}
		return tree
	})
}

// flattenJoins collects the leaf relations and equi-join edges of a
// maximal join subtree. Select nodes above joins are rare after
// pushdown; they terminate flattening (treated as leaves).
func flattenJoins(n Node) ([]Node, []joinEdge) {
	j, ok := n.(*Join)
	if !ok {
		return []Node{n}, nil
	}
	leftLeaves, leftEdges := flattenJoins(j.Left)
	rightLeaves, rightEdges := flattenJoins(j.Right)
	leaves := append(leftLeaves, rightLeaves...)
	edges := append(leftEdges, rightEdges...)
	for i := range j.LeftKeys {
		edges = append(edges, joinEdge{a: j.LeftKeys[i], b: j.RightKeys[i]})
	}
	return leaves, edges
}

// isMetadataOnly reports whether every base relation in the subtree is a
// metadata table.
func isMetadataOnly(n Node, cat *catalog.Catalog) bool {
	sawLeaf := false
	ok := true
	Walk(n, func(x Node) {
		switch t := x.(type) {
		case *Scan:
			sawLeaf = true
			if t.Def.Kind != catalog.Metadata {
				ok = false
			}
		case *Mount, *CacheScan, *UnionAll:
			sawLeaf = true
			ok = false
		case *ResultScan:
			// A result-scan holds an already-computed (metadata-stage)
			// result; treat as metadata.
			sawLeaf = true
		}
	})
	return sawLeaf && ok
}

// buildRightDeep joins the leaves right-deep in order: l1 ⋈ (l2 ⋈ (...)).
func buildRightDeep(leaves []Node, edges []joinEdge) Node {
	tree := leaves[len(leaves)-1]
	for i := len(leaves) - 2; i >= 0; i-- {
		tree = joinWithEdges(leaves[i], tree, edges)
	}
	return tree
}

// joinWithEdges joins left and right using every edge that spans them;
// with no spanning edge the result is a cartesian product.
func joinWithEdges(left, right Node, edges []joinEdge) *Join {
	ls, rs := left.Schema(), right.Schema()
	var lk, rk []string
	for _, e := range edges {
		switch {
		case FindColumn(ls, e.a) >= 0 && FindColumn(rs, e.b) >= 0:
			lk = append(lk, e.a)
			rk = append(rk, e.b)
		case FindColumn(ls, e.b) >= 0 && FindColumn(rs, e.a) >= 0:
			lk = append(lk, e.b)
			rk = append(rk, e.a)
		}
	}
	return &Join{Left: left, Right: right, LeftKeys: lk, RightKeys: rk}
}

// Resolve re-binds every expression's column indexes against the current
// child schemas. Structural rewrites must be followed by Resolve before
// execution.
func Resolve(root Node) (Node, error) {
	var firstErr error
	out := Transform(root, func(n Node) Node {
		if firstErr != nil {
			return n
		}
		switch t := n.(type) {
		case *Select:
			p, err := rebindExpr(t.Pred, t.Child.Schema())
			if err != nil {
				firstErr = err
				return n
			}
			return &Select{Pred: p, Child: t.Child}
		case *Project:
			schema := t.Child.Schema()
			exprs := make([]expr.Expr, len(t.Exprs))
			for i, e := range t.Exprs {
				p, err := rebindExpr(e, schema)
				if err != nil {
					firstErr = err
					return n
				}
				exprs[i] = p
			}
			return &Project{Exprs: exprs, Names: t.Names, Child: t.Child}
		case *Aggregate:
			schema := t.Child.Schema()
			aggs := make([]AggSpec, len(t.Aggs))
			for i, a := range t.Aggs {
				aggs[i] = a
				if a.Arg != nil {
					p, err := rebindExpr(a.Arg, schema)
					if err != nil {
						firstErr = err
						return n
					}
					aggs[i].Arg = p
				}
			}
			for _, g := range t.GroupBy {
				if FindColumn(schema, g) < 0 {
					firstErr = fmt.Errorf("plan: group-by column %s not in child schema", g)
					return n
				}
			}
			return &Aggregate{GroupBy: t.GroupBy, Aggs: aggs, Child: t.Child}
		case *Mount:
			if t.Pred == nil {
				return n
			}
			p, err := rebindExpr(t.Pred, t.Schema())
			if err != nil {
				firstErr = err
				return n
			}
			return &Mount{URI: t.URI, Adapter: t.Adapter, Binding: t.Binding, Def: t.Def, Pred: p, EstBytes: t.EstBytes}
		case *CacheScan:
			if t.Pred == nil {
				return n
			}
			p, err := rebindExpr(t.Pred, t.Schema())
			if err != nil {
				firstErr = err
				return n
			}
			return &CacheScan{URI: t.URI, Adapter: t.Adapter, Binding: t.Binding, Def: t.Def, Pred: p, EstBytes: t.EstBytes}
		case *Join:
			ls, rs := t.Left.Schema(), t.Right.Schema()
			for i := range t.LeftKeys {
				if FindColumn(ls, t.LeftKeys[i]) < 0 {
					firstErr = fmt.Errorf("plan: join key %s not in left schema", t.LeftKeys[i])
					return n
				}
				if FindColumn(rs, t.RightKeys[i]) < 0 {
					firstErr = fmt.Errorf("plan: join key %s not in right schema", t.RightKeys[i])
					return n
				}
			}
			return n
		default:
			return n
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// rebindExpr rebuilds e with column indexes resolved by qualified name
// against schema.
func rebindExpr(e expr.Expr, schema []ColInfo) (expr.Expr, error) {
	switch t := e.(type) {
	case *expr.Col:
		idx := FindColumn(schema, t.Name)
		if idx < 0 {
			return nil, fmt.Errorf("plan: column %s not found during resolve", t.Name)
		}
		return &expr.Col{Index: idx, Name: t.Name, K: schema[idx].Kind}, nil
	case *expr.Const:
		return t, nil
	case *expr.Compare:
		l, err := rebindExpr(t.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := rebindExpr(t.R, schema)
		if err != nil {
			return nil, err
		}
		return &expr.Compare{Op: t.Op, L: l, R: r}, nil
	case *expr.Logic:
		l, err := rebindExpr(t.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := rebindExpr(t.R, schema)
		if err != nil {
			return nil, err
		}
		return &expr.Logic{Op: t.Op, L: l, R: r}, nil
	case *expr.Not:
		inner, err := rebindExpr(t.E, schema)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	case *expr.Arith:
		l, err := rebindExpr(t.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := rebindExpr(t.R, schema)
		if err != nil {
			return nil, err
		}
		return &expr.Arith{Op: t.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("plan: cannot resolve expression %T", e)
	}
}

// CollapseSelects merges adjacent Select nodes into one conjunction, so
// each relation carries a single σ with all its predicates (the shape
// the paper's σp1/σp2/σp3 notation assumes).
func CollapseSelects(root Node) Node {
	return Transform(root, func(n Node) Node {
		sel, ok := n.(*Select)
		if !ok {
			return n
		}
		inner, ok := sel.Child.(*Select)
		if !ok {
			return n
		}
		return &Select{
			Pred:  expr.JoinAnd([]expr.Expr{sel.Pred, inner.Pred}),
			Child: inner.Child,
		}
	})
}
