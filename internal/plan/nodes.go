// Package plan implements logical query plans: binding SQL ASTs to plan
// trees, the compile-time optimizations of classic relational engines
// (predicate pushdown, projection of join keys), and — the heart of the
// paper — the metadata-first join reordering that forms the metadata
// branch Qf, its decomposition Q = Qf ⋈ Qs, and the run-time rewrite
// rule (1) that replaces actual-data scans with unions of mounts and
// cache-scans.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/vector"
)

// ColInfo describes one column of a node's output schema. Table is the
// query-level binding (table name or alias), so the qualified name
// Table.Name is unique within a schema.
type ColInfo struct {
	Table string
	Name  string
	Kind  vector.Kind
}

// Qualified returns the display/resolution name of the column.
func (c ColInfo) Qualified() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Node is a logical plan operator.
type Node interface {
	// Schema returns the output columns of this operator.
	Schema() []ColInfo
	// Children returns the input operators.
	Children() []Node
	// withChildren returns a copy of the node with the given children
	// (same arity). Used by rewrites.
	withChildren(children []Node) Node
	// describe renders one line for plan printing.
	describe() string
}

// Scan reads a stored base table.
type Scan struct {
	TableName string // catalog table name
	Binding   string // query-level binding (alias)
	Def       catalog.TableDef
}

// Schema implements Node.
func (s *Scan) Schema() []ColInfo {
	out := make([]ColInfo, len(s.Def.Columns))
	for i, c := range s.Def.Columns {
		out[i] = ColInfo{Table: s.Binding, Name: c.Name, Kind: c.Kind}
	}
	return out
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) withChildren(children []Node) Node { return s }

func (s *Scan) describe() string {
	kind := "scan"
	if s.Def.Kind == catalog.Metadata {
		kind = "scan[metadata]"
	}
	if s.Binding != s.TableName {
		return fmt.Sprintf("%s %s AS %s", kind, s.TableName, s.Binding)
	}
	return fmt.Sprintf("%s %s", kind, s.TableName)
}

// Select filters rows by a boolean predicate.
type Select struct {
	Pred  expr.Expr
	Child Node
}

// Schema implements Node.
func (s *Select) Schema() []ColInfo { return s.Child.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

func (s *Select) withChildren(children []Node) Node {
	return &Select{Pred: s.Pred, Child: children[0]}
}

func (s *Select) describe() string { return "select " + s.Pred.String() }

// Project computes output expressions.
type Project struct {
	Exprs []expr.Expr
	Names []string
	Child Node
}

// Schema implements Node.
func (p *Project) Schema() []ColInfo {
	out := make([]ColInfo, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = ColInfo{Name: p.Names[i], Kind: e.Kind()}
	}
	return out
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

func (p *Project) withChildren(children []Node) Node {
	return &Project{Exprs: p.Exprs, Names: p.Names, Child: children[0]}
}

func (p *Project) describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "project " + strings.Join(parts, ", ")
}

// Join is an inner equi-join; LeftKeys/RightKeys are parallel lists of
// qualified column names. Empty key lists make it a cartesian product
// (which the paper notes Qf may contain, depending on schema design).
type Join struct {
	Left, Right Node
	LeftKeys    []string
	RightKeys   []string
}

// Schema implements Node.
func (j *Join) Schema() []ColInfo {
	return append(append([]ColInfo{}, j.Left.Schema()...), j.Right.Schema()...)
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

func (j *Join) withChildren(children []Node) Node {
	return &Join{Left: children[0], Right: children[1], LeftKeys: j.LeftKeys, RightKeys: j.RightKeys}
}

func (j *Join) describe() string {
	if len(j.LeftKeys) == 0 {
		return "cross-join"
	}
	conds := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		conds[i] = j.LeftKeys[i] + " = " + j.RightKeys[i]
	}
	return "join on " + strings.Join(conds, " AND ")
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	return [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[f]
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func     AggFunc
	Arg      expr.Expr // nil for COUNT(*)
	Distinct bool
	Name     string // output column name
}

// Kind returns the output kind of the aggregate.
func (a AggSpec) Kind() vector.Kind {
	switch a.Func {
	case AggCount:
		return vector.KindInt64
	case AggAvg:
		return vector.KindFloat64
	default:
		if a.Arg == nil {
			return vector.KindFloat64
		}
		return a.Arg.Kind()
	}
}

// Aggregate groups by the named columns and computes aggregates; with no
// group-by columns it produces a single global row.
type Aggregate struct {
	GroupBy []string // qualified column names in child schema
	Aggs    []AggSpec
	Child   Node
}

// Schema implements Node.
func (a *Aggregate) Schema() []ColInfo {
	child := a.Child.Schema()
	var out []ColInfo
	for _, g := range a.GroupBy {
		idx := FindColumn(child, g)
		ci := ColInfo{Name: g, Kind: vector.KindInvalid}
		if idx >= 0 {
			ci = child[idx]
		}
		out = append(out, ci)
	}
	for _, spec := range a.Aggs {
		out = append(out, ColInfo{Name: spec.Name, Kind: spec.Kind()})
	}
	return out
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

func (a *Aggregate) withChildren(children []Node) Node {
	return &Aggregate{GroupBy: a.GroupBy, Aggs: a.Aggs, Child: children[0]}
}

func (a *Aggregate) describe() string {
	parts := make([]string, 0, len(a.Aggs))
	for _, s := range a.Aggs {
		parts = append(parts, s.Name)
	}
	if len(a.GroupBy) > 0 {
		return fmt.Sprintf("aggregate %s by %s", strings.Join(parts, ", "), strings.Join(a.GroupBy, ", "))
	}
	return "aggregate " + strings.Join(parts, ", ")
}

// SortKey is one ordering key over the child's output columns.
type SortKey struct {
	Index int
	Desc  bool
}

// Sort orders rows.
type Sort struct {
	Keys  []SortKey
	Child Node
}

// Schema implements Node.
func (s *Sort) Schema() []ColInfo { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

func (s *Sort) withChildren(children []Node) Node {
	return &Sort{Keys: s.Keys, Child: children[0]}
}

func (s *Sort) describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("#%d %s", k.Index, dir)
	}
	return "sort " + strings.Join(parts, ", ")
}

// Limit caps the row count.
type Limit struct {
	N     int64
	Child Node
}

// Schema implements Node.
func (l *Limit) Schema() []ColInfo { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

func (l *Limit) withChildren(children []Node) Node {
	return &Limit{N: l.N, Child: children[0]}
}

func (l *Limit) describe() string { return fmt.Sprintf("limit %d", l.N) }

// UnionAll concatenates the outputs of its children, which must share a
// schema. Rewrite rule (1) produces this node over mounts and cache-scans.
type UnionAll struct {
	Inputs []Node
	// Cols carries the schema when Inputs is empty (rule (1) with zero
	// files of interest still needs a typed, empty relation).
	Cols []ColInfo
}

// Schema implements Node.
func (u *UnionAll) Schema() []ColInfo {
	if len(u.Inputs) == 0 {
		return u.Cols
	}
	return u.Inputs[0].Schema()
}

// Children implements Node.
func (u *UnionAll) Children() []Node { return u.Inputs }

func (u *UnionAll) withChildren(children []Node) Node {
	return &UnionAll{Inputs: children, Cols: u.Cols}
}

func (u *UnionAll) describe() string { return fmt.Sprintf("union-all (%d inputs)", len(u.Inputs)) }

// ResultScan reads the materialized result of a previously executed plan
// fragment — the access path that lets Qs consume result-scan(Qf)
// without re-executing it.
type ResultScan struct {
	Name string
	Cols []ColInfo
}

// Schema implements Node.
func (r *ResultScan) Schema() []ColInfo { return r.Cols }

// Children implements Node.
func (r *ResultScan) Children() []Node { return nil }

func (r *ResultScan) withChildren(children []Node) Node { return r }

func (r *ResultScan) describe() string { return "result-scan " + r.Name }

// Mount ingests the actual data of one external file (ALi's physical
// operator): extract, transform to the data-table schema, and expose as a
// dangling partial table. Pred, when set, is evaluated over the mounted
// rows (the fused σ∘mount access path); RecordPred additionally lets the
// adapter skip whole records before decoding.
type Mount struct {
	URI     string
	Adapter string
	Binding string
	Def     catalog.TableDef
	Pred    expr.Expr
	// EstBytes is the statistics-free planner's estimate of the bytes
	// this mount will buffer (0 = unknown: admission charges the full
	// file size).
	EstBytes int64
}

// Schema implements Node.
func (m *Mount) Schema() []ColInfo {
	out := make([]ColInfo, len(m.Def.Columns))
	for i, c := range m.Def.Columns {
		out[i] = ColInfo{Table: m.Binding, Name: c.Name, Kind: c.Kind}
	}
	return out
}

// Children implements Node.
func (m *Mount) Children() []Node { return nil }

func (m *Mount) withChildren(children []Node) Node { return m }

func (m *Mount) describe() string {
	if m.Pred != nil {
		return fmt.Sprintf("mount(%s) σ[%s]", m.URI, m.Pred)
	}
	return fmt.Sprintf("mount(%s)", m.URI)
}

// CacheScan reads previously mounted data from the ingestion cache
// instead of the external file. Pred mirrors Mount.Pred (σ∘cache-scan).
type CacheScan struct {
	URI     string
	Adapter string // format adapter, for span extraction and miss fallback
	Binding string
	Def     catalog.TableDef
	Pred    expr.Expr
	// EstBytes carries the planner's byte estimate to the miss-fallback
	// mount (0 = unknown).
	EstBytes int64
}

// Schema implements Node.
func (c *CacheScan) Schema() []ColInfo {
	out := make([]ColInfo, len(c.Def.Columns))
	for i, col := range c.Def.Columns {
		out[i] = ColInfo{Table: c.Binding, Name: col.Name, Kind: col.Kind}
	}
	return out
}

// Children implements Node.
func (c *CacheScan) Children() []Node { return nil }

func (c *CacheScan) withChildren(children []Node) Node { return c }

func (c *CacheScan) describe() string {
	if c.Pred != nil {
		return fmt.Sprintf("cache-scan(%s) σ[%s]", c.URI, c.Pred)
	}
	return fmt.Sprintf("cache-scan(%s)", c.URI)
}

// FindColumn locates a column in a schema by qualified or bare name.
// Bare names match when unambiguous; it returns -1 if absent or
// ambiguous.
func FindColumn(schema []ColInfo, name string) int {
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		table, col := name[:dot], name[dot+1:]
		for i, c := range schema {
			if c.Table == table && c.Name == col {
				return i
			}
		}
		// Fall through: generated labels (e.g. "AVG(D.sample_value)") may
		// contain dots yet be plain column names of an aggregate output.
	}
	found := -1
	for i, c := range schema {
		if c.Name == name {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// Format renders the plan tree indented, one operator per line, with the
// Qf branch (if marked) shown in brackets.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.describe())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Transform rewrites the tree bottom-up: fn is applied to every node
// after its children have been transformed.
func Transform(n Node, fn func(Node) Node) Node {
	children := n.Children()
	if len(children) > 0 {
		newChildren := make([]Node, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Transform(c, fn)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.withChildren(newChildren)
		}
	}
	return fn(n)
}

// Walk visits every node depth-first (parents before children).
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
