// Package cache implements the ingestion cache for data mounted by ALi:
// "data of the mounted files might be cached depending on the cache
// policy" (paper §3). Two granularities are supported, mirroring the
// paper's open question:
//
//   - File granularity: the whole mounted file is cached; any later query
//     touching the file is served from memory.
//   - Tuple granularity: only the tuples that satisfied the mounting
//     query's selection are cached, together with the span they cover;
//     a later query is served from cache only if its span is contained —
//     otherwise the whole file must be mounted again (exactly the
//     trade-off the paper describes).
//
// Policies control retention: NeverCache reproduces the paper's
// preliminary setup ("ingested data is discarded as soon as the query
// has been evaluated"), LRU and FIFO bound memory use.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/vector"
)

// Policy selects the retention strategy.
type Policy int

// Retention policies.
const (
	// NeverCache discards mounted data after every query (the paper's
	// preliminary evaluation setting: inherently up-to-date data).
	NeverCache Policy = iota
	// LRU keeps the most recently used entries within the byte budget.
	LRU
	// FIFO evicts in insertion order.
	FIFO
)

func (p Policy) String() string {
	return [...]string{"never", "lru", "fifo"}[p]
}

// Granularity selects what is stored per entry.
type Granularity int

// Cache granularities (paper §3, run-time optimization discussion).
const (
	FileGranular Granularity = iota
	TupleGranular
)

func (g Granularity) String() string {
	if g == FileGranular {
		return "file"
	}
	return "tuple"
}

// Span is the closed interval of the data-span column covered by an
// entry or required by a query. Full means "the whole file".
type Span struct {
	Lo, Hi int64
	Full   bool
}

// FullSpan covers everything.
func FullSpan() Span { return Span{Full: true} }

// Contains reports whether s covers need.
func (s Span) Contains(need Span) bool {
	if s.Full {
		return true
	}
	if need.Full {
		return false
	}
	return s.Lo <= need.Lo && need.Hi <= s.Hi
}

// Config parameterizes a Manager.
type Config struct {
	Policy      Policy
	Granularity Granularity
	// MaxBytes bounds resident cache size; <=0 means unlimited (only
	// meaningful with LRU/FIFO).
	MaxBytes int64
}

// Stats reports cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	BytesResident int64
	Entries       int
}

// Manager is the ingestion cache. It is safe for concurrent use.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List          // front = most recent (LRU) / newest (FIFO)
	pending map[string]*Pending // in-progress streaming Puts, by URI
	bytes   int64
	hits    int64
	misses  int64
	evicted int64
	// onInvalidate runs (outside the lock) after Drop or Clear: both mean
	// "the underlying data may have changed", the signal layers above —
	// the engine's result cache — use to bump their invalidation epoch.
	onInvalidate func()
}

type entry struct {
	uri   string
	batch *vector.Batch
	span  Span
	bytes int64
}

// New returns a manager with the given configuration.
func New(cfg Config) *Manager {
	return &Manager{
		cfg:     cfg,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		pending: make(map[string]*Pending),
	}
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// SetOnInvalidate registers fn to run after every Drop or Clear — the
// two operations that signal the underlying data changed (an eviction by
// byte budget does not: the repository files are still what they were).
// fn is invoked outside the manager lock and must be safe for concurrent
// use.
func (m *Manager) SetOnInvalidate(fn func()) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.onInvalidate = fn
	m.mu.Unlock()
}

// Contains reports whether a query needing the given span of uri can be
// served from cache. This drives rewrite rule (1)'s f ∈ C test.
func (m *Manager) Contains(uri string, need Span) bool {
	if m == nil || m.cfg.Policy == NeverCache {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[uri]
	return ok && el.Value.(*entry).span.Contains(need)
}

// Get returns a copy-on-write share of the cached batch for uri if it
// covers the needed span. The share is O(1): consumers read the entry's
// storage directly and may mutate their share freely — the first write
// materializes a private copy, so the entry can never be corrupted.
func (m *Manager) Get(uri string, need Span) (*vector.Batch, bool) {
	if m == nil || m.cfg.Policy == NeverCache {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[uri]
	if !ok || !el.Value.(*entry).span.Contains(need) {
		m.misses++
		return nil, false
	}
	if m.cfg.Policy == LRU {
		m.order.MoveToFront(el)
	}
	m.hits++
	return el.Value.(*entry).batch.Share(), true
}

// Put stores mounted data. With FileGranular configuration the span is
// forced to Full (callers pass the whole mounted file); TupleGranular
// callers pass the filtered batch and the span its tuples cover. A
// NeverCache manager ignores Put, as does a Put racing a streaming
// insertion that holds the URI's reservation (the stream owns the
// entry; a second insert would double-count it).
func (m *Manager) Put(uri string, b *vector.Batch, span Span) {
	if m == nil || m.cfg.Policy == NeverCache || b == nil {
		return
	}
	if m.cfg.Granularity == FileGranular {
		span = FullSpan()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending[uri] != nil {
		return
	}
	m.putLocked(uri, b, span)
}

// putLocked inserts an entry; callers hold the lock. The entry holds its
// own frozen share of b: the caller keeps mutating its handle without
// affecting the entry, and no later handle mistake can corrupt it.
func (m *Manager) putLocked(uri string, b *vector.Batch, span Span) {
	if el, ok := m.entries[uri]; ok {
		old := el.Value.(*entry)
		m.bytes -= old.bytes
		m.order.Remove(el)
		delete(m.entries, uri)
	}
	stored := b.Share()
	stored.Freeze()
	e := &entry{uri: uri, batch: stored, span: span, bytes: stored.Bytes()}
	m.entries[uri] = m.order.PushFront(e)
	m.bytes += e.bytes
	m.evict()
}

// Pending is an in-progress streaming insertion started by BeginPut: the
// entry is assembled batch by batch while a file is being mounted, and
// becomes visible atomically at Commit. Append takes copy-on-write
// shares: a single-batch file is adopted in O(1), and only a second
// batch materializes a private accumulation buffer — the finished entry
// can never observe execution-side mutations either way. All methods
// are nil-safe (a nil Pending ignores every call), letting callers
// thread the result of BeginPut through unconditionally.
type Pending struct {
	m     *Manager
	uri   string
	batch *vector.Batch
	// aborted is set (under the manager lock) by Abort, or by Drop/Clear
	// racing the stream: a URI invalidated mid-flight must not be
	// resurrected by Commit.
	aborted bool
}

// BeginPut reserves uri for a streaming insertion. It returns nil when
// the manager never caches or another streaming insertion already holds
// the reservation — the reservation is what keeps one file being
// mounted from being double-inserted. The reservation is released by
// Commit or Abort.
func (m *Manager) BeginPut(uri string) *Pending {
	if m == nil || m.cfg.Policy == NeverCache {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending[uri] != nil {
		return nil
	}
	p := &Pending{m: m, uri: uri}
	m.pending[uri] = p
	return p
}

// Append adds a batch's rows to the pending entry. The first batch is
// adopted as an O(1) share; a second batch triggers the copy-on-write
// materialization and appends. Once the insertion is aborted (directly,
// or by Drop/Clear racing the stream) appends become no-ops rather than
// accumulating rows Commit will discard anyway.
func (p *Pending) Append(b *vector.Batch) {
	if p == nil || b == nil || b.Len() == 0 {
		return
	}
	p.m.mu.Lock()
	aborted := p.aborted
	p.m.mu.Unlock()
	if aborted {
		p.batch = nil
		return
	}
	if p.batch == nil {
		p.batch = b.Share()
		return
	}
	for i, c := range b.Cols {
		p.batch.Cols[i].AppendVector(c)
	}
}

// Commit publishes the assembled entry under the given span and releases
// the reservation. A pending insertion that never saw a batch commits
// nothing (the file had no rows to retain), and one whose URI was
// dropped or cleared mid-stream commits nothing either — the
// invalidation wins.
func (p *Pending) Commit(span Span) {
	if p == nil {
		return
	}
	m := p.m
	if m.cfg.Granularity == FileGranular {
		span = FullSpan()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p.aborted {
		return
	}
	delete(m.pending, p.uri)
	if p.batch != nil {
		m.putLocked(p.uri, p.batch, span)
	}
}

// Abort discards the pending entry and releases the reservation.
func (p *Pending) Abort() {
	if p == nil {
		return
	}
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	if !p.aborted {
		p.aborted = true
		delete(p.m.pending, p.uri)
	}
	p.batch = nil
}

// Drop removes one entry (e.g. when the underlying file changed). A
// streaming insertion in progress for the URI is invalidated too: its
// Commit becomes a no-op, so dropped data cannot be resurrected.
func (m *Manager) Drop(uri string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if p, ok := m.pending[uri]; ok {
		p.aborted = true
		delete(m.pending, uri)
	}
	if el, ok := m.entries[uri]; ok {
		m.bytes -= el.Value.(*entry).bytes
		m.order.Remove(el)
		delete(m.entries, uri)
	}
	fn := m.onInvalidate
	m.mu.Unlock()
	// Drop means "this file changed" whether or not it was resident:
	// layers above must hear about it either way.
	if fn != nil {
		fn()
	}
}

// Clear empties the cache and invalidates in-progress streaming
// insertions: a flight racing the clear must not repopulate it.
func (m *Manager) Clear() {
	if m == nil {
		return
	}
	m.mu.Lock()
	for _, p := range m.pending {
		p.aborted = true
	}
	m.pending = make(map[string]*Pending)
	m.entries = make(map[string]*list.Element)
	m.order = list.New()
	m.bytes = 0
	fn := m.onInvalidate
	m.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Stats returns a snapshot of cache counters.
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Hits: m.hits, Misses: m.misses, Evictions: m.evicted,
		BytesResident: m.bytes, Entries: len(m.entries),
	}
}

// evict enforces the byte budget; callers hold the lock.
func (m *Manager) evict() {
	if m.cfg.MaxBytes <= 0 {
		return
	}
	for m.bytes > m.cfg.MaxBytes && m.order.Len() > 1 {
		oldest := m.order.Back()
		e := oldest.Value.(*entry)
		m.order.Remove(oldest)
		delete(m.entries, e.uri)
		m.bytes -= e.bytes
		m.evicted++
	}
}

// BatchBytes estimates the resident size of a batch. It is the
// vector-level estimate (Batch.Bytes), kept exported so cache consumers
// size their budgets in the same unit the cache charges.
func BatchBytes(b *vector.Batch) int64 {
	if b == nil {
		return 0
	}
	return b.Bytes()
}
