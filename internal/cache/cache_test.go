package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func batchOfRows(n int) *vector.Batch {
	xs := make([]int64, n)
	ss := make([]string, n)
	for i := range xs {
		xs[i] = int64(i)
		ss[i] = "abcdefgh"
	}
	return vector.NewBatch(vector.FromInt64(xs), vector.FromString(ss))
}

func TestNeverCacheDiscards(t *testing.T) {
	m := New(Config{Policy: NeverCache})
	m.Put("a", batchOfRows(10), FullSpan())
	if _, ok := m.Get("a", FullSpan()); ok {
		t.Error("NeverCache retained data")
	}
	if m.Contains("a", FullSpan()) {
		t.Error("NeverCache claims containment")
	}
	if m.Stats().Entries != 0 {
		t.Error("NeverCache has entries")
	}
}

func TestFileGranularHit(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	m.Put("a", batchOfRows(5), Span{Lo: 10, Hi: 20}) // span forced to Full
	if !m.Contains("a", Span{Lo: 0, Hi: 1000}) {
		t.Error("file-granular entry should cover any span")
	}
	b, ok := m.Get("a", Span{Lo: -5, Hi: 5})
	if !ok || b.Len() != 5 {
		t.Error("Get failed")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTupleGranularContainment(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: TupleGranular})
	m.Put("a", batchOfRows(5), Span{Lo: 100, Hi: 200})
	if !m.Contains("a", Span{Lo: 120, Hi: 180}) {
		t.Error("contained span rejected")
	}
	if m.Contains("a", Span{Lo: 50, Hi: 150}) {
		t.Error("partially covered span accepted — would return wrong data")
	}
	if m.Contains("a", FullSpan()) {
		t.Error("tuple entry cannot cover a full-span request")
	}
	if _, ok := m.Get("a", Span{Lo: 0, Hi: 500}); ok {
		t.Error("Get across wider span must miss")
	}
	if m.Stats().Misses != 1 {
		t.Errorf("miss not counted: %+v", m.Stats())
	}
}

func TestSpanContains(t *testing.T) {
	full := FullSpan()
	if !full.Contains(Span{Lo: 1, Hi: 2}) || !full.Contains(full) {
		t.Error("full span containment wrong")
	}
	s := Span{Lo: 10, Hi: 20}
	if s.Contains(full) {
		t.Error("bounded span cannot contain full")
	}
	if !s.Contains(Span{Lo: 10, Hi: 20}) || s.Contains(Span{Lo: 9, Hi: 20}) {
		t.Error("boundary containment wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	one := BatchBytes(batchOfRows(100))
	m := New(Config{Policy: LRU, Granularity: FileGranular, MaxBytes: one*2 + 10})
	m.Put("a", batchOfRows(100), FullSpan())
	m.Put("b", batchOfRows(100), FullSpan())
	// Touch a so b is the LRU victim... (a most recent)
	if _, ok := m.Get("a", FullSpan()); !ok {
		t.Fatal("warm get failed")
	}
	m.Put("c", batchOfRows(100), FullSpan())
	if m.Contains("b", FullSpan()) {
		t.Error("LRU should have evicted b")
	}
	if !m.Contains("a", FullSpan()) || !m.Contains("c", FullSpan()) {
		t.Error("wrong entry evicted")
	}
	if m.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", m.Stats().Evictions)
	}
}

func TestFIFOEviction(t *testing.T) {
	one := BatchBytes(batchOfRows(100))
	m := New(Config{Policy: FIFO, Granularity: FileGranular, MaxBytes: one*2 + 10})
	m.Put("a", batchOfRows(100), FullSpan())
	m.Put("b", batchOfRows(100), FullSpan())
	m.Get("a", FullSpan()) // FIFO ignores recency
	m.Put("c", batchOfRows(100), FullSpan())
	if m.Contains("a", FullSpan()) {
		t.Error("FIFO should have evicted a (oldest)")
	}
}

func TestPutReplaces(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: TupleGranular})
	m.Put("a", batchOfRows(5), Span{Lo: 0, Hi: 10})
	m.Put("a", batchOfRows(50), Span{Lo: 0, Hi: 100})
	if m.Stats().Entries != 1 {
		t.Errorf("entries = %d after replace", m.Stats().Entries)
	}
	b, ok := m.Get("a", Span{Lo: 0, Hi: 100})
	if !ok || b.Len() != 50 {
		t.Error("replacement not visible")
	}
}

func TestDropAndClear(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	m.Put("a", batchOfRows(5), FullSpan())
	m.Put("b", batchOfRows(5), FullSpan())
	m.Drop("a")
	if m.Contains("a", FullSpan()) {
		t.Error("dropped entry still present")
	}
	m.Clear()
	if m.Stats().Entries != 0 || m.Stats().BytesResident != 0 {
		t.Error("clear incomplete")
	}
}

func TestNilManagerSafe(t *testing.T) {
	var m *Manager
	m.Put("a", batchOfRows(1), FullSpan())
	if _, ok := m.Get("a", FullSpan()); ok {
		t.Error("nil manager returned data")
	}
	m.Drop("a")
	m.Clear()
	if m.Contains("a", FullSpan()) {
		t.Error("nil manager contains data")
	}
	_ = m.Stats()
}

func TestBatchBytes(t *testing.T) {
	if BatchBytes(nil) != 0 {
		t.Error("nil batch has bytes")
	}
	b := vector.NewBatch(vector.FromInt64([]int64{1, 2}), vector.FromBool([]bool{true, false}))
	if got := BatchBytes(b); got != 2*8+2 {
		t.Errorf("BatchBytes = %d, want 18", got)
	}
}

func TestBudgetInvariantProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New(Config{Policy: LRU, Granularity: FileGranular, MaxBytes: 2000})
		for i, s := range sizes {
			m.Put(fmt.Sprintf("f%d", i), batchOfRows(int(s)), FullSpan())
		}
		st := m.Stats()
		// Budget holds unless a single entry exceeds it (kept to stay useful).
		return st.BytesResident <= 2000 || st.Entries == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPolicyAndGranularityStrings(t *testing.T) {
	if NeverCache.String() != "never" || LRU.String() != "lru" || FIFO.String() != "fifo" {
		t.Error("policy names wrong")
	}
	if FileGranular.String() != "file" || TupleGranular.String() != "tuple" {
		t.Error("granularity names wrong")
	}
}

func TestStreamingPutAssemblesEntry(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	if p == nil {
		t.Fatal("BeginPut refused a fresh URI")
	}
	p.Append(batchOfRows(3))
	p.Append(batchOfRows(2))
	// Invisible until committed.
	if _, ok := m.Get("f1", FullSpan()); ok {
		t.Fatal("pending entry visible before Commit")
	}
	p.Commit(FullSpan())
	b, ok := m.Get("f1", FullSpan())
	if !ok || b.Len() != 5 {
		t.Fatalf("committed entry has %d rows, want 5", b.Len())
	}
}

func TestStreamingPutIsolatedFromAppendedBatches(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	src := batchOfRows(4)
	p.Append(src)
	src.Cols[0].Set(0, vector.Int64(-77)) // the flight's batch is mutated later
	p.Commit(FullSpan())
	b, _ := m.Get("f1", FullSpan())
	if b.Cols[0].Int64s()[0] != 0 {
		t.Error("streaming Put aliased the appended batch")
	}
}

// TestGetSharesAreCopyOnWrite pins the new boundary contract: Get hands
// out O(1) shares, and a consumer mutating its share (through the
// sanctioned mutation API) never corrupts the entry.
func TestGetSharesAreCopyOnWrite(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	m.Put("f1", batchOfRows(4), FullSpan())
	got, ok := m.Get("f1", FullSpan())
	if !ok {
		t.Fatal("miss")
	}
	got.Cols[0].Set(0, vector.Int64(-1))
	vals := got.Cols[0].MutableInt64s()
	for i := range vals {
		vals[i] = -9
	}
	again, _ := m.Get("f1", FullSpan())
	if again.Cols[0].Int64s()[0] != 0 {
		t.Error("cached entry corrupted through a consumer's share")
	}
}

func TestReservationBlocksDoubleInsert(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	if p == nil {
		t.Fatal("BeginPut failed")
	}
	if m.BeginPut("f1") != nil {
		t.Error("second streaming insertion reserved an already reserved URI")
	}
	// A plain Put racing the streaming insertion is dropped.
	m.Put("f1", batchOfRows(9), FullSpan())
	if _, ok := m.Get("f1", FullSpan()); ok {
		t.Error("Put bypassed the reservation")
	}
	p.Append(batchOfRows(2))
	p.Commit(FullSpan())
	if b, ok := m.Get("f1", FullSpan()); !ok || b.Len() != 2 {
		t.Error("streaming insertion lost to the racing Put")
	}
	// Reservation released: both paths work again.
	if m.BeginPut("f1") == nil {
		t.Error("reservation not released by Commit")
	}
}

func TestAbortReleasesReservation(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	p.Append(batchOfRows(3))
	p.Abort()
	if _, ok := m.Get("f1", FullSpan()); ok {
		t.Error("aborted insertion left an entry")
	}
	p2 := m.BeginPut("f1")
	if p2 == nil {
		t.Error("reservation not released by Abort")
	}
	p2.Abort()
	m.Put("f1", batchOfRows(1), FullSpan())
	if _, ok := m.Get("f1", FullSpan()); !ok {
		t.Error("Put blocked after Abort")
	}
}

func TestNilPendingIsSafe(t *testing.T) {
	never := New(Config{Policy: NeverCache})
	p := never.BeginPut("f1")
	if p != nil {
		t.Fatal("NeverCache manager handed out a pending insertion")
	}
	p.Append(batchOfRows(1)) // must not panic
	p.Commit(FullSpan())
	p.Abort()
	var nilMgr *Manager
	if nilMgr.BeginPut("x") != nil {
		t.Error("nil manager handed out a pending insertion")
	}
}

func TestEmptyCommitStoresNothing(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	p.Commit(FullSpan())
	if st := m.Stats(); st.Entries != 0 {
		t.Errorf("empty commit stored %d entries", st.Entries)
	}
}

func TestDropInvalidatesPendingInsert(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	p.Append(batchOfRows(3))
	// The underlying file changed mid-stream: the drop must win.
	m.Drop("f1")
	p.Commit(FullSpan())
	if _, ok := m.Get("f1", FullSpan()); ok {
		t.Error("Commit resurrected a dropped URI")
	}
	// The reservation is gone too: a fresh stream can start.
	p2 := m.BeginPut("f1")
	if p2 == nil {
		t.Fatal("drop did not release the reservation")
	}
	p2.Append(batchOfRows(1))
	p2.Commit(FullSpan())
	if b, ok := m.Get("f1", FullSpan()); !ok || b.Len() != 1 {
		t.Error("fresh stream after drop failed")
	}
}

func TestClearInvalidatesPendingInserts(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular})
	p := m.BeginPut("f1")
	p.Append(batchOfRows(3))
	m.Clear()
	p.Commit(FullSpan())
	if st := m.Stats(); st.Entries != 0 {
		t.Errorf("pending insert repopulated a cleared cache: %d entries", st.Entries)
	}
}

// TestOnInvalidateHook pins the result-cache wiring contract: Drop and
// Clear fire the hook (Drop even for a URI that is not resident — it
// still means "the file changed"), while plain gets, puts and budget
// evictions never do.
func TestOnInvalidateHook(t *testing.T) {
	m := New(Config{Policy: LRU, Granularity: FileGranular, MaxBytes: 1})
	fired := 0
	m.SetOnInvalidate(func() { fired++ })

	m.Put("f1", batchOfRows(3), FullSpan())
	m.Put("f2", batchOfRows(3), FullSpan()) // evicts f1 (budget of 1 byte)
	m.Get("f1", FullSpan())
	if st := m.Stats(); st.Evictions == 0 {
		t.Fatal("test setup: no eviction happened")
	}
	if fired != 0 {
		t.Fatalf("hook fired %d times on put/get/evict, want 0", fired)
	}

	m.Drop("not-resident")
	if fired != 1 {
		t.Fatalf("hook fired %d times after Drop of a non-resident URI, want 1", fired)
	}
	m.Drop("f2")
	if fired != 2 {
		t.Fatalf("hook fired %d times after Drop, want 2", fired)
	}
	m.Clear()
	if fired != 3 {
		t.Fatalf("hook fired %d times after Clear, want 3", fired)
	}

	// A NeverCache manager carries the signal too.
	n := New(Config{Policy: NeverCache})
	n.SetOnInvalidate(func() { fired++ })
	n.Drop("f1")
	if fired != 4 {
		t.Fatal("NeverCache Drop did not fire the hook")
	}
}
