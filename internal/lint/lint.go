// Package lint is the engine's static-analysis suite: custom analyzers
// that machine-enforce the invariants the engine's performance story is
// built on, which previously lived only in doc comments. Five
// analyzers ship today:
//
//   - cowcheck: the raw vector accessors (Bools, Int64s, Float64s,
//     Strings) are read-only views over possibly-shared copy-on-write
//     storage; any write through them is a silent data race. Writes go
//     through Set / Permute / the Mutable* accessors, which materialize
//     a private copy first.
//   - releasecheck: every successful admission.Gate.Acquire and
//     cache.Manager.BeginPut must be paired with exactly one Release /
//     Commit-or-Abort on every path — the gate panics on a double
//     release, and a lost release over-admits forever after.
//   - ctxcheck: context.Background() / context.TODO() in internal/
//     non-test code silently severs cancellation (admission waits,
//     flight abandonment); queries must thread the caller's context.
//     Operators in internal/exec must thread Env.Ctx into goroutines
//     and mount-service requests.
//   - lockcheck: no mutex is held across a blocking operation (built
//     on the module-wide transitive mayblock fact, see mayblock.go),
//     re-acquired while held, or acquired in an order that inverts an
//     acquisition order established elsewhere in the module.
//   - statcheck: fields of mutex-guarded *Stats structs are written
//     only under a lock or via sync/atomic, Stats() accessors return
//     by-value snapshots (no receiver-aliased maps/slices escape the
//     lock), and every declared counter is actually updated somewhere.
//
// A violation the author has considered and accepted is silenced with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a bare allow is itself reported. cmd/repolint runs the
// suite over the whole repository and is wired into CI.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is self-contained: this module deliberately has no
// third-party dependencies, so package loading is built on `go list`
// and go/types (see load.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow
	Doc  string // one-line description of the enforced invariant
	Run  func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Universe *Universe
	Pkg      *Package

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an allow directive with a
// reason covers it; an allow directive without a reason is converted
// into its own diagnostic, so silencing a finding always documents why.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Universe.Fset.Position(pos)
	if d, ok := p.Universe.allowAt(position, p.Analyzer.Name); ok {
		p.Universe.usedAllows[allowKey{position.Filename, d.line, d.analyzer}] = true
		if strings.TrimSpace(d.reason) == "" {
			*p.diags = append(*p.diags, Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message:  "//lint:allow " + p.Analyzer.Name + " needs a reason",
			})
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CowCheck, ReleaseCheck, CtxCheck, LockCheck, StatCheck}
}

// Run applies the analyzers to every non-stdlib package in the
// universe and returns the surviving diagnostics sorted by position.
func Run(u *Universe, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range u.Module {
		diags = append(diags, RunPackage(u, analyzers, pkg)...)
	}
	sortDiagnostics(diags)
	return diags
}

// RunPackage applies the analyzers to a single package.
func RunPackage(u *Universe, analyzers []*Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, az := range analyzers {
		pass := &Pass{Analyzer: az, Universe: u, Pkg: pkg, diags: &diags}
		az.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	line     int
	analyzer string
	reason   string
}

// allowKey identifies one directive for used-allow tracking.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// CheckAllows audits the module's //lint:allow directives for
// staleness: it runs the full suite (marking every directive that
// suppresses a diagnostic as used) and returns one diagnostic per
// module-file directive that suppressed nothing — either the violation
// it silenced has been fixed (delete the directive) or it names an
// analyzer that does not exist. Fixture directives under testdata are
// exercised by their own tests and are out of scope.
func CheckAllows(u *Universe, analyzers []*Analyzer) []Diagnostic {
	Run(u, analyzers)
	known := make(map[string]bool)
	for _, az := range analyzers {
		known[az.Name] = true
	}
	moduleFile := make(map[string]bool)
	for _, pkg := range u.Module {
		for _, f := range pkg.Files {
			moduleFile[u.Fset.Position(f.Pos()).Filename] = true
		}
	}
	var diags []Diagnostic
	for file, ds := range u.allows {
		if !moduleFile[file] {
			continue
		}
		for _, d := range ds {
			pos := token.Position{Filename: file, Line: d.line, Column: 1}
			switch {
			case !known[d.analyzer]:
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "allowcheck",
					Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", d.analyzer),
				})
			case !u.usedAllows[allowKey{file, d.line, d.analyzer}]:
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "allowcheck",
					Message:  fmt.Sprintf("stale //lint:allow %s: the analyzer no longer fires here; delete the directive", d.analyzer),
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// collectAllows indexes every //lint:allow directive in the files.
func (u *Universe) collectAllows(files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				// A nested comment (fixtures embed "// want" expectations
				// after directives) ends the directive text.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				d := allowDirective{line: u.Fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				file := u.Fset.Position(c.Pos()).Filename
				u.allows[file] = append(u.allows[file], d)
			}
		}
	}
}

// allowAt looks up a directive for the analyzer on the diagnostic's
// line or the line directly above it.
func (u *Universe) allowAt(pos token.Position, analyzer string) (allowDirective, bool) {
	for _, d := range u.allows[pos.Filename] {
		if d.analyzer == analyzer && (d.line == pos.Line || d.line == pos.Line-1) {
			return d, true
		}
	}
	return allowDirective{}, false
}
