package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The mayblock fact: a module-wide, transitive classification of every
// function that can block the calling goroutine. Direct roots are
// channel operations (send, receive, range, select without a default
// clause), sync.Cond.Wait, sync.WaitGroup.Wait, time.Sleep,
// admission.Gate.Acquire, modeled disk I/O through storage.DiskModel
// (ChargeRead/ChargeWrite, including interface dispatch), and
// mountsvc.Cursor.Next (which may wait for flight data). A function
// that calls a mayblock function is itself mayblock. Function literals
// spawned with `go` do not block the function that spawns them and are
// excluded from their enclosing function's classification (the literal
// is classified on its own when it is a named function's body).
//
// lockcheck is the primary consumer: a mutex held across a mayblock
// call is the shape of both the PR 3 flight join race and the
// admission-gate starvation bug. The fact is also exposed to tests via
// Universe.MayBlock.

// resolveState tracks lazy fixed-point resolution of per-function facts.
type resolveState int8

const (
	unresolved resolveState = iota
	resolving
	resolvedFact
)

// funcFact aggregates the per-function facts the concurrency analyzers
// consult: whether the body blocks directly, which mutex struct fields
// it acquires, and which module functions it calls. Facts are collected
// eagerly per declaration (collectFactsFor) and resolved transitively
// on demand with memoized depth-first search; cycles in the call graph
// resolve conservatively to "does not block" on the back edge, which is
// the standard fixed-point treatment for recursion.
type funcFact struct {
	directBlock string         // first directly-blocking operation, "" if none
	directLocks []types.Object // mutex struct fields Lock/RLock'd directly
	callees     []*types.Func  // module-internal callees, source order

	blockState resolveState
	blocks     bool
	blockChain string // human-readable reason, e.g. "calls x → channel receive"

	lockState resolveState
	lockSet   map[types.Object]bool
}

// funcFactFor collects the direct facts for one function declaration.
func (u *Universe) funcFactFor(pkg *Package, fd *ast.FuncDecl) {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok || fd.Body == nil {
		return
	}
	ff := &funcFact{}
	seenCallee := make(map[*types.Func]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned goroutine blocks itself, not its spawner.
			return false
		case *ast.SendStmt:
			ff.noteBlock("channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ff.noteBlock("channel receive")
			}
		case *ast.RangeStmt:
			if isChanType(pkg.Info.TypeOf(n.X)) {
				ff.noteBlock("range over channel")
			}
		case *ast.SelectStmt:
			if !hasDefaultClause(n.Body) {
				ff.noteBlock("select without default")
			}
		case *ast.CallExpr:
			callee := calleeOf(pkg.Info, n)
			if desc, ok := blockingCall(callee); ok {
				ff.noteBlock(desc)
				return true
			}
			if ref, op, ok := lockCall(pkg.Info, n); ok {
				if (op == "Lock" || op == "RLock") && isStructField(ref.obj) {
					ff.directLocks = append(ff.directLocks, ref.obj)
					u.noteMutexName(ref)
				}
				return true
			}
			if fn := u.moduleCallee(callee); fn != nil && !seenCallee[fn] {
				seenCallee[fn] = true
				ff.callees = append(ff.callees, fn)
			}
		}
		return true
	})
	u.funcFacts[obj] = ff
}

func (ff *funcFact) noteBlock(desc string) {
	if ff.directBlock == "" {
		ff.directBlock = desc
	}
}

// moduleCallee returns the declared module (or fixture) function behind
// obj, or nil for stdlib, builtins, and unresolvable callees. Generic
// instantiations are folded onto their generic declaration.
func (u *Universe) moduleCallee(obj types.Object) *types.Func {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return nil
	}
	if p, ok := u.Packages[fn.Pkg().Path()]; ok && p.Standard {
		return nil
	}
	return fn
}

// MayBlock reports whether fn (a module function) can block, and if so
// a human-readable chain of why. Functions without a declared body in
// the universe (stdlib, interface methods) resolve to false — known
// blocking externals are matched as direct roots at their call sites
// instead (see blockingCall).
func (u *Universe) MayBlock(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	return u.resolveBlock(fn.Origin())
}

func (u *Universe) resolveBlock(fn *types.Func) (string, bool) {
	ff := u.funcFacts[fn]
	if ff == nil {
		return "", false
	}
	switch ff.blockState {
	case resolvedFact:
		return ff.blockChain, ff.blocks
	case resolving:
		return "", false // call-graph cycle: break on the back edge
	}
	ff.blockState = resolving
	if ff.directBlock != "" {
		ff.blocks, ff.blockChain = true, ff.directBlock
	} else {
		for _, c := range ff.callees {
			if chain, ok := u.resolveBlock(c); ok {
				ff.blocks = true
				ff.blockChain = truncateChain("calls " + funcDisplay(c) + " → " + chain)
				break
			}
		}
	}
	ff.blockState = resolvedFact
	return ff.blockChain, ff.blocks
}

// lockSetOf returns the set of mutex struct fields fn may acquire,
// directly or through module calls (used for the cross-function edges
// of lockcheck's acquisition-order graph).
func (u *Universe) lockSetOf(fn *types.Func) map[types.Object]bool {
	if fn == nil {
		return nil
	}
	return u.resolveLockSet(fn.Origin())
}

func (u *Universe) resolveLockSet(fn *types.Func) map[types.Object]bool {
	ff := u.funcFacts[fn]
	if ff == nil {
		return nil
	}
	switch ff.lockState {
	case resolvedFact:
		return ff.lockSet
	case resolving:
		return nil // cycle: the initiating frame owns the union
	}
	ff.lockState = resolving
	set := make(map[types.Object]bool)
	for _, o := range ff.directLocks {
		set[o] = true
	}
	for _, c := range ff.callees {
		for o := range u.resolveLockSet(c) {
			set[o] = true
		}
	}
	ff.lockSet = set
	ff.lockState = resolvedFact
	return set
}

// blockingCall matches calls whose callee is a known blocking external
// or interface root: the bodies behind these either are out of the
// universe's sight (stdlib) or dispatch through an interface the
// analysis cannot resolve.
func blockingCall(obj types.Object) (string, bool) {
	switch {
	case methodOn(obj, "sync", "Cond", "Wait"):
		return "sync.Cond.Wait", true
	case methodOn(obj, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait", true
	case funcIn(obj, "time", "Sleep"):
		return "time.Sleep", true
	case methodOn(obj, admissionPkgSuffix, "Gate", "Acquire"):
		return "admission.Gate.Acquire", true
	case methodOn(obj, mountsvcPkgSuffix, "Cursor", "Next"):
		return "mountsvc.Cursor.Next (may wait for flight data)", true
	case isDiskModelCharge(obj):
		return "storage.DiskModel I/O charge", true
	}
	return "", false
}

// isDiskModelCharge matches modeled disk I/O: any ChargeRead/ChargeWrite
// method declared in internal/storage (the DiskModel interface methods
// and every concrete model implementing them).
func isDiskModelCharge(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || (fn.Name() != "ChargeRead" && fn.Name() != "ChargeWrite") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return pkgPathHasSuffix(fn.Pkg(), storagePkgSuffix)
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isStructField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// funcDisplay renders a function for diagnostics: Recv.Name for
// methods, pkg.Name for package-level functions.
func funcDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// truncateChain caps diagnostic reason chains at a readable length.
func truncateChain(s string) string {
	const max = 140
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}
